// Tests for the edge-domain bus: edge sampling, ideal edge streams,
// multi-lane BER runs.
#include <gtest/gtest.h>

#include "fast/fast_bus.h"
#include "util/curve.h"
#include "util/rng.h"

namespace gf = gdelay::fast;
namespace gs = gdelay::sig;
using gdelay::util::Rng;

namespace {
gf::EdgeModelParams clean_params(double rj = 0.0) {
  gf::EdgeModelParams p;
  p.base_latency_ps = 320.0;
  p.fine_curve = gdelay::util::Curve({0.0, 1.5}, {0.0, 52.0});
  p.tap_offset_ps = {0.0, 33.0, 66.0, 99.0};
  p.added_rj_sigma_ps = rj;
  return p;
}
}  // namespace

TEST(SampleEdges, LevelsToggleAtEdges) {
  const std::vector<double> edges{100.0, 250.0, 300.0};
  const std::vector<double> strobes{50.0, 150.0, 275.0, 400.0};
  const auto bits = gf::sample_edges(edges, strobes, 0);
  EXPECT_EQ(bits, (gs::BitPattern{0, 1, 0, 1}));
  const auto inv = gf::sample_edges(edges, strobes, 1);
  EXPECT_EQ(inv, (gs::BitPattern{1, 0, 1, 0}));
}

TEST(SampleEdges, StrobeExactlyOnEdge) {
  // upper_bound counts edges at t <= strobe: a strobe exactly on an edge
  // samples the POST-edge level (the edge has "happened").
  const std::vector<double> edges{100.0};
  EXPECT_EQ(gf::sample_edges(edges, {100.0}, 0)[0], 1);
  EXPECT_EQ(gf::sample_edges(edges, {100.0 - 1e-9}, 0)[0], 0);
}

TEST(IdealEdges, MatchesPattern) {
  const gs::BitPattern bits{1, 0, 0, 1, 1, 1, 0};
  const auto s = gf::ideal_edges(bits, 100.0);
  EXPECT_EQ(s.initial_level, 1);
  ASSERT_EQ(s.times_ps.size(), 3u);
  EXPECT_DOUBLE_EQ(s.times_ps[0], 100.0);
  EXPECT_DOUBLE_EQ(s.times_ps[1], 300.0);
  EXPECT_DOUBLE_EQ(s.times_ps[2], 600.0);
  EXPECT_THROW(gf::ideal_edges({}, 100.0), std::invalid_argument);
}

TEST(IdealEdges, RoundTripThroughSampler) {
  const auto bits = gs::prbs(7, 200);
  const auto s = gf::ideal_edges(bits, 156.25);
  std::vector<double> strobes;
  for (std::size_t k = 0; k < bits.size(); ++k)
    strobes.push_back(156.25 * (static_cast<double>(k) + 0.5));
  const auto sampled = gf::sample_edges(s.times_ps, strobes, s.initial_level);
  EXPECT_EQ(sampled, bits);
}

TEST(FastBus, Validation) {
  gf::FastBusConfig cfg;
  cfg.n_lanes = 0;
  EXPECT_THROW(gf::FastBus(cfg, clean_params(), Rng(1)),
               std::invalid_argument);
  cfg.n_lanes = 3;
  EXPECT_THROW(gf::FastBus(cfg, std::vector<gf::EdgeModelParams>(2, clean_params()),
                           Rng(1)),
               std::invalid_argument);
}

TEST(FastBus, CleanBusIsErrorFree) {
  gf::FastBusConfig cfg;
  cfg.n_lanes = 4;
  cfg.source_rj_sigma_ps = 0.0;
  gf::FastBus bus(cfg, clean_params(0.0), Rng(2));
  const auto res = bus.run_ber(5000, 0.0);
  EXPECT_EQ(res.bits_total, 20000u);
  EXPECT_EQ(res.bit_errors, 0u);
  EXPECT_DOUBLE_EQ(res.ber(), 0.0);
}

TEST(FastBus, StrobeNearEdgeCausesErrors) {
  gf::FastBusConfig cfg;
  cfg.n_lanes = 2;
  cfg.source_rj_sigma_ps = 2.0;
  gf::FastBus bus(cfg, clean_params(2.0), Rng(3));
  // Strobing half a UI off center = right at the crossing.
  const auto res = bus.run_ber(4000, cfg.ui_ps / 2.0);
  EXPECT_GT(res.ber(), 0.05);
}

TEST(FastBus, BerGrowsTowardEyeEdge) {
  gf::FastBusConfig cfg;
  cfg.n_lanes = 2;
  cfg.source_rj_sigma_ps = 3.0;
  gf::FastBus bus(cfg, clean_params(3.0), Rng(4));
  const auto center = bus.run_ber(20000, 0.0);
  const auto near_edge = bus.run_ber(20000, 0.42 * cfg.ui_ps);
  EXPECT_LT(center.ber(), 1e-3);
  EXPECT_GT(near_edge.ber(), 3.0 * center.ber());
  EXPECT_GT(near_edge.ber(), 3e-4);
}

TEST(FastBus, SkewShrinksCommonMargin) {
  // With a common strobe trained per lane (latency-compensated), static
  // skew is absorbed by the receiver training in this model — verify the
  // lanes still run clean, and that skews were actually drawn.
  gf::FastBusConfig cfg;
  cfg.n_lanes = 4;
  cfg.skew_span_ps = 120.0;
  cfg.source_rj_sigma_ps = 0.5;
  gf::FastBus bus(cfg, clean_params(0.5), Rng(5));
  bool any_skew = false;
  for (int i = 0; i < bus.n_lanes(); ++i)
    if (std::abs(bus.lane_skew_ps(i)) > 1.0) any_skew = true;
  EXPECT_TRUE(any_skew);
  EXPECT_EQ(bus.run_ber(4000, 0.0).bit_errors, 0u);
}

TEST(FastBus, MillionBitsFast) {
  gf::FastBusConfig cfg;
  cfg.n_lanes = 8;
  cfg.source_rj_sigma_ps = 1.0;
  gf::FastBus bus(cfg, clean_params(1.5), Rng(6));
  const auto res = bus.run_ber(125000, 0.0);  // 1M bit-slots
  EXPECT_EQ(res.bits_total, 1000000u);
  EXPECT_LT(res.ber(), 1e-4);  // comfortable at eye center
}
