// Functional tests for the calibration service layer (src/service/):
// cache hit/miss/coalesce accounting, single-flight population,
// drift-driven and explicit invalidation, plan parity with the direct
// calibrator path, futures, auto-flush, and shard programming.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/calibration.h"
#include "core/channel.h"
#include "service/cal_cache.h"
#include "service/config.h"
#include "service/service.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gd = gdelay;
namespace core = gd::core;
namespace sig = gd::sig;
using gd::service::CacheKey;
using gd::service::CalCache;
using gd::service::CalRequest;
using gd::service::CalResponse;
using gd::service::CalService;
using gd::service::RequestKind;
using gd::service::ServiceConfig;

namespace {

// Small-but-real service config: 2 channels, short PRBS stimulus, sparse
// sweep. Each sweep is n_vctrl_points + 4 waveform passes, so keep both
// small — these tests exercise the machinery, not the physics.
ServiceConfig small_config(int n_shards = 1) {
  ServiceConfig cfg;
  cfg.n_shards = n_shards;
  cfg.board.n_channels = 2;
  cfg.seed = 77;
  cfg.calibration.n_vctrl_points = 3;
  cfg.stim_bits = 24;
  cfg.batch_trigger = 1 << 20;  // manual flush unless a test lowers it
  return cfg;
}

CalRequest make_req(std::uint64_t id, int channel, RequestKind kind,
                    double target, double temp = 0.0) {
  CalRequest r;
  r.id = id;
  r.channel = channel;
  r.kind = kind;
  r.target_delay_ps = target;
  r.temp_c = temp;
  return r;
}

core::ChannelCalibration tiny_cal(double base) {
  core::ChannelCalibration cal;
  cal.fine_curve =
      gd::util::Curve{{0.0, 0.5, 1.0}, {0.0, 10.0, 20.0}};
  cal.tap_offset_ps = {0.0, 35.0, 70.0, 105.0};
  cal.base_latency_ps = base;
  return cal;
}

}  // namespace

TEST(ServiceCache, HitMissAccounting) {
  CalCache cache;
  CacheKey key;
  key.config_hash = 1;
  int calls = 0;
  auto factory = [&] {
    ++calls;
    return tiny_cal(100.0);
  };
  auto a = cache.get_or_calibrate(key, factory);
  auto b = cache.get_or_calibrate(key, factory);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  CacheKey other = key;
  other.temp_point_mc = 10000;
  cache.get_or_calibrate(other, factory);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ServiceCache, SingleFlightCoalescesConcurrentMisses) {
  CalCache cache;
  CacheKey key;
  key.config_hash = 42;
  std::atomic<int> calls{0};
  std::atomic<int> waiting{0};
  auto factory = [&] {
    ++calls;
    // Hold the flight open long enough for the other threads to arrive
    // and block on it.
    while (waiting.load() < 3) std::this_thread::yield();
    return tiny_cal(50.0);
  };
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const core::ChannelCalibration>> got(4);
  threads.emplace_back([&] { got[0] = cache.get_or_calibrate(key, factory); });
  for (int i = 1; i < 4; ++i)
    threads.emplace_back([&, i] {
      // Count ourselves as arrived only once the first flight is claimed.
      while (cache.size() == 0) std::this_thread::yield();
      ++waiting;
      got[static_cast<std::size_t>(i)] = cache.get_or_calibrate(key, factory);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(calls.load(), 1);
  for (const auto& g : got) EXPECT_EQ(g.get(), got[0].get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().coalesced + cache.stats().hits, 3u);
}

TEST(ServiceCache, InvalidateConfigDropsAllTemperaturePoints) {
  CalCache cache;
  auto factory = [] { return tiny_cal(10.0); };
  CacheKey a;
  a.config_hash = 7;
  a.temp_point_mc = 0;
  CacheKey b = a;
  b.temp_point_mc = 10000;
  CacheKey other;
  other.config_hash = 8;
  cache.get_or_calibrate(a, factory);
  cache.get_or_calibrate(b, factory);
  cache.get_or_calibrate(other, factory);
  cache.invalidate_config(7);
  EXPECT_EQ(cache.lookup(a), nullptr);
  EXPECT_EQ(cache.lookup(b), nullptr);
  EXPECT_NE(cache.lookup(other), nullptr);
  EXPECT_EQ(cache.stats().invalidated, 2u);
  // A re-request sweeps again.
  cache.get_or_calibrate(a, factory);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(ServiceCache, InvalidationDuringFlightDropsTheResult) {
  CalCache cache;
  CacheKey key;
  key.config_hash = 9;
  std::atomic<bool> in_factory{false};
  std::atomic<bool> invalidated{false};
  auto slow_factory = [&] {
    in_factory = true;
    while (!invalidated.load()) std::this_thread::yield();
    return tiny_cal(1.0);
  };
  std::thread flight([&] {
    auto r = cache.get_or_calibrate(key, slow_factory);
    // The caller is still served its own result...
    EXPECT_NE(r, nullptr);
  });
  while (!in_factory.load()) std::this_thread::yield();
  cache.invalidate_all();
  invalidated = true;
  flight.join();
  // ...but the epoch mismatch kept it out of the cache.
  EXPECT_EQ(cache.lookup(key), nullptr);
}

TEST(ServiceCache, FactoryExceptionReleasesTheFlight) {
  CalCache cache;
  CacheKey key;
  key.config_hash = 11;
  EXPECT_THROW(cache.get_or_calibrate(
                   key, []() -> core::ChannelCalibration {
                     throw std::runtime_error("sweep failed");
                   }),
               std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);
  // The key is claimable again.
  auto r = cache.get_or_calibrate(key, [] { return tiny_cal(2.0); });
  EXPECT_NE(r, nullptr);
}

TEST(ServiceCache, ConfigHashSeesEveryFieldPerturbation) {
  const core::ChannelConfig nominal = core::ChannelConfig::prototype();
  const std::uint64_t h0 = gd::service::hash_channel_config(nominal);
  EXPECT_EQ(h0, gd::service::hash_channel_config(nominal));

  core::ChannelConfig c = nominal;
  c.fine.stage.slew_v_per_ps *= 1.0 + 1e-12;
  EXPECT_NE(gd::service::hash_channel_config(c), h0);
  c = nominal;
  c.coarse.tap_error_ps[2] += 1e-9;
  EXPECT_NE(gd::service::hash_channel_config(c), h0);
  c = nominal;
  c.fine.output_stage.f3db_ghz += 1e-9;
  EXPECT_NE(gd::service::hash_channel_config(c), h0);
}

TEST(Service, RequestsShareOneSweepPerKey) {
  CalService svc(small_config());
  for (std::uint64_t i = 0; i < 8; ++i)
    svc.submit(make_req(i, 0, RequestKind::kPlan, 10.0 + 5.0 * double(i)));
  auto responses = svc.drain();
  ASSERT_EQ(responses.size(), 8u);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.cache.misses, 1u);  // one key -> one sweep
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.flushes, 1u);
  // Second wave on the same key: pure hit.
  svc.submit(make_req(100, 0, RequestKind::kPlan, 42.0));
  auto warm = svc.drain();
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_TRUE(warm[0].cache_hit);
  EXPECT_EQ(svc.stats().cache.misses, 1u);
}

TEST(Service, TemperatureQuantizesOntoRecalGrid) {
  ServiceConfig cfg = small_config();
  EXPECT_DOUBLE_EQ(cfg.drift_policy.temp_point_for(3.0), 0.0);
  EXPECT_DOUBLE_EQ(cfg.drift_policy.temp_point_for(7.0), 10.0);
  EXPECT_DOUBLE_EQ(cfg.drift_policy.temp_point_for(-7.0), -10.0);
  EXPECT_DOUBLE_EQ(cfg.drift_policy.temp_point_for(15.0), 20.0);

  CalService svc(cfg);
  // 3 C and 4 C share the 0 C point; 8 C goes to the 10 C point.
  svc.submit(make_req(0, 0, RequestKind::kPlan, 20.0, 3.0));
  svc.submit(make_req(1, 0, RequestKind::kPlan, 20.0, 4.0));
  svc.submit(make_req(2, 0, RequestKind::kPlan, 20.0, 8.0));
  auto responses = svc.drain();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_DOUBLE_EQ(responses[0].temp_point_c, 0.0);
  EXPECT_DOUBLE_EQ(responses[1].temp_point_c, 0.0);
  EXPECT_DOUBLE_EQ(responses[2].temp_point_c, 10.0);
  EXPECT_EQ(svc.stats().cache.misses, 2u);
  // The drifted keys really are distinct cache identities.
  EXPECT_FALSE(svc.key_for(0, 3.0) == svc.key_for(0, 8.0));
  EXPECT_TRUE(svc.key_for(0, 3.0) == svc.key_for(0, 4.0));
}

TEST(Service, PlanMatchesDirectCalibratorPath) {
  ServiceConfig cfg = small_config();
  CalService svc(cfg);
  svc.submit(make_req(0, 1, RequestKind::kPlan, 55.0));
  auto responses = svc.drain();
  ASSERT_EQ(responses.size(), 1u);

  // Rebuild the exact sweep the service ran: same drift-applied config,
  // same construction RNG discipline, same stimulus, same options.
  sig::SynthConfig sc;
  sc.rate_gbps = cfg.stim_rate_gbps;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, cfg.stim_bits), sc);
  const core::ChannelConfig base = svc.shard_board(0).channel(1).config();
  const core::ChannelConfig hot = cfg.drift_policy.drift.apply(base, 0.0);
  core::VariableDelayChannel dev(hot,
                                 gd::util::Rng(cfg.seed ^ 0xca11b8a7edULL)
                                     .fork(1));
  const auto cal =
      core::DelayCalibrator(cfg.calibration).calibrate(dev, stim.wf);
  const core::DelaySetting direct = cal.plan(55.0);

  EXPECT_EQ(responses[0].setting.tap, direct.tap);
  EXPECT_EQ(responses[0].setting.dac_code, direct.dac_code);
  EXPECT_EQ(std::memcmp(&responses[0].setting.vctrl_v, &direct.vctrl_v,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&responses[0].setting.predicted_delay_ps,
                        &direct.predicted_delay_ps, sizeof(double)),
            0);
}

TEST(Service, FutureDeliversTheResponse) {
  CalService svc(small_config());
  std::future<CalResponse> f =
      svc.submit_with_future(make_req(7, 0, RequestKind::kPlan, 30.0));
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::timeout);
  svc.flush();
  ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  const CalResponse r = f.get();
  EXPECT_EQ(r.id, 7u);
  // The response also lands in the completion queue.
  auto drained = svc.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].id, 7u);
  EXPECT_EQ(drained[0].setting.dac_code, r.setting.dac_code);
}

TEST(Service, AutoFlushAtBatchTrigger) {
  ServiceConfig cfg = small_config();
  cfg.batch_trigger = 4;
  CalService svc(cfg);
  for (std::uint64_t i = 0; i < 3; ++i)
    svc.submit(make_req(i, 0, RequestKind::kPlan, 10.0));
  EXPECT_EQ(svc.completed_pending(), 0u);
  svc.submit(make_req(3, 0, RequestKind::kPlan, 10.0));
  EXPECT_EQ(svc.completed_pending(), 4u);
  EXPECT_EQ(svc.stats().flushes, 1u);
}

TEST(Service, ProgramAppliesToTheServingShardOnly) {
  ServiceConfig cfg = small_config(2);
  CalService svc(cfg);
  ASSERT_EQ(svc.n_shards(), 2);
  CalRequest req = make_req(0, 1, RequestKind::kProgram, 60.0);
  const int serving = svc.shard_of(req);
  const int other = 1 - serving;
  svc.submit(req);
  auto responses = svc.drain();
  ASSERT_EQ(responses.size(), 1u);
  const auto& setting = responses[0].setting;
  EXPECT_EQ(svc.shard_board(serving).channel(1).selected_tap(), setting.tap);
  EXPECT_DOUBLE_EQ(svc.shard_board(serving).channel(1).vctrl(),
                   setting.vctrl_v);
  // The non-serving replica is untouched (still at power-on defaults).
  EXPECT_EQ(svc.shard_board(other).channel(1).selected_tap(), 0);
}

TEST(Service, MeasureVerifiesThePlannedDelay) {
  ServiceConfig cfg = small_config();
  // The sparse 3-point sweep keeps the other tests fast but its linear
  // interpolation misses the curve's bow by several ps; verification
  // accuracy needs a realistic sweep density.
  cfg.calibration.n_vctrl_points = 9;
  CalService svc(cfg);
  svc.submit(make_req(0, 0, RequestKind::kMeasure, 50.0));
  auto responses = svc.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(svc.stats().measure_batches, 1u);
  // The verification clone runs with its own noise stream, so a couple
  // of ps of noise-driven spread around the plan is legitimate; gross
  // disagreement means the wrong curve served the request.
  EXPECT_NEAR(responses[0].measured_delay_ps,
              responses[0].setting.predicted_delay_ps, 5.0);
}

TEST(Service, ShardRoutingIsChannelModulo) {
  CalService svc(small_config(4));
  for (int ch = 0; ch < 2; ++ch) {
    CalRequest r = make_req(0, ch, RequestKind::kPlan, 0.0);
    EXPECT_EQ(svc.shard_of(r), ch % 4);
  }
  EXPECT_EQ(gd::service::resolve_shard_count(3), 3);
  EXPECT_GE(gd::service::resolve_shard_count(0), 1);
}

// Small concurrent smoke for the TSan CI leg: several submitter threads,
// concurrent flushes, one drain. One cache key keeps it fast.
TEST(ServiceConcurrency, ParallelSubmitAndFlush) {
  ServiceConfig cfg = small_config(2);
  cfg.batch_trigger = 8;
  CalService svc(cfg);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPer; ++i)
        svc.submit(make_req(static_cast<std::uint64_t>(t) * kPer + i, 0,
                            RequestKind::kPlan, 10.0 + double(i)));
    });
  for (auto& t : threads) t.join();
  auto responses = svc.drain();
  ASSERT_EQ(responses.size(), kThreads * kPer);
  for (std::size_t i = 0; i < responses.size(); ++i)
    EXPECT_EQ(responses[i].id, i);  // drain orders by id
  EXPECT_EQ(svc.stats().cache.misses, 1u);
}
