// Cross-module integration tests: requirement-compliance smoke checks
// exercising the full stack (synth -> channel -> instruments -> planning).
#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/channel.h"
#include "core/jitter_injector.h"
#include "core/requirements.h"
#include "measure/delay_meter.h"
#include "measure/eye.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

TEST(Integration, RequirementConstantsAreSane) {
  using R = gc::Requirements;
  EXPECT_LT(R::kResolutionPs, R::kChannelSkewPs);
  EXPECT_LT(R::kChannelSkewPs, R::kCoarseStepPs);
  EXPECT_GT(R::kTotalRangePs, R::kAteResolutionPs);
  EXPECT_NEAR(1000.0 / R::kMaxRateGbps, R::kBitPeriodAtMaxPs, 1e-9);
}

TEST(Integration, ChannelPassesMaxRateWithOpenEye) {
  // 6.4 Gbps PRBS7 through the full prototype channel: the output eye
  // must stay usable (paper Fig. 13).
  gs::SynthConfig sc;
  sc.rate_gbps = gc::Requirements::kMaxRateGbps;
  sc.rj_sigma_ps = 1.0;
  Rng rng(31);
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 192), sc, &rng);
  gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), rng.fork(1));
  ch.select_tap(1);
  ch.set_vctrl(0.75);
  const auto out = ch.process(stim.wf);
  const auto eye = gm::measure_eye(out, stim.unit_interval_ps);
  EXPECT_GT(eye.eye_width_ps, 0.6 * stim.unit_interval_ps);
  EXPECT_GT(eye.eye_height_v, 0.4);
}

TEST(Integration, ChannelWorksAtLowRate) {
  // "<1 Gbps" end of the operating range.
  gs::SynthConfig sc;
  sc.rate_gbps = 0.8;
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 24), sc);
  gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), Rng(32));
  const auto out = ch.process(stim.wf);
  const auto d = gm::measure_delay(stim.wf, out);
  EXPECT_GT(d.n_edges, 5u);
  EXPECT_GT(d.mean_ps, 0.0);
}

TEST(Integration, AddedJitterSmallBelowSixGbps) {
  // Paper: ~7 ps added TJ typical below 6 Gbps. Budget check with margin.
  gs::SynthConfig sc;
  sc.rate_gbps = 4.8;
  sc.rj_sigma_ps = 1.8;
  Rng rng(33);
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 512), sc, &rng);
  gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), rng.fork(2));
  ch.set_vctrl(0.75);
  const auto out = ch.process(stim.wf);
  // Skip the droop settling transient in both traces (same edge count).
  gm::JitterMeasureOptions jo;
  jo.settle_ps = 12000.0;
  const double tj_in =
      gm::measure_jitter(stim.wf, stim.unit_interval_ps, jo).tj_pp_ps;
  const double tj_out =
      gm::measure_jitter(out, stim.unit_interval_ps, jo).tj_pp_ps;
  EXPECT_GT(tj_out, tj_in);            // the circuit does add jitter
  EXPECT_LT(tj_out - tj_in, 15.0);     // ... but only a handful of ps
                                       // (pk-pk statistic headroom)
}

TEST(Integration, CalibrateProgramVerifySubPs) {
  // The full programming loop with a long stimulus: the realized delay
  // must track the request to about a picosecond.
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 127), sc);
  gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), Rng(34));
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 17;
  const auto cal = gc::DelayCalibrator(o).calibrate(ch, stim.wf);
  ASSERT_LT(cal.resolution_ps(), gc::Requirements::kResolutionPs);

  const double target = 77.7;
  const auto set = cal.plan(target);
  ch.select_tap(set.tap);
  ch.set_vctrl(set.vctrl_v);
  const auto out = ch.process(stim.wf);
  const double rel =
      gm::measure_delay(stim.wf, out).mean_ps - cal.base_latency_ps;
  EXPECT_NEAR(rel, target, 1.2);
}

TEST(Integration, JitterInjectionThenMeasurementChain) {
  // Inject jitter, then verify a DUT-style receiver sees the closed eye.
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 256), sc);
  gc::JitterInjectorConfig jc;
  jc.noise_pp_v = 0.9;
  gc::JitterInjector inj(jc, Rng(35));
  const auto out = inj.process(stim.wf);
  const auto clean = gm::measure_eye(stim.wf, stim.unit_interval_ps);
  const auto jittered = gm::measure_eye(out, stim.unit_interval_ps);
  EXPECT_LT(jittered.eye_width_ps, clean.eye_width_ps - 20.0);
}

TEST(Integration, DeterministicAcrossRuns) {
  // Same seeds, same everything: the whole pipeline must be bit-stable.
  auto run = [] {
    gs::SynthConfig sc;
    sc.rate_gbps = 6.4;
    sc.rj_sigma_ps = 1.0;
    Rng rng(99);
    const auto stim = gs::synthesize_nrz(gs::prbs(7, 64), sc, &rng);
    gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), rng.fork(3));
    ch.set_vctrl(1.0);
    const auto out = ch.process(stim.wf);
    return gm::measure_delay(stim.wf, out).mean_ps;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}
