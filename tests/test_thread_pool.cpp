// Contract tests for the deterministic parallel execution layer:
// ordered results, empty ranges, exception propagation (lowest index
// wins), nested-call safety, and runtime thread-count control.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace gu = gdelay::util;

namespace {

// Every test runs at both 1 thread (serial fast path) and 4 threads (the
// pooled path) — the two must be observationally identical.
class ThreadPoolBothModes : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { gu::set_thread_count(GetParam()); }
  void TearDown() override { gu::set_thread_count(1); }
};

}  // namespace

TEST_P(ThreadPoolBothModes, EmptyRangeCallsNothing) {
  std::atomic<int> calls{0};
  gu::parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(gu::parallel_map(0, [](std::size_t i) { return i; }).empty());
}

TEST_P(ThreadPoolBothModes, MapReturnsResultsInIndexOrder) {
  const auto out =
      gu::parallel_map(100, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST_P(ThreadPoolBothModes, EveryIndexRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  gu::parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ThreadPoolBothModes, ExceptionPropagatesLowestIndex) {
  // Indices 10, 40 and 70 all throw; the submitter must observe index
  // 10's exception regardless of scheduling.
  try {
    gu::parallel_for(100, [](std::size_t i) {
      if (i % 30 == 10)
        throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 10");
  }
}

TEST_P(ThreadPoolBothModes, ExceptionDoesNotPoisonThePool) {
  EXPECT_THROW(
      gu::parallel_for(8, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  // The pool keeps working after a failed batch.
  const auto out = gu::parallel_map(8, [](std::size_t i) { return i; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}), 28u);
}

TEST_P(ThreadPoolBothModes, NestedCallsAreSafeAndComplete) {
  // A worker submitting a sub-batch must not deadlock: submitters
  // participate in their own batches, so progress is guaranteed even
  // when every worker is blocked inside an outer task.
  std::vector<std::atomic<int>> hits(6 * 7);
  gu::parallel_for(6, [&](std::size_t outer) {
    gu::parallel_for(7, [&](std::size_t inner) {
      ++hits[outer * 7 + inner];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ThreadPoolBothModes, NestedMapMatchesSerialArithmetic) {
  const auto table = gu::parallel_map(5, [](std::size_t outer) {
    const auto inner = gu::parallel_map(
        9, [outer](std::size_t i) { return outer * 100 + i; });
    return std::accumulate(inner.begin(), inner.end(), std::size_t{0});
  });
  for (std::size_t outer = 0; outer < table.size(); ++outer)
    EXPECT_EQ(table[outer], outer * 900 + 36);
}

INSTANTIATE_TEST_SUITE_P(SerialAndPooled, ThreadPoolBothModes,
                         ::testing::Values(1, 4));

TEST(ThreadPool, ThreadCountIsRuntimeConfigurable) {
  gu::set_thread_count(3);
  EXPECT_EQ(gu::thread_count(), 3);
  gu::set_thread_count(1);
  EXPECT_EQ(gu::thread_count(), 1);
  EXPECT_THROW(gu::set_thread_count(0), std::invalid_argument);
  EXPECT_EQ(gu::thread_count(), 1);
}

TEST(ThreadPool, StandalonePoolIsIndependentOfGlobal) {
  gu::ThreadPool pool(2);
  EXPECT_EQ(pool.thread_count(), 2);
  std::vector<std::atomic<int>> hits(32);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}
