// Backend-equivalence suite: the pluggable compute backend's contract,
// enforced (see src/backend/backend.h and DESIGN.md "Compute backends").
//
// Three layers of checks:
//
//   1. Kernel pins. The elementwise kernels (scale, tanh_stage, exp,
//      sincos2pi, Box-Muller) must be BIT-EXACT against the scalar
//      det_* oracle on every backend — 0 ULP, over domain sweeps that
//      cover saturation boundaries, signed zero and vector tails.
//   2. The step-vs-block-vs-SIMD triangle. For every element: under a
//      fixed backend, n step() calls, one block call, and any chunked
//      partition of block calls (sizes 1, 7, 64, 1024, 4096) must agree
//      byte for byte — including the AVX2 one-pole scan, whose group
//      phase is carried in OnePoleState. Across backends, elementwise
//      elements agree bitwise; recursive elements agree within the
//      documented amplitude-relative envelope of the reassociated scan.
//   3. Threaded sweeps. Per backend, a parallel calibration run is
//      bit-identical at 1 and 4 threads (CI additionally re-runs the
//      whole suite under GDELAY_THREADS=4).
//
// AVX2 cases skip (not fail) on machines without AVX2+FMA, so the suite
// is portable; the CI simd job guarantees they actually run somewhere.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "analog/buffer.h"
#include "analog/coupling.h"
#include "analog/primitives.h"
#include "backend/backend.h"
#include "core/channel.h"
#include "core/calibration.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/fastmath.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ga = gdelay::analog;
namespace gb = gdelay::backend;
namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gu = gdelay::util;
using gdelay::util::Rng;

namespace {

std::uint64_t bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

bool avx2_usable() {
  return gb::avx2_kernels() != nullptr && gb::cpu_supports_avx2();
}

// Selects a backend for the scope and restores the previous one, so
// tests compose regardless of the GDELAY_BACKEND the suite ran under.
struct BackendSelect {
  std::string prev;
  explicit BackendSelect(const char* name) : prev(gb::active().name) {
    gb::select(name);
  }
  ~BackendSelect() { gb::select(prev.c_str()); }
};

// The ISSUE-mandated partition sizes: scalar-tail-only, odd mid-group,
// exact multiples of the lane group, and larger-than-cache blocks.
constexpr std::size_t kChunks[] = {1, 7, 64, 1024, 4096};

// Stimulus with both smooth and switching content (limiters saturate,
// slew limiters rail) plus segment lengths coprime to every chunk size.
std::vector<double> stimulus(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    v[i] = 0.35 * std::sin(0.07 * t) + 0.15 * std::sin(0.011 * t + 0.5) +
           ((i / 37) % 2 ? 0.2 : -0.2);
  }
  return v;
}

struct Segment {
  std::size_t n;
  double dt;
};

// Mid-run dt changes in both directions; lengths chosen so 4096-chunks
// still split every segment and 1-chunks cross group phases everywhere.
const std::vector<Segment> kSegments{{4099, 0.25}, {2048, 0.4}, {1021, 0.25}};

std::size_t total_samples() {
  std::size_t t = 0;
  for (const auto& s : kSegments) t += s.n;
  return t;
}

// Runs `e` per-sample over the stimulus/dt schedule.
template <typename E>
std::vector<double> run_step(E& e) {
  const auto in = stimulus(total_samples());
  std::vector<double> out(in.size());
  std::size_t off = 0;
  for (const auto& s : kSegments) {
    for (std::size_t i = 0; i < s.n; ++i)
      out[off + i] = e.step(in[off + i], s.dt);
    off += s.n;
  }
  return out;
}

// Runs `e` through process_block() in `chunk`-sized calls.
template <typename E>
std::vector<double> run_block(E& e, std::size_t chunk) {
  const auto in = stimulus(total_samples());
  std::vector<double> out(in.size(), -1.0);
  std::size_t off = 0;
  for (const auto& s : kSegments) {
    for (std::size_t o = 0; o < s.n; o += chunk)
      e.process_block(in.data() + off + o, out.data() + off + o,
                      std::min(chunk, s.n - o), s.dt);
    off += s.n;
  }
  return out;
}

// The triangle under one backend: step path vs every chunked partition,
// byte for byte. Fresh twins per partition (elements are stateful).
template <typename MakeFn>
void expect_triangle(const char* backend, MakeFn make) {
  BackendSelect sel(backend);
  auto ref = make();
  const auto want = run_step(ref);
  for (std::size_t chunk : kChunks) {
    auto blk = make();
    const auto got = run_block(blk, chunk);
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(bits(want[i]), bits(got[i]))
          << backend << " chunk " << chunk << " sample " << i << ": step="
          << want[i] << " block=" << got[i];
  }
}

// Cross-backend comparison of the block path (chunk 1024).
// `bit_identical` demands byte equality (purely elementwise elements);
// otherwise the documented scan envelope applies: an ABSOLUTE bound,
// because near the waveform's zero crossings an epsilon-of-amplitude
// divergence is a huge number of ULP of the (tiny) output value.
template <typename MakeFn>
void expect_cross_backend(MakeFn make, bool bit_identical, double max_abs) {
  if (!avx2_usable()) GTEST_SKIP() << "AVX2 backend not usable here";
  std::vector<double> scalar_out, avx2_out;
  {
    BackendSelect sel("scalar");
    auto e = make();
    scalar_out = run_block(e, 1024);
  }
  {
    BackendSelect sel("avx2");
    auto e = make();
    avx2_out = run_block(e, 1024);
  }
  for (std::size_t i = 0; i < scalar_out.size(); ++i) {
    const double a = scalar_out[i], b = avx2_out[i];
    if (bits(a) == bits(b)) continue;
    ASSERT_FALSE(bit_identical)
        << "sample " << i << ": scalar=" << a << " avx2=" << b;
    ASSERT_LE(std::abs(a - b), max_abs)
        << "sample " << i << ": scalar=" << a << " avx2=" << b;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(BackendDispatch, ScalarTableIsAlwaysAvailableAndSelectable) {
  const gb::Kernels& s = gb::scalar_kernels();
  EXPECT_STREQ(s.name, "scalar");
  EXPECT_EQ(s.lanes, 1);
  EXPECT_TRUE(s.bit_exact);
  BackendSelect sel("scalar");
  EXPECT_STREQ(gb::active().name, "scalar");
  EXPECT_NE(gb::dispatch_reason(), nullptr);
}

TEST(BackendDispatch, UnknownNameThrowsAndLeavesSelectionIntact) {
  BackendSelect sel("scalar");
  EXPECT_THROW(gb::select("sse9"), std::invalid_argument);
  EXPECT_STREQ(gb::active().name, "scalar");
}

TEST(BackendDispatch, AutoPicksSomethingUsable) {
  BackendSelect sel("auto");
  const std::string name = gb::active().name;
  EXPECT_TRUE(name == "scalar" || name == "avx2") << name;
  if (avx2_usable()) {
    EXPECT_EQ(name, "avx2");
  }
}

TEST(BackendDispatch, Avx2SelectionMatchesProbes) {
  if (!avx2_usable()) {
    EXPECT_THROW(gb::select("avx2"), std::runtime_error);
    GTEST_SKIP() << "AVX2 backend not usable here";
  }
  BackendSelect sel("avx2");
  const gb::Kernels& k = gb::active();
  EXPECT_STREQ(k.name, "avx2");
  EXPECT_EQ(k.lanes, 4);
  EXPECT_FALSE(k.bit_exact);  // the one-pole scan is contract-covered
}

// ---------------------------------------------------------------------------
// Kernel pins: elementwise kernels bit-exact on every backend
// ---------------------------------------------------------------------------

namespace {

// Domain sweep with saturation boundaries, signed zero, huge and tiny
// magnitudes, at a length (1027) that exercises vector body + tail.
std::vector<double> kernel_sweep() {
  std::vector<double> v;
  for (int i = -500; i <= 500; ++i) v.push_back(0.05 * i);  // [-25, 25]
  v.push_back(0.0);
  v.push_back(-0.0);
  v.push_back(1e-300);
  v.push_back(-1e-300);
  v.push_back(1e300);
  v.push_back(-1e300);
  v.push_back(708.0);
  v.push_back(-708.0);
  v.push_back(709.5);
  v.push_back(-709.5);
  while (v.size() < 1027) v.push_back(0.013 * static_cast<double>(v.size()));
  return v;
}

void pin_elementwise(const gb::Kernels& k) {
  const auto x = kernel_sweep();
  const std::size_t n = x.size();
  std::vector<double> out(n, -1.0);

  k.scale(x.data(), out.data(), n, 1.7);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(bits(out[i]), bits(1.7 * x[i])) << k.name << " scale " << i;

  k.tanh_stage(x.data(), nullptr, out.data(), n, 2.0, 0.4, 0.35);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(bits(out[i]), bits(0.35 * gu::det_tanh(2.0 * x[i] / 0.4)))
        << k.name << " tanh_stage " << i << " x=" << x[i];

  // The add-array variant (noise injection before the limiter).
  std::vector<double> add(n);
  for (std::size_t i = 0; i < n; ++i) add[i] = 0.01 * std::sin(0.3 * i);
  k.tanh_stage(x.data(), add.data(), out.data(), n, 2.0, 0.4, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(bits(out[i]),
              bits(1.0 * gu::det_tanh(2.0 * (x[i] + add[i]) / 0.4)))
        << k.name << " tanh_stage+add " << i;

  k.exp_block(x.data(), out.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(bits(out[i]), bits(gu::det_exp(x[i])))
        << k.name << " exp " << i << " x=" << x[i];

  // sincos2pi and Box-Muller take uniforms in [0, 1) / (0, 1].
  std::vector<double> u1(n), u2(n), os(n, -1.0), oc(n, -1.0);
  for (std::size_t i = 0; i < n; ++i) {
    u2[i] = static_cast<double>(i) / static_cast<double>(n);
    u1[i] = 1.0 - u2[i];
  }
  u1[5] = 0x1.0p-53;  // smallest uniform the RNG produces
  k.sincos2pi_block(u2.data(), os.data(), oc.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    double s, c;
    gu::det_sincos2pi(u2[i], s, c);
    ASSERT_EQ(bits(os[i]), bits(s)) << k.name << " sin " << i;
    ASSERT_EQ(bits(oc[i]), bits(c)) << k.name << " cos " << i;
  }
  k.box_muller(u1.data(), u2.data(), oc.data(), os.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    double c, s;
    gb::box_muller_step(u1[i], u2[i], c, s);
    ASSERT_EQ(bits(oc[i]), bits(c)) << k.name << " box_muller cos " << i;
    ASSERT_EQ(bits(os[i]), bits(s)) << k.name << " box_muller sin " << i;
  }

  // Odd lengths so every tail-length path of the vector kernels runs.
  for (std::size_t len : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{4}, std::size_t{5}, std::size_t{7}}) {
    k.tanh_stage(x.data(), nullptr, out.data(), len, 3.0, 0.2, 0.4);
    for (std::size_t i = 0; i < len; ++i)
      ASSERT_EQ(bits(out[i]), bits(0.4 * gu::det_tanh(3.0 * x[i] / 0.2)))
          << k.name << " tanh_stage len=" << len << " " << i;
  }
}

}  // namespace

TEST(BackendKernels, ScalarElementwiseMatchesOracle) {
  pin_elementwise(gb::scalar_kernels());
}

TEST(BackendKernels, Avx2ElementwiseIsBitExact) {
  if (!avx2_usable()) GTEST_SKIP() << "AVX2 backend not usable here";
  pin_elementwise(*gb::avx2_kernels());
}

TEST(BackendKernels, OnePolePartitionInvariancePerBackend) {
  // Any split of the sample stream into kernel calls yields identical
  // bytes — the AVX2 scan carries its group phase in OnePoleState.
  const auto x = stimulus(4099);
  std::vector<const gb::Kernels*> tables{&gb::scalar_kernels()};
  if (avx2_usable()) tables.push_back(gb::avx2_kernels());
  for (const gb::Kernels* k : tables) {
    gb::OnePoleState whole{};
    std::vector<double> want(x.size(), -1.0);
    k->one_pole(x.data(), want.data(), x.size(), 0.17, whole);
    for (std::size_t chunk : kChunks) {
      gb::OnePoleState st{};
      std::vector<double> got(x.size(), -1.0);
      for (std::size_t o = 0; o < x.size(); o += chunk)
        k->one_pole(x.data() + o, got.data() + o,
                    std::min(chunk, x.size() - o), 0.17, st);
      for (std::size_t i = 0; i < x.size(); ++i)
        ASSERT_EQ(bits(want[i]), bits(got[i]))
            << k->name << " chunk " << chunk << " sample " << i;
      ASSERT_EQ(bits(st.y), bits(whole.y)) << k->name << " final state";
    }
  }
}

TEST(BackendKernels, SlewMatchesStepOracleAtAnyPartition) {
  // The solo slew kernel is serial-by-contract: every backend must match
  // the slew_step oracle bit for bit, for any chunking of the stream
  // (state carries across calls in SlewState).
  const auto x = stimulus(4099);
  gb::SlewCoeffs c;
  c.max_step = 0.02;
  c.lin = 0.3;
  c.has_lin = true;
  c.leak = 0.001;
  c.has_leak = true;
  std::vector<double> want(x.size(), -1.0);
  {
    gb::SlewState st{};
    for (std::size_t i = 0; i < x.size(); ++i)
      want[i] = gb::slew_step(c, st, x[i]);
  }
  std::vector<const gb::Kernels*> tables{&gb::scalar_kernels()};
  if (avx2_usable()) tables.push_back(gb::avx2_kernels());
  for (const gb::Kernels* k : tables) {
    for (std::size_t chunk : kChunks) {
      gb::SlewState st{};
      std::vector<double> got(x.size(), -1.0);
      for (std::size_t o = 0; o < x.size(); o += chunk)
        k->slew(x.data() + o, got.data() + o, std::min(chunk, x.size() - o),
                c, st);
      for (std::size_t i = 0; i < x.size(); ++i)
        ASSERT_EQ(bits(want[i]), bits(got[i]))
            << k->name << " slew chunk " << chunk << " sample " << i;
    }
  }
}

TEST(BackendKernels, VgaTailMatchesStepOracleAtAnyPartition) {
  // Same contract for the droop/slew tail: bit-exact against
  // vga_tail_step on every backend, partition-invariant via
  // SlewState + VgaTailState.
  const auto lim = stimulus(2053);
  gb::VgaTailCoeffs c;
  c.amp = 0.45;
  c.amp_frac = 0.045;
  c.max_step = 0.015;
  c.inv_max_step = 1.0 / 0.015;
  c.alpha = 0.02;
  c.slew.max_step = 0.015;
  c.slew.lin = 0.25;
  c.slew.has_lin = true;
  std::vector<double> want(lim.size(), -1.0);
  {
    gb::SlewState sl{};
    gb::VgaTailState d{};
    for (std::size_t i = 0; i < lim.size(); ++i)
      want[i] = gb::vga_tail_step(c, sl, d, lim[i]);
  }
  std::vector<const gb::Kernels*> tables{&gb::scalar_kernels()};
  if (avx2_usable()) tables.push_back(gb::avx2_kernels());
  for (const gb::Kernels* k : tables) {
    for (std::size_t chunk : kChunks) {
      gb::SlewState sl{};
      gb::VgaTailState d{};
      std::vector<double> got(lim.size(), -1.0);
      for (std::size_t o = 0; o < lim.size(); o += chunk)
        k->vga_tail(lim.data() + o, got.data() + o,
                    std::min(chunk, lim.size() - o), c, sl, d);
      for (std::size_t i = 0; i < lim.size(); ++i)
        ASSERT_EQ(bits(want[i]), bits(got[i]))
            << k->name << " vga_tail chunk " << chunk << " sample " << i;
    }
  }
}

TEST(BackendKernels, OnePoleCrossBackendAmplitudeEnvelope) {
  // The AVX2 group-of-4 scan reassociates the recursion; the contract
  // bounds the divergence from the serial oracle to a few machine
  // epsilons of the SIGNAL AMPLITUDE (not ULP of the output — near zero
  // crossings the output is tiny and its ULP is meaningless). Pinned at
  // 16 eps * max|y|; measured worst across alphas is ~1.4 eps.
  if (!avx2_usable()) GTEST_SKIP() << "AVX2 backend not usable here";
  const auto x = stimulus(4099);
  constexpr double kEps = 2.220446049250313e-16;
  for (double alpha : {0.02, 0.17, 0.6, 0.95}) {
    gb::OnePoleState ss{}, sv{};
    std::vector<double> a(x.size()), b(x.size());
    gb::scalar_kernels().one_pole(x.data(), a.data(), x.size(), alpha, ss);
    gb::avx2_kernels()->one_pole(x.data(), b.data(), x.size(), alpha, sv);
    double amp = 0.0, worst = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      amp = std::max(amp, std::abs(a[i]));
      worst = std::max(worst, std::abs(a[i] - b[i]));
    }
    EXPECT_LE(worst, 16.0 * kEps * amp) << "alpha " << alpha;
  }
}

TEST(BackendKernels, OnePoleAlphaChangeReanchorsDeterministically) {
  // A dt (alpha) change mid-stream re-anchors the AVX2 group; both the
  // one-call-per-alpha and the sample-at-a-time partitions must agree.
  std::vector<const gb::Kernels*> tables{&gb::scalar_kernels()};
  if (avx2_usable()) tables.push_back(gb::avx2_kernels());
  const auto x = stimulus(601);
  for (const gb::Kernels* k : tables) {
    gb::OnePoleState s1{}, s2{};
    std::vector<double> a(x.size()), b(x.size());
    k->one_pole(x.data(), a.data(), 301, 0.17, s1);
    k->one_pole(x.data() + 301, a.data() + 301, 300, 0.42, s1);
    for (std::size_t i = 0; i < x.size(); ++i)
      k->one_pole(x.data() + i, b.data() + i, 1, i < 301 ? 0.17 : 0.42, s2);
    for (std::size_t i = 0; i < x.size(); ++i)
      ASSERT_EQ(bits(a[i]), bits(b[i])) << k->name << " sample " << i;
  }
}

// ---------------------------------------------------------------------------
// The triangle, per element
// ---------------------------------------------------------------------------

namespace {

template <typename MakeFn>
void triangle_all_backends(MakeFn make) {
  expect_triangle("scalar", make);
  if (::testing::Test::HasFatalFailure()) return;
  if (avx2_usable()) expect_triangle("avx2", make);
}

}  // namespace

TEST(BackendTriangle, SinglePoleFilter) {
  triangle_all_backends([] { return ga::SinglePoleFilter(6.5); });
}

TEST(BackendTriangle, TanhLimiter) {
  triangle_all_backends([] { return ga::TanhLimiter(3.0, 0.4); });
}

TEST(BackendTriangle, GainStage) {
  triangle_all_backends([] { return ga::GainStage(1.7); });
}

TEST(BackendTriangle, Attenuator) {
  triangle_all_backends([] { return ga::Attenuator(2.5); });
}

TEST(BackendTriangle, SlewRateLimiter) {
  triangle_all_backends([] { return ga::SlewRateLimiter(0.004, 20.0, 300.0); });
}

TEST(BackendTriangle, NoiseAdder) {
  triangle_all_backends([] { return ga::NoiseAdder(0.02, Rng(42)); });
}

TEST(BackendTriangle, VariableGainBuffer) {
  triangle_all_backends([] {
    ga::VgaBufferConfig cfg;
    auto vga = ga::VariableGainBuffer(cfg, Rng(7));
    vga.set_vctrl(0.9);
    return vga;
  });
}

TEST(BackendTriangle, LimitingBuffer) {
  triangle_all_backends(
      [] { return ga::LimitingBuffer(ga::LimitingBufferConfig{}, Rng(11)); });
}

TEST(BackendTriangle, VariableDelayChannel) {
  triangle_all_backends([] {
    auto ch = gc::VariableDelayChannel(gc::ChannelConfig::prototype(), Rng(99));
    ch.select_tap(1);
    ch.set_vctrl(1.1);
    return ch;
  });
}

// ---------------------------------------------------------------------------
// Cross-backend agreement
// ---------------------------------------------------------------------------

TEST(BackendCross, ElementwiseElementsAreBitIdentical) {
  // No recursion anywhere in these — the AVX2 path must reproduce the
  // scalar bytes exactly.
  expect_cross_backend([] { return ga::TanhLimiter(3.0, 0.4); }, true, 0.0);
  expect_cross_backend([] { return ga::GainStage(1.7); }, true, 0.0);
  expect_cross_backend([] { return ga::Attenuator(2.5); }, true, 0.0);
}

TEST(BackendCross, RecursiveElementsStayInsideScanEnvelope) {
  // One-pole content: the scan's reassociated rounding stays within a
  // few epsilons of the signal amplitude (~0.7 V here), far under 1e-12.
  expect_cross_backend([] { return ga::SinglePoleFilter(6.5); }, false, 1e-12);
  expect_cross_backend([] { return ga::NoiseAdder(0.02, Rng(42)); }, false,
                       1e-12);
}

TEST(BackendCross, CompositesStayClose) {
  // Through limiters, slew clamps and droop feedback the ULP framing
  // stops being meaningful (a clamp can flip on a 1-ULP input change);
  // the contract is absolute closeness of the waveform.
  if (!avx2_usable()) GTEST_SKIP() << "AVX2 backend not usable here";
  auto make = [] {
    ga::VgaBufferConfig cfg;
    auto vga = ga::VariableGainBuffer(cfg, Rng(7));
    vga.set_vctrl(0.9);
    return vga;
  };
  std::vector<double> a, b;
  {
    BackendSelect sel("scalar");
    auto e = make();
    a = run_block(e, 1024);
  }
  {
    BackendSelect sel("avx2");
    auto e = make();
    b = run_block(e, 1024);
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  EXPECT_LT(worst, 1e-9);
}

// ---------------------------------------------------------------------------
// Threaded sweeps per backend
// ---------------------------------------------------------------------------

TEST(BackendThreads, CalibrationBitIdenticalAcrossThreadCountsPerBackend) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 32), sc);
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 3;

  std::vector<std::string> names{"scalar"};
  if (avx2_usable()) names.push_back("avx2");
  for (const auto& name : names) {
    BackendSelect sel(name.c_str());
    gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(7));
    const gc::DelayCalibrator cal(o);
    gu::set_thread_count(1);
    const auto serial = cal.measure_fine_curve(line, stim.wf);
    gu::set_thread_count(4);
    const auto parallel = cal.measure_fine_curve(line, stim.wf);
    gu::set_thread_count(1);
    ASSERT_EQ(serial.xs().size(), parallel.xs().size()) << name;
    for (std::size_t i = 0; i < serial.xs().size(); ++i) {
      ASSERT_EQ(bits(serial.xs()[i]), bits(parallel.xs()[i])) << name;
      ASSERT_EQ(bits(serial.ys()[i]), bits(parallel.ys()[i])) << name;
    }
  }
}
