// Tests for the measurement substrate: stats, histogram, jitter analyzer,
// delay meter.
#include <gtest/gtest.h>

#include <cmath>

#include "measure/delay_meter.h"
#include "measure/histogram.h"
#include "measure/jitter.h"
#include "measure/stats.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gm = gdelay::meas;
namespace gs = gdelay::sig;
using gdelay::util::Rng;

TEST(Stats, Summary) {
  const auto s = gm::summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.peak_to_peak(), 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, EmptyIsZero) {
  const auto s = gm::summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, Quantile) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(gm::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(gm::quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(gm::quantile(xs, 0.5), 2.5);
  EXPECT_THROW(gm::quantile({}, 0.5), std::invalid_argument);
}

TEST(Histogram, BinningAndCounts) {
  gm::Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.7);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.mode_bin(), 0u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(gm::Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(gm::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AsciiRendersRows) {
  gm::Histogram h(0.0, 2.0, 2);
  h.add_all({0.5, 0.5, 1.5});
  const auto art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

TEST(Jitter, CleanGridHasZeroTj) {
  std::vector<double> ts;
  for (int i = 0; i < 50; ++i) ts.push_back(100.0 + 156.25 * i);
  const auto rep = gm::analyze_jitter(ts, 156.25);
  EXPECT_EQ(rep.n_edges, 50u);
  EXPECT_NEAR(rep.tj_pp_ps, 0.0, 1e-9);
  EXPECT_NEAR(rep.rj_rms_ps, 0.0, 1e-9);
}

TEST(Jitter, RecoversKnownGaussianJitter) {
  Rng rng(11);
  std::vector<double> ts;
  for (int i = 0; i < 4000; ++i)
    ts.push_back(100.0 + 156.25 * i + rng.gaussian(0.0, 2.0));
  const auto rep = gm::analyze_jitter(ts, 156.25);
  EXPECT_NEAR(rep.rj_rms_ps, 2.0, 0.15);
  // pp of 4000 Gaussians ~ 2 * sigma * sqrt(2 ln 4000) ~ 16.3 ps.
  EXPECT_NEAR(rep.tj_pp_ps, 16.3, 3.5);
}

TEST(Jitter, PhaseWrapHandled) {
  // Crossings sitting exactly at the fold boundary must not split into
  // two clusters: put the grid phase at 0 (worst case).
  Rng rng(13);
  std::vector<double> ts;
  for (int i = 0; i < 1000; ++i)
    ts.push_back(156.25 * i + rng.gaussian(0.0, 1.0));
  const auto rep = gm::analyze_jitter(ts, 156.25);
  EXPECT_NEAR(rep.rj_rms_ps, 1.0, 0.15);
  EXPECT_LT(rep.tj_pp_ps, 20.0);  // a split would give ~UI
}

TEST(Jitter, SquareDjShowsInTotalJitter) {
  // Alternating +/-5 ps offsets (square DJ): TJ = 10 ps exactly; the
  // residual stddev equals the DJ amplitude.
  std::vector<double> ts;
  for (int i = 0; i < 500; ++i)
    ts.push_back(156.25 * i + ((i & 1) ? 5.0 : -5.0));
  const auto rep = gm::analyze_jitter(ts, 156.25);
  EXPECT_NEAR(rep.tj_pp_ps, 10.0, 0.1);
  EXPECT_NEAR(rep.rj_rms_ps, 5.0, 0.1);
}

TEST(Jitter, DualDiracNearZeroForPureGaussian) {
  // For pure Gaussian jitter the deterministic estimate stays near zero:
  // observed pp matches the Gaussian-expected pp at this population.
  Rng rng(19);
  std::vector<double> ts;
  for (int i = 0; i < 2000; ++i)
    ts.push_back(156.25 * i + rng.gaussian(0.0, 2.0));
  const auto rep = gm::analyze_jitter(ts, 156.25);
  EXPECT_LT(rep.dj_pp_ps, 0.35 * rep.tj_pp_ps);
}

TEST(Jitter, MeasureFromWaveform) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  sc.rj_sigma_ps = 1.5;
  Rng rng(7);
  const auto r = gs::synthesize_nrz(gs::prbs(7, 300), sc, &rng);
  const auto rep = gm::measure_jitter(r.wf, r.unit_interval_ps);
  EXPECT_NEAR(rep.rj_rms_ps, 1.5, 0.3);
}

TEST(Jitter, RejectsBadUi) {
  EXPECT_THROW(gm::analyze_jitter({1.0}, 0.0), std::invalid_argument);
}

TEST(DelayMeter, RecoversPureShift) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto r = gs::synthesize_nrz(gs::prbs(7, 64), sc);
  const auto shifted = r.wf.shifted(42.0);
  const auto d = gm::measure_delay(r.wf, shifted);
  EXPECT_NEAR(d.mean_ps, 42.0, 1e-6);
  EXPECT_NEAR(d.stddev_ps, 0.0, 1e-6);
  EXPECT_GT(d.n_edges, 10u);
}

TEST(DelayMeter, ShiftLargerThanUi) {
  // Order-based pairing: latency of several UIs is measured exactly.
  gs::SynthConfig sc;
  sc.rate_gbps = 6.4;
  const auto r = gs::synthesize_nrz(gs::prbs(7, 64), sc);
  const auto d = gm::measure_delay(r.wf, r.wf.shifted(400.0));
  EXPECT_NEAR(d.mean_ps, 400.0, 1e-6);
}

TEST(DelayMeter, EqualCountsEnforcedWhenRequested) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto a = gs::synthesize_nrz(gs::prbs(7, 64), sc);
  const auto b = gs::synthesize_nrz(gs::prbs(7, 32), sc);
  gm::DelayMeterOptions o;
  o.require_equal_counts = true;
  EXPECT_THROW(gm::measure_delay(a.wf, b.wf, o), std::runtime_error);
}

TEST(DelayMeter, EdgesApiDirect) {
  std::vector<double> rt{100.0, 200.0, 350.0, 500.0};
  std::vector<bool> rr{true, false, true, false};
  std::vector<double> ot{110.0, 210.0, 360.0, 510.0};
  const auto d = gm::measure_delay_edges(rt, rr, ot, rr);
  EXPECT_NEAR(d.mean_ps, 10.0, 1e-9);
  EXPECT_EQ(d.n_edges, 4u);
}

TEST(DelayMeter, EmptyEdgesThrow) {
  EXPECT_THROW(gm::measure_delay_edges({}, {}, {1.0}, {true}),
               std::runtime_error);
}

TEST(DelayMeter, WrapDelay) {
  EXPECT_DOUBLE_EQ(gm::wrap_delay(10.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(gm::wrap_delay(60.0, 100.0), -40.0);
  EXPECT_DOUBLE_EQ(gm::wrap_delay(-60.0, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(gm::wrap_delay(250.0, 100.0), -50.0);
}

TEST(DelayMeter, PhaseDelayOnClock) {
  gs::SynthConfig sc;
  const auto r = gs::synthesize_clock(5.0, 40, sc);
  const double shift = 13.0;
  const double d =
      gm::measure_phase_delay(r.wf, r.wf.shifted(shift), r.unit_interval_ps);
  EXPECT_NEAR(d, shift, 0.05);
}

TEST(DelayMeter, PhaseDelayWraps) {
  gs::SynthConfig sc;
  const auto r = gs::synthesize_clock(5.0, 40, sc);  // ui = 100 ps
  // 113 ps shift is indistinguishable from 13 ps on a clock.
  const double d =
      gm::measure_phase_delay(r.wf, r.wf.shifted(113.0), r.unit_interval_ps);
  EXPECT_NEAR(d, 13.0, 0.05);
}
