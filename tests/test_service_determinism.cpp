// The service determinism contract, enforced byte-for-byte.
//
// A CalService response is a pure function of the request content and
// the service config. This suite serializes response transcripts
// (everything except the diagnostic cache_hit flag) and asserts byte
// identity across every axis the engine is allowed to vary on:
//
//   * arrival order        (forward / reversed / interleaved submission)
//   * shard count          ({1, 2, 4, 8} replicas)
//   * thread count         (GDELAY_THREADS equivalent: 1 vs 4 workers)
//   * cache state          (cold, warm, and cache-disabled per-request)
//   * compute backend      (bit-stable within each usable backend;
//                           across backends the one-pole recursion's
//                           <=16 eps envelope applies, checked loosely)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "service/config.h"
#include "service/service.h"
#include "util/thread_pool.h"

namespace gd = gdelay;
using gd::service::CalRequest;
using gd::service::CalResponse;
using gd::service::CalService;
using gd::service::RequestKind;
using gd::service::ServiceConfig;

namespace {

ServiceConfig base_config(int n_shards) {
  ServiceConfig cfg;
  cfg.n_shards = n_shards;
  cfg.board.n_channels = 2;
  cfg.seed = 314;
  cfg.calibration.n_vctrl_points = 3;
  cfg.stim_bits = 24;
  cfg.batch_trigger = 1 << 20;
  return cfg;
}

// A mixed workload: both channels, two temperature points (so two cache
// keys per channel), all three request kinds, duplicate targets.
std::vector<CalRequest> workload() {
  std::vector<CalRequest> reqs;
  const double temps[2] = {0.0, 12.0};
  std::uint64_t id = 0;
  for (int ch = 0; ch < 2; ++ch) {
    for (double t : temps) {
      for (double target : {15.0, 60.0, 15.0}) {
        CalRequest r;
        r.id = id++;
        r.channel = ch;
        r.kind = id % 3 == 0 ? RequestKind::kMeasure
                             : (id % 3 == 1 ? RequestKind::kPlan
                                            : RequestKind::kProgram);
        r.target_delay_ps = target;
        r.temp_c = t;
        reqs.push_back(r);
      }
    }
  }
  return reqs;
}

void append_bytes(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

// Transcript bytes for one response: every field except cache_hit (a
// diagnostic that legitimately differs between a cold and a warm pass).
std::string transcript(const std::vector<CalResponse>& responses) {
  std::string out;
  for (const CalResponse& r : responses) {
    append_bytes(out, &r.id, sizeof(r.id));
    append_bytes(out, &r.channel, sizeof(r.channel));
    const auto kind = static_cast<std::uint8_t>(r.kind);
    append_bytes(out, &kind, sizeof(kind));
    append_bytes(out, &r.temp_point_c, sizeof(r.temp_point_c));
    append_bytes(out, &r.setting.tap, sizeof(r.setting.tap));
    append_bytes(out, &r.setting.dac_code, sizeof(r.setting.dac_code));
    append_bytes(out, &r.setting.vctrl_v, sizeof(r.setting.vctrl_v));
    append_bytes(out, &r.setting.predicted_delay_ps,
                 sizeof(r.setting.predicted_delay_ps));
    append_bytes(out, &r.measured_delay_ps, sizeof(r.measured_delay_ps));
  }
  return out;
}

enum class Order { kForward, kReversed, kInterleaved };

std::string run_transcript(int n_shards, Order order, bool cache_enabled,
                           bool prewarm = false) {
  ServiceConfig cfg = base_config(n_shards);
  cfg.cache_enabled = cache_enabled;
  CalService svc(cfg);
  std::vector<CalRequest> reqs = workload();
  if (prewarm) {
    // Populate every cache entry, then throw those responses away: the
    // transcript pass below runs fully warm.
    for (const CalRequest& r : reqs) svc.submit(r);
    svc.drain();
  }
  switch (order) {
    case Order::kForward:
      break;
    case Order::kReversed:
      std::reverse(reqs.begin(), reqs.end());
      break;
    case Order::kInterleaved: {
      // Odd ids first, then even — a stable shuffle with no RNG.
      std::stable_partition(reqs.begin(), reqs.end(),
                            [](const CalRequest& r) { return r.id % 2 == 1; });
      break;
    }
  }
  for (const CalRequest& r : reqs) svc.submit(r);
  return transcript(svc.drain());
}

}  // namespace

TEST(ServiceDeterminism, ArrivalOrderInvariance) {
  const std::string forward = run_transcript(2, Order::kForward, true);
  EXPECT_EQ(run_transcript(2, Order::kReversed, true), forward);
  EXPECT_EQ(run_transcript(2, Order::kInterleaved, true), forward);
}

TEST(ServiceDeterminism, ShardCountInvariance) {
  const std::string one = run_transcript(1, Order::kForward, true);
  for (int shards : {2, 4, 8}) {
    EXPECT_EQ(run_transcript(shards, Order::kForward, true), one)
        << "shards=" << shards;
  }
}

TEST(ServiceDeterminism, ThreadCountInvariance) {
  const int original = gd::util::thread_count();
  gd::util::set_thread_count(1);
  const std::string serial = run_transcript(4, Order::kForward, true);
  gd::util::set_thread_count(4);
  const std::string parallel = run_transcript(4, Order::kInterleaved, true);
  gd::util::set_thread_count(original);
  EXPECT_EQ(parallel, serial);
}

TEST(ServiceDeterminism, CacheStateInvariance) {
  // Cold cache, warm cache, and no cache at all: identical bytes. The
  // cache is purely a throughput lever.
  const std::string cold = run_transcript(2, Order::kForward, true);
  const std::string warm =
      run_transcript(2, Order::kForward, true, /*prewarm=*/true);
  const std::string uncached = run_transcript(2, Order::kForward, false);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(uncached, cold);
}

TEST(ServiceDeterminism, RepeatRunsAreByteIdentical) {
  EXPECT_EQ(run_transcript(4, Order::kForward, true),
            run_transcript(4, Order::kForward, true));
}

TEST(ServiceDeterminism, PerBackendBitStability) {
  // Within each usable backend the full cross-axis contract holds;
  // across backends the recursion envelope allows tiny drift, so
  // transcripts are compared per-backend only.
  std::vector<std::string> backends = {"scalar"};
  if (gd::backend::cpu_supports_avx2()) backends.push_back("avx2");
  for (const std::string& name : backends) {
    gd::backend::select(name.c_str());
    const std::string ref = run_transcript(1, Order::kForward, true);
    EXPECT_EQ(run_transcript(4, Order::kReversed, true), ref)
        << "backend=" << name;
    EXPECT_EQ(run_transcript(2, Order::kForward, false), ref)
        << "backend=" << name;
  }
  gd::backend::select("auto");
}
