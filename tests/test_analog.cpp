// Tests for the primitive analog elements.
#include <gtest/gtest.h>

#include <cmath>

#include "analog/buffer.h"
#include "analog/coupling.h"
#include "analog/element.h"
#include "analog/primitives.h"
#include "analog/tline.h"
#include "signal/edges.h"
#include "signal/waveform.h"
#include "util/rng.h"
#include "util/units.h"

namespace ga = gdelay::analog;
namespace gs = gdelay::sig;
using gdelay::util::Rng;

namespace {
constexpr double kDt = 0.25;

gs::Waveform step_input(double level = 1.0, std::size_t n = 4000) {
  gs::Waveform w(0.0, kDt, n);
  for (std::size_t i = n / 4; i < n; ++i) w[i] = level;
  return w;
}
}  // namespace

TEST(SinglePoleFilter, TimeConstant) {
  ga::SinglePoleFilter f(1.0);  // 1 GHz -> tau ~= 159.15 ps
  EXPECT_NEAR(f.tau_ps(), 159.15, 0.1);
  const auto out = f.process(step_input(1.0, 12000));  // 3 ns span
  // After exactly one tau from the step, output = 1 - e^-1.
  const double t_step = 3000.0 * kDt;  // n/4 * dt
  EXPECT_NEAR(out.value_at(t_step + f.tau_ps()), 1.0 - std::exp(-1.0), 0.01);
  // Settles eventually (>= 14 tau of headroom).
  EXPECT_NEAR(out[out.size() - 1], 1.0, 1e-3);
}

TEST(SinglePoleFilter, DtInvariance) {
  // Exact discretization: halving dt must not change the response shape.
  ga::SinglePoleFilter f1(2.0), f2(2.0);
  double y1 = 0.0, y2 = 0.0;
  for (int i = 0; i < 100; ++i) y1 = f1.step(1.0, 1.0);
  for (int i = 0; i < 200; ++i) y2 = f2.step(1.0, 0.5);
  EXPECT_NEAR(y1, y2, 1e-9);
}

TEST(SinglePoleFilter, RejectsBadBandwidth) {
  EXPECT_THROW(ga::SinglePoleFilter(0.0), std::invalid_argument);
}

TEST(SlewRateLimiter, RampSlope) {
  ga::SlewRateLimiter s(0.01);  // 10 mV/ps
  const auto out = s.process(step_input(1.0));
  // Find the ramp and check its slope.
  const double t_step = 1000.0 * kDt;
  EXPECT_NEAR(out.value_at(t_step + 50.0), 0.5, 0.01);
  EXPECT_NEAR(out.value_at(t_step + 100.0), 1.0, 0.01);
}

TEST(SlewRateLimiter, PassesSlowSignals) {
  ga::SlewRateLimiter s(1.0);  // very fast
  auto in = gs::Waveform::from_function(0.0, kDt, 1000, [](double t) {
    return 0.3 * std::sin(2.0 * gdelay::util::kPi * t / 500.0);
  });
  const auto out = s.process(in);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_NEAR(out[i], in[i], 1e-6);
}

TEST(SlewRateLimiter, LinearRegionSettlesExponentially) {
  // With tau_lin, a small step (below S * tau_lin) never hits the slew
  // clamp and settles like a one-pole.
  ga::SlewRateLimiter s(0.01, 20.0);
  double y = s.step(0.0, 0.25);  // first sample snaps to the input (0)
  for (int i = 0; i < 80; ++i) y = s.step(0.1, 0.25);  // 20 ps elapsed
  EXPECT_NEAR(y, 0.1 * (1.0 - std::exp(-1.0)), 0.01);
}

TEST(SlewRateLimiter, FirstSampleSnaps) {
  ga::SlewRateLimiter s(0.001);
  EXPECT_DOUBLE_EQ(s.step(0.7, 0.25), 0.7);
}

TEST(TanhLimiter, SmallSignalGain) {
  ga::TanhLimiter t(3.0, 0.5);
  EXPECT_NEAR(t.step(0.01, kDt), 0.03, 1e-4);
}

TEST(TanhLimiter, Saturates) {
  ga::TanhLimiter t(3.0, 0.5);
  EXPECT_LT(t.step(10.0, kDt), 0.5 + 1e-9);
  EXPECT_GT(t.step(-10.0, kDt), -0.5 - 1e-9);
  EXPECT_NEAR(t.step(10.0, kDt), 0.5, 1e-6);
}

TEST(GainStage, Scales) {
  ga::GainStage g(2.5);
  EXPECT_DOUBLE_EQ(g.step(0.2, kDt), 0.5);
  g.set_gain(-1.0);
  EXPECT_DOUBLE_EQ(g.step(0.2, kDt), -0.2);
}

TEST(NoiseAdder, DensityScalesWithDt) {
  // sigma_sample = density / sqrt(dt): statistics check at two dts.
  for (double dt : {0.25, 1.0}) {
    ga::NoiseAdder n(0.01, Rng(5));
    double sq = 0.0;
    const int count = 20000;
    for (int i = 0; i < count; ++i) {
      const double v = n.step(0.0, dt);
      sq += v * v;
    }
    const double sd = std::sqrt(sq / count);
    EXPECT_NEAR(sd, 0.01 / std::sqrt(dt), 0.002);
  }
}

TEST(NoiseAdder, ZeroDensityIsTransparent) {
  ga::NoiseAdder n(0.0, Rng(5));
  EXPECT_DOUBLE_EQ(n.step(0.123, kDt), 0.123);
}

TEST(FractionalDelay, IntegerDelay) {
  ga::FractionalDelay d(5.0);
  // Feed a ramp at dt=1: output must be input delayed by exactly 5.
  std::vector<double> out;
  for (int i = 0; i < 20; ++i) out.push_back(d.step(static_cast<double>(i), 1.0));
  for (int i = 6; i < 20; ++i) EXPECT_NEAR(out[static_cast<std::size_t>(i)], i - 5.0, 1e-9);
}

TEST(FractionalDelay, SubSampleDelay) {
  ga::FractionalDelay d(2.5);
  std::vector<double> out;
  for (int i = 0; i < 20; ++i) out.push_back(d.step(static_cast<double>(i), 1.0));
  for (int i = 4; i < 20; ++i) EXPECT_NEAR(out[static_cast<std::size_t>(i)], i - 2.5, 1e-9);
}

TEST(FractionalDelay, ZeroDelayPassesThrough) {
  ga::FractionalDelay d(0.0);
  EXPECT_DOUBLE_EQ(d.step(0.42, 0.25), 0.42);
  EXPECT_DOUBLE_EQ(d.step(0.43, 0.25), 0.43);
}

TEST(FractionalDelay, EdgeTimingThroughWaveform) {
  // A synthesized edge through a 33 ps line shifts by exactly 33 ps.
  ga::FractionalDelay d(33.0);
  auto in = step_input(0.8);
  in.scale(1.0, -0.4);  // center around 0
  const auto out = d.process(in);
  const auto ei = gs::extract_edges(in);
  const auto eo = gs::extract_edges(out);
  ASSERT_EQ(ei.size(), 1u);
  ASSERT_EQ(eo.size(), 1u);
  EXPECT_NEAR(eo[0].t_ps - ei[0].t_ps, 33.0, 0.01);
}

TEST(Cascade, ChainsElements) {
  ga::Cascade c;
  c.emplace<ga::GainStage>(2.0);
  c.emplace<ga::GainStage>(3.0);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.step(1.0, kDt), 6.0);
}

TEST(TransmissionLine, DelayAndLoss) {
  ga::TransmissionLineConfig cfg;
  cfg.delay_ps = 66.0;
  cfg.loss_db = 6.0206;  // factor 0.5
  ga::TransmissionLine t(cfg);
  auto in = step_input(0.8);
  in.scale(1.0, -0.4);
  const auto out = t.process(in);
  const auto ei = gs::extract_edges(in);
  const auto eo = gs::extract_edges(out);
  ASSERT_EQ(eo.size(), 1u);
  EXPECT_NEAR(eo[0].t_ps - ei[0].t_ps, 66.0, 0.01);
  EXPECT_NEAR(out[out.size() - 1], 0.2, 1e-3);  // 0.4 * 0.5
}

TEST(TransmissionLine, DispersionSlowsEdge) {
  ga::TransmissionLineConfig fast;
  fast.delay_ps = 10.0;
  ga::TransmissionLineConfig slow = fast;
  slow.dispersion_f3db_ghz = 3.0;
  auto in = step_input(0.8);
  in.scale(1.0, -0.4);
  const auto of = ga::TransmissionLine(fast).process(in);
  const auto os = ga::TransmissionLine(slow).process(in);
  // Dispersion delays the 50 % point further and rounds the edge.
  const auto ef = gs::extract_edges(of);
  const auto es = gs::extract_edges(os);
  ASSERT_EQ(ef.size(), 1u);
  ASSERT_EQ(es.size(), 1u);
  EXPECT_GT(es[0].t_ps, ef[0].t_ps + 10.0);
}

TEST(TraceLoss, ScalesWithLength) {
  EXPECT_DOUBLE_EQ(ga::trace_loss_db(0.0, 1.2), 0.0);
  EXPECT_DOUBLE_EQ(ga::trace_loss_db(100.0, 1.2), 1.2);
  EXPECT_DOUBLE_EQ(ga::trace_loss_db(50.0, 1.2), 0.6);
}

TEST(AcCoupler, BlocksDc) {
  ga::AcCoupler c(0.01);
  double y = 1.0;
  for (int i = 0; i < 400000; ++i) y = c.step(1.0, 1.0);
  EXPECT_NEAR(y, 0.0, 1e-3);
}

TEST(AcCoupler, PassesFastEdges) {
  ga::AcCoupler c(0.001);  // 1 MHz corner: ~transparent at GHz
  c.step(0.0, 0.25);
  const double y = c.step(0.5, 0.25);  // step of 0.5 passes through
  EXPECT_NEAR(y, 0.5, 0.01);
}

TEST(AcCoupler, StartsSettled) {
  ga::AcCoupler c(0.01);
  EXPECT_DOUBLE_EQ(c.step(5.0, 0.25), 0.0);  // DC at t=0 -> no kick
}

TEST(Attenuator, Factor) {
  ga::Attenuator a(6.0206);
  EXPECT_NEAR(a.factor(), 0.5, 1e-4);
  EXPECT_NEAR(a.step(0.8, kDt), 0.4, 1e-4);
  EXPECT_THROW(ga::Attenuator(-1.0), std::invalid_argument);
}

TEST(NoiseSource, SigmaIndependentOfBandwidthAndDt) {
  for (double bw : {0.3, 3.0}) {
    for (double dt : {0.25, 1.0}) {
      ga::NoiseSource n(0.15, bw, Rng(17));
      double sq = 0.0;
      const int count = 200000;
      for (int i = 0; i < count; ++i) {
        const double v = n.step(dt);
        sq += v * v;
      }
      EXPECT_NEAR(std::sqrt(sq / count), 0.15, 0.015)
          << "bw=" << bw << " dt=" << dt;
    }
  }
}

TEST(NoiseSource, BandLimitingCorrelatesSamples) {
  // Lag-1 autocorrelation at dt << 1/bw must be high.
  ga::NoiseSource n(1.0, 0.3, Rng(21));
  double prev = n.step(0.25);
  double c01 = 0.0, c00 = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double cur = n.step(0.25);
    c01 += prev * cur;
    c00 += prev * prev;
    prev = cur;
  }
  EXPECT_GT(c01 / c00, 0.9);
}

TEST(NoiseSource, WaveformRender) {
  ga::NoiseSource n(0.1, 1.0, Rng(2));
  const auto wf = n.waveform(0.0, 0.5, 100);
  EXPECT_EQ(wf.size(), 100u);
  EXPECT_GT(wf.peak_to_peak(), 0.0);
}

// ---- clone(): the deep-copy contract behind clone-based sweeps ----------

TEST(Clone, ContinuesByteIdenticallyFromMidRunState) {
  // Clone an element mid-run: original and clone must produce identical
  // bytes forever after (complete state capture, RNG stream included).
  gdelay::analog::VgaBufferConfig cfg;
  ga::VariableGainBuffer buf(cfg, Rng(7));
  const auto in = step_input(0.3, 2000);
  for (std::size_t i = 0; i < 1000; ++i) buf.step(in[i], kDt);
  const auto copy = buf.clone();
  for (std::size_t i = 1000; i < 2000; ++i) {
    const double a = buf.step(in[i], kDt);
    const double b = copy->step(in[i], kDt);
    ASSERT_EQ(a, b) << "clone diverged at sample " << i;
  }
}

TEST(Clone, CascadeDeepCopiesStages) {
  ga::Cascade c;
  c.emplace<ga::SinglePoleFilter>(5.0);
  c.emplace<ga::FractionalDelay>(12.5);
  c.emplace<ga::TanhLimiter>(2.0, 0.4);
  const auto in = step_input();
  for (std::size_t i = 0; i < 500; ++i) c.step(in[i], kDt);
  const auto copy = c.clone();
  // Stepping the copy must not disturb the original (no shared stages).
  const double next_orig = c.step(in[500], kDt);
  ga::Cascade fresh;  // replay the original to the same point
  fresh.emplace<ga::SinglePoleFilter>(5.0);
  fresh.emplace<ga::FractionalDelay>(12.5);
  fresh.emplace<ga::TanhLimiter>(2.0, 0.4);
  for (std::size_t i = 0; i < 500; ++i) fresh.step(in[i], kDt);
  for (std::size_t i = 0; i < 200; ++i) copy->step(0.123, kDt);
  EXPECT_EQ(next_orig, fresh.step(in[500], kDt));
}

TEST(Clone, ForkNoiseDecorrelatesClones) {
  // After fork_noise with distinct streams, two clones of one noisy
  // element must draw different noise (and deterministically so).
  ga::NoiseAdder src(0.02, Rng(3));
  auto a = src.clone();
  auto b = src.clone();
  static_cast<ga::NoiseAdder*>(a.get())->fork_noise(1);
  static_cast<ga::NoiseAdder*>(b.get())->fork_noise(2);
  auto a2 = a->clone();  // same stream as a: must match a exactly
  int diff_ab = 0;
  for (int i = 0; i < 64; ++i) {
    const double va = a->step(0.0, kDt);
    const double vb = b->step(0.0, kDt);
    const double va2 = a2->step(0.0, kDt);
    if (va != vb) ++diff_ab;
    ASSERT_EQ(va, va2);
  }
  EXPECT_GT(diff_ab, 60);
}
