// Tests for the sampled-waveform container.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "signal/waveform.h"

using gdelay::sig::Waveform;

TEST(Waveform, ConstructionAndAccessors) {
  Waveform w(10.0, 0.5, 5);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w.t0_ps(), 10.0);
  EXPECT_DOUBLE_EQ(w.dt_ps(), 0.5);
  EXPECT_DOUBLE_EQ(w.time_at(0), 10.0);
  EXPECT_DOUBLE_EQ(w.time_at(4), 12.0);
  EXPECT_DOUBLE_EQ(w.t_end_ps(), 12.0);
  EXPECT_DOUBLE_EQ(w.duration_ps(), 2.0);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_DOUBLE_EQ(w[i], 0.0);
}

TEST(Waveform, RejectsBadDt) {
  EXPECT_THROW(Waveform(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Waveform(0.0, -1.0, 4), std::invalid_argument);
}

TEST(Waveform, FromFunction) {
  const auto w = Waveform::from_function(0.0, 1.0, 11,
                                         [](double t) { return 2.0 * t; });
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[10], 20.0);
}

TEST(Waveform, ValueAtInterpolates) {
  Waveform w(0.0, 1.0, {0.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(w.value_at(0.5), 5.0);
  EXPECT_DOUBLE_EQ(w.value_at(1.25), 12.5);
}

TEST(Waveform, ValueAtClampsOutside) {
  Waveform w(0.0, 1.0, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(w.value_at(-5.0), 3.0);
  EXPECT_DOUBLE_EQ(w.value_at(99.0), 4.0);
}

TEST(Waveform, MinMaxPp) {
  Waveform w(0.0, 1.0, {-0.4, 0.1, 0.4, -0.2});
  EXPECT_DOUBLE_EQ(w.min_value(), -0.4);
  EXPECT_DOUBLE_EQ(w.max_value(), 0.4);
  EXPECT_DOUBLE_EQ(w.peak_to_peak(), 0.8);
}

TEST(Waveform, ScaleInPlace) {
  Waveform w(0.0, 1.0, {1.0, 2.0});
  w.scale(2.0, 0.5);
  EXPECT_DOUBLE_EQ(w[0], 2.5);
  EXPECT_DOUBLE_EQ(w[1], 4.5);
}

TEST(Waveform, ShiftedRelabelsTime) {
  Waveform w(100.0, 1.0, {1.0, 2.0});
  const auto s = w.shifted(25.0);
  EXPECT_DOUBLE_EQ(s.t0_ps(), 125.0);
  EXPECT_DOUBLE_EQ(s[0], 1.0);  // samples untouched
  EXPECT_DOUBLE_EQ(w.t0_ps(), 100.0);
}

TEST(Waveform, Slice) {
  const auto w = Waveform::from_function(0.0, 1.0, 10,
                                         [](double t) { return t; });
  const auto s = w.slice(2.0, 5.0);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.t0_ps(), 2.0);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[3], 5.0);
}

TEST(Waveform, SliceOutOfRangeClamps) {
  Waveform w(0.0, 1.0, {1.0, 2.0, 3.0});
  const auto s = w.slice(-10.0, 10.0);
  EXPECT_EQ(s.size(), 3u);
}

TEST(Waveform, AddSubtract) {
  Waveform a(0.0, 1.0, {1.0, 2.0});
  Waveform b(0.0, 1.0, {0.5, 0.5});
  const auto sum = Waveform::add(a, b);
  EXPECT_DOUBLE_EQ(sum[0], 1.5);
  const auto diff = Waveform::subtract(a, b);
  EXPECT_DOUBLE_EQ(diff[1], 1.5);
}

TEST(Waveform, AddGridMismatchThrows) {
  Waveform a(0.0, 1.0, {1.0, 2.0});
  Waveform b(0.5, 1.0, {1.0, 2.0});
  EXPECT_THROW(Waveform::add(a, b), std::invalid_argument);
  Waveform c(0.0, 1.0, {1.0, 2.0, 3.0});
  EXPECT_THROW(Waveform::add(a, c), std::invalid_argument);
}

TEST(Waveform, EmptyBehaviour) {
  Waveform w;
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.value_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.peak_to_peak(), 0.0);
  EXPECT_DOUBLE_EQ(w.duration_ps(), 0.0);
}
