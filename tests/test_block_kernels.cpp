// Byte-identity of the block-processing path.
//
// `process_block()` is contractually an optimization, never a semantic
// fork: for every element and composite, `n` blocked samples must equal
// `n` step() calls bit for bit — same doubles, same RNG draw order, same
// state afterwards. These tests drive a step-path twin and a block-path
// twin (identically constructed, identically seeded) through the same
// stimulus, including mid-run dt changes and awkward chunk sizes, and
// compare raw bit patterns. Any tolerance here would defeat the point:
// the calibration tables and the deterministic parallel sweeps rely on
// the two paths being interchangeable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "analog/buffer.h"
#include "analog/coupling.h"
#include "analog/differential.h"
#include "analog/element.h"
#include "analog/primitives.h"
#include "analog/tline.h"
#include "core/channel.h"
#include "core/coarse_delay.h"
#include "core/fine_delay.h"
#include "signal/waveform.h"
#include "util/fastmath.h"
#include "util/rng.h"
#include "util/units.h"

namespace ga = gdelay::analog;
namespace gc = gdelay::core;
namespace gs = gdelay::sig;
using gdelay::util::Rng;

namespace {

std::uint64_t bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

// Edgy deterministic stimulus: two incommensurate tones plus a square
// wave, so limiters saturate, slew limiters hit their rails, and filters
// see both slow and fast content.
std::vector<double> stimulus(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    v[i] = 0.35 * std::sin(0.07 * t) + 0.15 * std::sin(0.011 * t + 0.5) +
           ((i / 37) % 2 ? 0.2 : -0.2);
  }
  return v;
}

struct Segment {
  std::size_t n;
  double dt;
};

// The dt schedule every element is checked against: a mid-run rate
// change in both directions, segment lengths with no common factor with
// any chunk size.
const std::vector<Segment> kSegments{{701, 0.25}, {613, 0.4}, {509, 0.25}};

constexpr std::size_t kChunks[] = {1, 7, 256, 1024};

// Drives `ref` per-sample and `blk` via process_block over the same
// stimulus and dt schedule; every output must match bitwise.
template <typename E>
void expect_block_matches_step(E& ref, E& blk, std::size_t chunk) {
  std::size_t total = 0;
  for (const auto& s : kSegments) total += s.n;
  const auto in = stimulus(total);
  std::vector<double> want(total), got(total, -1.0);

  std::size_t off = 0;
  for (const auto& s : kSegments) {
    for (std::size_t i = 0; i < s.n; ++i)
      want[off + i] = ref.step(in[off + i], s.dt);
    off += s.n;
  }
  off = 0;
  for (const auto& s : kSegments) {
    for (std::size_t o = 0; o < s.n; o += chunk)
      blk.process_block(in.data() + off + o, got.data() + off + o,
                        std::min(chunk, s.n - o), s.dt);
    off += s.n;
  }
  for (std::size_t i = 0; i < total; ++i)
    ASSERT_EQ(bits(want[i]), bits(got[i]))
        << "sample " << i << ": step=" << want[i] << " block=" << got[i]
        << " (chunk " << chunk << ")";
}

// Builds a fresh twin pair per chunk size (elements are stateful).
template <typename MakeFn>
void check_element(MakeFn make) {
  for (std::size_t chunk : kChunks) {
    auto ref = make();
    auto blk = make();
    expect_block_matches_step(ref, blk, chunk);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace

TEST(BlockKernel, SinglePoleFilter) {
  check_element([] { return ga::SinglePoleFilter(6.5); });
}

TEST(BlockKernel, TanhLimiter) {
  check_element([] { return ga::TanhLimiter(3.0, 0.4); });
}

TEST(BlockKernel, GainStage) {
  check_element([] { return ga::GainStage(1.7); });
}

TEST(BlockKernel, Attenuator) {
  check_element([] { return ga::Attenuator(2.5); });
}

TEST(BlockKernel, SlewRateLimiter) {
  // All three regimes: pure slew, + linear settling, + conductance leak.
  check_element([] { return ga::SlewRateLimiter(0.004); });
  check_element([] { return ga::SlewRateLimiter(0.004, 20.0); });
  check_element([] { return ga::SlewRateLimiter(0.004, 20.0, 300.0); });
}

TEST(BlockKernel, AcCoupler) {
  check_element([] { return ga::AcCoupler(0.01); });
}

TEST(BlockKernel, NoiseAdder) {
  check_element([] { return ga::NoiseAdder(0.02, Rng(42)); });
}

TEST(BlockKernel, FractionalDelayElement) {
  check_element([] { return ga::FractionalDelay(13.3); });
}

TEST(BlockKernel, TransmissionLine) {
  check_element([] {
    ga::TransmissionLineConfig tl;
    tl.delay_ps = 33.0;
    tl.loss_db = 0.5;
    tl.dispersion_f3db_ghz = 28.0;
    return ga::TransmissionLine(tl);
  });
}

TEST(BlockKernel, DifferentialImbalance) {
  check_element([] {
    ga::DifferentialImbalanceConfig cfg;
    cfg.leg_skew_ps = 2.5;
    cfg.gain_mismatch_frac = 0.08;
    cfg.offset_v = 0.003;
    return ga::DifferentialImbalance(cfg);
  });
}

TEST(BlockKernel, VariableGainBuffer) {
  check_element([] {
    ga::VgaBufferConfig cfg;
    auto vga = ga::VariableGainBuffer(cfg, Rng(7));
    vga.set_vctrl(0.9);
    return vga;
  });
}

TEST(BlockKernel, LimitingBuffer) {
  check_element([] {
    return ga::LimitingBuffer(ga::LimitingBufferConfig{}, Rng(11));
  });
}

TEST(BlockKernel, CascadeStageMajor) {
  // Stage-major reordering across stages with private RNGs: each noise
  // element must keep its own draw sequence even though the execution
  // order over (stage, sample) changes completely.
  auto make = [] {
    ga::Cascade c;
    c.emplace<ga::SinglePoleFilter>(8.0);
    c.emplace<ga::NoiseAdder>(0.015, Rng(101));
    c.emplace<ga::TanhLimiter>(2.0, 0.35);
    c.emplace<ga::NoiseAdder>(0.008, Rng(202));
    c.emplace<ga::SlewRateLimiter>(0.006, 15.0, 250.0);
    return c;
  };
  for (std::size_t chunk : kChunks) {
    auto ref = make();
    auto blk = make();
    expect_block_matches_step(ref, blk, chunk);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(BlockKernel, NoiseSourceBatchedDraws) {
  // NoiseSource has no signal input; check its dedicated block entry
  // point, including the dt change re-deriving the filter coefficients.
  ga::NoiseSource ref(0.012, 7.5, Rng(33));
  ga::NoiseSource blk(0.012, 7.5, Rng(33));
  for (std::size_t chunk : kChunks) {
    ref.reset();
    blk.reset();
    // Streams advance identically, so resetting y_ keeps the twins in
    // lockstep without rebuilding them.
    for (const auto& s : kSegments) {
      std::vector<double> want(s.n), got(s.n, -1.0);
      for (std::size_t i = 0; i < s.n; ++i) want[i] = ref.step(s.dt);
      for (std::size_t o = 0; o < s.n; o += chunk)
        blk.process_block(got.data() + o, std::min(chunk, s.n - o), s.dt);
      for (std::size_t i = 0; i < s.n; ++i)
        ASSERT_EQ(bits(want[i]), bits(got[i])) << "sample " << i;
    }
  }
}

TEST(BlockKernel, FillGaussianMatchesSequentialDraws) {
  // Batch generation must reproduce the exact draw order, including the
  // Box-Muller second-deviate cache across call boundaries.
  Rng a(5), b(5);
  // Leave a cached second deviate pending in both.
  ASSERT_EQ(bits(a.gaussian(0.0, 1.0)), bits(b.gaussian(0.0, 1.0)));
  std::vector<double> want(257), got(257, -1.0);
  for (auto& w : want) w = a.gaussian(1.5, 2.0);
  // Split across two calls with an odd first length so the tail caching
  // path is exercised mid-sequence.
  b.fill_gaussian(got.data(), 101, 1.5, 2.0);
  b.fill_gaussian(got.data() + 101, 156, 1.5, 2.0);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(bits(want[i]), bits(got[i])) << "draw " << i;
  // And the streams stay aligned afterwards.
  EXPECT_EQ(bits(a.gaussian()), bits(b.gaussian()));
}

TEST(BlockKernel, InPlaceAliasingMatchesOutOfPlace) {
  // in == out is part of the contract; the scratch-buffer users
  // (NoiseAdder, DifferentialImbalance, composites) must not read
  // samples they already overwrote.
  auto make = [] { return ga::VariableGainBuffer(ga::VgaBufferConfig{}, Rng(9)); };
  const auto in = stimulus(3000);
  auto a = make();
  auto b = make();
  std::vector<double> sep(in.size(), -1.0), ali = in;
  a.process_block(in.data(), sep.data(), in.size(), 0.25);
  b.process_block(ali.data(), ali.data(), in.size(), 0.25);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_EQ(bits(sep[i]), bits(ali[i])) << "sample " << i;
}

TEST(BlockKernel, FineDelayLineProcessMatchesStepPath) {
  const gc::FineDelayConfig cfg;
  gc::FineDelayLine a(cfg, Rng(77)), b(cfg, Rng(77));
  a.set_vctrl(0.9);
  b.set_vctrl(0.9);
  const auto sig = stimulus(5000);
  gs::Waveform in(0.0, 0.25, sig.size());
  for (std::size_t i = 0; i < sig.size(); ++i) in[i] = sig[i];

  a.reset();
  std::vector<double> want(sig.size());
  for (std::size_t i = 0; i < sig.size(); ++i)
    want[i] = a.step(in[i], in.dt_ps());
  const auto out = b.process(in);

  ASSERT_EQ(out.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(bits(want[i]), bits(out[i])) << "sample " << i;
}

TEST(BlockKernel, CoarseDelayBlockProcessMatchesStepPath) {
  const auto cfg = gc::CoarseDelayConfig::prototype();
  gc::CoarseDelayBlock a(cfg, Rng(55)), b(cfg, Rng(55));
  a.select(2);
  b.select(2);
  const auto sig = stimulus(5000);
  gs::Waveform in(0.0, 0.25, sig.size());
  for (std::size_t i = 0; i < sig.size(); ++i) in[i] = sig[i];

  a.reset();
  std::vector<double> want(sig.size());
  for (std::size_t i = 0; i < sig.size(); ++i)
    want[i] = a.step(in[i], in.dt_ps());
  const auto out = b.process(in);

  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(bits(want[i]), bits(out[i])) << "sample " << i;
}

TEST(BlockKernel, VariableDelayChannelProcessMatchesStepPath) {
  const auto cfg = gc::ChannelConfig::prototype();
  gc::VariableDelayChannel a(cfg, Rng(99)), b(cfg, Rng(99));
  a.select_tap(1);
  b.select_tap(1);
  a.set_vctrl(1.1);
  b.set_vctrl(1.1);
  const auto sig = stimulus(6000);
  gs::Waveform in(0.0, 0.25, sig.size());
  for (std::size_t i = 0; i < sig.size(); ++i) in[i] = sig[i];

  a.reset();
  std::vector<double> want(sig.size());
  for (std::size_t i = 0; i < sig.size(); ++i)
    want[i] = a.step(in[i], in.dt_ps());
  const auto out = b.process(in);

  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(bits(want[i]), bits(out[i])) << "sample " << i;
}

TEST(BlockKernel, ChannelBlockPathLeavesStepStateConsistent) {
  // Mixing the two paths mid-stream on the same object must be seamless:
  // block a prefix, then step the rest, against an all-step reference.
  const auto cfg = gc::ChannelConfig::prototype();
  gc::VariableDelayChannel a(cfg, Rng(123)), b(cfg, Rng(123));
  const auto sig = stimulus(4000);
  std::vector<double> want(sig.size()), got(sig.size(), -1.0);
  for (std::size_t i = 0; i < sig.size(); ++i)
    want[i] = a.step(sig[i], 0.25);
  b.process_block(sig.data(), got.data(), 2500, 0.25);
  for (std::size_t i = 2500; i < sig.size(); ++i)
    got[i] = b.step(sig[i], 0.25);
  for (std::size_t i = 0; i < sig.size(); ++i)
    ASSERT_EQ(bits(want[i]), bits(got[i])) << "sample " << i;
}

TEST(FractionalDelay, DtChangeResamplesHistory) {
  // Regression for the latent dt-change bug: the ring used to be
  // re-primed with the *current input*, teleporting the line's stored
  // waveform forward and collapsing the delay for one fill time. On a
  // ramp v(t) = t with delay D the output must track t - D straight
  // through a sample-rate change.
  const double delay = 10.0;
  ga::FractionalDelay line(delay);
  double t = 0.0;
  double out = 0.0;
  for (int i = 0; i < 200; ++i) {  // warm up well past the delay
    t += 0.5;
    out = line.step(t, 0.5);
  }
  EXPECT_NEAR(out, t - delay, 1e-9);
  // Switch dt mid-run; the very next outputs must continue the ramp.
  for (int i = 0; i < 4; ++i) {
    t += 0.25;
    out = line.step(t, 0.25);
    // Linear interpolation on a linear ramp is exact up to rounding;
    // the old behavior was off by ~delay (10 ps) here.
    ASSERT_NEAR(out, t - delay, 1e-6) << "step " << i << " after dt change";
  }
  // And again going coarser.
  for (int i = 0; i < 4; ++i) {
    t += 1.0;
    out = line.step(t, 1.0);
    ASSERT_NEAR(out, t - delay, 1e-6) << "step " << i << " after 2nd change";
  }
}

TEST(FractionalDelay, DtChangePreservesStoredWaveform) {
  // A sine, not just a ramp: resampling the history onto the new grid
  // keeps the delayed waveform continuous (small interpolation error
  // only), where re-priming produced an O(amplitude) glitch.
  const double delay = 8.0;
  ga::FractionalDelay line(delay);
  auto v = [](double t) { return std::sin(0.35 * t); };
  double t = 0.0;
  for (int i = 0; i < 400; ++i) {
    t += 0.25;
    (void)line.step(v(t), 0.25);
  }
  double worst = 0.0;
  for (int i = 0; i < 40; ++i) {
    t += 0.1;
    const double out = line.step(v(t), 0.1);
    worst = std::max(worst, std::abs(out - v(t - delay)));
  }
  // Linear-interpolation error bound ~ (w*dt)^2/8 ~ 1e-3 at these rates;
  // the old re-priming bug produced errors ~ 0.9 (full amplitude).
  EXPECT_LT(worst, 5e-3);
}

// ---------------------------------------------------------------------------
// Deterministic math kernels (util/fastmath.h). Both execution paths
// call these, so byte-identity above doesn't exercise their accuracy —
// these tests pin the kernels to libm within tight bounds and check the
// structural properties (symmetry, exact saturation, Pythagorean
// identity) the waveform models rely on.
// ---------------------------------------------------------------------------

TEST(DetMath, TanhMatchesLibmAndIsOdd) {
  double worst = 0.0;
  for (int i = -4000; i <= 4000; ++i) {
    const double x = 0.01 * static_cast<double>(i);  // [-40, 40]
    const double got = gdelay::util::det_tanh(x);
    const double ref = std::tanh(x);
    const double denom = std::max(std::abs(ref), 1e-300);
    worst = std::max(worst, std::abs(got - ref) / denom);
    // Exact odd symmetry, bit for bit: det_tanh computes on |x| and
    // copies the sign back, so this must hold with no tolerance.
    ASSERT_EQ(bits(gdelay::util::det_tanh(-x)),
              bits(-gdelay::util::det_tanh(x)))
        << "x = " << x;
  }
  EXPECT_LT(worst, 1e-13);
  // Saturated region returns exactly +/-1 (tanh(20) rounds to 1.0 in
  // double precision already).
  EXPECT_EQ(gdelay::util::det_tanh(25.0), 1.0);
  EXPECT_EQ(gdelay::util::det_tanh(-25.0), -1.0);
  EXPECT_EQ(gdelay::util::det_tanh(1e300), 1.0);
  EXPECT_EQ(gdelay::util::det_tanh(0.0), 0.0);
}

TEST(DetMath, LogMatchesLibmOnUnitInterval) {
  // Box-Muller only evaluates det_log on (0, 1]; sweep that domain
  // including values straddling the internal sqrt(2)/2 mantissa split.
  double worst = 0.0;
  for (int i = 1; i <= 100000; ++i) {
    const double x = static_cast<double>(i) / 100000.0;
    const double got = gdelay::util::det_log(x);
    const double ref = std::log(x);
    const double denom = std::max(std::abs(ref), 1.0);
    worst = std::max(worst, std::abs(got - ref) / denom);
  }
  EXPECT_LT(worst, 1e-15);
  EXPECT_EQ(gdelay::util::det_log(1.0), 0.0);
  // Tiny arguments (deep negative logs) stay accurate: r = sqrt(-2 log u)
  // for the smallest uniform the RNG can produce.
  const double tiny = 0x1.0p-53;
  EXPECT_NEAR(gdelay::util::det_log(tiny), std::log(tiny),
              1e-13 * std::abs(std::log(tiny)));
}

TEST(DetMath, SinCos2PiAccuracyAndIdentities) {
  // Quadrant boundaries are exact by construction (the reduction is
  // exact and the polynomials evaluate at theta = 0).
  double s, c;
  gdelay::util::det_sincos2pi(0.0, s, c);
  EXPECT_EQ(s, 0.0);
  EXPECT_EQ(c, 1.0);
  gdelay::util::det_sincos2pi(0.25, s, c);
  EXPECT_EQ(s, 1.0);
  EXPECT_EQ(c, 0.0);
  gdelay::util::det_sincos2pi(0.5, s, c);
  EXPECT_EQ(s, 0.0);
  EXPECT_EQ(c, -1.0);
  gdelay::util::det_sincos2pi(0.75, s, c);
  EXPECT_EQ(s, -1.0);
  EXPECT_EQ(c, 0.0);
  // Dense sweep of [0, 1): compare against libm evaluated at 2*pi*u.
  // Near sin's zeros the *reference* loses absolute accuracy to the
  // rounding of 2*pi*u (det_sincos2pi reduces exactly and does not),
  // so the comparison uses an absolute tolerance that covers the
  // reference's own ~|u|*ulp(2*pi) argument error.
  double worst_err = 0.0;
  double worst_pyth = 0.0;
  for (int i = 0; i < 99991; ++i) {  // prime stride: avoids lattice points
    const double u = static_cast<double>(i) / 99991.0;
    gdelay::util::det_sincos2pi(u, s, c);
    worst_err = std::max(worst_err, std::abs(s - std::sin(2.0 * gdelay::util::kPi * u)));
    worst_err = std::max(worst_err, std::abs(c - std::cos(2.0 * gdelay::util::kPi * u)));
    worst_pyth = std::max(worst_pyth, std::abs(s * s + c * c - 1.0));
  }
  EXPECT_LT(worst_err, 1e-14);
  EXPECT_LT(worst_pyth, 1e-14);
}
