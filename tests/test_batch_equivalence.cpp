// Lane-batched execution contract (src/backend/backend.h "Lane-batched
// kernels", core/batch.h): every stream of a batched run produces the
// SAME BYTES as its solo run on the same backend — for any batch width,
// any stream-to-lane assignment, and any partition of the sample stream
// into batch calls. Three layers:
//
//   1. Kernel pins: each *_batch kernel against w solo runs of the same
//      table, at widths spanning sub-group, exact-group and
//      group-plus-tail (1, 3, 4, 9), with call partitions that split
//      groups mid-phase, and with per-stream parameter divergence that
//      forces the AVX2 per-stream fallbacks.
//   2. BatchRunner vs solo device runs: FineDelayLine and
//      VariableDelayChannel clones with per-stream fork_noise / Vctrl /
//      tap programming, compared waveform-bitwise; plus lane-assignment
//      invariance (same streams added in a different order) and the
//      sink-path/waveform-path identity.
//   3. The calibration reroute: measure_fine_curve (now lane-batched)
//      against a hand-rolled solo clone sweep — the pre-batching code.
//
// AVX2 cases skip (not fail) without AVX2+FMA; CI's simd job runs them.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "core/batch.h"
#include "core/calibration.h"
#include "core/channel.h"
#include "core/fine_delay.h"
#include "measure/delay_meter.h"
#include "measure/sinks.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace ga = gdelay::analog;
namespace gb = gdelay::backend;
namespace gc = gdelay::core;
namespace gm = gdelay::meas;
namespace gs = gdelay::sig;
using gdelay::util::Rng;

namespace {

std::uint64_t bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

bool avx2_usable() {
  return gb::avx2_kernels() != nullptr && gb::cpu_supports_avx2();
}

struct BackendSelect {
  std::string prev;
  explicit BackendSelect(const char* name) : prev(gb::active().name) {
    gb::select(name);
  }
  ~BackendSelect() { gb::select(prev.c_str()); }
};

const std::size_t kWidths[] = {1, 3, 4, 9};
// Partitions of the batch calls: one whole call, a tiny odd chunk that
// leaves every AVX2 group mid-phase at each seam, and a round mid-size.
const std::size_t kSeams[] = {0, 7, 64};  // 0 = whole

// Per-stream input: distinct smooth+switching content so lanes that
// accidentally mix streams produce loud mismatches.
std::vector<double> stream_input(std::size_t n, std::size_t s) {
  std::vector<double> v(n);
  const double f = 0.05 + 0.013 * static_cast<double>(s);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    v[i] = 0.3 * std::sin(f * t) + ((i / (29 + 2 * s)) % 2 ? 0.2 : -0.2);
  }
  return v;
}

std::vector<const gb::Kernels*> tables() {
  std::vector<const gb::Kernels*> t{&gb::scalar_kernels()};
  if (avx2_usable()) t.push_back(gb::avx2_kernels());
  return t;
}

// Runs `batch_call(lo, n)` over [0, total) in `seam`-sized slices.
template <typename F>
void partitioned(std::size_t total, std::size_t seam, F batch_call) {
  const std::size_t step = seam == 0 ? total : seam;
  for (std::size_t o = 0; o < total; o += step)
    batch_call(o, std::min(step, total - o));
}

}  // namespace

// ---------------------------------------------------------------------------
// Layer 1: kernel pins
// ---------------------------------------------------------------------------

TEST(BatchKernels, OnePoleBatchMatchesSoloAnyWidthAndPartition) {
  constexpr std::size_t kN = 1021;
  for (const gb::Kernels* k : tables()) {
    for (std::size_t w : kWidths) {
      // Solo references, one independent run per stream.
      std::vector<std::vector<double>> in(w), want(w);
      std::vector<double> alpha(w);
      for (std::size_t s = 0; s < w; ++s) {
        in[s] = stream_input(kN, s);
        want[s].resize(kN);
        alpha[s] = 0.05 + 0.09 * static_cast<double>(s);
        gb::OnePoleState st{};
        k->one_pole(in[s].data(), want[s].data(), kN, alpha[s], st);
      }
      for (std::size_t seam : kSeams) {
        std::vector<double> buf(kN * w);
        for (std::size_t s = 0; s < w; ++s)
          for (std::size_t i = 0; i < kN; ++i) buf[i * w + s] = in[s][i];
        std::vector<gb::OnePoleState> st(w);
        std::vector<gb::OnePoleState*> stp(w);
        for (std::size_t s = 0; s < w; ++s) stp[s] = &st[s];
        partitioned(kN, seam, [&](std::size_t o, std::size_t n) {
          k->one_pole_batch(buf.data() + o * w, buf.data() + o * w, n, w,
                            alpha.data(), stp.data());
        });
        for (std::size_t s = 0; s < w; ++s)
          for (std::size_t i = 0; i < kN; ++i)
            ASSERT_EQ(bits(want[s][i]), bits(buf[i * w + s]))
                << k->name << " w=" << w << " seam=" << seam << " s=" << s
                << " i=" << i;
      }
    }
  }
}

TEST(BatchKernels, OnePoleBatchDivergentAlphaGroupFallsBack) {
  // Streams of one AVX2 group resuming at different scan phases (forced
  // here by different warm-up lengths) must take the per-stream path and
  // still match solo exactly.
  constexpr std::size_t kN = 257;
  for (const gb::Kernels* k : tables()) {
    const std::size_t w = 4;
    std::vector<std::vector<double>> in(w), want(w);
    std::vector<double> alpha(w, 0.17);
    std::vector<gb::OnePoleState> solo_st(w), st(w);
    // Warm each stream a different number of samples so phases diverge.
    for (std::size_t s = 0; s < w; ++s) {
      in[s] = stream_input(kN + s, s);
      std::vector<double> warm(4, 0.0);
      k->one_pole(in[s].data(), warm.data(), s, alpha[s], solo_st[s]);
      st[s] = solo_st[s];
      want[s].resize(kN);
      k->one_pole(in[s].data() + s, want[s].data(), kN, alpha[s], solo_st[s]);
    }
    std::vector<double> buf(kN * w);
    for (std::size_t s = 0; s < w; ++s)
      for (std::size_t i = 0; i < kN; ++i) buf[i * w + s] = in[s][i + s];
    std::vector<gb::OnePoleState*> stp(w);
    for (std::size_t s = 0; s < w; ++s) stp[s] = &st[s];
    k->one_pole_batch(buf.data(), buf.data(), kN, w, alpha.data(), stp.data());
    for (std::size_t s = 0; s < w; ++s)
      for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(bits(want[s][i]), bits(buf[i * w + s]))
            << k->name << " s=" << s << " i=" << i;
  }
}

TEST(BatchKernels, SlewBatchMatchesSoloIncludingFlagDivergence) {
  constexpr std::size_t kN = 1021;
  for (const gb::Kernels* k : tables()) {
    for (std::size_t w : kWidths) {
      std::vector<std::vector<double>> in(w), want(w);
      std::vector<gb::SlewCoeffs> c(w);
      for (std::size_t s = 0; s < w; ++s) {
        in[s] = stream_input(kN, s);
        want[s].resize(kN);
        c[s].max_step = 0.002 + 0.0007 * static_cast<double>(s);
        // Streams 4..7 diverge in flags inside one AVX2 group, forcing
        // the per-stream fallback; 0..3 stay uniform (packed path).
        c[s].has_lin = s < 4 || (s % 2 == 0);
        c[s].lin = c[s].has_lin ? 0.8 : 1.0;
        c[s].has_leak = s < 4 || (s % 3 == 0);
        c[s].leak = c[s].has_leak ? 0.01 : 0.0;
        gb::SlewState st{};
        k->slew(in[s].data(), want[s].data(), kN, c[s], st);
      }
      for (std::size_t seam : kSeams) {
        std::vector<double> buf(kN * w);
        for (std::size_t s = 0; s < w; ++s)
          for (std::size_t i = 0; i < kN; ++i) buf[i * w + s] = in[s][i];
        std::vector<gb::SlewState> st(w);
        std::vector<const gb::SlewCoeffs*> cp(w);
        std::vector<gb::SlewState*> stp(w);
        for (std::size_t s = 0; s < w; ++s) {
          cp[s] = &c[s];
          stp[s] = &st[s];
        }
        partitioned(kN, seam, [&](std::size_t o, std::size_t n) {
          k->slew_batch(buf.data() + o * w, buf.data() + o * w, n, w,
                        cp.data(), stp.data());
        });
        for (std::size_t s = 0; s < w; ++s)
          for (std::size_t i = 0; i < kN; ++i)
            ASSERT_EQ(bits(want[s][i]), bits(buf[i * w + s]))
                << k->name << " w=" << w << " seam=" << seam << " s=" << s
                << " i=" << i;
      }
    }
  }
}

TEST(BatchKernels, VgaTailBatchMatchesSoloAnyWidthAndPartition) {
  constexpr std::size_t kN = 1021;
  for (const gb::Kernels* k : tables()) {
    for (std::size_t w : kWidths) {
      std::vector<std::vector<double>> in(w), want(w);
      std::vector<gb::VgaTailCoeffs> c(w);
      for (std::size_t s = 0; s < w; ++s) {
        in[s] = stream_input(kN, s);
        want[s].resize(kN);
        c[s].amp = 0.3 + 0.01 * static_cast<double>(s);
        c[s].amp_frac = 0.4 * c[s].amp;
        c[s].max_step = 0.0012 + 0.0003 * static_cast<double>(s);
        c[s].inv_max_step = 1.0 / c[s].max_step;
        c[s].alpha = 0.0003;
        c[s].slew.max_step = c[s].max_step;
        c[s].slew.has_lin = true;
        c[s].slew.lin = 0.75;
        c[s].slew.has_leak = true;
        c[s].slew.leak = 0.003;
        gb::SlewState sst{};
        gb::VgaTailState tst{};
        k->vga_tail(in[s].data(), want[s].data(), kN, c[s], sst, tst);
      }
      for (std::size_t seam : kSeams) {
        std::vector<double> buf(kN * w);
        for (std::size_t s = 0; s < w; ++s)
          for (std::size_t i = 0; i < kN; ++i) buf[i * w + s] = in[s][i];
        std::vector<gb::SlewState> sst(w);
        std::vector<gb::VgaTailState> tst(w);
        std::vector<const gb::VgaTailCoeffs*> cp(w);
        std::vector<gb::SlewState*> sstp(w);
        std::vector<gb::VgaTailState*> tstp(w);
        for (std::size_t s = 0; s < w; ++s) {
          cp[s] = &c[s];
          sstp[s] = &sst[s];
          tstp[s] = &tst[s];
        }
        partitioned(kN, seam, [&](std::size_t o, std::size_t n) {
          k->vga_tail_batch(buf.data() + o * w, buf.data() + o * w, n, w,
                            cp.data(), sstp.data(), tstp.data());
        });
        for (std::size_t s = 0; s < w; ++s)
          for (std::size_t i = 0; i < kN; ++i)
            ASSERT_EQ(bits(want[s][i]), bits(buf[i * w + s]))
                << k->name << " w=" << w << " seam=" << seam << " s=" << s
                << " i=" << i;
      }
    }
  }
}

TEST(BatchKernels, TanhStageBatchMatchesSoloWithAndWithoutAdd) {
  constexpr std::size_t kN = 517;
  for (const gb::Kernels* k : tables()) {
    for (std::size_t w : kWidths) {
      std::vector<std::vector<double>> in(w), add(w);
      std::vector<double> gain(w), ref(w), post(w);
      for (std::size_t s = 0; s < w; ++s) {
        in[s] = stream_input(kN, s);
        add[s] = stream_input(kN, s + 100);
        gain[s] = 1.5 + 0.5 * static_cast<double>(s);
        ref[s] = 0.2 + 0.05 * static_cast<double>(s);
        post[s] = 0.3 + 0.02 * static_cast<double>(s);
      }
      for (bool with_add : {false, true}) {
        std::vector<double> buf(kN * w), abuf(kN * w);
        for (std::size_t s = 0; s < w; ++s)
          for (std::size_t i = 0; i < kN; ++i) {
            buf[i * w + s] = in[s][i];
            abuf[i * w + s] = add[s][i];
          }
        k->tanh_stage_batch(buf.data(), with_add ? abuf.data() : nullptr,
                            buf.data(), kN, w, gain.data(), ref.data(),
                            post.data());
        for (std::size_t s = 0; s < w; ++s) {
          std::vector<double> want(kN);
          k->tanh_stage(in[s].data(), with_add ? add[s].data() : nullptr,
                        want.data(), kN, gain[s], ref[s], post[s]);
          for (std::size_t i = 0; i < kN; ++i)
            ASSERT_EQ(bits(want[i]), bits(buf[i * w + s]))
                << k->name << " w=" << w << " add=" << with_add << " s=" << s
                << " i=" << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 2: BatchRunner vs solo devices
// ---------------------------------------------------------------------------

namespace {

gs::Waveform stimulus() {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  return gs::synthesize_nrz(gs::prbs(7, 48), sc).wf;
}

bool wf_equal(const gs::Waveform& a, const gs::Waveform& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.samples().data(), b.samples().data(),
                     a.size() * sizeof(double)) == 0;
}

gc::FineDelayLine make_fine(std::size_t s, double vmax_frac) {
  gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(7));
  line.fork_noise(s);
  line.set_vctrl(line.vctrl_max() * vmax_frac);
  return line;
}

gc::VariableDelayChannel make_channel(std::size_t s) {
  gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), Rng(99));
  ch.fork_noise(s);
  ch.select_tap(static_cast<int>(s % 4));
  ch.set_vctrl(ch.vctrl_max() * static_cast<double>(s) / 9.0);
  return ch;
}

}  // namespace

TEST(BatchRunnerEquivalence, FineLineMatchesSoloAnyWidthPerBackend) {
  const auto stim = stimulus();
  std::vector<std::string> names{"scalar"};
  if (avx2_usable()) names.push_back("avx2");
  for (const auto& name : names) {
    BackendSelect sel(name.c_str());
    for (std::size_t w : kWidths) {
      std::vector<gc::FineDelayLine> lines;
      for (std::size_t s = 0; s < w; ++s)
        lines.push_back(make_fine(s, static_cast<double>(s) / 8.0));
      gc::BatchRunner runner;
      for (auto& l : lines) runner.add(l);
      const auto outs = runner.run(stim);
      for (std::size_t s = 0; s < w; ++s) {
        auto solo = make_fine(s, static_cast<double>(s) / 8.0);
        const auto want = solo.process(stim);
        ASSERT_TRUE(wf_equal(want, outs[s])) << name << " w=" << w
                                             << " stream " << s;
      }
    }
  }
}

TEST(BatchRunnerEquivalence, ChannelMatchesSoloWithPerStreamProgramming) {
  const auto stim = stimulus();
  std::vector<std::string> names{"scalar"};
  if (avx2_usable()) names.push_back("avx2");
  for (const auto& name : names) {
    BackendSelect sel(name.c_str());
    for (std::size_t w : {std::size_t{3}, std::size_t{9}}) {
      std::vector<gc::VariableDelayChannel> chans;
      for (std::size_t s = 0; s < w; ++s) chans.push_back(make_channel(s));
      gc::BatchRunner runner;
      for (auto& c : chans) runner.add(c);
      const auto outs = runner.run(stim);
      for (std::size_t s = 0; s < w; ++s) {
        auto solo = make_channel(s);
        const auto want = solo.process(stim);
        ASSERT_TRUE(wf_equal(want, outs[s])) << name << " w=" << w
                                             << " stream " << s;
      }
    }
  }
}

TEST(BatchRunnerEquivalence, LaneAssignmentInvariance) {
  // The same 9 streams, added in reversed order: each stream's bytes
  // must be unchanged — lanes are an implementation detail.
  const auto stim = stimulus();
  std::vector<gc::VariableDelayChannel> fwd, rev;
  for (std::size_t s = 0; s < 9; ++s) fwd.push_back(make_channel(s));
  for (std::size_t s = 9; s-- > 0;) rev.push_back(make_channel(s));
  gc::BatchRunner rf, rr;
  for (auto& c : fwd) rf.add(c);
  for (auto& c : rev) rr.add(c);
  const auto of = rf.run(stim);
  const auto orev = rr.run(stim);
  for (std::size_t s = 0; s < 9; ++s)
    ASSERT_TRUE(wf_equal(of[s], orev[8 - s])) << "stream " << s;
}

TEST(BatchRunnerEquivalence, SinkRunMatchesWaveformRun) {
  const auto stim = stimulus();
  std::vector<gc::FineDelayLine> a, b;
  for (std::size_t s = 0; s < 3; ++s) {
    a.push_back(make_fine(s, 0.5));
    b.push_back(make_fine(s, 0.5));
  }
  gc::BatchRunner ra, rb;
  for (auto& l : a) ra.add(l);
  for (auto& l : b) rb.add(l);
  const auto outs = ra.run(stim);
  std::vector<gm::WaveformCaptureSink> caps(3);
  std::vector<gm::ISampleSink*> sinks;
  for (auto& c : caps) sinks.push_back(&c);
  rb.run(stim, sinks);
  for (std::size_t s = 0; s < 3; ++s)
    ASSERT_TRUE(wf_equal(outs[s], caps[s].waveform())) << "stream " << s;
}

TEST(BatchRunnerEquivalence, MixedStreamKindsThrow) {
  gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(1));
  gc::VariableDelayChannel ch(gc::ChannelConfig{}, Rng(2));
  gc::BatchRunner r1;
  r1.add(line);
  EXPECT_THROW(r1.add(ch), std::logic_error);
  gc::BatchRunner r2;
  r2.add(ch);
  EXPECT_THROW(r2.add(line), std::logic_error);
  gc::BatchRunner empty;
  EXPECT_THROW(empty.run(gs::Waveform(0.0, 0.25, 16)), std::logic_error);
}

// ---------------------------------------------------------------------------
// Layer 3: the calibration reroute reproduces the solo clone sweep
// ---------------------------------------------------------------------------

TEST(BatchRunnerEquivalence, FineCurveMatchesSoloCloneSweep) {
  const auto stim = stimulus();
  gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(7));
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 5;
  o.settle_ps = 1500.0;
  const gc::DelayCalibrator cal(o);
  const auto curve = cal.measure_fine_curve(line, stim);

  // The pre-batching engine, verbatim: one solo clone per sweep point.
  gm::DelayMeterOptions mo;
  mo.settle_ps = o.settle_ps;
  std::vector<double> xs(5), ys(5);
  for (int i = 0; i < 5; ++i) {
    xs[i] = line.vctrl_max() * i / 4.0;
    gc::FineDelayLine clone = line;
    clone.fork_noise(static_cast<std::uint64_t>(i));
    clone.set_vctrl(xs[i]);
    const auto out = clone.process(stim);
    ys[i] = gm::measure_delay(stim, out, mo).mean_ps;
  }
  const double d0 = ys.front();
  for (double& y : ys) y -= d0;
  const auto want = gdelay::util::Curve(std::move(xs), std::move(ys))
                        .monotonicized();
  ASSERT_EQ(want.xs().size(), curve.xs().size());
  for (std::size_t i = 0; i < want.xs().size(); ++i) {
    ASSERT_EQ(bits(want.xs()[i]), bits(curve.xs()[i])) << i;
    ASSERT_EQ(bits(want.ys()[i]), bits(curve.ys()[i])) << i;
  }
}
