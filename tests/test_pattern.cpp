// Tests for the PRBS / pattern generators.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "signal/pattern.h"

namespace gs = gdelay::sig;

TEST(Prbs, RejectsBadOrder) {
  EXPECT_THROW(gs::PrbsGenerator(8), std::invalid_argument);
  EXPECT_THROW(gs::PrbsGenerator(0), std::invalid_argument);
}

TEST(Prbs, Prbs7HasFullPeriod) {
  gs::PrbsGenerator g(7);
  const auto seq = g.take(127 * 2);
  // Period exactly 127: second cycle repeats the first...
  for (std::size_t i = 0; i < 127; ++i) EXPECT_EQ(seq[i], seq[i + 127]);
  // ... and no smaller period divides it (127 is prime: check a few).
  bool shorter = true;
  for (std::size_t p = 1; p < 127 && shorter; ++p) {
    shorter = true;
    for (std::size_t i = 0; i + p < 127; ++i)
      if (seq[i] != seq[i + p]) {
        shorter = false;
        break;
      }
    if (shorter) FAIL() << "period " << p << " repeats";
  }
}

TEST(Prbs, Prbs7Balance) {
  // Maximal-length LFSR: 64 ones and 63 zeros per period.
  const auto seq = gs::prbs(7, 127);
  EXPECT_EQ(gs::popcount(seq), 64u);
}

TEST(Prbs, Prbs7LongestRun) {
  // Longest run in PRBS-n is n (ones) and n-1 (zeros).
  const auto seq = gs::prbs(7, 254);
  EXPECT_EQ(gs::longest_run(seq), 7u);
}

TEST(Prbs, Prbs15Balance) {
  const auto seq = gs::prbs(15, (1u << 15) - 1);
  EXPECT_EQ(gs::popcount(seq), 1u << 14);
}

TEST(Prbs, Prbs15Period) {
  gs::PrbsGenerator g(15);
  EXPECT_EQ(g.period(), (1ull << 15) - 1);
  const auto a = g.take(1000);
  gs::PrbsGenerator h(15);
  for (std::uint64_t i = 0; i < h.period(); ++i) h.next();
  // One full period later the stream must repeat from the start.
  auto wrapped = h.take(1000);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(wrapped[i], a[i]);
}

TEST(Prbs, DifferentSeedsShiftSequence) {
  const auto a = gs::prbs(7, 64, 1);
  const auto b = gs::prbs(7, 64, 2);
  EXPECT_NE(a, b);
}

TEST(Prbs, ZeroSeedIsValid) {
  // All-zero would be absorbing; generator must substitute a valid state.
  const auto seq = gs::prbs(7, 127, 0);
  EXPECT_EQ(gs::popcount(seq), 64u);
}

TEST(Prbs, Prbs31RunsWithoutCollapse) {
  const auto seq = gs::prbs(31, 8192);
  const auto ones = gs::popcount(seq);
  EXPECT_GT(ones, 3500u);
  EXPECT_LT(ones, 4700u);
  EXPECT_LE(gs::longest_run(seq), 31u);
}

TEST(Pattern, Alternating) {
  const auto a = gs::alternating(6, 0);
  EXPECT_EQ(a, (gs::BitPattern{0, 1, 0, 1, 0, 1}));
  const auto b = gs::alternating(4, 1);
  EXPECT_EQ(b, (gs::BitPattern{1, 0, 1, 0}));
  EXPECT_EQ(gs::transition_count(a), 5u);
}

TEST(Pattern, Constant) {
  const auto c = gs::constant(5, 1);
  EXPECT_EQ(gs::popcount(c), 5u);
  EXPECT_EQ(gs::transition_count(c), 0u);
  EXPECT_EQ(gs::longest_run(c), 5u);
}

TEST(Pattern, TransitionCountPrbs) {
  // PRBS7: 64 transitions per 127-bit period on the wrapped sequence;
  // a linear window sees 63..64.
  const auto seq = gs::prbs(7, 128);
  const auto t = gs::transition_count(seq);
  EXPECT_GE(t, 60u);
  EXPECT_LE(t, 68u);
}
