// Tests for util: units, RNG, curves.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/curve.h"
#include "util/rng.h"
#include "util/units.h"

namespace gu = gdelay::util;

TEST(Units, PeriodAndRate) {
  EXPECT_DOUBLE_EQ(gu::period_ps(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(gu::period_ps(6.4), 156.25);
  EXPECT_DOUBLE_EQ(gu::unit_interval_ps(6.4), 156.25);
  EXPECT_DOUBLE_EQ(gu::freq_ghz(156.25), 6.4);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(gu::ns_to_ps(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(gu::ps_to_ns(250.0), 0.25);
  EXPECT_DOUBLE_EQ(gu::mv(750.0), 0.75);
  EXPECT_DOUBLE_EQ(gu::to_mv(0.1), 100.0);
}

TEST(Units, DbLoss) {
  EXPECT_NEAR(gu::db_loss_to_factor(0.0), 1.0, 1e-12);
  EXPECT_NEAR(gu::db_loss_to_factor(6.0205999), 0.5, 1e-6);
  EXPECT_NEAR(gu::db_loss_to_factor(20.0), 0.1, 1e-12);
}

TEST(Units, GaussianPpConvention) {
  EXPECT_DOUBLE_EQ(gu::gaussian_pp_to_sigma(0.9), 0.15);
  EXPECT_DOUBLE_EQ(gu::gaussian_sigma_to_pp(0.15), 0.9);
}

TEST(Rng, Deterministic) {
  gu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  gu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  gu::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  gu::Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, GaussianMoments) {
  gu::Rng r(123);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  gu::Rng r(5);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ForkIndependence) {
  gu::Rng parent(99);
  gu::Rng c1 = parent.fork(0);
  gu::Rng c2 = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange) {
  gu::Rng r(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Curve, RejectsBadInput) {
  EXPECT_THROW(gu::Curve({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(gu::Curve({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(gu::Curve({0.0, 1.0}, {1.0}), std::invalid_argument);
}

TEST(Curve, LinearInterpolation) {
  gu::Curve c({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(c(0.5), 5.0);
  EXPECT_DOUBLE_EQ(c(1.5), 25.0);
  EXPECT_DOUBLE_EQ(c(1.0), 10.0);
}

TEST(Curve, ExtrapolatesLinearly) {
  gu::Curve c({0.0, 1.0}, {0.0, 10.0});
  EXPECT_DOUBLE_EQ(c(2.0), 20.0);
  EXPECT_DOUBLE_EQ(c(-1.0), -10.0);
}

TEST(Curve, Monotonicity) {
  gu::Curve inc({0.0, 1.0, 2.0}, {0.0, 1.0, 3.0});
  EXPECT_TRUE(inc.is_monotonic_increasing());
  EXPECT_FALSE(inc.is_monotonic_decreasing());
  gu::Curve bump({0.0, 1.0, 2.0}, {0.0, 2.0, 1.0});
  EXPECT_FALSE(bump.is_monotonic_increasing());
  EXPECT_FALSE(bump.is_monotonic_decreasing());
}

TEST(Curve, InvertRoundTrip) {
  gu::Curve c({0.0, 0.5, 1.0, 1.5}, {0.0, 20.0, 45.0, 56.0});
  for (double y : {0.0, 5.0, 20.0, 33.0, 56.0}) {
    const double x = c.invert(y);
    EXPECT_NEAR(c(x), y, 1e-9);
  }
}

TEST(Curve, InvertClampsOutOfRange) {
  gu::Curve c({0.0, 1.0}, {0.0, 10.0});
  EXPECT_DOUBLE_EQ(c.invert(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(c.invert(99.0), 1.0);
}

TEST(Curve, InvertDecreasing) {
  gu::Curve c({0.0, 1.0, 2.0}, {10.0, 5.0, 0.0});
  EXPECT_NEAR(c.invert(7.5), 0.5, 1e-9);
  EXPECT_NEAR(c.invert(2.5), 1.5, 1e-9);
}

TEST(Curve, InvertNonMonotonicThrows) {
  gu::Curve c({0.0, 1.0, 2.0}, {0.0, 2.0, 1.0});
  EXPECT_THROW(c.invert(0.5), std::domain_error);
}

TEST(Curve, FromSamplesSorts) {
  auto c = gu::Curve::from_samples({{2.0, 20.0}, {0.0, 0.0}, {1.0, 10.0}});
  EXPECT_DOUBLE_EQ(c(1.5), 15.0);
}

TEST(Curve, MidSlope) {
  gu::Curve c({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 1.0, 3.0, 5.0, 6.0});
  // Central half covers the steep 2/unit segments.
  EXPECT_NEAR(c.mid_slope(0.5), 2.0, 1e-9);
}

TEST(Curve, YSpan) {
  gu::Curve c({0.0, 1.0, 2.0}, {5.0, -1.0, 7.0});
  EXPECT_DOUBLE_EQ(c.y_span(), 8.0);
}

TEST(Isotonic, AlreadyMonotone) {
  const std::vector<double> ys{0.0, 1.0, 2.0, 5.0};
  EXPECT_EQ(gu::isotonic_increasing(ys), ys);
}

TEST(Isotonic, PoolsViolators) {
  const auto out = gu::isotonic_increasing({1.0, 3.0, 2.0, 4.0});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.5);
  EXPECT_DOUBLE_EQ(out[2], 2.5);
  EXPECT_DOUBLE_EQ(out[3], 4.0);
  for (std::size_t i = 1; i < out.size(); ++i) EXPECT_GE(out[i], out[i - 1]);
}

TEST(Isotonic, PreservesMean) {
  const std::vector<double> ys{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const auto out = gu::isotonic_increasing(ys);
  double a = 0.0, b = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    a += ys[i];
    b += out[i];
  }
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(Isotonic, ConstantInput) {
  const auto out = gu::isotonic_increasing({2.0, 2.0, 2.0});
  for (double y : out) EXPECT_DOUBLE_EQ(y, 2.0);
}

TEST(CurveMonotonicized, CleansNoisyIncreasing) {
  // A monotone ramp with a small dip: monotonicized must be non-decreasing
  // and close to the original.
  gu::Curve c({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 1.1, 0.9, 3.0, 4.0});
  const auto m = c.monotonicized();
  EXPECT_TRUE(m.is_monotonic_increasing());
  EXPECT_NO_THROW(m.invert(2.0));
  for (std::size_t i = 0; i < m.size(); ++i)
    EXPECT_NEAR(m.ys()[i], c.ys()[i], 0.2);
}

TEST(CurveMonotonicized, PicksDecreasingDirection) {
  gu::Curve c({0.0, 1.0, 2.0, 3.0}, {9.0, 6.1, 6.2, 1.0});
  const auto m = c.monotonicized();
  EXPECT_TRUE(m.is_monotonic_decreasing());
}

TEST(Csv, WritesColumns) {
  const auto path =
      (std::filesystem::temp_directory_path() / "gdelay_csv_test.csv")
          .string();
  gu::write_csv(path, {"x", "y"}, {{1.0, 2.0}, {10.0, 20.0}});
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "x,y\n1,10\n2,20\n");
  std::filesystem::remove(path);
}

TEST(Csv, ValidatesInput) {
  EXPECT_THROW(gu::write_csv("/tmp/x.csv", {"a"}, {{1.0}, {2.0}}),
               std::invalid_argument);
  EXPECT_THROW(gu::write_csv("/tmp/x.csv", {"a", "b"}, {{1.0}, {2.0, 3.0}}),
               std::invalid_argument);
  EXPECT_THROW(gu::write_csv("/tmp/x.csv", {}, {}), std::invalid_argument);
  EXPECT_THROW(
      gu::write_csv_xy("/nonexistent/dir/x.csv", "a", {1.0}, "b", {2.0}),
      std::runtime_error);
}
