// Tests for sinusoidal-jitter injection and the CDR receiver — together
// they reproduce the frequency-dependent jitter-tolerance behaviour real
// SerDes test programs measure.
#include <gtest/gtest.h>

#include <cmath>

#include "ate/cdr.h"
#include "ate/dut.h"
#include "core/jitter_injector.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace ga = gdelay::ate;
namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

namespace {
gs::SynthResult stim(std::size_t bits = 512, double rate = 3.2) {
  gs::SynthConfig sc;
  sc.rate_gbps = rate;
  return gs::synthesize_nrz(gs::prbs(7, bits), sc);
}
}  // namespace

TEST(SjInjection, ValidatesParameters) {
  gc::JitterInjector inj(gc::JitterInjectorConfig{}, Rng(1));
  EXPECT_THROW(inj.set_sj(-0.1, 0.01), std::invalid_argument);
  EXPECT_THROW(inj.set_sj(0.5, 0.0), std::invalid_argument);
}

TEST(SjInjection, CreatesPeriodicJitter) {
  const auto s = stim();
  gc::JitterInjectorConfig cfg;
  cfg.noise_pp_v = 0.0;
  cfg.line.stage.noise_sigma_v = 0.0;
  cfg.line.output_stage.noise_sigma_v = 0.0;
  cfg.sj_pp_v = 0.8;
  cfg.sj_freq_ghz = 0.02;  // 20 MHz, well inside the coupler passband
  gc::JitterInjector inj(cfg, Rng(2));
  const auto out = inj.process(s.wf);
  gm::JitterMeasureOptions jo;
  jo.settle_ps = 12000.0;
  const auto j = gm::measure_jitter(out, s.unit_interval_ps, jo);
  // 0.8 V * ~43 ps/V of Vctrl sensitivity -> tens of ps of bounded DJ.
  EXPECT_GT(j.tj_pp_ps, 15.0);
  EXPECT_LT(j.tj_pp_ps, 60.0);
  // SJ is bounded: the pk-pk to rms ratio of a sine is 2*sqrt(2) ~ 2.8,
  // far below a Gaussian's ~7 at this edge count.
  EXPECT_LT(j.tj_pp_ps / j.rj_rms_ps, 4.5);
}

TEST(SjInjection, AmplitudeScalesJitter) {
  const auto s = stim(384);
  gc::JitterInjectorConfig cfg;
  cfg.noise_pp_v = 0.0;
  cfg.line.stage.noise_sigma_v = 0.0;
  cfg.line.output_stage.noise_sigma_v = 0.0;
  cfg.sj_freq_ghz = 0.02;
  gm::JitterMeasureOptions jo;
  jo.settle_ps = 12000.0;
  double prev = -1.0;
  for (double pp : {0.2, 0.5, 0.9}) {
    cfg.sj_pp_v = pp;
    gc::JitterInjector inj(cfg, Rng(3));
    const auto j =
        gm::measure_jitter(inj.process(s.wf), s.unit_interval_ps, jo);
    EXPECT_GT(j.tj_pp_ps, prev) << "pp=" << pp;
    prev = j.tj_pp_ps;
  }
}

TEST(Cdr, Validation) {
  ga::CdrConfig c;
  c.gain = 0.0;
  EXPECT_THROW(ga::CdrReceiver{c}, std::invalid_argument);
  c.gain = 0.05;
  c.ui_ps = 0.0;
  EXPECT_THROW(ga::CdrReceiver{c}, std::invalid_argument);
}

TEST(Cdr, RecoversCleanData) {
  const auto bits = gs::prbs(7, 256);
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto r = gs::synthesize_nrz(bits, sc);
  ga::CdrConfig c;
  c.ui_ps = r.unit_interval_ps;
  ga::CdrReceiver rx(c);
  const auto res = rx.recover(r.wf, sc.lead_in_ps);
  ASSERT_GT(res.bits.size(), 200u);
  // The first recovered bit lands wherever the first transition was;
  // align with the generic helper.
  const std::size_t errors =
      ga::DutReceiver::best_alignment_errors(res.bits, bits, 16);
  EXPECT_EQ(errors, 0u);
  EXPECT_LT(res.tracking_error_rms_ps, 3.0);
}

TEST(Cdr, TracksSlowPhaseDrift) {
  // A waveform whose phase wanders slowly (low-frequency SJ) is tracked:
  // the loop's tracking error stays far below the applied wander.
  const auto bits = gs::prbs(7, 1024);
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  sc.dj_pp_ps = 40.0;
  sc.dj_freq_ghz = 0.0005;  // 0.5 MHz: far below the loop bandwidth
  const auto r = gs::synthesize_nrz(bits, sc);
  ga::CdrConfig c;
  c.ui_ps = r.unit_interval_ps;
  c.gain = 0.08;
  ga::CdrReceiver rx(c);
  const auto res = rx.recover(r.wf, sc.lead_in_ps);
  EXPECT_LT(res.tracking_error_rms_ps, 6.0);  // wander rms would be ~14
}

TEST(Cdr, CannotTrackFastJitter) {
  // The same wander amplitude far ABOVE the loop bandwidth is untracked:
  // the tracking error approaches the full applied jitter.
  const auto bits = gs::prbs(7, 1024);
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  sc.dj_pp_ps = 40.0;
  sc.dj_freq_ghz = 0.2;  // 200 MHz
  const auto r = gs::synthesize_nrz(bits, sc);
  ga::CdrConfig c;
  c.ui_ps = r.unit_interval_ps;
  c.gain = 0.08;
  ga::CdrReceiver rx(c);
  const auto res = rx.recover(r.wf, sc.lead_in_ps);
  EXPECT_GT(res.tracking_error_rms_ps, 9.0);
}

TEST(Cdr, LoopBandwidthEstimate) {
  ga::CdrConfig c;
  c.ui_ps = 312.5;
  c.gain = 0.08;
  ga::CdrReceiver rx(c);
  // tau = UI / (0.5 g) = 7812 ps -> f3dB ~ 20 MHz.
  EXPECT_NEAR(rx.loop_bandwidth_ghz(), 0.0204, 0.002);
}
