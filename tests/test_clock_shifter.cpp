// Tests for the clock-phase-shifter baseline (the intro's conventional
// solution) and the new SerDes stress patterns.
#include <gtest/gtest.h>

#include "core/clock_shifter.h"
#include "measure/delay_meter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

namespace {
gc::ClockPhaseShifterConfig quiet(double period = 156.25) {
  gc::ClockPhaseShifterConfig c;
  c.period_ps = period;
  c.phase_noise_rms_ps = 0.0;
  return c;
}
}  // namespace

TEST(ClockPhaseShifter, Validation) {
  gc::ClockPhaseShifterConfig c = quiet();
  c.period_ps = 0.0;
  EXPECT_THROW(gc::ClockPhaseShifter(c, Rng(1)), std::invalid_argument);
  c = quiet();
  c.phase_steps = 1;
  EXPECT_THROW(gc::ClockPhaseShifter(c, Rng(1)), std::invalid_argument);
}

TEST(ClockPhaseShifter, PhaseWrapsAndQuantizes) {
  gc::ClockPhaseShifter s(quiet(100.0), Rng(1));
  s.set_phase_ps(130.0);
  EXPECT_NEAR(s.phase_ps(), 30.0, s.step_ps() / 2.0 + 1e-12);
  s.set_phase_ps(-20.0);
  EXPECT_NEAR(s.phase_ps(), 80.0, s.step_ps() / 2.0 + 1e-12);
  EXPECT_NEAR(s.step_ps(), 100.0 / 128.0, 1e-12);
}

TEST(ClockPhaseShifter, ShiftsClockByProgrammedPhase) {
  gs::SynthConfig sc;
  const auto clk = gs::synthesize_clock(3.2, 60, sc);  // period 312.5 ps
  gc::ClockPhaseShifter s(quiet(312.5), Rng(2));
  s.set_phase_ps(40.0);
  const auto out = s.process(clk.wf);
  const double d =
      gm::measure_phase_delay(clk.wf, out, clk.unit_interval_ps);
  // Delay mod half-period (edges every half period): 40 ps directly.
  EXPECT_NEAR(d, 40.0, s.step_ps());
}

TEST(ClockPhaseShifter, SubPsQuantization) {
  gc::ClockPhaseShifterConfig c = quiet();
  c.phase_steps = 64;  // ~2.4 ps steps: typical DLL interpolator
  gc::ClockPhaseShifter s(c, Rng(3));
  s.set_phase_ps(5.0);
  // The requested 5 ps lands on the nearest 2.44 ps grid point.
  EXPECT_NEAR(s.phase_ps(), 4.88, 0.01);
}

TEST(Pattern, K285Structure) {
  const auto p = gs::k285(4);
  ASSERT_EQ(p.size(), 40u);
  // Alternating disparity: second codeword is the complement of the first.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p[static_cast<std::size_t>(i)],
                                         1 - p[static_cast<std::size_t>(i) + 10]);
  // Balanced over a disparity pair.
  EXPECT_EQ(gs::popcount({p.begin(), p.begin() + 20}), 10u);
  // Contains a 5-run (the comma).
  EXPECT_EQ(gs::longest_run(p), 5u);
}

TEST(Pattern, RunLengthStress) {
  const auto p = gs::run_length_stress(64, 8);
  EXPECT_EQ(p.size(), 64u);
  EXPECT_EQ(gs::longest_run(p), 8u);
  // Half the segments toggle at full rate: plenty of transitions.
  EXPECT_GT(gs::transition_count(p), 24u);
  // run = 0 is coerced, not UB.
  EXPECT_EQ(gs::run_length_stress(8, 0).size(), 8u);
}

TEST(Pattern, StressPatternsSynthesize) {
  gs::SynthConfig sc;
  sc.rate_gbps = 6.4;
  EXPECT_NO_THROW(gs::synthesize_nrz(gs::k285(12), sc));
  EXPECT_NO_THROW(gs::synthesize_nrz(gs::run_length_stress(96), sc));
}
