// Unit coverage for the gdelay-audit rule engine (tools/audit). Each rule
// R1-R12 gets a violating, a clean, and a waived case (plus a baseline
// suppression where the rule is new); the cross-TU tests drive
// build_index/scan_files directly to prove the two-pass index resolves
// symbols across files. The final tests self-scan the live src/ tree —
// once bare (R12 skipped) and once with the tests/ corpus registered so
// the coverage rule runs — which is the same check `ctest -R Audit` and
// the CI gate run via the CLI.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit.h"
#include "sarif.h"

namespace {

using gdelay::audit::build_index;
using gdelay::audit::Finding;
using gdelay::audit::Options;
using gdelay::audit::scan_files;
using gdelay::audit::scan_source;
using gdelay::audit::ScanStats;
using gdelay::audit::SourceFile;

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  for (const auto& f : fs) out.push_back(f.rule);
  return out;
}

std::string render(const std::vector<Finding>& fs) {
  std::string out;
  for (const auto& f : fs) out += gdelay::audit::format(f) + "\n";
  return out;
}

// --------------------------------------------------------------------------
// R1 — no direct libm transcendentals
// --------------------------------------------------------------------------

TEST(AuditR1, FlagsDirectLibmCall) {
  auto fs = scan_source("analog/x.cpp",
                        "double f(double v) { return std::tanh(v); }");
  ASSERT_EQ(fs.size(), 1u) << render(fs);
  EXPECT_EQ(fs[0].rule, "R1");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_NE(fs[0].message.find("det_tanh"), std::string::npos);
}

TEST(AuditR1, FlagsUnqualifiedCallToo) {
  auto fs = scan_source("core/x.cpp", "double f(double v) { return exp(v); }");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R1"}) << render(fs);
}

TEST(AuditR1, CleanOnDeterministicKernelsAndMemberCalls) {
  auto fs = scan_source("analog/x.cpp",
                        "double f(double v) { return util::det_tanh(v); }\n"
                        "double g(Obj& o) { return o.exp(2.0); }\n"
                        "double h(Obj* o) { return o->log(2.0); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR1, FastmathHeaderIsExempt) {
  auto fs = scan_source("util/fastmath.h",
                        "double ref(double v) { return std::tanh(v); }");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR1, InlineWaiverSilencesWithReason) {
  auto fs = scan_source(
      "measure/x.cpp",
      "// gdelay-audit: allow(R1) analysis-side readout, not signal path\n"
      "double f(double y, double x) { return std::atan2(y, x); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR1, WaiverCoversNextCodeLineAcrossCommentBlock) {
  // A waiver whose reason wraps onto a second comment line still covers
  // the first code line after the comment block.
  auto fs = scan_source(
      "measure/x.cpp",
      "// gdelay-audit: allow(R1) analysis-side readout whose reason is\n"
      "// long enough to wrap onto a second comment line\n"
      "double f(double y, double x) { return std::atan2(y, x); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// R2 — no nondeterminism sources
// --------------------------------------------------------------------------

TEST(AuditR2, FlagsRandomDeviceAndRand) {
  auto fs = scan_source("util/x.cpp",
                        "int a() { std::random_device rd; return rd(); }\n"
                        "int b() { return std::rand(); }\n"
                        "long c() { return time(nullptr); }\n");
  auto rules = rules_of(fs);
  ASSERT_EQ(rules, (std::vector<std::string>{"R2", "R2", "R2"})) << render(fs);
}

TEST(AuditR2, FlagsWallClockReads) {
  auto fs = scan_source(
      "core/x.cpp", "auto t = std::chrono::steady_clock::now();");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R2"}) << render(fs);
}

TEST(AuditR2, CleanOnSeededRng) {
  auto fs = scan_source("core/x.cpp",
                        "double f(util::Rng& rng) { return rng.gauss(); }");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR2, GetenvAllowedOnlyInDesignatedOwners) {
  // thread_pool owns GDELAY_THREADS, backend/dispatch owns GDELAY_BACKEND,
  // service/config owns GDELAY_SERVICE_SHARDS; everything else must take
  // configuration explicitly.
  const std::string src = "const char* f() { return std::getenv(\"X\"); }";
  EXPECT_TRUE(scan_source("util/thread_pool.cpp", src).empty());
  EXPECT_TRUE(scan_source("backend/dispatch.cpp", src).empty());
  EXPECT_TRUE(scan_source("service/config.cpp", src).empty());
  auto fs = scan_source("core/x.cpp", src);
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R2"}) << render(fs);
}

TEST(AuditR2, ServiceRequestPathsAreNotEnvExempt) {
  // The R2 waiver stops at the service's config resolution: an env read
  // in the request-handling or cache paths could fork response content
  // per host, which the determinism contract forbids.
  const std::string src = "const char* f() { return std::getenv(\"X\"); }";
  for (const char* label :
       {"service/service.cpp", "service/cal_cache.cpp", "service/service.h"}) {
    auto fs = scan_source(label, src);
    ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R2"})
        << label << "\n"
        << render(fs);
  }
}

TEST(AuditR2, CampaignConfigOwnsItsEnvKnobs) {
  // campaign/config owns GDELAY_CAMPAIGN_MODE / GDELAY_CAMPAIGN_SHARDS.
  // The orchestrator itself (campaign/campaign) is deliberately NOT
  // exempt: once a CampaignSpec is built, execution must not consult the
  // environment again or resume/merge results could fork per host.
  const std::string src = "const char* f() { return std::getenv(\"X\"); }";
  EXPECT_TRUE(scan_source("campaign/config.cpp", src).empty());
  for (const char* label : {"campaign/campaign.cpp", "campaign/campaign.h",
                            "campaign/checkpoint.cpp"}) {
    auto fs = scan_source(label, src);
    ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R2"})
        << label << "\n"
        << render(fs);
  }
}

TEST(AuditR2, InlineWaiverSilences) {
  auto fs = scan_source(
      "util/x.cpp",
      "int b() { return std::rand(); }  // gdelay-audit: allow(R2) probe\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// R3 — element-contract completeness
// --------------------------------------------------------------------------

TEST(AuditR3, FlagsStepWithoutProcessBlockAndClone) {
  auto fs = scan_source(
      "analog/x.h",
      "class Partial : public AnalogElement {\n"
      " public:\n"
      "  double step(double v, double dt) override { return v * dt; }\n"
      "};\n");
  auto rules = rules_of(fs);
  ASSERT_EQ(rules, (std::vector<std::string>{"R3", "R3"})) << render(fs);
  // Findings sort by message at equal position: clone before process_block.
  EXPECT_NE(fs[0].message.find("clone"), std::string::npos);
  EXPECT_NE(fs[1].message.find("process_block"), std::string::npos);
}

TEST(AuditR3, FlagsRngMemberWithoutForkNoise) {
  auto fs = scan_source("fast/x.h",
                        "class Holder {\n"
                        " public:\n"
                        "  double sample();\n"
                        " private:\n"
                        "  util::Rng rng_;\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R3"}) << render(fs);
  EXPECT_NE(fs[0].message.find("fork_noise"), std::string::npos);
}

TEST(AuditR3, CleanOnCompleteElement) {
  auto fs = scan_source(
      "analog/x.h",
      "class Complete final : public AnalogElement {\n"
      " public:\n"
      "  double step(double v, double dt) override;\n"
      "  void process_block(const double* in, double* out, std::size_t n,\n"
      "                     double dt_ps) override;\n"
      "  std::unique_ptr<AnalogElement> clone() const override {\n"
      "    return std::make_unique<Complete>(*this);\n"
      "  }\n"
      "  void fork_noise(std::uint64_t stream) { rng_ = rng_.fork(stream); }\n"
      " private:\n"
      "  util::Rng rng_{42};\n"
      "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR3, UnrelatedClassesAreIgnored) {
  auto fs = scan_source("measure/x.h",
                        "class Meter : public Instrument {\n"
                        " public:\n"
                        "  double step(double v, double dt);\n"
                        "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR3, InlineWaiverSilences) {
  auto fs = scan_source(
      "analog/x.h",
      "// gdelay-audit: allow(R3) scalar-only shim, block path unreachable\n"
      "class Partial : public AnalogElement {\n"
      " public:\n"
      "  double step(double v, double dt) override { return v * dt; }\n"
      "  std::unique_ptr<AnalogElement> clone() const override;\n"
      "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// R4 — no mutable namespace-scope state
// --------------------------------------------------------------------------

TEST(AuditR4, FlagsMutableGlobals) {
  auto fs = scan_source("util/x.cpp",
                        "namespace gdelay {\n"
                        "int g_counter = 0;\n"
                        "static double g_scale{1.0};\n"
                        "}\n");
  ASSERT_EQ(rules_of(fs), (std::vector<std::string>{"R4", "R4"}))
      << render(fs);
}

TEST(AuditR4, CleanOnConstantsDeclarationsAndLocals) {
  auto fs = scan_source(
      "util/x.cpp",
      "namespace gdelay {\n"
      "constexpr double kPi = 3.14159265358979323846;\n"
      "const int kLanes = 4;\n"
      "inline constexpr int kBits{8};\n"
      "class Fwd;\n"
      "using Row = std::vector<double>;\n"
      "double free_fn(double x);\n"
      "double with_local(double x) { double acc = x; return acc; }\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR4, InlineWaiverSilences) {
  auto fs = scan_source(
      "util/x.cpp",
      "// gdelay-audit: allow(R4) guarded by pool mutex, test-only knob\n"
      "int g_hook_count = 0;\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR4, ServiceConfigAllowedServicePathsAreNot) {
  // service/config holds the write-once resolved shard count (the same
  // pattern as backend/dispatch's active-table atomics); the request
  // dispatch and cache paths get no such exemption — global mutable
  // state there would be an arrival-order dependence.
  const std::string src = "namespace gdelay {\nint g_state = 0;\n}\n";
  EXPECT_TRUE(scan_source("service/config.cpp", src).empty());
  for (const char* label : {"service/service.cpp", "service/cal_cache.cpp"}) {
    auto fs = scan_source(label, src);
    ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R4"})
        << label << "\n"
        << render(fs);
  }
}

// --------------------------------------------------------------------------
// R5 — no float in the analog path
// --------------------------------------------------------------------------

TEST(AuditR5, FlagsFloatTypeAndLiteral) {
  auto fs = scan_source("analog/x.cpp",
                        "double f() { float v = 0.5f; return v; }");
  ASSERT_EQ(rules_of(fs), (std::vector<std::string>{"R5", "R5"}))
      << render(fs);
}

TEST(AuditR5, CleanOutsideAnalogPathAndOnDoubles) {
  // measure/ is not part of the analog path, and hex literals ending in
  // 'f' are not float literals.
  EXPECT_TRUE(
      scan_source("measure/x.cpp", "float scale() { return 0.5f; }").empty());
  auto fs = scan_source("analog/x.cpp",
                        "double f() { return 0.5 * 1e-3 + 0x2Fu; }");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR5, InlineWaiverSilences) {
  auto fs = scan_source(
      "signal/x.cpp",
      "// gdelay-audit: allow(R5) narrowing is intentional for the DAC model\n"
      "float dac_code(double v) { return static_cast<float>(v); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// R6 — no per-chunk allocation in measurement sinks
// --------------------------------------------------------------------------

TEST(AuditR6, FlagsContainerGrowthInConsume) {
  auto fs = scan_source("measure/x.cpp",
                        "void CaptureSink::consume(const double* s,\n"
                        "                          std::size_t n) {\n"
                        "  for (std::size_t i = 0; i < n; ++i)\n"
                        "    samples_.push_back(s[i]);\n"
                        "}\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R6"}) << render(fs);
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_NE(fs[0].message.find("push_back"), std::string::npos);
}

TEST(AuditR6, FlagsInClassDefinitionAndPointerCalls) {
  auto fs = scan_source("measure/x.h",
                        "class Sink : public ISampleSink {\n"
                        " public:\n"
                        "  void consume(const double* s, std::size_t n)\n"
                        "      override {\n"
                        "    buf_->resize(n);\n"
                        "    ticks_.emplace_back(n);\n"
                        "  }\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), (std::vector<std::string>{"R6", "R6"}))
      << render(fs);
}

TEST(AuditR6, CleanOutsideConsumeAndOnNonGrowthCalls) {
  // Growth in begin()/finish() is fine (one-shot, not per chunk), and a
  // consume() body that only indexes or memcpy's never allocates.
  auto fs = scan_source(
      "measure/x.cpp",
      "void Sink::begin(double t0, double dt, std::size_t n) {\n"
      "  samples_.reserve(n);\n"
      "}\n"
      "void Sink::consume(const double* s, std::size_t n) {\n"
      "  std::memcpy(samples_.data() + pos_, s, n * sizeof(double));\n"
      "  pos_ += n;\n"
      "}\n"
      "void Sink::finish() { edges_.push_back(last_); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR6, DelegatingConsumeCallIsNotGrowth) {
  auto fs = scan_source("measure/x.cpp",
                        "void JitterSink::consume(const double* s,\n"
                        "                         std::size_t n) {\n"
                        "  edge_sink_.consume(s, n);\n"
                        "}\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR6, InlineWaiverSilencesWithReason) {
  auto fs = scan_source(
      "signal/x.cpp",
      "void Extractor::consume(const double* s, std::size_t n) {\n"
      "  // gdelay-audit: allow(R6) pruned window, O(transition) bounded\n"
      "  hist_.push_back(s[0]);\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// R7 — SIMD intrinsics only inside the compute backend
// --------------------------------------------------------------------------

TEST(AuditR7, FlagsIntrinsicHeaderInclude) {
  // The lexer strips preprocessor directives, so this exercises the raw
  // line scan, not the token scan.
  auto fs = scan_source("analog/x.cpp",
                        "#include <immintrin.h>\n"
                        "double f(double v) { return v; }\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R7"}) << render(fs);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_NE(fs[0].message.find("immintrin.h"), std::string::npos);
}

TEST(AuditR7, FlagsIntrinsicIdentifiersAndTypes) {
  auto fs = scan_source("signal/x.cpp",
                        "double f(const double* p) {\n"
                        "  __m256d v = _mm256_loadu_pd(p);\n"
                        "  return _mm256_cvtsd_f64(v);\n"
                        "}\n");
  ASSERT_EQ(rules_of(fs), (std::vector<std::string>{"R7", "R7", "R7"}))
      << render(fs);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(AuditR7, BackendDirectoryIsExempt) {
  const char* src =
      "#include <immintrin.h>\n"
      "__m256d dbl(__m256d v) { return _mm256_add_pd(v, v); }\n";
  EXPECT_TRUE(scan_source("backend/kernels_avx2.cpp", src).empty());
  EXPECT_TRUE(scan_source("src/backend/kernels_avx2.cpp", src).empty());
  auto fs = scan_source("util/x.cpp", src);
  EXPECT_FALSE(fs.empty()) << render(fs);
}

TEST(AuditR7, CleanOnOrdinaryIdentifiers) {
  // Identifiers that merely contain "mm" or "m256" as a substring (not a
  // prefix) must not trip the scan.
  auto fs = scan_source("core/x.cpp",
                        "double comm_m256(double hmm) { return hmm; }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR7, InlineWaiverSilencesWithReason) {
  auto fs = scan_source(
      "util/x.cpp",
      "// gdelay-audit: allow(R7) prefetch hint only, no packed arithmetic\n"
      "void warm(const double* p) { _mm_prefetch((const char*)p, 3); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// R8 — lock discipline (service/, util/thread_pool)
// --------------------------------------------------------------------------

TEST(AuditR8, FlagsBareLockUnlockOnMutexMember) {
  auto fs = scan_source("service/x.h",
                        "class Counter {\n"
                        " public:\n"
                        "  void poke() {\n"
                        "    m_.lock();\n"
                        "    ++n_;\n"
                        "    m_.unlock();\n"
                        "  }\n"
                        " private:\n"
                        "  std::mutex m_;\n"
                        "  int n_ = 0;\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), (std::vector<std::string>{"R8", "R8"}))
      << render(fs);
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_EQ(fs[1].line, 6);
  EXPECT_GT(fs[0].col, 0);
  EXPECT_NE(fs[0].message.find("RAII"), std::string::npos);
}

TEST(AuditR8, FlagsDeclarationOrderReversal) {
  auto fs = scan_source("service/x.h",
                        "class Pair {\n"
                        " public:\n"
                        "  void both() {\n"
                        "    std::lock_guard<std::mutex> lb(b_);\n"
                        "    std::lock_guard<std::mutex> la(a_);\n"
                        "  }\n"
                        " private:\n"
                        "  std::mutex a_;\n"
                        "  std::mutex b_;\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R8"}) << render(fs);
  EXPECT_EQ(fs[0].line, 5);
  EXPECT_NE(fs[0].message.find("reverses the declaration order"),
            std::string::npos);
}

TEST(AuditR8, CleanOnDeclarationOrderNesting) {
  auto fs = scan_source("service/x.h",
                        "class Pair {\n"
                        " public:\n"
                        "  void both() {\n"
                        "    std::lock_guard<std::mutex> la(a_);\n"
                        "    std::lock_guard<std::mutex> lb(b_);\n"
                        "  }\n"
                        " private:\n"
                        "  std::mutex a_;\n"
                        "  std::mutex b_;\n"
                        "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR8, FlagsCvWaitWhileHoldingSecondLock) {
  auto fs = scan_source("service/x.h",
                        "class Waiter {\n"
                        " public:\n"
                        "  void stall() {\n"
                        "    std::unique_lock<std::mutex> lk(m_);\n"
                        "    std::lock_guard<std::mutex> lg(aux_);\n"
                        "    cv_.wait(lk, [&] { return ready_; });\n"
                        "  }\n"
                        " private:\n"
                        "  std::mutex m_;\n"
                        "  std::mutex aux_;\n"
                        "  std::condition_variable cv_;\n"
                        "  bool ready_ = false;\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R8"}) << render(fs);
  EXPECT_EQ(fs[0].line, 6);
  EXPECT_NE(fs[0].message.find("condition-variable wait"), std::string::npos);
  EXPECT_NE(fs[0].message.find("'lg'"), std::string::npos);
}

TEST(AuditR8, CvWaitWithOnlyItsOwnLockIsClean) {
  auto fs = scan_source("service/x.h",
                        "class Waiter {\n"
                        " public:\n"
                        "  void stall() {\n"
                        "    std::unique_lock<std::mutex> lk(m_);\n"
                        "    cv_.wait(lk, [&] { return ready_; });\n"
                        "  }\n"
                        " private:\n"
                        "  std::mutex m_;\n"
                        "  std::condition_variable cv_;\n"
                        "  bool ready_ = false;\n"
                        "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR8, FlagsFutureGetUnderLock) {
  auto fs = scan_source("service/x.cpp",
                        "double Job::result() {\n"
                        "  std::lock_guard<std::mutex> lk(m_);\n"
                        "  std::future<double> f;\n"
                        "  return f.get();\n"
                        "}\n"
                        "class Job {\n"
                        " private:\n"
                        "  std::mutex m_;\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R8"}) << render(fs);
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_NE(fs[0].message.find("release it before blocking"),
            std::string::npos);
}

TEST(AuditR8, ManualUnlockOfGuardVarIsNotBare) {
  // unique_lock's own .unlock()/.lock() are part of the RAII protocol,
  // and a released guard no longer counts as held across a future get.
  auto fs = scan_source("service/x.cpp",
                        "void Job::step() {\n"
                        "  std::unique_lock<std::mutex> lk(m_);\n"
                        "  lk.unlock();\n"
                        "  std::future<int> f;\n"
                        "  f.get();\n"
                        "}\n"
                        "class Job {\n"
                        " private:\n"
                        "  std::mutex m_;\n"
                        "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR8, OutsideLockScopeIsIgnored) {
  auto fs = scan_source("measure/x.h",
                        "class Counter {\n"
                        " public:\n"
                        "  void poke() { m_.lock(); m_.unlock(); }\n"
                        " private:\n"
                        "  std::mutex m_;\n"
                        "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR8, InlineWaiverSilencesWithReason) {
  auto fs = scan_source(
      "service/x.h",
      "class Counter {\n"
      " public:\n"
      "  void poke() {\n"
      "    // gdelay-audit: allow(R8) interlocks with a C callback API\n"
      "    m_.lock();\n"
      "    // gdelay-audit: allow(R8) paired with the lock above\n"
      "    m_.unlock();\n"
      "  }\n"
      " private:\n"
      "  std::mutex m_;\n"
      "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR8, BaselineSuppresses) {
  auto fs = scan_source("service/x.h",
                        "class Counter {\n"
                        " public:\n"
                        "  void poke() { m_.lock(); }\n"
                        " private:\n"
                        "  std::mutex m_;\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R8"}) << render(fs);
  auto kept = gdelay::audit::apply_baseline(fs, "service/x.h:3:R8\n");
  EXPECT_TRUE(kept.empty()) << render(kept);
}

// --------------------------------------------------------------------------
// R9 — RNG stream hygiene in pool tasks
// --------------------------------------------------------------------------

namespace r9 {

// Class fragment shared by the R9 cases: holds a parent stream and
// declares fork_noise() so R3 stays quiet.
const char* kSweepClass =
    "class Sweep {\n"
    " public:\n"
    "  void run(std::size_t n);\n"
    "  void fork_noise(std::uint64_t);\n"
    " private:\n"
    "  util::Rng rng_;\n"
    "};\n";

}  // namespace r9

TEST(AuditR9, FlagsParentStreamDrawInPoolLambda) {
  auto fs = scan_source(
      "fast/x.cpp",
      std::string(r9::kSweepClass) +
          "void Sweep::run(std::size_t n) {\n"
          "  util::parallel_for(n, [&](std::size_t i) {\n"
          "    out_[i] = rng_.gauss();\n"
          "  });\n"
          "}\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R9"}) << render(fs);
  EXPECT_EQ(fs[0].line, 10);
  EXPECT_NE(fs[0].message.find("drawn inside a pool task"),
            std::string::npos);
}

TEST(AuditR9, FlagsParentStreamPassedByAddress) {
  auto fs = scan_source(
      "fast/x.cpp",
      std::string(r9::kSweepClass) +
          "void Sweep::run(std::size_t n) {\n"
          "  util::parallel_for(n, [&](std::size_t i) {\n"
          "    fill(&rng_, i);\n"
          "  });\n"
          "}\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R9"}) << render(fs);
  EXPECT_NE(fs[0].message.find("passed by address"), std::string::npos);
}

TEST(AuditR9, ForkedChildStreamIsClean) {
  auto fs = scan_source(
      "fast/x.cpp",
      std::string(r9::kSweepClass) +
          "void Sweep::run(std::size_t n) {\n"
          "  util::parallel_for(n, [&](std::size_t i) {\n"
          "    auto child = rng_.fork(i);\n"
          "    out_[i] = child.gauss();\n"
          "  });\n"
          "}\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR9, StreamDeclaredInsideBodyIsClean) {
  auto fs = scan_source("fast/x.cpp",
                        "void run(std::size_t n) {\n"
                        "  util::parallel_for(n, [&](std::size_t i) {\n"
                        "    util::Rng local(i);\n"
                        "    use(local.gauss());\n"
                        "  });\n"
                        "}\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR9, InlineWaiverSilencesWithReason) {
  auto fs = scan_source(
      "fast/x.cpp",
      std::string(r9::kSweepClass) +
          "void Sweep::run(std::size_t n) {\n"
          "  util::parallel_for(n, [&](std::size_t i) {\n"
          "    // gdelay-audit: allow(R9) serial fallback path, n is 1 here\n"
          "    out_[i] = rng_.gauss();\n"
          "  });\n"
          "}\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR9, BaselineSuppresses) {
  auto fs = scan_source(
      "fast/x.cpp",
      std::string(r9::kSweepClass) +
          "void Sweep::run(std::size_t n) {\n"
          "  util::parallel_for(n, [&](std::size_t i) {\n"
          "    out_[i] = rng_.gauss();\n"
          "  });\n"
          "}\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R9"}) << render(fs);
  auto kept = gdelay::audit::apply_baseline(fs, "fast/x.cpp:10:R9\n");
  EXPECT_TRUE(kept.empty()) << render(kept);
}

// --------------------------------------------------------------------------
// R10 — atomics discipline
// --------------------------------------------------------------------------

TEST(AuditR10, FlagsImplicitSeqCstShorthand) {
  auto fs = scan_source("util/x.h",
                        "class Stats {\n"
                        " public:\n"
                        "  void bump() {\n"
                        "    n_ = 5;\n"
                        "    ++n_;\n"
                        "    n_ += 2;\n"
                        "  }\n"
                        " private:\n"
                        "  std::atomic<int> n_{0};\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), (std::vector<std::string>{"R10", "R10", "R10"}))
      << render(fs);
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_EQ(fs[1].line, 5);
  EXPECT_EQ(fs[2].line, 6);
  EXPECT_NE(fs[0].message.find("implicit seq_cst"), std::string::npos);
}

TEST(AuditR10, FlagsAtomicOpWithoutExplicitOrder) {
  auto fs = scan_source("util/x.h",
                        "class Stats {\n"
                        " public:\n"
                        "  void bump() { n_.store(5); }\n"
                        " private:\n"
                        "  std::atomic<int> n_{0};\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R10"}) << render(fs);
  EXPECT_NE(fs[0].message.find("explicit std::memory_order"),
            std::string::npos);
}

TEST(AuditR10, CleanOnExplicitOrders) {
  auto fs = scan_source(
      "util/x.h",
      "class Stats {\n"
      " public:\n"
      "  void bump() {\n"
      "    n_.store(5, std::memory_order_release);\n"
      "    n_.fetch_add(1, std::memory_order_relaxed);\n"
      "    int v = n_.load(std::memory_order_acquire);\n"
      "    (void)v;\n"
      "  }\n"
      " private:\n"
      "  std::atomic<int> n_{0};\n"
      "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR10, WriteOnceStoreOutsideCasClaimIsFlagged) {
  // Label inside the write-once allowlist: a plain store to the
  // namespace-scope atomic from a function with no CAS claim is the
  // racy-init shape the idiom forbids.
  auto fs = scan_source(
      "service/config.cpp",
      "namespace {\n"
      "std::atomic<int> g_val{0};\n"
      "}\n"
      "void reset(int v) {\n"
      "  g_val.store(v, std::memory_order_release);\n"
      "}\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R10"}) << render(fs);
  EXPECT_EQ(fs[0].line, 5);
  EXPECT_NE(fs[0].message.find("write-once"), std::string::npos);
}

TEST(AuditR10, WriteOnceStoreInsideCasClaimIsClean) {
  auto fs = scan_source(
      "service/config.cpp",
      "namespace {\n"
      "std::atomic<int> g_val{0};\n"
      "}\n"
      "int resolve(int v) {\n"
      "  int expected = 0;\n"
      "  if (g_val.compare_exchange_strong(expected, v,\n"
      "                                    std::memory_order_acq_rel))\n"
      "    return v;\n"
      "  return expected;\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR10, InlineWaiverSilencesWithReason) {
  auto fs = scan_source(
      "util/x.h",
      "class Stats {\n"
      " public:\n"
      "  void bump() {\n"
      "    // gdelay-audit: allow(R10) single-threaded ctor path\n"
      "    ++n_;\n"
      "  }\n"
      " private:\n"
      "  std::atomic<int> n_{0};\n"
      "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR10, BaselineSuppresses) {
  auto fs = scan_source("util/x.h",
                        "class Stats {\n"
                        " public:\n"
                        "  void bump() { n_ = 5; }\n"
                        " private:\n"
                        "  std::atomic<int> n_{0};\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R10"}) << render(fs);
  auto kept = gdelay::audit::apply_baseline(fs, "util/x.h:3:R10\n");
  EXPECT_TRUE(kept.empty()) << render(kept);
}

// --------------------------------------------------------------------------
// R11 — blocking calls reachable from pool tasks (cross-TU)
// --------------------------------------------------------------------------

namespace r11 {

// The pool hand-off lives in a.cpp; the blocking call is two hops away
// in b.cpp, so only the cross-TU call graph can connect them.
const char* kA =
    "void helper();\n"
    "void run_all(std::size_t n) {\n"
    "  util::parallel_for(n, [&](std::size_t i) { helper(); });\n"
    "}\n";

const char* kB =
    "void deep() {\n"
    "  std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
    "}\n"
    "void helper() { deep(); }\n";

}  // namespace r11

TEST(AuditR11, FlagsSleepTwoCallsBehindPoolLambda) {
  auto fs = scan_files({{"util/a.cpp", r11::kA}, {"util/b.cpp", r11::kB}}, {});
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R11"}) << render(fs);
  EXPECT_EQ(fs[0].file, "util/b.cpp");
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_NE(fs[0].message.find("sleep_for"), std::string::npos);
  EXPECT_NE(fs[0].message.find("a pool-task lambda at util/a.cpp:3"),
            std::string::npos);
}

TEST(AuditR11, UnreachableBlockingCallIsClean) {
  // Same blocking helper, but nothing hands work to the pool: no root,
  // no finding.
  auto fs = scan_files({{"util/b.cpp", r11::kB}}, {});
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR11, ConsumeBodyIsARoot) {
  auto fs = scan_files(
      {{"measure/s.h",
        "class Sink {\n"
        " public:\n"
        "  void consume(const double* s, std::size_t n);\n"
        " private:\n"
        "  std::future<int> fut_;\n"
        "};\n"},
       {"measure/s.cpp",
        "void Sink::consume(const double* s, std::size_t n) {\n"
        "  fut_.wait();\n"
        "}\n"}},
      {});
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R11"}) << render(fs);
  EXPECT_EQ(fs[0].file, "measure/s.cpp");
  EXPECT_NE(fs[0].message.find("consume() in measure/s.cpp"),
            std::string::npos);
}

TEST(AuditR11, WaitpidReachableFromPoolLambdaIsFlagged) {
  // waitpid parks the calling thread until a child exits; reached from a
  // pool task outside campaign/ it can deadlock a saturated pool.
  const char* reaper =
      "void reap(int pid) {\n"
      "  int status = 0;\n"
      "  waitpid(pid, &status, 0);\n"
      "}\n"
      "void run_all(std::size_t n) {\n"
      "  util::parallel_for(n, [&](std::size_t i) { reap((int)i); });\n"
      "}\n";
  auto fs = scan_files({{"util/reap.cpp", reaper}}, {});
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R11"}) << render(fs);
  EXPECT_EQ(fs[0].file, "util/reap.cpp");
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_NE(fs[0].message.find("waitpid"), std::string::npos);
}

TEST(AuditR11, CampaignReapSitesAreScopeAllowed) {
  // Identical code under campaign/ is clean: the orchestrator only calls
  // waitpid after draining a child's pipe to EOF, which the child writes
  // only on exit — the wait is bounded by construction, so the directory
  // carries a scoped allowance instead of per-line waivers.
  const char* reaper =
      "void reap(int pid) {\n"
      "  int status = 0;\n"
      "  waitpid(pid, &status, 0);\n"
      "}\n"
      "void run_all(std::size_t n) {\n"
      "  util::parallel_for(n, [&](std::size_t i) { reap((int)i); });\n"
      "}\n";
  auto fs = scan_files({{"campaign/campaign.cpp", reaper}}, {});
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR11, BlockingAllowlistIsConfigurable) {
  // Clearing blocking_allowed must re-expose campaign/ findings — the
  // allowance is an Options knob, not a hard-coded exemption.
  const char* reaper =
      "void reap(int pid) { int s = 0; waitpid(pid, &s, 0); }\n"
      "void run_all(std::size_t n) {\n"
      "  util::parallel_for(n, [&](std::size_t i) { reap((int)i); });\n"
      "}\n";
  gdelay::audit::Options opt;
  opt.blocking_allowed.clear();
  auto fs = scan_files({{"campaign/campaign.cpp", reaper}}, {}, opt);
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R11"}) << render(fs);
  EXPECT_NE(fs[0].message.find("waitpid"), std::string::npos);
}

TEST(AuditR11, InlineWaiverInOtherFileSilences) {
  // The waiver sits on the blocking line in b.cpp while the root is in
  // a.cpp — scan_global must apply waivers recorded in the index for
  // files other than the root's.
  const char* waived_b =
      "void deep() {\n"
      "  // gdelay-audit: allow(R11) bounded back-off, workers never park\n"
      "  std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
      "}\n"
      "void helper() { deep(); }\n";
  auto fs =
      scan_files({{"util/a.cpp", r11::kA}, {"util/b.cpp", waived_b}}, {});
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR11, BaselineSuppresses) {
  auto fs = scan_files({{"util/a.cpp", r11::kA}, {"util/b.cpp", r11::kB}}, {});
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R11"}) << render(fs);
  auto kept = gdelay::audit::apply_baseline(fs, "util/b.cpp:2:R11\n");
  EXPECT_TRUE(kept.empty()) << render(kept);
}

// --------------------------------------------------------------------------
// R12 — contract coverage (src vs tests cross-reference)
// --------------------------------------------------------------------------

namespace r12 {

const char* kElement =
    "class Gain : public AnalogElement {\n"
    " public:\n"
    "  double step(double v, double dt) override;\n"
    "  void process_block(const double* in, double* out, std::size_t n,\n"
    "                     double dt_ps) override;\n"
    "  std::unique_ptr<AnalogElement> clone() const override;\n"
    "};\n";

const char* kKernels =
    "struct Kernels {\n"
    "  const char* name;\n"
    "  void (*scale)(const double*, double*, std::size_t);\n"
    "  void (*scale_batch)(const double*, double*, std::size_t);\n"
    "};\n";

const char* kRequests = "enum class RequestKind { kPlan, kProgram };\n";

std::vector<SourceFile> sources() {
  return {{"analog/elem.h", kElement},
          {"backend/tab.h", kKernels},
          {"service/kinds.h", kRequests}};
}

}  // namespace r12

TEST(AuditR12, FlagsEveryUncoveredContract) {
  // No test sources mention anything: with the corpus registered but
  // empty of the contract identifiers, every domain reports.
  std::vector<SourceFile> tests = {
      {"tests/test_block_kernels.cpp", "TEST(B, Smoke) {}"},
      {"tests/test_backend_equivalence.cpp", "TEST(E, Smoke) {}"},
      {"tests/test_batch_equivalence.cpp", "TEST(L, Smoke) {}"},
      {"tests/test_service_determinism.cpp", "TEST(S, Smoke) {}"}};
  auto fs = scan_files(r12::sources(), tests);
  ASSERT_EQ(rules_of(fs),
            (std::vector<std::string>{"R12", "R12", "R12", "R12", "R12"}))
      << render(fs);
  std::string all = render(fs);
  EXPECT_NE(all.find("'Gain'"), std::string::npos);
  EXPECT_NE(all.find("'scale'"), std::string::npos);
  EXPECT_NE(all.find("'scale_batch'"), std::string::npos);
  EXPECT_NE(all.find("'kPlan'"), std::string::npos);
  EXPECT_NE(all.find("'kProgram'"), std::string::npos);
}

TEST(AuditR12, BatchKernelsResolveAgainstBatchSuite) {
  // scale_batch covered only by the batch suite, scale only by the solo
  // suite — the _batch suffix must route each entry to its own corpus.
  std::vector<SourceFile> tests = {
      {"tests/test_block_kernels.cpp", "TEST(B, G) { Gain g; }"},
      {"tests/test_backend_equivalence.cpp",
       "TEST(E, S) { k->scale(nullptr, nullptr, 0); }"},
      {"tests/test_batch_equivalence.cpp",
       "TEST(L, S) { k->scale_batch(nullptr, nullptr, 0); }"},
      {"tests/test_service_determinism.cpp",
       "TEST(S, K) { run(RequestKind::kPlan); run(RequestKind::kProgram); }"}};
  auto fs = scan_files(r12::sources(), tests);
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR12, MissingEnumeratorIsASingleFinding) {
  std::vector<SourceFile> tests = {
      {"tests/test_block_kernels.cpp", "TEST(B, G) { Gain g; }"},
      {"tests/test_backend_equivalence.cpp",
       "TEST(E, S) { k->scale(nullptr, nullptr, 0); }"},
      {"tests/test_batch_equivalence.cpp",
       "TEST(L, S) { k->scale_batch(nullptr, nullptr, 0); }"},
      {"tests/test_service_determinism.cpp",
       "TEST(S, K) { run(RequestKind::kPlan); }"}};
  auto fs = scan_files(r12::sources(), tests);
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R12"}) << render(fs);
  EXPECT_EQ(fs[0].file, "service/kinds.h");
  EXPECT_NE(fs[0].message.find("'kProgram'"), std::string::npos);
}

TEST(AuditR12, SkippedWithoutRegisteredTests) {
  auto fs = scan_files(r12::sources(), {});
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR12, InlineWaiverSilencesWithReason) {
  std::vector<SourceFile> srcs = r12::sources();
  srcs[2].content =
      "// gdelay-audit: allow(R12) request kinds are covered via the CLI "
      "round-trip suite\n" +
      std::string(r12::kRequests);
  std::vector<SourceFile> tests = {
      {"tests/test_block_kernels.cpp", "TEST(B, G) { Gain g; }"},
      {"tests/test_backend_equivalence.cpp",
       "TEST(E, S) { k->scale(nullptr, nullptr, 0); }"},
      {"tests/test_batch_equivalence.cpp",
       "TEST(L, S) { k->scale_batch(nullptr, nullptr, 0); }"},
      {"tests/test_service_determinism.cpp", "TEST(S, Smoke) {}"}};
  auto fs = scan_files(srcs, tests);
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR12, BaselineSuppresses) {
  std::vector<SourceFile> tests = {
      {"tests/test_block_kernels.cpp", "TEST(B, G) { Gain g; }"},
      {"tests/test_backend_equivalence.cpp",
       "TEST(E, S) { k->scale(nullptr, nullptr, 0); }"},
      {"tests/test_batch_equivalence.cpp",
       "TEST(L, S) { k->scale_batch(nullptr, nullptr, 0); }"},
      {"tests/test_service_determinism.cpp",
       "TEST(S, K) { run(RequestKind::kPlan); }"}};
  auto fs = scan_files(r12::sources(), tests);
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R12"}) << render(fs);
  auto kept = gdelay::audit::apply_baseline(fs, "service/kinds.h:1:R12\n");
  EXPECT_TRUE(kept.empty()) << render(kept);
}

// --------------------------------------------------------------------------
// Cross-TU symbol index correctness
// --------------------------------------------------------------------------

TEST(AuditIndex, ResolvesMembersAndCallEdgesAcrossFiles) {
  auto idx = build_index({{"service/a.h",
                           "class Svc {\n"
                           " public:\n"
                           "  void ping();\n"
                           " private:\n"
                           "  std::mutex mu_;\n"
                           "  std::condition_variable cv_;\n"
                           "  std::atomic<int> n_{0};\n"
                           "  std::future<int> fut_;\n"
                           "};\n"},
                          {"service/b.cpp", "void pong() { ping(); }\n"}});

  // Member-type maps merged over all classes.
  EXPECT_EQ(idx.mutex_names.count("mu_"), 1u);
  EXPECT_EQ(idx.cv_names.count("cv_"), 1u);
  EXPECT_EQ(idx.atomic_names.count("n_"), 1u);
  EXPECT_EQ(idx.future_names.count("fut_"), 1u);

  // The mutex rank records the declaring file and source order.
  auto mr = idx.mutex_rank.find("mu_");
  ASSERT_NE(mr, idx.mutex_rank.end());
  EXPECT_EQ(mr->second.first, "service/a.h");
  EXPECT_EQ(mr->second.second, 0);

  // The class itself, with its method set.
  const gdelay::audit::IndexedClass* svc = nullptr;
  for (const auto& c : idx.classes)
    if (c.name == "Svc") svc = &c;
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->file, "service/a.h");
  EXPECT_EQ(svc->methods.count("ping"), 1u);

  // The function in the other TU, with its outgoing call edge.
  const gdelay::audit::IndexedFunction* pong = nullptr;
  for (const auto& f : idx.functions)
    if (f.name == "pong") pong = &f;
  ASSERT_NE(pong, nullptr);
  EXPECT_EQ(pong->file, "service/b.cpp");
  EXPECT_EQ(pong->calls.count("ping"), 1u);
}

// --------------------------------------------------------------------------
// Waiver hygiene, baseline, formatting
// --------------------------------------------------------------------------

TEST(AuditWaiver, MissingReasonIsItselfAFinding) {
  auto fs = scan_source("util/x.cpp",
                        "// gdelay-audit: allow(R2)\n"
                        "int b() { return std::rand(); }\n");
  auto rules = rules_of(fs);
  ASSERT_EQ(fs.size(), 2u) << render(fs);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "waiver"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "R2"), rules.end());
}

TEST(AuditWaiver, WrongRuleDoesNotSilence) {
  auto fs = scan_source(
      "util/x.cpp",
      "// gdelay-audit: allow(R1) wrong rule id for this finding\n"
      "int b() { return std::rand(); }\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R2"}) << render(fs);
}

TEST(AuditBaseline, SuppressesListedFindingsOnly) {
  auto fs = scan_source("util/x.cpp",
                        "int a() { return std::rand(); }\n"
                        "int b() { return std::rand(); }\n");
  ASSERT_EQ(fs.size(), 2u) << render(fs);
  auto kept = gdelay::audit::apply_baseline(
      fs, "# comment\nutil/x.cpp:1:R2\n\n");
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].line, 2);
}

TEST(AuditFormat, GccDiagnosticShape) {
  Finding f{"analog/x.cpp", 12, 0, "R1", "direct libm call"};
  EXPECT_EQ(gdelay::audit::format(f),
            "analog/x.cpp:12: error[R1]: direct libm call");
}

TEST(AuditFormat, ColumnRenderedWhenKnown) {
  Finding f{"f.cpp", 3, 7, "R1", "m"};
  EXPECT_EQ(gdelay::audit::format(f), "f.cpp:3:7: error[R1]: m");
}

TEST(AuditFormat, BaselineRoundTrip) {
  Finding f{"analog/x.cpp", 12, 0, "R1", "direct libm call"};
  std::string text = gdelay::audit::to_baseline({f});
  auto kept = gdelay::audit::apply_baseline({f}, text);
  EXPECT_TRUE(kept.empty());
}

TEST(AuditBaseline, StaleEntriesAreReported) {
  auto fs = scan_source("util/x.cpp", "int a() { return std::rand(); }\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R2"}) << render(fs);
  auto stale = gdelay::audit::stale_baseline_entries(
      fs, "# note\nutil/x.cpp:1:R2\nutil/x.cpp:9:R1\n");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "util/x.cpp:9:R1");
}

TEST(AuditStats, CountsFindingsAndWaiversPerRule) {
  ScanStats st;
  auto fs = scan_source("util/x.cpp",
                        "int a() { return std::rand(); }\n"
                        "// gdelay-audit: allow(R2) deterministic probe only\n"
                        "int b() { return std::rand(); }\n",
                        Options{}, nullptr, &st);
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R2"}) << render(fs);
  EXPECT_EQ(st.findings["R2"], 1);
  EXPECT_EQ(st.waived["R2"], 1);
  EXPECT_EQ(st.files_scanned, 1);
}

TEST(AuditSarif, EmitsValidShape) {
  Finding f{"service/x.cpp", 3, 7, "R8", "bare \"lock\" call"};
  std::string doc = gdelay::audit::to_sarif({f});
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"gdelay-audit\""), std::string::npos);
  EXPECT_NE(doc.find("\"ruleId\": \"R8\""), std::string::npos);
  EXPECT_NE(doc.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"startColumn\": 7"), std::string::npos);
  // Embedded quotes must come out escaped, and every catalogued rule
  // must appear in the driver's rule table.
  EXPECT_NE(doc.find("bare \\\"lock\\\" call"), std::string::npos);
  for (const auto& r : gdelay::audit::rule_catalog())
    EXPECT_NE(doc.find(std::string("\"id\": \"") + r.id + "\""),
              std::string::npos)
        << r.id;
}

TEST(AuditSarif, ColumnOmittedWhenUnknown) {
  Finding f{"a.cpp", 5, 0, "R12", "uncovered"};
  std::string doc = gdelay::audit::to_sarif({f});
  EXPECT_NE(doc.find("\"startLine\": 5"), std::string::npos);
  EXPECT_EQ(doc.find("startColumn"), std::string::npos);
}

// --------------------------------------------------------------------------
// Self-scan — the live tree obeys its own rules
// --------------------------------------------------------------------------

TEST(AuditSelfScan, LiveSourceTreeIsClean) {
  auto fs = gdelay::audit::scan_tree(GDELAY_SOURCE_ROOT, Options{});
  EXPECT_TRUE(fs.empty()) << "src/ has unwaived audit findings:\n"
                          << render(fs);
}

TEST(AuditSelfScan, LiveTreeWithTestCorpusIsClean) {
  // Registers tests/ as the R12 corpus (the same thing the CLI gate does
  // with --tests), so the contract-coverage rule actually runs: every
  // AnalogElement subclass, Kernels entry, and RequestKind in the live
  // tree must be exercised by its designated suite.
  auto sources = gdelay::audit::collect_tree(GDELAY_SOURCE_ROOT);
  auto tests = gdelay::audit::collect_tree(GDELAY_TEST_ROOT);
  for (auto& t : tests) t.label = "tests/" + t.label;
  ASSERT_FALSE(sources.empty());
  ASSERT_FALSE(tests.empty());
  auto fs = scan_files(sources, tests);
  EXPECT_TRUE(fs.empty())
      << "src/ has unwaived audit findings (R12 corpus registered):\n"
      << render(fs);
}

}  // namespace
