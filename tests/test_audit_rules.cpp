// Unit coverage for the gdelay-audit rule engine (tools/audit). Each rule
// R1-R7 gets a violating, a clean, and a waived case; the final test
// self-scans the live src/ tree and asserts it is clean, which is the
// same check `ctest -R Audit` and the CI gate run via the CLI.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit.h"

namespace {

using gdelay::audit::Finding;
using gdelay::audit::Options;
using gdelay::audit::scan_source;

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  for (const auto& f : fs) out.push_back(f.rule);
  return out;
}

std::string render(const std::vector<Finding>& fs) {
  std::string out;
  for (const auto& f : fs) out += gdelay::audit::format(f) + "\n";
  return out;
}

// --------------------------------------------------------------------------
// R1 — no direct libm transcendentals
// --------------------------------------------------------------------------

TEST(AuditR1, FlagsDirectLibmCall) {
  auto fs = scan_source("analog/x.cpp",
                        "double f(double v) { return std::tanh(v); }");
  ASSERT_EQ(fs.size(), 1u) << render(fs);
  EXPECT_EQ(fs[0].rule, "R1");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_NE(fs[0].message.find("det_tanh"), std::string::npos);
}

TEST(AuditR1, FlagsUnqualifiedCallToo) {
  auto fs = scan_source("core/x.cpp", "double f(double v) { return exp(v); }");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R1"}) << render(fs);
}

TEST(AuditR1, CleanOnDeterministicKernelsAndMemberCalls) {
  auto fs = scan_source("analog/x.cpp",
                        "double f(double v) { return util::det_tanh(v); }\n"
                        "double g(Obj& o) { return o.exp(2.0); }\n"
                        "double h(Obj* o) { return o->log(2.0); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR1, FastmathHeaderIsExempt) {
  auto fs = scan_source("util/fastmath.h",
                        "double ref(double v) { return std::tanh(v); }");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR1, InlineWaiverSilencesWithReason) {
  auto fs = scan_source(
      "measure/x.cpp",
      "// gdelay-audit: allow(R1) analysis-side readout, not signal path\n"
      "double f(double y, double x) { return std::atan2(y, x); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR1, WaiverCoversNextCodeLineAcrossCommentBlock) {
  // A waiver whose reason wraps onto a second comment line still covers
  // the first code line after the comment block.
  auto fs = scan_source(
      "measure/x.cpp",
      "// gdelay-audit: allow(R1) analysis-side readout whose reason is\n"
      "// long enough to wrap onto a second comment line\n"
      "double f(double y, double x) { return std::atan2(y, x); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// R2 — no nondeterminism sources
// --------------------------------------------------------------------------

TEST(AuditR2, FlagsRandomDeviceAndRand) {
  auto fs = scan_source("util/x.cpp",
                        "int a() { std::random_device rd; return rd(); }\n"
                        "int b() { return std::rand(); }\n"
                        "long c() { return time(nullptr); }\n");
  auto rules = rules_of(fs);
  ASSERT_EQ(rules, (std::vector<std::string>{"R2", "R2", "R2"})) << render(fs);
}

TEST(AuditR2, FlagsWallClockReads) {
  auto fs = scan_source(
      "core/x.cpp", "auto t = std::chrono::steady_clock::now();");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R2"}) << render(fs);
}

TEST(AuditR2, CleanOnSeededRng) {
  auto fs = scan_source("core/x.cpp",
                        "double f(util::Rng& rng) { return rng.gauss(); }");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR2, GetenvAllowedOnlyInDesignatedOwners) {
  // thread_pool owns GDELAY_THREADS, backend/dispatch owns GDELAY_BACKEND,
  // service/config owns GDELAY_SERVICE_SHARDS; everything else must take
  // configuration explicitly.
  const std::string src = "const char* f() { return std::getenv(\"X\"); }";
  EXPECT_TRUE(scan_source("util/thread_pool.cpp", src).empty());
  EXPECT_TRUE(scan_source("backend/dispatch.cpp", src).empty());
  EXPECT_TRUE(scan_source("service/config.cpp", src).empty());
  auto fs = scan_source("core/x.cpp", src);
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R2"}) << render(fs);
}

TEST(AuditR2, ServiceRequestPathsAreNotEnvExempt) {
  // The R2 waiver stops at the service's config resolution: an env read
  // in the request-handling or cache paths could fork response content
  // per host, which the determinism contract forbids.
  const std::string src = "const char* f() { return std::getenv(\"X\"); }";
  for (const char* label :
       {"service/service.cpp", "service/cal_cache.cpp", "service/service.h"}) {
    auto fs = scan_source(label, src);
    ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R2"})
        << label << "\n"
        << render(fs);
  }
}

TEST(AuditR2, InlineWaiverSilences) {
  auto fs = scan_source(
      "util/x.cpp",
      "int b() { return std::rand(); }  // gdelay-audit: allow(R2) probe\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// R3 — element-contract completeness
// --------------------------------------------------------------------------

TEST(AuditR3, FlagsStepWithoutProcessBlockAndClone) {
  auto fs = scan_source(
      "analog/x.h",
      "class Partial : public AnalogElement {\n"
      " public:\n"
      "  double step(double v, double dt) override { return v * dt; }\n"
      "};\n");
  auto rules = rules_of(fs);
  ASSERT_EQ(rules, (std::vector<std::string>{"R3", "R3"})) << render(fs);
  EXPECT_NE(fs[0].message.find("process_block"), std::string::npos);
  EXPECT_NE(fs[1].message.find("clone"), std::string::npos);
}

TEST(AuditR3, FlagsRngMemberWithoutForkNoise) {
  auto fs = scan_source("fast/x.h",
                        "class Holder {\n"
                        " public:\n"
                        "  double sample();\n"
                        " private:\n"
                        "  util::Rng rng_;\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R3"}) << render(fs);
  EXPECT_NE(fs[0].message.find("fork_noise"), std::string::npos);
}

TEST(AuditR3, CleanOnCompleteElement) {
  auto fs = scan_source(
      "analog/x.h",
      "class Complete final : public AnalogElement {\n"
      " public:\n"
      "  double step(double v, double dt) override;\n"
      "  void process_block(const double* in, double* out, std::size_t n,\n"
      "                     double dt_ps) override;\n"
      "  std::unique_ptr<AnalogElement> clone() const override {\n"
      "    return std::make_unique<Complete>(*this);\n"
      "  }\n"
      "  void fork_noise(std::uint64_t stream) { rng_ = rng_.fork(stream); }\n"
      " private:\n"
      "  util::Rng rng_{42};\n"
      "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR3, UnrelatedClassesAreIgnored) {
  auto fs = scan_source("measure/x.h",
                        "class Meter : public Instrument {\n"
                        " public:\n"
                        "  double step(double v, double dt);\n"
                        "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR3, InlineWaiverSilences) {
  auto fs = scan_source(
      "analog/x.h",
      "// gdelay-audit: allow(R3) scalar-only shim, block path unreachable\n"
      "class Partial : public AnalogElement {\n"
      " public:\n"
      "  double step(double v, double dt) override { return v * dt; }\n"
      "  std::unique_ptr<AnalogElement> clone() const override;\n"
      "};\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// R4 — no mutable namespace-scope state
// --------------------------------------------------------------------------

TEST(AuditR4, FlagsMutableGlobals) {
  auto fs = scan_source("util/x.cpp",
                        "namespace gdelay {\n"
                        "int g_counter = 0;\n"
                        "static double g_scale{1.0};\n"
                        "}\n");
  ASSERT_EQ(rules_of(fs), (std::vector<std::string>{"R4", "R4"}))
      << render(fs);
}

TEST(AuditR4, CleanOnConstantsDeclarationsAndLocals) {
  auto fs = scan_source(
      "util/x.cpp",
      "namespace gdelay {\n"
      "constexpr double kPi = 3.14159265358979323846;\n"
      "const int kLanes = 4;\n"
      "inline constexpr int kBits{8};\n"
      "class Fwd;\n"
      "using Row = std::vector<double>;\n"
      "double free_fn(double x);\n"
      "double with_local(double x) { double acc = x; return acc; }\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR4, InlineWaiverSilences) {
  auto fs = scan_source(
      "util/x.cpp",
      "// gdelay-audit: allow(R4) guarded by pool mutex, test-only knob\n"
      "int g_hook_count = 0;\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR4, ServiceConfigAllowedServicePathsAreNot) {
  // service/config holds the write-once resolved shard count (the same
  // pattern as backend/dispatch's active-table atomics); the request
  // dispatch and cache paths get no such exemption — global mutable
  // state there would be an arrival-order dependence.
  const std::string src = "namespace gdelay {\nint g_state = 0;\n}\n";
  EXPECT_TRUE(scan_source("service/config.cpp", src).empty());
  for (const char* label : {"service/service.cpp", "service/cal_cache.cpp"}) {
    auto fs = scan_source(label, src);
    ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R4"})
        << label << "\n"
        << render(fs);
  }
}

// --------------------------------------------------------------------------
// R5 — no float in the analog path
// --------------------------------------------------------------------------

TEST(AuditR5, FlagsFloatTypeAndLiteral) {
  auto fs = scan_source("analog/x.cpp",
                        "double f() { float v = 0.5f; return v; }");
  ASSERT_EQ(rules_of(fs), (std::vector<std::string>{"R5", "R5"}))
      << render(fs);
}

TEST(AuditR5, CleanOutsideAnalogPathAndOnDoubles) {
  // measure/ is not part of the analog path, and hex literals ending in
  // 'f' are not float literals.
  EXPECT_TRUE(
      scan_source("measure/x.cpp", "float scale() { return 0.5f; }").empty());
  auto fs = scan_source("analog/x.cpp",
                        "double f() { return 0.5 * 1e-3 + 0x2Fu; }");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR5, InlineWaiverSilences) {
  auto fs = scan_source(
      "signal/x.cpp",
      "// gdelay-audit: allow(R5) narrowing is intentional for the DAC model\n"
      "float dac_code(double v) { return static_cast<float>(v); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// R6 — no per-chunk allocation in measurement sinks
// --------------------------------------------------------------------------

TEST(AuditR6, FlagsContainerGrowthInConsume) {
  auto fs = scan_source("measure/x.cpp",
                        "void CaptureSink::consume(const double* s,\n"
                        "                          std::size_t n) {\n"
                        "  for (std::size_t i = 0; i < n; ++i)\n"
                        "    samples_.push_back(s[i]);\n"
                        "}\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R6"}) << render(fs);
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_NE(fs[0].message.find("push_back"), std::string::npos);
}

TEST(AuditR6, FlagsInClassDefinitionAndPointerCalls) {
  auto fs = scan_source("measure/x.h",
                        "class Sink : public ISampleSink {\n"
                        " public:\n"
                        "  void consume(const double* s, std::size_t n)\n"
                        "      override {\n"
                        "    buf_->resize(n);\n"
                        "    ticks_.emplace_back(n);\n"
                        "  }\n"
                        "};\n");
  ASSERT_EQ(rules_of(fs), (std::vector<std::string>{"R6", "R6"}))
      << render(fs);
}

TEST(AuditR6, CleanOutsideConsumeAndOnNonGrowthCalls) {
  // Growth in begin()/finish() is fine (one-shot, not per chunk), and a
  // consume() body that only indexes or memcpy's never allocates.
  auto fs = scan_source(
      "measure/x.cpp",
      "void Sink::begin(double t0, double dt, std::size_t n) {\n"
      "  samples_.reserve(n);\n"
      "}\n"
      "void Sink::consume(const double* s, std::size_t n) {\n"
      "  std::memcpy(samples_.data() + pos_, s, n * sizeof(double));\n"
      "  pos_ += n;\n"
      "}\n"
      "void Sink::finish() { edges_.push_back(last_); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR6, DelegatingConsumeCallIsNotGrowth) {
  auto fs = scan_source("measure/x.cpp",
                        "void JitterSink::consume(const double* s,\n"
                        "                         std::size_t n) {\n"
                        "  edge_sink_.consume(s, n);\n"
                        "}\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR6, InlineWaiverSilencesWithReason) {
  auto fs = scan_source(
      "signal/x.cpp",
      "void Extractor::consume(const double* s, std::size_t n) {\n"
      "  // gdelay-audit: allow(R6) pruned window, O(transition) bounded\n"
      "  hist_.push_back(s[0]);\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// R7 — SIMD intrinsics only inside the compute backend
// --------------------------------------------------------------------------

TEST(AuditR7, FlagsIntrinsicHeaderInclude) {
  // The lexer strips preprocessor directives, so this exercises the raw
  // line scan, not the token scan.
  auto fs = scan_source("analog/x.cpp",
                        "#include <immintrin.h>\n"
                        "double f(double v) { return v; }\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R7"}) << render(fs);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_NE(fs[0].message.find("immintrin.h"), std::string::npos);
}

TEST(AuditR7, FlagsIntrinsicIdentifiersAndTypes) {
  auto fs = scan_source("signal/x.cpp",
                        "double f(const double* p) {\n"
                        "  __m256d v = _mm256_loadu_pd(p);\n"
                        "  return _mm256_cvtsd_f64(v);\n"
                        "}\n");
  ASSERT_EQ(rules_of(fs), (std::vector<std::string>{"R7", "R7", "R7"}))
      << render(fs);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(AuditR7, BackendDirectoryIsExempt) {
  const char* src =
      "#include <immintrin.h>\n"
      "__m256d dbl(__m256d v) { return _mm256_add_pd(v, v); }\n";
  EXPECT_TRUE(scan_source("backend/kernels_avx2.cpp", src).empty());
  EXPECT_TRUE(scan_source("src/backend/kernels_avx2.cpp", src).empty());
  auto fs = scan_source("util/x.cpp", src);
  EXPECT_FALSE(fs.empty()) << render(fs);
}

TEST(AuditR7, CleanOnOrdinaryIdentifiers) {
  // Identifiers that merely contain "mm" or "m256" as a substring (not a
  // prefix) must not trip the scan.
  auto fs = scan_source("core/x.cpp",
                        "double comm_m256(double hmm) { return hmm; }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(AuditR7, InlineWaiverSilencesWithReason) {
  auto fs = scan_source(
      "util/x.cpp",
      "// gdelay-audit: allow(R7) prefetch hint only, no packed arithmetic\n"
      "void warm(const double* p) { _mm_prefetch((const char*)p, 3); }\n");
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// --------------------------------------------------------------------------
// Waiver hygiene, baseline, formatting
// --------------------------------------------------------------------------

TEST(AuditWaiver, MissingReasonIsItselfAFinding) {
  auto fs = scan_source("util/x.cpp",
                        "// gdelay-audit: allow(R2)\n"
                        "int b() { return std::rand(); }\n");
  auto rules = rules_of(fs);
  ASSERT_EQ(fs.size(), 2u) << render(fs);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "waiver"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "R2"), rules.end());
}

TEST(AuditWaiver, WrongRuleDoesNotSilence) {
  auto fs = scan_source(
      "util/x.cpp",
      "// gdelay-audit: allow(R1) wrong rule id for this finding\n"
      "int b() { return std::rand(); }\n");
  ASSERT_EQ(rules_of(fs), std::vector<std::string>{"R2"}) << render(fs);
}

TEST(AuditBaseline, SuppressesListedFindingsOnly) {
  auto fs = scan_source("util/x.cpp",
                        "int a() { return std::rand(); }\n"
                        "int b() { return std::rand(); }\n");
  ASSERT_EQ(fs.size(), 2u) << render(fs);
  auto kept = gdelay::audit::apply_baseline(
      fs, "# comment\nutil/x.cpp:1:R2\n\n");
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].line, 2);
}

TEST(AuditFormat, GccDiagnosticShape) {
  Finding f{"analog/x.cpp", 12, "R1", "direct libm call"};
  EXPECT_EQ(gdelay::audit::format(f),
            "analog/x.cpp:12: error[R1]: direct libm call");
}

TEST(AuditFormat, BaselineRoundTrip) {
  Finding f{"analog/x.cpp", 12, "R1", "direct libm call"};
  std::string text = gdelay::audit::to_baseline({f});
  auto kept = gdelay::audit::apply_baseline({f}, text);
  EXPECT_TRUE(kept.empty());
}

// --------------------------------------------------------------------------
// Self-scan — the live tree obeys its own rules
// --------------------------------------------------------------------------

TEST(AuditSelfScan, LiveSourceTreeIsClean) {
  auto fs = gdelay::audit::scan_tree(GDELAY_SOURCE_ROOT, Options{});
  EXPECT_TRUE(fs.empty()) << "src/ has unwaived audit findings:\n"
                          << render(fs);
}

}  // namespace
