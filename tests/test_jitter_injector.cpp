// Tests for the jitter-injection mode (paper Section 5, Figs. 16/17).
#include <gtest/gtest.h>

#include "core/jitter_injector.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

namespace {
gs::SynthResult stim(std::size_t bits = 256) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  return gs::synthesize_nrz(gs::prbs(7, bits), sc);
}
}  // namespace

TEST(JitterInjector, RejectsNegativeNoise) {
  gc::JitterInjectorConfig cfg;
  cfg.noise_pp_v = -0.1;
  EXPECT_THROW(gc::JitterInjector(cfg, Rng(1)), std::invalid_argument);
  gc::JitterInjector inj(gc::JitterInjectorConfig{}, Rng(1));
  EXPECT_THROW(inj.set_noise_pp(-1.0), std::invalid_argument);
}

TEST(JitterInjector, DefaultsToMidRangeDc) {
  gc::JitterInjector inj(gc::JitterInjectorConfig{}, Rng(1));
  EXPECT_DOUBLE_EQ(inj.config().vctrl_dc_v, -1.0);  // sentinel
  EXPECT_DOUBLE_EQ(inj.noise_pp(), 0.9);
}

TEST(JitterInjector, ZeroNoisePassesSignalCleanly) {
  const auto s = stim(192);
  gc::JitterInjectorConfig cfg;
  cfg.noise_pp_v = 0.0;
  cfg.line.stage.noise_sigma_v = 0.0;
  cfg.line.output_stage.noise_sigma_v = 0.0;
  gc::JitterInjector inj(cfg, Rng(2));
  const auto out = inj.process(s.wf);
  // Skip the bias-droop settling transient; what remains is the line's
  // deterministic (pattern-dependent) jitter, a few ps at most.
  gm::JitterMeasureOptions jo;
  jo.settle_ps = 12000.0;
  const auto j = gm::measure_jitter(out, s.unit_interval_ps, jo);
  EXPECT_LT(j.tj_pp_ps, 8.0);
}

TEST(JitterInjector, InjectsSubstantialJitter) {
  // Paper Fig. 16: 900 mVpp noise turns ~8 ps input TJ into ~69 ps.
  const auto s = stim();
  gc::JitterInjectorConfig cfg;
  cfg.noise_pp_v = 0.9;
  gc::JitterInjector inj(cfg, Rng(3));
  const auto out = inj.process(s.wf);
  const auto jin = gm::measure_jitter(s.wf, s.unit_interval_ps);
  const auto jout = gm::measure_jitter(out, s.unit_interval_ps);
  EXPECT_GT(jout.tj_pp_ps - jin.tj_pp_ps, 20.0);
  EXPECT_LT(jout.tj_pp_ps, 0.45 * s.unit_interval_ps);  // eye not closed
}

TEST(JitterInjector, AddedJitterMonotoneInNoiseAmplitude) {
  // Fig. 17: added jitter grows with the applied noise amplitude.
  const auto s = stim();
  gc::JitterInjector inj(gc::JitterInjectorConfig{}, Rng(4));
  double prev = -1.0;
  for (double pp : {0.0, 0.3, 0.6, 0.9}) {
    inj.set_noise_pp(pp);
    const auto out = inj.process(s.wf);
    const double tj = gm::measure_jitter(out, s.unit_interval_ps).tj_pp_ps;
    EXPECT_GT(tj, prev - 2.0) << "pp=" << pp;
    prev = tj;
  }
  EXPECT_GT(prev, 25.0);  // at 900 mVpp the injection is large
}

TEST(JitterInjector, JitterIsCenteredNotSkewing) {
  // AC coupling: injection must not shift the mean delay appreciably.
  const auto s = stim();
  gc::JitterInjector quiet(gc::JitterInjectorConfig{}, Rng(5));
  quiet.set_noise_pp(0.0);
  gc::JitterInjector noisy(gc::JitterInjectorConfig{}, Rng(5));
  noisy.set_noise_pp(0.9);
  const auto jq = gm::measure_jitter(quiet.process(s.wf), s.unit_interval_ps);
  const auto jn = gm::measure_jitter(noisy.process(s.wf), s.unit_interval_ps);
  double shift = jn.grid_phase_ps - jq.grid_phase_ps;
  if (shift > s.unit_interval_ps / 2.0) shift -= s.unit_interval_ps;
  if (shift < -s.unit_interval_ps / 2.0) shift += s.unit_interval_ps;
  EXPECT_NEAR(shift, 0.0, 6.0);
}
