// Calibration persistence round-trip: a full set of real (measured)
// calibration curves must survive serialize -> deserialize with byte
// identity in every field, so stored tables reload into the service
// cache bit-equal to freshly swept ones.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/board.h"
#include "core/cal_io.h"
#include "core/calibration.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gd = gdelay;
namespace core = gd::core;
namespace sig = gd::sig;

namespace {

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_bit_identical(const core::ChannelCalibration& a,
                          const core::ChannelCalibration& b) {
  ASSERT_EQ(a.fine_curve.size(), b.fine_curve.size());
  for (std::size_t i = 0; i < a.fine_curve.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(a.fine_curve.xs()[i], b.fine_curve.xs()[i]))
        << "x[" << i << "]";
    EXPECT_TRUE(bitwise_equal(a.fine_curve.ys()[i], b.fine_curve.ys()[i]))
        << "y[" << i << "]";
  }
  for (std::size_t t = 0; t < a.tap_offset_ps.size(); ++t)
    EXPECT_TRUE(bitwise_equal(a.tap_offset_ps[t], b.tap_offset_ps[t]))
        << "tap " << t;
  EXPECT_TRUE(bitwise_equal(a.base_latency_ps, b.base_latency_ps));
  EXPECT_EQ(a.dac.bits(), b.dac.bits());
  EXPECT_TRUE(bitwise_equal(a.dac.vref(), b.dac.vref()));
}

}  // namespace

TEST(CalIo, FullCurveSetRoundTripsByteIdentical) {
  // Calibrate a real 2-channel board — curves with measured (irrational)
  // doubles, not hand-picked values — and round-trip every channel.
  core::DelayBoardConfig bc;
  bc.n_channels = 2;
  core::DelayBoard board(bc, gd::util::Rng(99));
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 24), sc);
  core::DelayCalibrator::Options opt;
  opt.n_vctrl_points = 5;
  const std::vector<core::ChannelCalibration>& cals =
      board.calibrate(stim.wf, opt);
  ASSERT_EQ(cals.size(), 2u);

  for (const core::ChannelCalibration& cal : cals) {
    const std::string text = core::calibration_to_text(cal);
    const core::ChannelCalibration back = core::calibration_from_text(text);
    expect_bit_identical(cal, back);
    // And the re-serialization is textually identical: the format is a
    // fixed point after one round trip.
    EXPECT_EQ(core::calibration_to_text(back), text);
  }
}

TEST(CalIo, FileRoundTripMatchesInMemory) {
  core::ChannelCalibration cal;
  cal.fine_curve = gd::util::Curve{{0.0, 0.7500000000000001, 1.5},
                                   {0.0, 10.123456789012345, 19.99999999999}};
  cal.tap_offset_ps = {0.0, 35.00000000001, 69.9999999999, 104.5};
  cal.base_latency_ps = 612.3456789012345;

  std::string path = ::testing::TempDir() + "/gdelay_cal_roundtrip.txt";
  core::save_calibration(path, cal);
  const core::ChannelCalibration back = core::load_calibration(path);
  expect_bit_identical(cal, back);
  std::remove(path.c_str());
}

TEST(CalIo, PlannedSettingsSurviveTheRoundTrip) {
  // The operational consequence of byte identity: plan() output (tap,
  // DAC code, Vctrl) is bit-equal before and after persistence.
  core::DelayBoardConfig bc;
  bc.n_channels = 1;
  core::DelayBoard board(bc, gd::util::Rng(5));
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 24), sc);
  core::DelayCalibrator::Options opt;
  opt.n_vctrl_points = 3;
  const core::ChannelCalibration& cal = board.calibrate(stim.wf, opt)[0];
  const core::ChannelCalibration back =
      core::calibration_from_text(core::calibration_to_text(cal));
  for (double target : {0.0, 17.3, 55.5, 120.0}) {
    const core::DelaySetting a = cal.plan(target);
    const core::DelaySetting b = back.plan(target);
    EXPECT_EQ(a.tap, b.tap);
    EXPECT_EQ(a.dac_code, b.dac_code);
    EXPECT_TRUE(bitwise_equal(a.vctrl_v, b.vctrl_v));
    EXPECT_TRUE(bitwise_equal(a.predicted_delay_ps, b.predicted_delay_ps));
  }
}
