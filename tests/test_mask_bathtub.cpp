// Tests for the eye-mask and bathtub (BER extrapolation) instruments.
#include <gtest/gtest.h>

#include <cmath>

#include "core/jitter_injector.h"
#include "measure/bathtub.h"
#include "measure/mask.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gm = gdelay::meas;
namespace gs = gdelay::sig;
namespace gc = gdelay::core;
using gdelay::util::Rng;

TEST(EyeMask, PointGeometry) {
  gm::EyeMask m;
  m.width_ps = 60.0;
  m.inner_width_ps = 30.0;
  m.height_v = 0.2;
  EXPECT_TRUE(gm::point_in_mask(m, 0.0, 0.0));
  EXPECT_TRUE(gm::point_in_mask(m, 14.0, 0.09));   // inside flat top
  EXPECT_FALSE(gm::point_in_mask(m, 31.0, 0.0));   // outside width
  EXPECT_FALSE(gm::point_in_mask(m, 0.0, 0.11));   // above height
  // On the sloped flank: at x = 22.5 the allowed height is half.
  EXPECT_TRUE(gm::point_in_mask(m, 22.5, 0.04));
  EXPECT_FALSE(gm::point_in_mask(m, 22.5, 0.06));
  // Symmetry.
  EXPECT_TRUE(gm::point_in_mask(m, -14.0, -0.09));
}

TEST(EyeMask, CleanEyePasses) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto r = gs::synthesize_nrz(gs::prbs(7, 128), sc);
  gm::EyeMask m;
  m.width_ps = 120.0;
  m.inner_width_ps = 60.0;
  m.height_v = 0.4;
  const auto res = gm::test_eye_mask(r.wf, r.unit_interval_ps, m, 0.0, 500.0);
  EXPECT_TRUE(res.pass());
  EXPECT_GT(res.samples_checked, 1000u);
}

TEST(EyeMask, JitteredEyeFails) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 256), sc);
  gc::JitterInjectorConfig jc;
  jc.noise_pp_v = 1.2;  // heavy injection closes the eye horizontally
  gc::JitterInjector inj(jc, Rng(4));
  const auto out = inj.process(stim.wf);
  gm::EyeMask wide;
  wide.width_ps = 290.0;  // nearly a full UI: jittered edges must hit it
  wide.inner_width_ps = 150.0;
  wide.height_v = 0.15;
  const auto res = gm::test_eye_mask(out, stim.unit_interval_ps, wide);
  EXPECT_FALSE(res.pass());
  EXPECT_GT(res.hit_ratio(), 0.0);
}

TEST(EyeMask, ValidatesInput) {
  gs::SynthConfig sc;
  const auto r = gs::synthesize_nrz(gs::prbs(7, 16), sc);
  gm::EyeMask m;
  m.inner_width_ps = m.width_ps + 1.0;
  EXPECT_THROW(gm::test_eye_mask(r.wf, 156.25, m), std::invalid_argument);
  EXPECT_THROW(gm::test_eye_mask(r.wf, 0.0, gm::EyeMask{}),
               std::invalid_argument);
}

TEST(Bathtub, QFunction) {
  EXPECT_NEAR(gm::q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(gm::q_function(1.0), 0.15866, 1e-4);
  EXPECT_NEAR(gm::q_function(7.0), 1.28e-12, 2e-13);
  EXPECT_NEAR(gm::q_function(-1.0), 1.0 - 0.15866, 1e-4);
}

TEST(Bathtub, ShapeIsBathtub) {
  const auto curve = gm::bathtub_curve(156.25, 2.0, 10.0);
  ASSERT_GE(curve.size(), 3u);
  // High BER at the edges, tiny in the middle.
  EXPECT_GT(curve.front().ber, 0.2);
  EXPECT_GT(curve.back().ber, 0.2);
  const auto mid = curve[curve.size() / 2];
  EXPECT_LT(mid.ber, 1e-12);
  // Symmetric.
  EXPECT_NEAR(curve.front().ber, curve.back().ber, 1e-9);
}

TEST(Bathtub, MoreJitterClosesEye) {
  const double open_small =
      gm::eye_opening_at_ber(156.25, 1.0, 0.0, 1e-12);
  const double open_big = gm::eye_opening_at_ber(156.25, 4.0, 0.0, 1e-12);
  const double open_dj = gm::eye_opening_at_ber(156.25, 1.0, 30.0, 1e-12);
  EXPECT_GT(open_small, open_big);
  EXPECT_GT(open_small, open_dj);
  EXPECT_GT(open_big, 0.0);
}

TEST(Bathtub, ClosedEyeReportsZero) {
  // RJ sigma = 20 ps on a 156 ps UI: hopeless at 1e-12.
  EXPECT_DOUBLE_EQ(gm::eye_opening_at_ber(156.25, 20.0, 0.0, 1e-12), 0.0);
}

TEST(Bathtub, OpeningMatchesAnalyticGaussian) {
  // Pure RJ: opening = UI - 2*Qinv(2*ber/rho)*sigma. Check via the known
  // Q(7.03) ~ 1e-12 point: target 0.25e-12 per side at rho 0.5 ->
  // z with Q(z) = 1e-12... verify consistency within a ps.
  const double ui = 200.0, sigma = 3.0, ber = 1e-12;
  const double opening = gm::eye_opening_at_ber(ui, sigma, 0.0, ber, 0.5);
  // Solve expected: Q(z) = 2*ber/rho = 4e-12 -> z ~ 6.85.
  double z = 6.0;
  for (int i = 0; i < 100; ++i) {
    const double f = gm::q_function(z) - 4e-12;
    z -= f / (-std::exp(-z * z / 2.0) / std::sqrt(2.0 * 3.14159265358979));
  }
  EXPECT_NEAR(opening, ui - 2.0 * z * sigma, 1.0);
}

TEST(Bathtub, FromJitterReport) {
  gm::JitterReport rep;
  rep.ui_ps = 156.25;
  rep.rj_rms_ps = 2.0;
  rep.dj_pp_ps = 8.0;
  const auto curve = gm::bathtub_curve(rep);
  EXPECT_EQ(curve.size(), 65u);
  // Zero-RJ reports are guarded (no division blowup).
  rep.rj_rms_ps = 0.0;
  EXPECT_NO_THROW(gm::bathtub_curve(rep));
}

TEST(Bathtub, ValidatesInput) {
  EXPECT_THROW(gm::bathtub_curve(0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(gm::bathtub_curve(100.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(gm::bathtub_curve(100.0, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(gm::eye_opening_at_ber(100.0, 1.0, 0.0, 0.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RJ -> 0: the analytic pure-DJ branch (regression for the old sigma floor)
// ---------------------------------------------------------------------------

TEST(Bathtub, PureDjOpeningIsExact) {
  // With RJ exactly 0 the bathtub is a step: BER = rho/2 on the Dirac
  // span, exactly 0 between. The opening is UI - DJ with no sigma floor.
  EXPECT_EQ(gm::eye_opening_at_ber(156.25, 0.0, 40.0, 1e-12), 156.25 - 40.0);
  EXPECT_EQ(gm::eye_opening_at_ber(156.25, 0.0, 0.0, 1e-15), 156.25);
  EXPECT_EQ(gm::eye_opening_at_ber(156.25, 0.0, 200.0, 1e-12), 0.0);
  // A target above the step height is met everywhere.
  EXPECT_EQ(gm::eye_opening_at_ber(156.25, 0.0, 40.0, 0.3), 156.25);
  EXPECT_THROW(gm::eye_opening_at_ber(156.25, 0.0, -1.0, 1e-12),
               std::invalid_argument);
}

TEST(Bathtub, OpeningIsContinuousAsRjVanishes) {
  // The Gaussian branch must converge to the analytic value as sigma -> 0
  // instead of jumping at a hidden floor.
  const double ui = 156.25, dj = 40.0;
  const double exact = gm::eye_opening_at_ber(ui, 0.0, dj, 1e-12);
  double prev_err = 1e9;
  for (double sigma : {1.0, 0.1, 0.01, 0.001}) {
    const double err =
        std::abs(gm::eye_opening_at_ber(ui, sigma, dj, 1e-12) - exact);
    EXPECT_LT(err, prev_err + 1e-12) << "sigma " << sigma;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.05);  // within 50 fs of analytic at sigma = 1 fs
}

// ---------------------------------------------------------------------------
// Importance-sampled tails vs the closed form
// ---------------------------------------------------------------------------

TEST(IsBathtub, DualDiracDistribution) {
  const gm::DjDistribution dj = gm::dual_dirac_dj(6.0);
  ASSERT_EQ(dj.offset_ps.size(), 2u);
  EXPECT_EQ(dj.offset_ps[0], -3.0);
  EXPECT_EQ(dj.offset_ps[1], 3.0);
  EXPECT_EQ(dj.weight[0], dj.weight[1]);
}

TEST(IsBathtub, EstimatesMatchClosedFormIntoDeepTails) {
  // The IS estimator is unbiased for the model BER, so every point of
  // the sampled curve must sit within a few standard errors of
  // ber_at_phase — including points far below 1e-12 where a plain MC
  // counter would see zero hits.
  const double ui = 156.25, sigma = 2.0;
  const gm::DjDistribution dj = gm::dual_dirac_dj(12.0);
  gm::TailSimOptions opt;
  opt.n_points = 17;
  Rng rng(90210);
  const auto curve = gm::importance_sampled_bathtub(ui, sigma, dj, opt, rng);
  ASSERT_EQ(curve.size(), opt.n_points);

  std::size_t deep_points = 0;
  for (const auto& p : curve) {
    const double model = gm::ber_at_phase(p.phase_ps, ui, sigma, dj);
    if (model < 1e-300) continue;  // beyond double-precision comparison
    // Floor the tolerance at 8%: at extreme tilts the weight
    // distribution is heavy-tailed and the stderr estimate itself is
    // noisy, so a pure 6-sigma band occasionally under-covers.
    const double tol = std::max(0.08, 6.0 * p.rel_stderr);
    EXPECT_NEAR(p.ber / model, 1.0, tol)
        << "phase " << p.phase_ps << " model " << model;
    if (model < 1e-12) ++deep_points;
  }
  // The sweep must actually have probed the extrapolation-only regime.
  EXPECT_GE(deep_points, 3u);
}

TEST(IsBathtub, DeterministicGivenRngState) {
  const double ui = 156.25, sigma = 2.0;
  const gm::DjDistribution dj = gm::dual_dirac_dj(12.0);
  gm::TailSimOptions opt;
  opt.n_points = 5;
  opt.n_samples = 2000;
  Rng a(7), b(7);
  const auto ca = gm::importance_sampled_bathtub(ui, sigma, dj, opt, a);
  const auto cb = gm::importance_sampled_bathtub(ui, sigma, dj, opt, b);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].ber, cb[i].ber) << i;
    EXPECT_EQ(ca[i].rel_stderr, cb[i].rel_stderr) << i;
  }
}

TEST(IsBathtub, EyeOpeningInterpolatesOnTheLogCurve) {
  // Synthetic exactly-exponential curve: BER = 1e-3 * 10^(-phase/10), so
  // the log-linear interpolation is exact and the opening closed-form.
  std::vector<gm::IsBerPoint> curve;
  for (int i = 0; i <= 6; ++i) {
    gm::IsBerPoint p;
    p.phase_ps = 10.0 * i;
    p.ber = 1e-3 * std::pow(10.0, -static_cast<double>(i));
    curve.push_back(p);
  }
  const double ui = 156.25;
  // Target 1e-7 falls mid-segment: crossing at phase 40, opening ui - 80.
  EXPECT_NEAR(gm::is_eye_opening_at_ber(curve, ui, 1e-7), ui - 80.0, 1e-9);
  // Target crossing exactly on a sample point.
  EXPECT_NEAR(gm::is_eye_opening_at_ber(curve, ui, 1e-6), ui - 60.0, 1e-9);
  // Whole curve below target: open everywhere.
  EXPECT_EQ(gm::is_eye_opening_at_ber(curve, ui, 1e-2), ui);
  // Whole curve above target: closed.
  EXPECT_EQ(gm::is_eye_opening_at_ber(curve, ui, 1e-12), 0.0);
  EXPECT_THROW(gm::is_eye_opening_at_ber({curve[0]}, ui, 1e-7),
               std::invalid_argument);
  EXPECT_THROW(gm::is_eye_opening_at_ber(curve, ui, 0.0),
               std::invalid_argument);
}

TEST(IsBathtub, ZeroTailPointFallsBackToLinear) {
  std::vector<gm::IsBerPoint> curve(2);
  curve[0].phase_ps = 0.0;
  curve[0].ber = 1e-6;
  curve[1].phase_ps = 10.0;
  curve[1].ber = 0.0;  // far point measured zero hits
  const double got = gm::is_eye_opening_at_ber(curve, 100.0, 1e-7);
  // Linear fallback: crossing at 0 + 10 * (1e-6 - 1e-7) / 1e-6 = 9.
  EXPECT_NEAR(got, 100.0 - 2.0 * 9.0, 1e-9);
}
