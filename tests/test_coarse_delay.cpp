// Tests for the 4-tap coarse delay section (paper Fig. 8/9).
#include <gtest/gtest.h>

#include "core/coarse_delay.h"
#include "measure/delay_meter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

namespace {
gs::SynthResult stim(double rate = 6.4, std::size_t bits = 48) {
  gs::SynthConfig sc;
  sc.rate_gbps = rate;
  return gs::synthesize_nrz(gs::prbs(7, bits), sc);
}
}  // namespace

TEST(CoarseDelay, SelectValidation) {
  gc::CoarseDelayBlock blk(gc::CoarseDelayConfig{}, Rng(1));
  EXPECT_THROW(blk.select(-1), std::invalid_argument);
  EXPECT_THROW(blk.select(4), std::invalid_argument);
  blk.select(2);
  EXPECT_EQ(blk.selected(), 2);
  EXPECT_THROW(blk.tap_delay_ps(7), std::invalid_argument);
}

TEST(CoarseDelay, NominalTapSpacing) {
  gc::CoarseDelayBlock blk(gc::CoarseDelayConfig{}, Rng(1));
  EXPECT_DOUBLE_EQ(blk.tap_delay_ps(0), 0.0);
  EXPECT_DOUBLE_EQ(blk.tap_delay_ps(1), 33.0);
  EXPECT_DOUBLE_EQ(blk.tap_delay_ps(2), 66.0);
  EXPECT_DOUBLE_EQ(blk.tap_delay_ps(3), 99.0);
}

TEST(CoarseDelay, PrototypeTapErrors) {
  const auto cfg = gc::CoarseDelayConfig::prototype();
  gc::CoarseDelayBlock blk(cfg, Rng(1));
  EXPECT_DOUBLE_EQ(blk.tap_delay_ps(2), 70.0);  // measured Fig. 9
  EXPECT_DOUBLE_EQ(blk.tap_delay_ps(3), 95.0);
}

TEST(CoarseDelay, MeasuredStepsMatchTrims) {
  // Measured tap-to-tap delay must equal the configured trace lengths to
  // within a fraction of a ps.
  const auto s = stim();
  gc::CoarseDelayBlock blk(gc::CoarseDelayConfig::prototype(), Rng(2));
  double d[4];
  for (int tap = 0; tap < 4; ++tap) {
    blk.select(tap);
    const auto out = blk.process(s.wf);
    d[tap] = gm::measure_delay(s.wf, out).mean_ps;
  }
  EXPECT_NEAR(d[1] - d[0], 33.0, 1.0);
  EXPECT_NEAR(d[2] - d[0], 70.0, 1.0);
  EXPECT_NEAR(d[3] - d[0], 95.0, 1.0);
}

TEST(CoarseDelay, OutputRegeneratedToFullSwing) {
  // Longest tap has the most trace loss; the mux output stage must still
  // deliver full logic levels.
  const auto s = stim();
  gc::CoarseDelayBlock blk(gc::CoarseDelayConfig{}, Rng(3));
  blk.select(3);
  const auto out = blk.process(s.wf);
  EXPECT_NEAR(out.peak_to_peak() / 2.0, 0.4, 0.05);
}

TEST(CoarseDelay, MidRunSwitchTakesEffect) {
  // Flipping the select lines mid-run must change the delay for the rest
  // of the run (all taps are always simulated).
  const auto s = stim(3.2, 64);
  gc::CoarseDelayBlock blk(gc::CoarseDelayConfig{}, Rng(4));
  blk.reset();
  gs::Waveform out(s.wf.t0_ps(), s.wf.dt_ps(), s.wf.size());
  const std::size_t half = s.wf.size() / 2;
  blk.select(0);
  for (std::size_t i = 0; i < s.wf.size(); ++i) {
    if (i == half) blk.select(3);
    out[i] = blk.step(s.wf[i], s.wf.dt_ps());
  }
  const double t_half = out.time_at(half);
  gm::DelayMeterOptions early;
  early.settle_ps = 400.0;
  const auto ref_early = s.wf.slice(s.wf.t0_ps(), t_half);
  const auto out_early = out.slice(out.t0_ps(), t_half);
  const auto ref_late = s.wf.slice(t_half + 300.0, s.wf.t_end_ps());
  const auto out_late = out.slice(t_half + 300.0, out.t_end_ps());
  const double d_early = gm::measure_delay(ref_early, out_early, early).mean_ps;
  gm::DelayMeterOptions late;
  late.settle_ps = 100.0;
  const double d_late = gm::measure_delay(ref_late, out_late, late).mean_ps;
  EXPECT_NEAR(d_late - d_early, 99.0, 3.0);
}

TEST(CoarseDelay, NegativeTapLengthRejected) {
  gc::CoarseDelayConfig cfg;
  cfg.tap_error_ps = {-1.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(gc::CoarseDelayBlock(cfg, Rng(1)), std::invalid_argument);
}

class CoarseTapSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoarseTapSweep, EachTapDelaysByItsLength) {
  const int tap = GetParam();
  const auto s = stim(3.2, 48);
  gc::CoarseDelayBlock base(gc::CoarseDelayConfig{}, Rng(5));
  gc::CoarseDelayBlock blk(gc::CoarseDelayConfig{}, Rng(5));
  base.select(0);
  blk.select(tap);
  const double d0 = gm::measure_delay(s.wf, base.process(s.wf)).mean_ps;
  const double dt = gm::measure_delay(s.wf, blk.process(s.wf)).mean_ps;
  EXPECT_NEAR(dt - d0, 33.0 * tap, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Taps, CoarseTapSweep, ::testing::Values(0, 1, 2, 3));
