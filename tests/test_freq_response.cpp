// Tests for the frequency-response instrument and the duty-cycle
// measurement, cross-validating the analog elements against their
// configured parameters in the frequency domain.
#include <gtest/gtest.h>

#include <cmath>

#include "analog/buffer.h"
#include "analog/primitives.h"
#include "analog/tline.h"
#include "measure/freq_response.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"
#include "util/units.h"

namespace ga = gdelay::analog;
namespace gm = gdelay::meas;
namespace gs = gdelay::sig;
using gdelay::util::Rng;

namespace {
std::vector<double> logspace(double lo, double hi, int n) {
  std::vector<double> f;
  for (int i = 0; i < n; ++i)
    f.push_back(lo * std::pow(hi / lo, static_cast<double>(i) / (n - 1)));
  return f;
}
}  // namespace

TEST(FreqResponse, Validation) {
  ga::GainStage g(1.0);
  EXPECT_THROW(gm::measure_frequency_response(g, {}), std::invalid_argument);
  EXPECT_THROW(gm::measure_frequency_response(g, {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(gm::measure_frequency_response(g, {-1.0, 1.0}),
               std::invalid_argument);
}

TEST(FreqResponse, GainStageIsFlat) {
  ga::GainStage g(2.5);
  const auto resp =
      gm::measure_frequency_response(g, {0.5, 1.0, 2.0, 4.0, 8.0});
  for (const auto& p : resp) {
    EXPECT_NEAR(p.gain, 2.5, 0.01) << p.f_ghz;
    EXPECT_NEAR(p.phase_rad, 0.0, 0.01) << p.f_ghz;
  }
}

TEST(FreqResponse, SinglePoleMatchesConfig) {
  ga::SinglePoleFilter f(5.0);
  const auto resp = gm::measure_frequency_response(f, logspace(0.5, 20.0, 15));
  // DC-ish gain ~1, measured f3dB within 5 % of configured.
  EXPECT_NEAR(resp.front().gain, 1.0, 0.02);
  EXPECT_NEAR(gm::f3db_from_response(resp), 5.0, 0.25);
  // Phase at the pole is -45 degrees.
  for (const auto& p : resp)
    if (std::abs(p.f_ghz - 5.0) < 0.4)
      EXPECT_NEAR(p.phase_rad, -gdelay::util::kPi / 4.0, 0.1);
}

TEST(FreqResponse, FractionalDelayGroupDelay) {
  ga::FractionalDelay d(40.0);
  const auto resp = gm::measure_frequency_response(
      d, {0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0});
  for (std::size_t i = 1; i < resp.size(); ++i)
    EXPECT_NEAR(resp[i].group_delay_ps, 40.0, 1.0) << resp[i].f_ghz;
  for (const auto& p : resp) EXPECT_NEAR(p.gain, 1.0, 0.02);
}

TEST(FreqResponse, TransmissionLineDelayAndLoss) {
  ga::TransmissionLineConfig cfg;
  cfg.delay_ps = 33.0;
  cfg.loss_db = 2.0;
  ga::TransmissionLine t(cfg);
  const auto resp = gm::measure_frequency_response(
      t, {1.0, 1.5, 2.0, 2.5, 3.0});
  for (std::size_t i = 1; i < resp.size(); ++i)
    EXPECT_NEAR(resp[i].group_delay_ps, 33.0, 1.0);
  EXPECT_NEAR(resp.front().gain_db, -2.0, 0.1);
}

TEST(FreqResponse, VgaStageBandwidthIsFinite) {
  // Small-signal response of the full VGA stage: flat-ish at low GHz,
  // rolled off well before 20 GHz (the cascade of configured poles).
  ga::VgaBufferConfig cfg;
  cfg.noise_sigma_v = 0.0;
  ga::VariableGainBuffer vga(cfg, Rng(1));
  vga.set_vctrl(1.5);
  const auto resp =
      gm::measure_frequency_response(vga, logspace(0.3, 16.0, 12));
  const double f3 = gm::f3db_from_response(resp);
  EXPECT_GT(f3, 1.0);
  EXPECT_LT(f3, 12.0);
  // Gain falls monotonically beyond the knee.
  EXPECT_LT(resp.back().gain, resp.front().gain);
}

TEST(Duty, CleanClockIsFifty) {
  gs::SynthConfig sc;
  const auto clk = gs::synthesize_clock(3.2, 100, sc);
  const auto rep = gm::measure_duty(clk.wf, clk.unit_interval_ps, 0.0, 500.0);
  EXPECT_NEAR(rep.duty, 0.5, 0.01);
  EXPECT_NEAR(rep.dcd_ps, 0.0, 2.0);
}

TEST(Duty, ThresholdOffsetSkewsDuty) {
  gs::SynthConfig sc;
  const auto clk = gs::synthesize_clock(3.2, 100, sc);
  // Slicing a finite-rise clock above center spends less time "high".
  const auto rep =
      gm::measure_duty(clk.wf, clk.unit_interval_ps, 0.15, 500.0);
  EXPECT_LT(rep.duty, 0.48);
  EXPECT_LT(rep.dcd_ps, -2.0);
}

TEST(Duty, Validation) {
  gs::SynthConfig sc;
  const auto clk = gs::synthesize_clock(3.2, 4, sc);
  EXPECT_THROW(gm::measure_duty(clk.wf, 0.0), std::invalid_argument);
  // Settle beyond the record: empty but well-defined.
  const auto rep = gm::measure_duty(clk.wf, 156.25, 0.0, 1e9);
  EXPECT_DOUBLE_EQ(rep.duty, 0.5);
}
