// Tests for differential P/N imbalance modeling.
#include <gtest/gtest.h>

#include <cmath>

#include "analog/buffer.h"
#include "analog/differential.h"
#include "measure/delay_meter.h"
#include "measure/jitter.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace ga = gdelay::analog;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

namespace {
gs::SynthResult stim(double rate = 3.2, std::size_t bits = 128) {
  gs::SynthConfig sc;
  sc.rate_gbps = rate;
  return gs::synthesize_nrz(gs::prbs(7, bits), sc);
}
}  // namespace

TEST(Differential, BalancedPairIsTransparent) {
  ga::DifferentialImbalance el(ga::DifferentialImbalanceConfig{});
  const auto s = stim();
  const auto out = el.process(s.wf);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], s.wf[i], 1e-9);
}

TEST(Differential, RejectsAbsurdMismatch) {
  ga::DifferentialImbalanceConfig c;
  c.gain_mismatch_frac = 2.5;
  EXPECT_THROW(ga::DifferentialImbalance{c}, std::invalid_argument);
}

TEST(Differential, LegSkewShiftsCrossingByHalf) {
  // Delaying the P leg by S shifts the differential crossing by ~S/2.
  ga::DifferentialImbalanceConfig c;
  c.leg_skew_ps = 20.0;
  ga::DifferentialImbalance el(c);
  const auto s = stim();
  const auto out = el.process(s.wf);
  const auto ei = gs::extract_edges(s.wf);
  const auto eo = gs::extract_edges(out);
  ASSERT_EQ(ei.size(), eo.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < ei.size(); ++i)
    acc += eo[i].t_ps - ei[i].t_ps;
  EXPECT_NEAR(acc / static_cast<double>(ei.size()), 10.0, 0.5);
}

TEST(Differential, LegSkewSoftensEdges) {
  // With leg skew the edge becomes a two-step ramp: the 20-80 time grows
  // by roughly the skew.
  const auto s = stim(1.0, 8);  // slow rate, isolated edges
  ga::DifferentialImbalanceConfig c;
  c.leg_skew_ps = 60.0;
  ga::DifferentialImbalance el(c);
  const auto out = el.process(s.wf);
  auto rise2080 = [](const gs::Waveform& w) {
    double t20 = 0.0, t80 = 0.0;
    for (std::size_t i = 1; i < w.size(); ++i) {
      if (w[i - 1] < -0.24 && w[i] >= -0.24) t20 = w.time_at(i);
      if (w[i - 1] < 0.24 && w[i] >= 0.24) {
        t80 = w.time_at(i);
        break;
      }
    }
    return t80 - t20;
  };
  EXPECT_GT(rise2080(out), rise2080(s.wf) + 20.0);
}

TEST(Differential, GainMismatchPlusOffsetMakesDcd) {
  // An offset moves the zero crossing up the edge: rising and falling
  // edges shift in opposite directions -> duty-cycle distortion, visible
  // as a split between rising-only and falling-only grid phases.
  ga::DifferentialImbalanceConfig c;
  c.offset_v = 0.05;
  ga::DifferentialImbalance el(c);
  const auto s = stim(3.2, 200);
  const auto out = el.process(s.wf);
  const auto edges = gs::extract_edges(out);
  const auto rise = gm::analyze_jitter(gs::rising_times(edges),
                                       2.0 * s.unit_interval_ps);
  const auto fall = gm::analyze_jitter(gs::falling_times(edges),
                                       2.0 * s.unit_interval_ps);
  double dcd = rise.grid_phase_ps - fall.grid_phase_ps;
  while (dcd > s.unit_interval_ps) dcd -= 2.0 * s.unit_interval_ps;
  while (dcd < -s.unit_interval_ps) dcd += 2.0 * s.unit_interval_ps;
  // Offset / edge slope: 0.05 V at ~ (0.8 V / 30 ps) -> ~1.9 ps per edge,
  // opposite signs -> ~3.7 ps of DCD.
  EXPECT_GT(std::abs(dcd) + std::abs(std::abs(dcd) - s.unit_interval_ps),
            2.0);  // nonzero split (allowing the UI-offset representation)
  // The balanced pair shows none.
  ga::DifferentialImbalance balanced(ga::DifferentialImbalanceConfig{});
  const auto out_b = balanced.process(s.wf);
  const auto eb = gs::extract_edges(out_b);
  const auto rb = gm::analyze_jitter(gs::rising_times(eb),
                                     2.0 * s.unit_interval_ps);
  const auto fb = gm::analyze_jitter(gs::falling_times(eb),
                                     2.0 * s.unit_interval_ps);
  double dcd_b = std::fmod(rb.grid_phase_ps - fb.grid_phase_ps,
                           2.0 * s.unit_interval_ps);
  // Rising and falling sit exactly one UI apart on clean NRZ.
  EXPECT_NEAR(std::abs(gm::wrap_delay(dcd_b - s.unit_interval_ps,
                                      2.0 * s.unit_interval_ps)),
              0.0, 0.5);
}

TEST(Differential, OffsetThroughLimiterBecomesDutyDistortion) {
  // A common-mode-induced offset moves rising and falling crossings in
  // opposite directions; the limiting buffer preserves that split, so the
  // combined (all-edge) jitter analysis reports it as deterministic TJ.
  // Pure leg skew, by contrast, shifts every edge equally -> no TJ.
  const auto s = stim(6.4, 200);
  auto run = [&](double skew, double offset) {
    ga::DifferentialImbalanceConfig c;
    c.leg_skew_ps = skew;
    c.offset_v = offset;
    ga::DifferentialImbalance el(c);
    ga::LimitingBufferConfig lb;
    lb.noise_sigma_v = 0.0;
    ga::LimitingBuffer lim(lb, Rng(1));
    auto mid = el.process(s.wf);
    auto out = lim.process(mid);
    return gm::measure_jitter(out, s.unit_interval_ps).tj_pp_ps;
  };
  const double clean = run(0.0, 0.0);
  EXPECT_NEAR(run(40.0, 0.0), clean, 1.0);   // skew alone: uniform shift
  EXPECT_GT(run(0.0, 0.06), clean + 2.0);    // offset: DCD shows as TJ
}
