// Campaign orchestration: sharding, per-unit substreams, checkpoints,
// merges. The headline contract under test is determinism — the merged
// result is bit-identical for ANY shard count, ANY execution mode
// (serial / thread / fork) and ANY resume point — plus the guard rails
// around it: checkpoints from a different spec or topology are rejected,
// corrupt shard reports throw, and the RecordAccumulator restores unit
// order across merges so floating-point reductions stay associative by
// construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "campaign/config.h"
#include "measure/sinks.h"
#include "util/rng.h"
#include "util/serde.h"

namespace gcp = gdelay::campaign;
namespace gm = gdelay::meas;
using gdelay::util::ByteReader;
using gdelay::util::ByteWriter;
using gdelay::util::fnv1a64;
using gdelay::util::Rng;

namespace {

constexpr std::uint64_t kUnits = 40;

// Small mixed workload: one order-restoring record accumulator plus one
// counting sink, the two accumulator families the orchestrator merges.
gcp::AccumulatorSet make_accs() {
  gcp::AccumulatorSet accs;
  accs.push_back(std::make_unique<gcp::RecordAccumulator>(2));
  accs.push_back(std::make_unique<gcp::SinkAccumulator>(
      std::make_unique<gm::LevelHistogramSink>(-4.0, 4.0, 32, 0.0)));
  return accs;
}

void unit_work(std::uint64_t unit, Rng& rng, gcp::AccumulatorSet& accs) {
  auto& rec = dynamic_cast<gcp::RecordAccumulator&>(*accs[0]);
  auto& sink = dynamic_cast<gcp::SinkAccumulator&>(*accs[1]).sink();
  double samples[16];
  double sum = 0.0, peak = 0.0;
  for (double& s : samples) {
    s = rng.gaussian();
    sum += s;
    if (s > peak) peak = s;
  }
  sink.begin(0.0, 1.0, 16);
  sink.consume(samples, 16);
  sink.finish();
  const double row[2] = {sum / 16.0, peak};
  rec.add(unit, row);
}

std::uint64_t hash_accs(const gcp::AccumulatorSet& accs) {
  ByteWriter w;
  for (const auto& a : accs) a->save(w);
  return fnv1a64(w.bytes().data(), w.size());
}

gcp::CampaignSpec base_spec(std::size_t shards, gcp::Mode mode) {
  gcp::CampaignSpec spec;
  spec.name = "unit_test";
  spec.seed = 77;
  spec.n_units = kUnits;
  spec.n_shards = shards;  // always explicit: tests must ignore the env
  spec.mode = mode;
  return spec;
}

std::uint64_t run_hash(std::size_t shards, gcp::Mode mode) {
  const gcp::CampaignResult r =
      gcp::run_campaign(base_spec(shards, mode), make_accs, unit_work);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.units_done, kUnits);
  return hash_accs(r.accumulators);
}

}  // namespace

// ---------------------------------------------------------------------------
// Shard planning and fingerprints
// ---------------------------------------------------------------------------

TEST(CampaignPlan, ShardsAreContiguousBalancedAndCovering) {
  for (std::uint64_t n : {0ull, 1ull, 3ull, 10ull, 1000ull}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{3},
                               std::size_t{4}, std::size_t{8}}) {
      const auto ranges = gcp::plan_shards(n, shards);
      ASSERT_EQ(ranges.size(), shards);
      EXPECT_EQ(ranges.front().begin, 0u);
      EXPECT_EQ(ranges.back().end, n);
      std::uint64_t lo = n, hi = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        ASSERT_LE(ranges[s].begin, ranges[s].end);
        if (s) EXPECT_EQ(ranges[s].begin, ranges[s - 1].end);
        const std::uint64_t len = ranges[s].end - ranges[s].begin;
        lo = std::min(lo, len);
        hi = std::max(hi, len);
      }
      EXPECT_LE(hi - lo, 1u) << n << " units over " << shards;
    }
  }
}

TEST(CampaignPlan, FingerprintSeparatesSpecAndTopology) {
  const gcp::CampaignSpec a = base_spec(4, gcp::Mode::kSerial);
  const std::uint64_t fp = gcp::spec_fingerprint(a, 4);
  EXPECT_EQ(fp, gcp::spec_fingerprint(a, 4));  // stable

  gcp::CampaignSpec b = a;
  b.name = "other_campaign";
  EXPECT_NE(gcp::spec_fingerprint(b, 4), fp);
  b = a;
  b.seed = 78;
  EXPECT_NE(gcp::spec_fingerprint(b, 4), fp);
  b = a;
  b.n_units = kUnits + 1;
  EXPECT_NE(gcp::spec_fingerprint(b, 4), fp);
  EXPECT_NE(gcp::spec_fingerprint(a, 8), fp);  // topology
}

TEST(CampaignConfig, ModeNamesRoundTrip) {
  for (gcp::Mode m :
       {gcp::Mode::kSerial, gcp::Mode::kThread, gcp::Mode::kFork})
    EXPECT_EQ(gcp::parse_mode(gcp::mode_name(m)), m);
  EXPECT_THROW(gcp::parse_mode("sideways"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RecordAccumulator: the association-invariance workhorse
// ---------------------------------------------------------------------------

TEST(RecordAccumulator, MergeRestoresGlobalUnitOrder) {
  gcp::RecordAccumulator a(1), b(1);
  for (std::uint64_t u : {0ull, 2ull, 4ull}) {
    const double v = 10.0 + static_cast<double>(u);
    a.add(u, &v);
  }
  for (std::uint64_t u : {1ull, 3ull}) {
    const double v = 10.0 + static_cast<double>(u);
    b.add(u, &v);
  }
  a.merge_from(b);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.unit_at(i), i);  // merge-sorted back to 0,1,2,3,4
    EXPECT_EQ(a.values_at(i)[0], 10.0 + static_cast<double>(i));
  }
}

TEST(RecordAccumulator, SaveLoadSaveIsIdentity) {
  gcp::RecordAccumulator a(3);
  Rng rng(9);
  for (std::uint64_t u = 0; u < 17; ++u) {
    const double row[3] = {rng.gaussian(), rng.uniform(), -1.0};
    a.add(u, row);
  }
  ByteWriter w1;
  a.save(w1);

  gcp::RecordAccumulator b(3);
  ByteReader r(w1.bytes());
  b.load(r);
  EXPECT_EQ(b.size(), a.size());
  ByteWriter w2;
  b.save(w2);
  EXPECT_EQ(w2.bytes(), w1.bytes());
}

// ---------------------------------------------------------------------------
// The determinism contract
// ---------------------------------------------------------------------------

TEST(CampaignDeterminism, HashInvariantAcrossShardCountsAndModes) {
  const std::uint64_t ref = run_hash(1, gcp::Mode::kSerial);
  for (std::size_t shards : {std::size_t{2}, std::size_t{4}, std::size_t{8}})
    EXPECT_EQ(run_hash(shards, gcp::Mode::kSerial), ref) << shards;
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}})
    EXPECT_EQ(run_hash(shards, gcp::Mode::kThread), ref) << shards;
  if (gcp::fork_available())
    for (std::size_t shards : {std::size_t{1}, std::size_t{4}})
      EXPECT_EQ(run_hash(shards, gcp::Mode::kFork), ref) << shards;
}

TEST(CampaignDeterminism, ResumeFromCheckpointMatchesUninterrupted) {
  const std::uint64_t ref = run_hash(1, gcp::Mode::kSerial);

  gcp::CampaignSpec spec = base_spec(2, gcp::Mode::kSerial);
  spec.checkpoint_dir = ::testing::TempDir() + "gdelay_campaign_resume";
  spec.checkpoint_every = 5;
  spec.stop_after_units = kUnits / 2 / 2;  // half of each shard's range

  const gcp::CampaignResult part =
      gcp::run_campaign(spec, make_accs, unit_work);
  EXPECT_FALSE(part.complete);
  EXPECT_EQ(part.units_done, kUnits / 2);

  spec.stop_after_units = 0;
  const gcp::CampaignResult full =
      gcp::run_campaign(spec, make_accs, unit_work);
  EXPECT_TRUE(full.complete);
  EXPECT_TRUE(full.resumed);
  EXPECT_EQ(full.units_done, kUnits);
  EXPECT_EQ(hash_accs(full.accumulators), ref);

  // After cleanup a rerun starts fresh — no stale state is picked up.
  gcp::remove_checkpoints(spec);
  const gcp::CampaignResult fresh =
      gcp::run_campaign(spec, make_accs, unit_work);
  EXPECT_FALSE(fresh.resumed);
  EXPECT_EQ(hash_accs(fresh.accumulators), ref);
  gcp::remove_checkpoints(spec);
}

TEST(CampaignDeterminism, ForeignCheckpointIsRejected) {
  gcp::CampaignSpec spec = base_spec(1, gcp::Mode::kSerial);
  spec.checkpoint_dir = ::testing::TempDir() + "gdelay_campaign_foreign";
  spec.stop_after_units = 3;
  gcp::run_campaign(spec, make_accs, unit_work);  // leaves a checkpoint

  gcp::CampaignSpec other = spec;
  other.stop_after_units = 0;
  other.seed = spec.seed + 1;  // same name+dir, different campaign
  EXPECT_THROW(gcp::run_campaign(other, make_accs, unit_work),
               std::runtime_error);

  gcp::remove_checkpoints(spec);
}

TEST(CampaignDeterminism, TopologyChangeCannotAbsorbOldCheckpoints) {
  gcp::CampaignSpec spec = base_spec(2, gcp::Mode::kSerial);
  spec.checkpoint_dir = ::testing::TempDir() + "gdelay_campaign_topo";
  spec.stop_after_units = 3;
  gcp::run_campaign(spec, make_accs, unit_work);

  gcp::CampaignSpec wider = spec;
  wider.stop_after_units = 0;
  wider.n_shards = 4;  // shard 0/1 checkpoints carry the 2-shard fingerprint
  EXPECT_THROW(gcp::run_campaign(wider, make_accs, unit_work),
               std::runtime_error);

  gcp::remove_checkpoints(spec);
}

// ---------------------------------------------------------------------------
// Worker report files (the exec-mode transport)
// ---------------------------------------------------------------------------

TEST(CampaignWorker, ShardReportFilesMergeToTheCampaignResult) {
  const std::uint64_t ref = run_hash(1, gcp::Mode::kSerial);
  const gcp::CampaignSpec spec = base_spec(3, gcp::Mode::kSerial);
  const std::string dir = ::testing::TempDir() + "gdelay_campaign_worker";

  std::vector<std::string> frames;
  for (std::size_t s = 0; s < 3; ++s) {
    const std::string path = dir + "/shard" + std::to_string(s) + ".result";
    gcp::run_shard_to_file(spec, s, make_accs, unit_work, path);
    auto bytes = gcp::read_file(path);
    ASSERT_TRUE(bytes.has_value()) << path;
    frames.push_back(*bytes);
    gcp::remove_file(path);
  }

  const gcp::CampaignResult r =
      gcp::merge_shard_reports(spec, make_accs, frames);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.units_done, kUnits);
  EXPECT_EQ(hash_accs(r.accumulators), ref);
}

TEST(CampaignWorker, CorruptOrForeignReportsAreRejected) {
  const gcp::CampaignSpec spec = base_spec(2, gcp::Mode::kSerial);
  const std::string dir = ::testing::TempDir() + "gdelay_campaign_reject";

  std::vector<std::string> frames;
  for (std::size_t s = 0; s < 2; ++s) {
    const std::string path = dir + "/shard" + std::to_string(s) + ".result";
    gcp::run_shard_to_file(spec, s, make_accs, unit_work, path);
    frames.push_back(*gcp::read_file(path));
    gcp::remove_file(path);
  }

  // Wrong report count.
  EXPECT_THROW(
      gcp::merge_shard_reports(spec, make_accs, {frames[0]}),
      std::invalid_argument);

  // Bit flip inside one frame: the checksum rejects it.
  auto flipped = frames;
  flipped[1][flipped[1].size() / 2] ^= 0x20;
  EXPECT_THROW(gcp::merge_shard_reports(spec, make_accs, flipped),
               std::runtime_error);

  // Reports from a different campaign cannot merge into this spec.
  gcp::CampaignSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_THROW(gcp::merge_shard_reports(other, make_accs, frames),
               std::runtime_error);

  // Shard order matters: swapping reports trips the shard-index check.
  auto swapped = frames;
  std::swap(swapped[0], swapped[1]);
  EXPECT_THROW(gcp::merge_shard_reports(spec, make_accs, swapped),
               std::runtime_error);
}

TEST(CampaignWorker, ShardIndexOutOfRangeIsRejected) {
  const gcp::CampaignSpec spec = base_spec(2, gcp::Mode::kSerial);
  EXPECT_THROW(gcp::run_shard_to_file(spec, 2, make_accs, unit_work,
                                      ::testing::TempDir() + "nope.result"),
               std::invalid_argument);
}
