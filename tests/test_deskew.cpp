// Tests for the deskew planning engine (pure computation; the end-to-end
// controller loop is covered in test_ate.cpp).
#include <gtest/gtest.h>

#include "core/deskew.h"
#include "util/curve.h"

namespace gc = gdelay::core;

namespace {

// Synthetic calibration: linear 0..55 ps fine curve over 1.5 V, ideal taps.
gc::ChannelCalibration make_cal(double fine_range = 55.0) {
  gc::ChannelCalibration cal;
  std::vector<double> xs, ys;
  for (int i = 0; i <= 10; ++i) {
    xs.push_back(1.5 * i / 10.0);
    ys.push_back(fine_range * i / 10.0);
  }
  cal.fine_curve = gdelay::util::Curve(xs, ys);
  cal.tap_offset_ps = {0.0, 33.0, 66.0, 99.0};
  cal.base_latency_ps = 300.0;
  return cal;
}

}  // namespace

TEST(DeskewEngine, ValidatesInput) {
  EXPECT_THROW(gc::DeskewEngine::plan({}, {}), std::invalid_argument);
  EXPECT_THROW(gc::DeskewEngine::plan({1.0}, {}), std::invalid_argument);
}

TEST(DeskewEngine, SingleChannelTrivial) {
  const auto plan = gc::DeskewEngine::plan({100.0}, {make_cal()});
  EXPECT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.residual_span_ps, 0.0, 0.5);
}

TEST(DeskewEngine, AlignsSkewedChannels) {
  // Skews spanning 120 ps (within the ~154 ps range).
  const std::vector<double> arrivals{300.0, 360.0, 420.0, 330.0};
  const std::vector<gc::ChannelCalibration> cals(4, make_cal());
  const auto plan = gc::DeskewEngine::plan(arrivals, cals);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.settings.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const double predicted_arrival =
        arrivals[i] + plan.settings[i].predicted_delay_ps;
    EXPECT_NEAR(predicted_arrival, plan.target_arrival_ps, 0.2) << i;
  }
  EXPECT_LT(plan.residual_span_ps, 0.2);
}

TEST(DeskewEngine, TargetInsideFeasibleWindow) {
  const std::vector<double> arrivals{0.0, 100.0};
  const std::vector<gc::ChannelCalibration> cals(2, make_cal());
  const auto plan = gc::DeskewEngine::plan(arrivals, cals);
  ASSERT_TRUE(plan.feasible);
  // Window is [100, 154]: the midpoint leaves headroom both ways.
  EXPECT_GT(plan.target_arrival_ps, 100.0);
  EXPECT_LT(plan.target_arrival_ps, 154.0);
}

TEST(DeskewEngine, InfeasibleSpreadFlagged) {
  // 300 ps of skew exceeds the ~154 ps range: no common arrival exists.
  const std::vector<double> arrivals{0.0, 300.0};
  const std::vector<gc::ChannelCalibration> cals(2, make_cal());
  const auto plan = gc::DeskewEngine::plan(arrivals, cals);
  EXPECT_FALSE(plan.feasible);
  // The engine still produces best-effort settings.
  EXPECT_EQ(plan.settings.size(), 2u);
  EXPECT_GT(plan.residual_span_ps, 100.0);
}

TEST(DeskewEngine, UsesCoarseTapsForLargeCorrections) {
  const std::vector<double> arrivals{0.0, 120.0};
  const std::vector<gc::ChannelCalibration> cals(2, make_cal());
  const auto plan = gc::DeskewEngine::plan(arrivals, cals);
  ASSERT_TRUE(plan.feasible);
  // Channel 0 needs > 100 ps of delay: must use a high tap.
  EXPECT_GE(plan.settings[0].tap, 2);
  EXPECT_EQ(plan.settings[1].tap, 0);
}

TEST(DeskewEngine, HeterogeneousCalibrations) {
  // One channel has a smaller fine range; plan must respect it.
  std::vector<gc::ChannelCalibration> cals{make_cal(55.0), make_cal(40.0)};
  const std::vector<double> arrivals{10.0, 0.0};
  const auto plan = gc::DeskewEngine::plan(arrivals, cals);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LT(plan.residual_span_ps, 0.2);
}

TEST(DeskewEngine, DacQuantizationVisibleInSettings) {
  const std::vector<double> arrivals{0.0, 17.3};
  const std::vector<gc::ChannelCalibration> cals(2, make_cal());
  const auto plan = gc::DeskewEngine::plan(arrivals, cals);
  for (const auto& s : plan.settings) {
    EXPECT_LE(s.dac_code, 4095u);
    EXPECT_NEAR(s.vctrl_v, cals[0].dac.voltage(s.dac_code), 1e-12);
  }
}
