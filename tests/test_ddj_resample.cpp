// Tests for DDJ analysis and waveform resampling.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fine_delay.h"
#include "measure/jitter.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gm = gdelay::meas;
namespace gs = gdelay::sig;
namespace gc = gdelay::core;
using gdelay::util::Rng;

TEST(Ddj, CleanGridHasNoDdj) {
  // Edges on a perfect grid with mixed run lengths: all bucket means 0.
  std::vector<double> ts;
  double t = 0.0;
  int gaps[] = {1, 3, 1, 2, 5, 1, 1, 2};
  for (int round = 0; round < 30; ++round)
    for (int g : gaps) {
      t += g * 156.25;
      ts.push_back(t);
    }
  const auto rep = gm::analyze_ddj(ts, 156.25);
  EXPECT_GE(rep.buckets.size(), 4u);
  EXPECT_NEAR(rep.ddj_pp_ps, 0.0, 1e-9);
}

TEST(Ddj, DetectsRunLengthDependentShift) {
  // Synthetic ISI: edges after a >= 3 UI run arrive 4 ps late.
  Rng rng(3);
  std::vector<double> ts;
  double t = 0.0;
  int gaps[] = {1, 3, 1, 2, 5, 1, 1, 2};
  for (int round = 0; round < 40; ++round)
    for (int g : gaps) {
      t += g * 156.25;
      ts.push_back(t + (g >= 3 ? 4.0 : 0.0) + rng.gaussian(0.0, 0.3));
    }
  const auto rep = gm::analyze_ddj(ts, 156.25);
  EXPECT_NEAR(rep.ddj_pp_ps, 4.0, 0.8);
  // Identify which buckets are shifted.
  for (const auto& b : rep.buckets) {
    if (b.n < 5) continue;
    if (b.run_ui >= 3)
      EXPECT_GT(b.mean_ps, 2.0) << "run " << b.run_ui;
    else
      EXPECT_LT(b.mean_ps, 2.0) << "run " << b.run_ui;
  }
}

TEST(Ddj, FineDelayLineShowsDroopDdj) {
  // The VGA stages' bias droop is pattern-dependent by construction; the
  // DDJ analyzer must see a nonzero but bounded run-length dependence.
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = gs::synthesize_nrz(gs::run_length_stress(384, 6), sc);
  gc::FineDelayConfig fc;
  fc.stage.noise_sigma_v = 0.0;  // isolate the deterministic part
  fc.output_stage.noise_sigma_v = 0.0;
  gc::FineDelayLine line(fc, Rng(4));
  line.set_vctrl(0.75);
  const auto out = line.process(stim.wf);
  gm::JitterMeasureOptions jo;
  jo.settle_ps = 12000.0;
  const auto edges = gm::measure_jitter(out, stim.unit_interval_ps, jo);
  const auto rep =
      gm::analyze_ddj(std::vector<double>(), stim.unit_interval_ps);
  (void)rep;  // empty input must not crash
  // Direct DDJ on the extracted crossings:
  gs::EdgeExtractOptions eo;
  eo.hysteresis_v = 0.1;
  eo.t_min_ps = 12000.0;
  const auto ex = gs::extract_edges(out, eo);
  const auto ddj = gm::analyze_ddj(gs::edge_times(ex), stim.unit_interval_ps);
  EXPECT_GT(ddj.ddj_pp_ps, 0.3);   // the droop leaves a visible signature
  EXPECT_LT(ddj.ddj_pp_ps, 12.0);  // ... but bounded
  (void)edges;
}

TEST(Resample, PreservesShape) {
  const auto w = gs::Waveform::from_function(
      0.0, 0.25, 2001, [](double t) { return std::sin(t / 30.0); });
  const auto r = w.resampled(1.0);
  EXPECT_NEAR(r.dt_ps(), 1.0, 1e-12);
  for (std::size_t i = 0; i < r.size(); ++i)
    EXPECT_NEAR(r[i], std::sin(r.time_at(i) / 30.0), 1e-3);
}

TEST(Resample, UpsampleInterpolates) {
  gs::Waveform w(0.0, 1.0, {0.0, 1.0, 0.0});
  const auto r = w.resampled(0.5);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r[1], 0.5);
  EXPECT_DOUBLE_EQ(r[3], 0.5);
}

TEST(Resample, Validation) {
  gs::Waveform w(0.0, 1.0, {0.0, 1.0});
  EXPECT_THROW(w.resampled(0.0), std::invalid_argument);
  EXPECT_THROW(w.resampled(-1.0), std::invalid_argument);
  // Empty stays empty.
  gs::Waveform e;
  EXPECT_TRUE(e.resampled(0.5).empty());
}

TEST(Resample, EdgeTimesPreserved) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto r = gs::synthesize_nrz(gs::prbs(7, 32), sc);
  const auto coarse = r.wf.resampled(1.0);
  const auto e_fine = gs::extract_edges(r.wf);
  const auto e_coarse = gs::extract_edges(coarse);
  ASSERT_EQ(e_fine.size(), e_coarse.size());
  for (std::size_t i = 0; i < e_fine.size(); ++i)
    EXPECT_NEAR(e_fine[i].t_ps, e_coarse[i].t_ps, 0.3);
}
