// Tests for process variation, the multi-channel board, thermal drift,
// and calibration persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/board.h"
#include "core/cal_io.h"
#include "core/drift.h"
#include "core/variation.h"
#include "measure/delay_meter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

namespace {
gs::SynthResult stim(double rate = 3.2, std::size_t bits = 64) {
  gs::SynthConfig sc;
  sc.rate_gbps = rate;
  return gs::synthesize_nrz(gs::prbs(7, bits), sc);
}
}  // namespace

TEST(ProcessVariation, Deterministic) {
  gc::ProcessVariation v;
  Rng a(5), b(5);
  const auto ca = v.apply(gc::ChannelConfig::prototype(), a);
  const auto cb = v.apply(gc::ChannelConfig::prototype(), b);
  EXPECT_DOUBLE_EQ(ca.fine.stage.slew_v_per_ps, cb.fine.stage.slew_v_per_ps);
  EXPECT_DOUBLE_EQ(ca.coarse.tap_error_ps[2], cb.coarse.tap_error_ps[2]);
}

TEST(ProcessVariation, InstancesDiffer) {
  gc::ProcessVariation v;
  Rng rng(5);
  const auto a = v.apply(gc::ChannelConfig::prototype(), rng);
  const auto b = v.apply(gc::ChannelConfig::prototype(), rng);
  EXPECT_NE(a.fine.stage.slew_v_per_ps, b.fine.stage.slew_v_per_ps);
}

TEST(ProcessVariation, ScatterIsBounded) {
  gc::ProcessVariation v;
  Rng rng(7);
  const auto nominal = gc::ChannelConfig::prototype();
  for (int i = 0; i < 50; ++i) {
    const auto c = v.apply(nominal, rng);
    // +/- 3 sigma clamp on a 4 % parameter.
    EXPECT_NEAR(c.fine.stage.slew_v_per_ps, nominal.fine.stage.slew_v_per_ps,
                0.13 * nominal.fine.stage.slew_v_per_ps);
    EXPECT_GT(c.fine.stage.amp_max_v, c.fine.stage.amp_min_v);
    // Tap 0 stays the reference plane.
    EXPECT_DOUBLE_EQ(c.coarse.tap_error_ps[0], 0.0);
    for (std::size_t t = 0; t < 4; ++t)
      EXPECT_GE(c.coarse.tap_delay_ps[t] + c.coarse.tap_error_ps[t], 0.0);
  }
}

TEST(ProcessVariation, SlowCornerReducesRange) {
  const auto nominal = gc::ChannelConfig::prototype();
  const auto slow = gc::ProcessVariation::slow_corner(nominal, 3.0);
  EXPECT_LT(slow.fine.stage.slew_v_per_ps, nominal.fine.stage.slew_v_per_ps);
  EXPECT_LT(slow.fine.stage.amp_max_v - slow.fine.stage.amp_min_v,
            nominal.fine.stage.amp_max_v - nominal.fine.stage.amp_min_v);
}

TEST(DelayBoard, RejectsBadConfig) {
  gc::DelayBoardConfig cfg;
  cfg.n_channels = 0;
  EXPECT_THROW(gc::DelayBoard(cfg, Rng(1)), std::invalid_argument);
}

TEST(DelayBoard, RequiresCalibrationBeforeProgramming) {
  gc::DelayBoardConfig cfg;
  cfg.n_channels = 2;
  gc::DelayBoard board(cfg, Rng(2));
  EXPECT_THROW(board.program(0, 50.0), std::logic_error);
  EXPECT_THROW(board.common_range_ps(), std::logic_error);
}

TEST(DelayBoard, FourChannelCalibrateAndProgram) {
  // The paper's 4-channel version: each channel carries its own process
  // scatter, yet after calibration each realizes the same requested
  // delay to ~1 ps.
  const auto s = stim();
  gc::DelayBoardConfig cfg;
  cfg.n_channels = 4;
  gc::DelayBoard board(cfg, Rng(3));
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 9;
  board.calibrate(s.wf, o);
  EXPECT_GT(board.common_range_ps(), 120.0);

  const auto settings = board.program_all(60.0);
  ASSERT_EQ(settings.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto out = board.channel(i).process(s.wf);
    const double rel = gm::measure_delay(s.wf, out).mean_ps -
                       board.calibrations()[static_cast<std::size_t>(i)]
                           .base_latency_ps;
    EXPECT_NEAR(rel, 60.0, 1.5) << "channel " << i;
  }
}

TEST(DelayBoard, CalibrationAbsorbsVariation) {
  // Without calibration, instances land at visibly different latencies;
  // the calibrations must reflect that spread.
  const auto s = stim();
  gc::DelayBoardConfig cfg;
  cfg.n_channels = 4;
  gc::DelayBoard board(cfg, Rng(4));
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 7;
  const auto& cals = board.calibrate(s.wf, o);
  double lo = 1e300, hi = -1e300;
  for (const auto& c : cals) {
    lo = std::min(lo, c.base_latency_ps);
    hi = std::max(hi, c.base_latency_ps);
  }
  EXPECT_GT(hi - lo, 2.0);  // raw channels are NOT matched...
  // ...but each channel's own model still predicts its own hardware.
}

TEST(ThermalDrift, ShiftsParametersMonotonically) {
  gc::ThermalDrift drift;
  const auto nominal = gc::ChannelConfig::prototype();
  const auto hot = drift.apply(nominal, 40.0);
  EXPECT_LT(hot.fine.stage.slew_v_per_ps, nominal.fine.stage.slew_v_per_ps);
  EXPECT_LT(hot.fine.stage.amp_max_v, nominal.fine.stage.amp_max_v);
  EXPECT_GT(hot.coarse.tap_error_ps[3], nominal.coarse.tap_error_ps[3]);
  // Zero offset is the identity.
  const auto same = drift.apply(nominal, 0.0);
  EXPECT_DOUBLE_EQ(same.fine.stage.slew_v_per_ps,
                   nominal.fine.stage.slew_v_per_ps);
}

TEST(ThermalDrift, ChangesRealizedDelay) {
  // A hot channel programmed with a cold calibration misses the target.
  const auto s = stim();
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 7;
  gc::VariableDelayChannel cold(gc::ChannelConfig::prototype(), Rng(6));
  const auto cal = gc::DelayCalibrator(o).calibrate(cold, s.wf);
  const auto set = cal.plan(70.0);

  gc::ThermalDrift drift;
  gc::VariableDelayChannel hot(
      drift.apply(gc::ChannelConfig::prototype(), 40.0), Rng(6));
  hot.select_tap(set.tap);
  hot.set_vctrl(set.vctrl_v);
  const double rel =
      gm::measure_delay(s.wf, hot.process(s.wf)).mean_ps -
      cal.base_latency_ps;
  EXPECT_GT(std::abs(rel - 70.0), 2.0);  // visible miss without recal
}

TEST(CalIo, RoundTripExact) {
  gc::ChannelCalibration cal;
  cal.fine_curve = gdelay::util::Curve({0.0, 0.7, 1.5}, {0.0, 24.5, 52.25});
  cal.tap_offset_ps = {0.0, 33.1, 69.9, 95.2};
  cal.base_latency_ps = 324.875;
  cal.dac = gc::Dac(12, 1.5);
  const auto text = gc::calibration_to_text(cal);
  const auto back = gc::calibration_from_text(text);
  EXPECT_DOUBLE_EQ(back.base_latency_ps, cal.base_latency_ps);
  for (int i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(back.tap_offset_ps[static_cast<std::size_t>(i)],
                     cal.tap_offset_ps[static_cast<std::size_t>(i)]);
  EXPECT_EQ(back.dac.bits(), 12);
  EXPECT_DOUBLE_EQ(back.fine_curve(0.35), cal.fine_curve(0.35));
  // Planning from the reloaded table gives identical settings.
  const auto a = cal.plan(40.0);
  const auto b = back.plan(40.0);
  EXPECT_EQ(a.tap, b.tap);
  EXPECT_EQ(a.dac_code, b.dac_code);
}

TEST(CalIo, RejectsMalformedInput) {
  EXPECT_THROW(gc::calibration_from_text(""), std::runtime_error);
  EXPECT_THROW(gc::calibration_from_text("bogus 1"), std::runtime_error);
  EXPECT_THROW(gc::calibration_from_text("gdelay_calibration 2"),
               std::runtime_error);
  EXPECT_THROW(
      gc::calibration_from_text("gdelay_calibration 1\nunknown_key 3"),
      std::runtime_error);
  // Missing fields.
  EXPECT_THROW(gc::calibration_from_text(
                   "gdelay_calibration 1\nbase_latency_ps 10\n"),
               std::runtime_error);
}

TEST(CalIo, FileRoundTrip) {
  gc::ChannelCalibration cal;
  cal.fine_curve = gdelay::util::Curve({0.0, 1.5}, {0.0, 50.0});
  cal.tap_offset_ps = {0.0, 33.0, 66.0, 99.0};
  cal.base_latency_ps = 300.0;
  const auto path =
      (std::filesystem::temp_directory_path() / "gdelay_cal_test.txt")
          .string();
  gc::save_calibration(path, cal);
  const auto back = gc::load_calibration(path);
  EXPECT_DOUBLE_EQ(back.base_latency_ps, 300.0);
  std::filesystem::remove(path);
  EXPECT_THROW(gc::load_calibration("/nonexistent/dir/cal.txt"),
               std::runtime_error);
}
