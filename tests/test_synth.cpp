// Tests for waveform synthesis and edge extraction.
#include <gtest/gtest.h>

#include <cmath>

#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gs = gdelay::sig;
using gdelay::util::Rng;

namespace {

gs::SynthConfig base_config(double rate = 3.2) {
  gs::SynthConfig c;
  c.rate_gbps = rate;
  return c;
}

}  // namespace

TEST(Synth, RejectsBadConfig) {
  gs::SynthConfig c = base_config();
  c.rate_gbps = 0.0;
  EXPECT_THROW(gs::synthesize_nrz({0, 1}, c), std::invalid_argument);
  c = base_config();
  c.dt_ps = 0.0;
  EXPECT_THROW(gs::synthesize_nrz({0, 1}, c), std::invalid_argument);
  EXPECT_THROW(gs::synthesize_nrz({}, base_config()), std::invalid_argument);
}

TEST(Synth, JitterWithoutRngThrows) {
  gs::SynthConfig c = base_config();
  c.rj_sigma_ps = 1.0;
  EXPECT_THROW(gs::synthesize_nrz({0, 1, 0}, c, nullptr),
               std::invalid_argument);
}

TEST(Synth, LevelsMatchAmplitude) {
  gs::SynthConfig c = base_config();
  const auto r = gs::synthesize_nrz(gs::alternating(16), c);
  EXPECT_NEAR(r.wf.max_value(), c.amplitude_v, 0.02);
  EXPECT_NEAR(r.wf.min_value(), -c.amplitude_v, 0.02);
}

TEST(Synth, EdgeTimingAccuracy) {
  // Without jitter, extracted 50 % crossings must land on the nominal
  // edge grid to well below a tenth of a picosecond.
  gs::SynthConfig c = base_config(6.4);
  const auto r = gs::synthesize_nrz(gs::prbs(7, 48), c);
  const auto edges = gs::extract_edges(r.wf);
  ASSERT_EQ(edges.size(), r.ideal_edges_ps.size());
  for (std::size_t i = 0; i < edges.size(); ++i)
    EXPECT_NEAR(edges[i].t_ps, r.ideal_edges_ps[i], 0.05);
}

TEST(Synth, EdgePolaritySequence) {
  gs::SynthConfig c = base_config();
  const auto r = gs::synthesize_nrz({0, 1, 1, 0, 1}, c);
  const auto edges = gs::extract_edges(r.wf);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_TRUE(edges[0].rising);
  EXPECT_FALSE(edges[1].rising);
  EXPECT_TRUE(edges[2].rising);
}

TEST(Synth, RiseTime2080) {
  gs::SynthConfig c = base_config(1.0);  // slow rate: isolated edge
  c.rise_time_ps = 40.0;
  const auto r = gs::synthesize_nrz({0, 1}, c);
  const double a = c.amplitude_v;
  // Locate 20 % / 80 % crossings around the single edge.
  double t20 = 0.0, t80 = 0.0;
  for (std::size_t i = 1; i < r.wf.size(); ++i) {
    if (r.wf[i - 1] < -0.6 * a && r.wf[i] >= -0.6 * a)
      t20 = r.wf.time_at(i);
    if (r.wf[i - 1] < 0.6 * a && r.wf[i] >= 0.6 * a) {
      t80 = r.wf.time_at(i);
      break;
    }
  }
  EXPECT_NEAR(t80 - t20, 40.0, 2.0);
}

TEST(Synth, RandomJitterStatistics) {
  gs::SynthConfig c = base_config(3.2);
  c.rj_sigma_ps = 2.0;
  Rng rng(3);
  const auto r = gs::synthesize_nrz(gs::prbs(7, 400), c, &rng);
  ASSERT_EQ(r.actual_edges_ps.size(), r.ideal_edges_ps.size());
  double acc = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < r.actual_edges_ps.size(); ++i) {
    const double d = r.actual_edges_ps[i] - r.ideal_edges_ps[i];
    acc += d;
    sq += d * d;
  }
  const double n = static_cast<double>(r.actual_edges_ps.size());
  const double mean = acc / n;
  const double sd = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.5);
  EXPECT_NEAR(sd, 2.0, 0.4);
}

TEST(Synth, SinusoidalDj) {
  gs::SynthConfig c = base_config(3.2);
  c.dj_pp_ps = 10.0;
  const auto r = gs::synthesize_nrz(gs::alternating(256), c);
  double lo = 1e9, hi = -1e9;
  for (std::size_t i = 0; i < r.actual_edges_ps.size(); ++i) {
    const double d = r.actual_edges_ps[i] - r.ideal_edges_ps[i];
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_NEAR(hi - lo, 10.0, 1.0);
}

TEST(Synth, RzPulses) {
  gs::SynthConfig c = base_config(2.0);  // UI = 500 ps
  const auto r = gs::synthesize_rz({1, 0, 1}, c, 0.5);
  const auto edges = gs::extract_edges(r.wf);
  ASSERT_EQ(edges.size(), 4u);  // two pulses, two edges each
  EXPECT_TRUE(edges[0].rising);
  EXPECT_FALSE(edges[1].rising);
  EXPECT_NEAR(edges[1].t_ps - edges[0].t_ps, 250.0, 1.0);  // 50 % duty
  EXPECT_NEAR(edges[2].t_ps - edges[0].t_ps, 1000.0, 1.0); // 2 UI apart
}

TEST(Synth, RzRejectsBadDuty) {
  EXPECT_THROW(gs::synthesize_rz({1}, base_config(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(gs::synthesize_rz({1}, base_config(), 1.0),
               std::invalid_argument);
}

TEST(Synth, ClockFrequency) {
  gs::SynthConfig c = base_config();
  const auto r = gs::synthesize_clock(5.0, 20, c);  // 5 GHz -> 200 ps period
  const auto edges = gs::extract_edges(r.wf);
  ASSERT_GE(edges.size(), 10u);
  for (std::size_t i = 1; i < edges.size(); ++i)
    EXPECT_NEAR(edges[i].t_ps - edges[i - 1].t_ps, 100.0, 1.0);
  EXPECT_DOUBLE_EQ(r.unit_interval_ps, 100.0);  // half period
}

TEST(Synth, RjSigmaForTjPp) {
  // pp ~= 2 sigma sqrt(2 ln n): round-trip sanity.
  const double sigma = gs::rj_sigma_for_tj_pp(10.0, 1000);
  EXPECT_NEAR(2.0 * sigma * std::sqrt(2.0 * std::log(1000.0)), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(gs::rj_sigma_for_tj_pp(0.0, 100), 0.0);
}

TEST(Edges, HysteresisSuppressesChatter) {
  // A slow ramp with noise around the threshold: without hysteresis many
  // crossings, with hysteresis exactly one.
  Rng rng(9);
  auto wf = gs::Waveform::from_function(
      0.0, 1.0, 400, [](double t) { return (t - 200.0) * 0.002; });
  for (std::size_t i = 0; i < wf.size(); ++i) wf[i] += rng.gaussian(0.0, 0.05);
  gs::EdgeExtractOptions no_hyst;
  gs::EdgeExtractOptions hyst;
  hyst.hysteresis_v = 0.25;
  EXPECT_GT(gs::extract_edges(wf, no_hyst).size(), 1u);
  EXPECT_EQ(gs::extract_edges(wf, hyst).size(), 1u);
}

TEST(Edges, TimeWindowFilter) {
  gs::SynthConfig c = base_config(1.0);
  const auto r = gs::synthesize_nrz(gs::alternating(10), c);
  gs::EdgeExtractOptions opt;
  opt.t_min_ps = 2000.0;
  opt.t_max_ps = 4000.0;
  for (const auto& e : gs::extract_edges(r.wf, opt)) {
    EXPECT_GE(e.t_ps, 2000.0);
    EXPECT_LE(e.t_ps, 4000.0);
  }
}

TEST(Edges, HelperFilters) {
  std::vector<gs::Edge> edges{{1.0, true}, {2.0, false}, {3.0, true}};
  EXPECT_EQ(gs::edge_times(edges).size(), 3u);
  EXPECT_EQ(gs::rising_times(edges), (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(gs::falling_times(edges), (std::vector<double>{2.0}));
}
