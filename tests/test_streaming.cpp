// Byte-identity of the streaming fused-pipeline executor.
//
// The streaming path (SampleSource -> Pipeline stages -> ISampleSinks)
// is contractually an optimization, never a semantic fork: at ANY chunk
// size it must produce bit-for-bit the doubles of the materializing path
// (synthesize -> process() -> whole-waveform measurement) — same
// samples, same edge times, same folded eye counts, same RNG draw
// order. These tests run both paths over identically seeded twins and
// compare raw bit patterns at chunk sizes from 1 sample to the whole
// waveform, with particular attention to measurement state that spans
// chunk seams (the edge extractor's backscan window).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "analog/element.h"
#include "analog/primitives.h"
#include "core/channel.h"
#include "core/jitter_injector.h"
#include "core/pipeline.h"
#include "measure/delay_meter.h"
#include "measure/eye.h"
#include "measure/jitter.h"
#include "measure/sinks.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/stream.h"
#include "signal/synth.h"
#include "signal/waveform.h"
#include "util/rng.h"

namespace ga = gdelay::analog;
namespace gc = gdelay::core;
namespace gm = gdelay::meas;
namespace gs = gdelay::sig;
using gdelay::util::Rng;

namespace {

// The chunkings every streaming result must be invariant under: sample
// by sample, an awkward prime, the block-kernel unit, a big chunk, and
// (via a chunk larger than any test waveform) one single read.
const std::size_t kChunks[] = {1, 7, 64, ga::kBlockSamples, 4096, 1u << 22};

void expect_bytes_equal(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty())
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what;
}

void expect_waveforms_identical(const gs::Waveform& a, const gs::Waveform& b,
                                const char* what) {
  EXPECT_EQ(a.t0_ps(), b.t0_ps()) << what;
  EXPECT_EQ(a.dt_ps(), b.dt_ps()) << what;
  expect_bytes_equal(a.samples(), b.samples(), what);
}

void expect_edges_identical(const std::vector<gs::Edge>& a,
                            const std::vector<gs::Edge>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i].t_ps, &b[i].t_ps, sizeof(double)), 0)
        << what << " edge " << i;
    EXPECT_EQ(a[i].rising, b[i].rising) << what << " edge " << i;
  }
}

void expect_jitter_identical(const gm::JitterReport& a,
                             const gm::JitterReport& b, const char* what) {
  EXPECT_EQ(a.n_edges, b.n_edges) << what;
  EXPECT_EQ(std::memcmp(&a.grid_phase_ps, &b.grid_phase_ps, sizeof(double)), 0)
      << what;
  EXPECT_EQ(std::memcmp(&a.tj_pp_ps, &b.tj_pp_ps, sizeof(double)), 0) << what;
  EXPECT_EQ(std::memcmp(&a.rj_rms_ps, &b.rj_rms_ps, sizeof(double)), 0) << what;
  EXPECT_EQ(std::memcmp(&a.dj_pp_ps, &b.dj_pp_ps, sizeof(double)), 0) << what;
  expect_bytes_equal(a.residuals_ps, b.residuals_ps, what);
}

void expect_eyes_identical(const gm::EyeDiagram& a, const gm::EyeDiagram& b,
                           const char* what) {
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(a.rows(), b.rows()) << what;
  EXPECT_EQ(a.total(), b.total()) << what;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      ASSERT_EQ(a.count(c, r), b.count(c, r))
          << what << " col " << c << " row " << r;
}

gs::SynthConfig jittery_config() {
  gs::SynthConfig cfg;
  cfg.rate_gbps = 6.4;
  cfg.rise_time_ps = 30.0;
  cfg.dt_ps = 0.25;
  cfg.rj_sigma_ps = 1.2;
  cfg.dj_pp_ps = 3.0;
  return cfg;
}

// Streams `wf` through the extractor in chunks of `chunk`.
std::vector<gs::Edge> chunked_edges(const gs::Waveform& wf,
                                    const gs::EdgeExtractOptions& opt,
                                    std::size_t chunk) {
  gs::StreamingEdgeExtractor ex(wf.t0_ps(), wf.dt_ps(), opt);
  const double* p = wf.samples().data();
  for (std::size_t o = 0; o < wf.size(); o += chunk)
    ex.consume(p + o, std::min(chunk, wf.size() - o));
  return ex.take_edges();
}

}  // namespace

// ---------------------------------------------------------------------------
// Sources

TEST(StreamingSynth, PlanMatchesSynthesize) {
  Rng rng_a(77), rng_b(77);
  const auto bits = gs::prbs(7, 300, 1);
  const auto ref = gs::synthesize_nrz(bits, jittery_config(), &rng_a);
  auto plan = gs::plan_nrz(bits, jittery_config(), &rng_b);

  expect_bytes_equal(plan.ideal_edges_ps, ref.ideal_edges_ps, "ideal edges");
  expect_bytes_equal(plan.actual_edges_ps, ref.actual_edges_ps, "actual edges");
  EXPECT_EQ(plan.unit_interval_ps, ref.unit_interval_ps);
  expect_waveforms_identical(gs::render(plan), ref.wf, "rendered plan");

  // Planning consumes the same RNG draws as synthesis did.
  EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
}

TEST(StreamingSynth, RzAndClockPlansMatch) {
  Rng rng_a(5), rng_b(5);
  gs::SynthConfig cfg = jittery_config();
  cfg.rate_gbps = 3.2;
  const auto ref = gs::synthesize_rz(gs::prbs(7, 120, 3), cfg, 0.4, &rng_a);
  auto plan = gs::plan_rz(gs::prbs(7, 120, 3), cfg, 0.4, &rng_b);
  expect_waveforms_identical(gs::render(plan), ref.wf, "rz plan");
  expect_bytes_equal(plan.actual_edges_ps, ref.actual_edges_ps, "rz edges");

  Rng rng_c(9), rng_d(9);
  const auto cref = gs::synthesize_clock(3.4, 200, jittery_config(), &rng_c);
  auto cplan = gs::plan_clock(3.4, 200, jittery_config(), &rng_d);
  expect_waveforms_identical(gs::render(cplan), cref.wf, "clock plan");
}

TEST(StreamingSynth, SynthSourceChunkInvariant) {
  Rng rng(123);
  auto plan = gs::plan_nrz(gs::prbs(7, 300, 1), jittery_config(), &rng);
  const gs::Waveform ref = gs::render(plan);

  gs::SynthSource src(std::move(plan));
  EXPECT_EQ(src.size(), ref.size());
  EXPECT_EQ(src.t0_ps(), ref.t0_ps());
  EXPECT_EQ(src.dt_ps(), ref.dt_ps());

  for (std::size_t chunk : kChunks) {
    src.rewind();
    std::vector<double> got(ref.size());
    std::size_t pos = 0, n;
    while ((n = src.read(got.data() + pos, chunk)) > 0) pos += n;
    EXPECT_EQ(pos, ref.size()) << "chunk " << chunk;
    expect_bytes_equal(got, ref.samples(), "SynthSource samples");
  }
}

TEST(StreamingSynth, WaveformSourceReplays) {
  Rng rng(3);
  const auto res = gs::synthesize_nrz(gs::prbs(7, 64, 2), jittery_config(), &rng);
  gs::WaveformSource src(res.wf);
  for (std::size_t chunk : {std::size_t{1}, std::size_t{13}, res.wf.size()}) {
    src.rewind();
    std::vector<double> got(res.wf.size());
    std::size_t pos = 0, n;
    while ((n = src.read(got.data() + pos, chunk)) > 0) pos += n;
    EXPECT_EQ(pos, res.wf.size());
    expect_bytes_equal(got, res.wf.samples(), "WaveformSource samples");
  }
}

// ---------------------------------------------------------------------------
// Chunk-seam edge extraction

TEST(StreamingEdges, ChunkInvariantOnJitteredData) {
  Rng rng(2026);
  const auto res =
      gs::synthesize_nrz(gs::prbs(7, 200, 5), jittery_config(), &rng);
  gs::EdgeExtractOptions opt;
  opt.hysteresis_v = 0.1;
  const auto ref = gs::extract_edges(res.wf, opt);
  ASSERT_GT(ref.size(), 50u);
  for (std::size_t chunk : kChunks)
    expect_edges_identical(chunked_edges(res.wf, opt, chunk), ref,
                           "jittered data edges");
}

TEST(StreamingEdges, EdgeStraddlingEverySeam) {
  // A slow ramp crossing the threshold: at chunk size 1 every seam falls
  // inside the transition, so the backscan must reach across chunks.
  std::vector<double> v;
  for (int cyc = 0; cyc < 8; ++cyc) {
    for (int i = 0; i < 40; ++i) v.push_back(-0.4 + 0.02 * i);  // slow rise
    for (int i = 0; i < 40; ++i) v.push_back(0.4 - 0.02 * i);   // slow fall
  }
  const gs::Waveform wf(0.0, 1.0, std::move(v));
  gs::EdgeExtractOptions opt;
  opt.hysteresis_v = 0.2;
  const auto ref = gs::extract_edges(wf, opt);
  ASSERT_GE(ref.size(), 14u);
  for (std::size_t chunk : kChunks)
    expect_edges_identical(chunked_edges(wf, opt, chunk), ref, "slow ramp");
}

TEST(StreamingEdges, RuntPulsesAcrossSeams) {
  // Runts that poke just past the threshold but stay inside the
  // hysteresis band must not fire at any chunking; full-size pulses
  // around them must. Also exercises the dip-below-threshold-without-
  // flip path of the history pruning.
  std::vector<double> v(600, -0.5);
  auto pulse = [&](std::size_t at, double amp, std::size_t width) {
    for (std::size_t i = 0; i < width; ++i) v[at + i] = amp;
  };
  pulse(50, 0.5, 40);    // real pulse
  pulse(130, 0.04, 3);   // runt: above th, inside hysteresis band
  pulse(180, 0.5, 40);   // real pulse
  pulse(260, -0.04, 5);  // dip while low: no crossing at all
  pulse(300, 0.5, 2);    // narrow but full-swing: real edges
  pulse(400, 0.5, 40);   // real pulse
  const gs::Waveform wf(0.0, 1.0, std::move(v));
  gs::EdgeExtractOptions opt;
  opt.hysteresis_v = 0.2;
  const auto ref = gs::extract_edges(wf, opt);
  ASSERT_EQ(ref.size(), 8u);  // four full-swing pulses, two edges each
  for (std::size_t chunk : kChunks)
    expect_edges_identical(chunked_edges(wf, opt, chunk), ref, "runt pulses");
}

TEST(StreamingEdges, HoverNearThresholdChunkInvariant) {
  // Signal chattering inside the hysteresis band between real crossings:
  // the no-prune stretches span many seams at small chunk sizes.
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) {
    const double wob = 0.08 * ((i % 7) - 3) / 3.0;   // inside the band
    const double slow = ((i / 100) % 2) ? 0.5 : -0.5;  // real square wave
    v.push_back(slow * ((i % 100) < 20 ? 0.1 : 1.0) + wob);
  }
  const gs::Waveform wf(0.0, 1.0, std::move(v));
  gs::EdgeExtractOptions opt;
  opt.hysteresis_v = 0.3;
  const auto ref = gs::extract_edges(wf, opt);
  ASSERT_GE(ref.size(), 3u);
  for (std::size_t chunk : kChunks)
    expect_edges_identical(chunked_edges(wf, opt, chunk), ref, "hover");
}

TEST(StreamingEdges, TieResidualsChunkInvariant) {
  Rng rng(404);
  gs::SynthConfig cfg = jittery_config();
  cfg.rj_sigma_ps = 2.0;
  const auto res = gs::synthesize_nrz(gs::prbs(7, 256, 9), cfg, &rng);
  const double ui = res.unit_interval_ps;

  const auto ref = gm::measure_jitter(res.wf, ui);
  for (std::size_t chunk : kChunks) {
    gm::JitterSink sink(ui);
    sink.begin(res.wf.t0_ps(), res.wf.dt_ps(), res.wf.size());
    const double* p = res.wf.samples().data();
    for (std::size_t o = 0; o < res.wf.size(); o += chunk)
      sink.consume(p + o, std::min(chunk, res.wf.size() - o));
    sink.finish();
    expect_jitter_identical(sink.report(), ref, "TIE residuals");
  }
}

// ---------------------------------------------------------------------------
// JitterInjector block path

TEST(StreamingStages, JitterInjectorBlockMatchesStep) {
  Rng rng(808);
  const auto res = gs::synthesize_nrz(gs::prbs(7, 64, 4), jittery_config(), &rng);

  gc::JitterInjectorConfig jc;
  jc.sj_pp_v = 0.2;
  gc::JitterInjector step_twin(jc, Rng(99));

  step_twin.reset();
  std::vector<double> want(res.wf.size());
  for (std::size_t i = 0; i < res.wf.size(); ++i)
    want[i] = step_twin.step(res.wf[i], res.wf.dt_ps());

  for (std::size_t chunk : {std::size_t{1}, std::size_t{17}, std::size_t{1024},
                            res.wf.size()}) {
    gc::JitterInjector fresh(jc, Rng(99));
    fresh.reset();
    std::vector<double> got(res.wf.size());
    const double* p = res.wf.samples().data();
    for (std::size_t o = 0; o < res.wf.size(); o += chunk)
      fresh.process_block(p + o, got.data() + o,
                          std::min(chunk, res.wf.size() - o), res.wf.dt_ps());
    expect_bytes_equal(got, want, "JitterInjector block");
  }
}

// ---------------------------------------------------------------------------
// Full fused pipelines

TEST(StreamingPipeline, SynthChannelAllSinksIdentity) {
  const auto bits = gs::prbs(7, 400, 1);
  const gs::SynthConfig cfg = jittery_config();

  // Materializing reference: synth -> channel -> {capture, eye, jitter,
  // histogram, delay-vs-stimulus}.
  Rng rng_m(2008);
  const auto stim = gs::synthesize_nrz(bits, cfg, &rng_m);
  gc::VariableDelayChannel ch_m(gc::ChannelConfig::prototype(), rng_m.fork(1));
  ch_m.set_vctrl(0.4);
  const auto out_m = ch_m.process(stim.wf);
  const double ui = stim.unit_interval_ps;

  gm::EyeDiagram eye_m(ui, -0.55, 0.55, 72, 18);
  eye_m.accumulate(out_m, 0.0, 400.0);
  const auto jit_m = gm::measure_jitter(out_m, ui);
  gm::Histogram hist_m(-0.6, 0.6, 48);
  for (std::size_t i = 0; i < out_m.size(); ++i) {
    if (out_m.time_at(i) < out_m.t0_ps() + 400.0) continue;
    hist_m.add(out_m[i]);
  }
  const auto delay_m = gm::measure_delay(stim.wf, out_m);

  for (std::size_t chunk : kChunks) {
    Rng rng_s(2008);
    auto plan = gs::plan_nrz(bits, cfg, &rng_s);
    gc::VariableDelayChannel ch_s(gc::ChannelConfig::prototype(),
                                  rng_s.fork(1));
    ch_s.set_vctrl(0.4);
    gs::SynthSource src(std::move(plan));

    // Reference edges for the delay meter come from the raw stimulus
    // stream (no stages).
    gm::DelayMeterOptions dopt;
    gm::EdgeSink ref_edges = gm::DelayMeterSink::reference_sink(dopt);
    gc::Pipeline taps(chunk);
    taps.run(src, ref_edges);

    gm::WaveformCaptureSink cap;
    gm::EyeSink eye_s(gm::EyeDiagram(ui, -0.55, 0.55, 72, 18), 0.0, 400.0);
    gm::JitterSink jit_s(ui);
    gm::LevelHistogramSink hist_s(-0.6, 0.6, 48, 400.0);
    gm::DelayMeterSink delay_s(ref_edges, dopt);

    gc::Pipeline pipe(chunk);
    pipe.add_stage(ch_s);
    pipe.run(src, {&cap, &eye_s, &jit_s, &hist_s, &delay_s});

    expect_waveforms_identical(cap.waveform(), out_m, "pipeline output");
    expect_eyes_identical(eye_s.eye(), eye_m, "pipeline eye");
    expect_jitter_identical(jit_s.report(), jit_m, "pipeline jitter");

    ASSERT_EQ(hist_s.histogram().n_bins(), hist_m.n_bins());
    EXPECT_EQ(hist_s.histogram().total(), hist_m.total());
    EXPECT_EQ(hist_s.histogram().underflow(), hist_m.underflow());
    EXPECT_EQ(hist_s.histogram().overflow(), hist_m.overflow());
    for (std::size_t b = 0; b < hist_m.n_bins(); ++b)
      ASSERT_EQ(hist_s.histogram().count(b), hist_m.count(b)) << "bin " << b;

    const auto& dm = delay_s.result();
    EXPECT_EQ(dm.n_edges, delay_m.n_edges);
    EXPECT_EQ(std::memcmp(&dm.mean_ps, &delay_m.mean_ps, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&dm.stddev_ps, &delay_m.stddev_ps, sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&dm.min_ps, &delay_m.min_ps, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&dm.max_ps, &delay_m.max_ps, sizeof(double)), 0);
  }
}

TEST(StreamingPipeline, SequentialRunsContinueNoiseStreams) {
  // Two consecutive process() calls on one channel continue its noise
  // streams; two consecutive Pipeline::run() calls must do exactly the
  // same (reset clears signal state, not RNG state).
  const auto bits = gs::prbs(7, 150, 8);
  const gs::SynthConfig cfg = jittery_config();

  Rng rng_m(31);
  const auto stim = gs::synthesize_nrz(bits, cfg, &rng_m);
  gc::VariableDelayChannel ch_m(gc::ChannelConfig::prototype(), rng_m.fork(1));
  ch_m.set_vctrl(0.0);
  const auto first_m = ch_m.process(stim.wf);
  ch_m.set_vctrl(ch_m.vctrl_max());
  const auto second_m = ch_m.process(stim.wf);

  Rng rng_s(31);
  auto plan = gs::plan_nrz(bits, cfg, &rng_s);
  gc::VariableDelayChannel ch_s(gc::ChannelConfig::prototype(), rng_s.fork(1));
  gs::SynthSource src(std::move(plan));
  gc::Pipeline pipe(64);
  pipe.add_stage(ch_s);

  gm::WaveformCaptureSink cap;
  ch_s.set_vctrl(0.0);
  pipe.run(src, cap);
  expect_waveforms_identical(cap.waveform(), first_m, "first run");
  ch_s.set_vctrl(ch_s.vctrl_max());
  pipe.run(src, cap);
  expect_waveforms_identical(cap.waveform(), second_m, "second run");
}

TEST(StreamingPipeline, MultiStageWithInjector) {
  const auto bits = gs::prbs(7, 150, 2);
  gs::SynthConfig cfg = jittery_config();
  cfg.rate_gbps = 3.2;

  Rng rng_m(900);
  const auto stim = gs::synthesize_nrz(bits, cfg, &rng_m);
  gc::JitterInjectorConfig jc;
  gc::JitterInjector jo_m(jc, rng_m.fork(2));
  ga::Attenuator pad_m(2.0);
  const auto mid_m = jo_m.process(stim.wf);
  pad_m.reset();
  const auto out_m = pad_m.process(mid_m);
  const auto jit_m = gm::measure_jitter(out_m, stim.unit_interval_ps);

  for (std::size_t chunk : {std::size_t{1}, std::size_t{64},
                            std::size_t{4096}}) {
    Rng rng_s(900);
    auto plan = gs::plan_nrz(bits, cfg, &rng_s);
    gc::JitterInjector jo_s(jc, rng_s.fork(2));
    ga::Attenuator pad_s(2.0);
    gs::SynthSource src(std::move(plan));

    gm::JitterSink jit_s(stim.unit_interval_ps);
    gc::Pipeline pipe(chunk);
    pipe.add_stage(jo_s).add_stage(pad_s);
    pipe.run(src, jit_s);
    expect_jitter_identical(jit_s.report(), jit_m, "injector pipeline");
  }
}

TEST(StreamingPipeline, StagelessRunReplaysSource) {
  Rng rng(61);
  const auto res = gs::synthesize_nrz(gs::prbs(7, 80, 6), jittery_config(), &rng);
  gs::WaveformSource src(res.wf);
  gm::WaveformCaptureSink cap;
  gc::Pipeline pipe(37);
  pipe.run(src, cap);
  expect_waveforms_identical(cap.waveform(), res.wf, "stageless replay");
}
