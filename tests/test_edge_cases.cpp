// Edge-case coverage across modules: error paths, boundary conditions
// and accessor behaviour not exercised by the scenario tests.
#include <gtest/gtest.h>

#include <cmath>

#include "ate/cdr.h"
#include "ate/dut.h"
#include "core/board.h"
#include "core/cal_io.h"
#include "core/channel.h"
#include "measure/delay_meter.h"
#include "measure/eye.h"
#include "measure/freq_response.h"
#include "measure/histogram.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/curve.h"
#include "util/rng.h"

namespace ga = gdelay::ate;
namespace gc = gdelay::core;
namespace gm = gdelay::meas;
namespace gs = gdelay::sig;
namespace gu = gdelay::util;
using gdelay::util::Rng;

TEST(EyeDiagramRaster, CountsLandInCorrectCells) {
  // A constant +0.4 V waveform fills exactly the top row across columns.
  gs::Waveform wf(0.0, 1.0, std::vector<double>(200, 0.4));
  gm::EyeDiagram eye(50.0, -0.5, 0.5, 10, 10);
  eye.accumulate(wf, 0.0, 0.0);
  EXPECT_EQ(eye.total(), 200u);
  std::size_t top = 0, rest = 0;
  for (std::size_t c = 0; c < eye.cols(); ++c) {
    top += eye.count(c, 8);  // 0.4 V -> bin floor((0.4+0.5)/0.1) = 9... row 9
    top += eye.count(c, 9);
    for (std::size_t r = 0; r < 8; ++r) rest += eye.count(c, r);
  }
  EXPECT_EQ(top, 200u);
  EXPECT_EQ(rest, 0u);
}

TEST(EyeDiagramRaster, OutOfRangeSamplesDropped) {
  gs::Waveform wf(0.0, 1.0, std::vector<double>(50, 2.0));  // above range
  gm::EyeDiagram eye(50.0, -0.5, 0.5, 8, 8);
  eye.accumulate(wf, 0.0, 0.0);
  EXPECT_EQ(eye.total(), 0u);
}

TEST(HistogramEdge, ModeOnEmptyIsZero) {
  gm::Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.mode_bin(), 0u);
  EXPECT_EQ(h.total(), 0u);
  // Ascii render of an empty histogram must not divide by zero.
  EXPECT_NO_THROW(h.ascii());
}

TEST(CurveEdge, TwoPointCurve) {
  gu::Curve c({0.0, 1.0}, {5.0, 15.0});
  EXPECT_DOUBLE_EQ(c.mid_slope(1.0), 10.0);
  EXPECT_DOUBLE_EQ(c.invert(10.0), 0.5);
  const auto m = c.monotonicized();
  EXPECT_DOUBLE_EQ(m(0.5), 10.0);
}

TEST(CurveEdge, FlatCurveInvertsToMidpoint) {
  gu::Curve c({0.0, 1.0, 2.0}, {3.0, 3.0, 3.0});
  // Flat is both non-decreasing and non-increasing; inversion picks a
  // well-defined point inside the domain.
  const double x = c.invert(3.0);
  EXPECT_GE(x, 0.0);
  EXPECT_LE(x, 2.0);
}

TEST(PhaseDelayEdge, ThrowsWithoutEdges) {
  gs::Waveform flat(0.0, 1.0, std::vector<double>(100, 0.3));
  gs::SynthConfig sc;
  const auto clk = gs::synthesize_clock(1.0, 10, sc);
  EXPECT_THROW(gm::measure_phase_delay(clk.wf, flat, 500.0),
               std::runtime_error);
  EXPECT_THROW(gm::measure_phase_delay(clk.wf, clk.wf, 0.0),
               std::invalid_argument);
}

TEST(CalIoEdge, DecreasingCurveSurvivesRoundTrip) {
  gc::ChannelCalibration cal;
  cal.fine_curve = gu::Curve({0.0, 1.0, 1.5}, {50.0, 20.0, 0.0});
  cal.tap_offset_ps = {0.0, 33.0, 66.0, 99.0};
  cal.base_latency_ps = 100.0;
  const auto back = gc::calibration_from_text(gc::calibration_to_text(cal));
  EXPECT_TRUE(back.fine_curve.is_monotonic_decreasing());
  EXPECT_DOUBLE_EQ(back.fine_curve.invert(20.0), 1.0);
}

TEST(BoardEdge, ProgramClampsOutOfRangeTargets) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 48), sc);
  gc::DelayBoardConfig cfg;
  cfg.n_channels = 1;
  cfg.variation = gc::ProcessVariation{};
  gc::DelayBoard board(cfg, Rng(9));
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 5;
  board.calibrate(stim.wf, o);
  const auto lo = board.program(0, -100.0);
  EXPECT_NEAR(lo.predicted_delay_ps, 0.0, 2.0);
  const auto hi = board.program(0, 1e6);
  EXPECT_NEAR(hi.predicted_delay_ps,
              board.calibrations()[0].total_range_ps(), 2.0);
  EXPECT_THROW(board.program(5, 10.0), std::out_of_range);
}

TEST(CdrEdge, TooFewEdgesThrows) {
  ga::CdrConfig c;
  c.ui_ps = 312.5;
  ga::CdrReceiver rx(c);
  gs::Waveform flat(0.0, 1.0, std::vector<double>(1000, -0.4));
  EXPECT_THROW(rx.recover(flat, 0.0), std::runtime_error);
}

TEST(CdrEdge, IntegratesWithDelayChannel) {
  // End to end: ATE-style data through the variable delay channel, then
  // recovered by the CDR — zero errors at a mid-range setting.
  const auto bits = gs::prbs(7, 256);
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = gs::synthesize_nrz(bits, sc);
  gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), Rng(21));
  ch.select_tap(2);
  ch.set_vctrl(0.9);
  const auto out = ch.process(stim.wf);
  ga::CdrConfig cc;
  cc.ui_ps = stim.unit_interval_ps;
  ga::CdrReceiver rx(cc);
  const auto res = rx.recover(out, 14000.0);
  EXPECT_EQ(ga::DutReceiver::best_alignment_errors(res.bits, bits, 96), 0u);
}

TEST(FreqResponseEdge, F3dbNotReachedReturnsZero) {
  std::vector<gm::FreqPoint> flat(3);
  flat[0] = {1.0, 1.0, 0.0, 0.0, 0.0};
  flat[1] = {2.0, 1.0, 0.0, 0.0, 0.0};
  flat[2] = {4.0, 1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(gm::f3db_from_response(flat), 0.0);
  EXPECT_DOUBLE_EQ(gm::f3db_from_response({}), 0.0);
}

TEST(ExtractEdgesEdge, ConstantAndTinyWaveforms) {
  gs::Waveform flat(0.0, 1.0, std::vector<double>(64, 0.2));
  EXPECT_TRUE(gs::extract_edges(flat).empty());
  gs::Waveform one(0.0, 1.0, std::vector<double>(1, 0.2));
  EXPECT_TRUE(gs::extract_edges(one).empty());
  gs::Waveform empty;
  EXPECT_TRUE(gs::extract_edges(empty).empty());
}

TEST(SynthEdge, SingleBitPattern) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto r = gs::synthesize_nrz({1}, sc);
  EXPECT_TRUE(r.ideal_edges_ps.empty());
  EXPECT_NEAR(r.wf.max_value(), sc.amplitude_v, 0.01);
  EXPECT_NEAR(r.wf.min_value(), sc.amplitude_v, 0.01);  // never goes low
}

TEST(DelayMeterEdge, IdenticalWaveformsGiveZero) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto r = gs::synthesize_nrz(gs::prbs(7, 32), sc);
  const auto d = gm::measure_delay(r.wf, r.wf);
  EXPECT_NEAR(d.mean_ps, 0.0, 1e-9);
  EXPECT_NEAR(d.stddev_ps, 0.0, 1e-9);
}
