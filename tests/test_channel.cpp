// Tests for the combined channel (Fig. 10), the DAC and the calibration
// engine — programming-accuracy and range requirements.
#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/channel.h"
#include "core/dac.h"
#include "core/requirements.h"
#include "measure/delay_meter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

namespace {

gs::SynthResult stim(double rate = 3.2, std::size_t bits = 64) {
  gs::SynthConfig sc;
  sc.rate_gbps = rate;
  return gs::synthesize_nrz(gs::prbs(7, bits), sc);
}

// Calibrating is the slow part; do it once for the whole suite.
struct CalFixture {
  gs::SynthResult s = stim();
  gc::VariableDelayChannel ch{gc::ChannelConfig::prototype(), Rng(42)};
  gc::ChannelCalibration cal;
  CalFixture() {
    gc::DelayCalibrator::Options o;
    o.n_vctrl_points = 13;
    cal = gc::DelayCalibrator(o).calibrate(ch, s.wf);
  }
};

CalFixture& fixture() {
  static CalFixture f;
  return f;
}

}  // namespace

TEST(Dac, Basics) {
  gc::Dac d;  // 12-bit, 1.5 V
  EXPECT_EQ(d.bits(), 12);
  EXPECT_EQ(d.max_code(), 4095u);
  EXPECT_NEAR(d.lsb_v(), 1.5 / 4095.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.voltage(0), 0.0);
  EXPECT_DOUBLE_EQ(d.voltage(4095), 1.5);
}

TEST(Dac, RoundTrip) {
  gc::Dac d;
  for (double v : {0.0, 0.1234, 0.75, 1.2, 1.5}) {
    EXPECT_NEAR(d.quantize(v), v, d.lsb_v() / 2.0 + 1e-12);
  }
}

TEST(Dac, Clamps) {
  gc::Dac d;
  EXPECT_EQ(d.code_for(-1.0), 0u);
  EXPECT_EQ(d.code_for(99.0), 4095u);
  EXPECT_DOUBLE_EQ(d.voltage(99999), 1.5);
}

TEST(Dac, RejectsBadConfig) {
  EXPECT_THROW(gc::Dac(2, 1.5), std::invalid_argument);
  EXPECT_THROW(gc::Dac(12, 0.0), std::invalid_argument);
}

TEST(Channel, ProgrammingInterface) {
  gc::VariableDelayChannel ch(gc::ChannelConfig{}, Rng(1));
  ch.select_tap(2);
  ch.set_vctrl(0.6);
  EXPECT_EQ(ch.selected_tap(), 2);
  EXPECT_DOUBLE_EQ(ch.vctrl(), 0.6);
  EXPECT_DOUBLE_EQ(ch.vctrl_max(), 1.5);
}

TEST(Channel, CalibrationRangesMatchPaper) {
  const auto& f = fixture();
  // Paper: fine ~50 ps, total ~140 ps (>= the 120 ps requirement).
  EXPECT_GT(f.cal.fine_range_ps(), 40.0);
  EXPECT_LT(f.cal.fine_range_ps(), 65.0);
  EXPECT_GT(f.cal.total_range_ps(), gc::Requirements::kTotalRangePs);
  EXPECT_LT(f.cal.total_range_ps(), 170.0);
}

TEST(Channel, CalibrationTapOffsets) {
  const auto& f = fixture();
  // Prototype trims: 0 / 33 / 70 / 95 ps (Fig. 9).
  EXPECT_NEAR(f.cal.tap_offset_ps[0], 0.0, 0.1);
  EXPECT_NEAR(f.cal.tap_offset_ps[1], 33.0, 1.5);
  EXPECT_NEAR(f.cal.tap_offset_ps[2], 70.0, 1.5);
  EXPECT_NEAR(f.cal.tap_offset_ps[3], 95.0, 1.5);
}

TEST(Channel, SubPicosecondResolution) {
  // 12-bit DAC over the fine curve: worst-case step well below 1 ps.
  const auto& f = fixture();
  EXPECT_LT(f.cal.resolution_ps(), gc::Requirements::kResolutionPs);
  EXPECT_GT(f.cal.resolution_ps(), 0.0);
}

TEST(Channel, FineCurveShapeMatchesFig7) {
  const auto& f = fixture();
  const auto& c = f.cal.fine_curve;
  EXPECT_TRUE(c.is_monotonic_increasing());
  // Mid-range slope flattens toward the extremes (Fig. 7): central slope
  // must exceed the average end-segment slope.
  const auto& xs = c.xs();
  const auto& ys = c.ys();
  const std::size_t n = xs.size();
  const double end_slope =
      ((ys[1] - ys[0]) / (xs[1] - xs[0]) +
       (ys[n - 1] - ys[n - 2]) / (xs[n - 1] - xs[n - 2])) / 2.0;
  EXPECT_GT(c.mid_slope(0.4), end_slope * 1.3);
}

TEST(Channel, PlanHitsTargetsAcrossRange) {
  const auto& f = fixture();
  for (double target : {5.0, 25.0, 50.0, 80.0, 110.0, 130.0}) {
    const auto s = f.cal.plan(target);
    EXPECT_NEAR(s.predicted_delay_ps, target, 0.5) << "target " << target;
    EXPECT_GE(s.tap, 0);
    EXPECT_LE(s.tap, 3);
  }
}

TEST(Channel, PlanClampsOutOfRange) {
  const auto& f = fixture();
  const auto lo = f.cal.plan(-50.0);
  EXPECT_NEAR(lo.predicted_delay_ps, 0.0, 1.5);
  const auto hi = f.cal.plan(1e6);
  EXPECT_NEAR(hi.predicted_delay_ps, f.cal.total_range_ps(), 1.5);
}

TEST(Channel, ProgrammedDelayVerifiedOnHardware) {
  // Close the loop: program a target through the plan and measure it on
  // the simulated channel. Error budget ~1 ps (measurement noise incl.).
  auto& f = fixture();
  for (double target : {20.0, 64.0, 105.0}) {
    const auto set = f.cal.plan(target);
    f.ch.select_tap(set.tap);
    f.ch.set_vctrl(set.vctrl_v);
    const auto out = f.ch.process(f.s.wf);
    const double rel =
        gm::measure_delay(f.s.wf, out).mean_ps - f.cal.base_latency_ps;
    EXPECT_NEAR(rel, target, 1.5) << "target " << target;
  }
}

TEST(Channel, PredictedLatencyConsistent) {
  const auto& f = fixture();
  const double lat = f.cal.predicted_latency_ps(1, 0.75);
  EXPECT_NEAR(lat,
              f.cal.base_latency_ps + f.cal.tap_offset_ps[1] +
                  f.cal.fine_curve(0.75),
              1e-9);
  EXPECT_THROW(f.cal.predicted_delay_ps(9, 0.0), std::invalid_argument);
}

TEST(Channel, CalibrationRestoresProgramming) {
  gc::VariableDelayChannel ch(gc::ChannelConfig{}, Rng(9));
  ch.select_tap(3);
  ch.set_vctrl(1.1);
  const auto s = stim(3.2, 32);
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 5;
  (void)gc::DelayCalibrator(o).calibrate(ch, s.wf);
  EXPECT_EQ(ch.selected_tap(), 3);
  EXPECT_DOUBLE_EQ(ch.vctrl(), 1.1);
}

TEST(Channel, CalibratorValidatesOptions) {
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 2;
  gc::VariableDelayChannel ch(gc::ChannelConfig{}, Rng(9));
  const auto s = stim(3.2, 16);
  EXPECT_THROW(gc::DelayCalibrator(o).calibrate(ch, s.wf),
               std::invalid_argument);
}
