// Tests for the N-stage fine-adjustment delay line (paper Fig. 6/7).
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.h"
#include "core/fine_delay.h"
#include "measure/delay_meter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

namespace {
gs::SynthResult stim(double rate = 3.2, std::size_t bits = 48) {
  gs::SynthConfig sc;
  sc.rate_gbps = rate;
  return gs::synthesize_nrz(gs::prbs(7, bits), sc);
}
}  // namespace

TEST(FineDelayLine, RejectsBadStageCount) {
  gc::FineDelayConfig c;
  c.n_stages = 0;
  EXPECT_THROW(gc::FineDelayLine(c, Rng(1)), std::invalid_argument);
}

TEST(FineDelayLine, VctrlFansOutToAllStages) {
  gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(1));
  line.set_vctrl(0.9);
  for (int i = 0; i < line.n_stages(); ++i)
    EXPECT_DOUBLE_EQ(line.stage_vctrl(i), 0.9);
  line.set_stage_vctrl(2, 0.1);
  EXPECT_DOUBLE_EQ(line.stage_vctrl(2), 0.1);
  EXPECT_DOUBLE_EQ(line.stage_vctrl(0), 0.9);
}

TEST(FineDelayLine, OutputIsFullSwing) {
  const auto s = stim();
  gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(1));
  for (double v : {0.0, 1.5}) {
    line.set_vctrl(v);
    const auto out = line.process(s.wf);
    EXPECT_NEAR(out.peak_to_peak() / 2.0, 0.4, 0.05) << "vctrl=" << v;
  }
}

TEST(FineDelayLine, DelayMonotoneInVctrl) {
  const auto s = stim();
  gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(1));
  double prev = -1e18;
  for (int i = 0; i <= 6; ++i) {
    line.set_vctrl(1.5 * i / 6.0);
    const auto out = line.process(s.wf);
    const double d = gm::measure_delay(s.wf, out).mean_ps;
    EXPECT_GT(d, prev - 0.8) << "step " << i;  // allow measurement noise
    prev = d;
  }
}

TEST(FineDelayLine, FourStageRangeMatchesPaper) {
  // Paper: ~50-56 ps fine range for the 4-stage line at low GHz rates.
  const auto s = stim(3.2, 64);
  gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(1));
  const gc::DelayCalibrator cal;
  const double range = cal.measure_fine_range(line, s.wf);
  EXPECT_GT(range, 40.0);
  EXPECT_LT(range, 65.0);
}

TEST(FineDelayLine, TwoStageRangeIsHalf) {
  const auto s = stim(3.2, 64);
  gc::FineDelayLine four(gc::FineDelayConfig{}, Rng(1));
  gc::FineDelayLine two(gc::FineDelayConfig::two_stage(), Rng(1));
  const gc::DelayCalibrator cal;
  const double r4 = cal.measure_fine_range(four, s.wf);
  const double r2 = cal.measure_fine_range(two, s.wf);
  EXPECT_NEAR(r2, r4 / 2.0, 8.0);
  EXPECT_GT(r2, 18.0);
}

TEST(FineDelayLine, StepWithVctrlModulates) {
  // Driving Vctrl during the run changes edge timing (jitter-injection
  // primitive): a slow square modulation on Vctrl must move edges.
  const auto s = stim(3.2, 64);
  gc::FineDelayConfig cfg;
  cfg.stage.noise_sigma_v = 0.0;
  cfg.output_stage.noise_sigma_v = 0.0;
  gc::FineDelayLine line(cfg, Rng(1));
  line.reset();
  gs::Waveform out(s.wf.t0_ps(), s.wf.dt_ps(), s.wf.size());
  for (std::size_t i = 0; i < s.wf.size(); ++i) {
    const double t = s.wf.time_at(i);
    const double v = (std::fmod(t, 4000.0) < 2000.0) ? 0.2 : 1.3;
    out[i] = line.step_with_vctrl(s.wf[i], v, s.wf.dt_ps());
  }
  const auto d = gm::measure_delay(s.wf, out);
  // Spread across edges must reflect the two delay states (~30 ps apart).
  EXPECT_GT(d.max_ps - d.min_ps, 15.0);
}

class FineDelayStageSweep : public ::testing::TestWithParam<int> {};

TEST_P(FineDelayStageSweep, RangeGrowsWithStageCount) {
  const int n = GetParam();
  const auto s = stim(3.2, 48);
  gc::FineDelayConfig cfg;
  cfg.n_stages = n;
  gc::FineDelayLine line(cfg, Rng(1));
  const gc::DelayCalibrator cal;
  const double range = cal.measure_fine_range(line, s.wf);
  // Roughly 12-14 ps per stage at this rate.
  EXPECT_GT(range, 8.0 * n);
  EXPECT_LT(range, 20.0 * n);
}

INSTANTIATE_TEST_SUITE_P(StageCounts, FineDelayStageSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class FineDelayRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(FineDelayRateSweep, MonotoneAndUsableAcrossRates) {
  // Application requirement: works from < 1 Gbps to 6.4 Gbps NRZ.
  const double rate = GetParam();
  const auto s = stim(rate, 48);
  gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(2));
  const gc::DelayCalibrator cal;
  const double range = cal.measure_fine_range(line, s.wf);
  EXPECT_GT(range, 33.0) << "rate " << rate;  // must cover a coarse step
}

INSTANTIATE_TEST_SUITE_P(Rates, FineDelayRateSweep,
                         ::testing::Values(0.8, 1.6, 3.2, 4.8, 6.4));
