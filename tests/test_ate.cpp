// Tests for the ATE substrate: channels, bus, DUT receiver, and the
// end-to-end deskew controller loop (the Fig. 2 scenario).
#include <gtest/gtest.h>

#include <cmath>

#include "ate/ate_channel.h"
#include "ate/bus.h"
#include "ate/controller.h"
#include "ate/dut.h"
#include "core/requirements.h"
#include "measure/delay_meter.h"
#include "signal/edges.h"
#include "util/rng.h"

namespace ga = gdelay::ate;
namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

TEST(AteChannel, LaunchOffsetCombinesSkewAndSteps) {
  ga::AteChannelConfig cfg;
  cfg.static_skew_ps = 37.0;
  cfg.programmable_step_ps = 100.0;
  ga::AteChannel ch(cfg, Rng(1));
  EXPECT_DOUBLE_EQ(ch.launch_offset_ps(), 37.0);
  ch.program_delay_steps(-1);
  EXPECT_DOUBLE_EQ(ch.launch_offset_ps(), -63.0);
}

TEST(AteChannel, StepsForRounds) {
  ga::AteChannelConfig cfg;
  ga::AteChannel ch(cfg, Rng(1));
  EXPECT_EQ(ch.steps_for(37.0), 0);
  EXPECT_EQ(ch.steps_for(70.0), 1);
  EXPECT_EQ(ch.steps_for(-149.0), -1);
  EXPECT_EQ(ch.steps_for(-151.0), -2);
}

TEST(AteChannel, DriveAppliesSkewToEdges) {
  ga::AteChannelConfig cfg;
  cfg.static_skew_ps = 80.0;
  cfg.rj_sigma_ps = 0.0;
  ga::AteChannel ch(cfg, Rng(2));
  const auto r = ch.drive(gs::prbs(7, 32));
  ASSERT_FALSE(r.ideal_edges_ps.empty());
  // Actual edges lag the (unskewed) ideal grid by the skew.
  for (std::size_t i = 0; i < r.ideal_edges_ps.size(); ++i)
    EXPECT_NEAR(r.actual_edges_ps[i] - r.ideal_edges_ps[i], 80.0, 1e-9);
}

TEST(AteBus, DrawsSkewsWithinSpan) {
  ga::AteBusConfig cfg;
  cfg.n_channels = 8;
  cfg.skew_span_ps = 300.0;
  ga::AteBus bus(cfg, Rng(3));
  for (int i = 0; i < bus.n_channels(); ++i) {
    EXPECT_LE(std::abs(bus.channel(i).static_skew_ps()), 150.0);
  }
  EXPECT_GT(bus.launch_skew_span_ps(), 0.0);
  EXPECT_LE(bus.launch_skew_span_ps(), 300.0);
}

TEST(AteBus, NativeDeskewLeavesQuantizationResidue) {
  // The paper's motivation: the ATE's own deskew (100 ps steps) cannot do
  // better than +/- half a step.
  ga::AteBusConfig cfg;
  cfg.n_channels = 8;
  cfg.skew_span_ps = 400.0;
  ga::AteBus bus(cfg, Rng(4));
  const double before = bus.launch_skew_span_ps();
  bus.apply_native_deskew();
  const double after = bus.launch_skew_span_ps();
  EXPECT_LT(after, before);
  EXPECT_LE(after, 100.0 + 1e-9);  // within one step
  EXPECT_GT(after, 5.0);           // but nowhere near ps-level
}

TEST(AteBus, DriveValidatesPatternCount) {
  ga::AteBusConfig cfg;
  cfg.n_channels = 2;
  ga::AteBus bus(cfg, Rng(5));
  EXPECT_THROW(bus.drive({gs::prbs(7, 8)}), std::invalid_argument);
}

TEST(DutReceiver, SamplesBitsAtStrobes) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const gs::BitPattern bits{1, 0, 1, 1, 0, 0, 1, 0};
  const auto r = gs::synthesize_nrz(bits, sc);
  ga::DutReceiver rx;
  std::vector<double> strobes;
  const double first_center = sc.lead_in_ps + 0.5 * r.unit_interval_ps;
  for (std::size_t i = 0; i < bits.size(); ++i)
    strobes.push_back(first_center + r.unit_interval_ps * static_cast<double>(i));
  const auto res = rx.sample(r.wf, strobes);
  EXPECT_EQ(res.bits, bits);
  EXPECT_EQ(res.violations, 0u);
}

TEST(DutReceiver, FlagsSetupHoldViolations) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto r = gs::synthesize_nrz(gs::alternating(16), sc);
  ga::DutReceiverConfig cfg;
  cfg.setup_ps = 20.0;
  cfg.hold_ps = 20.0;
  ga::DutReceiver rx(cfg);
  // Strobe exactly on the edges: every strobe violates.
  std::vector<double> strobes;
  for (int i = 1; i < 8; ++i)
    strobes.push_back(sc.lead_in_ps + r.unit_interval_ps * i);
  const auto res = rx.sample(r.wf, strobes);
  EXPECT_EQ(res.violations, strobes.size());
}

TEST(DutReceiver, BestAlignmentToleratesLatencyShift) {
  const gs::BitPattern expected{1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  gs::BitPattern got(expected.begin() + 2, expected.end());  // shifted by 2
  got.push_back(0);
  got.push_back(1);
  EXPECT_EQ(ga::DutReceiver::best_alignment_errors(got, expected), 0u);
}

TEST(DutReceiver, PhaseScanFindsOpenWindow) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto bits = gs::prbs(7, 48);
  const auto r = gs::synthesize_nrz(bits, sc);
  ga::DutReceiver rx;
  const auto scan = rx.scan_phase(r.wf, bits, r.unit_interval_ps,
                                  sc.lead_in_ps, 40, 32);
  // Clean signal: a wide open window (most of the UI minus setup/hold).
  EXPECT_GT(scan.window_ps, 0.5 * r.unit_interval_ps);
  EXPECT_EQ(scan.points.size(), 32u);
}

TEST(DutReceiver, IntersectionShrinksWindow) {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto bits = gs::prbs(7, 48);
  const auto a = gs::synthesize_nrz(bits, sc);
  ga::DutReceiver rx;
  const double ui = a.unit_interval_ps;
  const auto sa = rx.scan_phase(a.wf, bits, ui, sc.lead_in_ps, 40, 32);
  // Second channel shifted by half a UI: individually open, jointly
  // nearly closed.
  const auto sb = rx.scan_phase(a.wf.shifted(ui / 2.0), bits, ui,
                                sc.lead_in_ps, 40, 32);
  const auto both = ga::intersect_scans({sa, sb}, ui);
  EXPECT_LT(both.window_ps, std::min(sa.window_ps, sb.window_ps) * 0.6);
}

TEST(DeskewController, EndToEndMeetsSkewRequirement) {
  // The headline application: a 4-lane 6.4 Gbps bus with +/-100 ps skew,
  // deskewed to < 5 ps channel-to-channel through the delay channels.
  ga::AteBusConfig bc;
  bc.n_channels = 4;
  bc.rate_gbps = 6.4;
  bc.skew_span_ps = 120.0;  // within the 140 ps corrector range
  bc.rj_sigma_ps = 0.8;
  ga::AteBus bus(bc, Rng(11));

  std::vector<gc::VariableDelayChannel> delays;
  Rng rng(12);
  for (int i = 0; i < bc.n_channels; ++i)
    delays.emplace_back(gc::ChannelConfig::prototype(),
                        rng.fork(static_cast<std::uint64_t>(i)));

  ga::DeskewController::Options opt;
  opt.training = gs::prbs(7, 96);
  opt.calibration.n_vctrl_points = 9;
  ga::DeskewController ctl(bus, delays, opt);
  const auto rep = ctl.run();

  EXPECT_GT(rep.span_before_ps, 30.0);
  EXPECT_TRUE(rep.plan.feasible);
  EXPECT_LT(rep.span_after_ps, gc::Requirements::kChannelSkewPs);
  EXPECT_LT(rep.span_after_ps, rep.span_before_ps / 5.0);
}

TEST(DeskewController, RequiresMatchingChannelCount) {
  ga::AteBusConfig bc;
  bc.n_channels = 2;
  ga::AteBus bus(bc, Rng(1));
  std::vector<gc::VariableDelayChannel> delays;
  delays.emplace_back(gc::ChannelConfig{}, Rng(2));
  EXPECT_THROW(ga::DeskewController(bus, delays), std::invalid_argument);
}
