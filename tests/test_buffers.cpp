// Tests for the buffer models — including the paper's central claim: the
// propagation delay of the variable-gain buffer depends (monotonically,
// roughly linearly) on the programmed amplitude, and the effect survives
// the amplitude-recovery output stage.
#include <gtest/gtest.h>

#include <cmath>

#include "analog/buffer.h"
#include "measure/delay_meter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace ga = gdelay::analog;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

namespace {

ga::VgaBufferConfig quiet_vga() {
  ga::VgaBufferConfig c;
  c.noise_sigma_v = 0.0;  // deterministic timing tests
  return c;
}

ga::LimitingBufferConfig quiet_limiter() {
  ga::LimitingBufferConfig c;
  c.noise_sigma_v = 0.0;
  return c;
}

gs::SynthResult stimulus(double rate = 3.2, std::size_t bits = 48) {
  gs::SynthConfig sc;
  sc.rate_gbps = rate;
  return gs::synthesize_nrz(gs::prbs(7, bits), sc);
}

double mean_delay(const gs::Waveform& ref, const gs::Waveform& out) {
  return gm::measure_delay(ref, out).mean_ps;
}

}  // namespace

TEST(VgaBuffer, RejectsBadConfig) {
  ga::VgaBufferConfig c = quiet_vga();
  c.amp_min_v = 0.0;
  EXPECT_THROW(ga::VariableGainBuffer(c, Rng(1)), std::invalid_argument);
  c = quiet_vga();
  c.amp_max_v = c.amp_min_v;
  EXPECT_THROW(ga::VariableGainBuffer(c, Rng(1)), std::invalid_argument);
  c = quiet_vga();
  c.vctrl_max_v = 0.0;
  EXPECT_THROW(ga::VariableGainBuffer(c, Rng(1)), std::invalid_argument);
}

TEST(VgaBuffer, AmplitudeControlCurve) {
  ga::VariableGainBuffer b(quiet_vga(), Rng(1));
  const auto& cfg = b.config();
  EXPECT_NEAR(b.amplitude_for(0.0), cfg.amp_min_v, 1e-9);
  EXPECT_NEAR(b.amplitude_for(cfg.vctrl_max_v), cfg.amp_max_v, 1e-9);
  // Monotone in between.
  double prev = 0.0;
  for (int i = 0; i <= 20; ++i) {
    const double a = b.amplitude_for(cfg.vctrl_max_v * i / 20.0);
    if (i > 0) EXPECT_GT(a, prev);
    prev = a;
  }
  // Clamps outside the control range.
  EXPECT_DOUBLE_EQ(b.amplitude_for(-1.0), b.amplitude_for(0.0));
  EXPECT_DOUBLE_EQ(b.amplitude_for(9.0), b.amplitude_for(cfg.vctrl_max_v));
}

TEST(VgaBuffer, OutputSwingTracksProgrammedAmplitude) {
  const auto stim = stimulus();
  for (double v : {0.0, 0.75, 1.5}) {
    ga::VariableGainBuffer b(quiet_vga(), Rng(1));
    b.set_vctrl(v);
    const auto out = b.process(stim.wf);
    const double half_swing = out.peak_to_peak() / 2.0;
    EXPECT_NEAR(half_swing, b.amplitude_for(v), 0.06 * b.amplitude_for(v))
        << "vctrl=" << v;
  }
}

TEST(VgaBuffer, DelayIncreasesWithAmplitude) {
  // The headline effect (paper Fig. 4/5): larger programmed amplitude ->
  // longer 50 % propagation delay, without the delay being stored anywhere.
  const auto stim = stimulus();
  double prev = -1e9;
  for (int i = 0; i <= 6; ++i) {
    ga::VariableGainBuffer b(quiet_vga(), Rng(1));
    b.set_vctrl(1.5 * i / 6.0);
    const auto out = b.process(stim.wf);
    gm::DelayMeterOptions o;
    o.hysteresis_v = 0.02;  // small-swing intermediate signal
    const double d = gm::measure_delay(stim.wf, out, o).mean_ps;
    EXPECT_GT(d, prev) << "vctrl step " << i;
    prev = d;
  }
}

TEST(VgaBuffer, PerStageRangeIsPicoseconds) {
  // One stage contributes roughly 10 ps (the paper observed ~10 ps).
  const auto stim = stimulus();
  gm::DelayMeterOptions o;
  o.hysteresis_v = 0.02;
  ga::VariableGainBuffer lo(quiet_vga(), Rng(1));
  lo.set_vctrl(0.0);
  ga::VariableGainBuffer hi(quiet_vga(), Rng(1));
  hi.set_vctrl(1.5);
  const double range = gm::measure_delay(stim.wf, hi.process(stim.wf), o).mean_ps -
                       gm::measure_delay(stim.wf, lo.process(stim.wf), o).mean_ps;
  EXPECT_GT(range, 5.0);
  EXPECT_LT(range, 25.0);
}

TEST(VgaBuffer, ResetClearsState) {
  ga::VariableGainBuffer b(quiet_vga(), Rng(1));
  const auto stim = stimulus(3.2, 16);
  const auto a = b.process(stim.wf);  // process() resets first
  const auto c = b.process(stim.wf);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], c[i]);
}

TEST(LimitingBuffer, RestoresFullSwing) {
  // Small input swing in, full logic swing out — amplitude recovery.
  const auto stim = stimulus();
  ga::VariableGainBuffer vga(quiet_vga(), Rng(1));
  vga.set_vctrl(0.0);  // smallest swing
  auto small = vga.process(stim.wf);
  ga::LimitingBuffer lim(quiet_limiter(), Rng(2));
  const auto out = lim.process(small);
  EXPECT_NEAR(out.peak_to_peak() / 2.0, quiet_limiter().out_swing_v, 0.05);
}

TEST(LimitingBuffer, PreservesEdgeTiming) {
  // The output stage must carry the input's timing: two inputs shifted by
  // X ps produce outputs shifted by X ps (the skew range propagates
  // through, as Fig. 5 shows).
  const auto stim = stimulus();
  ga::VariableGainBuffer lo(quiet_vga(), Rng(1));
  lo.set_vctrl(0.0);
  ga::VariableGainBuffer hi(quiet_vga(), Rng(1));
  hi.set_vctrl(1.5);
  gm::DelayMeterOptions small_sig;
  small_sig.hysteresis_v = 0.02;
  const auto wf_lo = lo.process(stim.wf);
  const auto wf_hi = hi.process(stim.wf);
  const double in_shift =
      gm::measure_delay(wf_lo, wf_hi, small_sig).mean_ps;

  ga::LimitingBuffer la(quiet_limiter(), Rng(2));
  ga::LimitingBuffer lb(quiet_limiter(), Rng(2));
  const double out_shift =
      mean_delay(la.process(wf_lo), lb.process(wf_hi));
  EXPECT_NEAR(out_shift, in_shift, 2.0);
}

TEST(LimitingBuffer, RejectsBadSwing) {
  ga::LimitingBufferConfig c = quiet_limiter();
  c.out_swing_v = 0.0;
  EXPECT_THROW(ga::LimitingBuffer(c, Rng(1)), std::invalid_argument);
}

TEST(VgaBuffer, NoiseAddsJitterMonotonically) {
  // More internal noise -> more delay spread edge to edge.
  const auto stim = stimulus(3.2, 96);
  double prev = -1.0;
  for (double sigma : {0.0, 0.01, 0.03}) {
    ga::VgaBufferConfig c = quiet_vga();
    c.noise_sigma_v = sigma;
    ga::VariableGainBuffer b(c, Rng(33));
    b.set_vctrl(0.75);
    gm::DelayMeterOptions o;
    o.hysteresis_v = 0.02;
    const double sd = gm::measure_delay(stim.wf, b.process(stim.wf), o).stddev_ps;
    EXPECT_GT(sd, prev) << "sigma=" << sigma;
    prev = sd;
  }
}
