// Tests for the edge-domain fast model and its fit against the analog one.
#include <gtest/gtest.h>

#include <chrono>

#include "core/calibration.h"
#include "fast/edge_model.h"
#include "measure/delay_meter.h"
#include "measure/jitter.h"
#include "measure/stats.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gc = gdelay::core;
namespace gf = gdelay::fast;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

namespace {

gf::EdgeModelParams synthetic_params() {
  gf::EdgeModelParams p;
  p.base_latency_ps = 300.0;
  p.fine_curve = gdelay::util::Curve({0.0, 0.75, 1.5}, {0.0, 30.0, 55.0});
  p.tap_offset_ps = {0.0, 33.0, 66.0, 99.0};
  p.added_rj_sigma_ps = 0.0;
  return p;
}

}  // namespace

TEST(FastChannel, RejectsEmptyCurve) {
  gf::EdgeModelParams p;
  p.tap_offset_ps = {0.0, 33.0, 66.0, 99.0};
  EXPECT_THROW(gf::FastChannel(p, Rng(1)), std::invalid_argument);
}

TEST(FastChannel, LatencyComposition) {
  gf::FastChannel ch(synthetic_params(), Rng(1));
  ch.select_tap(2);
  ch.set_vctrl(0.75);
  EXPECT_NEAR(ch.latency_ps(), 300.0 + 66.0 + 30.0, 1e-9);
  EXPECT_THROW(ch.select_tap(4), std::invalid_argument);
}

TEST(FastChannel, TransformShiftsEdges) {
  gf::FastChannel ch(synthetic_params(), Rng(1));
  ch.select_tap(1);
  ch.set_vctrl(1.5);
  const std::vector<double> in{100.0, 300.0, 450.0};
  const auto out = ch.transform(in);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_NEAR(out[i] - in[i], 300.0 + 33.0 + 55.0, 1e-9);
}

TEST(FastChannel, AddedJitterHasRequestedSigma) {
  auto p = synthetic_params();
  p.added_rj_sigma_ps = 2.0;
  gf::FastChannel ch(p, Rng(2));
  std::vector<double> in;
  for (int i = 0; i < 4000; ++i) in.push_back(200.0 * i);
  const auto out = ch.transform(in);
  std::vector<double> deltas;
  for (std::size_t i = 0; i < in.size(); ++i)
    deltas.push_back(out[i] - in[i] - ch.latency_ps());
  const auto s = gm::summarize(deltas);
  EXPECT_NEAR(s.stddev, 2.0, 0.15);
  EXPECT_NEAR(s.mean, 0.0, 0.15);
}

TEST(FastChannel, FitMatchesAnalogModel) {
  // Fit the edge model from the analog channel, then check that both
  // predict the same delay at fresh settings (not used during the fit).
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 64), sc);
  gc::VariableDelayChannel analog(gc::ChannelConfig::prototype(), Rng(5));
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 9;
  const auto params = gf::fit_edge_model(analog, stim.wf, stim.unit_interval_ps, o);
  gf::FastChannel fast(params, Rng(6));

  for (const auto& [tap, vctrl] : std::vector<std::pair<int, double>>{
           {0, 0.4}, {1, 1.1}, {3, 0.8}}) {
    analog.select_tap(tap);
    analog.set_vctrl(vctrl);
    fast.select_tap(tap);
    fast.set_vctrl(vctrl);
    const auto out = analog.process(stim.wf);
    const double measured = gm::measure_delay(stim.wf, out).mean_ps;
    EXPECT_NEAR(fast.latency_ps(), measured, 2.0)
        << "tap " << tap << " vctrl " << vctrl;
  }
  EXPECT_GT(params.added_rj_sigma_ps, 0.2);
  EXPECT_LT(params.added_rj_sigma_ps, 6.0);
}

TEST(FastChannel, OrdersOfMagnitudeFasterThanAnalog) {
  gs::SynthConfig sc;
  sc.rate_gbps = 6.4;
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 128), sc);
  gc::VariableDelayChannel analog(gc::ChannelConfig{}, Rng(7));
  gf::FastChannel fast(synthetic_params(), Rng(8));
  const auto edges = gs::edge_times(gs::extract_edges(stim.wf));

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  (void)analog.process(stim.wf);
  const auto t1 = clock::now();
  for (int i = 0; i < 100; ++i) (void)fast.transform(edges);
  const auto t2 = clock::now();
  const double analog_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  const double fast_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count() / 100.0;
  EXPECT_LT(fast_us * 50.0, analog_us);  // >= 50x faster
}
