// Tests for the eye-diagram instrument.
#include <gtest/gtest.h>

#include "measure/eye.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gm = gdelay::meas;
namespace gs = gdelay::sig;
using gdelay::util::Rng;

namespace {
gs::SynthResult stim(double rj_sigma = 0.0, std::size_t bits = 200) {
  gs::SynthConfig sc;
  sc.rate_gbps = 4.8;
  sc.rj_sigma_ps = rj_sigma;
  Rng rng(5);
  return gs::synthesize_nrz(gs::prbs(7, bits), sc,
                            rj_sigma > 0.0 ? &rng : nullptr);
}
}  // namespace

TEST(EyeDiagram, RejectsBadConfig) {
  EXPECT_THROW(gm::EyeDiagram(0.0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(gm::EyeDiagram(100.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(gm::EyeDiagram(100.0, -1.0, 1.0, 1, 8), std::invalid_argument);
}

TEST(EyeDiagram, AccumulatesSamples) {
  const auto r = stim();
  gm::EyeDiagram eye(r.unit_interval_ps, -0.5, 0.5, 48, 16);
  eye.accumulate(r.wf);
  EXPECT_GT(eye.total(), 1000u);
}

TEST(EyeDiagram, AsciiHasExpectedShape) {
  const auto r = stim();
  gm::EyeDiagram eye(r.unit_interval_ps, -0.5, 0.5, 48, 16);
  eye.accumulate(r.wf);
  const auto art = eye.ascii();
  // 16 rows, each 48 wide + newline.
  EXPECT_EQ(art.size(), 16u * 49u);
  EXPECT_NE(art.find('@'), std::string::npos);  // dense rails
}

TEST(EyeMetrics, CleanEyeIsWideOpen) {
  const auto r = stim();
  const auto m = gm::measure_eye(r.wf, r.unit_interval_ps);
  // No jitter: eye width ~ full UI, height ~ full swing.
  EXPECT_GT(m.eye_width_ps, 0.95 * r.unit_interval_ps);
  EXPECT_GT(m.eye_height_v, 0.7);
  EXPECT_NEAR(m.level_high_v, 0.4, 0.03);
  EXPECT_NEAR(m.level_low_v, -0.4, 0.03);
}

TEST(EyeMetrics, JitterClosesEyeHorizontally) {
  const auto clean = stim(0.0);
  const auto dirty = stim(3.0);
  const auto mc = gm::measure_eye(clean.wf, clean.unit_interval_ps);
  const auto md = gm::measure_eye(dirty.wf, dirty.unit_interval_ps);
  EXPECT_LT(md.eye_width_ps, mc.eye_width_ps - 5.0);
  EXPECT_GT(md.jitter.tj_pp_ps, mc.jitter.tj_pp_ps + 5.0);
}

TEST(EyeMetrics, WidthPlusTjIsUi) {
  const auto r = stim(2.0);
  const auto m = gm::measure_eye(r.wf, r.unit_interval_ps);
  EXPECT_NEAR(m.eye_width_ps + m.jitter.tj_pp_ps, r.unit_interval_ps, 1e-9);
}
