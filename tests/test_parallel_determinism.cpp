// The determinism contract of the parallel calibration engine: a
// GDELAY_THREADS=1 run and an N-thread run of the same bring-up flow
// must produce byte-identical calibration results. CI runs this suite
// with GDELAY_THREADS=4 as well; the explicit set_thread_count calls
// below make the comparison self-contained either way.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/batch.h"
#include "core/board.h"
#include "core/calibration.h"
#include "core/fine_delay.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gu = gdelay::util;
using gdelay::util::Rng;

namespace {

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ bitwise";
}

void expect_identical(const gc::ChannelCalibration& a,
                      const gc::ChannelCalibration& b) {
  EXPECT_TRUE(bits_equal(a.base_latency_ps, b.base_latency_ps));
  for (std::size_t t = 0; t < 4; ++t)
    EXPECT_TRUE(bits_equal(a.tap_offset_ps[t], b.tap_offset_ps[t]));
  ASSERT_EQ(a.fine_curve.xs().size(), b.fine_curve.xs().size());
  for (std::size_t i = 0; i < a.fine_curve.xs().size(); ++i) {
    EXPECT_TRUE(bits_equal(a.fine_curve.xs()[i], b.fine_curve.xs()[i]));
    EXPECT_TRUE(bits_equal(a.fine_curve.ys()[i], b.fine_curve.ys()[i]));
  }
}

gs::SynthResult stimulus() {
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  return gs::synthesize_nrz(gs::prbs(7, 48), sc);
}

}  // namespace

TEST(ParallelDeterminism, BoardCalibrateIsBitIdenticalAcrossThreadCounts) {
  const auto stim = stimulus();
  gc::DelayBoardConfig bcfg;
  bcfg.n_channels = 3;
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 5;

  gc::DelayBoard board(bcfg, Rng(42));
  gu::set_thread_count(1);
  const std::vector<gc::ChannelCalibration> serial =
      board.calibrate(stim.wf, o);

  for (int threads : {2, 4, 8}) {
    gu::set_thread_count(threads);
    const std::vector<gc::ChannelCalibration> parallel =
        board.calibrate(stim.wf, o);
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    for (std::size_t c = 0; c < serial.size(); ++c)
      expect_identical(serial[c], parallel[c]);
  }
  gu::set_thread_count(1);
}

TEST(ParallelDeterminism, FineCurveSweepIsBitIdenticalAcrossThreadCounts) {
  const auto stim = stimulus();
  gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(7));
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 7;
  const gc::DelayCalibrator cal(o);

  gu::set_thread_count(1);
  const auto serial = cal.measure_fine_curve(line, stim.wf);
  gu::set_thread_count(4);
  const auto parallel = cal.measure_fine_curve(line, stim.wf);
  gu::set_thread_count(1);

  ASSERT_EQ(serial.xs().size(), parallel.xs().size());
  for (std::size_t i = 0; i < serial.xs().size(); ++i) {
    EXPECT_TRUE(bits_equal(serial.xs()[i], parallel.xs()[i]));
    EXPECT_TRUE(bits_equal(serial.ys()[i], parallel.ys()[i]));
  }
}

TEST(ParallelDeterminism, CalibrationLeavesTheChannelUntouched) {
  const auto stim = stimulus();
  gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), Rng(3));
  ch.select_tap(2);
  ch.set_vctrl(0.9);
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 5;
  gu::set_thread_count(4);
  (void)gc::DelayCalibrator(o).calibrate(ch, stim.wf);
  gu::set_thread_count(1);
  EXPECT_EQ(ch.selected_tap(), 2);
  EXPECT_DOUBLE_EQ(ch.vctrl(), 0.9);
}

TEST(ParallelDeterminism, BatchedTrialsDrawTheSameNoiseStreamsAsSolo) {
  // MC-style trials built from fork_noise(i) substreams must see exactly
  // the same Gaussian draw sequence whether they run one at a time or
  // ride interleaved lanes of the batched executor — and distinct lanes
  // must stay decorrelated (different substream, different noise).
  const auto stim = stimulus();
  constexpr std::size_t kTrials = 5;

  std::vector<gc::FineDelayLine> solo, batched;
  for (std::size_t i = 0; i < kTrials; ++i) {
    gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(21));
    line.fork_noise(i);
    line.set_vctrl(0.6);
    solo.push_back(line);
    batched.push_back(line);
  }

  std::vector<gs::Waveform> ref;
  for (auto& line : solo) ref.push_back(line.process(stim.wf));

  gc::BatchRunner runner;
  for (auto& line : batched) runner.add(line);
  const std::vector<gs::Waveform> outs = runner.run(stim.wf);

  ASSERT_EQ(outs.size(), kTrials);
  for (std::size_t i = 0; i < kTrials; ++i) {
    ASSERT_EQ(outs[i].size(), ref[i].size());
    EXPECT_EQ(std::memcmp(outs[i].samples().data(), ref[i].samples().data(),
                          outs[i].size() * sizeof(double)),
              0)
        << "stream " << i << " diverged from its solo run";
  }
  for (std::size_t i = 1; i < kTrials; ++i)
    EXPECT_NE(std::memcmp(outs[0].samples().data(), outs[i].samples().data(),
                          outs[0].size() * sizeof(double)),
              0)
        << "stream " << i << " not decorrelated from stream 0";
}

TEST(ParallelDeterminism, RepeatedCalibrationOfSameChannelIsIdentical) {
  // Clone-based sweeps never advance the device's own RNG, so
  // calibration is a pure function of (channel, stimulus).
  const auto stim = stimulus();
  gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), Rng(11));
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 5;
  const gc::DelayCalibrator cal(o);
  gu::set_thread_count(2);
  const auto first = cal.calibrate(ch, stim.wf);
  const auto second = cal.calibrate(ch, stim.wf);
  gu::set_thread_count(1);
  expect_identical(first, second);
}
