// Property-style parameterized sweeps across seeds, rates and settings —
// the invariants that must hold for ANY instance, not just the golden
// seeds used elsewhere.
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.h"
#include "core/channel.h"
#include "core/deskew.h"
#include "core/variation.h"
#include "measure/delay_meter.h"
#include "measure/jitter.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

namespace gc = gdelay::core;
namespace gs = gdelay::sig;
namespace gm = gdelay::meas;
using gdelay::util::Rng;

// ---------------------------------------------------------------------
// Property: for any seed, a calibrated (possibly process-varied) channel
// realizes a requested delay within ~1.5 ps.
class ProgramAccuracySeeds : public ::testing::TestWithParam<int> {};

TEST_P(ProgramAccuracySeeds, CalibratedChannelHitsTarget) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 64), sc);

  gc::ProcessVariation var;
  Rng draw = rng.fork(1);
  const auto cfg = var.apply(gc::ChannelConfig::prototype(), draw);
  gc::VariableDelayChannel ch(cfg, rng.fork(2));
  gc::DelayCalibrator::Options o;
  o.n_vctrl_points = 9;
  const auto cal = gc::DelayCalibrator(o).calibrate(ch, stim.wf);

  const double target = 0.55 * cal.total_range_ps();
  const auto set = cal.plan(target);
  ch.select_tap(set.tap);
  ch.set_vctrl(set.vctrl_v);
  const double rel =
      gm::measure_delay(stim.wf, ch.process(stim.wf)).mean_ps -
      cal.base_latency_ps;
  EXPECT_NEAR(rel, target, 1.5) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramAccuracySeeds,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------
// Property: the jitter analyzer recovers a known RJ sigma at any rate.
class JitterRecoveryRates : public ::testing::TestWithParam<double> {};

TEST_P(JitterRecoveryRates, RjRecoveredWithinTenPercent) {
  const double rate = GetParam();
  gs::SynthConfig sc;
  sc.rate_gbps = rate;
  sc.rj_sigma_ps = 1.8;
  Rng rng(777);
  const auto r = gs::synthesize_nrz(gs::prbs(15, 1200), sc, &rng);
  const auto rep = gm::measure_jitter(r.wf, r.unit_interval_ps);
  EXPECT_NEAR(rep.rj_rms_ps, 1.8, 0.25) << "rate " << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, JitterRecoveryRates,
                         ::testing::Values(0.8, 1.6, 3.2, 4.8, 6.4));

// ---------------------------------------------------------------------
// Property: the deskew engine always hits its target when it declares
// the plan feasible, for any arrival configuration.
class DeskewArrivals : public ::testing::TestWithParam<int> {};

TEST_P(DeskewArrivals, FeasiblePlansAreAccurate) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  gc::ChannelCalibration cal;
  std::vector<double> xs, ys;
  for (int i = 0; i <= 8; ++i) {
    xs.push_back(1.5 * i / 8.0);
    ys.push_back(52.0 * i / 8.0);
  }
  cal.fine_curve = gdelay::util::Curve(xs, ys);
  cal.tap_offset_ps = {0.0, 33.0, 66.0, 99.0};

  const int n = 2 + static_cast<int>(rng.below(7));
  std::vector<double> arrivals;
  for (int i = 0; i < n; ++i) arrivals.push_back(rng.uniform(0.0, 140.0));
  const std::vector<gc::ChannelCalibration> cals(
      static_cast<std::size_t>(n), cal);
  const auto plan = gc::DeskewEngine::plan(arrivals, cals);
  if (!plan.feasible) {
    // Only legitimate when the spread genuinely exceeds the range.
    double lo = 1e300, hi = -1e300;
    for (double a : arrivals) {
      lo = std::min(lo, a);
      hi = std::max(hi, a);
    }
    EXPECT_GT(hi - lo, cal.total_range_ps());
    return;
  }
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    EXPECT_NEAR(arrivals[i] + plan.settings[i].predicted_delay_ps,
                plan.target_arrival_ps, 0.2)
        << "seed " << seed << " ch " << i;
  EXPECT_LT(plan.residual_span_ps, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeskewArrivals,
                         ::testing::Range(100, 112));

// ---------------------------------------------------------------------
// Property: synthesized edge counts always match pattern transitions,
// for any pattern family.
class EdgeCountPatterns
    : public ::testing::TestWithParam<gs::BitPattern> {};

TEST_P(EdgeCountPatterns, ExtractionMatchesTransitionCount) {
  const auto& bits = GetParam();
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto r = gs::synthesize_nrz(bits, sc);
  const auto edges = gs::extract_edges(r.wf);
  EXPECT_EQ(edges.size(), gs::transition_count(bits));
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, EdgeCountPatterns,
    ::testing::Values(gs::prbs(7, 64), gs::prbs(15, 96),
                      gs::alternating(48), gs::k285(8),
                      gs::run_length_stress(80, 5),
                      gs::BitPattern{1, 1, 1, 0, 0, 0, 1, 0, 1}));

// ---------------------------------------------------------------------
// Property: the coarse block's measured tap pitch follows any configured
// geometry, not just the default 33 ps.
class CoarsePitch : public ::testing::TestWithParam<double> {};

TEST_P(CoarsePitch, MeasuredStepTracksConfiguredPitch) {
  const double pitch = GetParam();
  gc::CoarseDelayConfig cfg;
  cfg.tap_delay_ps = {0.0, pitch, 2.0 * pitch, 3.0 * pitch};
  gc::CoarseDelayBlock blk(cfg, Rng(5));
  gs::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = gs::synthesize_nrz(gs::prbs(7, 48), sc);
  blk.select(0);
  const double d0 = gm::measure_delay(stim.wf, blk.process(stim.wf)).mean_ps;
  blk.select(3);
  const double d3 = gm::measure_delay(stim.wf, blk.process(stim.wf)).mean_ps;
  EXPECT_NEAR(d3 - d0, 3.0 * pitch, 1.5) << "pitch " << pitch;
}

INSTANTIATE_TEST_SUITE_P(Pitches, CoarsePitch,
                         ::testing::Values(20.0, 33.0, 50.0));
