// Serialize / merge / resume contracts of the measurement sinks — the
// foundation of the campaign orchestrator's determinism guarantee.
//
// Every checkpointable sink must round-trip byte-exactly
// (save(load(save(x))) == save(x)), resume mid-stream at ANY chunk seam
// to a state byte-identical with the uninterrupted run, and (for the
// accumulator sinks) merge split runs into the single-pass result. The
// frame layer below the sinks must reject truncated or bit-flipped
// checkpoints outright — a corrupt file throws, it never deserializes
// into plausible state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "measure/delay_meter.h"
#include "measure/eye.h"
#include "measure/jitter.h"
#include "measure/sinks.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "signal/waveform.h"
#include "util/rng.h"
#include "util/serde.h"

namespace gm = gdelay::meas;
namespace gs = gdelay::sig;
namespace gcp = gdelay::campaign;
using gdelay::util::ByteReader;
using gdelay::util::ByteWriter;
using gdelay::util::Rng;

namespace {

// The seams a resumed sink must be invariant under: sample by sample, an
// awkward prime, the block unit, a big chunk.
const std::size_t kSeams[] = {1, 7, 64, 4096};

gs::SynthConfig wave_config() {
  gs::SynthConfig cfg;
  cfg.rate_gbps = 6.4;
  cfg.rise_time_ps = 30.0;
  cfg.dt_ps = 0.25;
  cfg.rj_sigma_ps = 1.1;
  cfg.dj_pp_ps = 3.0;
  return cfg;
}

// Same pattern length and grid for every seed: only the jitter draws
// differ, so two waves share (t0, dt, n) and sinks fed either one carry
// identical positional state — merges then compare byte for byte.
gs::Waveform make_wave(std::uint64_t seed) {
  Rng rng(seed);
  return gs::synthesize_nrz(gs::prbs(7, 96, 1), wave_config(), &rng).wf;
}

std::string state_of(const gm::ISampleSink& s) {
  ByteWriter w;
  s.save_state(w);
  return w.take();
}

void load_from(gm::ISampleSink& s, const std::string& bytes) {
  ByteReader r(bytes);
  s.load_state(r);
}

void feed(gm::ISampleSink& s, const gs::Waveform& wf, std::size_t chunk,
          std::size_t from, std::size_t to) {
  const double* p = wf.samples().data();
  for (std::size_t o = from; o < to; o += chunk)
    s.consume(p + o, std::min(chunk, to - o));
}

void feed_all(gm::ISampleSink& s, const gs::Waveform& wf,
              std::size_t chunk = 4096) {
  s.begin(wf.t0_ps(), wf.dt_ps(), wf.size());
  feed(s, wf, chunk, 0, wf.size());
  s.finish();
}

using SinkFactory = std::function<std::unique_ptr<gm::ISampleSink>()>;

struct NamedFactory {
  const char* name;
  SinkFactory make;
};

// One same-configured factory per sink class (the DelayMeterSink needs a
// live reference and gets its own tests below).
std::vector<NamedFactory> sink_factories() {
  return {
      {"capture",
       [] { return std::make_unique<gm::WaveformCaptureSink>(); }},
      {"eye",
       [] {
         return std::make_unique<gm::EyeSink>(
             gm::EyeDiagram(wave_config().unit_interval_ps(), -0.5, 0.5, 64,
                            24),
             0.0, 400.0);
       }},
      {"level_histogram",
       [] {
         return std::make_unique<gm::LevelHistogramSink>(-0.5, 0.5, 48,
                                                         400.0);
       }},
      {"edge",
       [] {
         return std::make_unique<gm::EdgeSink>(gs::EdgeExtractOptions{},
                                               400.0);
       }},
      {"jitter",
       [] {
         return std::make_unique<gm::JitterSink>(
             wave_config().unit_interval_ps());
       }},
  };
}

}  // namespace

// ---------------------------------------------------------------------------
// Byte-exact round trips
// ---------------------------------------------------------------------------

TEST(SinkCheckpoint, SaveLoadSaveIsIdentity) {
  const gs::Waveform wf = make_wave(501);
  for (const auto& f : sink_factories()) {
    auto a = f.make();
    a->begin(wf.t0_ps(), wf.dt_ps(), wf.size());
    feed(*a, wf, 64, 0, wf.size() / 2);  // mid-stream, seam state live
    const std::string s1 = state_of(*a);

    auto b = f.make();
    load_from(*b, s1);
    EXPECT_EQ(state_of(*b), s1) << f.name;
  }
}

TEST(SinkCheckpoint, ResumeMatchesUninterruptedAtAnySeam) {
  const gs::Waveform wf = make_wave(502);
  for (const auto& f : sink_factories()) {
    for (std::size_t chunk : kSeams) {
      auto whole = f.make();
      feed_all(*whole, wf, chunk);

      // Cut deliberately NOT on a chunk boundary: the saved state must
      // carry everything that spans the seam (backscan window, sample
      // clock), not rely on aligned consumption.
      const std::size_t cut = wf.size() / 2 + 3;
      auto a = f.make();
      a->begin(wf.t0_ps(), wf.dt_ps(), wf.size());
      feed(*a, wf, chunk, 0, cut);
      const std::string ckpt = state_of(*a);

      auto b = f.make();
      load_from(*b, ckpt);
      feed(*b, wf, chunk, cut, wf.size());
      b->finish();

      EXPECT_EQ(state_of(*b), state_of(*whole))
          << f.name << " chunk " << chunk;
    }
  }
}

TEST(SinkCheckpoint, DelayMeterResumesAgainstLiveReference) {
  const gs::Waveform ref_wf = make_wave(601);
  const gs::Waveform out_wf = make_wave(602);
  gm::EdgeSink ref = gm::DelayMeterSink::reference_sink();
  feed_all(ref, ref_wf);

  for (std::size_t chunk : kSeams) {
    gm::DelayMeterSink whole(ref);
    feed_all(whole, out_wf, chunk);

    const std::size_t cut = out_wf.size() / 2 + 3;
    gm::DelayMeterSink a(ref);
    a.begin(out_wf.t0_ps(), out_wf.dt_ps(), out_wf.size());
    feed(a, out_wf, chunk, 0, cut);
    const std::string ckpt = state_of(a);

    gm::DelayMeterSink b(ref);
    load_from(b, ckpt);
    feed(b, out_wf, chunk, cut, out_wf.size());
    b.finish();

    EXPECT_EQ(state_of(b), state_of(whole)) << "chunk " << chunk;
    EXPECT_EQ(b.result().n_edges, whole.result().n_edges);
    EXPECT_EQ(std::memcmp(&b.result().mean_ps, &whole.result().mean_ps,
                          sizeof(double)),
              0);
  }
}

// ---------------------------------------------------------------------------
// Merge of split runs == single pass
// ---------------------------------------------------------------------------

TEST(SinkMerge, EyeCountsAddAcrossUnits) {
  const gs::Waveform wf0 = make_wave(701);
  const gs::Waveform wf1 = make_wave(702);
  auto make = sink_factories()[1].make;

  auto single = make();  // one sink sees unit 0 then unit 1
  feed_all(*single, wf0);
  feed_all(*single, wf1);

  auto a = make();
  auto b = make();
  feed_all(*a, wf0);
  feed_all(*b, wf1);
  a->merge_from(*b);

  EXPECT_EQ(state_of(*a), state_of(*single));
}

TEST(SinkMerge, HistogramCountsAddAcrossUnits) {
  const gs::Waveform wf0 = make_wave(703);
  const gs::Waveform wf1 = make_wave(704);
  auto make = sink_factories()[2].make;

  auto single = make();
  feed_all(*single, wf0);
  feed_all(*single, wf1);

  auto a = make();
  auto b = make();
  feed_all(*a, wf0);
  feed_all(*b, wf1);
  a->merge_from(*b);

  EXPECT_EQ(state_of(*a), state_of(*single));
}

TEST(SinkMerge, EdgeListsConcatenateInShardOrder) {
  const gs::Waveform wf0 = make_wave(705);
  const gs::Waveform wf1 = make_wave(706);

  gm::EdgeSink a{gs::EdgeExtractOptions{}, 400.0};
  gm::EdgeSink b{gs::EdgeExtractOptions{}, 400.0};
  feed_all(a, wf0);
  feed_all(b, wf1);
  const std::vector<gs::Edge> ea = a.edges();
  const std::vector<gs::Edge> eb = b.edges();
  ASSERT_GT(ea.size(), 0u);
  ASSERT_GT(eb.size(), 0u);

  a.merge_from(b);
  ASSERT_EQ(a.edges().size(), ea.size() + eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a.edges()[i].t_ps, &ea[i].t_ps, sizeof(double)),
              0)
        << "shard-A edge " << i;
  }
  for (std::size_t i = 0; i < eb.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a.edges()[ea.size() + i].t_ps, &eb[i].t_ps,
                          sizeof(double)),
              0)
        << "shard-B edge " << i;
  }
}

TEST(SinkMerge, JitterMergeRecomputesOverMergedEdges) {
  const gs::Waveform wf0 = make_wave(707);
  const gs::Waveform wf1 = make_wave(708);
  const double ui = wave_config().unit_interval_ps();

  gm::JitterSink a(ui);
  gm::JitterSink b(ui);
  feed_all(a, wf0);
  feed_all(b, wf1);

  std::vector<double> times;
  for (const auto& e : a.edges()) times.push_back(e.t_ps);
  for (const auto& e : b.edges()) times.push_back(e.t_ps);
  const gm::JitterReport want = gm::analyze_jitter(times, ui);

  a.merge_from(b);
  const gm::JitterReport& got = a.report();
  EXPECT_EQ(got.n_edges, want.n_edges);
  EXPECT_EQ(
      std::memcmp(&got.rj_rms_ps, &want.rj_rms_ps, sizeof(double)), 0);
  EXPECT_EQ(
      std::memcmp(&got.dj_pp_ps, &want.dj_pp_ps, sizeof(double)), 0);
  EXPECT_EQ(
      std::memcmp(&got.tj_pp_ps, &want.tj_pp_ps, sizeof(double)), 0);
}

TEST(SinkMerge, DelayMeterMergesOutputEdgesAgainstMergedReference) {
  // Output == reference per unit, so the merged measurement must see
  // every edge pair at exactly zero delay — any seam artifact or edge
  // misordering in the merge would show up as nonzero spread.
  const gs::Waveform wf0 = make_wave(709);
  const gs::Waveform wf1 = make_wave(710);

  gm::EdgeSink ref_a = gm::DelayMeterSink::reference_sink();
  gm::EdgeSink ref_b = gm::DelayMeterSink::reference_sink();
  feed_all(ref_a, wf0);
  feed_all(ref_b, wf1);
  ref_a.merge_from(ref_b);

  gm::DelayMeterSink out_a(ref_a);
  gm::DelayMeterSink out_b(ref_a);
  feed_all(out_a, wf0);
  feed_all(out_b, wf1);
  out_a.merge_from(out_b);  // recomputes against the merged reference

  EXPECT_EQ(out_a.result().n_edges, ref_a.edges().size());
  EXPECT_EQ(out_a.result().mean_ps, 0.0);
  EXPECT_EQ(out_a.result().stddev_ps, 0.0);
}

TEST(SinkMerge, CaptureRefusesToMerge) {
  // A waveform is a positional recording, not an additive statistic.
  gm::WaveformCaptureSink a, b;
  const gs::Waveform wf = make_wave(711);
  feed_all(a, wf);
  feed_all(b, wf);
  EXPECT_THROW(a.merge_from(b), std::logic_error);
}

TEST(SinkMerge, TypeAndConfigMismatchesAreRejected) {
  const gs::Waveform wf = make_wave(712);
  gm::EyeSink eye(gm::EyeDiagram(156.25, -0.5, 0.5, 64, 24), 0.0, 400.0);
  gm::LevelHistogramSink hist(-0.5, 0.5, 48, 400.0);
  feed_all(eye, wf);
  feed_all(hist, wf);
  EXPECT_THROW(eye.merge_from(hist), std::logic_error);

  // Same type, different settle gate: counts would not be comparable.
  gm::EyeSink other(gm::EyeDiagram(156.25, -0.5, 0.5, 64, 24), 0.0, 800.0);
  feed_all(other, wf);
  EXPECT_THROW(eye.merge_from(other), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Corruption is rejected, never absorbed
// ---------------------------------------------------------------------------

TEST(SinkCheckpoint, KindTagMismatchIsRejected) {
  const gs::Waveform wf = make_wave(801);
  const auto factories = sink_factories();
  // Every sink's state against every OTHER sink's loader.
  for (const auto& src : factories) {
    auto s = src.make();
    feed_all(*s, wf);
    const std::string bytes = state_of(*s);
    for (const auto& dst : factories) {
      if (dst.name == src.name) continue;
      auto d = dst.make();
      EXPECT_THROW(load_from(*d, bytes), std::runtime_error)
          << src.name << " -> " << dst.name;
    }
  }
}

TEST(SinkCheckpoint, TruncatedStateThrowsInsteadOfFabricating) {
  const gs::Waveform wf = make_wave(802);
  for (const auto& f : sink_factories()) {
    auto s = f.make();
    feed_all(*s, wf);
    const std::string bytes = state_of(*s);
    ASSERT_GT(bytes.size(), 8u) << f.name;
    auto d = f.make();
    EXPECT_THROW(load_from(*d, bytes.substr(0, bytes.size() - 3)),
                 std::runtime_error)
        << f.name;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint frames (envelope + checksum + atomic files)
// ---------------------------------------------------------------------------

TEST(CheckpointFrame, RoundTripsPayload) {
  const std::string payload = "campaign shard state bytes \x00\x01\x7f";
  const std::string framed = gcp::frame(gcp::kFrameShardState, payload);
  EXPECT_EQ(gcp::unframe(framed, gcp::kFrameShardState), payload);
}

TEST(CheckpointFrame, RejectsBitFlipAnywhereInPayload) {
  const std::string payload(256, 'x');
  std::string framed = gcp::frame(gcp::kFrameShardState, payload);
  // Flip one payload bit: the FNV checksum must catch it.
  framed[20] = static_cast<char>(framed[20] ^ 0x10);
  EXPECT_THROW(gcp::unframe(framed, gcp::kFrameShardState),
               std::runtime_error);
}

TEST(CheckpointFrame, RejectsTruncation) {
  const std::string framed =
      gcp::frame(gcp::kFrameShardState, std::string(64, 'y'));
  for (std::size_t keep : {framed.size() - 1, framed.size() / 2,
                           std::size_t{3}, std::size_t{0}}) {
    EXPECT_THROW(gcp::unframe(framed.substr(0, keep), gcp::kFrameShardState),
                 std::runtime_error)
        << "kept " << keep;
  }
}

TEST(CheckpointFrame, RejectsWrongKindAndBadMagic) {
  const std::string framed = gcp::frame(gcp::kFrameShardState, "p");
  EXPECT_THROW(gcp::unframe(framed, gcp::kFrameShardState + 1),
               std::runtime_error);
  std::string bad = framed;
  bad[0] = static_cast<char>(bad[0] ^ 0xff);
  EXPECT_THROW(gcp::unframe(bad, gcp::kFrameShardState), std::runtime_error);
}

TEST(CheckpointFile, AtomicWriteCreatesParentsAndRoundTrips) {
  const std::string dir = ::testing::TempDir() + "gdelay_ckpt_test/nested";
  const std::string path = dir + "/state.ckpt";
  const std::string bytes = gcp::frame(gcp::kFrameShardState, "abc");

  gcp::write_file_atomic(path, bytes);  // parents did not exist
  auto back = gcp::read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);

  EXPECT_TRUE(gcp::remove_file(path));
  EXPECT_FALSE(gcp::remove_file(path));
  EXPECT_FALSE(gcp::read_file(path).has_value());
}
