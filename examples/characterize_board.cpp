// Board characterization with CSV export — the data-collection flow a
// lab would run on every new board: calibrate all channels, dump the
// delay-vs-Vctrl curves and the tap table to CSV for plotting/archival,
// and print a matching summary.
//
//   $ ./characterize_board [output_dir]
//
// Writes <dir>/fine_curve_chN.csv and <dir>/tap_table.csv.
#include <cstdio>
#include <string>
#include <vector>

#include "core/board.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/csv.h"
#include "util/rng.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";

  util::Rng rng(4242);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 96), sc);

  // A 4-channel board with manufacturing scatter, like the paper's
  // production version.
  core::DelayBoardConfig cfg;
  cfg.n_channels = 4;
  core::DelayBoard board(cfg, rng.fork(1));
  core::DelayCalibrator::Options opt;
  opt.n_vctrl_points = 13;
  std::printf("calibrating %d channels (Fig. 7 sweep + Fig. 9 taps each)"
              " ...\n", cfg.n_channels);
  const auto& cals = board.calibrate(stim.wf, opt);

  // Per-channel fine curves.
  for (int i = 0; i < board.n_channels(); ++i) {
    const auto& curve = cals[static_cast<std::size_t>(i)].fine_curve;
    const std::string path =
        dir + "/fine_curve_ch" + std::to_string(i) + ".csv";
    util::write_csv_xy(path, "vctrl_v", curve.xs(), "delay_ps", curve.ys());
    std::printf("  ch%d: fine %.2f ps, total %.2f ps -> %s\n", i,
                cals[static_cast<std::size_t>(i)].fine_range_ps(),
                cals[static_cast<std::size_t>(i)].total_range_ps(),
                path.c_str());
  }

  // Tap table across channels.
  std::vector<double> ch_col, tap_col, offset_col;
  for (int i = 0; i < board.n_channels(); ++i)
    for (int t = 0; t < 4; ++t) {
      ch_col.push_back(i);
      tap_col.push_back(t);
      offset_col.push_back(
          cals[static_cast<std::size_t>(i)].tap_offset_ps[
              static_cast<std::size_t>(t)]);
    }
  const std::string tap_path = dir + "/tap_table.csv";
  util::write_csv(tap_path, {"channel", "tap", "offset_ps"},
                  {ch_col, tap_col, offset_col});
  std::printf("  tap table -> %s\n", tap_path.c_str());

  std::printf("\ncommon group range across the board: %.2f ps\n",
              board.common_range_ps());
  std::printf("done; plot the CSVs or feed them to your own tooling.\n");
  return 0;
}
