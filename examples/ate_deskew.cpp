// ATE bus deskew, end to end — the paper's target application (Fig. 2).
//
// An 8-lane 6.4 Gbps bus (the paper: "we need to deskew buses with 8
// differential channels") with random channel skew is measured,
// calibrated and aligned through one VariableDelayChannel per lane.
// The per-lane DUT timing windows ("shmoo") are printed before and
// after, showing how a common strobe placement only exists once the
// lanes are deskewed to a few ps.
//
//   $ ./ate_deskew
#include <cstdio>
#include <vector>

#include "ate/bus.h"
#include "ate/controller.h"
#include "ate/dut.h"
#include "core/channel.h"
#include "core/requirements.h"
#include "signal/pattern.h"
#include "util/rng.h"

using namespace gdelay;

namespace {

// One row of '-'/'#' per lane: '#' marks strobe phases where the lane
// samples error-free.
void print_shmoo(ate::AteBus& bus,
                 std::vector<core::VariableDelayChannel>& delays,
                 const sig::BitPattern& training) {
  ate::DutReceiver rx;
  const double ui = 1000.0 / bus.config().rate_gbps;
  std::vector<ate::PhaseScan> scans;
  for (int i = 0; i < bus.n_channels(); ++i) {
    const auto launched = bus.channel(i).drive(training);
    const auto received =
        delays[static_cast<std::size_t>(i)].process(launched.wf);
    const auto scan = rx.scan_phase(received, training, ui,
                                    bus.config().synth.lead_in_ps + ui / 2.0,
                                    training.size() - 16, 48);
    scans.push_back(scan);
    std::printf("  lane %d |", i);
    for (const auto& p : scan.points) std::printf("%c", p.pass() ? '#' : '-');
    std::printf("| window %5.1f ps\n", scan.window_ps);
  }
  const auto common = ate::intersect_scans(scans, ui);
  std::printf("  common |");
  for (const auto& p : common.points) std::printf("%c", p.pass() ? '#' : '-');
  std::printf("| window %5.1f ps\n", common.window_ps);
}

}  // namespace

int main() {
  util::Rng rng(42);

  ate::AteBusConfig bc;
  bc.n_channels = 8;
  bc.rate_gbps = 6.4;
  bc.skew_span_ps = 220.0;
  bc.rj_sigma_ps = 0.8;
  ate::AteBus bus(bc, rng.fork(1));

  std::vector<core::VariableDelayChannel> delays;
  for (int i = 0; i < bc.n_channels; ++i)
    delays.emplace_back(core::ChannelConfig::prototype(),
                        rng.fork(100 + static_cast<std::uint64_t>(i)));

  const auto training = sig::prbs(7, 96);

  std::printf("8-lane 6.4 Gbps bus, UI = %.2f ps\n\n", 1000.0 / bc.rate_gbps);
  std::printf("per-lane DUT timing windows BEFORE deskew "
              "(48 strobe phases across one UI):\n");
  bus.apply_native_deskew();  // the ATE's own 100 ps-step correction
  print_shmoo(bus, delays, training);

  std::printf("\nrunning measure -> calibrate -> plan -> program -> verify"
              " ...\n");
  ate::DeskewController::Options opt;
  opt.training = training;
  opt.calibration.n_vctrl_points = 13;
  ate::DeskewController controller(bus, delays, opt);
  const ate::DeskewReport rep = controller.run();

  std::printf("\nper-lane programming:\n");
  for (std::size_t i = 0; i < rep.plan.settings.size(); ++i) {
    const auto& s = rep.plan.settings[i];
    std::printf("  lane %zu: coarse tap %d + DAC code %4u (Vctrl %.4f V)"
                " -> residual %+6.2f ps\n",
                i, s.tap, s.dac_code, s.vctrl_v,
                rep.arrival_after_ps[i] - rep.plan.target_arrival_ps);
  }
  std::printf("\nbus skew: %.1f ps before -> %.2f ps after "
              "(requirement < %.0f ps) %s\n",
              rep.span_before_ps, rep.span_after_ps,
              core::Requirements::kChannelSkewPs,
              rep.span_after_ps < core::Requirements::kChannelSkewPs
                  ? "PASS" : "FAIL");

  std::printf("\nper-lane DUT timing windows AFTER deskew:\n");
  print_shmoo(bus, delays, training);
  return 0;
}
