// Receiver jitter-tolerance test — the paper's second application
// (Section 5): use the fine-delay line as a jitter injector and find how
// much jitter a DUT receiver tolerates before it starts failing.
//
// The injector AC-couples a Gaussian noise source onto Vctrl; sweeping
// the generator amplitude sweeps the injected jitter. A DUT receiver
// with a realistic setup/hold window samples the stressed signal at the
// eye center; the tolerance threshold is the injected-jitter level where
// errors first appear.
//
//   $ ./jitter_tolerance
#include <cmath>
#include <cstdio>

#include "ate/dut.h"
#include "core/jitter_injector.h"
#include "measure/eye.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main() {
  util::Rng rng(7);

  // 6.4 Gbps PRBS7 (the application's maximum rate) with a little
  // native jitter; the injection hookup is that of Fig. 16.
  sig::SynthConfig sc;
  sc.rate_gbps = 6.4;
  sc.rj_sigma_ps = 1.0;
  const auto bits = sig::prbs(7, 512);
  const auto stim = sig::synthesize_nrz(bits, sc, &rng);
  const double ui = stim.unit_interval_ps;

  core::JitterInjector injector(core::JitterInjectorConfig{}, rng.fork(1));

  ate::DutReceiverConfig rxc;
  rxc.setup_ps = 55.0;
  rxc.hold_ps = 55.0;
  ate::DutReceiver rx(rxc);

  meas::JitterMeasureOptions jo;
  jo.settle_ps = 12000.0;

  std::printf("DUT jitter-tolerance scan at %.1f Gbps "
              "(receiver setup/hold = %.0f/%.0f ps)\n\n",
              sc.rate_gbps, rxc.setup_ps, rxc.hold_ps);
  std::printf("  %10s %10s %10s %10s %8s\n", "noise(Vpp)", "TJ(ps)",
              "eyeW(ps)", "errors", "result");

  double tolerance_tj = 0.0;
  bool failed_once = false;
  for (double pp = 0.0; pp <= 1.61; pp += 0.2) {
    injector.set_noise_pp(pp);
    const auto out = injector.process(stim.wf);

    const auto eye = meas::measure_eye(out, ui, 0.0, jo.settle_ps);
    // Strobe every bit at the measured eye center, skipping the settle.
    const double center = eye.crossing_phase_ps + ui / 2.0;
    std::vector<double> strobes;
    sig::BitPattern expected;
    const std::size_t first_bit = 1 + static_cast<std::size_t>(
        jo.settle_ps / ui);
    for (std::size_t k = first_bit; k + 2 < bits.size(); ++k) {
      // Place the strobe in bit k's eye near the measured center phase.
      const double t = sc.lead_in_ps + static_cast<double>(k) * ui;
      const double phase = std::fmod(center - std::fmod(t, ui) + 2 * ui, ui);
      strobes.push_back(t + phase);
      expected.push_back(bits[k]);
    }
    const auto sampled = rx.sample(out, strobes);
    const std::size_t errors =
        ate::DutReceiver::best_alignment_errors(sampled.bits, expected) +
        sampled.violations;

    const auto j = meas::measure_jitter(out, ui, jo);
    const bool pass = errors == 0;
    std::printf("  %10.1f %10.1f %10.1f %10zu %8s\n", pp, j.tj_pp_ps,
                eye.eye_width_ps, errors, pass ? "PASS" : "FAIL");
    if (!pass && !failed_once) failed_once = true;
    if (pass) tolerance_tj = j.tj_pp_ps;
  }

  std::printf("\njitter tolerance: the receiver is error-free up to "
              "~%.0f ps of total jitter\n", tolerance_tj);
  std::printf("(%.1f%% of a UI; the injector converts voltage noise to "
              "timing stress without\n touching the data path, exactly the "
              "paper's Section-5 hookup)\n",
              100.0 * tolerance_tj / ui);
  return 0;
}
