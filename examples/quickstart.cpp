// Quickstart: build the combined coarse/fine delay channel (Fig. 10),
// calibrate it, program a target delay, and verify the result.
//
//   $ ./quickstart
#include <cstdio>

#include "core/calibration.h"
#include "core/channel.h"
#include "measure/delay_meter.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main() {
  util::Rng rng(2008);

  // A 3.2 Gbps PRBS7 stimulus, like the bench setup of Fig. 16.
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  sc.rj_sigma_ps = 1.0;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 96), sc, &rng);

  // The as-built prototype: 4 fine stages + 4-tap coarse section.
  core::VariableDelayChannel channel(core::ChannelConfig::prototype(),
                                     rng.fork(1));

  // Calibrate: Fig. 7 Vctrl sweep + Fig. 9 tap measurement.
  core::DelayCalibrator calibrator;
  const core::ChannelCalibration cal = calibrator.calibrate(channel, stim.wf);

  std::printf("fine range      : %6.1f ps\n", cal.fine_range_ps());
  std::printf("total range     : %6.1f ps\n", cal.total_range_ps());
  std::printf("base latency    : %6.1f ps\n", cal.base_latency_ps);
  std::printf("tap offsets     : %5.1f / %5.1f / %5.1f / %5.1f ps\n",
              cal.tap_offset_ps[0], cal.tap_offset_ps[1],
              cal.tap_offset_ps[2], cal.tap_offset_ps[3]);
  std::printf("DAC resolution  : %6.3f ps/LSB (12-bit)\n",
              cal.resolution_ps());

  // Program a 50 ps delay (relative to the channel minimum) and verify.
  const double target = 50.0;
  const core::DelaySetting s = cal.plan(target);
  channel.select_tap(s.tap);
  channel.set_vctrl(s.vctrl_v);
  std::printf("\nprogram %5.1f ps -> tap %d, DAC code %u (Vctrl=%.4f V), "
              "predicted %6.2f ps\n",
              target, s.tap, s.dac_code, s.vctrl_v, s.predicted_delay_ps);

  const auto out = channel.process(stim.wf);
  const auto d = meas::measure_delay(stim.wf, out);
  std::printf("measured delay  : %6.2f ps (relative %6.2f ps, error %+5.2f ps "
              "over %zu edges)\n",
              d.mean_ps, d.mean_ps - cal.base_latency_ps,
              d.mean_ps - cal.base_latency_ps - target, d.n_edges);

  const auto jin = meas::measure_jitter(stim.wf, stim.unit_interval_ps);
  const auto jout = meas::measure_jitter(out, stim.unit_interval_ps);
  std::printf("jitter          : in TJ=%.1f ps, out TJ=%.1f ps (added %.1f)\n",
              jin.tj_pp_ps, jout.tj_pp_ps, jout.tj_pp_ps - jin.tj_pp_ps);
  return 0;
}
