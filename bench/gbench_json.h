// Google-benchmark result capture + compact BENCH_*.json emission.
//
// The figure benches hand-roll their JSON; the google-benchmark harnesses
// (bench_kernels, bench_perf_models) share this reporter instead: it
// rides along the normal console output, collects per-benchmark wall
// time and the items/s rate from SetItemsProcessed, and dumps them in
// the same flat shape every PR's numbers are compared in.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

// The schema version, backend stamp and GDELAY_GIT_REV fallback moved to
// bench/common.h so the non-harness figure benches share one envelope.
#include "bench/common.h"

namespace gdelay::bench {

/// Memory numbers for the v3 "mem" object. Zero means "not tracked"
/// (e.g. a bench that reports RSS but does not replace operator new).
struct MemReport {
  std::size_t peak_rss_bytes = 0;    ///< getrusage high-water mark.
  std::size_t heap_peak_bytes = 0;   ///< memtrack phase peak.
  std::size_t heap_total_bytes = 0;  ///< memtrack bytes allocated.
  std::size_t alloc_count = 0;       ///< memtrack allocation count.
};

struct GbenchRow {
  std::string name;
  double wall_ns_per_iter = 0.0;
  double items_per_sec = 0.0;  ///< 0 when SetItemsProcessed was not called.
};

/// Console reporter that additionally records every finished run.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<GbenchRow> rows;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& r : runs) {
      if (r.error_occurred) continue;
      GbenchRow row;
      row.name = r.benchmark_name();
      const double iters =
          r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
      row.wall_ns_per_iter = r.real_accumulated_time / iters * 1e9;
      const auto it = r.counters.find("items_per_second");
      if (it != r.counters.end())
        row.items_per_sec = static_cast<double>(it->second);
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// items/s of the named benchmark, or 0 if absent.
  double items_per_sec(const std::string& name) const {
    for (const auto& r : rows)
      if (r.name == name) return r.items_per_sec;
    return 0.0;
  }
};

/// Writes the captured rows (plus optional scalar verdicts and memory
/// numbers) as BENCH_<name>.json-style output to `path`.
inline void write_gbench_json(
    const char* path, const char* bench_name,
    const std::vector<GbenchRow>& rows,
    const std::vector<std::pair<std::string, double>>& extra = {},
    const MemReport* mem = nullptr) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "could not write %s\n", path);
    return;
  }
  const BackendStamp bs = backend_stamp();
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"schema\": %d,\n"
               "  \"git_rev\": \"%s\",\n"
               "  \"backend\": {\"name\": \"%s\", \"isa\": \"%s\", "
               "\"reason\": \"%s\"},\n  \"results\": [",
               bench_name, kBenchJsonSchema, GDELAY_GIT_REV, bs.name, bs.isa,
               bs.reason);
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::fprintf(f,
                 "%s\n    {\"name\": \"%s\", \"wall_ns_per_iter\": %.1f, "
                 "\"items_per_sec\": %.0f}",
                 i ? "," : "", rows[i].name.c_str(), rows[i].wall_ns_per_iter,
                 rows[i].items_per_sec);
  std::fprintf(f, "\n  ]");
  for (const auto& [key, value] : extra)
    std::fprintf(f, ",\n  \"%s\": %.3f", key.c_str(), value);
  if (mem != nullptr)
    std::fprintf(f,
                 ",\n  \"mem\": {\"peak_rss_bytes\": %zu, "
                 "\"heap_peak_bytes\": %zu, \"heap_total_bytes\": %zu, "
                 "\"alloc_count\": %zu}",
                 mem->peak_rss_bytes, mem->heap_peak_bytes,
                 mem->heap_total_bytes, mem->alloc_count);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace gdelay::bench
