// Kernel throughput: per-sample step() vs the block-processing path, for
// each analog element and the full composites, at the default simulation
// step dt = 0.25 ps. Both paths are byte-identical by contract (enforced
// by tests/test_block_kernels.cpp); this harness measures what the
// contract costs — and what hoisting the dt-dependent coefficients,
// batching the Gaussian draws and running stage-major buys back.
//
// Emits BENCH_kernels.json (schema 4, with the compute-backend stamp)
// with samples/s per kernel, the headline FineDelayLine block-vs-step
// speedup (target: >= 3x single-thread), and — when the AVX2 backend is
// usable on this machine — per-kernel and whole-channel scalar-vs-AVX2
// rows with the SIMD speedup verdict (target: >= 4x on the channel),
// plus lane-batched 4-stream rows and the batch_channel_speedup verdict
// (batched AVX2 channel vs solo scalar channel, target: >= 3x).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "analog/buffer.h"
#include "analog/coupling.h"
#include "analog/primitives.h"
#include "backend/backend.h"
#include "bench/common.h"
#include "bench/gbench_json.h"
#include "bench/memtrack.h"
#include "core/batch.h"
#include "core/channel.h"
#include "core/fine_delay.h"
#include "signal/waveform.h"
#include "util/rng.h"

namespace ga = gdelay::analog;
namespace gb = gdelay::backend;
namespace gc = gdelay::core;
namespace gs = gdelay::sig;
using gdelay::util::Rng;

namespace {

constexpr std::size_t kN = 16384;  // samples per iteration
constexpr double kDt = 0.25;       // ps — the tier-1 default step

const std::vector<double>& stim() {
  static const std::vector<double> v = [] {
    std::vector<double> s(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      const double t = static_cast<double>(i);
      s[i] = 0.35 * std::sin(0.07 * t) + 0.15 * std::sin(0.011 * t + 0.5) +
             ((i / 37) % 2 ? 0.2 : -0.2);
    }
    return s;
  }();
  return v;
}

template <typename E>
void run_step(benchmark::State& state, E& e) {
  const auto& in = stim();
  std::vector<double> out(in.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = e.step(in[i], kDt);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * in.size()));
}

// Chunked exactly like run_blocked() so the measurement reflects the
// production process() path, not one giant flat call.
template <typename E>
void run_block(benchmark::State& state, E& e) {
  const auto& in = stim();
  std::vector<double> out(in.size());
  for (auto _ : state) {
    for (std::size_t o = 0; o < in.size(); o += ga::kBlockSamples)
      e.process_block(in.data() + o, out.data() + o,
                      std::min(ga::kBlockSamples, in.size() - o), kDt);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * in.size()));
}

void SinglePoleFilter_step(benchmark::State& s) {
  ga::SinglePoleFilter f(9.0);
  run_step(s, f);
}
void SinglePoleFilter_block(benchmark::State& s) {
  ga::SinglePoleFilter f(9.0);
  run_block(s, f);
}
BENCHMARK(SinglePoleFilter_step);
BENCHMARK(SinglePoleFilter_block);

void TanhLimiter_step(benchmark::State& s) {
  ga::TanhLimiter l(2.5, 0.5);
  run_step(s, l);
}
void TanhLimiter_block(benchmark::State& s) {
  ga::TanhLimiter l(2.5, 0.5);
  run_block(s, l);
}
BENCHMARK(TanhLimiter_step);
BENCHMARK(TanhLimiter_block);

void SlewRateLimiter_step(benchmark::State& s) {
  ga::SlewRateLimiter l(0.005, 20.0, 300.0);
  run_step(s, l);
}
void SlewRateLimiter_block(benchmark::State& s) {
  ga::SlewRateLimiter l(0.005, 20.0, 300.0);
  run_block(s, l);
}
BENCHMARK(SlewRateLimiter_step);
BENCHMARK(SlewRateLimiter_block);

void FractionalDelay_step(benchmark::State& s) {
  ga::FractionalDelay d(33.0);
  run_step(s, d);
}
void FractionalDelay_block(benchmark::State& s) {
  ga::FractionalDelay d(33.0);
  run_block(s, d);
}
BENCHMARK(FractionalDelay_step);
BENCHMARK(FractionalDelay_block);

void NoiseSource_step(benchmark::State& s) {
  ga::NoiseSource n(0.012, 7.5, Rng(1));
  std::vector<double> out(kN);
  for (auto _ : s) {
    for (std::size_t i = 0; i < kN; ++i) out[i] = n.step(kDt);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  s.SetItemsProcessed(static_cast<int64_t>(s.iterations() * kN));
}
void NoiseSource_block(benchmark::State& s) {
  ga::NoiseSource n(0.012, 7.5, Rng(1));
  std::vector<double> out(kN);
  for (auto _ : s) {
    for (std::size_t o = 0; o < kN; o += ga::kBlockSamples)
      n.process_block(out.data() + o, std::min(ga::kBlockSamples, kN - o),
                      kDt);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  s.SetItemsProcessed(static_cast<int64_t>(s.iterations() * kN));
}
BENCHMARK(NoiseSource_step);
BENCHMARK(NoiseSource_block);

void VariableGainBuffer_step(benchmark::State& s) {
  ga::VariableGainBuffer b(ga::VgaBufferConfig{}, Rng(2));
  b.set_vctrl(0.9);
  run_step(s, b);
}
void VariableGainBuffer_block(benchmark::State& s) {
  ga::VariableGainBuffer b(ga::VgaBufferConfig{}, Rng(2));
  b.set_vctrl(0.9);
  run_block(s, b);
}
BENCHMARK(VariableGainBuffer_step);
BENCHMARK(VariableGainBuffer_block);

void LimitingBuffer_step(benchmark::State& s) {
  ga::LimitingBuffer b(ga::LimitingBufferConfig{}, Rng(3));
  run_step(s, b);
}
void LimitingBuffer_block(benchmark::State& s) {
  ga::LimitingBuffer b(ga::LimitingBufferConfig{}, Rng(3));
  run_block(s, b);
}
BENCHMARK(LimitingBuffer_step);
BENCHMARK(LimitingBuffer_block);

void FineDelayLine_step(benchmark::State& s) {
  gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(4));
  line.set_vctrl(0.75);
  run_step(s, line);
}
void FineDelayLine_block(benchmark::State& s) {
  gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(4));
  line.set_vctrl(0.75);
  run_block(s, line);
}
BENCHMARK(FineDelayLine_step);
BENCHMARK(FineDelayLine_block);

void VariableDelayChannel_step(benchmark::State& s) {
  gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), Rng(5));
  ch.set_vctrl(0.75);
  run_step(s, ch);
}
void VariableDelayChannel_block(benchmark::State& s) {
  gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), Rng(5));
  ch.set_vctrl(0.75);
  run_block(s, ch);
}
BENCHMARK(VariableDelayChannel_step);
BENCHMARK(VariableDelayChannel_block);

// ---------------------------------------------------------------------------
// Raw backend-kernel rows: the hot loops in isolation, one row per
// (kernel, backend). Registered at runtime because the AVX2 rows only
// exist when the backend is usable on this machine. The names are
// "Kernel_<op>/<backend>" so the json diff tooling pairs them up.

bool avx2_usable() {
  return gb::avx2_kernels() != nullptr && gb::cpu_supports_avx2();
}

template <typename LoopFn>
void kernel_row(benchmark::State& s, const char* backend, LoopFn loop) {
  gb::select(backend);
  const gb::Kernels& k = gb::active();
  const auto& in = stim();
  std::vector<double> out(in.size()), out2(in.size());
  for (auto _ : s) {
    loop(k, in.data(), out.data(), out2.data(), in.size());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  s.SetItemsProcessed(static_cast<int64_t>(s.iterations() * in.size()));
  gb::select("scalar");
}

void register_kernel_rows(const char* backend) {
  const std::string suffix = std::string("/") + backend;
  benchmark::RegisterBenchmark(
      ("Kernel_tanh" + suffix).c_str(), [backend](benchmark::State& s) {
        kernel_row(s, backend,
                   [](const gb::Kernels& k, const double* in, double* out,
                      double*, std::size_t n) {
                     k.tanh_stage(in, nullptr, out, n, 2.0, 0.2, 1.0);
                   });
      });
  benchmark::RegisterBenchmark(
      ("Kernel_exp" + suffix).c_str(), [backend](benchmark::State& s) {
        kernel_row(s, backend,
                   [](const gb::Kernels& k, const double* in, double* out,
                      double*, std::size_t n) { k.exp_block(in, out, n); });
      });
  benchmark::RegisterBenchmark(
      ("Kernel_onepole" + suffix).c_str(), [backend](benchmark::State& s) {
        gb::OnePoleState st{};
        kernel_row(s, backend,
                   [&st](const gb::Kernels& k, const double* in, double* out,
                         double*, std::size_t n) {
                     k.one_pole(in, out, n, 0.17, st);
                   });
      });
  benchmark::RegisterBenchmark(
      ("Kernel_slew" + suffix).c_str(), [backend](benchmark::State& s) {
        gb::SlewCoeffs c;
        c.max_step = 0.00125;
        c.lin = 0.0124;
        c.leak = 0.00083;
        c.has_lin = true;
        c.has_leak = true;
        gb::SlewState st;
        kernel_row(s, backend,
                   [&](const gb::Kernels& k, const double* in, double* out,
                       double*, std::size_t n) { k.slew(in, out, n, c, st); });
      });
  benchmark::RegisterBenchmark(
      ("Kernel_boxmuller" + suffix).c_str(), [backend](benchmark::State& s) {
        // Uniform pair arrays prepared once; the row isolates the
        // transform (det_log + sqrt + det_sincos2pi), not the RNG.
        const auto& raw = stim();
        std::vector<double> u1(raw.size()), u2(raw.size());
        for (std::size_t i = 0; i < raw.size(); ++i) {
          u2[i] = std::abs(raw[i]) / 0.71;
          if (u2[i] >= 1.0) u2[i] = 0.999;
          u1[i] = 1.0 - u2[i];
        }
        kernel_row(s, backend,
                   [&](const gb::Kernels& k, const double*, double* oc,
                       double* os, std::size_t n) {
                     k.box_muller(u1.data(), u2.data(), oc, os, n);
                   });
      });
}

// Whole-channel block path per backend — the tentpole target number:
// "VariableDelayChannel_block/avx2" vs "/scalar".
void register_channel_rows(const char* backend) {
  benchmark::RegisterBenchmark(
      (std::string("VariableDelayChannel_block/") + backend).c_str(),
      [backend](benchmark::State& s) {
        gb::select(backend);
        gc::VariableDelayChannel ch(gc::ChannelConfig::prototype(), Rng(5));
        ch.set_vctrl(0.75);
        run_block(s, ch);
        gb::select("scalar");
      });
  benchmark::RegisterBenchmark(
      (std::string("FineDelayLine_block/") + backend).c_str(),
      [backend](benchmark::State& s) {
        gb::select(backend);
        gc::FineDelayLine line(gc::FineDelayConfig{}, Rng(4));
        line.set_vctrl(0.75);
        run_block(s, line);
        gb::select("scalar");
      });
}

// ---------------------------------------------------------------------------
// Lane-batched rows: four independent streams interleaved time-major and
// advanced together through the serial recursions, so items = 4 x kN per
// iteration. The tentpole metric — batch_channel_speedup in the json —
// is "ChannelBatch4_block/avx2" against the solo
// "VariableDelayChannel_block/scalar": what batching plus SIMD buys over
// one stream on the reference backend.

template <typename Fill>
std::vector<double> interleaved4(Fill fill) {
  constexpr std::size_t kW = 4;
  const auto& in = stim();
  std::vector<double> buf(in.size() * kW);
  for (std::size_t i = 0; i < in.size(); ++i)
    for (std::size_t l = 0; l < kW; ++l) buf[i * kW + l] = fill(in[i], l);
  return buf;
}

void register_batch_rows(const char* backend) {
  const std::string suffix = std::string("/") + backend;
  benchmark::RegisterBenchmark(
      ("Kernel_onepole_batch4" + suffix).c_str(),
      [backend](benchmark::State& s) {
        constexpr std::size_t kW = 4;
        const std::vector<double> buf = interleaved4(
            [](double x, std::size_t l) {
              return x * (1.0 + 0.1 * static_cast<double>(l));
            });
        std::vector<double> out(buf.size());
        const std::size_t n = buf.size() / kW;
        const double alpha[kW] = {0.17, 0.17, 0.17, 0.17};
        gb::OnePoleState st[kW];
        gb::OnePoleState* stp[kW] = {&st[0], &st[1], &st[2], &st[3]};
        gb::select(backend);
        const gb::Kernels& k = gb::active();
        for (auto _ : s) {
          k.one_pole_batch(buf.data(), out.data(), n, kW, alpha, stp);
          benchmark::DoNotOptimize(out.data());
          benchmark::ClobberMemory();
        }
        s.SetItemsProcessed(static_cast<int64_t>(s.iterations() * n * kW));
        gb::select("scalar");
      });
  benchmark::RegisterBenchmark(
      ("Kernel_slew_batch4" + suffix).c_str(), [backend](benchmark::State& s) {
        constexpr std::size_t kW = 4;
        const std::vector<double> buf = interleaved4(
            [](double x, std::size_t l) {
              return x * (1.0 + 0.1 * static_cast<double>(l));
            });
        std::vector<double> out(buf.size());
        const std::size_t n = buf.size() / kW;
        gb::SlewCoeffs c;
        c.max_step = 0.00125;
        c.lin = 0.0124;
        c.leak = 0.00083;
        c.has_lin = true;
        c.has_leak = true;
        const gb::SlewCoeffs* cp[kW] = {&c, &c, &c, &c};
        gb::SlewState st[kW];
        gb::SlewState* stp[kW] = {&st[0], &st[1], &st[2], &st[3]};
        gb::select(backend);
        const gb::Kernels& k = gb::active();
        for (auto _ : s) {
          k.slew_batch(buf.data(), out.data(), n, kW, cp, stp);
          benchmark::DoNotOptimize(out.data());
          benchmark::ClobberMemory();
        }
        s.SetItemsProcessed(static_cast<int64_t>(s.iterations() * n * kW));
        gb::select("scalar");
      });
  benchmark::RegisterBenchmark(
      ("ChannelBatch4_block" + suffix).c_str(),
      [backend](benchmark::State& s) {
        constexpr std::size_t kW = 4;
        gb::select(backend);
        const gs::Waveform wf(0.0, kDt, stim());
        std::vector<gc::VariableDelayChannel> chans;
        chans.reserve(kW);
        for (std::size_t i = 0; i < kW; ++i) {
          chans.emplace_back(gc::ChannelConfig::prototype(),
                             Rng(5 + static_cast<std::uint64_t>(i)));
          chans.back().set_vctrl(0.75);
        }
        gc::BatchRunner runner;
        for (auto& c : chans) runner.add(c);
        std::vector<gs::Waveform> outs;
        for (auto _ : s) {
          runner.run(wf, outs);
          benchmark::DoNotOptimize(outs.data());
          benchmark::ClobberMemory();
        }
        s.SetItemsProcessed(
            static_cast<int64_t>(s.iterations() * wf.size() * kW));
        gb::select("scalar");
      });
  benchmark::RegisterBenchmark(
      ("FineDelayBatch4_block" + suffix).c_str(),
      [backend](benchmark::State& s) {
        constexpr std::size_t kW = 4;
        gb::select(backend);
        const gs::Waveform wf(0.0, kDt, stim());
        std::vector<gc::FineDelayLine> lines;
        lines.reserve(kW);
        for (std::size_t i = 0; i < kW; ++i) {
          lines.emplace_back(gc::FineDelayConfig{},
                             Rng(4 + static_cast<std::uint64_t>(i)));
          lines.back().set_vctrl(0.75);
        }
        gc::BatchRunner runner;
        for (auto& l : lines) runner.add(l);
        std::vector<gs::Waveform> outs;
        for (auto _ : s) {
          runner.run(wf, outs);
          benchmark::DoNotOptimize(outs.data());
          benchmark::ClobberMemory();
        }
        s.SetItemsProcessed(
            static_cast<int64_t>(s.iterations() * wf.size() * kW));
        gb::select("scalar");
      });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = gdelay::bench::parse_outdir(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  register_kernel_rows("scalar");
  register_channel_rows("scalar");
  register_batch_rows("scalar");
  if (avx2_usable()) {
    register_kernel_rows("avx2");
    register_channel_rows("avx2");
    register_batch_rows("avx2");
  } else {
    std::printf("note: AVX2 backend not usable on this machine; "
                "scalar-only rows\n");
  }

  gdelay::bench::CaptureReporter rep;
  benchmark::RunSpecifiedBenchmarks(&rep);

  const auto speedup_of = [&](const char* base) {
    const double st = rep.items_per_sec(std::string(base) + "_step");
    const double bl = rep.items_per_sec(std::string(base) + "_block");
    return st > 0.0 ? bl / st : 0.0;
  };
  const double fine = speedup_of("FineDelayLine");
  const double chan = speedup_of("VariableDelayChannel");

  std::printf("\nblock-vs-step speedup at dt = %.2f ps:\n", kDt);
  std::printf("  FineDelayLine       : %.2fx (target >= 3x)  %s\n", fine,
              fine >= 3.0 ? "PASS" : "MISS");
  std::printf("  VariableDelayChannel: %.2fx\n", chan);

  // SIMD verdict: the AVX2 table vs the scalar oracle, both on the block
  // path (the PR that introduced blocks is the baseline the 4x target is
  // written against).
  const auto ratio_of = [&](const std::string& name) {
    const double sc = rep.items_per_sec(name + "/scalar");
    const double vx = rep.items_per_sec(name + "/avx2");
    return sc > 0.0 && vx > 0.0 ? vx / sc : 0.0;
  };
  const double simd_chan = ratio_of("VariableDelayChannel_block");
  if (avx2_usable()) {
    std::printf("\navx2-vs-scalar speedup (block path):\n");
    for (const char* k : {"Kernel_tanh", "Kernel_exp", "Kernel_onepole",
                          "Kernel_slew", "Kernel_boxmuller"})
      std::printf("  %-20s: %.2fx\n", k, ratio_of(k));
    std::printf("  FineDelayLine_block : %.2fx\n",
                ratio_of("FineDelayLine_block"));
    std::printf("  VariableDelayChannel_block: %.2fx (target >= 4x)  %s\n",
                simd_chan, simd_chan >= 4.0 ? "PASS" : "MISS");
  }

  // Lane-batched verdict: 4 streams through the batched executor on the
  // AVX2 table vs one stream on the scalar oracle — what multi-stream
  // work (MC trials, sweep points, board channels) actually gains.
  const double solo_scalar =
      rep.items_per_sec("VariableDelayChannel_block/scalar");
  const double batch_scalar = rep.items_per_sec("ChannelBatch4_block/scalar");
  const double batch_avx2 = rep.items_per_sec("ChannelBatch4_block/avx2");
  const double batch_chan =
      solo_scalar > 0.0 && batch_avx2 > 0.0 ? batch_avx2 / solo_scalar : 0.0;
  std::printf("\nlane-batched (4-wide) vs solo scalar channel:\n");
  std::printf("  ChannelBatch4/scalar      : %.2fx (batching alone)\n",
              solo_scalar > 0.0 ? batch_scalar / solo_scalar : 0.0);
  if (avx2_usable()) {
    std::printf("  Kernel_onepole_batch4     : %.2fx (avx2 vs scalar batch)\n",
                ratio_of("Kernel_onepole_batch4"));
    std::printf("  Kernel_slew_batch4        : %.2fx (avx2 vs scalar batch)\n",
                ratio_of("Kernel_slew_batch4"));
    std::printf("  FineDelayBatch4_block     : %.2fx (avx2 vs scalar batch)\n",
                ratio_of("FineDelayBatch4_block"));
    std::printf("  batch_channel_speedup     : %.2fx (target >= 3x)  %s\n",
                batch_chan, batch_chan >= 3.0 ? "PASS" : "MISS");
  }

  const auto heap = gdelay::bench::heap_snapshot();
  gdelay::bench::MemReport mem;
  mem.peak_rss_bytes = gdelay::bench::peak_rss_bytes();
  mem.heap_peak_bytes = heap.peak_bytes;
  mem.heap_total_bytes = heap.total_bytes;
  mem.alloc_count = heap.alloc_count;
  gdelay::bench::write_gbench_json(
      (outdir + "/BENCH_kernels.json").c_str(), "kernels", rep.rows,
      {{"dt_ps", kDt},
       {"fine_delay_block_speedup", fine},
       {"channel_block_speedup", chan},
       {"speedup_target", 3.0},
       {"simd_channel_speedup", simd_chan},
       {"simd_speedup_target", 4.0},
       {"batch_channel_speedup", batch_chan},
       {"batch_speedup_target", 3.0}},
      &mem);
  benchmark::Shutdown();
  return 0;
}
