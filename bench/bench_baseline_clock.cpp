// Baseline comparison (paper introduction, Fig. 1): adjusting the CLOCK
// phase — the conventional PLL/DLL solution — versus delaying the DATA.
//
// Per-lane links (PCIe-style) are happy with clock-phase adjustment:
// each receiver centers its own clock in its own data eye. A parallel-
// synchronous bus (HyperTransport-3-style) has ONE clock for N skewed
// lanes: the best single clock phase still loses the skew span from the
// common window, which is exactly why the paper builds a per-lane DATA
// delay instead.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "ate/bus.h"
#include "ate/controller.h"
#include "ate/dut.h"
#include "bench/common.h"
#include "core/clock_shifter.h"
#include "signal/pattern.h"
#include "util/rng.h"

using namespace gdelay;

int main() {
  bench::banner("Baseline: clock-phase adjustment vs data-path delay",
                "Fig. 1 and Section 1 (PCIe vs HyperTransport discussion)");

  util::Rng rng(2008);
  ate::AteBusConfig bc;
  bc.n_channels = 4;
  bc.rate_gbps = 6.4;
  bc.skew_span_ps = 120.0;
  bc.rj_sigma_ps = 0.8;
  ate::AteBus bus(bc, rng.fork(1));
  const double ui = 1000.0 / bc.rate_gbps;
  const auto training = sig::prbs(7, 96);

  ate::DutReceiver rx;
  std::vector<ate::PhaseScan> scans;
  bench::section("Per-lane eyes (skewed launch, no correction)");
  for (int i = 0; i < bc.n_channels; ++i) {
    const auto launched = bus.channel(i).drive(training);
    const auto scan =
        rx.scan_phase(launched.wf, training, ui,
                      bc.synth.lead_in_ps + ui / 2.0, 80, 48);
    scans.push_back(scan);
    std::printf("  lane %d window %5.1f ps (skew %+7.1f ps)\n", i,
                scan.window_ps, bus.channel(i).static_skew_ps());
  }

  bench::section("Strategy A: per-lane clock phase (PCIe-style links)");
  std::printf(
      "  each lane gets its own recovered/adjusted clock -> each lane's\n"
      "  full window is usable:\n");
  double worst = 1e300;
  for (int i = 0; i < bc.n_channels; ++i) {
    // A DLL centers the strobe in this lane's eye; usable margin is the
    // lane's own window (minus interpolator quantization).
    core::ClockPhaseShifterConfig cc;
    cc.period_ps = ui;
    core::ClockPhaseShifter dll(cc, rng.fork(50 + static_cast<std::uint64_t>(i)));
    const double usable =
        scans[static_cast<std::size_t>(i)].window_ps - dll.step_ps();
    worst = std::min(worst, usable);
    std::printf("  lane %d usable margin %5.1f ps\n", i, usable);
  }
  std::printf("  -> works (worst lane %5.1f ps), but needs one clock per\n"
              "     lane and tolerates channel-to-channel skew by design.\n",
              worst);

  bench::section("Strategy B: ONE clock phase for the whole bus (HT3-style)");
  const auto common = ate::intersect_scans(scans, ui);
  std::printf(
      "  the best single strobe phase only has the INTERSECTION of the\n"
      "  lane windows to work with: %.1f ps%s\n", common.window_ps,
      common.window_ps <= 0.0 ? " (no common window at all)" : "");
  std::printf("  clock-phase adjustment cannot create a common window —\n"
              "  it can only slide within whatever intersection exists.\n");

  bench::section("Strategy C: per-lane DATA delay (this paper)");
  std::vector<core::VariableDelayChannel> delays;
  for (int i = 0; i < bc.n_channels; ++i)
    delays.emplace_back(core::ChannelConfig::prototype(),
                        rng.fork(100 + static_cast<std::uint64_t>(i)));
  ate::DeskewController::Options opt;
  opt.training = training;
  opt.calibration.n_vctrl_points = 13;
  ate::DeskewController ctl(bus, delays, opt);
  const auto rep = ctl.run();
  std::vector<ate::PhaseScan> fixed;
  for (int i = 0; i < bc.n_channels; ++i) {
    const auto launched = bus.channel(i).drive(training);
    const auto received =
        delays[static_cast<std::size_t>(i)].process(launched.wf);
    fixed.push_back(rx.scan_phase(received, training, ui,
                                  bc.synth.lead_in_ps + ui / 2.0, 80, 48));
  }
  const auto common_fixed = ate::intersect_scans(fixed, ui);
  std::printf("  residual bus skew %.2f ps -> common window %.1f ps\n",
              rep.span_after_ps, common_fixed.window_ps);
  std::printf(
      "\n  verdict: clock phase solves the narrow-band problem (Fig. 1);\n"
      "  only the wide-band data delay makes a parallel-synchronous bus\n"
      "  capturable with one strobe — the paper's motivation.\n");
  return 0;
}
