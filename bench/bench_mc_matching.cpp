// Monte-Carlo study (ours): does the design meet its requirements across
// manufacturing scatter? The paper reports one 2-channel build and one
// 4-channel build; a production release needs the distribution. We draw
// 12 channel instances with process variation, run the full calibration
// flow on each, and tabulate range / resolution / programming accuracy.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/batch.h"
#include "core/board.h"
#include "core/pipeline.h"
#include "core/requirements.h"
#include "measure/sinks.h"
#include "measure/stats.h"
#include "signal/pattern.h"
#include "signal/stream.h"
#include "signal/synth.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace gdelay;
using R = core::Requirements;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Monte-Carlo: requirements across process variation",
                "(ours; extends the paper's single-build report)");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 96), sc);

  constexpr int kInstances = 12;
  core::DelayBoardConfig bcfg;
  bcfg.n_channels = kInstances;
  core::DelayBoard board(bcfg, rng.fork(1));
  core::DelayCalibrator::Options o;
  o.n_vctrl_points = 9;
  board.calibrate(stim.wf, o);

  // The stimulus edges are shared by every instance's delay measurement:
  // extract them once, streaming, and let the per-instance delay sinks
  // pair against them.
  const meas::DelayMeterOptions dopt;
  meas::EdgeSink ref_edges = meas::DelayMeterSink::reference_sink(dopt);
  {
    sig::WaveformSource src(stim.wf);
    core::Pipeline meter;
    meter.run(src, ref_edges);
  }

  // Each instance programs and measures its own channel — disjoint state.
  // Trials ride the lane-batched executor in groups of four (one AVX2
  // vector per serial recursion step); groups still fan out across the
  // pool, and the batch contract keeps every instance's samples
  // bit-identical to its solo streaming run, so the table below matches
  // the old per-trial flow exactly for any GDELAY_THREADS.
  std::vector<double> fine, total, res, err;
  struct Trial { double fine, total, res, err; };
  constexpr std::size_t kGroup = 4;
  constexpr std::size_t n_groups = (kInstances + kGroup - 1) / kGroup;
  const std::vector<std::vector<Trial>> trial_groups = util::parallel_map(
      n_groups, [&](std::size_t g) {
        const std::size_t lo = g * kGroup;
        const std::size_t hi = std::min(lo + kGroup, std::size_t{kInstances});
        core::BatchRunner runner;
        std::vector<meas::DelayMeterSink> sinks;
        sinks.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          board.program(static_cast<int>(i), 70.0);
          runner.add(board.channel(static_cast<int>(i)));
          sinks.emplace_back(ref_edges, dopt);
        }
        std::vector<meas::ISampleSink*> sp;
        for (auto& s : sinks) sp.push_back(&s);
        runner.run(stim.wf, sp);
        std::vector<Trial> out;
        out.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          const auto& cal = board.calibrations()[i];
          const double realized =
              sinks[i - lo].result().mean_ps - cal.base_latency_ps;
          out.push_back(Trial{cal.fine_range_ps(), cal.total_range_ps(),
                              cal.resolution_ps(), std::abs(realized - 70.0)});
        }
        return out;
      });
  std::vector<Trial> trials;
  trials.reserve(kInstances);
  for (const auto& g : trial_groups)
    trials.insert(trials.end(), g.begin(), g.end());
  bench::section("Per-instance calibration results");
  std::printf("  %4s %10s %11s %12s %12s\n", "inst", "fine(ps)",
              "total(ps)", "res(ps/LSB)", "|err@70ps|");
  for (int i = 0; i < kInstances; ++i) {
    const auto& t = trials[static_cast<std::size_t>(i)];
    fine.push_back(t.fine);
    total.push_back(t.total);
    res.push_back(t.res);
    err.push_back(t.err);
    std::printf("  %4d %10.2f %11.2f %12.4f %12.3f\n", i,
                fine.back(), total.back(), res.back(), err.back());
  }

  const auto fs = meas::summarize(fine);
  const auto ts = meas::summarize(total);
  const auto rs = meas::summarize(res);
  const auto es = meas::summarize(err);
  bench::section("Distribution & verdicts");
  std::printf("  fine range : %6.2f +/- %4.2f ps (min %6.2f)  need > %.0f: %s\n",
              fs.mean, fs.stddev, fs.min, R::kFineRangeNeededPs,
              fs.min > R::kFineRangeNeededPs ? "PASS" : "FAIL");
  std::printf("  total range: %6.2f +/- %4.2f ps (min %6.2f)  need > %.0f: %s\n",
              ts.mean, ts.stddev, ts.min, R::kTotalRangePs,
              ts.min > R::kTotalRangePs ? "PASS" : "FAIL");
  std::printf("  resolution : %6.4f ps/LSB worst %6.4f     need < %.0f: %s\n",
              rs.mean, rs.max, R::kResolutionPs,
              rs.max < R::kResolutionPs ? "PASS" : "FAIL");
  std::printf("  prog error : %6.3f ps mean, worst %5.3f   (calibration\n"
              "               absorbs the instance-to-instance scatter)\n",
              es.mean, es.max);

  bench::section("Slow corner (-3 sigma everything)");
  {
    core::ChannelConfig corner = core::ProcessVariation::slow_corner(
        core::ChannelConfig::prototype(), 3.0);
    core::VariableDelayChannel ch(corner, rng.fork(99));
    core::DelayCalibrator cal(o);
    const auto c = cal.calibrate(ch, stim.wf);
    std::printf("  fine %.2f ps, total %.2f ps -> %s at the corner\n",
                c.fine_range_ps(), c.total_range_ps(),
                c.total_range_ps() > R::kTotalRangePs ? "still PASS"
                                                      : "FAIL");
  }
  bench::write_figure_json(outdir, "mc_matching",
                           {{"fine_range_mean_ps", fs.mean},
                            {"fine_range_min_ps", fs.min},
                            {"total_range_min_ps", ts.min},
                            {"resolution_worst_ps", rs.max},
                            {"prog_error_worst_ps", es.max}});
  return 0;
}
