// Monte-Carlo study (ours): does the design meet its requirements across
// manufacturing scatter? The paper reports one 2-channel build and one
// 4-channel build; a production release needs the distribution. We draw
// 12 channel instances with process variation, run the full calibration
// flow on each, and tabulate range / resolution / programming accuracy.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/board.h"
#include "core/pipeline.h"
#include "core/requirements.h"
#include "measure/sinks.h"
#include "measure/stats.h"
#include "signal/pattern.h"
#include "signal/stream.h"
#include "signal/synth.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace gdelay;
using R = core::Requirements;

int main() {
  bench::banner("Monte-Carlo: requirements across process variation",
                "(ours; extends the paper's single-build report)");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 96), sc);

  constexpr int kInstances = 12;
  core::DelayBoardConfig bcfg;
  bcfg.n_channels = kInstances;
  core::DelayBoard board(bcfg, rng.fork(1));
  core::DelayCalibrator::Options o;
  o.n_vctrl_points = 9;
  board.calibrate(stim.wf, o);

  // The stimulus edges are shared by every instance's delay measurement:
  // extract them once, streaming, and let the per-instance delay sinks
  // pair against them.
  const meas::DelayMeterOptions dopt;
  meas::EdgeSink ref_edges = meas::DelayMeterSink::reference_sink(dopt);
  {
    sig::WaveformSource src(stim.wf);
    core::Pipeline meter;
    meter.run(src, ref_edges);
  }

  // Each instance programs and measures its own channel — disjoint state,
  // so the trials fan out across the pool; results are reduced (and
  // printed) in index order, identical for any GDELAY_THREADS. Each trial
  // streams the stimulus through its channel into an incremental delay
  // sink: the delayed trace is never materialized.
  std::vector<double> fine, total, res, err;
  struct Trial { double fine, total, res, err; };
  const std::vector<Trial> trials = util::parallel_map(
      std::size_t{kInstances}, [&](std::size_t i) {
        const auto& cal = board.calibrations()[i];
        board.program(static_cast<int>(i), 70.0);
        sig::WaveformSource src(stim.wf);
        meas::DelayMeterSink delay(ref_edges, dopt);
        core::Pipeline pipe;
        pipe.add_stage(board.channel(static_cast<int>(i)));
        pipe.run(src, delay);
        const double realized = delay.result().mean_ps - cal.base_latency_ps;
        return Trial{cal.fine_range_ps(), cal.total_range_ps(),
                     cal.resolution_ps(), std::abs(realized - 70.0)};
      });
  bench::section("Per-instance calibration results");
  std::printf("  %4s %10s %11s %12s %12s\n", "inst", "fine(ps)",
              "total(ps)", "res(ps/LSB)", "|err@70ps|");
  for (int i = 0; i < kInstances; ++i) {
    const auto& t = trials[static_cast<std::size_t>(i)];
    fine.push_back(t.fine);
    total.push_back(t.total);
    res.push_back(t.res);
    err.push_back(t.err);
    std::printf("  %4d %10.2f %11.2f %12.4f %12.3f\n", i,
                fine.back(), total.back(), res.back(), err.back());
  }

  const auto fs = meas::summarize(fine);
  const auto ts = meas::summarize(total);
  const auto rs = meas::summarize(res);
  const auto es = meas::summarize(err);
  bench::section("Distribution & verdicts");
  std::printf("  fine range : %6.2f +/- %4.2f ps (min %6.2f)  need > %.0f: %s\n",
              fs.mean, fs.stddev, fs.min, R::kFineRangeNeededPs,
              fs.min > R::kFineRangeNeededPs ? "PASS" : "FAIL");
  std::printf("  total range: %6.2f +/- %4.2f ps (min %6.2f)  need > %.0f: %s\n",
              ts.mean, ts.stddev, ts.min, R::kTotalRangePs,
              ts.min > R::kTotalRangePs ? "PASS" : "FAIL");
  std::printf("  resolution : %6.4f ps/LSB worst %6.4f     need < %.0f: %s\n",
              rs.mean, rs.max, R::kResolutionPs,
              rs.max < R::kResolutionPs ? "PASS" : "FAIL");
  std::printf("  prog error : %6.3f ps mean, worst %5.3f   (calibration\n"
              "               absorbs the instance-to-instance scatter)\n",
              es.mean, es.max);

  bench::section("Slow corner (-3 sigma everything)");
  {
    core::ChannelConfig corner = core::ProcessVariation::slow_corner(
        core::ChannelConfig::prototype(), 3.0);
    core::VariableDelayChannel ch(corner, rng.fork(99));
    core::DelayCalibrator cal(o);
    const auto c = cal.calibrate(ch, stim.wf);
    std::printf("  fine %.2f ps, total %.2f ps -> %s at the corner\n",
                c.fine_range_ps(), c.total_range_ps(),
                c.total_range_ps() > R::kTotalRangePs ? "still PASS"
                                                      : "FAIL");
  }
  return 0;
}
