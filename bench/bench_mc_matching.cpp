// Monte-Carlo study (ours): does the design meet its requirements across
// manufacturing scatter? The paper reports one 2-channel build and one
// 4-channel build; a production release needs the distribution. We draw
// 12 channel instances with process variation, run the full calibration
// flow on each, and tabulate range / resolution / programming accuracy.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "campaign/campaign.h"
#include "core/batch.h"
#include "core/board.h"
#include "core/pipeline.h"
#include "core/requirements.h"
#include "core/variation.h"
#include "fast/edge_model.h"
#include "measure/sinks.h"
#include "measure/stats.h"
#include "signal/pattern.h"
#include "signal/stream.h"
#include "signal/synth.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/thread_pool.h"

using namespace gdelay;
using R = core::Requirements;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Monte-Carlo: requirements across process variation",
                "(ours; extends the paper's single-build report)");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 96), sc);

  constexpr int kInstances = 12;
  core::DelayBoardConfig bcfg;
  bcfg.n_channels = kInstances;
  core::DelayBoard board(bcfg, rng.fork(1));
  core::DelayCalibrator::Options o;
  o.n_vctrl_points = 9;
  board.calibrate(stim.wf, o);

  // The stimulus edges are shared by every instance's delay measurement:
  // extract them once, streaming, and let the per-instance delay sinks
  // pair against them.
  const meas::DelayMeterOptions dopt;
  meas::EdgeSink ref_edges = meas::DelayMeterSink::reference_sink(dopt);
  {
    sig::WaveformSource src(stim.wf);
    core::Pipeline meter;
    meter.run(src, ref_edges);
  }

  // Each instance programs and measures its own channel — disjoint state.
  // Trials ride the lane-batched executor in groups of four (one AVX2
  // vector per serial recursion step); groups still fan out across the
  // pool, and the batch contract keeps every instance's samples
  // bit-identical to its solo streaming run, so the table below matches
  // the old per-trial flow exactly for any GDELAY_THREADS.
  std::vector<double> fine, total, res, err;
  struct Trial { double fine, total, res, err; };
  constexpr std::size_t kGroup = 4;
  constexpr std::size_t n_groups = (kInstances + kGroup - 1) / kGroup;
  const std::vector<std::vector<Trial>> trial_groups = util::parallel_map(
      n_groups, [&](std::size_t g) {
        const std::size_t lo = g * kGroup;
        const std::size_t hi = std::min(lo + kGroup, std::size_t{kInstances});
        core::BatchRunner runner;
        std::vector<meas::DelayMeterSink> sinks;
        sinks.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          board.program(static_cast<int>(i), 70.0);
          runner.add(board.channel(static_cast<int>(i)));
          sinks.emplace_back(ref_edges, dopt);
        }
        std::vector<meas::ISampleSink*> sp;
        for (auto& s : sinks) sp.push_back(&s);
        runner.run(stim.wf, sp);
        std::vector<Trial> out;
        out.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          const auto& cal = board.calibrations()[i];
          const double realized =
              sinks[i - lo].result().mean_ps - cal.base_latency_ps;
          out.push_back(Trial{cal.fine_range_ps(), cal.total_range_ps(),
                              cal.resolution_ps(), std::abs(realized - 70.0)});
        }
        return out;
      });
  std::vector<Trial> trials;
  trials.reserve(kInstances);
  for (const auto& g : trial_groups)
    trials.insert(trials.end(), g.begin(), g.end());
  bench::section("Per-instance calibration results");
  std::printf("  %4s %10s %11s %12s %12s\n", "inst", "fine(ps)",
              "total(ps)", "res(ps/LSB)", "|err@70ps|");
  for (int i = 0; i < kInstances; ++i) {
    const auto& t = trials[static_cast<std::size_t>(i)];
    fine.push_back(t.fine);
    total.push_back(t.total);
    res.push_back(t.res);
    err.push_back(t.err);
    std::printf("  %4d %10.2f %11.2f %12.4f %12.3f\n", i,
                fine.back(), total.back(), res.back(), err.back());
  }

  const auto fs = meas::summarize(fine);
  const auto ts = meas::summarize(total);
  const auto rs = meas::summarize(res);
  const auto es = meas::summarize(err);
  bench::section("Distribution & verdicts");
  std::printf("  fine range : %6.2f +/- %4.2f ps (min %6.2f)  need > %.0f: %s\n",
              fs.mean, fs.stddev, fs.min, R::kFineRangeNeededPs,
              fs.min > R::kFineRangeNeededPs ? "PASS" : "FAIL");
  std::printf("  total range: %6.2f +/- %4.2f ps (min %6.2f)  need > %.0f: %s\n",
              ts.mean, ts.stddev, ts.min, R::kTotalRangePs,
              ts.min > R::kTotalRangePs ? "PASS" : "FAIL");
  std::printf("  resolution : %6.4f ps/LSB worst %6.4f     need < %.0f: %s\n",
              rs.mean, rs.max, R::kResolutionPs,
              rs.max < R::kResolutionPs ? "PASS" : "FAIL");
  std::printf("  prog error : %6.3f ps mean, worst %5.3f   (calibration\n"
              "               absorbs the instance-to-instance scatter)\n",
              es.mean, es.max);

  bench::section("Slow corner (-3 sigma everything)");
  {
    core::ChannelConfig corner = core::ProcessVariation::slow_corner(
        core::ChannelConfig::prototype(), 3.0);
    core::VariableDelayChannel ch(corner, rng.fork(99));
    core::DelayCalibrator cal(o);
    const auto c = cal.calibrate(ch, stim.wf);
    std::printf("  fine %.2f ps, total %.2f ps -> %s at the corner\n",
                c.fine_range_ps(), c.total_range_ps(),
                c.total_range_ps() > R::kTotalRangePs ? "still PASS"
                                                      : "FAIL");
  }
  // -------------------------------------------------------------------
  // Extreme statistics: 12 analog instances bound the tails poorly. The
  // campaign orchestrator runs 1e6 edge-model trials — fit the fast model
  // once on the prototype, then perturb its parameters per trial with
  // ProcessVariation-style sigmas — sharded over processes, with the
  // merged per-trial record set pinned bit-identical across shard counts.
  // -------------------------------------------------------------------
  bench::section("1e6-trial edge-model campaign (process-sharded)");
  core::VariableDelayChannel proto_ch(core::ChannelConfig::prototype(),
                                      rng.fork(7));
  const fast::EdgeModelParams proto =
      fast::fit_edge_model(proto_ch, stim.wf, stim.unit_interval_ps, o);
  const core::ProcessVariation pv;
  const double fine_span = proto.fine_curve.y_span();

  constexpr std::uint64_t kTrials = 1000000;
  const auto factory = [] {
    campaign::AccumulatorSet s;
    s.push_back(std::make_unique<campaign::RecordAccumulator>(4));
    return s;
  };
  // One trial = one synthetic part: scale the fine characteristic, jitter
  // the coarse tap lengths, scatter the added RJ, and model the post-
  // calibration programming residual as DAC quantization + measurement
  // noise (per-instance calibration absorbs the systematic scatter, as
  // the analog table above shows).
  const auto unit_fn = [&](std::uint64_t unit, util::Rng& trial_rng,
                           campaign::AccumulatorSet& accs) {
    const double fine_scale =
        1.0 + pv.buffer_sigma_frac * trial_rng.gaussian();
    double worst_tap = 0.0;
    for (std::size_t t = 1; t < proto.tap_offset_ps.size(); ++t) {
      const double tap = proto.tap_offset_ps[t] +
                         pv.tap_length_sigma_ps * trial_rng.gaussian();
      worst_tap = std::max(worst_tap, tap);
    }
    const double rj = std::max(
        0.0, proto.added_rj_sigma_ps *
                 (1.0 + pv.noise_sigma_frac * trial_rng.gaussian()));
    const double fine_range = fine_span * fine_scale;
    const double total_range = fine_range + worst_tap;
    const double resolution = fine_range / 255.0;
    const double err =
        std::abs(resolution * (trial_rng.uniform() - 0.5)) +
        std::abs(rj / std::sqrt(96.0) * trial_rng.gaussian());
    const double rec[4] = {fine_range, total_range, resolution, err};
    static_cast<campaign::RecordAccumulator&>(*accs[0]).add(unit, rec);
  };

  const auto acc_hash = [](const campaign::CampaignResult& r) {
    util::ByteWriter w;
    r.accumulators[0]->save(w);
    return util::fnv1a64(w.bytes().data(), w.bytes().size());
  };

  std::printf("  %7s %10s %12s %10s   %s\n", "shards", "mode", "trials/s",
              "speedup", "merged-state hash");
  bool determinism_ok = true;
  std::uint64_t ref_hash = 0;
  double t1 = 0.0, t8 = 0.0, rate_best = 0.0;
  campaign::CampaignResult last;
  for (const std::size_t shards : {1, 2, 4, 8}) {
    campaign::CampaignSpec spec;
    spec.name = "mc_matching";
    spec.seed = 20080;
    spec.n_units = kTrials;
    spec.n_shards = shards;
    const auto start = std::chrono::steady_clock::now();
    campaign::CampaignResult r = campaign::run_campaign(spec, factory,
                                                        unit_fn);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const std::uint64_t h = acc_hash(r);
    if (shards == 1) {
      ref_hash = h;
      t1 = secs;
    }
    if (shards == 8) t8 = secs;
    if (h != ref_hash) determinism_ok = false;
    const double rate = secs > 0.0 ? static_cast<double>(kTrials) / secs
                                   : 0.0;
    rate_best = std::max(rate_best, rate);
    std::printf("  %7zu %10s %12.3g %9.2fx   %016llx%s\n", shards,
                campaign::mode_name(r.mode), rate,
                secs > 0.0 ? t1 / secs : 0.0,
                static_cast<unsigned long long>(h),
                h == ref_hash ? "" : "  ** MISMATCH **");
    last = std::move(r);
  }
  const double speedup = t8 > 0.0 ? t1 / t8 : 0.0;
  std::printf("  shard-count invariance: %s; 8-vs-1 speedup %.2fx"
              " (%zu hardware threads)\n",
              determinism_ok ? "PASS" : "FAIL", speedup,
              static_cast<std::size_t>(
                  std::max(1u, std::thread::hardware_concurrency())));

  // Tail statistics from the merged per-trial records (unit order, so the
  // reduction itself is shard-invariant).
  const auto& recs =
      static_cast<const campaign::RecordAccumulator&>(*last.accumulators[0]);
  std::vector<double> c_fine, c_total, c_err;
  c_fine.reserve(recs.size());
  c_total.reserve(recs.size());
  c_err.reserve(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const double* v = recs.values_at(i);
    c_fine.push_back(v[0]);
    c_total.push_back(v[1]);
    c_err.push_back(v[3]);
  }
  const auto cfs = meas::summarize(c_fine);
  const auto cts = meas::summarize(c_total);
  const auto ces = meas::summarize(c_err);
  std::printf("  over %zu trials:\n", recs.size());
  std::printf("    fine range  %6.2f +/- %4.2f ps, min %6.2f  need > %.0f:"
              " %s\n",
              cfs.mean, cfs.stddev, cfs.min, R::kFineRangeNeededPs,
              cfs.min > R::kFineRangeNeededPs ? "PASS" : "FAIL");
  std::printf("    total range %6.2f +/- %4.2f ps, min %6.2f  need > %.0f:"
              " %s\n",
              cts.mean, cts.stddev, cts.min, R::kTotalRangePs,
              cts.min > R::kTotalRangePs ? "PASS" : "FAIL");
  std::printf("    prog error  %6.3f ps mean, worst %6.3f ps\n", ces.mean,
              ces.max);

  bench::CampaignStamp cs;
  cs.mode = campaign::mode_name(last.mode);
  cs.shards = last.n_shards;
  cs.units = static_cast<std::size_t>(last.units_done);
  cs.trials_per_sec = rate_best;
  cs.resumed = last.resumed;
  bench::write_figure_json(outdir, "mc_matching",
                           {{"fine_range_mean_ps", fs.mean},
                            {"fine_range_min_ps", fs.min},
                            {"total_range_min_ps", ts.min},
                            {"resolution_worst_ps", rs.max},
                            {"prog_error_worst_ps", es.max},
                            {"campaign_trials",
                             static_cast<double>(recs.size())},
                            {"campaign_fine_min_ps", cfs.min},
                            {"campaign_total_min_ps", cts.min},
                            {"campaign_err_worst_ps", ces.max},
                            {"campaign_speedup_8v1", speedup},
                            {"campaign_determinism_ok",
                             determinism_ok ? 1.0 : 0.0}},
                           &cs);
  if (!determinism_ok) {
    std::fprintf(stderr, "FAIL: merged campaign state drifted across shard "
                         "counts\n");
    return 1;
  }
  return 0;
}
