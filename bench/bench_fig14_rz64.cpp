// Fig. 14 reproduction: performance beyond the NRZ generator's limit,
// probed with an RZ clock at 6.4 GHz (edge density of a 12.8 Gbps NRZ
// stream). The paper reads a fine-delay range of 23.5 ps and TJ = 10.5 ps.
#include <cstdio>

#include "bench/common.h"
#include "core/calibration.h"
#include "core/fine_delay.h"
#include "measure/jitter.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("6.4 GHz clock through the 4-stage fine delay", "Fig. 14");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  const auto stim = sig::synthesize_clock(6.4, 400, sc, nullptr);

  core::FineDelayLine line(core::FineDelayConfig{}, rng.fork(1));
  const core::DelayCalibrator cal;
  const double range = cal.measure_fine_range_periodic(
      line, stim.wf, stim.unit_interval_ps);

  line.set_vctrl(0.75);
  const auto out = line.process(stim.wf);
  const auto j_out =
      meas::measure_jitter(out, stim.unit_interval_ps, bench::settled_jitter());

  bench::section("Measurements (paper vs ours)");
  bench::row_header();
  bench::row("fine delay range @6.4 GHz clock", 23.5, range, "ps");
  bench::row("output TJ", 10.5, j_out.tj_pp_ps, "ps");
  std::printf(
      "\n  known model deviation: at twice the application's maximum edge\n"
      "  rate the behavioral stages convert compression into more jitter\n"
      "  than the silicon prototype did; within the specified band\n"
      "  (<= 6.4 Gbps NRZ) the jitter figures match (see Fig. 12/13).\n");
  std::printf(
      "\n  the range collapse vs. the ~50 ps low-rate value is emergent:\n"
      "  at a 78 ps half-period the slew-limited output stages no longer\n"
      "  settle to the programmed amplitude, compressing the usable\n"
      "  amplitude span and with it the amplitude-dependent delay.\n");

  bench::section("Eye diagram (folded on the 78 ps half-period)");
  bench::print_eye(out, stim.unit_interval_ps, "delayed 6.4 GHz clock");
  bench::write_figure_json(outdir, "fig14_rz64",
                           {{"fine_range_ps", range},
                            {"output_tj_pp_ps", j_out.tj_pp_ps}});
  return 0;
}
