// Requirements-compliance table (Sections 1-2 of the paper): the
// application needs ~1 ps programming resolution, < 5 ps channel-to-
// channel skew, minimal (< 5 ps goal) added jitter, >= 120 ps of range,
// and operation from < 1 to 6.4 Gbps. The paper's prototype met all but
// the jitter goal (it measured ~7 ps added below 6 Gbps) — this harness
// reports the same scorecard for the simulated prototype.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "ate/bus.h"
#include "ate/controller.h"
#include "bench/common.h"
#include "core/calibration.h"
#include "core/channel.h"
#include "core/requirements.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;
using R = core::Requirements;

namespace {

// Scorecard rows, accumulated for the BENCH json: (json_key, value) plus
// a pass counter so the dashboard can track compliance as one number.
std::vector<std::pair<std::string, double>> g_scorecard;
int g_passes = 0;

void verdict(const char* name, const char* json_key, double value,
             double limit, bool less_is_ok, const char* unit) {
  const bool pass = less_is_ok ? value < limit : value > limit;
  std::printf("  %-36s %9.3f %s (req %s %.1f) %s\n", name, value, unit,
              less_is_ok ? "<" : ">", limit, pass ? "PASS" : "FAIL*");
  g_scorecard.emplace_back(json_key, value);
  if (pass) ++g_passes;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Application-requirement compliance", "Sections 1-2");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 127), sc);

  core::VariableDelayChannel ch(core::ChannelConfig::prototype(), rng.fork(1));
  core::DelayCalibrator::Options co;
  co.n_vctrl_points = 17;
  const auto cal = core::DelayCalibrator(co).calibrate(ch, stim.wf);

  bench::section("Delay programming");
  verdict("resolution (12-bit DAC worst step)", "resolution_ps",
          cal.resolution_ps(), R::kResolutionPs, true, "ps");
  verdict("total delay range", "total_range_ps", cal.total_range_ps(),
          R::kTotalRangePs, false, "ps");
  verdict("fine range covers coarse step", "fine_range_ps",
          cal.fine_range_ps(), R::kFineRangeNeededPs, false, "ps");

  bench::section("Added jitter (vs < 5 ps goal; prototype measured ~7 ps)");
  for (double rate : {2.0, 4.8}) {
    sig::SynthConfig jc;
    jc.rate_gbps = rate;
    jc.rj_sigma_ps = 1.5;
    util::Rng jr(77 + static_cast<std::uint64_t>(rate * 10));
    const auto js = sig::synthesize_nrz(sig::prbs(7, 512), jc, &jr);
    ch.set_vctrl(0.75);
    const auto out = ch.process(js.wf);
    const auto jo = bench::settled_jitter();
    const double added =
        meas::measure_jitter(out, js.unit_interval_ps, jo).tj_pp_ps -
        meas::measure_jitter(js.wf, js.unit_interval_ps, jo).tj_pp_ps;
    char label[64], key[64];
    std::snprintf(label, sizeof label, "added TJ at %.1f Gbps", rate);
    std::snprintf(key, sizeof key, "added_tj_ps_%.0fgbps", rate * 10.0);
    verdict(label, key, added, R::kAddedJitterGoalPs, true, "ps");
  }
  std::printf("  (* the paper's own prototype also exceeded the 5 ps goal,\n"
              "     reporting ~7 ps typical below 6 Gbps)\n");

  bench::section("Channel-to-channel skew after deskew");
  ate::AteBusConfig bc;
  bc.n_channels = 4;
  bc.rate_gbps = 6.4;
  bc.skew_span_ps = 120.0;
  ate::AteBus bus(bc, rng.fork(2));
  std::vector<core::VariableDelayChannel> delays;
  for (int i = 0; i < bc.n_channels; ++i)
    delays.emplace_back(core::ChannelConfig::prototype(),
                        rng.fork(20 + static_cast<std::uint64_t>(i)));
  ate::DeskewController::Options opt;
  opt.calibration.n_vctrl_points = 13;
  ate::DeskewController ctl(bus, delays, opt);
  const auto rep = ctl.run();
  verdict("residual bus skew (4 lanes)", "residual_skew_ps",
          rep.span_after_ps, R::kChannelSkewPs, true, "ps");

  bench::section("Operating-rate span");
  for (double rate : {0.8, 6.4}) {
    sig::SynthConfig rc;
    rc.rate_gbps = rate;
    const auto rs = sig::synthesize_nrz(sig::prbs(7, 48), rc);
    core::FineDelayLine line(core::FineDelayConfig{}, rng.fork(3));
    const double range =
        core::DelayCalibrator().measure_fine_range(line, rs.wf);
    char label[64], key[64];
    std::snprintf(label, sizeof label, "fine range at %.1f Gbps", rate);
    std::snprintf(key, sizeof key, "fine_range_ps_%.0fgbps", rate * 10.0);
    verdict(label, key, range, R::kFineRangeNeededPs, false, "ps");
  }

  g_scorecard.emplace_back("requirements_passed",
                           static_cast<double>(g_passes));
  g_scorecard.emplace_back("requirements_total",
                           static_cast<double>(g_scorecard.size() - 1));
  bench::write_figure_json(outdir, "req_compliance", g_scorecard);
  return 0;
}
