// Sinusoidal-jitter tolerance template (ours): the end-use of the
// paper's jitter-injection mode. Sweep the SJ frequency injected through
// the Vctrl port and find, at each frequency, the largest amplitude a
// CDR-based receiver survives. Below the CDR loop bandwidth the loop
// tracks the wander and tolerance is injector-limited; above it the
// untracked jitter eats the receiver's setup/hold margin and the
// tolerance drops — the classic template corner that SerDes specs (and
// the paper's reference [1]) draw.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "ate/cdr.h"
#include "ate/dut.h"
#include "bench/common.h"
#include "core/jitter_injector.h"
#include "measure/jitter.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

namespace {

constexpr double kSetupHoldPs = 48.0;
constexpr double kLoopGain = 0.08;

// Bit errors + setup/hold violations of a CDR receiver on the stressed
// signal.
std::size_t cdr_errors(const sig::SynthResult& stim,
                       const sig::BitPattern& bits,
                       const sig::Waveform& stressed) {
  ate::CdrConfig cc;
  cc.ui_ps = stim.unit_interval_ps;
  cc.gain = kLoopGain;
  ate::CdrReceiver rx(cc);
  const auto res = rx.recover(stressed, 14000.0);
  std::size_t errors =
      ate::DutReceiver::best_alignment_errors(res.bits, bits, 128);

  // Setup/hold: any transition inside the keep-out window of a strobe.
  sig::EdgeExtractOptions eo;
  eo.hysteresis_v = 0.1;
  eo.t_min_ps = 14000.0;
  const auto edge_times = sig::edge_times(sig::extract_edges(stressed, eo));
  for (double strobe : res.strobes_ps) {
    const auto it = std::lower_bound(edge_times.begin(), edge_times.end(),
                                     strobe - kSetupHoldPs);
    if (it != edge_times.end() && *it <= strobe + kSetupHoldPs) ++errors;
  }
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("SJ jitter-tolerance template via Vctrl injection",
                "(ours; Section 5 applied as in ref. [1])");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 6.4;  // tight UI so the untracked margin is small
  const auto bits = sig::prbs(7, 1024);
  const auto stim = sig::synthesize_nrz(bits, sc, nullptr);

  double loop_bw_mhz = 0.0;
  {
    ate::CdrConfig cc;
    cc.ui_ps = stim.unit_interval_ps;
    cc.gain = kLoopGain;
    loop_bw_mhz = 1000.0 * ate::CdrReceiver(cc).loop_bandwidth_ghz();
    std::printf("\n6.4 Gbps, UI %.2f ps, receiver setup/hold %.0f/%.0f ps,"
                " CDR loop bandwidth ~ %.1f MHz\n",
                stim.unit_interval_ps, kSetupHoldPs, kSetupHoldPs,
                1000.0 * ate::CdrReceiver(cc).loop_bandwidth_ghz());
  }

  bench::section("Max tolerated Vctrl SJ amplitude vs frequency");
  std::printf("  %10s %14s %12s\n", "f_SJ(MHz)", "max ampl(Vpp)",
              "~SJ TJ(ps)");
  std::vector<std::pair<std::string, double>> scalars;
  double tol_min_vpp = 1.5, tol_low_vpp = 0.0, tol_high_vpp = 0.0;
  for (double f_mhz : {2.0, 6.0, 20.0, 60.0, 200.0, 600.0}) {
    double lo = 0.0, hi = 1.5;
    for (int iter = 0; iter < 7; ++iter) {
      const double amp = (lo + hi) / 2.0;
      core::JitterInjectorConfig jc;
      jc.sj_pp_v = amp;
      jc.sj_freq_ghz = f_mhz / 1000.0;
      jc.noise_pp_v = 0.0;
      core::JitterInjector inj(jc, rng.fork(static_cast<std::uint64_t>(
                                       f_mhz * 10.0 + iter)));
      const auto out = inj.process(stim.wf);
      if (cdr_errors(stim, bits, out) == 0)
        lo = amp;
      else
        hi = amp;
    }
    core::JitterInjectorConfig jc;
    jc.sj_pp_v = std::max(lo, 0.01);
    jc.sj_freq_ghz = f_mhz / 1000.0;
    jc.noise_pp_v = 0.0;
    core::JitterInjector inj(jc, rng.fork(777));
    meas::JitterMeasureOptions jo;
    jo.settle_ps = 12000.0;
    const double tj =
        meas::measure_jitter(inj.process(stim.wf), stim.unit_interval_ps, jo)
            .tj_pp_ps;
    std::printf("  %10.0f %14.3f %12.1f%s\n", f_mhz, lo, tj,
                lo >= 1.49 ? "  (injector range limit)" : "");
    char key[48];
    std::snprintf(key, sizeof key, "sj_tolerance_vpp_%.0fmhz", f_mhz);
    scalars.emplace_back(key, lo);
    tol_min_vpp = std::min(tol_min_vpp, lo);
    if (f_mhz == 2.0) tol_low_vpp = lo;
    if (f_mhz == 600.0) tol_high_vpp = lo;
  }
  std::printf(
      "\n  shape: tolerance is injector-limited below the CDR loop\n"
      "  bandwidth (printed above) because the loop tracks the wander,\n"
      "  then drops to the untracked setup/hold margin above it — the\n"
      "  standard jitter-tolerance template, produced end-to-end with\n"
      "  the paper's Vctrl injection hookup.\n");

  scalars.emplace_back("cdr_loop_bandwidth_mhz", loop_bw_mhz);
  scalars.emplace_back("sj_tolerance_vpp_min", tol_min_vpp);
  // The template's defining shape: tracked (low-f) tolerance must exceed
  // untracked (high-f) tolerance.
  scalars.emplace_back("template_corner_ratio",
                       tol_high_vpp > 0.0 ? tol_low_vpp / tol_high_vpp : 0.0);
  bench::write_figure_json(outdir, "sj_template", scalars);
  return 0;
}
