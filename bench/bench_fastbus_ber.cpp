// Measured BER bathtub at bus scale (ours): the edge-domain model is
// fast enough to brute-force BER by counting actual bit errors over
// millions of bits per strobe phase — something the sample-level analog
// model cannot do. The measured curve is overlaid against the dual-Dirac
// extrapolation from the same jitter parameters, validating the
// extrapolation the ATE world ships against.
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "fast/fast_bus.h"
#include "measure/bathtub.h"
#include "util/curve.h"
#include "util/rng.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Measured vs extrapolated BER bathtub (edge-domain bus)",
                "(ours; validates the dual-Dirac extrapolation)");

  fast::EdgeModelParams lane;
  lane.base_latency_ps = 320.0;
  lane.fine_curve = util::Curve({0.0, 1.5}, {0.0, 52.0});
  lane.tap_offset_ps = {0.0, 33.0, 66.0, 99.0};
  lane.added_rj_sigma_ps = 2.0;

  fast::FastBusConfig cfg;
  cfg.n_lanes = 8;
  cfg.ui_ps = 156.25;
  cfg.source_rj_sigma_ps = 2.0;
  fast::FastBus bus(cfg, lane, util::Rng(2008));

  // Total per-edge sigma: source RJ + channel RJ in quadrature.
  const double sigma = std::sqrt(2.0 * 2.0 + 2.0 * 2.0);
  constexpr std::size_t kBitsPerLane = 250000;  // 2M bits per phase point

  bench::section("BER vs strobe offset from eye center (8 lanes x 250k bits)");
  std::printf("  %11s %12s %12s\n", "offset(ps)", "measured", "dual-Dirac");
  double ber_center = 0.0, ber_edge = 0.0;
  for (double frac : {0.0, 0.25, 0.32, 0.38, 0.42, 0.45, 0.47, 0.49}) {
    const double off = frac * cfg.ui_ps;
    const auto res = bus.run_ber(kBitsPerLane, off);
    // Dual-Dirac prediction at the same offset (x measured from the
    // crossing = UI/2 - off).
    const double x = cfg.ui_ps / 2.0 - off;
    const double predicted =
        0.25 * (meas::q_function(x / sigma) +
                meas::q_function((cfg.ui_ps - x) / sigma)) *
        2.0;  // rho_t = 0.5 -> rho/2 = 0.25; both crossings
    std::printf("  %11.1f %12.3e %12.3e\n", off, res.ber(), predicted);
    if (frac == 0.0) ber_center = res.ber();
    if (frac == 0.49) ber_edge = res.ber();
  }
  std::printf(
      "\n  the brute-force counts track the Gaussian-tail extrapolation\n"
      "  over the measurable range (down to ~1e-6 with this bit budget);\n"
      "  deeper BER points are exactly why extrapolation is used.\n");

  bench::section("Throughput");
  std::printf("  2M bit-slots per phase point; see bench_perf_models for\n"
              "  the ~50,000x analog-vs-edge-domain speed ratio.\n");
  bench::write_figure_json(outdir, "fastbus_ber",
                           {{"ber_eye_center", ber_center},
                            {"ber_049ui_offset", ber_edge}});
  return 0;
}
