// Fig. 13 reproduction: a DUT output at the target rate of 6.4 Gbps
// (input TJ ~ 26 ps) passed through the delay circuit. The paper reads
// TJ = 39 ps at the output (~13 ps added) and notes amplitude attenuation
// from series resistors added for measurement convenience.
#include <cstdio>

#include "analog/coupling.h"
#include "bench/common.h"
#include "core/channel.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main() {
  bench::banner("6.4 Gbps DUT signal through the delay circuit", "Fig. 13");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 6.4;
  const std::size_t bits = 1024;
  // DUT-like reference: TJ ~ 26 ps pk-pk at 6.4 Gbps.
  sc.rj_sigma_ps = sig::rj_sigma_for_tj_pp(26.0, bits / 2);
  const auto stim = sig::synthesize_nrz(sig::prbs(7, bits), sc, &rng);

  core::VariableDelayChannel ch(core::ChannelConfig::prototype(), rng.fork(1));
  ch.select_tap(1);
  ch.set_vctrl(0.75);
  auto out = ch.process(stim.wf);

  // The paper's measurement hookup: series resistors attenuate the
  // delayed trace ("not a concern for our applications").
  analog::Attenuator pad(4.0);
  out = pad.process(out);

  auto jo = bench::settled_jitter();
  const auto j_in = meas::measure_jitter(stim.wf, stim.unit_interval_ps, jo);
  jo.hysteresis_v = 0.05;  // attenuated swing
  const auto j_out = meas::measure_jitter(out, stim.unit_interval_ps, jo);

  bench::section("Measurements (paper vs ours)");
  bench::row_header();
  bench::row("input (DUT) TJ", 26.0, j_in.tj_pp_ps, "ps");
  bench::row("output TJ", 39.0, j_out.tj_pp_ps, "ps");
  bench::row("added TJ", 13.0, j_out.tj_pp_ps - j_in.tj_pp_ps, "ps");
  std::printf(
      "\n  note: with a heavily jittered input the added pk-pk is partly\n"
      "  masked (independent contributions add in quadrature); our model\n"
      "  adds slightly less at 6.4 Gbps than the paper's prototype.\n");

  bench::section("Eye diagrams");
  bench::print_eye(stim.wf, stim.unit_interval_ps, "input (DUT output)");
  bench::print_eye(out, stim.unit_interval_ps,
                   "delayed output (attenuated by measurement pad)");
  return 0;
}
