// Fig. 13 reproduction: a DUT output at the target rate of 6.4 Gbps
// (input TJ ~ 26 ps) passed through the delay circuit. The paper reads
// TJ = 39 ps at the output (~13 ps added) and notes amplitude attenuation
// from series resistors added for measurement convenience.
//
// Runs on the streaming executor: channel and measurement pad are fused
// into one chunked pass, with the jitter and eye measurements folded in
// incrementally — byte-identical to the old materializing flow.
#include <cstdio>

#include "analog/coupling.h"
#include "bench/common.h"
#include "core/channel.h"
#include "core/pipeline.h"
#include "measure/sinks.h"
#include "signal/pattern.h"
#include "signal/stream.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("6.4 Gbps DUT signal through the delay circuit", "Fig. 13");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 6.4;
  const std::size_t bits = 1024;
  // DUT-like reference: TJ ~ 26 ps pk-pk at 6.4 Gbps.
  sc.rj_sigma_ps = sig::rj_sigma_for_tj_pp(26.0, bits / 2);
  sig::SynthSource stim(sig::plan_nrz(sig::prbs(7, bits), sc, &rng));
  const double ui = stim.unit_interval_ps();

  core::VariableDelayChannel ch(core::ChannelConfig::prototype(), rng.fork(1));
  ch.select_tap(1);
  ch.set_vctrl(0.75);

  // The paper's measurement hookup: series resistors attenuate the
  // delayed trace ("not a concern for our applications").
  analog::Attenuator pad(4.0);

  auto jo = bench::settled_jitter();
  meas::JitterSink j_in(ui, jo);
  meas::EyeSink eye_in(bench::bench_eye(ui), 0.0, 12000.0);
  jo.hysteresis_v = 0.05;  // attenuated swing
  meas::JitterSink j_out(ui, jo);
  meas::EyeSink eye_out(bench::bench_eye(ui), 0.0, 12000.0);

  core::Pipeline meter;
  meter.run(stim, {&j_in, &eye_in});

  core::Pipeline pipe;
  pipe.add_stage(ch).add_stage(pad);
  pipe.run(stim, {&j_out, &eye_out});

  bench::section("Measurements (paper vs ours)");
  bench::row_header();
  bench::row("input (DUT) TJ", 26.0, j_in.report().tj_pp_ps, "ps");
  bench::row("output TJ", 39.0, j_out.report().tj_pp_ps, "ps");
  bench::row("added TJ", 13.0,
             j_out.report().tj_pp_ps - j_in.report().tj_pp_ps, "ps");
  std::printf(
      "\n  note: with a heavily jittered input the added pk-pk is partly\n"
      "  masked (independent contributions add in quadrature); our model\n"
      "  adds slightly less at 6.4 Gbps than the paper's prototype.\n");

  bench::section("Eye diagrams");
  bench::print_eye(eye_in.eye(), "input (DUT output)");
  bench::print_eye(eye_out.eye(),
                   "delayed output (attenuated by measurement pad)");
  bench::write_figure_json(
      outdir, "fig13_eye64",
      {{"input_tj_pp_ps", j_in.report().tj_pp_ps},
       {"output_tj_pp_ps", j_out.report().tj_pp_ps},
       {"added_tj_pp_ps",
        j_out.report().tj_pp_ps - j_in.report().tj_pp_ps}});
  return 0;
}
