// Data-dependent jitter study (ours): where does the circuit's
// deterministic jitter come from?
//
// The DDJ analyzer buckets crossing residuals by the length of the
// preceding run. Two mechanisms show up in the model, both physical:
// incomplete settling (classic ISI, grows with rate) and the VGA bias
// droop (delay tracks recent switching activity). The run-length
// signature below is measured with stage noise disabled, so everything
// shown is deterministic.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "core/fine_delay.h"
#include "measure/jitter.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

namespace {

meas::DdjReport ddj_for(double rate_gbps, util::Rng rng) {
  sig::SynthConfig sc;
  sc.rate_gbps = rate_gbps;
  const auto stim =
      sig::synthesize_nrz(sig::run_length_stress(512, 6), sc);
  core::FineDelayConfig fc;
  fc.stage.noise_sigma_v = 0.0;
  fc.output_stage.noise_sigma_v = 0.0;
  core::FineDelayLine line(fc, rng);
  line.set_vctrl(0.75);
  const auto out = line.process(stim.wf);
  sig::EdgeExtractOptions eo;
  eo.hysteresis_v = 0.1;
  eo.t_min_ps = 12000.0;
  const auto edges = sig::extract_edges(out, eo);
  return meas::analyze_ddj(sig::edge_times(edges), stim.unit_interval_ps);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Deterministic (data-dependent) jitter by run length",
                "(ours; decomposes the circuit's DJ mechanisms)");

  std::vector<std::pair<std::string, double>> ddj_by_rate;
  for (double rate : {1.6, 3.2, 6.4}) {
    util::Rng rng(2008);
    const auto rep = ddj_for(rate, rng.fork(1));
    std::printf("\n--- %.1f Gbps, run-length-stress pattern ---\n", rate);
    std::printf("  %8s %6s %12s %10s\n", "run(UI)", "n", "mean(ps)",
                "sd(ps)");
    for (const auto& b : rep.buckets) {
      if (b.n < 5) continue;
      std::printf("  %8d %6zu %+12.2f %10.2f\n", b.run_ui, b.n, b.mean_ps,
                  b.stddev_ps);
    }
    std::printf("  DDJ (pk-pk of bucket means): %.2f ps\n", rep.ddj_pp_ps);
    char key[32];
    std::snprintf(key, sizeof key, "ddj_pp_ps_%.1fgbps", rate);
    ddj_by_rate.emplace_back(key, rep.ddj_pp_ps);
  }

  std::printf(
      "\n  DDJ grows with rate as the stages settle less completely per\n"
      "  bit — the same physics that erodes the delay range in Fig. 15.\n"
      "  Below 6 Gbps the deterministic part stays within a few ps,\n"
      "  consistent with the paper's total added-jitter budget.\n");
  bench::write_figure_json(outdir, "ddj", ddj_by_rate);
  return 0;
}
