// Performance ablation (google-benchmark): sample-level analog simulation
// vs the calibrated edge-domain fast model, plus the cost of the main
// simulation building blocks. Justifies keeping both model tiers: the
// analog model for per-figure physics, the edge model for bus-scale
// studies (millions of bits).
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "bench/gbench_json.h"
#include "bench/memtrack.h"
#include "core/channel.h"
#include "core/fine_delay.h"
#include "fast/edge_model.h"
#include "measure/jitter.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/curve.h"
#include "util/rng.h"

using namespace gdelay;

namespace {

sig::SynthResult make_stim(std::size_t bits) {
  sig::SynthConfig sc;
  sc.rate_gbps = 6.4;
  return sig::synthesize_nrz(sig::prbs(7, bits), sc);
}

fast::EdgeModelParams synthetic_params() {
  fast::EdgeModelParams p;
  p.base_latency_ps = 300.0;
  p.fine_curve = util::Curve({0.0, 0.75, 1.5}, {0.0, 30.0, 55.0});
  p.tap_offset_ps = {0.0, 33.0, 66.0, 99.0};
  p.added_rj_sigma_ps = 1.5;
  return p;
}

void BM_SynthesizeNrz(benchmark::State& state) {
  const auto bits = sig::prbs(7, static_cast<std::size_t>(state.range(0)));
  sig::SynthConfig sc;
  sc.rate_gbps = 6.4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig::synthesize_nrz(bits, sc));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SynthesizeNrz)->Arg(64)->Arg(256);

void BM_AnalogChannel(benchmark::State& state) {
  const auto stim = make_stim(static_cast<std::size_t>(state.range(0)));
  core::VariableDelayChannel ch(core::ChannelConfig::prototype(),
                                util::Rng(1));
  ch.set_vctrl(0.75);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.process(stim.wf));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnalogChannel)->Arg(64)->Arg(256);

void BM_AnalogFineLineOnly(benchmark::State& state) {
  const auto stim = make_stim(128);
  core::FineDelayLine line(core::FineDelayConfig{}, util::Rng(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(line.process(stim.wf));
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_AnalogFineLineOnly);

void BM_FastChannel(benchmark::State& state) {
  const auto stim = make_stim(static_cast<std::size_t>(state.range(0)));
  const auto edges = sig::edge_times(sig::extract_edges(stim.wf));
  fast::FastChannel ch(synthetic_params(), util::Rng(3));
  ch.set_vctrl(0.75);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.transform(edges));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FastChannel)->Arg(64)->Arg(256);

void BM_FastBusMillionBits(benchmark::State& state) {
  // 8-lane bus, 125k bits per lane = 1M bit-slots per iteration: the
  // scale at which only the edge model is practical.
  std::vector<double> edges;
  edges.reserve(62500);
  for (int i = 0; i < 62500; ++i) edges.push_back(156.25 * 2 * i);
  std::vector<fast::FastChannel> lanes;
  for (int i = 0; i < 8; ++i)
    lanes.emplace_back(synthetic_params(), util::Rng(10 + static_cast<std::uint64_t>(i)));
  for (auto _ : state) {
    for (auto& lane : lanes) benchmark::DoNotOptimize(lane.transform(edges));
  }
  state.SetItemsProcessed(state.iterations() * 1000000);
}
BENCHMARK(BM_FastBusMillionBits);

void BM_JitterAnalysis(benchmark::State& state) {
  const auto stim = make_stim(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        meas::measure_jitter(stim.wf, stim.unit_interval_ps));
  }
}
BENCHMARK(BM_JitterAnalysis);

}  // namespace

// Custom main: same benchmarks, plus a machine-readable dump of wall time
// and items/s per benchmark so the model-tier cost ratio is tracked
// across PRs (items = bits for the channel benches, samples for synth).
int main(int argc, char** argv) {
  const std::string outdir = gdelay::bench::parse_outdir(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  gdelay::bench::CaptureReporter rep;
  benchmark::RunSpecifiedBenchmarks(&rep);
  const auto heap = gdelay::bench::heap_snapshot();
  gdelay::bench::MemReport mem;
  mem.peak_rss_bytes = gdelay::bench::peak_rss_bytes();
  mem.heap_peak_bytes = heap.peak_bytes;
  mem.heap_total_bytes = heap.total_bytes;
  mem.alloc_count = heap.alloc_count;
  gdelay::bench::write_gbench_json(
      (outdir + "/BENCH_perf_models.json").c_str(), "perf_models", rep.rows,
      {}, &mem);
  benchmark::Shutdown();
  return 0;
}
