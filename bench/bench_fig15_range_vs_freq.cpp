// Fig. 15 reproduction: fine-delay range vs. clock frequency for the
// 2-stage and 4-stage circuits. Paper: the 2-stage build holds ~25 ps up
// to ~2.6 GHz and becomes ineffective beyond 6 GHz; the 4-stage build
// starts near ~52 ps and keeps a usable range (>= the 33 ps coarse step
// until ~5 GHz, still ~23 ps) beyond 6.4 GHz.
#include <cstdio>

#include "bench/common.h"
#include "core/calibration.h"
#include "core/fine_delay.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Delay range vs clock frequency, 2-stage vs 4-stage",
                "Fig. 15");

  const double freqs[] = {0.5, 1.0, 1.6, 2.4, 3.2, 4.0,
                          4.8, 5.6, 6.0, 6.4, 6.8};
  const core::DelayCalibrator cal;

  bench::section("Fine delay range (ps) vs RZ clock frequency (GHz)");
  std::printf("  %9s %10s %10s   (paper: 2-stage ~25 -> <10;"
              " 4-stage ~52 -> ~23)\n",
              "freq(GHz)", "2-stage", "4-stage");
  double last2 = 0.0, last4 = 0.0, first2 = 0.0, first4 = 0.0;
  for (double f : freqs) {
    double r[2];
    int k = 0;
    for (int n : {2, 4}) {
      util::Rng rng(100 + n);
      sig::SynthConfig sc;
      const auto stim = sig::synthesize_clock(f, 120, sc, nullptr);
      core::FineDelayConfig fc;
      fc.n_stages = n;
      core::FineDelayLine line(fc, rng);
      r[k++] = cal.measure_fine_range_periodic(line, stim.wf,
                                               stim.unit_interval_ps);
    }
    std::printf("  %9.2f %10.2f %10.2f\n", f, r[0], r[1]);
    if (f == freqs[0]) {
      first2 = r[0];
      first4 = r[1];
    }
    last2 = r[0];
    last4 = r[1];
  }

  bench::section("Shape checks");
  std::printf("  4-stage/2-stage at low freq : %.2fx (paper ~2x)\n",
              first4 / first2);
  std::printf("  2-stage retained at 6.8 GHz : %.0f%% (paper: ineffective)\n",
              100.0 * last2 / first2);
  std::printf("  4-stage retained at 6.8 GHz : %.0f%% (paper: ~45%%)\n",
              100.0 * last4 / first4);
  std::printf("  4-stage usable (>= 33 ps coarse step) up to ~5 GHz: %s\n",
              "see table");
  bench::write_figure_json(outdir, "fig15_range_vs_freq",
                           {{"range2_low_ps", first2},
                            {"range4_low_ps", first4},
                            {"range2_high_ps", last2},
                            {"range4_high_ps", last4}});
  return 0;
}
