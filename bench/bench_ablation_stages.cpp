// Ablation study of the paper's design choices (our addition):
//
//  1. Stage count (the paper built 2- and 4-stage lines; we sweep 1..6):
//     range grows per stage, but so do latency and added jitter.
//  2. Common vs per-stage Vctrl (the paper drives all stages from one DAC
//     "for simplicity"): per-stage control trades DAC channels for a
//     marginally larger composite range.
//  3. Coarse+fine split vs cascading two fine lines for range (the paper
//     rejects the cascade on jitter grounds, Section 3): we measure both.
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "core/calibration.h"
#include "core/channel.h"
#include "core/coarse_delay.h"
#include "core/fine_delay.h"
#include "measure/delay_meter.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

namespace {

double added_tj(const sig::SynthResult& stim, const sig::Waveform& out) {
  const auto jo = bench::settled_jitter();
  return meas::measure_jitter(out, stim.unit_interval_ps, jo).tj_pp_ps -
         meas::measure_jitter(stim.wf, stim.unit_interval_ps, jo).tj_pp_ps;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Ablations: stage count, Vctrl sharing, range strategy",
                "design choices from Sections 2-3");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  sc.rj_sigma_ps = 1.0;
  util::Rng srng(7);
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 256), sc, &srng);
  const core::DelayCalibrator cal;

  bench::section("1. Stage count sweep (3.2 Gbps PRBS7)");
  std::printf("  %7s %11s %12s %12s\n", "stages", "range(ps)",
              "latency(ps)", "addedTJ(ps)");
  double range_n4 = 0.0, latency_n4 = 0.0, tj_n4 = 0.0;
  for (int n = 1; n <= 6; ++n) {
    core::FineDelayConfig fc;
    fc.n_stages = n;
    core::FineDelayLine line(fc, rng.fork(static_cast<std::uint64_t>(n)));
    const double range = cal.measure_fine_range(line, stim.wf);
    line.set_vctrl(0.75);
    const auto out = line.process(stim.wf);
    const double lat = meas::measure_delay(stim.wf, out).mean_ps;
    const double tj = added_tj(stim, out);
    std::printf("  %7d %11.2f %12.2f %12.2f\n", n, range, lat, tj);
    if (n == 4) {
      range_n4 = range;
      latency_n4 = lat;
      tj_n4 = tj;
    }
  }
  std::printf("  -> the paper's N=4 is the smallest count whose range\n"
              "     (~50 ps) covers the 33 ps coarse pitch with margin.\n");

  double common_range = 0.0, half_step_ps = 0.0;
  bench::section("2. Common vs per-stage Vctrl (4 stages)");
  {
    core::FineDelayLine line(core::FineDelayConfig{}, rng.fork(40));
    const double common = cal.measure_fine_range(line, stim.wf);
    // Per-stage control can stagger the stages so each works in its most
    // sensitive sub-range; emulate by comparing the all-min/all-max range
    // (same endpoints) while an intermediate mixed setting shows the
    // extra programmability granularity.
    line.set_stage_vctrl(0, 1.5);
    line.set_stage_vctrl(1, 1.5);
    line.set_stage_vctrl(2, 0.0);
    line.set_stage_vctrl(3, 0.0);
    const auto mixed = line.process(stim.wf);
    line.set_vctrl(0.0);
    const auto lo = line.process(stim.wf);
    const double half_step =
        meas::measure_delay(stim.wf, mixed).mean_ps -
        meas::measure_delay(stim.wf, lo).mean_ps;
    std::printf("  common-Vctrl range            : %7.2f ps (1 DAC)\n",
                common);
    std::printf("  per-stage 2-of-4 at max       : %7.2f ps (~half range,\n"
                "                                   4 DACs for the same\n"
                "                                   endpoints)\n",
                half_step);
    std::printf("  -> per-stage control adds no range, only granularity the\n"
                "     12-bit DAC already provides: the paper's shared-Vctrl\n"
                "     simplification costs nothing.\n");
    common_range = common;
    half_step_ps = half_step;
  }

  double tj_coarse_fine = 0.0, tj_cascade = 0.0, range_cascade = 0.0;
  bench::section("3. Range strategy: coarse+fine vs cascaded fine lines");
  {
    // (a) The paper's choice: coarse block (2 active levels) + 4-stage fine.
    core::VariableDelayChannel ch(core::ChannelConfig::prototype(),
                                  rng.fork(50));
    ch.select_tap(3);
    ch.set_vctrl(0.75);
    const auto out_a = ch.process(stim.wf);
    // (b) The rejected alternative: three cascaded 4-stage fine lines
    //     (12 VGA buffers + 3 output stages) for a comparable ~150 ps.
    core::FineDelayConfig fc;
    fc.n_stages = 12;
    core::FineDelayLine cascade(fc, rng.fork(51));
    cascade.set_vctrl(0.75);
    const auto out_b = cascade.process(stim.wf);
    const double range_b = cal.measure_fine_range(cascade, stim.wf);
    std::printf("  coarse+fine (7 active stages) : added TJ %6.2f ps, "
                "range ~150 ps\n",
                added_tj(stim, out_a));
    std::printf("  12-stage fine cascade         : added TJ %6.2f ps, "
                "range %6.1f ps\n",
                added_tj(stim, out_b), range_b);
    std::printf("  -> every additional active stage adds noise/jitter; the\n"
                "     passive coarse taps buy range almost for free, which\n"
                "     is exactly the paper's Section-3 argument.\n");
    tj_coarse_fine = added_tj(stim, out_a);
    tj_cascade = added_tj(stim, out_b);
    range_cascade = range_b;
  }

  bench::write_figure_json(outdir, "ablation_stages",
                           {{"range_ps_n4", range_n4},
                            {"latency_ps_n4", latency_n4},
                            {"added_tj_ps_n4", tj_n4},
                            {"common_vctrl_range_ps", common_range},
                            {"per_stage_half_step_ps", half_step_ps},
                            {"added_tj_ps_coarse_fine", tj_coarse_fine},
                            {"added_tj_ps_cascade12", tj_cascade},
                            {"range_ps_cascade12", range_cascade}});
  return 0;
}
