// Calibration-service throughput: the request engine of src/service/
// under a deskew-planning workload, warm cache versus the
// cold-calibrate-per-request baseline.
//
// The paper's end application is a request-serving loop: an ATE test
// program repeatedly asks for per-channel delays while patterns run.
// A full calibration sweep per request (the naive baseline) costs
// n_vctrl_points + 4 waveform passes through the 7-stage channel model;
// the service memoizes the curve per (device config, temperature point)
// and the marginal request collapses to a curve inversion + DAC
// quantization. This bench measures both regimes and the batching
// machinery between them:
//
//   * warm requests/sec over a large plan/program workload, with
//     p50/p99/p999 submit-to-completion latency (batch flush cadence)
//   * cold requests/sec with the cache disabled (sweep per request)
//   * kMeasure verification throughput through the BatchRunner groups
//
// Emits BENCH_service.json (schema 4) and exits nonzero if the warm
// engine fails to clear 10x the cold baseline — the whole point of the
// service layer.
//
// Usage: bench_service [--smoke] [--outdir DIR]
//   --smoke   CI-sized workload (seconds, not minutes)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "service/config.h"
#include "service/service.h"
#include "util/thread_pool.h"

using namespace gdelay;
using service::CalRequest;
using service::CalService;
using service::RequestKind;
using service::ServiceConfig;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

ServiceConfig bench_config(bool smoke) {
  ServiceConfig cfg;
  cfg.n_shards = 0;  // GDELAY_SERVICE_SHARDS (default 4)
  cfg.board.n_channels = 4;
  cfg.seed = 2008;
  cfg.calibration.n_vctrl_points = smoke ? 5 : 9;
  cfg.stim_bits = smoke ? 24 : 48;
  cfg.batch_trigger = 1 << 30;  // flush cadence is driven by this bench
  return cfg;
}

CalRequest make_req(std::uint64_t id, int channel, RequestKind kind,
                    double target, double temp) {
  CalRequest r;
  r.id = id;
  r.channel = channel;
  r.kind = kind;
  r.target_delay_ps = target;
  r.temp_c = temp;
  return r;
}

// The steady-state workload: plan/program requests spread over all
// channels, two temperature points and a sweep of targets — every
// request hits one of n_channels x 2 memoized curves.
CalRequest workload_req(std::uint64_t i, int n_channels) {
  const int channel = static_cast<int>(i) % n_channels;
  const double temp = (i / 7) % 2 == 0 ? 0.0 : 12.0;
  const double target = 5.0 + static_cast<double>(i % 100);
  const RequestKind kind =
      i % 4 == 3 ? RequestKind::kProgram : RequestKind::kPlan;
  return make_req(i, channel, kind, target, temp);
}

double percentile(std::vector<double>& sorted_vals, double p) {
  if (sorted_vals.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_vals.size() - 1));
  return sorted_vals[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  bench::banner(
      "calibration-as-a-service: sharded, cache-backed request engine",
      "ours (service layer over the paper's calibration flow, Fig. 7/9)");

  const std::size_t n_warm = smoke ? 20'000 : 200'000;
  const std::size_t n_cold = smoke ? 3 : 8;
  const std::size_t n_measure = smoke ? 16 : 64;
  const std::size_t flush_every = 1024;

  ServiceConfig cfg = bench_config(smoke);
  CalService svc(cfg);
  std::printf("shards: %d   threads: %d   channels: %d   sweep points: %d\n",
              svc.n_shards(), util::thread_count(), cfg.board.n_channels,
              cfg.calibration.n_vctrl_points);

  // ---- cold baseline: calibrate-from-scratch per request ----------------
  bench::section("cold baseline (cache disabled, sweep per request)");
  ServiceConfig cold_cfg = cfg;
  cold_cfg.cache_enabled = false;
  double cold_s = 0.0;
  {
    CalService cold(cold_cfg);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n_cold; ++i)
      cold.submit(workload_req(i, cfg.board.n_channels));
    cold.flush();
    cold_s = seconds_since(t0);
  }
  const double rps_cold = static_cast<double>(n_cold) / cold_s;
  std::printf("  %zu requests in %.3f s -> %.1f req/s\n", n_cold, cold_s,
              rps_cold);

  // ---- warm engine ------------------------------------------------------
  bench::section("warm engine (memoized curves, batched flushes)");
  // Populate the cache outside the timed region: steady state is the
  // regime a long-running test program lives in.
  for (std::uint64_t i = 0; i < 64; ++i)
    svc.submit(workload_req(i, cfg.board.n_channels));
  svc.drain();

  std::vector<double> latencies_us;
  latencies_us.reserve(n_warm);
  std::vector<Clock::time_point> submit_t(flush_every);
  const auto warm_t0 = Clock::now();
  std::size_t submitted = 0;
  while (submitted < n_warm) {
    const std::size_t chunk = std::min(flush_every, n_warm - submitted);
    for (std::size_t i = 0; i < chunk; ++i) {
      submit_t[i] = Clock::now();
      svc.submit(workload_req(submitted + i, cfg.board.n_channels));
    }
    svc.flush();
    const auto done = Clock::now();
    for (std::size_t i = 0; i < chunk; ++i)
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(done - submit_t[i])
              .count());
    submitted += chunk;
  }
  const double warm_s = seconds_since(warm_t0);
  const auto responses = svc.drain();
  const double rps_warm = static_cast<double>(n_warm) / warm_s;

  std::size_t hits = 0;
  for (const auto& r : responses) hits += r.cache_hit ? 1 : 0;
  const double hit_rate =
      responses.empty() ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(responses.size());

  std::sort(latencies_us.begin(), latencies_us.end());
  const double p50 = percentile(latencies_us, 0.50);
  const double p99 = percentile(latencies_us, 0.99);
  const double p999 = percentile(latencies_us, 0.999);

  std::printf("  %zu requests in %.3f s -> %.0f req/s\n", n_warm, warm_s,
              rps_warm);
  std::printf("  latency (flush cadence %zu): p50 %.1f us, p99 %.1f us, "
              "p999 %.1f us\n",
              flush_every, p50, p99, p999);
  std::printf("  cache hit rate: %.4f (%zu/%zu)\n", hit_rate, hits,
              responses.size());

  // ---- measure throughput (BatchRunner verification groups) -------------
  bench::section("kMeasure verification (BatchRunner groups of 4)");
  const auto meas_t0 = Clock::now();
  for (std::size_t i = 0; i < n_measure; ++i) {
    CalRequest r = workload_req(i, cfg.board.n_channels);
    r.kind = RequestKind::kMeasure;
    svc.submit(r);
  }
  svc.flush();
  const double meas_s = seconds_since(meas_t0);
  svc.drain();
  const double rps_measure = static_cast<double>(n_measure) / meas_s;
  const auto stats = svc.stats();
  std::printf("  %zu verifications in %.3f s -> %.1f req/s "
              "(%llu batch groups)\n",
              n_measure, meas_s, rps_measure,
              static_cast<unsigned long long>(stats.measure_batches));

  // ---- verdict ----------------------------------------------------------
  bench::section("verdict");
  const double speedup = rps_warm / rps_cold;
  std::printf("  warm vs cold-per-request: %.1fx (gate: >= 10x)\n", speedup);
  const bool pass = speedup >= 10.0;
  std::printf("  %s\n", pass ? "PASS" : "FAIL");

  bench::write_figure_json(
      outdir, "service",
      {{"requests_per_sec_warm", rps_warm},
       {"requests_per_sec_cold", rps_cold},
       {"speedup_warm_vs_cold", speedup},
       {"latency_p50_us", p50},
       {"latency_p99_us", p99},
       {"latency_p999_us", p999},
       {"cache_hit_rate", hit_rate},
       {"measure_requests_per_sec", rps_measure},
       {"measure_batch_groups",
        static_cast<double>(stats.measure_batches)},
       {"n_requests_warm", static_cast<double>(n_warm)},
       {"n_shards", static_cast<double>(svc.n_shards())},
       {"threads", static_cast<double>(util::thread_count())},
       {"cache_misses", static_cast<double>(stats.cache.misses)}});

  return pass ? 0 : 1;
}
