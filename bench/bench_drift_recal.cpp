// Thermal drift and recalibration (ours): a deskew done cold degrades as
// the board under the DIB heats with DUT power. We program a delay from
// a cold calibration, "heat" the channel, measure the error, then rerun
// the calibration at temperature and show the error collapsing — the
// operational reason ATE flows periodically recalibrate.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "core/calibration.h"
#include "core/channel.h"
#include "core/drift.h"
#include "core/requirements.h"
#include "measure/delay_meter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Thermal drift vs recalibration",
                "(ours; calibration-stability study)");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 96), sc);
  core::DelayCalibrator::Options o;
  o.n_vctrl_points = 9;
  const core::DelayCalibrator calibrator(o);
  const core::ThermalDrift drift;
  const double target = 70.0;

  // Cold calibration.
  core::VariableDelayChannel cold(core::ChannelConfig::prototype(),
                                  rng.fork(1));
  const auto cal_cold = calibrator.calibrate(cold, stim.wf);
  const auto set_cold = cal_cold.plan(target);

  bench::section("Programming error vs temperature (cold calibration)");
  std::printf("  %8s %14s %14s\n", "dT (C)", "stale-cal err", "recal err");
  double max_stale = 0.0, max_fresh = 0.0;
  double stale_40 = 0.0, fresh_40 = 0.0;
  for (double dt : {0.0, 10.0, 20.0, 40.0, 60.0}) {
    core::VariableDelayChannel hot(
        drift.apply(core::ChannelConfig::prototype(), dt), rng.fork(1));
    // (a) program with the stale cold calibration
    hot.select_tap(set_cold.tap);
    hot.set_vctrl(set_cold.vctrl_v);
    const double stale =
        meas::measure_delay(stim.wf, hot.process(stim.wf)).mean_ps -
        cal_cold.base_latency_ps - target;
    // (b) recalibrate at temperature, then program
    const auto cal_hot = calibrator.calibrate(hot, stim.wf);
    const auto set_hot = cal_hot.plan(target);
    hot.select_tap(set_hot.tap);
    hot.set_vctrl(set_hot.vctrl_v);
    const double fresh =
        meas::measure_delay(stim.wf, hot.process(stim.wf)).mean_ps -
        cal_hot.base_latency_ps - target;
    std::printf("  %8.0f %+13.2f %+13.2f ps\n", dt, stale, fresh);
    max_stale = std::max(max_stale, std::fabs(stale));
    max_fresh = std::max(max_fresh, std::fabs(fresh));
    if (dt == 40.0) {
      stale_40 = stale;
      fresh_40 = fresh;
    }
  }
  std::printf(
      "\n  the stale-calibration error grows with temperature and crosses\n"
      "  the +/-%.0f ps channel-accuracy budget within tens of degrees;\n"
      "  recalibrating at temperature restores ~sub-ps programming.\n"
      "  (absolute latency drift is larger still — a full deskew pass,\n"
      "  not just the fine trim, is what production flows re-run.)\n",
      core::Requirements::kChannelSkewPs);

  bench::write_figure_json(outdir, "drift_recal",
                           {{"stale_err_ps_at_40c", stale_40},
                            {"recal_err_ps_at_40c", fresh_40},
                            {"max_abs_stale_err_ps", max_stale},
                            {"max_abs_recal_err_ps", max_fresh},
                            {"skew_budget_ps",
                             core::Requirements::kChannelSkewPs}});
  return 0;
}
