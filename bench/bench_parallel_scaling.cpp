// Parallel-scaling study (ours): wall time of the board bring-up flow —
// DelayBoard::calibrate over 4 channels with the default sweep — versus
// thread count, plus a bitwise determinism audit. The clone-based sweeps
// promise two things at once: near-linear speedup (the sweep points are
// independent by construction, like the per-tap characterization loops in
// the FPGA delay-line literature) and byte-identical results at any
// GDELAY_THREADS. Emits BENCH_parallel.json so the perf trajectory is
// machine-tracked from this PR onward.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "backend/backend.h"
#include "bench/common.h"
#include "core/board.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"
#include "util/thread_pool.h"

// Stamped by bench/CMakeLists.txt; BENCH_parallel.json schema 4 carries it
// plus the compute-backend stamp so each snapshot is attributable (see
// bench/gbench_json.h).
#ifndef GDELAY_GIT_REV
#define GDELAY_GIT_REV "unknown"
#endif

using namespace gdelay;

namespace {

struct Run {
  int threads = 0;
  double wall_ms = 0.0;
  double samples_per_sec = 0.0;
  std::vector<core::ChannelCalibration> cals;
};

// Bitwise comparison of two calibration sets — the determinism contract.
bool bit_identical(const std::vector<core::ChannelCalibration>& a,
                   const std::vector<core::ChannelCalibration>& b) {
  const auto same = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  if (a.size() != b.size()) return false;
  for (std::size_t c = 0; c < a.size(); ++c) {
    if (!same(a[c].base_latency_ps, b[c].base_latency_ps)) return false;
    for (int t = 0; t < 4; ++t)
      if (!same(a[c].tap_offset_ps[static_cast<std::size_t>(t)],
                b[c].tap_offset_ps[static_cast<std::size_t>(t)]))
        return false;
    const auto &xa = a[c].fine_curve.xs(), &xb = b[c].fine_curve.xs();
    const auto &ya = a[c].fine_curve.ys(), &yb = b[c].fine_curve.ys();
    if (xa.size() != xb.size() || ya.size() != yb.size()) return false;
    for (std::size_t i = 0; i < xa.size(); ++i)
      if (!same(xa[i], xb[i]) || !same(ya[i], yb[i])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Parallel scaling: DelayBoard::calibrate vs thread count",
                "(ours; perf infrastructure)");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 96), sc);

  core::DelayBoardConfig bcfg;  // 4 channels, default sweep (17 points)
  core::DelayBoard board(bcfg, rng.fork(1));
  const core::DelayCalibrator::Options opt{};

  const int hw = util::thread_count();
  std::vector<int> counts{1, 2, 4};
  if (hw > 4) counts.push_back(hw);
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  // Analog samples pushed through VariableDelayChannel::process per
  // calibrate() call: one base-latency pass, one per tap, one per sweep
  // point — per channel. Fixed by construction, so samples/s derived
  // from it is comparable across PRs regardless of sweep internals.
  const double cal_samples =
      static_cast<double>(stim.wf.size()) *
      static_cast<double>(opt.n_vctrl_points + core::CoarseDelayBlock::kTaps +
                          1) *
      static_cast<double>(bcfg.n_channels);

  std::vector<Run> runs;
  bench::section("Wall time vs threads (4 channels x 17-point sweep + taps)");
  std::printf("  %8s %12s %9s %14s\n", "threads", "wall(ms)", "speedup",
              "samples/s");
  for (int n : counts) {
    util::set_thread_count(n);
    Run r;
    r.threads = n;
    const auto t0 = std::chrono::steady_clock::now();
    r.cals = board.calibrate(stim.wf, opt);
    const auto t1 = std::chrono::steady_clock::now();
    r.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.samples_per_sec = cal_samples / (r.wall_ms * 1e-3);
    runs.push_back(std::move(r));
    std::printf("  %8d %12.1f %8.2fx %14.3e\n", n, runs.back().wall_ms,
                runs.front().wall_ms / runs.back().wall_ms,
                runs.back().samples_per_sec);
  }

  bool deterministic = true;
  for (const auto& r : runs)
    deterministic = deterministic && bit_identical(runs.front().cals, r.cals);

  const double best = runs.back().wall_ms;
  const double speedup = runs.front().wall_ms / best;
  bench::section("Verdicts");
  std::printf("  determinism: 1-thread vs N-thread calibrations %s\n",
              deterministic ? "BIT-IDENTICAL (PASS)" : "DIFFER (FAIL)");
  std::printf("  speedup    : %.2fx at %d threads on %d-way hardware\n",
              speedup, runs.back().threads, hw);
  if (hw < 4)
    std::printf("  (note: this host exposes only %d core(s); the >= 3x\n"
                "   target applies on 4+ cores)\n", hw);

  const std::string json_path = outdir + "/BENCH_parallel.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"parallel_scaling\",\n");
    std::fprintf(f, "  \"schema\": 4,\n  \"git_rev\": \"%s\",\n",
                 GDELAY_GIT_REV);
    const auto& bk = gdelay::backend::active();
    std::fprintf(f,
                 "  \"backend\": {\"name\": \"%s\", \"isa\": \"%s\", "
                 "\"reason\": \"%s\"},\n",
                 bk.name, bk.isa, gdelay::backend::dispatch_reason());
    std::fprintf(f, "  \"mem\": {\"peak_rss_bytes\": %zu},\n",
                 bench::peak_rss_bytes());
    std::fprintf(f, "  \"workload\": \"DelayBoard::calibrate 4ch x %d-point sweep\",\n",
                 opt.n_vctrl_points);
    std::fprintf(f, "  \"hardware_threads\": %d,\n", hw);
    std::fprintf(f, "  \"deterministic\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(f, "  \"runs\": [");
    for (std::size_t i = 0; i < runs.size(); ++i)
      std::fprintf(
          f, "%s\n    {\"threads\": %d, \"wall_ms\": %.3f, \"samples_per_sec\": %.0f}",
          i ? "," : "", runs[i].threads, runs[i].wall_ms,
          runs[i].samples_per_sec);
    std::fprintf(f, "\n  ],\n  \"speedup_best\": %.3f\n}\n", speedup);
    std::fclose(f);
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return deterministic ? 0 : 1;
}
