// Fig. 9 reproduction: measured coarse-delay taps. The paper's four taps
// are designed as 0/33/66/99 ps and measured as 0/33/70/95 ps — a few ps
// of manufacturing deviation from the ideal increments.
#include <cstdio>

#include "bench/common.h"
#include "core/coarse_delay.h"
#include "measure/delay_meter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Coarse delay taps (1:4 fanout + traces + 4:1 mux)",
                "Fig. 8 / Fig. 9");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 6.4;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 127), sc);

  core::CoarseDelayBlock blk(core::CoarseDelayConfig::prototype(),
                             rng.fork(1));

  const double paper_measured[4] = {0.0, 33.0, 70.0, 95.0};
  const double paper_designed[4] = {0.0, 33.0, 66.0, 99.0};

  double measured[4];
  for (int tap = 0; tap < 4; ++tap) {
    blk.select(tap);
    const auto out = blk.process(stim.wf);
    measured[tap] = meas::measure_delay(stim.wf, out).mean_ps;
  }

  bench::section("Tap delays relative to tap 0 (6.4 Gbps PRBS7)");
  std::printf("  %4s %12s %14s %12s %12s\n", "tap", "designed(ps)",
              "paper meas(ps)", "ours(ps)", "error(ps)");
  for (int tap = 0; tap < 4; ++tap) {
    const double rel = measured[tap] - measured[0];
    std::printf("  %4d %12.1f %14.1f %12.2f %12.2f\n", tap,
                paper_designed[tap], paper_measured[tap], rel,
                rel - paper_designed[tap]);
  }
  std::printf(
      "\n  deviations from the ideal 33 ps increments are a few ps,\n"
      "  matching the paper's observation for the as-built prototype.\n");

  bench::section("Eye at longest tap (loss + dispersion + regeneration)");
  blk.select(3);
  const auto out = blk.process(stim.wf);
  bench::print_eye(out, stim.unit_interval_ps, "tap 3 output");
  bench::write_figure_json(outdir, "fig09_coarse",
                           {{"tap1_ps", measured[1] - measured[0]},
                            {"tap2_ps", measured[2] - measured[0]},
                            {"tap3_ps", measured[3] - measured[0]}});
  return 0;
}
