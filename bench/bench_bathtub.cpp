// BER bathtub study (ours): what the delay circuit and the jitter
// injector do to the receiver's BER margin. Two ways down the tail:
// the classic dual-Dirac extrapolation of the measured TJ/RJ/DJ
// decomposition, and an importance-sampled measurement that reaches
// BER 1e-15 directly — with a sanity pin forcing the two to agree in
// the 1e-9..1e-12 overlap where the extrapolation is trustworthy.
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "core/channel.h"
#include "core/jitter_injector.h"
#include "measure/bathtub.h"
#include "measure/jitter.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

namespace {

void report(const char* label, const meas::JitterReport& j) {
  const double o12 =
      meas::eye_opening_at_ber(j.ui_ps, j.rj_rms_ps, j.dj_pp_ps, 1e-12);
  const double o15 =
      meas::eye_opening_at_ber(j.ui_ps, j.rj_rms_ps, j.dj_pp_ps, 1e-15);
  std::printf("  %-28s TJ %5.1f  RJ %4.2f  DJ %4.1f  ->"
              " eye@1e-12 %6.1f ps, eye@1e-15 %6.1f ps\n",
              label, j.tj_pp_ps, j.rj_rms_ps, j.dj_pp_ps, o12, o15);
}

void print_curve(const meas::JitterReport& j) {
  const auto curve = meas::bathtub_curve(j);
  std::printf("    phase(ps)  BER (log10)\n");
  for (std::size_t i = 0; i < curve.size(); i += 4) {
    const double l = curve[i].ber > 0 ? std::log10(curve[i].ber) : -99.0;
    const int col = static_cast<int>(std::min(99.0, -l) * 0.55);
    std::printf("    %8.1f   %6.1f |%.*s*\n", curve[i].phase_ps, l, col,
                "                                                        ");
  }
}

struct TailStudy {
  double open12_extrap = 0.0;  ///< dual-Dirac closed form at 1e-12.
  double open15_extrap = 0.0;
  double open12_is = 0.0;      ///< importance-sampled measurement.
  double open15_is = 0.0;
  std::size_t pin_checked = 0;  ///< overlap points compared.
  std::size_t pin_failed = 0;   ///< points where IS left the pin band.
};

/// Runs the importance-sampled tail for one measured jitter report and
/// pins it against the closed-form dual-Dirac model in the 1e-9..1e-12
/// overlap. Seeded per signal so reruns are bit-identical.
TailStudy tail_study(const char* label, const meas::JitterReport& j,
                     std::uint64_t seed) {
  TailStudy ts;
  ts.open12_extrap =
      meas::eye_opening_at_ber(j.ui_ps, j.rj_rms_ps, j.dj_pp_ps, 1e-12);
  ts.open15_extrap =
      meas::eye_opening_at_ber(j.ui_ps, j.rj_rms_ps, j.dj_pp_ps, 1e-15);

  const meas::DjDistribution dj = meas::dual_dirac_dj(j.dj_pp_ps);
  meas::TailSimOptions opt;
  opt.n_points = 65;  // fine grid: several strobes land in the pin band
  util::Rng rng(seed);
  const auto curve =
      meas::importance_sampled_bathtub(j.ui_ps, j.rj_rms_ps, dj, opt, rng);
  ts.open12_is = meas::is_eye_opening_at_ber(curve, j.ui_ps, 1e-12);
  ts.open15_is = meas::is_eye_opening_at_ber(curve, j.ui_ps, 1e-15);

  std::printf("  %s\n", label);
  std::printf("    %10s %14s %14s %10s\n", "phase(ps)", "closed-form",
              "sampled", "rel.err");
  for (std::size_t i = 0; i < curve.size(); i += 4) {
    const double model = meas::ber_at_phase(curve[i].phase_ps, j.ui_ps,
                                            j.rj_rms_ps, dj);
    std::printf("    %10.1f %14.3e %14.3e %9.1f%%\n", curve[i].phase_ps,
                model, curve[i].ber, 100.0 * curve[i].rel_stderr);
  }

  // Sanity pin: in the overlap band the IS estimate must sit on the
  // model within a few standard errors (the estimator is unbiased for
  // the model BER, so disagreement means a bug, not statistics).
  for (const auto& pt : curve) {
    const double model =
        meas::ber_at_phase(pt.phase_ps, j.ui_ps, j.rj_rms_ps, dj);
    if (model < 1e-12 || model > 1e-9) continue;
    ++ts.pin_checked;
    const double tol = std::max(0.10, 6.0 * pt.rel_stderr);
    if (std::abs(pt.ber - model) > tol * model) ++ts.pin_failed;
  }
  std::printf("    eye opening        extrapolated   sampled\n");
  std::printf("      @1e-12           %8.1f ps   %8.1f ps\n",
              ts.open12_extrap, ts.open12_is);
  std::printf("      @1e-15           %8.1f ps   %8.1f ps\n",
              ts.open15_extrap, ts.open15_is);
  std::printf("    overlap pin (1e-9..1e-12): %zu/%zu points within band%s\n",
              ts.pin_checked - ts.pin_failed, ts.pin_checked,
              ts.pin_failed ? "  ** PIN FAILED **" : "");
  return ts;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("BER bathtub curves through the delay circuit",
                "(ours; dual-Dirac extrapolation + importance-sampled tail)");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 4.8;
  sc.rj_sigma_ps = 1.5;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 768), sc, &rng);
  const auto jo = bench::settled_jitter();

  bench::section("Jitter decomposition, extrapolated eye openings");
  const auto j_in = meas::measure_jitter(stim.wf, stim.unit_interval_ps, jo);
  report("source", j_in);

  core::VariableDelayChannel ch(core::ChannelConfig::prototype(), rng.fork(1));
  ch.select_tap(1);
  ch.set_vctrl(0.75);
  const auto out = ch.process(stim.wf);
  const auto j_out = meas::measure_jitter(out, stim.unit_interval_ps, jo);
  report("through delay circuit", j_out);

  core::JitterInjectorConfig jc;
  jc.noise_pp_v = 0.6;
  core::JitterInjector inj(jc, rng.fork(2));
  sig::SynthConfig sc32 = sc;
  sc32.rate_gbps = 3.2;
  util::Rng r2(77);
  const auto stim32 = sig::synthesize_nrz(sig::prbs(7, 768), sc32, &r2);
  const auto stressed = inj.process(stim32.wf);
  const auto j_str =
      meas::measure_jitter(stressed, stim32.unit_interval_ps, jo);
  report("with 0.6 Vpp injection", j_str);

  bench::section("Bathtub, through delay circuit (4.8 Gbps)");
  print_curve(j_out);

  bench::section("Bathtub, with injection (3.2 Gbps)");
  print_curve(j_str);

  bench::section("Importance-sampled tail to BER 1e-15");
  const TailStudy ts_out = tail_study("through delay circuit", j_out, 4801);
  const TailStudy ts_str = tail_study("with 0.6 Vpp injection", j_str, 3201);

  // Beyond the dual-Dirac model: the measured DDJ bucket means form an
  // empirical DJ distribution with interior mass the two-impulse model
  // ignores. Feed it through the same sampler and see what the
  // extrapolation's assumption is worth at 1e-15.
  bench::section("Dual-Dirac vs empirical DDJ distribution (delay circuit)");
  sig::EdgeExtractOptions eo;
  eo.hysteresis_v = jo.hysteresis_v;
  eo.t_min_ps = out.t0_ps() + jo.settle_ps;
  const auto ddj = meas::analyze_ddj(
      sig::edge_times(sig::extract_edges(out, eo)), stim.unit_interval_ps);
  meas::DjDistribution emp;
  for (const auto& b : ddj.buckets) {
    if (b.n < 5) continue;
    emp.offset_ps.push_back(b.mean_ps);
    emp.weight.push_back(static_cast<double>(b.n));
  }
  double open15_emp = ts_out.open15_is;
  if (emp.offset_ps.size() >= 2 && j_out.rj_rms_ps > 0.0) {
    meas::TailSimOptions opt;
    util::Rng er(4815);
    const auto ec = meas::importance_sampled_bathtub(
        stim.unit_interval_ps, j_out.rj_rms_ps, emp, opt, er);
    open15_emp = meas::is_eye_opening_at_ber(ec, stim.unit_interval_ps, 1e-15);
    std::printf("  %zu DDJ buckets (DDJ %.2f ps pp)\n", emp.offset_ps.size(),
                ddj.ddj_pp_ps);
    std::printf("  eye@1e-15: dual-Dirac %.1f ps, empirical DJ %.1f ps "
                "(%+.1f ps vs extrapolation's model)\n",
                ts_out.open15_is, open15_emp,
                open15_emp - ts_out.open15_is);
  } else {
    std::printf("  too few populated DDJ buckets; skipping\n");
  }

  std::printf(
      "\n  takeaway: the delay circuit costs a few ps of 1e-12 margin —\n"
      "  consistent with the paper's added-jitter budget — and the\n"
      "  importance-sampled tail pins the extrapolation down to 1e-15,\n"
      "  where the empirical-DDJ model shows what the two-impulse\n"
      "  assumption is worth.\n");

  const std::size_t pin_failed = ts_out.pin_failed + ts_str.pin_failed;
  bench::write_figure_json(
      outdir, "bathtub",
      {{"eye_open_source_ps",
        meas::eye_opening_at_ber(j_in.ui_ps, j_in.rj_rms_ps, j_in.dj_pp_ps,
                                 1e-12)},
       {"eye_open_channel_ps", ts_out.open12_extrap},
       {"eye_open_stressed_ps", ts_str.open12_extrap},
       {"eye_open_channel_1e15_ps", ts_out.open15_extrap},
       {"eye_open_channel_is_ps", ts_out.open12_is},
       {"eye_open_channel_is_1e15_ps", ts_out.open15_is},
       {"eye_open_stressed_is_1e15_ps", ts_str.open15_is},
       {"eye_open_channel_emp_1e15_ps", open15_emp},
       {"is_pin_points", static_cast<double>(ts_out.pin_checked +
                                             ts_str.pin_checked)},
       {"is_pin_failures", static_cast<double>(pin_failed)}});
  if (pin_failed) {
    std::fprintf(stderr,
                 "FAIL: importance-sampled tail left the closed-form pin "
                 "band at %zu point(s)\n",
                 pin_failed);
    return 1;
  }
  return 0;
}
