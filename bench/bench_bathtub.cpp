// BER bathtub study (ours): what the delay circuit and the jitter
// injector do to the receiver's BER margin. Extrapolates the measured
// TJ/RJ/DJ decomposition to BER 1e-12 eye openings — the figure of merit
// an ATE program actually ships against.
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "core/channel.h"
#include "core/jitter_injector.h"
#include "measure/bathtub.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

namespace {

void report(const char* label, const meas::JitterReport& j) {
  const double open = meas::eye_opening_at_ber(
      j.ui_ps, std::max(j.rj_rms_ps, 1e-3), j.dj_pp_ps, 1e-12);
  std::printf("  %-28s TJ %5.1f  RJ %4.2f  DJ %4.1f  ->"
              " eye@1e-12 %6.1f ps (%4.1f%% UI)\n",
              label, j.tj_pp_ps, j.rj_rms_ps, j.dj_pp_ps, open,
              100.0 * open / j.ui_ps);
}

void print_curve(const meas::JitterReport& j) {
  const auto curve = meas::bathtub_curve(j);
  std::printf("    phase(ps)  BER (log10)\n");
  for (std::size_t i = 0; i < curve.size(); i += 4) {
    const double l = curve[i].ber > 0 ? std::log10(curve[i].ber) : -99.0;
    const int col = static_cast<int>(std::min(99.0, -l) * 0.55);
    std::printf("    %8.1f   %6.1f |%.*s*\n", curve[i].phase_ps, l, col,
                "                                                        ");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("BER bathtub curves through the delay circuit",
                "(ours; dual-Dirac extrapolation of the jitter data)");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 4.8;
  sc.rj_sigma_ps = 1.5;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 768), sc, &rng);
  const auto jo = bench::settled_jitter();

  bench::section("Jitter decomposition and 1e-12 eye openings");
  const auto j_in = meas::measure_jitter(stim.wf, stim.unit_interval_ps, jo);
  report("source", j_in);

  core::VariableDelayChannel ch(core::ChannelConfig::prototype(), rng.fork(1));
  ch.select_tap(1);
  ch.set_vctrl(0.75);
  const auto out = ch.process(stim.wf);
  const auto j_out = meas::measure_jitter(out, stim.unit_interval_ps, jo);
  report("through delay circuit", j_out);

  core::JitterInjectorConfig jc;
  jc.noise_pp_v = 0.6;
  core::JitterInjector inj(jc, rng.fork(2));
  sig::SynthConfig sc32 = sc;
  sc32.rate_gbps = 3.2;
  util::Rng r2(77);
  const auto stim32 = sig::synthesize_nrz(sig::prbs(7, 768), sc32, &r2);
  const auto stressed = inj.process(stim32.wf);
  const auto j_str =
      meas::measure_jitter(stressed, stim32.unit_interval_ps, jo);
  report("with 0.6 Vpp injection", j_str);

  bench::section("Bathtub, through delay circuit (4.8 Gbps)");
  print_curve(j_out);

  bench::section("Bathtub, with injection (3.2 Gbps)");
  print_curve(j_str);

  std::printf(
      "\n  takeaway: the delay circuit costs a few ps of 1e-12 margin —\n"
      "  consistent with the paper's added-jitter budget — while the\n"
      "  injector can dial the margin away on demand for tolerance test.\n");
  const auto open = [](const meas::JitterReport& j) {
    return meas::eye_opening_at_ber(j.ui_ps, std::max(j.rj_rms_ps, 1e-3),
                                    j.dj_pp_ps, 1e-12);
  };
  bench::write_figure_json(outdir, "bathtub",
                           {{"eye_open_source_ps", open(j_in)},
                            {"eye_open_channel_ps", open(j_out)},
                            {"eye_open_stressed_ps", open(j_str)}});
  return 0;
}
