// Fig. 12 reproduction: 4.8 Gbps data eyes at minimum and maximum fine
// delay. The paper overlays the two eye crossings and reads a fine-delay
// range of 49.5 ps with output TJ = 18.5 ps (~7 ps above the reference).
#include <cstdio>

#include "bench/common.h"
#include "core/calibration.h"
#include "core/channel.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main() {
  bench::banner("4.8 Gbps eyes at min/max fine delay", "Fig. 12");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 4.8;
  const std::size_t bits = 768;
  // Match the paper's reference trace: input TJ ~ 11.5 ps pk-pk.
  sc.rj_sigma_ps = sig::rj_sigma_for_tj_pp(11.5, bits / 2);
  const auto stim = sig::synthesize_nrz(sig::prbs(7, bits), sc, &rng);

  core::VariableDelayChannel ch(core::ChannelConfig::prototype(), rng.fork(1));

  ch.set_vctrl(0.0);
  const auto out_min = ch.process(stim.wf);
  ch.set_vctrl(ch.vctrl_max());
  const auto out_max = ch.process(stim.wf);

  const auto jo = bench::settled_jitter();
  const auto j_in = meas::measure_jitter(stim.wf, stim.unit_interval_ps, jo);
  const auto j_min = meas::measure_jitter(out_min, stim.unit_interval_ps, jo);
  const auto j_max = meas::measure_jitter(out_max, stim.unit_interval_ps, jo);

  // Fine range: shift of the eye crossing between the two settings.
  double range = j_max.grid_phase_ps - j_min.grid_phase_ps;
  const double ui = stim.unit_interval_ps;
  while (range < -ui / 2.0) range += ui;
  while (range >= ui / 2.0) range -= ui;

  bench::section("Measurements (paper vs ours)");
  bench::row_header();
  bench::row("input reference TJ (pk-pk)", 11.5, j_in.tj_pp_ps, "ps");
  bench::row("output TJ at max delay", 18.5, j_max.tj_pp_ps, "ps");
  bench::row("added TJ", 7.0, j_max.tj_pp_ps - j_in.tj_pp_ps, "ps");
  bench::row("fine delay range @4.8 Gbps", 49.5, range, "ps");

  bench::section("Eye diagrams");
  bench::print_eye(stim.wf, ui, "input reference");
  bench::print_eye(out_min, ui, "output, Vctrl = 0 (min delay)");
  bench::print_eye(out_max, ui, "output, Vctrl = max (max delay)");
  return 0;
}
