// Fig. 12 reproduction: 4.8 Gbps data eyes at minimum and maximum fine
// delay. The paper overlays the two eye crossings and reads a fine-delay
// range of 49.5 ps with output TJ = 18.5 ps (~7 ps above the reference).
//
// Runs on the streaming executor: the stimulus is planned once and
// rendered chunk by chunk through the channel into incremental jitter and
// eye sinks — no intermediate waveform is ever materialized, and the
// numbers are byte-identical to the old materializing flow.
#include <cstdio>

#include "bench/common.h"
#include "core/channel.h"
#include "core/pipeline.h"
#include "measure/sinks.h"
#include "signal/pattern.h"
#include "signal/stream.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("4.8 Gbps eyes at min/max fine delay", "Fig. 12");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 4.8;
  const std::size_t bits = 768;
  // Match the paper's reference trace: input TJ ~ 11.5 ps pk-pk.
  sc.rj_sigma_ps = sig::rj_sigma_for_tj_pp(11.5, bits / 2);
  sig::SynthSource stim(sig::plan_nrz(sig::prbs(7, bits), sc, &rng));
  const double ui = stim.unit_interval_ps();

  core::VariableDelayChannel ch(core::ChannelConfig::prototype(), rng.fork(1));

  const auto jo = bench::settled_jitter();
  meas::JitterSink j_in(ui, jo), j_min(ui, jo), j_max(ui, jo);
  meas::EyeSink eye_in(bench::bench_eye(ui), 0.0, 12000.0);
  meas::EyeSink eye_min(bench::bench_eye(ui), 0.0, 12000.0);
  meas::EyeSink eye_max(bench::bench_eye(ui), 0.0, 12000.0);

  // Input reference straight off the synth stream (no stages).
  core::Pipeline meter;
  meter.run(stim, {&j_in, &eye_in});

  core::Pipeline pipe;
  pipe.add_stage(ch);
  ch.set_vctrl(0.0);
  pipe.run(stim, {&j_min, &eye_min});
  ch.set_vctrl(ch.vctrl_max());
  pipe.run(stim, {&j_max, &eye_max});

  // Fine range: shift of the eye crossing between the two settings.
  double range = j_max.report().grid_phase_ps - j_min.report().grid_phase_ps;
  while (range < -ui / 2.0) range += ui;
  while (range >= ui / 2.0) range -= ui;

  bench::section("Measurements (paper vs ours)");
  bench::row_header();
  bench::row("input reference TJ (pk-pk)", 11.5, j_in.report().tj_pp_ps, "ps");
  bench::row("output TJ at max delay", 18.5, j_max.report().tj_pp_ps, "ps");
  bench::row("added TJ", 7.0,
             j_max.report().tj_pp_ps - j_in.report().tj_pp_ps, "ps");
  bench::row("fine delay range @4.8 Gbps", 49.5, range, "ps");

  bench::section("Eye diagrams");
  bench::print_eye(eye_in.eye(), "input reference");
  bench::print_eye(eye_min.eye(), "output, Vctrl = 0 (min delay)");
  bench::print_eye(eye_max.eye(), "output, Vctrl = max (max delay)");
  bench::write_figure_json(
      outdir, "fig12_eye48",
      {{"input_tj_pp_ps", j_in.report().tj_pp_ps},
       {"output_tj_pp_ps", j_max.report().tj_pp_ps},
       {"fine_range_ps", range}});
  return 0;
}
