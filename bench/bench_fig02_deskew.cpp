// Fig. 1 / Fig. 2 reproduction: deskewing a parallel ATE bus.
//
// A 4-lane 6.4 Gbps bus with random channel skew is shown (a) raw,
// (b) after the ATE's native ~100 ps-step deskew, and (c) after the
// per-channel variable-delay circuits are calibrated and programmed.
// The common DUT sampling window across all lanes (the practical payoff
// of Fig. 1's clock centering) is reported for each stage.
#include <cstdio>

#include "ate/bus.h"
#include "ate/controller.h"
#include "ate/dut.h"
#include "bench/common.h"
#include "core/requirements.h"
#include "signal/pattern.h"
#include "util/rng.h"

using namespace gdelay;

namespace {

// Common error-free strobe window across all lanes through their delay
// channels at the current programming.
double common_window(ate::AteBus& bus,
                     std::vector<core::VariableDelayChannel>& delays,
                     const sig::BitPattern& training) {
  ate::DutReceiver rx;
  std::vector<ate::PhaseScan> scans;
  const double ui = 1000.0 / bus.config().rate_gbps;
  for (int i = 0; i < bus.n_channels(); ++i) {
    const auto launched = bus.channel(i).drive(training);
    const auto received = delays[static_cast<std::size_t>(i)].process(launched.wf);
    scans.push_back(rx.scan_phase(received, training, ui,
                                  bus.config().synth.lead_in_ps + ui / 2.0,
                                  training.size() - 16, 48));
  }
  return ate::intersect_scans(scans, ui).window_ps;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Parallel-bus deskew: raw -> ATE-native -> ps-deskew",
                "Fig. 1 / Fig. 2 (motivating application)");

  util::Rng rng(2008);
  ate::AteBusConfig bc;
  bc.n_channels = 4;
  bc.rate_gbps = 6.4;
  bc.skew_span_ps = 260.0;
  bc.rj_sigma_ps = 0.8;
  ate::AteBus bus(bc, rng.fork(1));

  std::vector<core::VariableDelayChannel> delays;
  for (int i = 0; i < bc.n_channels; ++i)
    delays.emplace_back(core::ChannelConfig::prototype(),
                        rng.fork(10 + static_cast<std::uint64_t>(i)));

  const auto training = sig::prbs(7, 96);
  const double ui = 1000.0 / bc.rate_gbps;

  bench::section("Channel skews as launched (Fig. 2a)");
  for (int i = 0; i < bc.n_channels; ++i)
    std::printf("  DATA_%d: static skew %+8.1f ps\n", i + 1,
                bus.channel(i).static_skew_ps());
  std::printf("  bus skew span: %.1f ps (UI = %.2f ps)\n",
              bus.launch_skew_span_ps(), ui);
  const double w_raw = common_window(bus, delays, training);
  std::printf("  common DUT sampling window: %.1f ps\n", w_raw);

  bench::section("After ATE-native deskew (100 ps steps)");
  bus.apply_native_deskew();
  for (int i = 0; i < bc.n_channels; ++i)
    std::printf("  DATA_%d: programmed %+d steps -> residual %+7.1f ps\n",
                i + 1, bus.channel(i).programmed_steps(),
                bus.channel(i).launch_offset_ps());
  std::printf("  bus skew span: %.1f ps (quantization-limited)\n",
              bus.launch_skew_span_ps());

  bench::section("After per-channel ps deskew (this paper's circuit)");
  ate::DeskewController::Options opt;
  opt.training = training;
  opt.calibration.n_vctrl_points = 13;
  ate::DeskewController ctl(bus, delays, opt);
  const auto rep = ctl.run();
  for (std::size_t i = 0; i < rep.plan.settings.size(); ++i) {
    const auto& s = rep.plan.settings[i];
    std::printf(
        "  DATA_%zu: tap %d, DAC %4u (%.4f V) -> arrival %+9.2f ps\n",
        i + 1, s.tap, s.dac_code, s.vctrl_v,
        rep.arrival_after_ps[i] - rep.plan.target_arrival_ps);
  }
  std::printf("\n  skew span before : %8.2f ps\n", rep.span_before_ps);
  std::printf("  skew span after  : %8.2f ps  (requirement: < %.0f ps)\n",
              rep.span_after_ps, core::Requirements::kChannelSkewPs);
  const double w_fixed = common_window(bus, delays, training);
  std::printf("  common DUT sampling window: %.1f ps (was %.1f ps raw)\n",
              w_fixed, w_raw);
  std::printf("  verdict: %s\n",
              rep.span_after_ps < core::Requirements::kChannelSkewPs
                  ? "PASS (parallel-synchronous capture enabled)"
                  : "FAIL");
  bench::write_figure_json(outdir, "fig02_deskew",
                           {{"skew_span_before_ps", rep.span_before_ps},
                            {"skew_span_after_ps", rep.span_after_ps},
                            {"window_raw_ps", w_raw},
                            {"window_deskewed_ps", w_fixed}});
  return 0;
}
