// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "backend/backend.h"
#include "measure/eye.h"
#include "measure/jitter.h"
#include "signal/synth.h"

// Stamped by the build (bench/CMakeLists.txt) from `git rev-parse`;
// "unknown" outside a git checkout.
#ifndef GDELAY_GIT_REV
#define GDELAY_GIT_REV "unknown"
#endif

namespace gdelay::bench {

// BENCH_*.json schema version. v1 had no version field at all; v2 adds
// "schema" and "git_rev" so perf snapshots are attributable to a commit;
// v3 adds an optional "mem" object (peak RSS + heap accounting, see
// bench/memtrack.h) and moves the files out of the CWD into an output
// directory (default bench/out/, see parse_outdir); v4 adds a "backend"
// object (compute-backend name, ISA level and the dispatch reason) so a
// perf number can never be compared against one measured under a
// different kernel table without noticing; v5 adds an optional
// "campaign" object (shard mode/count, units processed, trials/sec,
// whether the run resumed from a checkpoint) for benches driven by the
// campaign orchestrator. Readers must tolerate all shapes: treat a
// missing "schema" as v1, a missing "mem" as v2-style timing-only data,
// a missing "backend" as the scalar oracle, and a missing "campaign" as
// a single-process in-line run.
inline constexpr int kBenchJsonSchema = 5;

/// The v4 "backend" stamp, read from the dispatcher at call time. Dual-
/// backend harnesses select backends per benchmark run; the stamp then
/// records the table active when the json was written (the per-row
/// names carry the per-run backend).
struct BackendStamp {
  const char* name;
  const char* isa;
  const char* reason;
};

inline BackendStamp backend_stamp() {
  const gdelay::backend::Kernels& k = gdelay::backend::active();
  return {k.name, k.isa, gdelay::backend::dispatch_reason()};
}

/// Where a bench drops its BENCH_*.json. Benches accept
/// `--outdir DIR` / `--outdir=DIR` (default "bench/out", relative to
/// the CWD; gitignored — CI uploads the whole directory as an
/// artifact). The flag is stripped from argv so a downstream
/// benchmark::Initialize never sees it; the directory is created on the
/// spot.
inline std::string parse_outdir(int* argc, char** argv) {
  std::string dir = "bench/out";
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string a = argv[i];
    if (a == "--outdir" && i + 1 < *argc) {
      dir = argv[++i];
      continue;
    }
    if (a.rfind("--outdir=", 0) == 0) {
      dir = a.substr(9);
      continue;
    }
    argv[w++] = argv[i];
  }
  argv[w] = nullptr;
  *argc = w;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Peak resident-set size of the process so far, in bytes (0 where
/// getrusage is unavailable). Monotone over the process lifetime: a
/// bench comparing phases must run the lean phase first, or use the
/// resettable heap counters in bench/memtrack.h.
inline std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// The v5 "campaign" stamp: shard topology and throughput of an
/// orchestrated run. `mode` is campaign::mode_name() of the mode that
/// actually ran (fork may degrade to thread off-POSIX).
struct CampaignStamp {
  const char* mode = "serial";
  std::size_t shards = 1;
  std::size_t units = 0;
  double trials_per_sec = 0.0;
  bool resumed = false;
};

/// Hand-rolled BENCH_<name>.json for the figure benches: the schema-5
/// envelope (version, git rev, backend stamp, optional campaign stamp,
/// peak RSS) around a flat list of headline scalars — the numbers a
/// perf/accuracy dashboard tracks per figure. Non-harness counterpart
/// of write_gbench_json.
inline void write_figure_json(
    const std::string& outdir, const char* bench_name,
    const std::vector<std::pair<std::string, double>>& scalars,
    const CampaignStamp* campaign = nullptr) {
  const std::string path = outdir + "/BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return;
  }
  const BackendStamp bs = backend_stamp();
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"schema\": %d,\n"
               "  \"git_rev\": \"%s\",\n"
               "  \"backend\": {\"name\": \"%s\", \"isa\": \"%s\", "
               "\"reason\": \"%s\"}",
               bench_name, kBenchJsonSchema, GDELAY_GIT_REV, bs.name, bs.isa,
               bs.reason);
  if (campaign) {
    std::fprintf(f,
                 ",\n  \"campaign\": {\"mode\": \"%s\", \"shards\": %zu, "
                 "\"units\": %zu, \"trials_per_sec\": %.6g, "
                 "\"resumed\": %s}",
                 campaign->mode, campaign->shards, campaign->units,
                 campaign->trials_per_sec,
                 campaign->resumed ? "true" : "false");
  }
  for (const auto& [key, value] : scalars)
    std::fprintf(f, ",\n  \"%s\": %.6g", key.c_str(), value);
  std::fprintf(f, ",\n  \"mem\": {\"peak_rss_bytes\": %zu}\n}\n",
               peak_rss_bytes());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

inline void banner(const char* title, const char* paper_ref) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper reference: %s\n", paper_ref);
  std::printf("============================================================\n");
}

inline void section(const char* name) {
  std::printf("\n--- %s ---\n", name);
}

/// Prints an already-accumulated eye (the streaming benches fold their
/// eyes incrementally through meas::EyeSink).
inline void print_eye(const meas::EyeDiagram& eye, const char* label) {
  std::printf("%s (2 UI x [-550,550] mV):\n%s", label, eye.ascii().c_str());
}

/// Renders a waveform as an ASCII eye diagram (2 UI wide).
inline void print_eye(const sig::Waveform& wf, double ui_ps,
                      const char* label, double settle_ps = 12000.0) {
  meas::EyeDiagram eye(ui_ps, -0.55, 0.55, 72, 18);
  eye.accumulate(wf, 0.0, settle_ps);
  print_eye(eye, label);
}

/// The benches' standard eye raster (2 UI x [-550, 550] mV, 72x18).
inline meas::EyeDiagram bench_eye(double ui_ps) {
  return meas::EyeDiagram(ui_ps, -0.55, 0.55, 72, 18);
}

/// Quick row formatter for paper-vs-measured tables.
inline void row(const char* name, double paper, double measured,
                const char* unit) {
  std::printf("  %-34s %9.2f %9.2f  %s\n", name, paper, measured, unit);
}

inline void row_header() {
  std::printf("  %-34s %9s %9s\n", "quantity", "paper", "ours");
}

/// Jitter options that skip the stages' bias-droop settling transient.
inline meas::JitterMeasureOptions settled_jitter() {
  meas::JitterMeasureOptions jo;
  jo.settle_ps = 12000.0;
  return jo;
}

}  // namespace gdelay::bench
