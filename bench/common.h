// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "measure/eye.h"
#include "measure/jitter.h"
#include "signal/synth.h"

namespace gdelay::bench {

/// Where a bench drops its BENCH_*.json. Benches accept
/// `--outdir DIR` / `--outdir=DIR` (default "bench/out", relative to
/// the CWD; gitignored — CI uploads the whole directory as an
/// artifact). The flag is stripped from argv so a downstream
/// benchmark::Initialize never sees it; the directory is created on the
/// spot.
inline std::string parse_outdir(int* argc, char** argv) {
  std::string dir = "bench/out";
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string a = argv[i];
    if (a == "--outdir" && i + 1 < *argc) {
      dir = argv[++i];
      continue;
    }
    if (a.rfind("--outdir=", 0) == 0) {
      dir = a.substr(9);
      continue;
    }
    argv[w++] = argv[i];
  }
  argv[w] = nullptr;
  *argc = w;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Peak resident-set size of the process so far, in bytes (0 where
/// getrusage is unavailable). Monotone over the process lifetime: a
/// bench comparing phases must run the lean phase first, or use the
/// resettable heap counters in bench/memtrack.h.
inline std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

inline void banner(const char* title, const char* paper_ref) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper reference: %s\n", paper_ref);
  std::printf("============================================================\n");
}

inline void section(const char* name) {
  std::printf("\n--- %s ---\n", name);
}

/// Prints an already-accumulated eye (the streaming benches fold their
/// eyes incrementally through meas::EyeSink).
inline void print_eye(const meas::EyeDiagram& eye, const char* label) {
  std::printf("%s (2 UI x [-550,550] mV):\n%s", label, eye.ascii().c_str());
}

/// Renders a waveform as an ASCII eye diagram (2 UI wide).
inline void print_eye(const sig::Waveform& wf, double ui_ps,
                      const char* label, double settle_ps = 12000.0) {
  meas::EyeDiagram eye(ui_ps, -0.55, 0.55, 72, 18);
  eye.accumulate(wf, 0.0, settle_ps);
  print_eye(eye, label);
}

/// The benches' standard eye raster (2 UI x [-550, 550] mV, 72x18).
inline meas::EyeDiagram bench_eye(double ui_ps) {
  return meas::EyeDiagram(ui_ps, -0.55, 0.55, 72, 18);
}

/// Quick row formatter for paper-vs-measured tables.
inline void row(const char* name, double paper, double measured,
                const char* unit) {
  std::printf("  %-34s %9.2f %9.2f  %s\n", name, paper, measured, unit);
}

inline void row_header() {
  std::printf("  %-34s %9s %9s\n", "quantity", "paper", "ours");
}

/// Jitter options that skip the stages' bias-droop settling transient.
inline meas::JitterMeasureOptions settled_jitter() {
  meas::JitterMeasureOptions jo;
  jo.settle_ps = 12000.0;
  return jo;
}

}  // namespace gdelay::bench
