// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "measure/eye.h"
#include "measure/jitter.h"
#include "signal/synth.h"

namespace gdelay::bench {

inline void banner(const char* title, const char* paper_ref) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper reference: %s\n", paper_ref);
  std::printf("============================================================\n");
}

inline void section(const char* name) {
  std::printf("\n--- %s ---\n", name);
}

/// Renders a waveform as an ASCII eye diagram (2 UI wide).
inline void print_eye(const sig::Waveform& wf, double ui_ps,
                      const char* label, double settle_ps = 12000.0) {
  meas::EyeDiagram eye(ui_ps, -0.55, 0.55, 72, 18);
  eye.accumulate(wf, 0.0, settle_ps);
  std::printf("%s (2 UI x [-550,550] mV):\n%s", label, eye.ascii().c_str());
}

/// Quick row formatter for paper-vs-measured tables.
inline void row(const char* name, double paper, double measured,
                const char* unit) {
  std::printf("  %-34s %9.2f %9.2f  %s\n", name, paper, measured, unit);
}

inline void row_header() {
  std::printf("  %-34s %9s %9s\n", "quantity", "paper", "ours");
}

/// Jitter options that skip the stages' bias-droop settling transient.
inline meas::JitterMeasureOptions settled_jitter() {
  meas::JitterMeasureOptions jo;
  jo.settle_ps = 12000.0;
  return jo;
}

}  // namespace gdelay::bench
