// Fig. 16 reproduction: jitter injection at 3.2 Gbps. The paper's
// reference trace carries ~28 ps of TJ; AC-coupling a 900 mVpp Gaussian
// noise generator onto Vctrl raises the output TJ to ~69 ps (+41 ps).
#include <cstdio>

#include "bench/common.h"
#include "core/jitter_injector.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Jitter injection via Vctrl noise at 3.2 Gbps", "Fig. 16");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const std::size_t bits = 1024;
  sc.rj_sigma_ps = sig::rj_sigma_for_tj_pp(28.0, bits / 2);
  const auto stim = sig::synthesize_nrz(sig::prbs(7, bits), sc, &rng);

  core::JitterInjectorConfig cfg;
  cfg.noise_pp_v = 0.9;  // the paper's 900 mVpp generator setting
  core::JitterInjector inj(cfg, rng.fork(1));

  const auto out = inj.process(stim.wf);
  const auto jo = bench::settled_jitter();
  const auto j_in = meas::measure_jitter(stim.wf, stim.unit_interval_ps, jo);
  const auto j_out = meas::measure_jitter(out, stim.unit_interval_ps, jo);

  bench::section("Measurements (paper vs ours)");
  bench::row_header();
  bench::row("input reference TJ", 28.0, j_in.tj_pp_ps, "ps");
  bench::row("output TJ with 900 mVpp noise", 69.0, j_out.tj_pp_ps, "ps");
  bench::row("injected jitter", 41.0, j_out.tj_pp_ps - j_in.tj_pp_ps, "ps");
  std::printf(
      "\n  note: the mechanism and the linear noise-to-jitter conversion\n"
      "  are reproduced; the absolute conversion gain lands at ~60%% of\n"
      "  the paper's (their generator's pk-pk spec and crest factor are\n"
      "  not documented; we assume pp = 6 sigma).\n");

  bench::section("Eye diagrams");
  bench::print_eye(stim.wf, stim.unit_interval_ps, "input reference");
  bench::print_eye(out, stim.unit_interval_ps,
                   "output with 900 mVpp noise on Vctrl");
  bench::write_figure_json(
      outdir, "fig16_injection",
      {{"input_tj_pp_ps", j_in.tj_pp_ps},
       {"output_tj_pp_ps", j_out.tj_pp_ps},
       {"injected_tj_pp_ps", j_out.tj_pp_ps - j_in.tj_pp_ps}});
  return 0;
}
