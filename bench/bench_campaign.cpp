// Campaign orchestrator determinism gates (ours): the merged result of a
// sharded extreme-statistics run must be bit-identical for ANY shard
// count, ANY execution mode (serial loop, pool threads, forked
// processes) and ANY resume point. This bench runs a representative
// workload — per-unit NRZ synthesis folded into an eye raster, a level
// histogram and a per-unit record set — through the full matrix and
// exits nonzero on the first drift, so CI can hold the invariant.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "campaign/campaign.h"
#include "measure/sinks.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"
#include "util/serde.h"

using namespace gdelay;

namespace {

/// One hash over every accumulator's serialized state — the identity the
/// whole matrix is compared against.
std::uint64_t result_hash(const campaign::CampaignResult& r) {
  util::ByteWriter w;
  for (const auto& acc : r.accumulators) acc->save(w);
  return util::fnv1a64(w.bytes().data(), w.bytes().size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Campaign determinism: shards x modes x resume",
                "(ours; extreme-statistics orchestration contract)");

  constexpr std::uint64_t kUnits = 256;
  const sig::BitPattern bits = sig::prbs(7, 16);
  sig::SynthConfig scfg;
  scfg.rate_gbps = 3.2;
  scfg.dt_ps = 2.0;
  scfg.lead_in_ps = 100.0;
  scfg.tail_ps = 100.0;
  scfg.rj_sigma_ps = 1.2;
  scfg.dj_pp_ps = 6.0;
  const double ui_ps = scfg.unit_interval_ps();

  const auto factory = [&] {
    campaign::AccumulatorSet s;
    s.push_back(std::make_unique<campaign::SinkAccumulator>(
        std::make_unique<meas::EyeSink>(bench::bench_eye(ui_ps), 0.0,
                                        100.0)));
    s.push_back(std::make_unique<campaign::SinkAccumulator>(
        std::make_unique<meas::LevelHistogramSink>(-0.6, 0.6, 48, 100.0)));
    s.push_back(std::make_unique<campaign::RecordAccumulator>(2));
    return s;
  };
  const auto unit_fn = [&](std::uint64_t unit, util::Rng& rng,
                           campaign::AccumulatorSet& accs) {
    const auto res = sig::synthesize_nrz(bits, scfg, &rng);
    const auto& v = res.wf.samples();
    meas::ISampleSink* sinks[2] = {
        &static_cast<campaign::SinkAccumulator&>(*accs[0]).sink(),
        &static_cast<campaign::SinkAccumulator&>(*accs[1]).sink()};
    for (meas::ISampleSink* s : sinks) {
      s->begin(res.wf.t0_ps(), res.wf.dt_ps(), v.size());
      s->consume(v.data(), v.size());
      s->finish();
    }
    double mean = 0.0, peak = 0.0;
    for (double x : v) {
      mean += x;
      peak = std::max(peak, std::abs(x));
    }
    mean /= static_cast<double>(v.size());
    const double rec[2] = {mean, peak};
    static_cast<campaign::RecordAccumulator&>(*accs[2]).add(unit, rec);
  };

  const auto base_spec = [&] {
    campaign::CampaignSpec spec;
    spec.name = "bench_campaign";
    spec.seed = 4242;
    spec.n_units = kUnits;
    return spec;
  };

  std::vector<campaign::Mode> modes = {campaign::Mode::kSerial,
                                       campaign::Mode::kThread};
  if (campaign::fork_available()) modes.push_back(campaign::Mode::kFork);

  std::size_t checked = 0, drifted = 0;
  std::uint64_t ref_hash = 0;
  double units_per_sec = 0.0;
  campaign::CampaignResult stamp_result;

  bench::section("Shard-count x mode invariance");
  std::printf("  %8s %7s %10s %8s   %s\n", "mode", "shards", "units/s",
              "status", "merged-state hash");
  for (const campaign::Mode mode : modes) {
    for (const std::size_t shards : {1, 2, 4, 8}) {
      campaign::CampaignSpec spec = base_spec();
      spec.mode = mode;
      spec.n_shards = shards;
      const auto start = std::chrono::steady_clock::now();
      campaign::CampaignResult r =
          campaign::run_campaign(spec, factory, unit_fn);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      const std::uint64_t h = result_hash(r);
      if (checked == 0) ref_hash = h;
      const bool ok = h == ref_hash && r.complete &&
                      r.units_done == kUnits;
      ++checked;
      if (!ok) ++drifted;
      if (secs > 0.0)
        units_per_sec = std::max(
            units_per_sec, static_cast<double>(kUnits) / secs);
      std::printf("  %8s %7zu %10.3g %8s   %016llx\n",
                  campaign::mode_name(r.mode), shards,
                  secs > 0.0 ? static_cast<double>(kUnits) / secs : 0.0,
                  ok ? "ok" : "DRIFT",
                  static_cast<unsigned long long>(h));
      if (mode == modes.back() && shards == 4) stamp_result = std::move(r);
    }
  }

  bench::section("Kill + resume at a mid-campaign checkpoint");
  const std::string ckpt_dir = outdir + "/campaign_ckpt";
  for (const campaign::Mode mode : modes) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      campaign::CampaignSpec spec = base_spec();
      spec.mode = mode;
      spec.n_shards = shards;
      spec.checkpoint_dir = ckpt_dir;
      spec.checkpoint_every = 16;
      // Deterministic stand-in for a mid-campaign kill: every shard stops
      // after processing half of a 4-way shard's range.
      spec.stop_after_units = kUnits / shards / 2;
      const campaign::CampaignResult part =
          campaign::run_campaign(spec, factory, unit_fn);
      spec.stop_after_units = 0;
      const campaign::CampaignResult full =
          campaign::run_campaign(spec, factory, unit_fn);
      const std::uint64_t h = result_hash(full);
      const bool ok = !part.complete && full.complete && full.resumed &&
                      h == ref_hash;
      ++checked;
      if (!ok) ++drifted;
      std::printf("  %8s %7zu  stopped at %llu/%llu, resumed -> %s"
                  "   %016llx\n",
                  campaign::mode_name(full.mode), shards,
                  static_cast<unsigned long long>(part.units_done),
                  static_cast<unsigned long long>(kUnits),
                  ok ? "identical" : "DRIFT",
                  static_cast<unsigned long long>(h));
      campaign::remove_checkpoints(spec);
    }
  }

  std::printf("\n  %zu configurations checked, %zu drifted: %s\n", checked,
              drifted, drifted == 0 ? "PASS" : "FAIL");

  bench::CampaignStamp cs;
  cs.mode = campaign::mode_name(stamp_result.mode);
  cs.shards = stamp_result.n_shards;
  cs.units = static_cast<std::size_t>(stamp_result.units_done);
  cs.trials_per_sec = units_per_sec;
  cs.resumed = stamp_result.resumed;
  bench::write_figure_json(
      outdir, "campaign",
      {{"configs_checked", static_cast<double>(checked)},
       {"configs_drifted", static_cast<double>(drifted)},
       {"units_per_sec_best", units_per_sec},
       {"modes_available", static_cast<double>(modes.size())}},
      &cs);
  if (drifted) {
    std::fprintf(stderr,
                 "FAIL: campaign determinism contract violated in %zu "
                 "configuration(s)\n",
                 drifted);
    return 1;
  }
  return 0;
}
