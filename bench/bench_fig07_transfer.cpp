// Fig. 7 reproduction: delay vs. control voltage for the 4-stage
// fine-adjustment circuit at 3.2 Gbps. The paper reports a ~56 ps range,
// approximately linear through the mid-range with slope flattening near
// the Vctrl extremes, programmed through a 12-bit DAC for sub-ps
// resolution.
#include <cstdio>

#include "bench/common.h"
#include "core/calibration.h"
#include "core/dac.h"
#include "core/fine_delay.h"
#include "measure/delay_meter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Fine delay vs Vctrl (4-stage line)", "Fig. 7");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, 127), sc);

  core::FineDelayLine line(core::FineDelayConfig{}, rng.fork(1));
  core::DelayCalibrator::Options opt;
  opt.n_vctrl_points = 25;
  const auto curve =
      core::DelayCalibrator(opt).measure_fine_curve(line, stim.wf);

  bench::section("Delay vs Vctrl (relative to Vctrl = 0)");
  std::printf("  %8s  %10s   plot\n", "Vctrl(V)", "delay(ps)");
  const double span = curve.y_span();
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double v = curve.xs()[i];
    const double d = curve.ys()[i];
    const int stars = static_cast<int>(d / span * 56.0 + 0.5);
    std::printf("  %8.3f  %10.2f   |%.*s*\n", v, d, stars,
                "                                                        ");
  }

  const core::Dac dac;  // 12-bit over 1.5 V
  bench::section("Summary (paper vs ours)");
  bench::row_header();
  bench::row("fine delay range", 56.0, span, "ps");
  bench::row("mid-range slope", 56.0 / 1.5, curve.mid_slope(0.5), "ps/V");
  bench::row("DAC resolution (worst LSB step)", 0.02,
             curve.mid_slope(0.2) * dac.lsb_v() * 1.3, "ps");
  std::printf(
      "\n  shape check: mid-range linear, slope flattens at the extremes\n"
      "  (end-segment slope / mid slope = %.2f, < 1 as in the paper)\n",
      ((curve.ys()[1] - curve.ys()[0]) /
       (curve.xs()[1] - curve.xs()[0])) /
          curve.mid_slope(0.4));
  bench::write_figure_json(
      outdir, "fig07_transfer",
      {{"fine_range_ps", span},
       {"mid_slope_ps_per_v", curve.mid_slope(0.5)},
       {"dac_lsb_step_ps", curve.mid_slope(0.2) * dac.lsb_v() * 1.3}});
  return 0;
}
