// Fig. 17 reproduction: injected jitter vs. applied voltage-noise
// amplitude. The paper shows an approximately linear characteristic,
// reaching ~40+ ps of added jitter near 1 Vpp.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/jitter_injector.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace gdelay;

int main() {
  bench::banner("Injected jitter vs noise amplitude at 3.2 Gbps", "Fig. 17");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const std::size_t bits = 768;
  sc.rj_sigma_ps = sig::rj_sigma_for_tj_pp(8.0, bits / 2);
  const auto stim = sig::synthesize_nrz(sig::prbs(7, bits), sc, &rng);

  const auto jo = bench::settled_jitter();

  // Average each point over a few generator seeds: a single record's
  // peak-to-peak statistic is noisy (like a short scope acquisition).
  const auto added_for = [&](double pp, std::uint64_t seed) {
    core::JitterInjector inj(core::JitterInjectorConfig{},
                             util::Rng(900 + seed));
    inj.set_noise_pp(0.0);
    const double tj0 =
        meas::measure_jitter(inj.process(stim.wf), stim.unit_interval_ps, jo)
            .tj_pp_ps;
    inj.set_noise_pp(pp);
    const double tj =
        meas::measure_jitter(inj.process(stim.wf), stim.unit_interval_ps, jo)
            .tj_pp_ps;
    return tj - tj0;
  };

  // Every (amplitude, seed) trial builds its own injector from its own
  // Rng(900 + seed) stream — exactly the serial code's seeding — so the
  // grid fans out across the pool and reduces by index to the same table.
  std::vector<double> amplitudes;
  for (double pp = 0.0; pp <= 1.01; pp += 0.1) amplitudes.push_back(pp);
  constexpr std::size_t kSeeds = 3;
  const std::vector<double> trial = util::parallel_map(
      amplitudes.size() * kSeeds, [&](std::size_t i) {
        return added_for(amplitudes[i / kSeeds], i % kSeeds);
      });

  bench::section("Added jitter vs noise amplitude (3-seed average)");
  std::printf("  %10s %12s   plot\n", "noise(Vpp)", "added TJ(ps)");
  for (std::size_t a = 0; a < amplitudes.size(); ++a) {
    double added = 0.0;
    for (std::size_t s = 0; s < kSeeds; ++s) added += trial[a * kSeeds + s];
    added /= static_cast<double>(kSeeds);
    const int stars = added > 0 ? static_cast<int>(added + 0.5) : 0;
    std::printf("  %10.1f %12.2f   |%.*s*\n", amplitudes[a], added, stars,
                "                                                        ");
  }
  std::printf(
      "\n  shape: approximately linear in the noise amplitude (Fig. 17),\n"
      "  since delay is locally linear in Vctrl around the mid-range\n"
      "  operating point.\n");
  return 0;
}
