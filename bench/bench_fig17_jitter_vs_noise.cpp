// Fig. 17 reproduction: injected jitter vs. applied voltage-noise
// amplitude. The paper shows an approximately linear characteristic,
// reaching ~40+ ps of added jitter near 1 Vpp.
//
// Runs on the streaming executor: the stimulus is planned once, and each
// (amplitude, seed) trial renders its own copy of the plan chunk by
// chunk through its injector into an incremental jitter sink — the
// stimulus and the injected traces are never materialized. Numbers are
// byte-identical to the old materializing flow.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/jitter_injector.h"
#include "core/pipeline.h"
#include "measure/sinks.h"
#include "signal/pattern.h"
#include "signal/stream.h"
#include "signal/synth.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Injected jitter vs noise amplitude at 3.2 Gbps", "Fig. 17");

  util::Rng rng(2008);
  sig::SynthConfig sc;
  sc.rate_gbps = 3.2;
  const std::size_t bits = 768;
  sc.rj_sigma_ps = sig::rj_sigma_for_tj_pp(8.0, bits / 2);
  const auto plan = sig::plan_nrz(sig::prbs(7, bits), sc, &rng);
  const double ui = plan.unit_interval_ps;

  const auto jo = bench::settled_jitter();

  // Average each point over a few generator seeds: a single record's
  // peak-to-peak statistic is noisy (like a short scope acquisition).
  const auto added_for = [&](double pp, std::uint64_t seed) {
    core::JitterInjector inj(core::JitterInjectorConfig{},
                             util::Rng(900 + seed));
    sig::SynthSource src{sig::SynthPlan(plan)};
    core::Pipeline pipe;
    pipe.add_stage(inj);
    meas::JitterSink tj0(ui, jo), tj(ui, jo);
    inj.set_noise_pp(0.0);
    pipe.run(src, tj0);
    inj.set_noise_pp(pp);
    pipe.run(src, tj);
    return tj.report().tj_pp_ps - tj0.report().tj_pp_ps;
  };

  // Every (amplitude, seed) trial builds its own injector from its own
  // Rng(900 + seed) stream — exactly the serial code's seeding — so the
  // grid fans out across the pool and reduces by index to the same table.
  std::vector<double> amplitudes;
  for (double pp = 0.0; pp <= 1.01; pp += 0.1) amplitudes.push_back(pp);
  constexpr std::size_t kSeeds = 3;
  const std::vector<double> trial = util::parallel_map(
      amplitudes.size() * kSeeds, [&](std::size_t i) {
        return added_for(amplitudes[i / kSeeds], i % kSeeds);
      });

  bench::section("Added jitter vs noise amplitude (3-seed average)");
  std::printf("  %10s %12s   plot\n", "noise(Vpp)", "added TJ(ps)");
  double added_at_max = 0.0;
  for (std::size_t a = 0; a < amplitudes.size(); ++a) {
    double added = 0.0;
    for (std::size_t s = 0; s < kSeeds; ++s) added += trial[a * kSeeds + s];
    added /= static_cast<double>(kSeeds);
    added_at_max = added;
    const int stars = added > 0 ? static_cast<int>(added + 0.5) : 0;
    std::printf("  %10.1f %12.2f   |%.*s*\n", amplitudes[a], added, stars,
                "                                                        ");
  }
  std::printf(
      "\n  shape: approximately linear in the noise amplitude (Fig. 17),\n"
      "  since delay is locally linear in Vctrl around the mid-range\n"
      "  operating point.\n");
  bench::write_figure_json(
      outdir, "fig17_jitter_vs_noise",
      {{"added_tj_at_max_vpp_ps", added_at_max},
       {"max_noise_vpp", amplitudes.back()}});
  return 0;
}
