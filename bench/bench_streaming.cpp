// Streaming-executor study (ours): the fused synth -> channel -> eye/TIE
// pipeline versus the classic materializing flow (render the stimulus,
// process it into a second waveform, then measure), at a bus-scale record
// of 1M+ samples. Two promises are audited at once:
//
//   perf     — >= 1.5x end-to-end throughput and >= 5x lower peak heap
//              (the streaming pass touches one cache-sized chunk instead
//              of carrying O(stages x waveform) arrays);
//   identity — the streamed eye raster and jitter statistics are
//              byte-identical to the materializing path at every chunk
//              size, including chunk = 1. A mismatch exits nonzero, so
//              CI treats bit drift as a hard failure.
//
// Emits BENCH_streaming.json (schema 4: timing + "mem" block + the
// compute-backend stamp, see bench/gbench_json.h and bench/memtrack.h).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "analog/element.h"
#include "bench/common.h"
#include "bench/gbench_json.h"
#include "bench/memtrack.h"
#include "core/channel.h"
#include "core/pipeline.h"
#include "measure/eye.h"
#include "measure/jitter.h"
#include "measure/sinks.h"
#include "signal/pattern.h"
#include "signal/stream.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

namespace {

constexpr std::size_t kBits = 2048;      // ~1.28M samples at 6.4 Gbps
constexpr std::size_t kSmallBits = 96;   // for the chunk=1 identity audit
constexpr int kReps = 3;                 // wall time = best of kReps
constexpr double kSettlePs = 12000.0;

sig::SynthConfig stim_config() {
  sig::SynthConfig sc;
  sc.rate_gbps = 6.4;
  sc.rj_sigma_ps = 1.1;
  return sc;
}

struct Result {
  meas::EyeDiagram eye;
  meas::JitterReport jitter;
  std::size_t n_samples = 0;
};

// The pre-streaming flow, verbatim: three O(waveform) arrays are alive at
// the peak (stimulus, delayed copy, plus the synth scratch).
Result run_materializing(std::size_t bits) {
  util::Rng rng(2008);
  const auto stim = sig::synthesize_nrz(sig::prbs(7, bits), stim_config(),
                                        &rng);
  core::VariableDelayChannel ch(core::ChannelConfig::prototype(),
                                rng.fork(1));
  ch.set_vctrl(0.75);
  const auto out = ch.process(stim.wf);
  const double ui = stim.unit_interval_ps;
  meas::EyeDiagram eye = bench::bench_eye(ui);
  eye.accumulate(out, 0.0, kSettlePs);
  return {std::move(eye),
          meas::measure_jitter(out, ui, bench::settled_jitter()),
          out.size()};
}

// The fused flow: same seeds, same per-sample math, one chunk in flight.
Result run_streaming(std::size_t bits, std::size_t chunk) {
  util::Rng rng(2008);
  sig::SynthSource src(sig::plan_nrz(sig::prbs(7, bits), stim_config(),
                                     &rng));
  core::VariableDelayChannel ch(core::ChannelConfig::prototype(),
                                rng.fork(1));
  ch.set_vctrl(0.75);
  const double ui = src.unit_interval_ps();
  meas::EyeSink eye(bench::bench_eye(ui), 0.0, kSettlePs);
  meas::JitterSink jit(ui, bench::settled_jitter());
  core::Pipeline pipe(chunk);
  pipe.add_stage(ch);
  pipe.run(src, {&eye, &jit});
  return {eye.eye(), jit.report(), src.size()};
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Byte-level comparison of everything both flows measured.
bool identical(const Result& a, const Result& b) {
  if (a.n_samples != b.n_samples) return false;
  if (a.eye.cols() != b.eye.cols() || a.eye.rows() != b.eye.rows() ||
      a.eye.total() != b.eye.total())
    return false;
  for (std::size_t r = 0; r < a.eye.rows(); ++r)
    for (std::size_t c = 0; c < a.eye.cols(); ++c)
      if (a.eye.count(c, r) != b.eye.count(c, r)) return false;
  const auto &ja = a.jitter, &jb = b.jitter;
  if (ja.n_edges != jb.n_edges || !same_bits(ja.ui_ps, jb.ui_ps) ||
      !same_bits(ja.grid_phase_ps, jb.grid_phase_ps) ||
      !same_bits(ja.tj_pp_ps, jb.tj_pp_ps) ||
      !same_bits(ja.rj_rms_ps, jb.rj_rms_ps) ||
      !same_bits(ja.dj_pp_ps, jb.dj_pp_ps))
    return false;
  if (ja.residuals_ps.size() != jb.residuals_ps.size()) return false;
  for (std::size_t i = 0; i < ja.residuals_ps.size(); ++i)
    if (!same_bits(ja.residuals_ps[i], jb.residuals_ps[i])) return false;
  return true;
}

// Times kReps identical runs (same seeds -> same bytes), keeps the first
// result for the identity audit and the best wall time for the verdict.
template <typename F>
std::pair<Result, double> best_of(F&& run) {
  auto t0 = std::chrono::steady_clock::now();
  Result first = run();
  auto t1 = std::chrono::steady_clock::now();
  double best_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (int rep = 1; rep < kReps; ++rep) {
    t0 = std::chrono::steady_clock::now();
    const Result r = run();
    t1 = std::chrono::steady_clock::now();
    best_ms = std::min(
        best_ms, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return {std::move(first), best_ms};
}

double mib(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner(
      "Streaming executor: fused synth->channel->eye vs materializing",
      "(ours; perf infrastructure)");

  // Streaming goes first: getrusage peak RSS is monotone over the
  // process, so the lean phase must set its high-water mark before the
  // materializing phase inflates it. Heap peaks are phase-reset and
  // exact either way.
  bench::heap_phase_reset();
  auto [stream, stream_ms] =
      best_of([] { return run_streaming(kBits, analog::kBlockSamples); });
  const auto heap_stream = bench::heap_snapshot();
  const std::size_t rss_stream = bench::peak_rss_bytes();

  // Chunk-size invariance audit (timing excluded): the default chunk is
  // compared against small/large chunks on the full record, and against
  // chunk = 1 on a short record (1.28M single-sample calls would drown
  // the bench in call overhead without adding coverage).
  const auto s64 = run_streaming(kBits, 64);
  const auto s4096 = run_streaming(kBits, 4096);
  const auto small_stream = run_streaming(kSmallBits, 1);
  const auto small_mat = run_materializing(kSmallBits);

  bench::heap_phase_reset();
  auto [mat, mat_ms] = best_of([] { return run_materializing(kBits); });
  const auto heap_mat = bench::heap_snapshot();
  const std::size_t rss_final = bench::peak_rss_bytes();

  const bool ok = identical(mat, stream) && identical(mat, s64) &&
                  identical(mat, s4096) && identical(small_mat, small_stream);

  const double n = static_cast<double>(stream.n_samples);
  const double speedup = mat_ms / stream_ms;
  const double heap_ratio =
      heap_stream.peak_bytes > 0
          ? static_cast<double>(heap_mat.peak_bytes) /
                static_cast<double>(heap_stream.peak_bytes)
          : 0.0;

  bench::section("End-to-end throughput (synth -> channel -> eye + TIE)");
  std::printf("  %-14s %10s %12s %14s\n", "path", "samples", "wall(ms)",
              "samples/s");
  std::printf("  %-14s %10zu %12.1f %14.3e\n", "materializing",
              mat.n_samples, mat_ms, n / (mat_ms * 1e-3));
  std::printf("  %-14s %10zu %12.1f %14.3e\n", "streaming",
              stream.n_samples, stream_ms, n / (stream_ms * 1e-3));
  std::printf("  speedup: %.2fx (target >= 1.5x)  %s\n", speedup,
              speedup >= 1.5 ? "PASS" : "MISS");

  bench::section("Peak memory");
  std::printf("  heap peak  : %8.2f MiB materializing vs %6.2f MiB "
              "streaming -> %.1fx (target >= 5x)  %s\n",
              mib(heap_mat.peak_bytes), mib(heap_stream.peak_bytes),
              heap_ratio, heap_ratio >= 5.0 ? "PASS" : "MISS");
  std::printf("  bytes alloc: %8.2f MiB materializing vs %6.2f MiB "
              "streaming (%zu vs %zu allocations)\n",
              mib(heap_mat.total_bytes), mib(heap_stream.total_bytes),
              heap_mat.alloc_count, heap_stream.alloc_count);
  std::printf("  peak RSS   : %8.2f MiB after streaming phase, %.2f MiB "
              "after materializing\n",
              mib(rss_stream), mib(rss_final));

  bench::section("Identity audit");
  std::printf("  eye raster + jitter stats, chunk {1, 64, %zu, 4096} vs "
              "materializing: %s\n",
              analog::kBlockSamples,
              ok ? "BYTE-IDENTICAL (PASS)" : "DIFFER (FAIL)");

  std::vector<bench::GbenchRow> rows(2);
  rows[0].name = "materializing";
  rows[0].wall_ns_per_iter = mat_ms * 1e6;
  rows[0].items_per_sec = n / (mat_ms * 1e-3);
  rows[1].name = "streaming";
  rows[1].wall_ns_per_iter = stream_ms * 1e6;
  rows[1].items_per_sec = n / (stream_ms * 1e-3);

  bench::MemReport memrep;
  memrep.peak_rss_bytes = rss_final;
  memrep.heap_peak_bytes = heap_stream.peak_bytes;
  memrep.heap_total_bytes = heap_stream.total_bytes;
  memrep.alloc_count = heap_stream.alloc_count;
  bench::write_gbench_json(
      (outdir + "/BENCH_streaming.json").c_str(), "streaming", rows,
      {{"samples", n},
       {"streaming_speedup", speedup},
       {"speedup_target", 1.5},
       {"heap_peak_streaming_mib", mib(heap_stream.peak_bytes)},
       {"heap_peak_materializing_mib", mib(heap_mat.peak_bytes)},
       {"heap_peak_ratio", heap_ratio},
       {"heap_peak_ratio_target", 5.0},
       {"rss_after_streaming_mib", mib(rss_stream)},
       {"identity", ok ? 1.0 : 0.0}},
      &memrep);
  return ok ? 0 : 1;
}
