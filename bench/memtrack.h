// Opt-in heap accounting for the benches: replaces the global
// operator new/delete family with counting wrappers so a harness can
// report live bytes, phase peak and total bytes allocated alongside its
// timing numbers (BENCH_*.json schema v3, see bench/gbench_json.h).
//
// Replacement operators must not be inline, so this header defines them
// at namespace scope: include it from exactly ONE translation unit of a
// binary. Every bench is a single .cpp, so including it from the bench
// source is always safe. The library itself never includes this file —
// allocation accounting is a bench-only concern.
//
// Counters use relaxed atomics: totals are exact under the thread pool,
// and the peak is maintained with a CAS loop. Sizes come from
// malloc_usable_size (glibc) so frees without a size are accounted
// exactly; on other platforms the counters degrade to zero rather than
// drifting negative.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#define GDELAY_MEMTRACK_EXACT 1
#else
#define GDELAY_MEMTRACK_EXACT 0
#endif

namespace gdelay::bench {

namespace memdetail {

inline std::atomic<std::size_t> g_current{0};
inline std::atomic<std::size_t> g_peak{0};
inline std::atomic<std::size_t> g_total{0};
inline std::atomic<std::size_t> g_allocs{0};

inline std::size_t block_size(void* p) noexcept {
#if GDELAY_MEMTRACK_EXACT
  return ::malloc_usable_size(p);
#else
  (void)p;
  return 0;
#endif
}

inline void on_alloc(void* p) noexcept {
  if (p == nullptr) return;
  const std::size_t sz = block_size(p);
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_total.fetch_add(sz, std::memory_order_relaxed);
  const std::size_t cur =
      g_current.fetch_add(sz, std::memory_order_relaxed) + sz;
  std::size_t peak = g_peak.load(std::memory_order_relaxed);
  while (cur > peak && !g_peak.compare_exchange_weak(
                           peak, cur, std::memory_order_relaxed)) {
  }
}

inline void on_free(void* p) noexcept {
  if (p == nullptr) return;
  g_current.fetch_sub(block_size(p), std::memory_order_relaxed);
}

}  // namespace memdetail

/// Point-in-time heap counters, phase-relative (see heap_phase_reset).
struct HeapSnapshot {
  std::size_t current_bytes = 0;  ///< Live heap bytes right now.
  std::size_t peak_bytes = 0;     ///< High-water mark since last reset.
  std::size_t total_bytes = 0;    ///< Bytes allocated since last reset.
  std::size_t alloc_count = 0;    ///< Allocations since last reset.
};

inline HeapSnapshot heap_snapshot() noexcept {
  HeapSnapshot s;
  s.current_bytes = memdetail::g_current.load(std::memory_order_relaxed);
  s.peak_bytes = memdetail::g_peak.load(std::memory_order_relaxed);
  s.total_bytes = memdetail::g_total.load(std::memory_order_relaxed);
  s.alloc_count = memdetail::g_allocs.load(std::memory_order_relaxed);
  return s;
}

/// Starts a measurement phase: the peak collapses to the live set and
/// the total/count counters restart. Call between phases so each one's
/// high-water mark is attributable (unlike getrusage peak RSS, which is
/// monotone for the whole process).
inline void heap_phase_reset() noexcept {
  memdetail::g_peak.store(
      memdetail::g_current.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  memdetail::g_total.store(0, std::memory_order_relaxed);
  memdetail::g_allocs.store(0, std::memory_order_relaxed);
}

}  // namespace gdelay::bench

// ---- global replacement operators (one TU per binary!) ----------------
//
// GDELAY_MEMTRACK_FN keeps the operators out of line: letting the
// compiler inline a malloc-backed operator new next to an inlined
// free-backed operator delete trips GCC's -Wmismatched-new-delete
// (a false positive here — the pair is malloc/free by construction).
#if defined(__GNUC__) || defined(__clang__)
#define GDELAY_MEMTRACK_FN __attribute__((noinline))
#else
#define GDELAY_MEMTRACK_FN
#endif

GDELAY_MEMTRACK_FN void* operator new(std::size_t n) {
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  gdelay::bench::memdetail::on_alloc(p);
  return p;
}

GDELAY_MEMTRACK_FN void* operator new[](std::size_t n) { return ::operator new(n); }

GDELAY_MEMTRACK_FN void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  void* p = std::malloc(n != 0 ? n : 1);
  gdelay::bench::memdetail::on_alloc(p);
  return p;
}

GDELAY_MEMTRACK_FN void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}

GDELAY_MEMTRACK_FN void* operator new(std::size_t n, std::align_val_t al) {
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  void* p = std::aligned_alloc(a, rounded != 0 ? rounded : a);
  if (p == nullptr) throw std::bad_alloc();
  gdelay::bench::memdetail::on_alloc(p);
  return p;
}

GDELAY_MEMTRACK_FN void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}

GDELAY_MEMTRACK_FN void operator delete(void* p) noexcept {
  gdelay::bench::memdetail::on_free(p);
  std::free(p);
}

GDELAY_MEMTRACK_FN void operator delete[](void* p) noexcept { ::operator delete(p); }
GDELAY_MEMTRACK_FN void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
GDELAY_MEMTRACK_FN void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
GDELAY_MEMTRACK_FN void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
GDELAY_MEMTRACK_FN void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
GDELAY_MEMTRACK_FN void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
GDELAY_MEMTRACK_FN void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
GDELAY_MEMTRACK_FN void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
GDELAY_MEMTRACK_FN void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
