// Layout-tolerance ablation (ours): how much P/N imbalance can the
// coarse-delay traces carry before differential defects eat the timing
// budget? The paper's Fig. 8 traces are "differential pair transmission
// lines with a controlled length" — this bench quantifies 'controlled':
// leg-to-leg skew softens edges and shifts crossings; common-mode offset
// converts to duty-cycle distortion at the limiter.
#include <cstdio>
#include <string>

#include "analog/buffer.h"
#include "analog/differential.h"
#include "bench/common.h"
#include "measure/delay_meter.h"
#include "measure/jitter.h"
#include "signal/edges.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

namespace {

struct Result {
  double shift_ps;
  double tj_pp_ps;
  double dcd_ps;
};

Result run(const sig::SynthResult& s, double leg_skew_ps, double offset_v) {
  analog::DifferentialImbalanceConfig c;
  c.leg_skew_ps = leg_skew_ps;
  c.offset_v = offset_v;
  analog::DifferentialImbalance el(c);
  analog::LimitingBufferConfig lb;
  lb.noise_sigma_v = 0.0;
  analog::LimitingBuffer lim(lb, util::Rng(1));
  auto out = lim.process(el.process(s.wf));

  Result r{};
  r.shift_ps = meas::measure_delay(s.wf, out).mean_ps;
  r.tj_pp_ps = meas::measure_jitter(out, s.unit_interval_ps).tj_pp_ps;
  const auto edges = sig::extract_edges(out);
  const auto rise =
      meas::analyze_jitter(sig::rising_times(edges), 2.0 * s.unit_interval_ps);
  const auto fall =
      meas::analyze_jitter(sig::falling_times(edges), 2.0 * s.unit_interval_ps);
  // Rising and falling grids sit a whole number of UIs apart when the
  // duty cycle is clean; DCD is the residual, wrapped into half a UI.
  r.dcd_ps = meas::wrap_delay(rise.grid_phase_ps - fall.grid_phase_ps,
                              s.unit_interval_ps);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Differential P/N imbalance tolerance",
                "(ours; 'controlled length differential pair' of Fig. 8)");

  sig::SynthConfig sc;
  sc.rate_gbps = 6.4;
  const auto s = sig::synthesize_nrz(sig::prbs(7, 256), sc);

  bench::section("Leg-to-leg skew sweep (offset = 0)");
  std::printf("  %10s %12s %10s %10s\n", "skew(ps)", "shift(ps)", "TJ(ps)",
              "DCD(ps)");
  const auto base = run(s, 0.0, 0.0);
  Result skew40{};
  for (double skew : {0.0, 10.0, 20.0, 40.0, 60.0}) {
    const auto r = run(s, skew, 0.0);
    std::printf("  %10.0f %12.2f %10.2f %10.2f\n", skew,
                r.shift_ps - base.shift_ps, r.tj_pp_ps, r.dcd_ps);
    if (skew == 40.0) skew40 = r;
  }
  std::printf("  -> leg skew shifts the lane by skew/2 (a CALIBRATABLE\n"
              "     error, absorbed by the deskew flow) and softens edges;\n"
              "     it only becomes jitter once ISI interacts with it.\n");

  bench::section("Common-mode offset sweep (skew = 0)");
  std::printf("  %10s %10s %10s\n", "offset(mV)", "TJ(ps)", "DCD(ps)");
  Result off80{};
  for (double off : {0.0, 0.02, 0.04, 0.08}) {
    const auto r = run(s, 0.0, off);
    std::printf("  %10.0f %10.2f %10.2f\n", off * 1000.0, r.tj_pp_ps,
                r.dcd_ps);
    if (off == 0.08) off80 = r;
  }
  std::printf(
      "  -> offsets are NOT calibratable by a delay setting: they split\n"
      "     rising/falling edges (DCD) and burn jitter budget directly.\n"
      "     Keeping the pair balanced matters more than keeping it short.\n");

  bench::write_figure_json(
      outdir, "diff_imbalance",
      {{"baseline_tj_pp_ps", base.tj_pp_ps},
       {"baseline_dcd_ps", base.dcd_ps},
       {"shift_ps_skew40", skew40.shift_ps - base.shift_ps},
       {"tj_pp_ps_skew40", skew40.tj_pp_ps},
       {"dcd_ps_skew40", skew40.dcd_ps},
       {"tj_pp_ps_offset80mv", off80.tj_pp_ps},
       {"dcd_ps_offset80mv", off80.dcd_ps}});
  return 0;
}
