// Numerical-soundness ablation (ours): the simulation time step.
//
// The analog elements use exact one-pole discretization, dt-compensated
// noise and sub-sample edge interpolation, so measured delays and ranges
// must be stable as dt shrinks. This bench sweeps dt and reports the
// headline numbers; drift beyond a fraction of a ps would flag a
// discretization artifact.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "core/calibration.h"
#include "core/fine_delay.h"
#include "measure/delay_meter.h"
#include "measure/jitter.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

int main(int argc, char** argv) {
  const std::string outdir = bench::parse_outdir(&argc, argv);
  bench::banner("Time-step convergence of the analog model",
                "(ours; numerical ablation)");

  bench::section("Fine range / latency / TJ vs simulation dt (3.2 Gbps)");
  std::printf("  %8s %12s %12s %10s\n", "dt (ps)", "range(ps)",
              "latency(ps)", "TJ(ps)");
  const core::DelayCalibrator cal;
  double range_default = 0.0, latency_default = 0.0, tj_default = 0.0;
  double range_fine = 0.0, latency_fine = 0.0;
  for (double dt : {1.0, 0.5, 0.25, 0.125}) {
    sig::SynthConfig sc;
    sc.rate_gbps = 3.2;
    sc.dt_ps = dt;
    const auto stim = sig::synthesize_nrz(sig::prbs(7, 96), sc);
    util::Rng rng(2008);
    core::FineDelayLine line(core::FineDelayConfig{}, rng.fork(1));
    const double range = cal.measure_fine_range(line, stim.wf);
    line.set_vctrl(0.75);
    const auto out = line.process(stim.wf);
    meas::DelayMeterOptions mo;
    mo.settle_ps = 12000.0;
    const double lat = meas::measure_delay(stim.wf, out, mo).mean_ps;
    const double tj =
        meas::measure_jitter(out, stim.unit_interval_ps,
                             bench::settled_jitter())
            .tj_pp_ps;
    std::printf("  %8.3f %12.2f %12.2f %10.1f\n", dt, range, lat, tj);
    if (dt == 0.25) {
      range_default = range;
      latency_default = lat;
      tj_default = tj;
    }
    if (dt == 0.125) {
      range_fine = range;
      latency_fine = lat;
    }
  }
  std::printf(
      "\n  deterministic quantities (range, latency) converge to well\n"
      "  under a ps across an 8x step change; TJ varies with the noise\n"
      "  realization (different sample counts) but stays in band.\n"
      "  The library default of dt = 0.25 ps is comfortably converged.\n");

  // Convergence headline: the residual between the default step and a
  // 2x finer one must stay well under a ps for the deterministic
  // quantities, or a discretization artifact crept in.
  bench::write_figure_json(
      outdir, "ablation_timestep",
      {{"range_ps_dt025", range_default},
       {"latency_ps_dt025", latency_default},
       {"tj_pp_ps_dt025", tj_default},
       {"range_convergence_residual_ps",
        std::fabs(range_default - range_fine)},
       {"latency_convergence_residual_ps",
        std::fabs(latency_default - latency_fine)}});
  return 0;
}
