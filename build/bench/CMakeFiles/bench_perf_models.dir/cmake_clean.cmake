file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_models.dir/bench_perf_models.cpp.o"
  "CMakeFiles/bench_perf_models.dir/bench_perf_models.cpp.o.d"
  "bench_perf_models"
  "bench_perf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
