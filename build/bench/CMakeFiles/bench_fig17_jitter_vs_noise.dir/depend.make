# Empty dependencies file for bench_fig17_jitter_vs_noise.
# This may be replaced when dependencies are built.
