file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_jitter_vs_noise.dir/bench_fig17_jitter_vs_noise.cpp.o"
  "CMakeFiles/bench_fig17_jitter_vs_noise.dir/bench_fig17_jitter_vs_noise.cpp.o.d"
  "bench_fig17_jitter_vs_noise"
  "bench_fig17_jitter_vs_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_jitter_vs_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
