# Empty dependencies file for bench_bathtub.
# This may be replaced when dependencies are built.
