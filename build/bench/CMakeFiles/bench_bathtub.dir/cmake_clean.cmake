file(REMOVE_RECURSE
  "CMakeFiles/bench_bathtub.dir/bench_bathtub.cpp.o"
  "CMakeFiles/bench_bathtub.dir/bench_bathtub.cpp.o.d"
  "bench_bathtub"
  "bench_bathtub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bathtub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
