# Empty dependencies file for bench_fig16_injection.
# This may be replaced when dependencies are built.
