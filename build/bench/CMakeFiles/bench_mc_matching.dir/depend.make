# Empty dependencies file for bench_mc_matching.
# This may be replaced when dependencies are built.
