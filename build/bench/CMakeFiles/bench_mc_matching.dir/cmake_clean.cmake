file(REMOVE_RECURSE
  "CMakeFiles/bench_mc_matching.dir/bench_mc_matching.cpp.o"
  "CMakeFiles/bench_mc_matching.dir/bench_mc_matching.cpp.o.d"
  "bench_mc_matching"
  "bench_mc_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mc_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
