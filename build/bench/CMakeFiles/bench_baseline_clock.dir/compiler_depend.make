# Empty compiler generated dependencies file for bench_baseline_clock.
# This may be replaced when dependencies are built.
