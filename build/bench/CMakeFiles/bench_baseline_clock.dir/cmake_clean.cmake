file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_clock.dir/bench_baseline_clock.cpp.o"
  "CMakeFiles/bench_baseline_clock.dir/bench_baseline_clock.cpp.o.d"
  "bench_baseline_clock"
  "bench_baseline_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
