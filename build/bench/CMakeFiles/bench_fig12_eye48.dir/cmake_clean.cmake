file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_eye48.dir/bench_fig12_eye48.cpp.o"
  "CMakeFiles/bench_fig12_eye48.dir/bench_fig12_eye48.cpp.o.d"
  "bench_fig12_eye48"
  "bench_fig12_eye48.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_eye48.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
