# Empty compiler generated dependencies file for bench_fig12_eye48.
# This may be replaced when dependencies are built.
