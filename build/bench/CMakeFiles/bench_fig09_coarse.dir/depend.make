# Empty dependencies file for bench_fig09_coarse.
# This may be replaced when dependencies are built.
