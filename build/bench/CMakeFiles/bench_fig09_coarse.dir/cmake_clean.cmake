file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_coarse.dir/bench_fig09_coarse.cpp.o"
  "CMakeFiles/bench_fig09_coarse.dir/bench_fig09_coarse.cpp.o.d"
  "bench_fig09_coarse"
  "bench_fig09_coarse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
