file(REMOVE_RECURSE
  "CMakeFiles/bench_ddj.dir/bench_ddj.cpp.o"
  "CMakeFiles/bench_ddj.dir/bench_ddj.cpp.o.d"
  "bench_ddj"
  "bench_ddj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ddj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
