# Empty dependencies file for bench_ddj.
# This may be replaced when dependencies are built.
