# Empty compiler generated dependencies file for bench_ablation_timestep.
# This may be replaced when dependencies are built.
