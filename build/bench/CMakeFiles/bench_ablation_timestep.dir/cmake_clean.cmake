file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timestep.dir/bench_ablation_timestep.cpp.o"
  "CMakeFiles/bench_ablation_timestep.dir/bench_ablation_timestep.cpp.o.d"
  "bench_ablation_timestep"
  "bench_ablation_timestep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timestep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
