file(REMOVE_RECURSE
  "CMakeFiles/bench_drift_recal.dir/bench_drift_recal.cpp.o"
  "CMakeFiles/bench_drift_recal.dir/bench_drift_recal.cpp.o.d"
  "bench_drift_recal"
  "bench_drift_recal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drift_recal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
