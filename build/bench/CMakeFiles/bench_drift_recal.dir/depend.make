# Empty dependencies file for bench_drift_recal.
# This may be replaced when dependencies are built.
