# Empty compiler generated dependencies file for bench_fig14_rz64.
# This may be replaced when dependencies are built.
