file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_rz64.dir/bench_fig14_rz64.cpp.o"
  "CMakeFiles/bench_fig14_rz64.dir/bench_fig14_rz64.cpp.o.d"
  "bench_fig14_rz64"
  "bench_fig14_rz64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_rz64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
