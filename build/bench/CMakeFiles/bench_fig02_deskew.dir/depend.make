# Empty dependencies file for bench_fig02_deskew.
# This may be replaced when dependencies are built.
