file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_deskew.dir/bench_fig02_deskew.cpp.o"
  "CMakeFiles/bench_fig02_deskew.dir/bench_fig02_deskew.cpp.o.d"
  "bench_fig02_deskew"
  "bench_fig02_deskew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_deskew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
