# Empty dependencies file for bench_diff_imbalance.
# This may be replaced when dependencies are built.
