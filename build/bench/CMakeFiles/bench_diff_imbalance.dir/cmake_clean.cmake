file(REMOVE_RECURSE
  "CMakeFiles/bench_diff_imbalance.dir/bench_diff_imbalance.cpp.o"
  "CMakeFiles/bench_diff_imbalance.dir/bench_diff_imbalance.cpp.o.d"
  "bench_diff_imbalance"
  "bench_diff_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diff_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
