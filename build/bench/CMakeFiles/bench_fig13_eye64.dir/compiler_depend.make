# Empty compiler generated dependencies file for bench_fig13_eye64.
# This may be replaced when dependencies are built.
