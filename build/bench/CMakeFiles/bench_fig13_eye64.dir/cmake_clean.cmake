file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_eye64.dir/bench_fig13_eye64.cpp.o"
  "CMakeFiles/bench_fig13_eye64.dir/bench_fig13_eye64.cpp.o.d"
  "bench_fig13_eye64"
  "bench_fig13_eye64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_eye64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
