file(REMOVE_RECURSE
  "CMakeFiles/bench_req_compliance.dir/bench_req_compliance.cpp.o"
  "CMakeFiles/bench_req_compliance.dir/bench_req_compliance.cpp.o.d"
  "bench_req_compliance"
  "bench_req_compliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_req_compliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
