# Empty dependencies file for bench_req_compliance.
# This may be replaced when dependencies are built.
