# Empty dependencies file for bench_sj_template.
# This may be replaced when dependencies are built.
