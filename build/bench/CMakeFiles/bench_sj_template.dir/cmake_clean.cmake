file(REMOVE_RECURSE
  "CMakeFiles/bench_sj_template.dir/bench_sj_template.cpp.o"
  "CMakeFiles/bench_sj_template.dir/bench_sj_template.cpp.o.d"
  "bench_sj_template"
  "bench_sj_template.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sj_template.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
