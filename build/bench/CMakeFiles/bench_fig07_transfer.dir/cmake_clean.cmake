file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_transfer.dir/bench_fig07_transfer.cpp.o"
  "CMakeFiles/bench_fig07_transfer.dir/bench_fig07_transfer.cpp.o.d"
  "bench_fig07_transfer"
  "bench_fig07_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
