# Empty compiler generated dependencies file for bench_fig07_transfer.
# This may be replaced when dependencies are built.
