file(REMOVE_RECURSE
  "CMakeFiles/bench_fastbus_ber.dir/bench_fastbus_ber.cpp.o"
  "CMakeFiles/bench_fastbus_ber.dir/bench_fastbus_ber.cpp.o.d"
  "bench_fastbus_ber"
  "bench_fastbus_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fastbus_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
