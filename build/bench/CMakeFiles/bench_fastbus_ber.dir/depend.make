# Empty dependencies file for bench_fastbus_ber.
# This may be replaced when dependencies are built.
