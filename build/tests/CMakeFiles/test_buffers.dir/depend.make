# Empty dependencies file for test_buffers.
# This may be replaced when dependencies are built.
