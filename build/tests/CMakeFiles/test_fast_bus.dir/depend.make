# Empty dependencies file for test_fast_bus.
# This may be replaced when dependencies are built.
