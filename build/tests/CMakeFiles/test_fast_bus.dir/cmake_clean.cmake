file(REMOVE_RECURSE
  "CMakeFiles/test_fast_bus.dir/test_fast_bus.cpp.o"
  "CMakeFiles/test_fast_bus.dir/test_fast_bus.cpp.o.d"
  "test_fast_bus"
  "test_fast_bus.pdb"
  "test_fast_bus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fast_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
