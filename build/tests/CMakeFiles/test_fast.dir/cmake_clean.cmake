file(REMOVE_RECURSE
  "CMakeFiles/test_fast.dir/test_fast.cpp.o"
  "CMakeFiles/test_fast.dir/test_fast.cpp.o.d"
  "test_fast"
  "test_fast.pdb"
  "test_fast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
