file(REMOVE_RECURSE
  "CMakeFiles/test_deskew.dir/test_deskew.cpp.o"
  "CMakeFiles/test_deskew.dir/test_deskew.cpp.o.d"
  "test_deskew"
  "test_deskew.pdb"
  "test_deskew[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deskew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
