# Empty dependencies file for test_deskew.
# This may be replaced when dependencies are built.
