# Empty compiler generated dependencies file for test_ddj_resample.
# This may be replaced when dependencies are built.
