file(REMOVE_RECURSE
  "CMakeFiles/test_ddj_resample.dir/test_ddj_resample.cpp.o"
  "CMakeFiles/test_ddj_resample.dir/test_ddj_resample.cpp.o.d"
  "test_ddj_resample"
  "test_ddj_resample.pdb"
  "test_ddj_resample[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddj_resample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
