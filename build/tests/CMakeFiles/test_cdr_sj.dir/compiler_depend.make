# Empty compiler generated dependencies file for test_cdr_sj.
# This may be replaced when dependencies are built.
