file(REMOVE_RECURSE
  "CMakeFiles/test_cdr_sj.dir/test_cdr_sj.cpp.o"
  "CMakeFiles/test_cdr_sj.dir/test_cdr_sj.cpp.o.d"
  "test_cdr_sj"
  "test_cdr_sj.pdb"
  "test_cdr_sj[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdr_sj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
