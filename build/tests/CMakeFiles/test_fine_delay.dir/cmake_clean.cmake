file(REMOVE_RECURSE
  "CMakeFiles/test_fine_delay.dir/test_fine_delay.cpp.o"
  "CMakeFiles/test_fine_delay.dir/test_fine_delay.cpp.o.d"
  "test_fine_delay"
  "test_fine_delay.pdb"
  "test_fine_delay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fine_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
