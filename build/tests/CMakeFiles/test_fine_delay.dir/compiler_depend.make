# Empty compiler generated dependencies file for test_fine_delay.
# This may be replaced when dependencies are built.
