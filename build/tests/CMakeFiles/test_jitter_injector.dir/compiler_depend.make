# Empty compiler generated dependencies file for test_jitter_injector.
# This may be replaced when dependencies are built.
