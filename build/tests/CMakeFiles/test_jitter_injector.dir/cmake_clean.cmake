file(REMOVE_RECURSE
  "CMakeFiles/test_jitter_injector.dir/test_jitter_injector.cpp.o"
  "CMakeFiles/test_jitter_injector.dir/test_jitter_injector.cpp.o.d"
  "test_jitter_injector"
  "test_jitter_injector.pdb"
  "test_jitter_injector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jitter_injector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
