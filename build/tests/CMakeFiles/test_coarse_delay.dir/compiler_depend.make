# Empty compiler generated dependencies file for test_coarse_delay.
# This may be replaced when dependencies are built.
