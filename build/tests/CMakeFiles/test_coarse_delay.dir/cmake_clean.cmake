file(REMOVE_RECURSE
  "CMakeFiles/test_coarse_delay.dir/test_coarse_delay.cpp.o"
  "CMakeFiles/test_coarse_delay.dir/test_coarse_delay.cpp.o.d"
  "test_coarse_delay"
  "test_coarse_delay.pdb"
  "test_coarse_delay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coarse_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
