file(REMOVE_RECURSE
  "CMakeFiles/test_ate.dir/test_ate.cpp.o"
  "CMakeFiles/test_ate.dir/test_ate.cpp.o.d"
  "test_ate"
  "test_ate.pdb"
  "test_ate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
