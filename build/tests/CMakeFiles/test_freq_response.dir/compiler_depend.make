# Empty compiler generated dependencies file for test_freq_response.
# This may be replaced when dependencies are built.
