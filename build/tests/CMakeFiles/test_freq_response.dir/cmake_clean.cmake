file(REMOVE_RECURSE
  "CMakeFiles/test_freq_response.dir/test_freq_response.cpp.o"
  "CMakeFiles/test_freq_response.dir/test_freq_response.cpp.o.d"
  "test_freq_response"
  "test_freq_response.pdb"
  "test_freq_response[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_freq_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
