# Empty dependencies file for test_mask_bathtub.
# This may be replaced when dependencies are built.
