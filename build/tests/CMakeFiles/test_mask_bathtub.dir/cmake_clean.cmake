file(REMOVE_RECURSE
  "CMakeFiles/test_mask_bathtub.dir/test_mask_bathtub.cpp.o"
  "CMakeFiles/test_mask_bathtub.dir/test_mask_bathtub.cpp.o.d"
  "test_mask_bathtub"
  "test_mask_bathtub.pdb"
  "test_mask_bathtub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mask_bathtub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
