file(REMOVE_RECURSE
  "CMakeFiles/test_clock_shifter.dir/test_clock_shifter.cpp.o"
  "CMakeFiles/test_clock_shifter.dir/test_clock_shifter.cpp.o.d"
  "test_clock_shifter"
  "test_clock_shifter.pdb"
  "test_clock_shifter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clock_shifter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
