# Empty dependencies file for test_clock_shifter.
# This may be replaced when dependencies are built.
