# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_waveform[1]_include.cmake")
include("/root/repo/build/tests/test_pattern[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_analog[1]_include.cmake")
include("/root/repo/build/tests/test_buffers[1]_include.cmake")
include("/root/repo/build/tests/test_measure[1]_include.cmake")
include("/root/repo/build/tests/test_eye[1]_include.cmake")
include("/root/repo/build/tests/test_fine_delay[1]_include.cmake")
include("/root/repo/build/tests/test_coarse_delay[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_jitter_injector[1]_include.cmake")
include("/root/repo/build/tests/test_deskew[1]_include.cmake")
include("/root/repo/build/tests/test_ate[1]_include.cmake")
include("/root/repo/build/tests/test_fast[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_board[1]_include.cmake")
include("/root/repo/build/tests/test_mask_bathtub[1]_include.cmake")
include("/root/repo/build/tests/test_clock_shifter[1]_include.cmake")
include("/root/repo/build/tests/test_fast_bus[1]_include.cmake")
include("/root/repo/build/tests/test_ddj_resample[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_freq_response[1]_include.cmake")
include("/root/repo/build/tests/test_cdr_sj[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
