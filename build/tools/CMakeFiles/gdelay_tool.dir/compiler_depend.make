# Empty compiler generated dependencies file for gdelay_tool.
# This may be replaced when dependencies are built.
