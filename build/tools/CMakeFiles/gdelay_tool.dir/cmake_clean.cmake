file(REMOVE_RECURSE
  "CMakeFiles/gdelay_tool.dir/gdelay_tool.cpp.o"
  "CMakeFiles/gdelay_tool.dir/gdelay_tool.cpp.o.d"
  "gdelay_tool"
  "gdelay_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdelay_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
