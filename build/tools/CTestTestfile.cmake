# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_characterize "/root/repo/build/tools/gdelay_tool" "characterize" "--bits" "48")
set_tests_properties(cli_characterize PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_calibrate_plan_roundtrip "/usr/bin/cmake" "-DTOOL=/root/repo/build/tools/gdelay_tool" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/cli_roundtrip.cmake")
set_tests_properties(cli_calibrate_plan_roundtrip PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_deskew "/root/repo/build/tools/gdelay_tool" "deskew" "--lanes" "2" "--bits" "64")
set_tests_properties(cli_deskew PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/gdelay_tool" "nonsense")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
