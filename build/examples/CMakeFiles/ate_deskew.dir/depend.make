# Empty dependencies file for ate_deskew.
# This may be replaced when dependencies are built.
