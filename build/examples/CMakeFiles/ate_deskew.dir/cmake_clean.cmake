file(REMOVE_RECURSE
  "CMakeFiles/ate_deskew.dir/ate_deskew.cpp.o"
  "CMakeFiles/ate_deskew.dir/ate_deskew.cpp.o.d"
  "ate_deskew"
  "ate_deskew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ate_deskew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
