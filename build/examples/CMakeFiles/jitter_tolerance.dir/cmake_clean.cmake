file(REMOVE_RECURSE
  "CMakeFiles/jitter_tolerance.dir/jitter_tolerance.cpp.o"
  "CMakeFiles/jitter_tolerance.dir/jitter_tolerance.cpp.o.d"
  "jitter_tolerance"
  "jitter_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitter_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
