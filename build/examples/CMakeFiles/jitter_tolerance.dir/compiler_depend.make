# Empty compiler generated dependencies file for jitter_tolerance.
# This may be replaced when dependencies are built.
