
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ate/CMakeFiles/gdelay_ate.dir/DependInfo.cmake"
  "/root/repo/build/src/fast/CMakeFiles/gdelay_fast.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gdelay_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/gdelay_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/gdelay_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/gdelay_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gdelay_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
