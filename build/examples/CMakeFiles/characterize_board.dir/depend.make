# Empty dependencies file for characterize_board.
# This may be replaced when dependencies are built.
