file(REMOVE_RECURSE
  "CMakeFiles/characterize_board.dir/characterize_board.cpp.o"
  "CMakeFiles/characterize_board.dir/characterize_board.cpp.o.d"
  "characterize_board"
  "characterize_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
