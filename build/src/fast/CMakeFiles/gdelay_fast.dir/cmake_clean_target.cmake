file(REMOVE_RECURSE
  "libgdelay_fast.a"
)
