
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fast/edge_model.cpp" "src/fast/CMakeFiles/gdelay_fast.dir/edge_model.cpp.o" "gcc" "src/fast/CMakeFiles/gdelay_fast.dir/edge_model.cpp.o.d"
  "/root/repo/src/fast/fast_bus.cpp" "src/fast/CMakeFiles/gdelay_fast.dir/fast_bus.cpp.o" "gcc" "src/fast/CMakeFiles/gdelay_fast.dir/fast_bus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gdelay_util.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/gdelay_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/gdelay_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gdelay_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/gdelay_analog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
