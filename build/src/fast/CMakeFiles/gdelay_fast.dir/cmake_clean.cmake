file(REMOVE_RECURSE
  "CMakeFiles/gdelay_fast.dir/edge_model.cpp.o"
  "CMakeFiles/gdelay_fast.dir/edge_model.cpp.o.d"
  "CMakeFiles/gdelay_fast.dir/fast_bus.cpp.o"
  "CMakeFiles/gdelay_fast.dir/fast_bus.cpp.o.d"
  "libgdelay_fast.a"
  "libgdelay_fast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdelay_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
