# Empty compiler generated dependencies file for gdelay_fast.
# This may be replaced when dependencies are built.
