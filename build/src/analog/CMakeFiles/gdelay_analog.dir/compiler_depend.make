# Empty compiler generated dependencies file for gdelay_analog.
# This may be replaced when dependencies are built.
