file(REMOVE_RECURSE
  "CMakeFiles/gdelay_analog.dir/buffer.cpp.o"
  "CMakeFiles/gdelay_analog.dir/buffer.cpp.o.d"
  "CMakeFiles/gdelay_analog.dir/coupling.cpp.o"
  "CMakeFiles/gdelay_analog.dir/coupling.cpp.o.d"
  "CMakeFiles/gdelay_analog.dir/differential.cpp.o"
  "CMakeFiles/gdelay_analog.dir/differential.cpp.o.d"
  "CMakeFiles/gdelay_analog.dir/element.cpp.o"
  "CMakeFiles/gdelay_analog.dir/element.cpp.o.d"
  "CMakeFiles/gdelay_analog.dir/primitives.cpp.o"
  "CMakeFiles/gdelay_analog.dir/primitives.cpp.o.d"
  "CMakeFiles/gdelay_analog.dir/tline.cpp.o"
  "CMakeFiles/gdelay_analog.dir/tline.cpp.o.d"
  "libgdelay_analog.a"
  "libgdelay_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdelay_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
