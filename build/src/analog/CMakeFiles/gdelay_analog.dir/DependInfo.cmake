
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/buffer.cpp" "src/analog/CMakeFiles/gdelay_analog.dir/buffer.cpp.o" "gcc" "src/analog/CMakeFiles/gdelay_analog.dir/buffer.cpp.o.d"
  "/root/repo/src/analog/coupling.cpp" "src/analog/CMakeFiles/gdelay_analog.dir/coupling.cpp.o" "gcc" "src/analog/CMakeFiles/gdelay_analog.dir/coupling.cpp.o.d"
  "/root/repo/src/analog/differential.cpp" "src/analog/CMakeFiles/gdelay_analog.dir/differential.cpp.o" "gcc" "src/analog/CMakeFiles/gdelay_analog.dir/differential.cpp.o.d"
  "/root/repo/src/analog/element.cpp" "src/analog/CMakeFiles/gdelay_analog.dir/element.cpp.o" "gcc" "src/analog/CMakeFiles/gdelay_analog.dir/element.cpp.o.d"
  "/root/repo/src/analog/primitives.cpp" "src/analog/CMakeFiles/gdelay_analog.dir/primitives.cpp.o" "gcc" "src/analog/CMakeFiles/gdelay_analog.dir/primitives.cpp.o.d"
  "/root/repo/src/analog/tline.cpp" "src/analog/CMakeFiles/gdelay_analog.dir/tline.cpp.o" "gcc" "src/analog/CMakeFiles/gdelay_analog.dir/tline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gdelay_util.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/gdelay_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
