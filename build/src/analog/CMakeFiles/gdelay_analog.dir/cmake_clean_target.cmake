file(REMOVE_RECURSE
  "libgdelay_analog.a"
)
