file(REMOVE_RECURSE
  "libgdelay_util.a"
)
