file(REMOVE_RECURSE
  "CMakeFiles/gdelay_util.dir/csv.cpp.o"
  "CMakeFiles/gdelay_util.dir/csv.cpp.o.d"
  "CMakeFiles/gdelay_util.dir/curve.cpp.o"
  "CMakeFiles/gdelay_util.dir/curve.cpp.o.d"
  "CMakeFiles/gdelay_util.dir/rng.cpp.o"
  "CMakeFiles/gdelay_util.dir/rng.cpp.o.d"
  "libgdelay_util.a"
  "libgdelay_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdelay_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
