# Empty compiler generated dependencies file for gdelay_util.
# This may be replaced when dependencies are built.
