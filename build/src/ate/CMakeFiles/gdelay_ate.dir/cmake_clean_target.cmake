file(REMOVE_RECURSE
  "libgdelay_ate.a"
)
