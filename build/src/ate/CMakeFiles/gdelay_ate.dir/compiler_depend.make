# Empty compiler generated dependencies file for gdelay_ate.
# This may be replaced when dependencies are built.
