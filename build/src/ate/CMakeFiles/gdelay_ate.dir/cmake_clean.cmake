file(REMOVE_RECURSE
  "CMakeFiles/gdelay_ate.dir/ate_channel.cpp.o"
  "CMakeFiles/gdelay_ate.dir/ate_channel.cpp.o.d"
  "CMakeFiles/gdelay_ate.dir/bus.cpp.o"
  "CMakeFiles/gdelay_ate.dir/bus.cpp.o.d"
  "CMakeFiles/gdelay_ate.dir/cdr.cpp.o"
  "CMakeFiles/gdelay_ate.dir/cdr.cpp.o.d"
  "CMakeFiles/gdelay_ate.dir/controller.cpp.o"
  "CMakeFiles/gdelay_ate.dir/controller.cpp.o.d"
  "CMakeFiles/gdelay_ate.dir/dut.cpp.o"
  "CMakeFiles/gdelay_ate.dir/dut.cpp.o.d"
  "libgdelay_ate.a"
  "libgdelay_ate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdelay_ate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
