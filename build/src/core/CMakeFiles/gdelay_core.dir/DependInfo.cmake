
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/board.cpp" "src/core/CMakeFiles/gdelay_core.dir/board.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/board.cpp.o.d"
  "/root/repo/src/core/cal_io.cpp" "src/core/CMakeFiles/gdelay_core.dir/cal_io.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/cal_io.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/gdelay_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/channel.cpp" "src/core/CMakeFiles/gdelay_core.dir/channel.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/channel.cpp.o.d"
  "/root/repo/src/core/clock_shifter.cpp" "src/core/CMakeFiles/gdelay_core.dir/clock_shifter.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/clock_shifter.cpp.o.d"
  "/root/repo/src/core/coarse_delay.cpp" "src/core/CMakeFiles/gdelay_core.dir/coarse_delay.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/coarse_delay.cpp.o.d"
  "/root/repo/src/core/dac.cpp" "src/core/CMakeFiles/gdelay_core.dir/dac.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/dac.cpp.o.d"
  "/root/repo/src/core/deskew.cpp" "src/core/CMakeFiles/gdelay_core.dir/deskew.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/deskew.cpp.o.d"
  "/root/repo/src/core/drift.cpp" "src/core/CMakeFiles/gdelay_core.dir/drift.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/drift.cpp.o.d"
  "/root/repo/src/core/fine_delay.cpp" "src/core/CMakeFiles/gdelay_core.dir/fine_delay.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/fine_delay.cpp.o.d"
  "/root/repo/src/core/jitter_injector.cpp" "src/core/CMakeFiles/gdelay_core.dir/jitter_injector.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/jitter_injector.cpp.o.d"
  "/root/repo/src/core/variation.cpp" "src/core/CMakeFiles/gdelay_core.dir/variation.cpp.o" "gcc" "src/core/CMakeFiles/gdelay_core.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gdelay_util.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/gdelay_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/gdelay_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/gdelay_measure.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
