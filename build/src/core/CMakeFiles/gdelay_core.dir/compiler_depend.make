# Empty compiler generated dependencies file for gdelay_core.
# This may be replaced when dependencies are built.
