file(REMOVE_RECURSE
  "CMakeFiles/gdelay_core.dir/board.cpp.o"
  "CMakeFiles/gdelay_core.dir/board.cpp.o.d"
  "CMakeFiles/gdelay_core.dir/cal_io.cpp.o"
  "CMakeFiles/gdelay_core.dir/cal_io.cpp.o.d"
  "CMakeFiles/gdelay_core.dir/calibration.cpp.o"
  "CMakeFiles/gdelay_core.dir/calibration.cpp.o.d"
  "CMakeFiles/gdelay_core.dir/channel.cpp.o"
  "CMakeFiles/gdelay_core.dir/channel.cpp.o.d"
  "CMakeFiles/gdelay_core.dir/clock_shifter.cpp.o"
  "CMakeFiles/gdelay_core.dir/clock_shifter.cpp.o.d"
  "CMakeFiles/gdelay_core.dir/coarse_delay.cpp.o"
  "CMakeFiles/gdelay_core.dir/coarse_delay.cpp.o.d"
  "CMakeFiles/gdelay_core.dir/dac.cpp.o"
  "CMakeFiles/gdelay_core.dir/dac.cpp.o.d"
  "CMakeFiles/gdelay_core.dir/deskew.cpp.o"
  "CMakeFiles/gdelay_core.dir/deskew.cpp.o.d"
  "CMakeFiles/gdelay_core.dir/drift.cpp.o"
  "CMakeFiles/gdelay_core.dir/drift.cpp.o.d"
  "CMakeFiles/gdelay_core.dir/fine_delay.cpp.o"
  "CMakeFiles/gdelay_core.dir/fine_delay.cpp.o.d"
  "CMakeFiles/gdelay_core.dir/jitter_injector.cpp.o"
  "CMakeFiles/gdelay_core.dir/jitter_injector.cpp.o.d"
  "CMakeFiles/gdelay_core.dir/variation.cpp.o"
  "CMakeFiles/gdelay_core.dir/variation.cpp.o.d"
  "libgdelay_core.a"
  "libgdelay_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdelay_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
