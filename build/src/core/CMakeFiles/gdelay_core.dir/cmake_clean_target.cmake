file(REMOVE_RECURSE
  "libgdelay_core.a"
)
