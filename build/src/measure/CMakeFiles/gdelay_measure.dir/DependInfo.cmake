
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/bathtub.cpp" "src/measure/CMakeFiles/gdelay_measure.dir/bathtub.cpp.o" "gcc" "src/measure/CMakeFiles/gdelay_measure.dir/bathtub.cpp.o.d"
  "/root/repo/src/measure/delay_meter.cpp" "src/measure/CMakeFiles/gdelay_measure.dir/delay_meter.cpp.o" "gcc" "src/measure/CMakeFiles/gdelay_measure.dir/delay_meter.cpp.o.d"
  "/root/repo/src/measure/eye.cpp" "src/measure/CMakeFiles/gdelay_measure.dir/eye.cpp.o" "gcc" "src/measure/CMakeFiles/gdelay_measure.dir/eye.cpp.o.d"
  "/root/repo/src/measure/freq_response.cpp" "src/measure/CMakeFiles/gdelay_measure.dir/freq_response.cpp.o" "gcc" "src/measure/CMakeFiles/gdelay_measure.dir/freq_response.cpp.o.d"
  "/root/repo/src/measure/histogram.cpp" "src/measure/CMakeFiles/gdelay_measure.dir/histogram.cpp.o" "gcc" "src/measure/CMakeFiles/gdelay_measure.dir/histogram.cpp.o.d"
  "/root/repo/src/measure/jitter.cpp" "src/measure/CMakeFiles/gdelay_measure.dir/jitter.cpp.o" "gcc" "src/measure/CMakeFiles/gdelay_measure.dir/jitter.cpp.o.d"
  "/root/repo/src/measure/mask.cpp" "src/measure/CMakeFiles/gdelay_measure.dir/mask.cpp.o" "gcc" "src/measure/CMakeFiles/gdelay_measure.dir/mask.cpp.o.d"
  "/root/repo/src/measure/stats.cpp" "src/measure/CMakeFiles/gdelay_measure.dir/stats.cpp.o" "gcc" "src/measure/CMakeFiles/gdelay_measure.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gdelay_util.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/gdelay_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
