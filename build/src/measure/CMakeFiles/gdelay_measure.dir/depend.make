# Empty dependencies file for gdelay_measure.
# This may be replaced when dependencies are built.
