file(REMOVE_RECURSE
  "libgdelay_measure.a"
)
