file(REMOVE_RECURSE
  "CMakeFiles/gdelay_measure.dir/bathtub.cpp.o"
  "CMakeFiles/gdelay_measure.dir/bathtub.cpp.o.d"
  "CMakeFiles/gdelay_measure.dir/delay_meter.cpp.o"
  "CMakeFiles/gdelay_measure.dir/delay_meter.cpp.o.d"
  "CMakeFiles/gdelay_measure.dir/eye.cpp.o"
  "CMakeFiles/gdelay_measure.dir/eye.cpp.o.d"
  "CMakeFiles/gdelay_measure.dir/freq_response.cpp.o"
  "CMakeFiles/gdelay_measure.dir/freq_response.cpp.o.d"
  "CMakeFiles/gdelay_measure.dir/histogram.cpp.o"
  "CMakeFiles/gdelay_measure.dir/histogram.cpp.o.d"
  "CMakeFiles/gdelay_measure.dir/jitter.cpp.o"
  "CMakeFiles/gdelay_measure.dir/jitter.cpp.o.d"
  "CMakeFiles/gdelay_measure.dir/mask.cpp.o"
  "CMakeFiles/gdelay_measure.dir/mask.cpp.o.d"
  "CMakeFiles/gdelay_measure.dir/stats.cpp.o"
  "CMakeFiles/gdelay_measure.dir/stats.cpp.o.d"
  "libgdelay_measure.a"
  "libgdelay_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdelay_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
