# Empty dependencies file for gdelay_signal.
# This may be replaced when dependencies are built.
