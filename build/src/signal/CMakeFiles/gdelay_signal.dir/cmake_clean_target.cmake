file(REMOVE_RECURSE
  "libgdelay_signal.a"
)
