
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/edges.cpp" "src/signal/CMakeFiles/gdelay_signal.dir/edges.cpp.o" "gcc" "src/signal/CMakeFiles/gdelay_signal.dir/edges.cpp.o.d"
  "/root/repo/src/signal/pattern.cpp" "src/signal/CMakeFiles/gdelay_signal.dir/pattern.cpp.o" "gcc" "src/signal/CMakeFiles/gdelay_signal.dir/pattern.cpp.o.d"
  "/root/repo/src/signal/synth.cpp" "src/signal/CMakeFiles/gdelay_signal.dir/synth.cpp.o" "gcc" "src/signal/CMakeFiles/gdelay_signal.dir/synth.cpp.o.d"
  "/root/repo/src/signal/waveform.cpp" "src/signal/CMakeFiles/gdelay_signal.dir/waveform.cpp.o" "gcc" "src/signal/CMakeFiles/gdelay_signal.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gdelay_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
