file(REMOVE_RECURSE
  "CMakeFiles/gdelay_signal.dir/edges.cpp.o"
  "CMakeFiles/gdelay_signal.dir/edges.cpp.o.d"
  "CMakeFiles/gdelay_signal.dir/pattern.cpp.o"
  "CMakeFiles/gdelay_signal.dir/pattern.cpp.o.d"
  "CMakeFiles/gdelay_signal.dir/synth.cpp.o"
  "CMakeFiles/gdelay_signal.dir/synth.cpp.o.d"
  "CMakeFiles/gdelay_signal.dir/waveform.cpp.o"
  "CMakeFiles/gdelay_signal.dir/waveform.cpp.o.d"
  "libgdelay_signal.a"
  "libgdelay_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdelay_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
