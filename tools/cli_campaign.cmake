# Campaign CLI transcript test: the merged-state hash printed by
# `gdelay_tool campaign` must be identical across execution modes, shard
# counts, and a stop-at-checkpoint + resume cycle.
set(WORK "${WORKDIR}/cli_campaign")
file(REMOVE_RECURSE ${WORK})

set(COMMON campaign --units 300 --bits 48 --seed 11)

function(extract_hash out_var text context)
  string(REGEX MATCH "state hash [0-9a-f]+" hash "${text}")
  if(hash STREQUAL "")
    message(FATAL_ERROR "${context}: no state hash in output: ${text}")
  endif()
  set(${out_var} "${hash}" PARENT_SCOPE)
endfunction()

function(run_campaign out_var context)
  execute_process(COMMAND ${TOOL} ${COMMON} ${ARGN}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${context} failed (rc ${rc}): ${out}")
  endif()
  extract_hash(hash "${out}" "${context}")
  set(${out_var} "${hash}" PARENT_SCOPE)
endfunction()

run_campaign(H_SERIAL "serial x1" --mode serial --shards 1)
run_campaign(H_THREAD "thread x4" --mode thread --shards 4)
run_campaign(H_FORK "fork x2" --mode fork --shards 2)
run_campaign(H_EXEC "exec x2" --mode exec --shards 2 --work ${WORK}/exec)
foreach(h ${H_THREAD} ${H_FORK} ${H_EXEC})
  if(NOT h STREQUAL H_SERIAL)
    message(FATAL_ERROR "merged-state hash drifted across modes:"
                        " ${H_SERIAL} vs ${h}")
  endif()
endforeach()

# Stop every shard mid-range at a checkpoint, then resume to completion;
# the resumed result must carry the same hash as the uninterrupted runs.
execute_process(COMMAND ${TOOL} ${COMMON} --mode serial --shards 2
                        --ckpt ${WORK}/ckpt --every 50 --stop-after 75
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "partial campaign failed (rc ${rc}): ${out}")
endif()
if(NOT out MATCHES "stopped early")
  message(FATAL_ERROR "partial campaign did not stop early: ${out}")
endif()

execute_process(COMMAND ${TOOL} ${COMMON} --mode serial --shards 2
                        --ckpt ${WORK}/ckpt
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed campaign failed (rc ${rc}): ${out}")
endif()
if(NOT out MATCHES "complete, resumed from checkpoint")
  message(FATAL_ERROR "resumed campaign did not report a resume: ${out}")
endif()
extract_hash(H_RESUME "${out}" "resumed campaign")
if(NOT H_RESUME STREQUAL H_SERIAL)
  message(FATAL_ERROR "resume drifted: ${H_SERIAL} vs ${H_RESUME}")
endif()

file(REMOVE_RECURSE ${WORK})
