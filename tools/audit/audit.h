// gdelay-audit: project-specific static analysis for the waveform engine.
//
// The simulator's determinism contracts — bit-exact output across runs,
// thread counts, chunk sizes and host libm — are written down in DESIGN.md
// and enforced at runtime by the byte-identity test suites. But runtime
// tests only exercise the elements someone remembered to test; this tool
// proves the *source* obeys the contracts, for every element and every
// file, so a new AnalogElement cannot silently reintroduce host-libm
// dependence, RNG-stream aliasing, or a step/block semantic fork.
//
// Since PR 8 the tool is a TWO-PASS analyzer. Pass 1 tokenizes every file
// once and builds a cross-TU SymbolIndex: classes with their bases and
// methods, mutex / condition-variable / atomic / future / Rng members,
// function definitions with their outgoing call edges and blocking sites,
// enums, the backend kernel-table fields, and the identifier sets of the
// registered test sources. Pass 2 runs the rules with that index in hand,
// which is what lets the concurrency rules type a receiver declared in a
// different header and lets the coverage rule cross-reference src/ against
// tests/. The per-file scans are fanned out over the repo's own
// deterministic ThreadPool (results collected in file order, so the output
// is byte-stable at any GDELAY_THREADS — the tool dogfoods the contract it
// enforces).
//
// Rules (see DESIGN.md "Static guarantees" for the rationale):
//
//   R1  no direct libm transcendentals (std::tanh/log/exp/sin/cos/pow,
//       bare tanh(...) and friends) outside util/fastmath.h — the signal
//       path must use the det_* kernels, whose bit patterns are identical
//       on every conforming platform.
//   R2  no nondeterminism sources anywhere in src/: std::random_device,
//       rand()/srand(), time(), wall-clock *_clock reads, getenv()
//       (except util/thread_pool, backend/dispatch, service/config).
//   R3  element-contract completeness: every class deriving from
//       AnalogElement that overrides step() must also override
//       process_block() and clone(); every class holding a Rng or
//       NoiseSource member must declare fork_noise() so clone-based
//       sweeps can decorrelate its streams.
//   R4  no mutable namespace-scope state (data races under
//       GDELAY_THREADS, and order-of-initialization hazards).
//   R5  no float: the analog path (analog/, signal/, core/) is double
//       end-to-end; a float literal or variable would silently round.
//   R6  no per-chunk allocation in measurement sinks: a container-growth
//       call (push_back/emplace/insert/resize/...) inside a consume()
//       body breaks the streaming executor's O(chunk) memory contract.
//       Bounded growth (reserved up front) is waived inline.
//   R7  SIMD intrinsics (immintrin.h-family includes, _mm*/__m128/
//       __m256/__m512 identifiers) only inside src/backend/ — vector
//       code outside the pluggable-backend boundary would fork the
//       per-backend determinism contract invisibly.
//   R8  lock discipline (service/, util/thread_pool): mutexes are
//       acquired through RAII guards only (no bare .lock()/.unlock() on
//       a mutex member); when guards nest, mutexes declared in the same
//       file must be acquired in their declaration order (a consistent
//       per-file hierarchy is what makes deadlock freedom decidable);
//       and no lock may be held across a .wait() on a condition
//       variable (other than the wait's own lock) or across a future
//       .get()/.wait() — the single-flight deadlock shape.
//   R9  RNG stream hygiene: an Rng/NoiseSource lvalue from an enclosing
//       scope, captured by reference into a lambda handed to the thread
//       pool (parallel_for/parallel_map/submit), must only be used to
//       fork (.fork()/fork_noise()); drawing from the parent stream
//       inside a pool task would make the draw order schedule-dependent.
//   R10 atomics discipline: operations on namespace-scope or member
//       atomics must spell an explicit std::memory_order (no implicit
//       seq_cst assignment/increment shorthand); and the allowlisted
//       write-once state (backend/dispatch, service/config) must match
//       the write-once idiom — plain stores to a namespace-scope atomic
//       are only permitted in functions that also run a
//       compare_exchange/call_once claim on an atomic.
//   R11 no blocking calls (sleep_for/sleep_until, condition-variable or
//       future .wait(), unbounded future .get()) in code reachable from
//       a pool-task lambda or a streaming-sink consume() body. The
//       reachability walk follows the cross-TU call graph by name, so a
//       wait buried two calls deep behind a parallel_map still surfaces.
//   R12 contract coverage: every AnalogElement subclass must appear in a
//       step-vs-block/clone byte-identity test, every backend::Kernels
//       table entry in the backend/batch equivalence suites, and every
//       service RequestKind in the service determinism suite — an
//       untested contract is a build-time finding, not a latent
//       divergence. Runs only when test sources are registered
//       (--tests on the CLI).
//
// Diagnostics are GCC-style `file:line:col: error[rule]: message`. A
// finding can be waived inline:
//
//   // gdelay-audit: allow(R1) one-line justification (required)
//
// on the offending line or the line above, or recorded in a checked-in
// baseline file (`file:line:rule` per line) for grandfathered findings.
// `stale_baseline_entries` reports baseline lines that no longer match
// any finding, so waivers cannot outlive the code they excused.
//
// The scanner is a lightweight tokenizer, not a compiler: it strips
// comments, strings and preprocessor directives, then pattern-matches
// token sequences with a scope stack (namespace/class/function). That is
// deliberate — the rules are designed to be decidable at token level, and
// the tool builds in ~nothing and runs in milliseconds as `ctest -R Audit`.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gdelay::audit {

/// One rule violation (or malformed waiver).
struct Finding {
  std::string file;     ///< Label the file was scanned under.
  int line = 0;         ///< 1-based.
  int col = 0;          ///< 1-based column; 0 when not attributable.
  std::string rule;     ///< "R1".."R12", or "waiver" for a malformed waiver.
  std::string message;  ///< Human-readable explanation with the fix.
};

/// One source file handed to the analyzer (label + full content). Labels
/// are root-relative with forward slashes; all path-based rule scoping
/// matches against them.
struct SourceFile {
  std::string label;
  std::string content;
};

/// Rule catalogue entry (drives --list-rules and the SARIF rule table).
struct RuleInfo {
  const char* id;       ///< "R1".."R12"
  const char* summary;  ///< one-line description
  const char* scope;    ///< where the rule applies (path scoping note)
};

/// All rules, in id order (plus the "waiver" hygiene pseudo-rule).
const std::vector<RuleInfo>& rule_catalog();

/// Path-based rule scoping. All fragments match against the scan label
/// (root-relative, forward slashes).
struct Options {
  /// R1 does not apply here (this is where the det_* kernels live).
  std::string fastmath_suffix = "util/fastmath.h";
  /// Labels containing one of these may call getenv (R2): thread_pool
  /// owns GDELAY_THREADS, the backend dispatcher owns GDELAY_BACKEND,
  /// the service config owns GDELAY_SERVICE_SHARDS, and the campaign
  /// config owns GDELAY_CAMPAIGN_MODE/_SHARDS — all of them
  /// reproducibility-neutral performance knobs (responses/results are
  /// bit-identical at any setting; the campaign determinism suite pins
  /// this across every mode/shard combination). The service's
  /// request-handling paths (service/service, service/cal_cache) and the
  /// campaign orchestrator proper (campaign/campaign) are deliberately
  /// NOT listed: an env read there could fork result content per host.
  std::vector<std::string> getenv_allowed = {"util/thread_pool",
                                             "backend/dispatch",
                                             "service/config",
                                             "campaign/config"};
  /// R5 applies to labels starting with one of these prefixes.
  std::vector<std::string> analog_prefixes = {"analog/", "signal/", "core/"};
  /// Labels containing one of these may hold namespace-scope mutable
  /// state (R4): the backend dispatcher's write-once active-table
  /// atomics, and the service config's once-resolved shard-count cache
  /// (same write-once pattern, same justification). The service request
  /// paths stay OUT of this list — dispatch state there would be an
  /// arrival-order dependence. Keep this list short.
  std::vector<std::string> mutable_state_allowlist = {"backend/dispatch",
                                                      "service/config"};
  /// R7: labels starting with (or containing a path segment equal to)
  /// this prefix may use SIMD intrinsics.
  std::string simd_prefix = "backend/";
  /// R8 applies to labels containing one of these fragments — the
  /// concurrent surface grown by the service layer and the pool itself.
  std::vector<std::string> lock_scope = {"service/", "util/thread_pool"};
  /// Labels containing one of these may carry blocking calls reachable
  /// from pool tasks (R11). The campaign orchestrator's fork-mode pipe
  /// drain ends in a waitpid() per child; that wait cannot park a worker
  /// indefinitely (the read loop only reaches it after pipe EOF, i.e.
  /// after the child has closed its end and is exiting), which is the
  /// progress argument this scoped entry records. Everything outside
  /// campaign/ still gets the finding.
  std::vector<std::string> blocking_allowed = {"campaign/"};
  /// R10 write-once idiom check applies to these labels (the same two
  /// owners as the R4 allowlist): their namespace-scope atomics claim to
  /// be write-once caches, so the stores must sit behind a
  /// compare_exchange / call_once claim.
  std::vector<std::string> write_once_allowlist = {"backend/dispatch",
                                                   "service/config"};
  /// R12 coverage spec: base class whose subclasses need byte-identity
  /// coverage, the kernel-table struct, the request-kind enum, and the
  /// test files (label fragments) each contract domain must appear in.
  std::string element_base = "AnalogElement";
  std::string kernels_struct = "Kernels";
  std::string request_enum = "RequestKind";
  std::vector<std::string> element_coverage_files = {"test_block_kernels",
                                                     "test_analog"};
  std::vector<std::string> kernel_coverage_files = {"test_backend_equivalence"};
  /// Lane-batched table entries (suffix _batch) are contract-covered by
  /// the batch equivalence suite instead.
  std::vector<std::string> batch_kernel_coverage_files = {
      "test_batch_equivalence"};
  std::vector<std::string> request_coverage_files = {
      "test_service_determinism"};
};

/// One class as seen by pass 1.
struct IndexedClass {
  std::string file;
  int line = 0;
  std::string name;
  std::vector<std::string> bases;
  std::set<std::string> methods;
  /// Mutex members in declaration order (the R8 lock hierarchy for the
  /// declaring file is the concatenation of these, in file order).
  std::vector<std::string> mutex_members;
  std::set<std::string> cv_members;      ///< condition_variable[_any]
  std::set<std::string> atomic_members;  ///< std::atomic<...>
  std::set<std::string> future_members;  ///< std::future / shared_future
  std::set<std::string> rng_members;     ///< Rng / NoiseSource
  std::vector<std::string> fnptr_members;  ///< function-pointer fields
};

/// One enum as seen by pass 1.
struct IndexedEnum {
  std::string file;
  int line = 0;
  std::string name;
  std::vector<std::string> enumerators;
};

/// One function definition (or pool-task lambda) with its call edges and
/// any blocking sites found directly in its body.
struct IndexedFunction {
  std::string file;
  int line = 0;
  int end_line = 0;
  std::string name;  ///< unqualified; "<pool-lambda>"/"consume" are roots
  bool pool_root = false;  ///< lambda handed to the pool, or consume()
  bool has_cas = false;    ///< body runs compare_exchange/call_once (R10)
  std::set<std::string> calls;  ///< unqualified callee names
  /// Function-local variables declared as std::future/shared_future —
  /// lets R8/R11 type `.get()` receivers the member maps cannot see.
  std::set<std::string> local_futures;
  /// A candidate blocking call, recorded untyped in pass 1; scan_global
  /// resolves `receiver` against the merged cv/future member-name sets.
  struct BlockingSite {
    int line = 0;
    int col = 0;
    std::string receiver;  ///< object the method is called on ("" if free)
    std::string method;    ///< "wait" / "get" / "sleep_for" / ...
    std::string what;      ///< display form, e.g. "ready_.wait"
  };
  std::vector<BlockingSite> blocking;
};

/// Cross-TU symbol index (pass 1 output).
struct SymbolIndex {
  std::vector<IndexedClass> classes;
  std::vector<IndexedEnum> enums;
  std::vector<IndexedFunction> functions;
  /// Well-formed inline waivers per file: line -> waived rule ids. Lets
  /// scan_global apply waivers for findings it attributes to other files.
  std::map<std::string, std::map<int, std::set<std::string>>> waivers;
  /// Identifier sets of the registered test sources, keyed by label.
  std::map<std::string, std::set<std::string>> test_idents;

  /// Global member-name type maps (merged over all classes; name-keyed —
  /// the token scanner has no qualified lookup, and a collision merely
  /// widens a receiver's possible types, erring toward reporting).
  std::set<std::string> mutex_names, cv_names, atomic_names, future_names,
      rng_names;
  /// Mutex name -> (declaring file, declaration rank within that file).
  std::map<std::string, std::pair<std::string, int>> mutex_rank;
  /// Namespace-scope atomic variable names per file label (R10 write-once
  /// idiom applies to these, not to member atomics).
  std::map<std::string, std::set<std::string>> ns_atomics;
};

/// Builds the index over `sources` + `test_sources`. Test sources
/// contribute their identifier sets (for R12 coverage) but are never
/// rule-scanned themselves.
SymbolIndex build_index(const std::vector<SourceFile>& sources,
                        const std::vector<SourceFile>& test_sources = {},
                        const Options& opt = {});

/// Aggregate end-of-run accounting (per-rule findings and inline-waiver
/// counts, scanned-file count). Findings are counted post-waiver,
/// pre-baseline.
struct ScanStats {
  std::map<std::string, int> findings;  ///< rule -> surviving findings
  std::map<std::string, int> waived;    ///< rule -> inline-waived findings
  int files_scanned = 0;
};

/// Scans one in-memory source file; `label` is used for diagnostics and
/// for the path-based scoping in Options. Inline waivers are already
/// applied; malformed waivers (missing reason) come back as rule "waiver".
/// When `index` is null a single-file index is built internally, so the
/// per-file rules (R1-R10) still run; the cross-TU rules (R11 call-graph
/// reachability beyond this file, R12) need `scan_global`.
std::vector<Finding> scan_source(const std::string& label,
                                 const std::string& content,
                                 const Options& opt = {},
                                 const SymbolIndex* index = nullptr,
                                 ScanStats* stats = nullptr);

/// The cross-TU rules: R11 blocking-call reachability over the whole
/// call graph and R12 contract coverage. Inline waivers recorded in the
/// index are applied. R12 is skipped when the index holds no test
/// sources.
std::vector<Finding> scan_global(const SymbolIndex& index,
                                 const Options& opt = {},
                                 ScanStats* stats = nullptr);

/// Full two-pass scan: build_index over sources+tests, per-file rules on
/// every source (fanned out over the deterministic ThreadPool, collected
/// in input order), then scan_global. This is what the CLI and the tree
/// gate run.
std::vector<Finding> scan_files(const std::vector<SourceFile>& sources,
                                const std::vector<SourceFile>& test_sources,
                                const Options& opt = {},
                                ScanStats* stats = nullptr);

/// Reads every .h/.hpp/.cpp/.cc under `root` (sorted, so the output
/// order is stable). Labels are root-relative.
std::vector<SourceFile> collect_tree(const std::string& root);

/// Recursively scans every source file under `root` — scan_files over
/// collect_tree(root) with no test sources (R12 skipped).
std::vector<Finding> scan_tree(const std::string& root,
                               const Options& opt = {});

/// "file:line:col: error[rule]: message" — GCC diagnostic shape, so
/// editors and CI annotations pick it up for free (the ":col" part is
/// omitted for findings with no column).
std::string format(const Finding& f);

/// Drops findings listed in a baseline ("file:line:rule" per line; '#'
/// comments and blank lines ignored).
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::string& baseline_text);

/// Baseline entries that no longer match any finding (rot check for
/// --check-baseline): grandfathered waivers must not outlive the code
/// they excused.
std::vector<std::string> stale_baseline_entries(
    const std::vector<Finding>& findings, const std::string& baseline_text);

/// Renders findings in baseline form (for --write-baseline).
std::string to_baseline(const std::vector<Finding>& findings);

}  // namespace gdelay::audit
