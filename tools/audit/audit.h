// gdelay-audit: project-specific static analysis for the waveform engine.
//
// The simulator's determinism contracts — bit-exact output across runs,
// thread counts, chunk sizes and host libm — are written down in DESIGN.md
// and enforced at runtime by the byte-identity test suites. But runtime
// tests only exercise the elements someone remembered to test; this tool
// proves the *source* obeys the contracts, for every element and every
// file, so a new AnalogElement cannot silently reintroduce host-libm
// dependence, RNG-stream aliasing, or a step/block semantic fork.
//
// Rules (see DESIGN.md "Static guarantees" for the rationale):
//
//   R1  no direct libm transcendentals (std::tanh/log/exp/sin/cos/pow,
//       bare tanh(...) and friends) outside util/fastmath.h — the signal
//       path must use the det_* kernels, whose bit patterns are identical
//       on every conforming platform.
//   R2  no nondeterminism sources anywhere in src/: std::random_device,
//       rand()/srand(), time(), wall-clock *_clock reads, getenv()
//       (except util/thread_pool, which owns GDELAY_THREADS).
//   R3  element-contract completeness: every class deriving from
//       AnalogElement that overrides step() must also override
//       process_block() and clone(); every class holding a Rng or
//       NoiseSource member must declare fork_noise() so clone-based
//       sweeps can decorrelate its streams.
//   R4  no mutable namespace-scope state (data races under
//       GDELAY_THREADS, and order-of-initialization hazards).
//   R5  no float: the analog path (analog/, signal/, core/) is double
//       end-to-end; a float literal or variable would silently round.
//   R6  no per-chunk allocation in measurement sinks: a container-growth
//       call (push_back/emplace/insert/resize/...) inside a consume()
//       body breaks the streaming executor's O(chunk) memory contract.
//       Bounded growth (reserved up front) is waived inline.
//   R7  SIMD intrinsics (immintrin.h-family includes, _mm*/__m128/
//       __m256/__m512 identifiers) only inside src/backend/ — vector
//       code outside the pluggable-backend boundary would fork the
//       per-backend determinism contract invisibly: the backend tables
//       are the single place where packed arithmetic is declared either
//       bit-exact or contract-covered, and the equivalence suite only
//       tests what flows through them.
//
// Diagnostics are GCC-style `file:line: error[rule]: message`. A finding
// can be waived inline:
//
//   // gdelay-audit: allow(R1) one-line justification (required)
//
// on the offending line or the line above, or recorded in a checked-in
// baseline file (`file:line:rule` per line) for grandfathered findings.
//
// The scanner is a lightweight tokenizer, not a compiler: it strips
// comments, strings and preprocessor directives, then pattern-matches
// token sequences with a scope stack (namespace/class/function). That is
// deliberate — the rules are designed to be decidable at token level, and
// the tool builds in ~nothing and runs in milliseconds as `ctest -R Audit`.
#pragma once

#include <string>
#include <vector>

namespace gdelay::audit {

/// One rule violation (or malformed waiver).
struct Finding {
  std::string file;     ///< Label the file was scanned under.
  int line = 0;         ///< 1-based.
  std::string rule;     ///< "R1".."R7", or "waiver" for a malformed waiver.
  std::string message;  ///< Human-readable explanation with the fix.
};

/// Path-based rule scoping. All fragments match against the scan label
/// (root-relative, forward slashes).
struct Options {
  /// R1 does not apply here (this is where the det_* kernels live).
  std::string fastmath_suffix = "util/fastmath.h";
  /// Labels containing one of these may call getenv (R2): thread_pool
  /// owns GDELAY_THREADS, the backend dispatcher owns GDELAY_BACKEND,
  /// and the service config owns GDELAY_SERVICE_SHARDS — all three are
  /// reproducibility-neutral performance knobs (responses/results are
  /// bit-identical at any setting). The service's request-handling paths
  /// (service/service, service/cal_cache) are deliberately NOT listed:
  /// an env read there could fork response content per host.
  std::vector<std::string> getenv_allowed = {"util/thread_pool",
                                             "backend/dispatch",
                                             "service/config"};
  /// R5 applies to labels starting with one of these prefixes.
  std::vector<std::string> analog_prefixes = {"analog/", "signal/", "core/"};
  /// Labels containing one of these may hold namespace-scope mutable
  /// state (R4): the backend dispatcher's write-once active-table
  /// atomics, and the service config's once-resolved shard-count cache
  /// (same write-once pattern, same justification). The service request
  /// paths stay OUT of this list — dispatch state there would be an
  /// arrival-order dependence. Keep this list short.
  std::vector<std::string> mutable_state_allowlist = {"backend/dispatch",
                                                      "service/config"};
  /// R7: labels starting with (or containing a path segment equal to)
  /// this prefix may use SIMD intrinsics.
  std::string simd_prefix = "backend/";
};

/// Scans one in-memory source file; `label` is used for diagnostics and
/// for the path-based scoping in Options. Inline waivers are already
/// applied; malformed waivers (missing reason) come back as rule "waiver".
std::vector<Finding> scan_source(const std::string& label,
                                 const std::string& content,
                                 const Options& opt = {});

/// Recursively scans every .h/.cpp/.hpp/.cc under `root` (sorted, so the
/// output order is stable). Labels are root-relative.
std::vector<Finding> scan_tree(const std::string& root,
                               const Options& opt = {});

/// "file:line: error[rule]: message" — GCC diagnostic shape, so editors
/// and CI annotations pick it up for free.
std::string format(const Finding& f);

/// Drops findings listed in a baseline ("file:line:rule" per line; '#'
/// comments and blank lines ignored).
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::string& baseline_text);

/// Renders findings in baseline form (for --write-baseline).
std::string to_baseline(const std::vector<Finding>& findings);

}  // namespace gdelay::audit
