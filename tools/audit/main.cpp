// gdelay-audit CLI — scans source trees for determinism-contract
// violations. See audit.h for the rule catalogue and waiver syntax.
//
//   gdelay_audit [options] <root>...
//
//   --baseline FILE        drop findings listed in FILE (file:line:rule)
//   --check-baseline       error on baseline entries that match nothing
//   --write-baseline FILE  write surviving findings in baseline form
//   --tests DIR            register test sources for R12 (repeatable)
//   --sarif FILE           also emit findings as SARIF 2.1.0
//   --list-rules           print the rule catalogue and exit
//   --max-ms N             fail (exit 3) if the scan takes longer than N ms
//
// Exit status: 0 when clean (after waivers + baseline), 1 when findings
// remain or the baseline is stale under --check-baseline, 2 on usage
// errors, 3 when --max-ms is exceeded.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "audit.h"
#include "sarif.h"

namespace {

int usage() {
  std::cerr
      << "usage: gdelay_audit [--baseline FILE] [--check-baseline]\n"
         "                    [--write-baseline FILE] [--tests DIR]...\n"
         "                    [--sarif FILE] [--list-rules] [--max-ms N]\n"
         "                    <root>...\n"
         "Scans .h/.hpp/.cpp/.cc files under each <root> (or a single file)"
         " for\nviolations of the gdelay determinism rules R1-R12"
         " (R12 needs --tests).\n";
  return 2;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = static_cast<bool>(in);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using namespace gdelay::audit;

  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  std::vector<std::string> test_roots;
  std::vector<std::string> roots;
  bool check_baseline = false;
  bool list_rules = false;
  long max_ms = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--tests" && i + 1 < argc) {
      test_roots.push_back(argv[++i]);
    } else if (arg == "--max-ms" && i + 1 < argc) {
      max_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--check-baseline") {
      check_baseline = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "gdelay-audit: unknown option '" << arg << "'\n";
      return usage();
    } else {
      roots.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& r : rule_catalog())
      std::cout << r.id << "  " << r.summary << "  [" << r.scope << "]\n";
    return 0;
  }
  if (roots.empty()) return usage();

  // Wall-clock budget guard for CI (the analyzer must stay cheap enough
  // to live in tier-1). gdelay-audit: allow(R2) the CLI times its own scan;
  // the measurement never influences findings or their order.
  const auto t0 = std::chrono::steady_clock::now();

  Options opt;
  std::vector<SourceFile> sources;
  for (const auto& root : roots) {
    if (fs::is_directory(root)) {
      auto tree = collect_tree(root);
      sources.insert(sources.end(), std::make_move_iterator(tree.begin()),
                     std::make_move_iterator(tree.end()));
    } else {
      bool ok = false;
      std::string content = read_file(root, ok);
      if (!ok) {
        std::cerr << "gdelay-audit: cannot read '" << root << "'\n";
        return 2;
      }
      sources.push_back({root, std::move(content)});
    }
  }
  std::vector<SourceFile> test_sources;
  for (const auto& root : test_roots) {
    if (!fs::is_directory(root)) {
      std::cerr << "gdelay-audit: --tests '" << root
                << "' is not a directory\n";
      return 2;
    }
    auto tree = collect_tree(root);
    for (auto& f : tree)
      test_sources.push_back({root + "/" + f.label, std::move(f.content)});
  }

  ScanStats stats;
  std::vector<Finding> findings =
      scan_files(sources, test_sources, opt, &stats);

  std::vector<std::string> stale;
  if (!baseline_path.empty()) {
    bool ok = false;
    std::string text = read_file(baseline_path, ok);
    if (!ok) {
      std::cerr << "gdelay-audit: cannot read baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    if (check_baseline) stale = stale_baseline_entries(findings, text);
    findings = apply_baseline(std::move(findings), text);
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << to_baseline(findings);
    std::cout << "gdelay-audit: wrote " << findings.size()
              << " baseline entr" << (findings.size() == 1 ? "y" : "ies")
              << " to " << write_baseline_path << "\n";
    return 0;
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "gdelay-audit: cannot write SARIF to '" << sarif_path
                << "'\n";
      return 2;
    }
    out << to_sarif(findings);
  }

  for (const auto& f : findings) std::cout << format(f) << "\n";
  for (const auto& s : stale)
    std::cout << "stale baseline entry: " << s
              << " (no longer matches any finding — delete it)\n";

  // Per-rule summary: findings survive waivers but precede the baseline;
  // the baseline-suppressed remainder is implicit in the final count.
  std::cout << "gdelay-audit: scanned " << stats.files_scanned << " file"
            << (stats.files_scanned == 1 ? "" : "s");
  if (!test_sources.empty())
    std::cout << " (+" << test_sources.size() << " test sources for R12)";
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  std::cout << " in " << elapsed << " ms\n";
  for (const auto& r : rule_catalog()) {
    auto fit = stats.findings.find(r.id);
    auto wit = stats.waived.find(r.id);
    int nf = fit == stats.findings.end() ? 0 : fit->second;
    int nw = wit == stats.waived.end() ? 0 : wit->second;
    if (nf == 0 && nw == 0) continue;
    std::cout << "  " << r.id << ": " << nf << " finding"
              << (nf == 1 ? "" : "s") << ", " << nw << " waived\n";
  }

  if (max_ms > 0 && elapsed > max_ms) {
    std::cout << "gdelay-audit: scan took " << elapsed
              << " ms, over the --max-ms " << max_ms << " budget\n";
    return 3;
  }
  if (findings.empty() && stale.empty()) {
    std::cout << "gdelay-audit: clean\n";
    return 0;
  }
  if (!findings.empty())
    std::cout << "gdelay-audit: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
  if (!stale.empty())
    std::cout << "gdelay-audit: " << stale.size() << " stale baseline entr"
              << (stale.size() == 1 ? "y" : "ies") << "\n";
  return 1;
}
