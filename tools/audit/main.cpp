// gdelay-audit CLI — scans source trees for determinism-contract
// violations. See audit.h for the rule catalogue and waiver syntax.
//
//   gdelay_audit [--baseline FILE] [--write-baseline FILE] <root>...
//
// Exit status: 0 when clean (after waivers + baseline), 1 when findings
// remain, 2 on usage errors.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "audit.h"

namespace {

int usage() {
  std::cerr << "usage: gdelay_audit [--baseline FILE] [--write-baseline FILE]"
               " <root>...\n"
               "Scans .h/.hpp/.cpp/.cc files under each <root> (or a single"
               " file) for\nviolations of the gdelay determinism rules"
               " R1-R7.\n";
  return 2;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = static_cast<bool>(in);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using namespace gdelay::audit;

  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "gdelay-audit: unknown option '" << arg << "'\n";
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  Options opt;
  std::vector<Finding> findings;
  for (const auto& root : roots) {
    if (fs::is_directory(root)) {
      auto tree = scan_tree(root, opt);
      findings.insert(findings.end(), tree.begin(), tree.end());
    } else {
      bool ok = false;
      std::string content = read_file(root, ok);
      if (!ok) {
        std::cerr << "gdelay-audit: cannot read '" << root << "'\n";
        return 2;
      }
      auto file_findings = scan_source(root, content, opt);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }

  if (!baseline_path.empty()) {
    bool ok = false;
    std::string text = read_file(baseline_path, ok);
    if (!ok) {
      std::cerr << "gdelay-audit: cannot read baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    findings = apply_baseline(std::move(findings), text);
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << to_baseline(findings);
    std::cout << "gdelay-audit: wrote " << findings.size()
              << " baseline entr" << (findings.size() == 1 ? "y" : "ies")
              << " to " << write_baseline_path << "\n";
    return 0;
  }

  for (const auto& f : findings) std::cout << format(f) << "\n";
  if (findings.empty()) {
    std::cout << "gdelay-audit: clean\n";
    return 0;
  }
  std::cout << "gdelay-audit: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
  return 1;
}
