// SARIF 2.1.0 emitter for gdelay-audit findings.
//
// Produces one run with the full rule catalogue in
// runs[0].tool.driver.rules and one result per finding (ruleId, level
// "error", message, and a physicalLocation with startLine/startColumn).
// The output is deliberately minimal but schema-valid, so CI can hand it
// to GitHub code scanning via upload-sarif and to any SARIF viewer.
#pragma once

#include <string>
#include <vector>

#include "audit.h"

namespace gdelay::audit {

/// Renders `findings` as a SARIF 2.1.0 document. Finding labels are
/// emitted as artifact URIs verbatim (root-relative, forward slashes).
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace gdelay::audit
