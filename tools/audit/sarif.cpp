#include "sarif.h"

#include <cstdio>
#include <sstream>

namespace gdelay::audit {
namespace {

// JSON string escaping (control chars, quote, backslash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"gdelay-audit\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/gdelay/tools/audit\",\n"
      << "          \"rules\": [\n";
  const auto& rules = rule_catalog();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "            {\n"
        << "              \"id\": \"" << json_escape(rules[i].id) << "\",\n"
        << "              \"shortDescription\": { \"text\": \""
        << json_escape(rules[i].summary) << "\" },\n"
        << "              \"helpUri\": "
           "\"https://example.invalid/gdelay/DESIGN.md\",\n"
        << "              \"properties\": { \"scope\": \""
        << json_escape(rules[i].scope) << "\" }\n"
        << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": { \"text\": \"" << json_escape(f.message)
        << "\" },\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": { \"uri\": \""
        << json_escape(f.file) << "\" },\n"
        << "                \"region\": { \"startLine\": "
        << (f.line > 0 ? f.line : 1);
    if (f.col > 0) out << ", \"startColumn\": " << f.col;
    out << " }\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace gdelay::audit
