#include "audit.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace gdelay::audit {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
//
// Produces a stream of identifier / number / punctuation tokens with line
// numbers. Comments, string and character literals, and preprocessor
// directives are stripped (their contents must never trigger a rule).
// Waiver comments are collected as a side channel while stripping.
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { Ident, Number, Punct } kind;
  std::string text;
  int line;
};

struct Waiver {
  std::set<std::string> rules;
  bool has_reason = false;
};

struct Lexed {
  std::vector<Token> tokens;
  // Keyed by line. A waiver covers its own line and the line of the next
  // code token after the comment (so multi-line comment blocks still cover
  // the statement below them).
  std::map<int, Waiver> waivers;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Parses "gdelay-audit: allow(R1,R2) reason..." out of a comment body.
// Registers the waiver (or a malformed-waiver record with no rules) at
// `line`. Returns true when a waiver tag was present.
bool collect_waiver(const std::string& comment, int line, Lexed& lx) {
  static const std::string kTag = "gdelay-audit:";
  std::size_t at = comment.find(kTag);
  if (at == std::string::npos) return false;
  std::string rest = trim(comment.substr(at + kTag.size()));
  // Only the tag directly followed by the allow keyword is a waiver
  // attempt; prose that merely mentions the tool is not.
  if (rest.rfind("allow", 0) != 0) return false;
  Waiver w;
  static const std::string kAllow = "allow(";
  if (rest.rfind(kAllow, 0) == 0) {
    std::size_t close = rest.find(')');
    if (close != std::string::npos) {
      std::string list = rest.substr(kAllow.size(), close - kAllow.size());
      std::stringstream ss(list);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        rule = trim(rule);
        if (!rule.empty()) w.rules.insert(rule);
      }
      w.has_reason = !trim(rest.substr(close + 1)).empty();
    }
  }
  lx.waivers[line] = std::move(w);
  return true;
}

Lexed lex(const std::string& src) {
  Lexed lx;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;
  std::vector<int> pending_waivers;  // waiver lines awaiting their code token

  auto emit = [&](Token::Kind kind, std::string text) {
    // Extend each not-yet-anchored waiver to the line of the first code
    // token that follows it.
    for (int wl : pending_waivers) {
      auto it = lx.waivers.find(wl);
      if (it == lx.waivers.end() || wl == line) continue;
      if (it->second.rules.empty() || !it->second.has_reason)
        continue;  // malformed; reported as-is, never propagated
      Waiver& dst = lx.waivers[line];
      if (dst.rules.empty()) dst.has_reason = it->second.has_reason;
      dst.rules.insert(it->second.rules.begin(), it->second.rules.end());
    }
    pending_waivers.clear();
    lx.tokens.push_back({kind, std::move(text), line});
  };

  auto skip_string = [&](char quote) {
    ++i;  // opening quote
    while (i < n) {
      char c = src[i];
      if (c == '\\' && i + 1 < n) {
        i += 2;
        continue;
      }
      if (c == '\n') ++line;  // unterminated / multiline — stay robust
      ++i;
      if (c == quote) break;
    }
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: consume to end of line, honoring backslash
      // continuations.
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t eol = src.find('\n', i);
      std::string body =
          src.substr(i + 2, (eol == std::string::npos ? n : eol) - i - 2);
      if (collect_waiver(body, line, lx)) pending_waivers.push_back(line);
      i = (eol == std::string::npos) ? n : eol;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      std::size_t stop = (end == std::string::npos) ? n : end;
      std::string body = src.substr(i + 2, stop - i - 2);
      int end_line = line + static_cast<int>(
                                std::count(body.begin(), body.end(), '\n'));
      if (collect_waiver(body, end_line, lx))
        pending_waivers.push_back(end_line);
      line = end_line;
      i = (end == std::string::npos) ? n : end + 2;
      continue;
    }
    if (c == '"') {
      skip_string('"');
      continue;
    }
    if (c == '\'') {
      skip_string('\'');
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t b = i;
      while (i < n && is_ident_char(src[i])) ++i;
      std::string text = src.substr(b, i - b);
      // Raw / prefixed string literals: R"(...)", u8"...", L'...' etc.
      if (i < n && (src[i] == '"' || src[i] == '\'') &&
          (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
           text == "LR" || text == "u8" || text == "u" || text == "U" ||
           text == "L")) {
        if (text.back() == 'R' && src[i] == '"') {
          // Raw string: find the )delim" terminator.
          std::size_t p = i + 1;
          std::string delim;
          while (p < n && src[p] != '(') delim += src[p++];
          std::string close = ")" + delim + "\"";
          std::size_t end = src.find(close, p);
          std::size_t stop = (end == std::string::npos) ? n : end + close.size();
          line += static_cast<int>(
              std::count(src.begin() + static_cast<long>(i),
                         src.begin() + static_cast<long>(stop), '\n'));
          i = stop;
        } else {
          skip_string(src[i]);
        }
        continue;
      }
      emit(Token::Ident, std::move(text));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t b = i;
      while (i < n) {
        char d = src[i];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > b) {
          char prev = src[i - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      emit(Token::Number, src.substr(b, i - b));
      continue;
    }
    // Punctuation; keep '::' and '->' glued (both matter to the rules:
    // '::' so ':' in a base-clause is unambiguous, '->' for member calls).
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      emit(Token::Punct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      emit(Token::Punct, "->");
      i += 2;
      continue;
    }
    emit(Token::Punct, std::string(1, c));
    ++i;
  }
  return lx;
}

// ---------------------------------------------------------------------------
// Path helpers
// ---------------------------------------------------------------------------

bool label_contains_any(const std::string& label,
                        const std::vector<std::string>& fragments) {
  for (const auto& f : fragments)
    if (label.find(f) != std::string::npos) return true;
  return false;
}

bool label_in_analog_path(const std::string& label,
                          const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes) {
    if (label.rfind(p, 0) == 0) return true;
    // Also match labels that carry a leading "src/" (absolute-ish scans).
    if (label.find("/" + p) != std::string::npos) return true;
  }
  return false;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// R1 / R2 / R5 — linear token scans
// ---------------------------------------------------------------------------

const std::unordered_map<std::string, std::string>& transcendental_map() {
  // libm name -> deterministic replacement hint.
  static const std::unordered_map<std::string, std::string> m = {
      {"tanh", "util::det_tanh"},
      {"exp", "util::det_exp"},
      {"log", "util::det_log"},
      {"sin", "util::det_sin2pi (argument in turns)"},
      {"cos", "util::det_cos2pi (argument in turns)"},
      {"sincos", "util::det_sincos2pi"},
      {"exp2", "util::det_exp"},
      {"expm1", "util::det_exp"},
      {"log2", "util::det_log"},
      {"log10", "util::det_log"},
      {"log1p", "util::det_log"},
      {"tan", "util::det_sincos2pi"},
      {"asin", ""},
      {"acos", ""},
      {"atan", ""},
      {"atan2", ""},
      {"pow", "util::det_exp/det_log composition"},
      {"hypot", ""},
      {"erf", ""},
      {"erfc", ""},
      {"sinh", "util::det_exp"},
      {"cosh", "util::det_exp"},
      {"cbrt", ""},
      {"tgamma", ""},
      {"lgamma", ""},
      {"atanh", ""},
      {"asinh", ""},
      {"acosh", ""},
      {"tanhf", "util::det_tanh"},
      {"expf", "util::det_exp"},
      {"logf", "util::det_log"},
      {"sinf", "util::det_sin2pi"},
      {"cosf", "util::det_cos2pi"},
      {"powf", "util::det_exp/det_log composition"},
  };
  return m;
}

void scan_r1(const std::string& label, const Lexed& lx, const Options& opt,
             std::vector<Finding>& out) {
  if (ends_with(label, opt.fastmath_suffix)) return;
  const auto& map = transcendental_map();
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Ident) continue;
    auto it = map.find(toks[i].text);
    if (it == map.end()) continue;
    if (toks[i + 1].kind != Token::Punct || toks[i + 1].text != "(") continue;
    if (i > 0 && toks[i - 1].kind == Token::Punct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;  // member call on some object, not libm
    std::string msg = "direct libm call '" + toks[i].text +
                      "(' bypasses the deterministic kernels";
    if (!it->second.empty()) msg += "; use " + it->second;
    msg += " (util/fastmath.h)";
    out.push_back({label, toks[i].line, "R1", std::move(msg)});
  }
}

void scan_r2(const std::string& label, const Lexed& lx, const Options& opt,
             std::vector<Finding>& out) {
  static const std::unordered_set<std::string> any_use = {
      "random_device", "steady_clock", "system_clock",
      "high_resolution_clock"};
  static const std::unordered_set<std::string> calls = {
      "rand",         "srand",   "random",       "srandom", "drand48",
      "gettimeofday", "time",    "timespec_get", "clock",   "clock_gettime",
      "getenv",       "system"};
  const bool getenv_ok = label_contains_any(label, opt.getenv_allowed);
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Ident) continue;
    const std::string& t = toks[i].text;
    if (any_use.count(t)) {
      out.push_back({label, toks[i].line, "R2",
                     "'" + t +
                         "' is a nondeterminism source; seed everything from "
                         "util::Rng and the configured stream ids"});
      continue;
    }
    if (!calls.count(t)) continue;
    if (i + 1 >= toks.size() || toks[i + 1].kind != Token::Punct ||
        toks[i + 1].text != "(")
      continue;
    if (i > 0 && toks[i - 1].kind == Token::Punct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;
    if (t == "getenv" && getenv_ok) continue;
    std::string msg =
        "call to '" + t + "(' makes output depend on ambient state";
    if (t == "getenv")
      msg +=
          "; environment reads are confined to the allowlisted owners "
          "(util/thread_pool, backend/dispatch)";
    else
      msg += "; derive values from util::Rng or explicit configuration";
    out.push_back({label, toks[i].line, "R2", std::move(msg)});
  }
}

// R7: SIMD intrinsics only inside the compute-backend boundary. The
// backend tables are the one place packed arithmetic is declared either
// bit-exact or contract-covered; an intrinsic anywhere else forks the
// determinism contract invisibly. Detection is two-pronged because lex()
// strips preprocessor directives from the token stream: intrinsic-header
// includes are found by a raw-content line scan, intrinsic identifiers
// (_mm*, __m128/__m256/__m512 and variants) by a token scan.
void scan_r7(const std::string& label, const std::string& content,
             const Lexed& lx, const Options& opt, std::vector<Finding>& out) {
  const std::string& pre = opt.simd_prefix;
  if (!pre.empty() &&
      (label.rfind(pre, 0) == 0 ||
       label.find("/" + pre) != std::string::npos))
    return;

  static const char* const kSimdHeaders[] = {
      "immintrin.h", "x86intrin.h", "xmmintrin.h", "emmintrin.h",
      "pmmintrin.h", "tmmintrin.h", "smmintrin.h", "nmmintrin.h",
      "wmmintrin.h", "avxintrin.h", "avx2intrin.h", "avx512fintrin.h",
      "arm_neon.h",  "arm_sve.h"};
  int line = 1;
  std::size_t pos = 0;
  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string_view lv(content.data() + pos, eol - pos);
    std::size_t first = lv.find_first_not_of(" \t");
    if (first != std::string_view::npos && lv[first] == '#' &&
        lv.find("include") != std::string_view::npos) {
      for (const char* hdr : kSimdHeaders) {
        if (lv.find(hdr) != std::string_view::npos) {
          out.push_back(
              {label, line, "R7",
               std::string("SIMD intrinsic header <") + hdr +
                   "> outside " + pre +
                   "; vector code must live behind the compute-backend "
                   "kernel tables so its determinism contract is declared "
                   "and tested"});
          break;
        }
      }
    }
    line += 1;
    pos = eol + 1;
  }

  for (const auto& t : lx.tokens) {
    if (t.kind != Token::Ident) continue;
    const std::string& s = t.text;
    const bool intrinsic =
        s.rfind("_mm", 0) == 0 || s.rfind("__m128", 0) == 0 ||
        s.rfind("__m256", 0) == 0 || s.rfind("__m512", 0) == 0;
    if (!intrinsic) continue;
    out.push_back({label, t.line, "R7",
                   "SIMD intrinsic '" + s + "' outside " + pre +
                       "; route the computation through the backend kernel "
                       "tables (scalar oracle + per-backend contract)"});
  }
}

void scan_r5(const std::string& label, const Lexed& lx, const Options& opt,
             std::vector<Finding>& out) {
  if (!label_in_analog_path(label, opt.analog_prefixes)) return;
  for (const auto& t : lx.tokens) {
    if (t.kind == Token::Ident && t.text == "float") {
      out.push_back({label, t.line, "R5",
                     "'float' in the analog path; the byte-identity suite "
                     "assumes double end-to-end"});
      continue;
    }
    if (t.kind == Token::Number && !t.text.empty()) {
      char last = t.text.back();
      bool hex = t.text.size() > 1 && t.text[0] == '0' &&
                 (t.text[1] == 'x' || t.text[1] == 'X');
      if (!hex && (last == 'f' || last == 'F')) {
        out.push_back({label, t.line, "R5",
                       "float literal '" + t.text +
                           "' in the analog path; drop the suffix to keep "
                           "double precision"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R6 — incremental sinks must not allocate per chunk
//
// consume() is the fused executor's steady-state hot path: it runs once per
// chunk for the whole stream, so a container-growth call there turns the
// executor's O(chunk) memory promise into O(stream) and adds allocator
// traffic per chunk. The scanner keys on the *function name* — any body
// whose declarator is `consume(` — rather than on the ISampleSink base
// clause, because out-of-class definitions ('void EyeSink::consume(...)')
// do not carry the base clause in the same file. Growth that is genuinely
// bounded (reserved up front, O(transition) not O(stream)) is waived
// inline with a justification.
// ---------------------------------------------------------------------------

void scan_r6(const std::string& label, const Lexed& lx,
             std::vector<Finding>& out) {
  static const std::unordered_set<std::string> growth = {
      "push_back",  "emplace_back", "push_front", "emplace_front",
      "insert",     "emplace",      "resize",     "reserve",
      "append",     "assign"};
  const auto& toks = lx.tokens;
  int depth = 0;       // brace nesting
  int consume_at = -1; // depth of the consume body's opening brace, or -1
  std::vector<std::size_t> stmt;  // token indices of the pending statement
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Punct && t.text == "{") {
      if (consume_at < 0) {
        // Declarator check: the identifier before the statement's first
        // '(' names the function being defined. Matches both in-class
        // 'void consume(...) override {' and out-of-class
        // 'void EyeSink::consume(...) {' definitions.
        for (std::size_t k = 0; k < stmt.size(); ++k) {
          const Token& s = toks[stmt[k]];
          if (s.kind == Token::Punct && s.text == "(") {
            if (k > 0 && toks[stmt[k - 1]].kind == Token::Ident &&
                toks[stmt[k - 1]].text == "consume")
              consume_at = depth;
            break;
          }
        }
      }
      ++depth;
      stmt.clear();
      continue;
    }
    if (t.kind == Token::Punct && t.text == "}") {
      depth = std::max(0, depth - 1);
      if (consume_at >= 0 && depth <= consume_at) consume_at = -1;
      stmt.clear();
      continue;
    }
    if (t.kind == Token::Punct && t.text == ";") {
      stmt.clear();
      continue;
    }
    stmt.push_back(i);
    if (consume_at >= 0 && t.kind == Token::Punct && t.text == "(" &&
        i >= 2 && toks[i - 1].kind == Token::Ident &&
        growth.count(toks[i - 1].text) && toks[i - 2].kind == Token::Punct &&
        (toks[i - 2].text == "." || toks[i - 2].text == "->")) {
      out.push_back(
          {label, toks[i - 1].line, "R6",
           "container growth '" + toks[i - 1].text +
               "(' inside consume(); the streaming hot path must stay "
               "allocation-free — size the container in begin() or the "
               "constructor, or waive with a justification if the growth "
               "is provably bounded"});
    }
  }
}

// ---------------------------------------------------------------------------
// R3 / R4 — scope-stack pass
//
// A statement accumulator plus a brace-scope stack classifies each '{' as
// namespace / class / enum / function / brace-init. Class scopes record
// base names, declared methods, and Rng/NoiseSource members; namespace
// scopes feed the mutable-global check.
// ---------------------------------------------------------------------------

enum class ScopeKind { Namespace, Class, Enum, Function, Block };

struct ClassInfo {
  std::string name;
  int line = 0;
  std::vector<std::string> bases;
  std::set<std::string> methods;
  std::vector<std::pair<std::string, int>> rng_members;  // name, line
};

bool stmt_has_ident(const std::vector<Token>& stmt, const std::string& id) {
  for (const auto& t : stmt)
    if (t.kind == Token::Ident && t.text == id) return true;
  return false;
}

bool stmt_has_punct(const std::vector<Token>& stmt, const std::string& p) {
  for (const auto& t : stmt)
    if (t.kind == Token::Punct && t.text == p) return true;
  return false;
}

// Extracts class name / bases from a class-head statement.
ClassInfo parse_class_head(const std::vector<Token>& stmt) {
  ClassInfo ci;
  if (!stmt.empty()) ci.line = stmt.front().line;
  // Last class/struct/union keyword wins ('template <class T> class Foo').
  std::size_t kw = stmt.size();
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Ident &&
        (stmt[i].text == "class" || stmt[i].text == "struct" ||
         stmt[i].text == "union"))
      kw = i;
  }
  if (kw == stmt.size()) return ci;
  ci.line = stmt[kw].line;
  std::size_t i = kw + 1;
  // Skip attributes, alignas(...) etc.; take the first plain identifier.
  for (; i < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Ident && stmt[i].text != "alignas" &&
        stmt[i].text != "final") {
      ci.name = stmt[i].text;
      ++i;
      break;
    }
  }
  // Base clause starts at a single ':' ('::' is one token, so unambiguous).
  for (; i < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Punct && stmt[i].text == ":") {
      ++i;
      break;
    }
  }
  int angle = 0;
  std::string last_ident;
  static const std::unordered_set<std::string> access = {
      "public", "protected", "private", "virtual"};
  for (; i < stmt.size(); ++i) {
    const Token& t = stmt[i];
    if (t.kind == Token::Punct) {
      if (t.text == "<") ++angle;
      else if (t.text == ">") angle = std::max(0, angle - 1);
      else if (t.text == "," && angle == 0) {
        if (!last_ident.empty()) ci.bases.push_back(last_ident);
        last_ident.clear();
      }
      continue;
    }
    if (t.kind == Token::Ident && angle == 0 && !access.count(t.text))
      last_ident = t.text;
  }
  if (!last_ident.empty()) ci.bases.push_back(last_ident);
  return ci;
}

// Records a method or a Rng/NoiseSource member from a class-scope statement.
void record_class_stmt(const std::vector<Token>& stmt, ClassInfo& ci) {
  if (stmt.empty()) return;
  // Method: identifier immediately before the first '('.
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Punct && stmt[i].text == "(") {
      if (i > 0 && stmt[i - 1].kind == Token::Ident)
        ci.methods.insert(stmt[i - 1].text);
      return;
    }
  }
  // Member: ... Rng|NoiseSource <name> [= ... | ;]
  for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Ident &&
        (stmt[i].text == "Rng" || stmt[i].text == "NoiseSource") &&
        stmt[i + 1].kind == Token::Ident) {
      ci.rng_members.emplace_back(stmt[i + 1].text, stmt[i + 1].line);
      return;
    }
  }
}

void finalize_class(const ClassInfo& ci, const std::string& label,
                    std::vector<Finding>& out) {
  bool from_element = false;
  for (const auto& b : ci.bases)
    if (b == "AnalogElement") from_element = true;
  if (from_element && ci.methods.count("step")) {
    if (!ci.methods.count("process_block"))
      out.push_back({label, ci.line, "R3",
                     "class '" + ci.name +
                         "' derives from AnalogElement and overrides step() "
                         "but not process_block(); the block path must stay "
                         "byte-identical to the scalar path"});
    if (!ci.methods.count("clone"))
      out.push_back({label, ci.line, "R3",
                     "class '" + ci.name +
                         "' derives from AnalogElement and overrides step() "
                         "but not clone(); parallel sweeps need deep copies"});
  }
  if (!ci.rng_members.empty() && !ci.methods.count("fork_noise")) {
    for (const auto& [name, line] : ci.rng_members)
      out.push_back({label, line, "R3",
                     "member '" + name + "' of class '" + ci.name +
                         "' holds a noise stream but the class declares no "
                         "fork_noise(); clones would replay the same noise"});
  }
}

// Checks a namespace-scope declaration statement for mutable global state.
void check_namespace_stmt(const std::vector<Token>& stmt,
                          const std::string& label, const Options& opt,
                          std::vector<Finding>& out) {
  if (stmt.size() < 2) return;
  if (label_contains_any(label, opt.mutable_state_allowlist)) return;
  static const std::unordered_set<std::string> skip_kw = {
      "using",  "typedef",   "friend", "static_assert", "template",
      "class",  "struct",    "enum",   "union",         "namespace",
      "concept", "requires", "operator"};
  for (const auto& t : stmt)
    if (t.kind == Token::Ident && skip_kw.count(t.text)) return;
  if (stmt_has_punct(stmt, "(")) return;  // function declaration
  // Declaration head = tokens before the first top-level '=' or the end;
  // const/constexpr there exempts the declaration. Angle depth is tracked
  // so 'vector<const char*>' does not count as a const declaration.
  int angle = 0;
  int idents = 0;
  for (const auto& t : stmt) {
    if (t.kind == Token::Punct) {
      if (t.text == "<") ++angle;
      else if (t.text == ">") angle = std::max(0, angle - 1);
      else if (t.text == ">>") angle = std::max(0, angle - 2);
      else if (t.text == "=" && angle == 0) break;
      continue;
    }
    if (t.kind == Token::Ident) {
      if (angle == 0 && (t.text == "const" || t.text == "constexpr" ||
                         t.text == "constinit"))
        return;
      ++idents;
    }
  }
  if (idents < 2) return;  // not clearly a declaration (type + name)
  out.push_back({label, stmt.front().line, "R4",
                 "mutable namespace-scope state; globals race under "
                 "GDELAY_THREADS and break run-to-run determinism — make it "
                 "constexpr, move it into the owning object, or allowlist it"});
}

void scan_r3_r4(const std::string& label, const Lexed& lx, const Options& opt,
                std::vector<Finding>& out) {
  std::vector<ScopeKind> scopes = {ScopeKind::Namespace};
  std::vector<ClassInfo> classes;
  std::vector<Token> stmt;
  for (const auto& t : lx.tokens) {
    if (t.kind == Token::Punct && t.text == "{") {
      ScopeKind parent = scopes.back();
      ScopeKind kind = ScopeKind::Block;
      bool var_init = false;
      if (parent == ScopeKind::Function) {
        kind = ScopeKind::Function;
      } else if (stmt_has_ident(stmt, "namespace")) {
        kind = ScopeKind::Namespace;
      } else if (stmt_has_ident(stmt, "extern") && stmt.size() == 1) {
        kind = ScopeKind::Namespace;  // extern "C" { ... }
      } else if (stmt_has_ident(stmt, "enum")) {
        kind = ScopeKind::Enum;
      } else if (stmt_has_ident(stmt, "class") ||
                 stmt_has_ident(stmt, "struct") ||
                 stmt_has_ident(stmt, "union")) {
        kind = ScopeKind::Class;
      } else if (stmt_has_punct(stmt, "(")) {
        kind = ScopeKind::Function;
      } else if (!stmt.empty()) {
        // Brace-initialized variable or member.
        kind = ScopeKind::Block;
        var_init = true;
      }
      if (kind == ScopeKind::Class) {
        classes.push_back(parse_class_head(stmt));
      } else if (parent == ScopeKind::Class && !classes.empty()) {
        if (kind == ScopeKind::Function || var_init)
          record_class_stmt(stmt, classes.back());
      } else if (parent == ScopeKind::Namespace && var_init) {
        check_namespace_stmt(stmt, label, opt, out);
      }
      scopes.push_back(kind);
      stmt.clear();
      continue;
    }
    if (t.kind == Token::Punct && t.text == "}") {
      if (scopes.back() == ScopeKind::Class && !classes.empty()) {
        finalize_class(classes.back(), label, out);
        classes.pop_back();
      }
      if (scopes.size() > 1) scopes.pop_back();
      stmt.clear();
      continue;
    }
    if (t.kind == Token::Punct && t.text == ";") {
      if (scopes.back() == ScopeKind::Class && !classes.empty())
        record_class_stmt(stmt, classes.back());
      else if (scopes.back() == ScopeKind::Namespace)
        check_namespace_stmt(stmt, label, opt, out);
      stmt.clear();
      continue;
    }
    stmt.push_back(t);
  }
}

// ---------------------------------------------------------------------------
// Waiver application
// ---------------------------------------------------------------------------

std::vector<Finding> apply_waivers(std::vector<Finding> findings,
                                   const std::string& label,
                                   const Lexed& lx) {
  std::vector<Finding> kept;
  for (auto& f : findings) {
    bool waived = false;
    for (int l : {f.line, f.line - 1}) {
      auto it = lx.waivers.find(l);
      if (it != lx.waivers.end() && it->second.has_reason &&
          it->second.rules.count(f.rule)) {
        waived = true;
        break;
      }
    }
    if (!waived) kept.push_back(std::move(f));
  }
  // Malformed waivers are findings themselves: a waiver without a reason
  // (or with unparsable syntax) silences nothing and must be fixed.
  for (const auto& [l, w] : lx.waivers) {
    if (w.rules.empty() || !w.has_reason)
      kept.push_back({label, l, "waiver",
                      "malformed waiver; expected '// gdelay-audit: "
                      "allow(RULE[,RULE]) reason' with a non-empty reason"});
  }
  return kept;
}

}  // namespace

std::vector<Finding> scan_source(const std::string& label,
                                 const std::string& content,
                                 const Options& opt) {
  Lexed lx = lex(content);
  std::vector<Finding> findings;
  scan_r1(label, lx, opt, findings);
  scan_r2(label, lx, opt, findings);
  scan_r3_r4(label, lx, opt, findings);
  scan_r5(label, lx, opt, findings);
  scan_r6(label, lx, findings);
  scan_r7(label, content, lx, opt, findings);
  findings = apply_waivers(std::move(findings), label, lx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> scan_tree(const std::string& root, const Options& opt) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> all;
  for (const auto& p : files) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string label = fs::relative(p, root).generic_string();
    auto fs_findings = scan_source(label, ss.str(), opt);
    all.insert(all.end(), std::make_move_iterator(fs_findings.begin()),
               std::make_move_iterator(fs_findings.end()));
  }
  return all;
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": error[" + f.rule +
         "]: " + f.message;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::string& baseline_text) {
  std::set<std::string> keys;
  std::stringstream ss(baseline_text);
  std::string line;
  while (std::getline(ss, line)) {
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  std::vector<Finding> kept;
  for (auto& f : findings) {
    std::string key = f.file + ":" + std::to_string(f.line) + ":" + f.rule;
    if (!keys.count(key)) kept.push_back(std::move(f));
  }
  return kept;
}

std::string to_baseline(const std::vector<Finding>& findings) {
  std::string out =
      "# gdelay-audit baseline — grandfathered findings (file:line:rule).\n"
      "# Prefer fixing or inline-waiving; shrink this file over time.\n";
  for (const auto& f : findings)
    out += f.file + ":" + std::to_string(f.line) + ":" + f.rule + "\n";
  return out;
}

}  // namespace gdelay::audit
