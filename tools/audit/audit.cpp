#include "audit.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <tuple>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "util/thread_pool.h"

namespace gdelay::audit {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
//
// Produces a stream of identifier / number / punctuation tokens with line
// and column numbers. Comments, string and character literals, and
// preprocessor directives are stripped (their contents must never trigger
// a rule). Waiver comments are collected as a side channel while stripping.
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { Ident, Number, Punct } kind;
  std::string text;
  int line;
  int col;
};

struct Waiver {
  std::set<std::string> rules;
  bool has_reason = false;
};

struct Lexed {
  std::vector<Token> tokens;
  // Keyed by line. A waiver covers its own line and the line of the next
  // code token after the comment (so multi-line comment blocks still cover
  // the statement below them).
  std::map<int, Waiver> waivers;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Parses "gdelay-audit: allow(R1,R2) reason..." out of a comment body.
// Registers the waiver (or a malformed-waiver record with no rules) at
// `line`. Returns true when a waiver tag was present.
bool collect_waiver(const std::string& comment, int line, Lexed& lx) {
  static const std::string kTag = "gdelay-audit:";
  std::size_t at = comment.find(kTag);
  if (at == std::string::npos) return false;
  std::string rest = trim(comment.substr(at + kTag.size()));
  // Only the tag directly followed by the allow keyword is a waiver
  // attempt; prose that merely mentions the tool is not.
  if (rest.rfind("allow", 0) != 0) return false;
  Waiver w;
  static const std::string kAllow = "allow(";
  if (rest.rfind(kAllow, 0) == 0) {
    std::size_t close = rest.find(')');
    if (close != std::string::npos) {
      std::string list = rest.substr(kAllow.size(), close - kAllow.size());
      std::stringstream ss(list);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        rule = trim(rule);
        if (!rule.empty()) w.rules.insert(rule);
      }
      w.has_reason = !trim(rest.substr(close + 1)).empty();
    }
  }
  lx.waivers[line] = std::move(w);
  return true;
}

Lexed lex(const std::string& src) {
  Lexed lx;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  std::size_t line_begin = 0;  // offset of the current line's first char
  bool at_line_start = true;
  std::vector<int> pending_waivers;  // waiver lines awaiting their code token

  auto col_of = [&](std::size_t pos) {
    return static_cast<int>(pos - line_begin) + 1;
  };

  auto emit = [&](Token::Kind kind, std::string text, std::size_t pos) {
    // Extend each not-yet-anchored waiver to the line of the first code
    // token that follows it.
    for (int wl : pending_waivers) {
      auto it = lx.waivers.find(wl);
      if (it == lx.waivers.end() || wl == line) continue;
      if (it->second.rules.empty() || !it->second.has_reason)
        continue;  // malformed; reported as-is, never propagated
      Waiver& dst = lx.waivers[line];
      if (dst.rules.empty()) dst.has_reason = it->second.has_reason;
      dst.rules.insert(it->second.rules.begin(), it->second.rules.end());
    }
    pending_waivers.clear();
    lx.tokens.push_back({kind, std::move(text), line, col_of(pos)});
  };

  auto skip_string = [&](char quote) {
    ++i;  // opening quote
    while (i < n) {
      char c = src[i];
      if (c == '\\' && i + 1 < n) {
        i += 2;
        continue;
      }
      ++i;
      if (c == '\n') {  // unterminated / multiline — stay robust
        ++line;
        line_begin = i;
      }
      if (c == quote) break;
    }
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_begin = i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: consume to end of line, honoring backslash
      // continuations.
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          line_begin = i;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t eol = src.find('\n', i);
      std::string body =
          src.substr(i + 2, (eol == std::string::npos ? n : eol) - i - 2);
      if (collect_waiver(body, line, lx)) pending_waivers.push_back(line);
      i = (eol == std::string::npos) ? n : eol;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      std::size_t stop = (end == std::string::npos) ? n : end;
      std::string body = src.substr(i + 2, stop - i - 2);
      int end_line = line + static_cast<int>(
                                std::count(body.begin(), body.end(), '\n'));
      if (collect_waiver(body, end_line, lx))
        pending_waivers.push_back(end_line);
      line = end_line;
      i = (end == std::string::npos) ? n : end + 2;
      std::size_t nl = src.rfind('\n', i == 0 ? 0 : i - 1);
      if (nl != std::string::npos && nl >= (end == std::string::npos ? 0 : 1))
        line_begin = nl + 1;
      continue;
    }
    if (c == '"') {
      skip_string('"');
      continue;
    }
    if (c == '\'') {
      skip_string('\'');
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t b = i;
      while (i < n && is_ident_char(src[i])) ++i;
      std::string text = src.substr(b, i - b);
      // Raw / prefixed string literals: R"(...)", u8"...", L'...' etc.
      if (i < n && (src[i] == '"' || src[i] == '\'') &&
          (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
           text == "LR" || text == "u8" || text == "u" || text == "U" ||
           text == "L")) {
        if (text.back() == 'R' && src[i] == '"') {
          // Raw string: find the )delim" terminator.
          std::size_t p = i + 1;
          std::string delim;
          while (p < n && src[p] != '(') delim += src[p++];
          std::string close = ")" + delim + "\"";
          std::size_t end = src.find(close, p);
          std::size_t stop = (end == std::string::npos) ? n : end + close.size();
          line += static_cast<int>(
              std::count(src.begin() + static_cast<long>(i),
                         src.begin() + static_cast<long>(stop), '\n'));
          std::size_t nl = stop == 0 ? std::string::npos
                                     : src.rfind('\n', stop - 1);
          if (nl != std::string::npos && nl >= i) line_begin = nl + 1;
          i = stop;
        } else {
          skip_string(src[i]);
        }
        continue;
      }
      emit(Token::Ident, std::move(text), b);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t b = i;
      while (i < n) {
        char d = src[i];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > b) {
          char prev = src[i - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      emit(Token::Number, src.substr(b, i - b), b);
      continue;
    }
    // Punctuation; keep '::' and '->' glued (both matter to the rules:
    // '::' so ':' in a base-clause is unambiguous, '->' for member calls).
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      emit(Token::Punct, "::", i);
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      emit(Token::Punct, "->", i);
      i += 2;
      continue;
    }
    emit(Token::Punct, std::string(1, c), i);
    ++i;
  }
  return lx;
}

// ---------------------------------------------------------------------------
// Path helpers
// ---------------------------------------------------------------------------

bool label_contains_any(const std::string& label,
                        const std::vector<std::string>& fragments) {
  for (const auto& f : fragments)
    if (label.find(f) != std::string::npos) return true;
  return false;
}

bool label_in_analog_path(const std::string& label,
                          const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes) {
    if (label.rfind(p, 0) == 0) return true;
    // Also match labels that carry a leading "src/" (absolute-ish scans).
    if (label.find("/" + p) != std::string::npos) return true;
  }
  return false;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string join_fragments(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& s : v) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

// ---------------------------------------------------------------------------
// R1 / R2 / R5 — linear token scans
// ---------------------------------------------------------------------------

const std::unordered_map<std::string, std::string>& transcendental_map() {
  // libm name -> deterministic replacement hint.
  static const std::unordered_map<std::string, std::string> m = {
      {"tanh", "util::det_tanh"},
      {"exp", "util::det_exp"},
      {"log", "util::det_log"},
      {"sin", "util::det_sin2pi (argument in turns)"},
      {"cos", "util::det_cos2pi (argument in turns)"},
      {"sincos", "util::det_sincos2pi"},
      {"exp2", "util::det_exp"},
      {"expm1", "util::det_exp"},
      {"log2", "util::det_log"},
      {"log10", "util::det_log"},
      {"log1p", "util::det_log"},
      {"tan", "util::det_sincos2pi"},
      {"asin", ""},
      {"acos", ""},
      {"atan", ""},
      {"atan2", ""},
      {"pow", "util::det_exp/det_log composition"},
      {"hypot", ""},
      {"erf", ""},
      {"erfc", ""},
      {"sinh", "util::det_exp"},
      {"cosh", "util::det_exp"},
      {"cbrt", ""},
      {"tgamma", ""},
      {"lgamma", ""},
      {"atanh", ""},
      {"asinh", ""},
      {"acosh", ""},
      {"tanhf", "util::det_tanh"},
      {"expf", "util::det_exp"},
      {"logf", "util::det_log"},
      {"sinf", "util::det_sin2pi"},
      {"cosf", "util::det_cos2pi"},
      {"powf", "util::det_exp/det_log composition"},
  };
  return m;
}

void scan_r1(const std::string& label, const Lexed& lx, const Options& opt,
             std::vector<Finding>& out) {
  if (ends_with(label, opt.fastmath_suffix)) return;
  const auto& map = transcendental_map();
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Ident) continue;
    auto it = map.find(toks[i].text);
    if (it == map.end()) continue;
    if (toks[i + 1].kind != Token::Punct || toks[i + 1].text != "(") continue;
    if (i > 0 && toks[i - 1].kind == Token::Punct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;  // member call on some object, not libm
    std::string msg = "direct libm call '" + toks[i].text +
                      "(' bypasses the deterministic kernels";
    if (!it->second.empty()) msg += "; use " + it->second;
    msg += " (util/fastmath.h)";
    out.push_back({label, toks[i].line, toks[i].col, "R1", std::move(msg)});
  }
}

void scan_r2(const std::string& label, const Lexed& lx, const Options& opt,
             std::vector<Finding>& out) {
  static const std::unordered_set<std::string> any_use = {
      "random_device", "steady_clock", "system_clock",
      "high_resolution_clock"};
  static const std::unordered_set<std::string> calls = {
      "rand",         "srand",   "random",       "srandom", "drand48",
      "gettimeofday", "time",    "timespec_get", "clock",   "clock_gettime",
      "getenv",       "system"};
  const bool getenv_ok = label_contains_any(label, opt.getenv_allowed);
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Ident) continue;
    const std::string& t = toks[i].text;
    if (any_use.count(t)) {
      out.push_back({label, toks[i].line, toks[i].col, "R2",
                     "'" + t +
                         "' is a nondeterminism source; seed everything from "
                         "util::Rng and the configured stream ids"});
      continue;
    }
    if (!calls.count(t)) continue;
    if (i + 1 >= toks.size() || toks[i + 1].kind != Token::Punct ||
        toks[i + 1].text != "(")
      continue;
    if (i > 0 && toks[i - 1].kind == Token::Punct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;
    if (t == "getenv" && getenv_ok) continue;
    std::string msg =
        "call to '" + t + "(' makes output depend on ambient state";
    if (t == "getenv")
      msg +=
          "; environment reads are confined to the allowlisted owners "
          "(util/thread_pool, backend/dispatch, service/config, "
          "campaign/config)";
    else
      msg += "; derive values from util::Rng or explicit configuration";
    out.push_back({label, toks[i].line, toks[i].col, "R2", std::move(msg)});
  }
}

// R7: SIMD intrinsics only inside the compute-backend boundary. The
// backend tables are the one place packed arithmetic is declared either
// bit-exact or contract-covered; an intrinsic anywhere else forks the
// determinism contract invisibly. Detection is two-pronged because lex()
// strips preprocessor directives from the token stream: intrinsic-header
// includes are found by a raw-content line scan, intrinsic identifiers
// (_mm*, __m128/__m256/__m512 and variants) by a token scan.
void scan_r7(const std::string& label, const std::string& content,
             const Lexed& lx, const Options& opt, std::vector<Finding>& out) {
  const std::string& pre = opt.simd_prefix;
  if (!pre.empty() &&
      (label.rfind(pre, 0) == 0 ||
       label.find("/" + pre) != std::string::npos))
    return;

  static const char* const kSimdHeaders[] = {
      "immintrin.h", "x86intrin.h", "xmmintrin.h", "emmintrin.h",
      "pmmintrin.h", "tmmintrin.h", "smmintrin.h", "nmmintrin.h",
      "wmmintrin.h", "avxintrin.h", "avx2intrin.h", "avx512fintrin.h",
      "arm_neon.h",  "arm_sve.h"};
  int line = 1;
  std::size_t pos = 0;
  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string_view lv(content.data() + pos, eol - pos);
    std::size_t first = lv.find_first_not_of(" \t");
    if (first != std::string_view::npos && lv[first] == '#' &&
        lv.find("include") != std::string_view::npos) {
      for (const char* hdr : kSimdHeaders) {
        if (lv.find(hdr) != std::string_view::npos) {
          out.push_back(
              {label, line, static_cast<int>(first) + 1, "R7",
               std::string("SIMD intrinsic header <") + hdr +
                   "> outside " + pre +
                   "; vector code must live behind the compute-backend "
                   "kernel tables so its determinism contract is declared "
                   "and tested"});
          break;
        }
      }
    }
    line += 1;
    pos = eol + 1;
  }

  for (const auto& t : lx.tokens) {
    if (t.kind != Token::Ident) continue;
    const std::string& s = t.text;
    const bool intrinsic =
        s.rfind("_mm", 0) == 0 || s.rfind("__m128", 0) == 0 ||
        s.rfind("__m256", 0) == 0 || s.rfind("__m512", 0) == 0;
    if (!intrinsic) continue;
    out.push_back({label, t.line, t.col, "R7",
                   "SIMD intrinsic '" + s + "' outside " + pre +
                       "; route the computation through the backend kernel "
                       "tables (scalar oracle + per-backend contract)"});
  }
}

void scan_r5(const std::string& label, const Lexed& lx, const Options& opt,
             std::vector<Finding>& out) {
  if (!label_in_analog_path(label, opt.analog_prefixes)) return;
  for (const auto& t : lx.tokens) {
    if (t.kind == Token::Ident && t.text == "float") {
      out.push_back({label, t.line, t.col, "R5",
                     "'float' in the analog path; the byte-identity suite "
                     "assumes double end-to-end"});
      continue;
    }
    if (t.kind == Token::Number && !t.text.empty()) {
      char last = t.text.back();
      bool hex = t.text.size() > 1 && t.text[0] == '0' &&
                 (t.text[1] == 'x' || t.text[1] == 'X');
      if (!hex && (last == 'f' || last == 'F')) {
        out.push_back({label, t.line, t.col, "R5",
                       "float literal '" + t.text +
                           "' in the analog path; drop the suffix to keep "
                           "double precision"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R6 — incremental sinks must not allocate per chunk
//
// consume() is the fused executor's steady-state hot path: it runs once per
// chunk for the whole stream, so a container-growth call there turns the
// executor's O(chunk) memory promise into O(stream) and adds allocator
// traffic per chunk. The scanner keys on the *function name* — any body
// whose declarator is `consume(` — rather than on the ISampleSink base
// clause, because out-of-class definitions ('void EyeSink::consume(...)')
// do not carry the base clause in the same file. Growth that is genuinely
// bounded (reserved up front, O(transition) not O(stream)) is waived
// inline with a justification.
// ---------------------------------------------------------------------------

void scan_r6(const std::string& label, const Lexed& lx,
             std::vector<Finding>& out) {
  static const std::unordered_set<std::string> growth = {
      "push_back",  "emplace_back", "push_front", "emplace_front",
      "insert",     "emplace",      "resize",     "reserve",
      "append",     "assign"};
  const auto& toks = lx.tokens;
  int depth = 0;       // brace nesting
  int consume_at = -1; // depth of the consume body's opening brace, or -1
  std::vector<std::size_t> stmt;  // token indices of the pending statement
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Punct && t.text == "{") {
      if (consume_at < 0) {
        // Declarator check: the identifier before the statement's first
        // '(' names the function being defined. Matches both in-class
        // 'void consume(...) override {' and out-of-class
        // 'void EyeSink::consume(...) {' definitions.
        for (std::size_t k = 0; k < stmt.size(); ++k) {
          const Token& s = toks[stmt[k]];
          if (s.kind == Token::Punct && s.text == "(") {
            if (k > 0 && toks[stmt[k - 1]].kind == Token::Ident &&
                toks[stmt[k - 1]].text == "consume")
              consume_at = depth;
            break;
          }
        }
      }
      ++depth;
      stmt.clear();
      continue;
    }
    if (t.kind == Token::Punct && t.text == "}") {
      depth = std::max(0, depth - 1);
      if (consume_at >= 0 && depth <= consume_at) consume_at = -1;
      stmt.clear();
      continue;
    }
    if (t.kind == Token::Punct && t.text == ";") {
      stmt.clear();
      continue;
    }
    stmt.push_back(i);
    if (consume_at >= 0 && t.kind == Token::Punct && t.text == "(" &&
        i >= 2 && toks[i - 1].kind == Token::Ident &&
        growth.count(toks[i - 1].text) && toks[i - 2].kind == Token::Punct &&
        (toks[i - 2].text == "." || toks[i - 2].text == "->")) {
      out.push_back(
          {label, toks[i - 1].line, toks[i - 1].col, "R6",
           "container growth '" + toks[i - 1].text +
               "(' inside consume(); the streaming hot path must stay "
               "allocation-free — size the container in begin() or the "
               "constructor, or waive with a justification if the growth "
               "is provably bounded"});
    }
  }
}

// ---------------------------------------------------------------------------
// R3 / R4 — scope-stack pass
//
// A statement accumulator plus a brace-scope stack classifies each '{' as
// namespace / class / enum / function / brace-init. Class scopes record
// base names, declared methods, and Rng/NoiseSource members; namespace
// scopes feed the mutable-global check.
// ---------------------------------------------------------------------------

enum class ScopeKind { Namespace, Class, Enum, Function, Block, Init };

struct ClassInfo {
  std::string name;
  int line = 0;
  int col = 0;
  std::vector<std::string> bases;
  std::set<std::string> methods;
  std::vector<std::pair<std::string, Token>> rng_members;  // name, name token
};

bool stmt_has_ident(const std::vector<Token>& stmt, const std::string& id) {
  for (const auto& t : stmt)
    if (t.kind == Token::Ident && t.text == id) return true;
  return false;
}

bool stmt_has_punct(const std::vector<Token>& stmt, const std::string& p) {
  for (const auto& t : stmt)
    if (t.kind == Token::Punct && t.text == p) return true;
  return false;
}

// Extracts class name / bases from a class-head statement.
ClassInfo parse_class_head(const std::vector<Token>& stmt) {
  ClassInfo ci;
  if (!stmt.empty()) {
    ci.line = stmt.front().line;
    ci.col = stmt.front().col;
  }
  // Last class/struct/union keyword wins ('template <class T> class Foo').
  std::size_t kw = stmt.size();
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Ident &&
        (stmt[i].text == "class" || stmt[i].text == "struct" ||
         stmt[i].text == "union"))
      kw = i;
  }
  if (kw == stmt.size()) return ci;
  ci.line = stmt[kw].line;
  ci.col = stmt[kw].col;
  std::size_t i = kw + 1;
  // Skip attributes, alignas(...) etc.; take the first plain identifier.
  for (; i < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Ident && stmt[i].text != "alignas" &&
        stmt[i].text != "final") {
      ci.name = stmt[i].text;
      ++i;
      break;
    }
  }
  // Base clause starts at a single ':' ('::' is one token, so unambiguous).
  for (; i < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Punct && stmt[i].text == ":") {
      ++i;
      break;
    }
  }
  int angle = 0;
  std::string last_ident;
  static const std::unordered_set<std::string> access = {
      "public", "protected", "private", "virtual"};
  for (; i < stmt.size(); ++i) {
    const Token& t = stmt[i];
    if (t.kind == Token::Punct) {
      if (t.text == "<") ++angle;
      else if (t.text == ">") angle = std::max(0, angle - 1);
      else if (t.text == "," && angle == 0) {
        if (!last_ident.empty()) ci.bases.push_back(last_ident);
        last_ident.clear();
      }
      continue;
    }
    if (t.kind == Token::Ident && angle == 0 && !access.count(t.text))
      last_ident = t.text;
  }
  if (!last_ident.empty()) ci.bases.push_back(last_ident);
  return ci;
}

// Records a method or a Rng/NoiseSource member from a class-scope statement.
void record_class_stmt(const std::vector<Token>& stmt, ClassInfo& ci) {
  if (stmt.empty()) return;
  // Method: identifier immediately before the first '('.
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Punct && stmt[i].text == "(") {
      if (i > 0 && stmt[i - 1].kind == Token::Ident)
        ci.methods.insert(stmt[i - 1].text);
      return;
    }
  }
  // Member: ... Rng|NoiseSource <name> [= ... | ;]
  for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Ident &&
        (stmt[i].text == "Rng" || stmt[i].text == "NoiseSource") &&
        stmt[i + 1].kind == Token::Ident) {
      ci.rng_members.emplace_back(stmt[i + 1].text, stmt[i + 1]);
      return;
    }
  }
}

void finalize_class(const ClassInfo& ci, const std::string& label,
                    std::vector<Finding>& out) {
  bool from_element = false;
  for (const auto& b : ci.bases)
    if (b == "AnalogElement") from_element = true;
  if (from_element && ci.methods.count("step")) {
    if (!ci.methods.count("process_block"))
      out.push_back({label, ci.line, ci.col, "R3",
                     "class '" + ci.name +
                         "' derives from AnalogElement and overrides step() "
                         "but not process_block(); the block path must stay "
                         "byte-identical to the scalar path"});
    if (!ci.methods.count("clone"))
      out.push_back({label, ci.line, ci.col, "R3",
                     "class '" + ci.name +
                         "' derives from AnalogElement and overrides step() "
                         "but not clone(); parallel sweeps need deep copies"});
  }
  if (!ci.rng_members.empty() && !ci.methods.count("fork_noise")) {
    for (const auto& [name, tok] : ci.rng_members)
      out.push_back({label, tok.line, tok.col, "R3",
                     "member '" + name + "' of class '" + ci.name +
                         "' holds a noise stream but the class declares no "
                         "fork_noise(); clones would replay the same noise"});
  }
}

// Checks a namespace-scope declaration statement for mutable global state.
void check_namespace_stmt(const std::vector<Token>& stmt,
                          const std::string& label, const Options& opt,
                          std::vector<Finding>& out) {
  if (stmt.size() < 2) return;
  if (label_contains_any(label, opt.mutable_state_allowlist)) return;
  static const std::unordered_set<std::string> skip_kw = {
      "using",  "typedef",   "friend", "static_assert", "template",
      "class",  "struct",    "enum",   "union",         "namespace",
      "concept", "requires", "operator"};
  for (const auto& t : stmt)
    if (t.kind == Token::Ident && skip_kw.count(t.text)) return;
  if (stmt_has_punct(stmt, "(")) return;  // function declaration
  // Declaration head = tokens before the first top-level '=' or the end;
  // const/constexpr there exempts the declaration. Angle depth is tracked
  // so 'vector<const char*>' does not count as a const declaration.
  int angle = 0;
  int idents = 0;
  for (const auto& t : stmt) {
    if (t.kind == Token::Punct) {
      if (t.text == "<") ++angle;
      else if (t.text == ">") angle = std::max(0, angle - 1);
      else if (t.text == ">>") angle = std::max(0, angle - 2);
      else if (t.text == "=" && angle == 0) break;
      continue;
    }
    if (t.kind == Token::Ident) {
      if (angle == 0 && (t.text == "const" || t.text == "constexpr" ||
                         t.text == "constinit"))
        return;
      ++idents;
    }
  }
  if (idents < 2) return;  // not clearly a declaration (type + name)
  out.push_back({label, stmt.front().line, stmt.front().col, "R4",
                 "mutable namespace-scope state; globals race under "
                 "GDELAY_THREADS and break run-to-run determinism — make it "
                 "constexpr, move it into the owning object, or allowlist it"});
}

void scan_r3_r4(const std::string& label, const Lexed& lx, const Options& opt,
                std::vector<Finding>& out) {
  std::vector<ScopeKind> scopes = {ScopeKind::Namespace};
  std::vector<ClassInfo> classes;
  std::vector<Token> stmt;
  for (const auto& t : lx.tokens) {
    if (t.kind == Token::Punct && t.text == "{") {
      ScopeKind parent = scopes.back();
      ScopeKind kind = ScopeKind::Block;
      bool var_init = false;
      if (parent == ScopeKind::Function) {
        kind = ScopeKind::Function;
      } else if (stmt_has_ident(stmt, "namespace")) {
        kind = ScopeKind::Namespace;
      } else if (stmt_has_ident(stmt, "extern") && stmt.size() == 1) {
        kind = ScopeKind::Namespace;  // extern "C" { ... }
      } else if (stmt_has_ident(stmt, "enum")) {
        kind = ScopeKind::Enum;
      } else if (stmt_has_ident(stmt, "class") ||
                 stmt_has_ident(stmt, "struct") ||
                 stmt_has_ident(stmt, "union")) {
        kind = ScopeKind::Class;
      } else if (stmt_has_punct(stmt, "(")) {
        kind = ScopeKind::Function;
      } else if (!stmt.empty()) {
        // Brace-initialized variable or member.
        kind = ScopeKind::Block;
        var_init = true;
      }
      if (kind == ScopeKind::Class) {
        classes.push_back(parse_class_head(stmt));
      } else if (parent == ScopeKind::Class && !classes.empty()) {
        if (kind == ScopeKind::Function || var_init)
          record_class_stmt(stmt, classes.back());
      } else if (parent == ScopeKind::Namespace && var_init) {
        check_namespace_stmt(stmt, label, opt, out);
      }
      scopes.push_back(kind);
      stmt.clear();
      continue;
    }
    if (t.kind == Token::Punct && t.text == "}") {
      if (scopes.back() == ScopeKind::Class && !classes.empty()) {
        finalize_class(classes.back(), label, out);
        classes.pop_back();
      }
      if (scopes.size() > 1) scopes.pop_back();
      stmt.clear();
      continue;
    }
    if (t.kind == Token::Punct && t.text == ";") {
      if (scopes.back() == ScopeKind::Class && !classes.empty())
        record_class_stmt(stmt, classes.back());
      else if (scopes.back() == ScopeKind::Namespace)
        check_namespace_stmt(stmt, label, opt, out);
      stmt.clear();
      continue;
    }
    stmt.push_back(t);
  }
}

// ---------------------------------------------------------------------------
// Pass 1 — per-file extraction for the cross-TU SymbolIndex
//
// A second scope walk (shared shape with scan_r3_r4, but recording instead
// of judging) collects classes with typed members, enums with enumerators,
// and function definitions with call edges and candidate blocking sites.
// The walker also understands two shapes the rule pass can ignore:
//   * lambda bodies opened inside an argument list (possibly handed to the
//     thread pool — those become pool-root pseudo-functions for R11), and
//   * brace-init subexpressions inside parentheses (e.g. the
//     `decltype(fn(std::size_t{0}))` in parallel_map's return type), which
//     must NOT terminate the surrounding declarator statement.
// ---------------------------------------------------------------------------

struct FileExtract {
  std::vector<IndexedClass> classes;
  std::vector<IndexedEnum> enums;
  std::vector<IndexedFunction> functions;
  std::set<std::string> ns_atomics;
  /// Mutex member names in source order across ALL classes in the file —
  /// the R8 lock hierarchy. (Classes land in `classes` in scope-pop order,
  /// which puts nested classes before their enclosing class; ranking must
  /// follow the source instead.)
  std::vector<std::string> mutex_order;
};

const std::unordered_set<std::string>& mutex_types() {
  static const std::unordered_set<std::string> s = {
      "mutex",       "shared_mutex",           "recursive_mutex",
      "timed_mutex", "recursive_timed_mutex",  "shared_timed_mutex"};
  return s;
}

// After `stmt[i]` names a template type, returns the index just past its
// (optional) <...> argument list.
std::size_t skip_angles(const std::vector<Token>& stmt, std::size_t i) {
  if (i >= stmt.size() || stmt[i].kind != Token::Punct || stmt[i].text != "<")
    return i;
  int depth = 0;
  for (; i < stmt.size(); ++i) {
    if (stmt[i].kind != Token::Punct) continue;
    if (stmt[i].text == "<") ++depth;
    else if (stmt[i].text == ">") {
      if (--depth == 0) return i + 1;
    } else if (stmt[i].text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    }
  }
  return i;
}

// Records one class-scope declaration into the class record: a
// function-pointer field, a method, or a typed data member.
void record_member(const std::vector<Token>& stmt, IndexedClass& c) {
  if (stmt.empty()) return;
  // Function-pointer field: `ret (*name)(args...)`.
  for (std::size_t i = 0; i + 3 < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Punct && stmt[i].text == "(" &&
        stmt[i + 1].kind == Token::Punct && stmt[i + 1].text == "*" &&
        stmt[i + 2].kind == Token::Ident && stmt[i + 3].kind == Token::Punct &&
        stmt[i + 3].text == ")") {
      c.fnptr_members.push_back(stmt[i + 2].text);
      return;
    }
  }
  // Method: identifier immediately before the first '('.
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    if (stmt[i].kind == Token::Punct && stmt[i].text == "(") {
      if (i > 0 && stmt[i - 1].kind == Token::Ident)
        c.methods.insert(stmt[i - 1].text);
      return;
    }
  }
  // Typed data member: find the type keyword at angle depth 0, skip its
  // template arguments, take the next identifier as the member name.
  int angle = 0;
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const Token& t = stmt[i];
    if (t.kind == Token::Punct) {
      if (t.text == "<") ++angle;
      else if (t.text == ">") angle = std::max(0, angle - 1);
      else if (t.text == ">>") angle = std::max(0, angle - 2);
      continue;
    }
    if (t.kind != Token::Ident || angle != 0) continue;
    const std::string& ty = t.text;
    enum class M { Mutex, Cv, Atomic, Future, Rng, None } m = M::None;
    if (mutex_types().count(ty)) m = M::Mutex;
    else if (ty == "condition_variable" || ty == "condition_variable_any")
      m = M::Cv;
    else if (ty == "atomic") m = M::Atomic;
    else if (ty == "future" || ty == "shared_future") m = M::Future;
    else if (ty == "Rng" || ty == "NoiseSource") m = M::Rng;
    if (m == M::None) continue;
    std::size_t j = skip_angles(stmt, i + 1);
    for (; j < stmt.size(); ++j) {
      if (stmt[j].kind == Token::Ident) {
        const std::string& name = stmt[j].text;
        switch (m) {
          case M::Mutex: c.mutex_members.push_back(name); break;
          case M::Cv: c.cv_members.insert(name); break;
          case M::Atomic: c.atomic_members.insert(name); break;
          case M::Future: c.future_members.insert(name); break;
          case M::Rng: c.rng_members.insert(name); break;
          case M::None: break;
        }
        return;
      }
      if (stmt[j].kind == Token::Punct && stmt[j].text != "*" &&
          stmt[j].text != "&" && stmt[j].text != "::")
        break;
    }
    return;
  }
}

// Is the pending statement a lambda introducer whose body brace we just
// hit? True when the last '[' in the statement has a matching ']' that is
// followed by '(' (parameter list) or nothing (terse lambda). `pool_pos`
// receives the position of the '[' so callers can look left for a pool
// hand-off identifier.
bool lambda_shape(const std::vector<Token>& stmt, std::size_t* bracket_pos) {
  std::size_t open = stmt.size();
  for (std::size_t i = 0; i < stmt.size(); ++i)
    if (stmt[i].kind == Token::Punct && stmt[i].text == "[") open = i;
  if (open == stmt.size()) return false;
  int depth = 0;
  std::size_t close = stmt.size();
  for (std::size_t i = open; i < stmt.size(); ++i) {
    if (stmt[i].kind != Token::Punct) continue;
    if (stmt[i].text == "[") ++depth;
    else if (stmt[i].text == "]") {
      if (--depth == 0) {
        close = i;
        break;
      }
    }
  }
  if (close == stmt.size()) return false;
  if (close + 1 < stmt.size()) {
    const Token& after = stmt[close + 1];
    if (!(after.kind == Token::Punct && after.text == "(")) return false;
  }
  // A subscript like `slots[i]` would have an identifier directly before
  // the '['; a lambda introducer never does.
  if (open > 0 && stmt[open - 1].kind == Token::Ident) return false;
  if (open > 0 && stmt[open - 1].kind == Token::Punct &&
      (stmt[open - 1].text == "]" || stmt[open - 1].text == ")"))
    return false;
  if (bracket_pos) *bracket_pos = open;
  return true;
}

bool pool_handoff_before(const std::vector<Token>& stmt, std::size_t pos) {
  static const std::unordered_set<std::string> pool = {
      "parallel_for", "parallel_map", "submit"};
  for (std::size_t i = 0; i < pos; ++i)
    if (stmt[i].kind == Token::Ident && pool.count(stmt[i].text)) return true;
  return false;
}

FileExtract extract_file(const std::string& label, const Lexed& lx) {
  FileExtract out;
  const auto& toks = lx.tokens;

  std::vector<ScopeKind> scopes = {ScopeKind::Namespace};
  std::vector<IndexedClass> class_stack;
  std::vector<IndexedEnum> enum_stack;
  struct OpenFn {
    IndexedFunction fn;
    std::size_t depth;  // scopes.size() while the body is open
  };
  std::vector<OpenFn> fn_stack;
  std::vector<Token> stmt;
  int stmt_paren = 0;

  static const std::unordered_set<std::string> kNotACall = {
      "if",       "for",      "while",    "switch",   "return",
      "sizeof",   "catch",    "alignof",  "decltype", "noexcept",
      "assert",   "static_assert",        "defined",  "alignas",
      "co_await", "co_return", "co_yield", "throw"};

  auto reset_stmt = [&] {
    stmt.clear();
    stmt_paren = 0;
  };

  auto record_class_member = [&](const std::vector<Token>& s) {
    IndexedClass& c = class_stack.back();
    std::size_t before = c.mutex_members.size();
    record_member(s, c);
    if (c.mutex_members.size() > before)
      out.mutex_order.push_back(c.mutex_members.back());
  };

  auto close_fn_if_done = [&](int line) {
    while (!fn_stack.empty() && scopes.size() < fn_stack.back().depth) {
      fn_stack.back().fn.end_line = line;
      out.functions.push_back(std::move(fn_stack.back().fn));
      fn_stack.pop_back();
    }
  };

  auto record_local_future = [&](const std::vector<Token>& s) {
    if (fn_stack.empty()) return;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i].kind == Token::Ident &&
          (s[i].text == "future" || s[i].text == "shared_future")) {
        std::size_t j = skip_angles(s, i + 1);
        if (j < s.size() && s[j].kind == Token::Ident)
          fn_stack.back().fn.local_futures.insert(s[j].text);
        return;
      }
    }
  };

  auto record_ns_atomic = [&](const std::vector<Token>& s) {
    bool has_atomic = false;
    for (const auto& t : s)
      if (t.kind == Token::Ident && t.text == "atomic") has_atomic = true;
    if (!has_atomic || stmt_has_punct(s, "(")) return;
    // Declared name = last identifier of the declaration head.
    for (std::size_t i = s.size(); i-- > 0;) {
      if (s[i].kind == Token::Ident) {
        out.ns_atomics.insert(s[i].text);
        return;
      }
      if (s[i].kind == Token::Punct && s[i].text == "=") continue;
    }
  };

  auto make_enum = [&](const std::vector<Token>& s) {
    IndexedEnum e;
    e.file = label;
    e.line = s.empty() ? 0 : s.front().line;
    bool after_enum = false;
    for (const auto& t : s) {
      if (t.kind != Token::Ident) {
        // ':' starts the underlying-type clause; stop before it.
        if (after_enum && t.kind == Token::Punct && t.text == ":") break;
        continue;
      }
      if (t.text == "enum") {
        after_enum = true;
        e.line = t.line;
        continue;
      }
      if (!after_enum || t.text == "class" || t.text == "struct") continue;
      e.name = t.text;
      break;
    }
    return e;
  };

  auto make_class = [&](const std::vector<Token>& s) {
    ClassInfo ci = parse_class_head(s);
    IndexedClass c;
    c.file = label;
    c.line = ci.line;
    c.name = ci.name;
    c.bases = ci.bases;
    return c;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    // Call edges, CAS markers and blocking candidates are recorded against
    // the innermost open function as tokens stream by.
    if (!fn_stack.empty() && t.kind == Token::Punct && t.text == "(" &&
        i > 0 && toks[i - 1].kind == Token::Ident) {
      IndexedFunction& fn = fn_stack.back().fn;
      const std::string& callee = toks[i - 1].text;
      if (!kNotACall.count(callee)) fn.calls.insert(callee);
      if (callee == "compare_exchange_strong" ||
          callee == "compare_exchange_weak" || callee == "call_once")
        fn.has_cas = true;
      if (callee == "wait" || callee == "get" || callee == "sleep_for" ||
          callee == "sleep_until" || callee == "waitpid") {
        IndexedFunction::BlockingSite site;
        site.line = toks[i - 1].line;
        site.col = toks[i - 1].col;
        site.method = callee;
        if (i >= 3 && toks[i - 2].kind == Token::Punct &&
            (toks[i - 2].text == "." || toks[i - 2].text == "->") &&
            toks[i - 3].kind == Token::Ident) {
          site.receiver = toks[i - 3].text;
          site.what = site.receiver + toks[i - 2].text + callee;
        } else {
          site.what = callee;
        }
        // A member-less `wait(`/`get(` is some unrelated free function;
        // only sleeps and process reaps block unconditionally without a
        // receiver.
        if (!site.receiver.empty() || callee == "sleep_for" ||
            callee == "sleep_until" || callee == "waitpid")
          fn.blocking.push_back(std::move(site));
      }
    }

    if (t.kind == Token::Punct && t.text == "(") {
      ++stmt_paren;
      stmt.push_back(t);
      continue;
    }
    if (t.kind == Token::Punct && t.text == ")") {
      stmt_paren = std::max(0, stmt_paren - 1);
      stmt.push_back(t);
      continue;
    }

    if (t.kind == Token::Punct && t.text == "{") {
      std::size_t bracket = 0;
      if (scopes.back() == ScopeKind::Init) {
        // Nested brace inside an init subexpression.
        scopes.push_back(ScopeKind::Init);
        continue;
      }
      if (lambda_shape(stmt, &bracket)) {
        bool pooled = pool_handoff_before(stmt, bracket);
        scopes.push_back(ScopeKind::Function);
        if (pooled) {
          OpenFn of;
          of.fn.file = label;
          of.fn.line = t.line;
          of.fn.name = "<pool-lambda>";
          of.fn.pool_root = true;
          of.depth = scopes.size();
          fn_stack.push_back(std::move(of));
        }
        reset_stmt();
        continue;
      }
      if (stmt_paren > 0) {
        // Brace-init inside parentheses (decltype(T{0}), f(Agg{...})):
        // inert scope; the surrounding declarator keeps accumulating.
        scopes.push_back(ScopeKind::Init);
        continue;
      }
      ScopeKind parent = scopes.back();
      ScopeKind kind = ScopeKind::Block;
      if (parent == ScopeKind::Function || parent == ScopeKind::Block) {
        kind = ScopeKind::Function;
      } else if (stmt_has_ident(stmt, "namespace") ||
                 (stmt_has_ident(stmt, "extern") && stmt.size() == 1)) {
        kind = ScopeKind::Namespace;
      } else if (stmt_has_ident(stmt, "enum")) {
        kind = ScopeKind::Enum;
        enum_stack.push_back(make_enum(stmt));
      } else if (stmt_has_ident(stmt, "class") ||
                 stmt_has_ident(stmt, "struct") ||
                 stmt_has_ident(stmt, "union")) {
        kind = ScopeKind::Class;
        class_stack.push_back(make_class(stmt));
      } else if (stmt_has_punct(stmt, "(")) {
        kind = ScopeKind::Function;
        // A '(' statement at namespace/class scope opening a brace is a
        // function definition: name = identifier before the first '('.
        std::string name;
        int line = stmt.empty() ? t.line : stmt.front().line;
        for (std::size_t k = 0; k < stmt.size(); ++k) {
          if (stmt[k].kind == Token::Punct && stmt[k].text == "(") {
            if (k > 0 && stmt[k - 1].kind == Token::Ident) {
              name = stmt[k - 1].text;
              line = stmt[k - 1].line;
            }
            break;
          }
        }
        if (!name.empty()) {
          if (parent == ScopeKind::Class && !class_stack.empty())
            class_stack.back().methods.insert(name);
          OpenFn of;
          of.fn.file = label;
          of.fn.line = line;
          of.fn.name = name;
          of.fn.pool_root = (name == "consume");
          of.depth = scopes.size() + 1;
          fn_stack.push_back(std::move(of));
        }
      } else if (!stmt.empty()) {
        kind = ScopeKind::Block;
        if (parent == ScopeKind::Class && !class_stack.empty())
          record_class_member(stmt);
        else if (parent == ScopeKind::Namespace)
          record_ns_atomic(stmt);
      }
      scopes.push_back(kind);
      reset_stmt();
      continue;
    }

    if (t.kind == Token::Punct && t.text == "}") {
      if (scopes.back() == ScopeKind::Init) {
        scopes.pop_back();
        continue;  // declarator keeps accumulating; stmt untouched
      }
      if (scopes.back() == ScopeKind::Class && !class_stack.empty()) {
        out.classes.push_back(std::move(class_stack.back()));
        class_stack.pop_back();
      } else if (scopes.back() == ScopeKind::Enum && !enum_stack.empty()) {
        // Flush the trailing enumerator (no comma after the last one).
        for (const auto& s : stmt) {
          if (s.kind == Token::Ident) {
            enum_stack.back().enumerators.push_back(s.text);
            break;
          }
        }
        out.enums.push_back(std::move(enum_stack.back()));
        enum_stack.pop_back();
      }
      if (scopes.size() > 1) scopes.pop_back();
      close_fn_if_done(t.line);
      reset_stmt();
      continue;
    }

    if (scopes.back() == ScopeKind::Enum && t.kind == Token::Punct &&
        t.text == "," && stmt_paren == 0) {
      for (const auto& s : stmt) {
        if (s.kind == Token::Ident) {
          enum_stack.back().enumerators.push_back(s.text);
          break;
        }
      }
      reset_stmt();
      continue;
    }

    if (t.kind == Token::Punct && t.text == ";" && stmt_paren == 0) {
      if (scopes.back() == ScopeKind::Class && !class_stack.empty())
        record_class_member(stmt);
      else if (scopes.back() == ScopeKind::Namespace)
        record_ns_atomic(stmt);
      else
        record_local_future(stmt);
      reset_stmt();
      continue;
    }

    stmt.push_back(t);
  }
  close_fn_if_done(toks.empty() ? 0 : toks.back().line);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// build_index
// ---------------------------------------------------------------------------

SymbolIndex build_index(const std::vector<SourceFile>& sources,
                        const std::vector<SourceFile>& test_sources,
                        const Options& opt) {
  (void)opt;
  SymbolIndex idx;

  struct PerFile {
    FileExtract extract;
    std::map<int, std::set<std::string>> waivers;
  };
  auto extracted =
      util::parallel_map(sources.size(), [&](std::size_t i) {
        PerFile pf;
        Lexed lx = lex(sources[i].content);
        pf.extract = extract_file(sources[i].label, lx);
        for (const auto& [line, w] : lx.waivers)
          if (!w.rules.empty() && w.has_reason) pf.waivers[line] = w.rules;
        return pf;
      });

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const std::string& label = sources[i].label;
    PerFile& pf = extracted[i];
    if (!pf.waivers.empty()) idx.waivers[label] = std::move(pf.waivers);
    if (!pf.extract.ns_atomics.empty())
      idx.ns_atomics[label] = std::move(pf.extract.ns_atomics);

    // The R8 hierarchy ranks mutexes by source position within the file
    // (mutex_order), not by class pop order.
    int rank = 0;
    for (const auto& m : pf.extract.mutex_order) {
      idx.mutex_names.insert(m);
      if (!idx.mutex_rank.count(m)) idx.mutex_rank[m] = {label, rank};
      ++rank;
    }
    for (auto& c : pf.extract.classes) {
      idx.cv_names.insert(c.cv_members.begin(), c.cv_members.end());
      idx.atomic_names.insert(c.atomic_members.begin(),
                              c.atomic_members.end());
      idx.future_names.insert(c.future_members.begin(),
                              c.future_members.end());
      idx.rng_names.insert(c.rng_members.begin(), c.rng_members.end());
      idx.classes.push_back(std::move(c));
    }
    for (auto& e : pf.extract.enums) idx.enums.push_back(std::move(e));
    for (auto& f : pf.extract.functions) idx.functions.push_back(std::move(f));
  }

  auto test_sets =
      util::parallel_map(test_sources.size(), [&](std::size_t i) {
        std::set<std::string> idents;
        Lexed lx = lex(test_sources[i].content);
        for (const auto& t : lx.tokens)
          if (t.kind == Token::Ident) idents.insert(t.text);
        return idents;
      });
  for (std::size_t i = 0; i < test_sources.size(); ++i)
    idx.test_idents[test_sources[i].label] = std::move(test_sets[i]);

  return idx;
}

namespace {

// ---------------------------------------------------------------------------
// R8 — lock discipline (service/, util/thread_pool)
//
// Tracks live RAII guards through a linear token walk with brace depth.
// Three checks: bare .lock()/.unlock()/.try_lock() on a mutex member,
// out-of-declaration-order nesting for mutexes declared in the same file,
// and any extra lock held across a condition-variable .wait() (beyond the
// wait's own lock) or a future .get()/.wait().
// ---------------------------------------------------------------------------

void scan_r8(const std::string& label, const Lexed& lx, const Options& opt,
             const SymbolIndex& idx, std::vector<Finding>& out) {
  if (!label_contains_any(label, opt.lock_scope)) return;
  const auto& toks = lx.tokens;
  static const std::unordered_set<std::string> guard_types = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  struct Guard {
    std::string var;
    std::vector<std::string> mutexes;
    int depth;
    bool released = false;
  };
  std::vector<Guard> guards;
  std::set<std::string> local_futures;
  int depth = 0;

  auto held = [&]() {
    std::vector<const Guard*> h;
    for (const auto& g : guards)
      if (!g.released && !g.mutexes.empty()) h.push_back(&g);
    return h;
  };

  // Token-level skip over a <...> template argument list.
  auto after_angles = [&](std::size_t i) {
    if (i >= toks.size() || toks[i].kind != Token::Punct ||
        toks[i].text != "<")
      return i;
    int a = 0;
    for (; i < toks.size(); ++i) {
      if (toks[i].kind != Token::Punct) continue;
      if (toks[i].text == "<") ++a;
      else if (toks[i].text == ">" && --a == 0) return i + 1;
    }
    return i;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Punct && t.text == "{") {
      ++depth;
      continue;
    }
    if (t.kind == Token::Punct && t.text == "}") {
      depth = std::max(0, depth - 1);
      while (!guards.empty() && guards.back().depth > depth) guards.pop_back();
      continue;
    }
    if (t.kind != Token::Ident) continue;

    // Function-local future declarations type later .get()/.wait() calls.
    if (t.text == "future" || t.text == "shared_future") {
      std::size_t j = after_angles(i + 1);
      if (j < toks.size() && toks[j].kind == Token::Ident)
        local_futures.insert(toks[j].text);
      continue;
    }

    // Guard declaration: guard_type [<...>] var ( mutex [, mutex...] )
    if (guard_types.count(t.text)) {
      std::size_t j = after_angles(i + 1);
      if (j >= toks.size() || toks[j].kind != Token::Ident) continue;
      Guard g;
      g.var = toks[j].text;
      g.depth = depth;
      ++j;
      if (j < toks.size() && toks[j].kind == Token::Punct &&
          (toks[j].text == "(" || toks[j].text == "{")) {
        const std::string close = toks[j].text == "(" ? ")" : "}";
        const std::string open = toks[j].text;
        int pd = 0;
        for (; j < toks.size(); ++j) {
          if (toks[j].kind == Token::Punct) {
            if (toks[j].text == open) ++pd;
            else if (toks[j].text == close && --pd == 0) break;
          }
          if (toks[j].kind == Token::Ident && idx.mutex_names.count(toks[j].text))
            g.mutexes.push_back(toks[j].text);
        }
      }
      // Declaration-order check against every guard already held. Mutexes
      // acquired together by one scoped_lock are exempt from mutual
      // ordering (std::scoped_lock deadlock-avoids internally).
      for (const auto& m : g.mutexes) {
        auto mr = idx.mutex_rank.find(m);
        if (mr == idx.mutex_rank.end()) continue;
        for (const Guard* hg : held()) {
          for (const auto& l : hg->mutexes) {
            auto lr = idx.mutex_rank.find(l);
            if (lr == idx.mutex_rank.end()) continue;
            if (lr->second.first != mr->second.first) continue;  // other file
            if (mr->second.second < lr->second.second) {
              out.push_back(
                  {label, t.line, t.col, "R8",
                   "mutex '" + m + "' acquired while holding '" + l +
                       "' reverses the declaration order of " +
                       mr->second.first +
                       "; nested acquisition must follow the declared "
                       "per-file lock hierarchy"});
            }
          }
        }
      }
      guards.push_back(std::move(g));
      continue;
    }

    // Method calls: X.m( ...
    if (i + 2 < toks.size() && toks[i + 1].kind == Token::Punct &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        toks[i + 2].kind == Token::Ident && i + 3 < toks.size() &&
        toks[i + 3].kind == Token::Punct && toks[i + 3].text == "(") {
      const std::string& recv = t.text;
      const std::string& method = toks[i + 2].text;
      const Token& mt = toks[i + 2];

      // Guard var manual release / re-acquire tracking (unique_lock).
      bool is_guard_var = false;
      for (auto& g : guards) {
        if (g.var != recv) continue;
        is_guard_var = true;
        if (method == "unlock") g.released = true;
        else if (method == "lock" || method == "try_lock") g.released = false;
      }
      if (is_guard_var && (method == "lock" || method == "unlock" ||
                           method == "try_lock"))
        continue;

      if (idx.mutex_names.count(recv) &&
          (method == "lock" || method == "unlock" || method == "try_lock")) {
        out.push_back(
            {label, mt.line, mt.col, "R8",
             "bare '" + recv + "." + method +
                 "()' on a mutex member; acquire through a RAII guard "
                 "(lock_guard/unique_lock/scoped_lock) so every exit path "
                 "releases it"});
        continue;
      }

      if (idx.cv_names.count(recv) && method == "wait") {
        // Own lock = the guard named by the wait's first argument.
        std::string own;
        if (i + 4 < toks.size() && toks[i + 4].kind == Token::Ident)
          own = toks[i + 4].text;
        for (const Guard* hg : held()) {
          if (hg->var == own) continue;
          out.push_back(
              {label, mt.line, mt.col, "R8",
               "condition-variable wait on '" + recv +
                   "' while also holding '" + hg->var + "' (guarding " +
                   join_fragments(hg->mutexes) +
                   "); a waiter parked with a second lock held is the "
                   "single-flight deadlock shape — release it first"});
        }
        continue;
      }

      if ((method == "get" || method == "wait") &&
          (idx.future_names.count(recv) || local_futures.count(recv))) {
        for (const Guard* hg : held()) {
          out.push_back(
              {label, mt.line, mt.col, "R8",
               "future ." + method + "() on '" + recv +
                   "' while holding '" + hg->var +
                   "'; the completing thread may need that lock — release "
                   "it before blocking on the result"});
        }
        continue;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R9 — RNG stream hygiene in pool tasks
//
// Finds lambdas handed to parallel_for/parallel_map/submit and flags any
// use of a parent Rng/NoiseSource stream inside the body other than
// forking it. Parent streams are RNG members (from the index) plus
// file-local Rng declarations; names bound to a .fork()/.fork_noise()
// result are safe, as are streams declared inside the body itself.
// ---------------------------------------------------------------------------

void scan_r9(const std::string& label, const Lexed& lx,
             const SymbolIndex& idx, std::vector<Finding>& out) {
  const auto& toks = lx.tokens;
  static const std::unordered_set<std::string> pool_fns = {
      "parallel_for", "parallel_map", "submit"};

  // Pre-pass: file-local parent streams and fork-result names.
  std::set<std::string> parents;
  std::set<std::string> safe;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Ident) continue;
    if ((toks[i].text == "Rng" || toks[i].text == "NoiseSource") &&
        toks[i + 1].kind == Token::Ident &&
        !(i > 0 && toks[i - 1].kind == Token::Punct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->"))) {
      parents.insert(toks[i + 1].text);
      continue;
    }
    if ((toks[i].text == "fork" || toks[i].text == "fork_noise") && i >= 4 &&
        toks[i - 1].kind == Token::Punct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
        toks[i - 2].kind == Token::Ident && toks[i - 3].kind == Token::Punct &&
        toks[i - 3].text == "=" && toks[i - 4].kind == Token::Ident) {
      safe.insert(toks[i - 4].text);
    }
  }

  auto is_parent = [&](const std::string& name) {
    return (idx.rng_names.count(name) || parents.count(name)) &&
           !safe.count(name);
  };

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Ident || !pool_fns.count(toks[i].text))
      continue;
    if (!(toks[i + 1].kind == Token::Punct && toks[i + 1].text == "("))
      continue;
    // Find the lambda's capture list inside the call's argument list.
    std::size_t j = i + 1;
    int pd = 0;
    std::size_t cap_open = 0, cap_close = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].kind != Token::Punct) continue;
      if (toks[j].text == "(") ++pd;
      else if (toks[j].text == ")") {
        if (--pd == 0) break;
      } else if (toks[j].text == "[" && cap_open == 0) {
        cap_open = j;
        int bd = 0;
        for (std::size_t k = j; k < toks.size(); ++k) {
          if (toks[k].kind != Token::Punct) continue;
          if (toks[k].text == "[") ++bd;
          else if (toks[k].text == "]" && --bd == 0) {
            cap_close = k;
            break;
          }
        }
        break;
      }
    }
    if (cap_open == 0 || cap_close == 0) continue;
    bool by_ref = false;
    std::set<std::string> explicit_ref;  // [&x] / [x] named captures
    for (std::size_t k = cap_open + 1; k < cap_close; ++k) {
      if (toks[k].kind == Token::Punct && toks[k].text == "&") by_ref = true;
      if (toks[k].kind == Token::Ident && toks[k].text == "this")
        by_ref = true;
      if (toks[k].kind == Token::Ident && k > cap_open + 1 &&
          toks[k - 1].kind == Token::Punct && toks[k - 1].text == "&")
        explicit_ref.insert(toks[k].text);
    }
    if (!by_ref) continue;
    // Body: first '{' after the capture list (skipping a parameter list).
    std::size_t body_open = 0;
    for (std::size_t k = cap_close + 1; k < toks.size(); ++k) {
      if (toks[k].kind == Token::Punct && toks[k].text == "{") {
        body_open = k;
        break;
      }
      if (toks[k].kind == Token::Punct && toks[k].text == ";") break;
    }
    if (body_open == 0) continue;
    int bd = 0;
    std::size_t body_close = toks.size();
    for (std::size_t k = body_open; k < toks.size(); ++k) {
      if (toks[k].kind != Token::Punct) continue;
      if (toks[k].text == "{") ++bd;
      else if (toks[k].text == "}" && --bd == 0) {
        body_close = k;
        break;
      }
    }

    std::set<std::string> body_safe;  // forked or declared inside the body
    for (std::size_t k = body_open; k < body_close; ++k) {
      const Token& t = toks[k];
      if (t.kind != Token::Ident) continue;
      if ((t.text == "Rng" || t.text == "NoiseSource") && k + 1 < body_close &&
          toks[k + 1].kind == Token::Ident) {
        body_safe.insert(toks[k + 1].text);
        continue;
      }
      if ((t.text == "fork" || t.text == "fork_noise") && k >= 4 &&
          toks[k - 3].kind == Token::Punct && toks[k - 3].text == "=" &&
          toks[k - 4].kind == Token::Ident) {
        body_safe.insert(toks[k - 4].text);
        continue;
      }
      if (!is_parent(t.text) || body_safe.count(t.text)) continue;
      // Parent stream use inside the body: member call or address-of.
      if (k + 2 < body_close && toks[k + 1].kind == Token::Punct &&
          (toks[k + 1].text == "." || toks[k + 1].text == "->") &&
          toks[k + 2].kind == Token::Ident) {
        const std::string& method = toks[k + 2].text;
        if (method == "fork" || method == "fork_noise") continue;
        out.push_back(
            {label, t.line, t.col, "R9",
             "parent RNG stream '" + t.text + "' drawn inside a pool task "
             "('." + method +
                 "'); the draw order would depend on the schedule — "
                 "capture a fork()/fork_noise() result instead"});
        continue;
      }
      if (k > 0 && toks[k - 1].kind == Token::Punct &&
          toks[k - 1].text == "&" && k >= 2 &&
          toks[k - 2].kind == Token::Punct &&
          (toks[k - 2].text == "(" || toks[k - 2].text == ",")) {
        out.push_back(
            {label, t.line, t.col, "R9",
             "parent RNG stream '" + t.text + "' passed by address out of "
             "a pool task; hand the callee a fork()/fork_noise() stream "
             "instead"});
      }
    }
    (void)explicit_ref;
  }
}

// ---------------------------------------------------------------------------
// R10 — atomics discipline
// ---------------------------------------------------------------------------

void scan_r10(const std::string& label, const Lexed& lx, const Options& opt,
              const SymbolIndex& idx, std::vector<Finding>& out) {
  const auto& toks = lx.tokens;
  static const std::unordered_set<std::string> atomic_ops = {
      "load",        "store",       "exchange",
      "fetch_add",   "fetch_sub",   "fetch_and",
      "fetch_or",    "fetch_xor",   "compare_exchange_strong",
      "compare_exchange_weak"};

  // Atomic names visible anywhere (for the explicit-order check on method
  // calls — the op names are distinctive enough to type the receiver).
  std::set<std::string> all_atomics = idx.atomic_names;
  for (const auto& [file, names] : idx.ns_atomics)
    all_atomics.insert(names.begin(), names.end());

  // Names whose implicit ops we police in THIS file: its own
  // namespace-scope atomics plus atomic members of classes it declares.
  std::set<std::string> implicit_set;
  if (auto it = idx.ns_atomics.find(label); it != idx.ns_atomics.end())
    implicit_set.insert(it->second.begin(), it->second.end());
  for (const auto& c : idx.classes)
    if (c.file == label)
      implicit_set.insert(c.atomic_members.begin(), c.atomic_members.end());

  const bool write_once = label_contains_any(label, opt.write_once_allowlist);
  const std::set<std::string>* own_ns = nullptr;
  if (auto it = idx.ns_atomics.find(label); it != idx.ns_atomics.end())
    own_ns = &it->second;

  auto enclosing_has_cas = [&](int line) {
    const IndexedFunction* best = nullptr;
    for (const auto& fn : idx.functions) {
      if (fn.file != label || line < fn.line || line > fn.end_line) continue;
      if (!best || fn.line > best->line) best = &fn;
    }
    return best ? best->has_cas : false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Ident) continue;

    // Explicit-order check: X.op( ... must mention a memory_order_*.
    if (i + 2 < toks.size() && toks[i + 1].kind == Token::Punct &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        toks[i + 2].kind == Token::Ident && atomic_ops.count(toks[i + 2].text) &&
        i + 3 < toks.size() && toks[i + 3].kind == Token::Punct &&
        toks[i + 3].text == "(" && all_atomics.count(t.text)) {
      const Token& op = toks[i + 2];
      int pd = 0;
      bool has_order = false;
      for (std::size_t k = i + 3; k < toks.size(); ++k) {
        if (toks[k].kind == Token::Punct) {
          if (toks[k].text == "(") ++pd;
          else if (toks[k].text == ")" && --pd == 0) break;
        } else if (toks[k].kind == Token::Ident &&
                   toks[k].text.rfind("memory_order", 0) == 0) {
          has_order = true;
        }
      }
      if (!has_order) {
        out.push_back(
            {label, op.line, op.col, "R10",
             "atomic ." + op.text + "() on '" + t.text +
                 "' without an explicit std::memory_order; implicit "
                 "seq_cst hides the intended ordering contract"});
      }
      if (write_once && op.text == "store" && own_ns && own_ns->count(t.text) &&
          !enclosing_has_cas(op.line)) {
        out.push_back(
            {label, op.line, op.col, "R10",
             "plain .store() to write-once state '" + t.text +
                 "' outside a compare_exchange/call_once claim path; "
                 "racing writers could publish different values"});
      }
      i += 2;
      continue;
    }

    if (!implicit_set.count(t.text)) continue;
    if (i > 0) {
      const Token& p = toks[i - 1];
      if (p.kind == Token::Ident) continue;  // declaration: `atomic<T> X`
      if (p.kind == Token::Punct &&
          (p.text == ">" || p.text == "::" || p.text == "*" || p.text == "&"))
        continue;
    }
    if (i + 1 >= toks.size() || toks[i + 1].kind != Token::Punct) continue;
    const std::string& nx = toks[i + 1].text;
    bool implicit = false;
    std::string shape;
    if (nx == "=" &&
        !(i + 2 < toks.size() && toks[i + 2].kind == Token::Punct &&
          toks[i + 2].text == "=")) {
      implicit = true;
      shape = t.text + " = ...";
    } else if ((nx == "+" || nx == "-" || nx == "&" || nx == "|" ||
                nx == "^") &&
               i + 2 < toks.size() && toks[i + 2].kind == Token::Punct &&
               toks[i + 2].text == "=") {
      implicit = true;
      shape = t.text + " " + nx + "= ...";
    } else if ((nx == "+" && i + 2 < toks.size() &&
                toks[i + 2].kind == Token::Punct && toks[i + 2].text == "+") ||
               (nx == "-" && i + 2 < toks.size() &&
                toks[i + 2].kind == Token::Punct && toks[i + 2].text == "-")) {
      implicit = true;
      shape = t.text + nx + nx;
    }
    if (!implicit && i >= 2 && toks[i - 1].kind == Token::Punct &&
        toks[i - 2].kind == Token::Punct) {
      // Pre-increment / pre-decrement: ++X / --X.
      const std::string& a = toks[i - 2].text;
      const std::string& b = toks[i - 1].text;
      if ((a == "+" && b == "+") || (a == "-" && b == "-")) {
        implicit = true;
        shape = a + b + t.text;
      }
    }
    if (implicit) {
      out.push_back(
          {label, t.line, t.col, "R10",
           "implicit seq_cst operation '" + shape + "' on atomic '" +
               t.text +
               "'; spell the access (.store/.load/.fetch_add) with an "
               "explicit std::memory_order"});
    }
  }
}

// ---------------------------------------------------------------------------
// Waiver application
// ---------------------------------------------------------------------------

std::vector<Finding> apply_waivers(const std::string& label,
                                   std::vector<Finding> findings,
                                   const std::map<int, Waiver>& waivers,
                                   ScanStats* stats) {
  std::vector<Finding> out;
  for (auto& f : findings) {
    auto it = waivers.find(f.line);
    if (it != waivers.end() && !it->second.rules.empty() &&
        it->second.has_reason && it->second.rules.count(f.rule)) {
      if (stats) ++stats->waived[f.rule];
      continue;
    }
    out.push_back(std::move(f));
  }
  for (const auto& [line, w] : waivers) {
    if (!w.rules.empty() && w.has_reason) continue;
    std::string msg =
        w.rules.empty()
            ? "malformed waiver: expected 'gdelay-audit: allow(RULE[,RULE]) "
              "reason'"
            : "waiver without a justification: every allow() must carry a "
              "one-line reason";
    out.push_back({label, line, 0, "waiver", std::move(msg)});
  }
  return out;
}

void sort_findings(std::vector<Finding>& fs) {
  std::sort(fs.begin(), fs.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
}

bool waived_in_index(const SymbolIndex& idx, const Finding& f) {
  auto fit = idx.waivers.find(f.file);
  if (fit == idx.waivers.end()) return false;
  auto lit = fit->second.find(f.line);
  return lit != fit->second.end() && lit->second.count(f.rule) > 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// scan_global — R11 blocking-call reachability, R12 contract coverage
// ---------------------------------------------------------------------------

std::vector<Finding> scan_global(const SymbolIndex& idx, const Options& opt,
                                 ScanStats* stats) {
  std::vector<Finding> raw;

  // ---- R11: BFS over the by-name call graph from every pool root. ----
  std::map<std::string, std::vector<const IndexedFunction*>> by_name;
  for (const auto& fn : idx.functions) by_name[fn.name].push_back(&fn);

  std::set<std::tuple<std::string, int, int>> seen_sites;
  for (const auto& root : idx.functions) {
    if (!root.pool_root) continue;
    std::string root_desc =
        root.name == "<pool-lambda>"
            ? "a pool-task lambda at " + root.file + ":" +
                  std::to_string(root.line)
            : root.name + "() in " + root.file;
    std::set<const IndexedFunction*> visited;
    std::vector<const IndexedFunction*> queue = {&root};
    visited.insert(&root);
    while (!queue.empty()) {
      const IndexedFunction* fn = queue.back();
      queue.pop_back();
      for (const auto& site : fn->blocking) {
        bool blocks = false;
        if (site.method == "sleep_for" || site.method == "sleep_until" ||
            site.method == "waitpid") {
          blocks = true;
        } else if (site.method == "wait") {
          blocks = idx.cv_names.count(site.receiver) > 0 ||
                   idx.future_names.count(site.receiver) > 0;
        } else if (site.method == "get") {
          blocks = idx.future_names.count(site.receiver) > 0 ||
                   fn->local_futures.count(site.receiver) > 0;
        }
        if (!blocks) continue;
        // Scoped allowance: the campaign orchestrator's post-EOF child
        // reap is progress-safe by construction (see Options doc).
        if (label_contains_any(fn->file, opt.blocking_allowed)) continue;
        if (!seen_sites.insert({fn->file, site.line, site.col}).second)
          continue;
        raw.push_back(
            {fn->file, site.line, site.col, "R11",
             "blocking call '" + site.what + "' reachable from " + root_desc +
                 "; a parked worker can deadlock the fixed-size pool — "
                 "restructure so pool tasks never block, or waive with the "
                 "progress argument"});
      }
      for (const auto& callee : fn->calls) {
        auto it = by_name.find(callee);
        if (it == by_name.end()) continue;
        for (const IndexedFunction* next : it->second)
          if (visited.insert(next).second) queue.push_back(next);
      }
    }
  }

  // ---- R12: contract coverage (only with registered test sources). ----
  if (!idx.test_idents.empty()) {
    auto covered_in = [&](const std::vector<std::string>& fragments,
                          const std::string& ident) {
      for (const auto& [label, idents] : idx.test_idents)
        if (label_contains_any(label, fragments) && idents.count(ident))
          return true;
      return false;
    };
    std::map<std::string, const IndexedClass*> by_cls;
    for (const auto& c : idx.classes)
      if (!by_cls.count(c.name)) by_cls[c.name] = &c;
    // Transitive: does `name` reach element_base through bases?
    auto derives = [&](const std::string& start) {
      std::set<std::string> seen;
      std::vector<std::string> q = {start};
      while (!q.empty()) {
        std::string n = q.back();
        q.pop_back();
        if (n == opt.element_base) return true;
        if (!seen.insert(n).second) continue;
        auto it = by_cls.find(n);
        if (it == by_cls.end()) continue;
        for (const auto& b : it->second->bases) q.push_back(b);
      }
      return false;
    };

    for (const auto& c : idx.classes) {
      if (!c.methods.count("step")) continue;
      bool is_element = false;
      for (const auto& b : c.bases)
        if (derives(b)) is_element = true;
      if (!is_element) continue;
      if (!covered_in(opt.element_coverage_files, c.name)) {
        raw.push_back(
            {c.file, c.line, 0, "R12",
             "AnalogElement subclass '" + c.name +
                 "' appears in no byte-identity suite (" +
                 join_fragments(opt.element_coverage_files) +
                 "); an untested step/block/clone contract is a latent "
                 "divergence"});
      }
    }
    for (const auto& c : idx.classes) {
      if (c.name != opt.kernels_struct) continue;
      for (const auto& m : c.fnptr_members) {
        const bool batch = ends_with(m, "_batch");
        const auto& files = batch ? opt.batch_kernel_coverage_files
                                  : opt.kernel_coverage_files;
        if (!covered_in(files, m)) {
          raw.push_back(
              {c.file, c.line, 0, "R12",
               "kernel-table entry '" + m + "' appears in no " +
                   (batch ? std::string("batch-") : std::string("")) +
                   "equivalence suite (" + join_fragments(files) +
                   "); every backend::Kernels field needs a pinned "
                   "oracle-vs-backend contract"});
        }
      }
    }
    for (const auto& e : idx.enums) {
      if (e.name != opt.request_enum) continue;
      for (const auto& en : e.enumerators) {
        if (!covered_in(opt.request_coverage_files, en)) {
          raw.push_back(
              {e.file, e.line, 0, "R12",
               "request kind '" + en + "' appears in no determinism suite (" +
                   join_fragments(opt.request_coverage_files) +
                   "); every RequestKind must be exercised across shard/"
                   "thread/arrival-order variations"});
        }
      }
    }
  }

  std::vector<Finding> out;
  for (auto& f : raw) {
    if (waived_in_index(idx, f)) {
      if (stats) ++stats->waived[f.rule];
      continue;
    }
    if (stats) ++stats->findings[f.rule];
    out.push_back(std::move(f));
  }
  sort_findings(out);
  return out;
}

// ---------------------------------------------------------------------------
// Per-file scan and the full two-pass driver
// ---------------------------------------------------------------------------

std::vector<Finding> scan_source(const std::string& label,
                                 const std::string& content,
                                 const Options& opt, const SymbolIndex* index,
                                 ScanStats* stats) {
  Lexed lx = lex(content);
  std::vector<Finding> out;
  scan_r1(label, lx, opt, out);
  scan_r2(label, lx, opt, out);
  scan_r3_r4(label, lx, opt, out);
  scan_r5(label, lx, opt, out);
  scan_r6(label, lx, out);
  scan_r7(label, content, lx, opt, out);
  SymbolIndex local;
  if (!index) {
    local = build_index({{label, content}}, {}, opt);
    index = &local;
  }
  scan_r8(label, lx, opt, *index, out);
  scan_r9(label, lx, *index, out);
  scan_r10(label, lx, opt, *index, out);
  out = apply_waivers(label, std::move(out), lx.waivers, stats);
  sort_findings(out);
  if (stats) {
    ++stats->files_scanned;
    for (const auto& f : out) ++stats->findings[f.rule];
  }
  return out;
}

std::vector<Finding> scan_files(const std::vector<SourceFile>& sources,
                                const std::vector<SourceFile>& test_sources,
                                const Options& opt, ScanStats* stats) {
  SymbolIndex idx = build_index(sources, test_sources, opt);
  // Per-file scans fan out over the deterministic pool; results are
  // collected in input order so output is byte-stable at any thread count.
  auto per = util::parallel_map(sources.size(), [&](std::size_t i) {
    ScanStats local;
    auto fs = scan_source(sources[i].label, sources[i].content, opt, &idx,
                          &local);
    return std::make_pair(std::move(fs), std::move(local));
  });
  std::vector<Finding> out;
  for (auto& [fs, local] : per) {
    out.insert(out.end(), std::make_move_iterator(fs.begin()),
               std::make_move_iterator(fs.end()));
    if (stats) {
      for (const auto& [rule, n] : local.findings) stats->findings[rule] += n;
      for (const auto& [rule, n] : local.waived) stats->waived[rule] += n;
      stats->files_scanned += local.files_scanned;
    }
  }
  auto global = scan_global(idx, opt, stats);
  out.insert(out.end(), std::make_move_iterator(global.begin()),
             std::make_move_iterator(global.end()));
  return out;
}

std::vector<SourceFile> collect_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  if (!fs::exists(root)) return files;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc")
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string label = fs::relative(p, root).generic_string();
    files.push_back({std::move(label), ss.str()});
  }
  return files;
}

std::vector<Finding> scan_tree(const std::string& root, const Options& opt) {
  return scan_files(collect_tree(root), {}, opt, nullptr);
}

// ---------------------------------------------------------------------------
// Catalogue, formatting, baseline
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> rules = {
      {"R1", "no direct libm transcendentals; use the det_* kernels",
       "everywhere except util/fastmath.h"},
      {"R2", "no nondeterminism sources (random_device, rand, time, clocks, "
             "getenv)",
       "everywhere; getenv allowed in util/thread_pool, backend/dispatch, "
       "service/config, campaign/config"},
      {"R3", "AnalogElement subclasses overriding step() must override "
             "process_block() and clone(); Rng/NoiseSource members need "
             "fork_noise()",
       "all classes"},
      {"R4", "no mutable namespace-scope state",
       "everywhere except backend/dispatch, service/config"},
      {"R5", "no float types or literals in the analog path",
       "analog/, signal/, core/"},
      {"R6", "no container growth inside streaming-sink consume() bodies",
       "all consume() definitions"},
      {"R7", "SIMD intrinsics only inside the compute-backend boundary",
       "everywhere except backend/"},
      {"R8", "RAII-only mutex use, per-file declared lock order, no lock "
             "held across cv/future waits",
       "service/, util/thread_pool"},
      {"R9", "pool-task lambdas may only fork captured parent RNG streams, "
             "never draw from them",
       "all pool hand-offs (parallel_for/parallel_map/submit)"},
      {"R10", "explicit std::memory_order on every atomic op; write-once "
              "state stores only behind compare_exchange/call_once",
       "all atomics; write-once idiom in backend/dispatch, service/config"},
      {"R11", "no blocking calls (sleep, cv/future wait, future get, "
              "waitpid) reachable from pool tasks or consume() bodies",
       "cross-TU call graph from every pool root; campaign/ process reaps "
       "scoped-allowed"},
      {"R12", "every AnalogElement subclass, kernel-table entry, and "
              "RequestKind must appear in its contract suite",
       "src vs tests/ cross-reference; needs --tests"},
      {"waiver", "inline waivers must parse and carry a reason",
       "all files"},
  };
  return rules;
}

std::string format(const Finding& f) {
  std::string s = f.file + ":" + std::to_string(f.line);
  if (f.col > 0) s += ":" + std::to_string(f.col);
  s += ": error[" + f.rule + "]: " + f.message;
  return s;
}

namespace {

// Baseline lines are "file:line:rule"; '#' comments and blanks ignored.
// Returns the normalized key, or "" for non-entry lines.
std::string baseline_key_of_line(const std::string& raw) {
  std::string line = trim(raw);
  if (line.empty() || line[0] == '#') return "";
  return line;
}

std::string baseline_key(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ":" + f.rule;
}

}  // namespace

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::string& baseline_text) {
  std::set<std::string> keys;
  std::stringstream ss(baseline_text);
  std::string line;
  while (std::getline(ss, line)) {
    std::string key = baseline_key_of_line(line);
    if (!key.empty()) keys.insert(key);
  }
  std::vector<Finding> out;
  for (auto& f : findings)
    if (!keys.count(baseline_key(f))) out.push_back(std::move(f));
  return out;
}

std::vector<std::string> stale_baseline_entries(
    const std::vector<Finding>& findings, const std::string& baseline_text) {
  std::set<std::string> live;
  for (const auto& f : findings) live.insert(baseline_key(f));
  std::vector<std::string> stale;
  std::stringstream ss(baseline_text);
  std::string line;
  while (std::getline(ss, line)) {
    std::string key = baseline_key_of_line(line);
    if (!key.empty() && !live.count(key)) stale.push_back(key);
  }
  return stale;
}

std::string to_baseline(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) out += baseline_key(f) + "\n";
  return out;
}

}  // namespace gdelay::audit
