// gdelay_tool — command-line front end to the library.
//
//   gdelay_tool characterize [--rate R] [--bits N] [--seed S]
//       Build the prototype channel, run the full calibration and print
//       the Fig. 7/9-style characterization summary.
//
//   gdelay_tool calibrate --out FILE [--rate R] [--bits N] [--seed S]
//       Calibrate and persist the table (text format, see core/cal_io.h).
//
//   gdelay_tool plan --cal FILE --delay PS
//       Load a calibration and print the (tap, DAC code) realizing PS.
//
//   gdelay_tool deskew [--lanes N] [--skew PS] [--seed S]
//       Run the full bus-deskew flow and print the before/after report.
//
//   gdelay_tool campaign [--units N] [--shards S] [--mode M] [--seed S]
//                        [--ckpt DIR] [--every K] [--stop-after N]
//                        [--work DIR]
//       Run the built-in Monte-Carlo matching campaign (perturbed
//       edge-model trials) through the orchestrator. --mode accepts
//       serial, thread, fork, or exec; exec re-invokes this binary as
//       one `campaign-worker` subprocess per shard and merges their
//       framed result files. The merged-state hash printed at the end
//       is identical for every mode, shard count and resume point.
//
//   gdelay_tool campaign-worker --shard I --result FILE [campaign opts]
//       Run ONE shard of the campaign (with checkpoint/resume if
//       --ckpt is given) and write its framed shard report to FILE.
//
//   gdelay_tool --backends
//       List the compute backends known to this build, their
//       availability on this machine, and the active dispatch reason.
//
//   gdelay_tool --version
//       Print the git revision this binary was built from and the
//       BENCH_*.json schema version it writes/understands.
//
// All randomness is seeded; identical invocations produce identical
// output.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__)
#include <unistd.h>
#endif

#include "ate/bus.h"
#include "ate/controller.h"
#include "backend/backend.h"
#include "bench/common.h"
#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "core/cal_io.h"
#include "core/calibration.h"
#include "core/channel.h"
#include "core/requirements.h"
#include "core/variation.h"
#include "fast/edge_model.h"
#include "measure/stats.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"
#include "util/serde.h"

using namespace gdelay;

namespace {

struct Args {
  std::string command;
  std::string argv0;
  double rate_gbps = 3.2;
  std::size_t bits = 96;
  std::uint64_t seed = 2008;
  std::string cal_path;
  std::string out_path;
  double delay_ps = 50.0;
  int lanes = 4;
  double skew_ps = 120.0;
  // campaign / campaign-worker
  std::uint64_t units = 20000;
  std::size_t shards = 0;       ///< 0 = GDELAY_CAMPAIGN_SHARDS default.
  std::string mode;             ///< serial|thread|fork|exec; "" = default.
  std::string ckpt_dir;
  std::uint64_t every = 0;
  std::uint64_t stop_after = 0;
  long shard = -1;
  std::string result_path;
  std::string work_dir = "campaign_work";
};

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: gdelay_tool <characterize|calibrate|plan|deskew"
               "|campaign|campaign-worker> [options]\n"
               "  common : --rate GBPS --bits N --seed S\n"
               "  calibrate: --out FILE\n"
               "  plan   : --cal FILE --delay PS\n"
               "  deskew : --lanes N --skew PS\n"
               "  campaign: --units N --shards S --mode"
               " serial|thread|fork|exec\n"
               "            --ckpt DIR --every K --stop-after N --work DIR\n"
               "  campaign-worker: --shard I --result FILE"
               " [+ campaign opts]\n"
               "  --backends : list compute backends and exit\n"
               "  --version  : print git revision + BENCH schema and exit\n");
  std::exit(code);
}

[[noreturn]] void print_backends() {
  std::fputs(backend::list_backends().c_str(), stdout);
  std::exit(0);
}

[[noreturn]] void print_version() {
  std::printf("gdelay_tool %s (bench json schema %d)\n", GDELAY_GIT_REV,
              bench::kBenchJsonSchema);
  std::exit(0);
}

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) usage(2);
  a.argv0 = argv[0];
  a.command = argv[1];
  if (a.command == "--backends") print_backends();
  if (a.command == "--version") print_version();
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (key == "--backends") print_backends();
    else if (key == "--rate") a.rate_gbps = std::atof(value());
    else if (key == "--bits") a.bits = static_cast<std::size_t>(std::atoll(value()));
    else if (key == "--seed") a.seed = static_cast<std::uint64_t>(std::atoll(value()));
    else if (key == "--cal") a.cal_path = value();
    else if (key == "--out") a.out_path = value();
    else if (key == "--delay") a.delay_ps = std::atof(value());
    else if (key == "--lanes") a.lanes = std::atoi(value());
    else if (key == "--skew") a.skew_ps = std::atof(value());
    else if (key == "--units") a.units = static_cast<std::uint64_t>(std::atoll(value()));
    else if (key == "--shards") a.shards = static_cast<std::size_t>(std::atoll(value()));
    else if (key == "--mode") a.mode = value();
    else if (key == "--ckpt") a.ckpt_dir = value();
    else if (key == "--every") a.every = static_cast<std::uint64_t>(std::atoll(value()));
    else if (key == "--stop-after") a.stop_after = static_cast<std::uint64_t>(std::atoll(value()));
    else if (key == "--shard") a.shard = std::atol(value());
    else if (key == "--result") a.result_path = value();
    else if (key == "--work") a.work_dir = value();
    else if (key == "--help" || key == "-h") usage(0);
    else {
      std::fprintf(stderr, "unknown option '%s'\n", key.c_str());
      usage(2);
    }
  }
  return a;
}

core::ChannelCalibration calibrate_prototype(const Args& a) {
  util::Rng rng(a.seed);
  sig::SynthConfig sc;
  sc.rate_gbps = a.rate_gbps;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, a.bits), sc);
  core::VariableDelayChannel ch(core::ChannelConfig::prototype(),
                                rng.fork(1));
  core::DelayCalibrator::Options o;
  o.n_vctrl_points = 13;
  return core::DelayCalibrator(o).calibrate(ch, stim.wf);
}

int cmd_characterize(const Args& a) {
  const auto cal = calibrate_prototype(a);
  std::printf("prototype channel @ %.2f Gbps PRBS7 (%zu bits, seed %llu)\n",
              a.rate_gbps, a.bits,
              static_cast<unsigned long long>(a.seed));
  std::printf("  fine range   : %7.2f ps\n", cal.fine_range_ps());
  std::printf("  total range  : %7.2f ps (requirement > %.0f)\n",
              cal.total_range_ps(), core::Requirements::kTotalRangePs);
  std::printf("  base latency : %7.2f ps\n", cal.base_latency_ps);
  std::printf("  taps         : %.2f / %.2f / %.2f / %.2f ps\n",
              cal.tap_offset_ps[0], cal.tap_offset_ps[1],
              cal.tap_offset_ps[2], cal.tap_offset_ps[3]);
  std::printf("  resolution   : %7.4f ps/LSB (%d-bit DAC)\n",
              cal.resolution_ps(), cal.dac.bits());
  return 0;
}

int cmd_calibrate(const Args& a) {
  if (a.out_path.empty()) usage(2);
  const auto cal = calibrate_prototype(a);
  core::save_calibration(a.out_path, cal);
  std::printf("calibration written to %s (%zu curve points)\n",
              a.out_path.c_str(), cal.fine_curve.size());
  return 0;
}

int cmd_plan(const Args& a) {
  if (a.cal_path.empty()) usage(2);
  const auto cal = core::load_calibration(a.cal_path);
  const auto s = cal.plan(a.delay_ps);
  std::printf("target %.2f ps -> tap %d, DAC code %u (Vctrl %.4f V), "
              "predicted %.2f ps (err %+.3f)\n",
              a.delay_ps, s.tap, s.dac_code, s.vctrl_v,
              s.predicted_delay_ps, s.predicted_delay_ps - a.delay_ps);
  return 0;
}

int cmd_deskew(const Args& a) {
  util::Rng rng(a.seed);
  ate::AteBusConfig bc;
  bc.n_channels = a.lanes;
  bc.rate_gbps = 6.4;
  bc.skew_span_ps = a.skew_ps;
  bc.rj_sigma_ps = 0.8;
  ate::AteBus bus(bc, rng.fork(1));
  std::vector<core::VariableDelayChannel> delays;
  for (int i = 0; i < a.lanes; ++i)
    delays.emplace_back(core::ChannelConfig::prototype(),
                        rng.fork(10 + static_cast<std::uint64_t>(i)));
  ate::DeskewController::Options opt;
  opt.training = sig::prbs(7, a.bits);
  opt.calibration.n_vctrl_points = 13;
  ate::DeskewController ctl(bus, delays, opt);
  const auto rep = ctl.run();
  for (std::size_t i = 0; i < rep.plan.settings.size(); ++i)
    std::printf("lane %zu: tap %d DAC %4u -> residual %+6.2f ps\n", i,
                rep.plan.settings[i].tap, rep.plan.settings[i].dac_code,
                rep.arrival_after_ps[i] - rep.plan.target_arrival_ps);
  std::printf("skew: %.1f ps -> %.2f ps (%s)\n", rep.span_before_ps,
              rep.span_after_ps,
              rep.span_after_ps < core::Requirements::kChannelSkewPs
                  ? "PASS" : "FAIL");
  return rep.span_after_ps < core::Requirements::kChannelSkewPs ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Campaign: the built-in Monte-Carlo matching workload. The worker and
// the orchestrating parent derive the SAME workload from the same
// (seed, rate, bits) arguments, so a worker spawned by `--mode exec`
// produces a shard report the parent can merge.
// ---------------------------------------------------------------------------

struct CampaignWorkload {
  fast::EdgeModelParams proto;
  core::ProcessVariation pv;
  double fine_span = 0.0;
};

CampaignWorkload make_workload(const Args& a) {
  util::Rng rng(a.seed);
  sig::SynthConfig sc;
  sc.rate_gbps = a.rate_gbps;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, a.bits), sc);
  core::VariableDelayChannel ch(core::ChannelConfig::prototype(),
                                rng.fork(1));
  core::DelayCalibrator::Options o;
  o.n_vctrl_points = 9;
  CampaignWorkload w;
  w.proto = fast::fit_edge_model(ch, stim.wf, stim.unit_interval_ps, o);
  w.fine_span = w.proto.fine_curve.y_span();
  return w;
}

campaign::AccumulatorSet campaign_factory() {
  campaign::AccumulatorSet s;
  s.push_back(std::make_unique<campaign::RecordAccumulator>(4));
  return s;
}

// One trial = one synthetic part drawn from the unit's private
// substream: scaled fine characteristic, jittered coarse taps, scattered
// added RJ, post-calibration residual = quantization + measurement noise.
void campaign_unit(const CampaignWorkload& w, std::uint64_t unit,
                   util::Rng& rng, campaign::AccumulatorSet& accs) {
  const double fine_scale = 1.0 + w.pv.buffer_sigma_frac * rng.gaussian();
  double worst_tap = 0.0;
  for (std::size_t t = 1; t < w.proto.tap_offset_ps.size(); ++t) {
    const double tap = w.proto.tap_offset_ps[t] +
                       w.pv.tap_length_sigma_ps * rng.gaussian();
    worst_tap = std::max(worst_tap, tap);
  }
  const double rj =
      std::max(0.0, w.proto.added_rj_sigma_ps *
                        (1.0 + w.pv.noise_sigma_frac * rng.gaussian()));
  const double fine_range = w.fine_span * fine_scale;
  const double total_range = fine_range + worst_tap;
  const double resolution = fine_range / 255.0;
  const double err = std::abs(resolution * (rng.uniform() - 0.5)) +
                     std::abs(rj / std::sqrt(96.0) * rng.gaussian());
  const double rec[4] = {fine_range, total_range, resolution, err};
  static_cast<campaign::RecordAccumulator&>(*accs[0]).add(unit, rec);
}

campaign::CampaignSpec make_campaign_spec(const Args& a) {
  campaign::CampaignSpec spec;
  spec.name = "cli";
  spec.seed = a.seed;
  spec.n_units = a.units;
  spec.n_shards = a.shards;
  if (!a.mode.empty() && a.mode != "exec")
    spec.mode = campaign::parse_mode(a.mode);
  spec.checkpoint_dir = a.ckpt_dir;
  spec.checkpoint_every = a.every;
  spec.stop_after_units = a.stop_after;
  return spec;
}

std::string self_exe_path(const Args& a) {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
#endif
  return a.argv0;
}

int print_campaign_result(const campaign::CampaignResult& r,
                          const char* mode_label) {
  const auto& recs =
      static_cast<const campaign::RecordAccumulator&>(*r.accumulators[0]);
  std::vector<double> fine, total, err;
  fine.reserve(recs.size());
  total.reserve(recs.size());
  err.reserve(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const double* v = recs.values_at(i);
    fine.push_back(v[0]);
    total.push_back(v[1]);
    err.push_back(v[3]);
  }
  util::ByteWriter w;
  for (const auto& acc : r.accumulators) acc->save(w);
  const std::uint64_t hash =
      util::fnv1a64(w.bytes().data(), w.bytes().size());
  std::printf("campaign: %llu units over %zu shards (%s), %s%s\n",
              static_cast<unsigned long long>(r.units_done), r.n_shards,
              mode_label, r.complete ? "complete" : "stopped early",
              r.resumed ? ", resumed from checkpoint" : "");
  if (!fine.empty()) {
    const auto fs = meas::summarize(fine);
    const auto ts = meas::summarize(total);
    const auto es = meas::summarize(err);
    std::printf("  fine range  %6.2f +/- %.2f ps (min %6.2f)\n", fs.mean,
                fs.stddev, fs.min);
    std::printf("  total range %6.2f +/- %.2f ps (min %6.2f)\n", ts.mean,
                ts.stddev, ts.min);
    std::printf("  prog error  %6.3f ps mean, worst %.3f ps\n", es.mean,
                es.max);
  }
  std::printf("  state hash %016llx\n",
              static_cast<unsigned long long>(hash));
  return 0;
}

int cmd_campaign_worker(const Args& a) {
  if (a.shard < 0 || a.result_path.empty()) usage(2);
  const CampaignWorkload w = make_workload(a);
  campaign::run_shard_to_file(
      make_campaign_spec(a), static_cast<std::size_t>(a.shard),
      campaign_factory,
      [&](std::uint64_t unit, util::Rng& rng,
          campaign::AccumulatorSet& accs) {
        campaign_unit(w, unit, rng, accs);
      },
      a.result_path);
  std::printf("shard %ld report written to %s\n", a.shard,
              a.result_path.c_str());
  return 0;
}

int cmd_campaign(const Args& a) {
  const CampaignWorkload w = make_workload(a);
  const auto unit_fn = [&](std::uint64_t unit, util::Rng& rng,
                           campaign::AccumulatorSet& accs) {
    campaign_unit(w, unit, rng, accs);
  };

  if (a.mode == "exec") {
    // Re-invoke this binary as one worker process per shard, then merge
    // the framed result files — the fully-isolated orchestration path
    // (fresh address space per shard, results via the filesystem).
    const std::size_t n_shards =
        a.shards ? a.shards : campaign::default_shards();
    const std::string exe = self_exe_path(a);
    std::vector<std::string> frames;
    frames.reserve(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) {
      const std::string result =
          a.work_dir + "/cli.shard" + std::to_string(s) + ".result";
      std::string cmd = "\"" + exe + "\" campaign-worker --shard " +
                        std::to_string(s) + " --result \"" + result +
                        "\" --units " + std::to_string(a.units) +
                        " --shards " + std::to_string(n_shards) +
                        " --seed " + std::to_string(a.seed) + " --rate " +
                        std::to_string(a.rate_gbps) + " --bits " +
                        std::to_string(a.bits);
      if (!a.ckpt_dir.empty()) cmd += " --ckpt \"" + a.ckpt_dir + "\"";
      if (a.every) cmd += " --every " + std::to_string(a.every);
      if (a.stop_after)
        cmd += " --stop-after " + std::to_string(a.stop_after);
      if (std::system(cmd.c_str()) != 0)
        throw std::runtime_error("campaign: worker for shard " +
                                 std::to_string(s) + " failed");
      const auto bytes = campaign::read_file(result);
      if (!bytes)
        throw std::runtime_error("campaign: missing worker report " +
                                 result);
      frames.push_back(*bytes);
    }
    campaign::CampaignSpec spec = make_campaign_spec(a);
    spec.n_shards = n_shards;
    return print_campaign_result(
        campaign::merge_shard_reports(spec, campaign_factory, frames),
        "exec");
  }

  const campaign::CampaignResult r =
      campaign::run_campaign(make_campaign_spec(a), campaign_factory,
                             unit_fn);
  return print_campaign_result(r, campaign::mode_name(r.mode));
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    if (a.command == "characterize") return cmd_characterize(a);
    if (a.command == "calibrate") return cmd_calibrate(a);
    if (a.command == "plan") return cmd_plan(a);
    if (a.command == "deskew") return cmd_deskew(a);
    if (a.command == "campaign") return cmd_campaign(a);
    if (a.command == "campaign-worker") return cmd_campaign_worker(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", a.command.c_str());
  usage(2);
}
