// gdelay_tool — command-line front end to the library.
//
//   gdelay_tool characterize [--rate R] [--bits N] [--seed S]
//       Build the prototype channel, run the full calibration and print
//       the Fig. 7/9-style characterization summary.
//
//   gdelay_tool calibrate --out FILE [--rate R] [--bits N] [--seed S]
//       Calibrate and persist the table (text format, see core/cal_io.h).
//
//   gdelay_tool plan --cal FILE --delay PS
//       Load a calibration and print the (tap, DAC code) realizing PS.
//
//   gdelay_tool deskew [--lanes N] [--skew PS] [--seed S]
//       Run the full bus-deskew flow and print the before/after report.
//
//   gdelay_tool --backends
//       List the compute backends known to this build, their
//       availability on this machine, and the active dispatch reason.
//
//   gdelay_tool --version
//       Print the git revision this binary was built from and the
//       BENCH_*.json schema version it writes/understands.
//
// All randomness is seeded; identical invocations produce identical
// output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ate/bus.h"
#include "ate/controller.h"
#include "backend/backend.h"
#include "bench/common.h"
#include "core/cal_io.h"
#include "core/calibration.h"
#include "core/channel.h"
#include "core/requirements.h"
#include "signal/pattern.h"
#include "signal/synth.h"
#include "util/rng.h"

using namespace gdelay;

namespace {

struct Args {
  std::string command;
  double rate_gbps = 3.2;
  std::size_t bits = 96;
  std::uint64_t seed = 2008;
  std::string cal_path;
  std::string out_path;
  double delay_ps = 50.0;
  int lanes = 4;
  double skew_ps = 120.0;
};

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: gdelay_tool <characterize|calibrate|plan|deskew>"
               " [options]\n"
               "  common : --rate GBPS --bits N --seed S\n"
               "  calibrate: --out FILE\n"
               "  plan   : --cal FILE --delay PS\n"
               "  deskew : --lanes N --skew PS\n"
               "  --backends : list compute backends and exit\n"
               "  --version  : print git revision + BENCH schema and exit\n");
  std::exit(code);
}

[[noreturn]] void print_backends() {
  std::fputs(backend::list_backends().c_str(), stdout);
  std::exit(0);
}

[[noreturn]] void print_version() {
  std::printf("gdelay_tool %s (bench json schema %d)\n", GDELAY_GIT_REV,
              bench::kBenchJsonSchema);
  std::exit(0);
}

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) usage(2);
  a.command = argv[1];
  if (a.command == "--backends") print_backends();
  if (a.command == "--version") print_version();
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (key == "--backends") print_backends();
    else if (key == "--rate") a.rate_gbps = std::atof(value());
    else if (key == "--bits") a.bits = static_cast<std::size_t>(std::atoll(value()));
    else if (key == "--seed") a.seed = static_cast<std::uint64_t>(std::atoll(value()));
    else if (key == "--cal") a.cal_path = value();
    else if (key == "--out") a.out_path = value();
    else if (key == "--delay") a.delay_ps = std::atof(value());
    else if (key == "--lanes") a.lanes = std::atoi(value());
    else if (key == "--skew") a.skew_ps = std::atof(value());
    else if (key == "--help" || key == "-h") usage(0);
    else {
      std::fprintf(stderr, "unknown option '%s'\n", key.c_str());
      usage(2);
    }
  }
  return a;
}

core::ChannelCalibration calibrate_prototype(const Args& a) {
  util::Rng rng(a.seed);
  sig::SynthConfig sc;
  sc.rate_gbps = a.rate_gbps;
  const auto stim = sig::synthesize_nrz(sig::prbs(7, a.bits), sc);
  core::VariableDelayChannel ch(core::ChannelConfig::prototype(),
                                rng.fork(1));
  core::DelayCalibrator::Options o;
  o.n_vctrl_points = 13;
  return core::DelayCalibrator(o).calibrate(ch, stim.wf);
}

int cmd_characterize(const Args& a) {
  const auto cal = calibrate_prototype(a);
  std::printf("prototype channel @ %.2f Gbps PRBS7 (%zu bits, seed %llu)\n",
              a.rate_gbps, a.bits,
              static_cast<unsigned long long>(a.seed));
  std::printf("  fine range   : %7.2f ps\n", cal.fine_range_ps());
  std::printf("  total range  : %7.2f ps (requirement > %.0f)\n",
              cal.total_range_ps(), core::Requirements::kTotalRangePs);
  std::printf("  base latency : %7.2f ps\n", cal.base_latency_ps);
  std::printf("  taps         : %.2f / %.2f / %.2f / %.2f ps\n",
              cal.tap_offset_ps[0], cal.tap_offset_ps[1],
              cal.tap_offset_ps[2], cal.tap_offset_ps[3]);
  std::printf("  resolution   : %7.4f ps/LSB (%d-bit DAC)\n",
              cal.resolution_ps(), cal.dac.bits());
  return 0;
}

int cmd_calibrate(const Args& a) {
  if (a.out_path.empty()) usage(2);
  const auto cal = calibrate_prototype(a);
  core::save_calibration(a.out_path, cal);
  std::printf("calibration written to %s (%zu curve points)\n",
              a.out_path.c_str(), cal.fine_curve.size());
  return 0;
}

int cmd_plan(const Args& a) {
  if (a.cal_path.empty()) usage(2);
  const auto cal = core::load_calibration(a.cal_path);
  const auto s = cal.plan(a.delay_ps);
  std::printf("target %.2f ps -> tap %d, DAC code %u (Vctrl %.4f V), "
              "predicted %.2f ps (err %+.3f)\n",
              a.delay_ps, s.tap, s.dac_code, s.vctrl_v,
              s.predicted_delay_ps, s.predicted_delay_ps - a.delay_ps);
  return 0;
}

int cmd_deskew(const Args& a) {
  util::Rng rng(a.seed);
  ate::AteBusConfig bc;
  bc.n_channels = a.lanes;
  bc.rate_gbps = 6.4;
  bc.skew_span_ps = a.skew_ps;
  bc.rj_sigma_ps = 0.8;
  ate::AteBus bus(bc, rng.fork(1));
  std::vector<core::VariableDelayChannel> delays;
  for (int i = 0; i < a.lanes; ++i)
    delays.emplace_back(core::ChannelConfig::prototype(),
                        rng.fork(10 + static_cast<std::uint64_t>(i)));
  ate::DeskewController::Options opt;
  opt.training = sig::prbs(7, a.bits);
  opt.calibration.n_vctrl_points = 13;
  ate::DeskewController ctl(bus, delays, opt);
  const auto rep = ctl.run();
  for (std::size_t i = 0; i < rep.plan.settings.size(); ++i)
    std::printf("lane %zu: tap %d DAC %4u -> residual %+6.2f ps\n", i,
                rep.plan.settings[i].tap, rep.plan.settings[i].dac_code,
                rep.arrival_after_ps[i] - rep.plan.target_arrival_ps);
  std::printf("skew: %.1f ps -> %.2f ps (%s)\n", rep.span_before_ps,
              rep.span_after_ps,
              rep.span_after_ps < core::Requirements::kChannelSkewPs
                  ? "PASS" : "FAIL");
  return rep.span_after_ps < core::Requirements::kChannelSkewPs ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    if (a.command == "characterize") return cmd_characterize(a);
    if (a.command == "calibrate") return cmd_calibrate(a);
    if (a.command == "plan") return cmd_plan(a);
    if (a.command == "deskew") return cmd_deskew(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", a.command.c_str());
  usage(2);
}
