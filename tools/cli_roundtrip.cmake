# Calibrate to a file, then plan from it; both must succeed and the plan
# output must mention a DAC code.
set(CAL "${WORKDIR}/cli_cal.txt")
execute_process(COMMAND ${TOOL} calibrate --out ${CAL} --bits 48
                RESULT_VARIABLE rc1 OUTPUT_VARIABLE out1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "calibrate failed: ${out1}")
endif()
execute_process(COMMAND ${TOOL} plan --cal ${CAL} --delay 64.5
                RESULT_VARIABLE rc2 OUTPUT_VARIABLE out2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "plan failed: ${out2}")
endif()
if(NOT out2 MATCHES "DAC code")
  message(FATAL_ERROR "plan output missing DAC code: ${out2}")
endif()
file(REMOVE ${CAL})
