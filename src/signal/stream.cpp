#include "signal/stream.h"

#include <algorithm>
#include <cstring>

namespace gdelay::sig {

std::size_t WaveformSource::read(double* dst, std::size_t max_n) {
  const std::size_t remaining = wf_->size() - std::min(pos_, wf_->size());
  const std::size_t count = std::min(max_n, remaining);
  if (count > 0) {
    std::memcpy(dst, wf_->samples().data() + pos_, count * sizeof(double));
    pos_ += count;
  }
  return count;
}

}  // namespace gdelay::sig
