#include "signal/edges.h"

#include <cmath>
#include <stdexcept>

#include "util/serde.h"

namespace gdelay::sig {

StreamingEdgeExtractor::StreamingEdgeExtractor(double t0_ps, double dt_ps,
                                               const EdgeExtractOptions& opt)
    : t0_(t0_ps),
      dt_(dt_ps),
      th_(opt.threshold_v),
      hy_(std::max(opt.hysteresis_v, 0.0) / 2.0),
      t_min_(opt.t_min_ps),
      t_max_(opt.t_max_ps) {
  hist_.reserve(256);
  edges_.reserve(64);
}

void StreamingEdgeExtractor::consume(const double* samples, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double cur = samples[k];
    const std::size_t g = n_seen_++;
    // gdelay-audit: allow(R6) history window is pruned every sample and
    // reserved up front; growth is O(transition length), not O(stream).
    hist_.push_back(cur);

    if (g == 0) {
      // State: +1 after the signal has been above th+hy, -1 after below
      // th-hy, 0 before the first excursion.
      if (cur > th_ + hy_) state_ = 1;
      else if (cur < th_ - hy_) state_ = -1;
    } else {
      int new_state = state_;
      if (cur > th_ + hy_) new_state = 1;
      else if (cur < th_ - hy_) new_state = -1;
      if (new_state != state_ && new_state != 0 && state_ != 0) {
        const bool rising = new_state > 0;
        // Locate the actual threshold crossing by scanning back for the
        // sample pair straddling the threshold in this direction. The
        // floor equals the materializing scan's `j > 1` guard when no
        // history has been pruned; with pruning, a straddling pair always
        // exists at j > base_ (see header), so the scans break at the
        // same j.
        const std::size_t floor = base_ + 1;
        std::size_t j = g;
        while (j > floor) {
          const double a = hist_[j - 1 - base_], b = hist_[j - base_];
          if ((rising && a <= th_ && b > th_) ||
              (!rising && a >= th_ && b < th_))
            break;
          --j;
        }
        const double a = hist_[j - 1 - base_], b = hist_[j - base_];
        double t;
        if (b == a) {
          t = t0_ + dt_ * static_cast<double>(j);
        } else {
          const double frac = (th_ - a) / (b - a);
          t = t0_ + dt_ * static_cast<double>(j - 1) + frac * dt_;
        }
        // gdelay-audit: allow(R6) edge list is the sink's product, one
        // entry per transition; reserved up front in the constructor.
        if (t >= t_min_ && t <= t_max_) edges_.push_back({t, rising});
      }
      state_ = new_state;
    }

    // Prune: once the signal is (weakly) back on the current state's side
    // of the threshold — or polarity is still unestablished — every
    // straddling pair a future backscan can stop at lies strictly after
    // this sample, so the older history is dead.
    if (state_ == 0 || (state_ == 1 && cur >= th_) ||
        (state_ == -1 && cur <= th_)) {
      if (g > base_) {
        hist_.erase(hist_.begin(),
                    hist_.begin() + static_cast<std::ptrdiff_t>(g - base_));
        base_ = g;
      }
    }
  }
}

void StreamingEdgeExtractor::save(util::ByteWriter& w) const {
  w.f64(t0_);
  w.f64(dt_);
  w.f64(th_);
  w.f64(hy_);
  w.f64(t_min_);
  w.f64(t_max_);
  w.i32(state_);
  w.u64(n_seen_);
  w.u64(base_);
  w.vec_f64(hist_);
  w.u64(edges_.size());
  for (const auto& e : edges_) {
    w.f64(e.t_ps);
    w.u8(e.rising ? 1 : 0);
  }
}

void StreamingEdgeExtractor::load(util::ByteReader& r) {
  t0_ = r.f64();
  dt_ = r.f64();
  th_ = r.f64();
  hy_ = r.f64();
  t_min_ = r.f64();
  t_max_ = r.f64();
  const int state = r.i32();
  if (state < -1 || state > 1)
    throw std::runtime_error("StreamingEdgeExtractor: corrupt checkpoint");
  state_ = state;
  n_seen_ = static_cast<std::size_t>(r.u64());
  base_ = static_cast<std::size_t>(r.u64());
  hist_ = r.vec_f64();
  if (base_ + hist_.size() != n_seen_)
    throw std::runtime_error("StreamingEdgeExtractor: corrupt checkpoint");
  const std::uint64_t n_edges = r.u64();
  edges_.clear();
  edges_.reserve(static_cast<std::size_t>(n_edges));
  for (std::uint64_t i = 0; i < n_edges; ++i) {
    Edge e;
    e.t_ps = r.f64();
    e.rising = r.u8() != 0;
    edges_.push_back(e);
  }
}

void StreamingEdgeExtractor::append_edges(const std::vector<Edge>& more) {
  edges_.insert(edges_.end(), more.begin(), more.end());
}

std::vector<Edge> extract_edges(const Waveform& wf,
                                const EdgeExtractOptions& opt) {
  if (wf.size() < 2) return {};
  StreamingEdgeExtractor ex(wf.t0_ps(), wf.dt_ps(), opt);
  ex.consume(wf.samples().data(), wf.size());
  return ex.take_edges();
}

std::vector<double> edge_times(const std::vector<Edge>& edges) {
  std::vector<double> t;
  t.reserve(edges.size());
  for (const auto& e : edges) t.push_back(e.t_ps);
  return t;
}

std::vector<double> rising_times(const std::vector<Edge>& edges) {
  std::vector<double> t;
  for (const auto& e : edges)
    if (e.rising) t.push_back(e.t_ps);
  return t;
}

std::vector<double> falling_times(const std::vector<Edge>& edges) {
  std::vector<double> t;
  for (const auto& e : edges)
    if (!e.rising) t.push_back(e.t_ps);
  return t;
}

}  // namespace gdelay::sig
