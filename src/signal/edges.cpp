#include "signal/edges.h"

#include <cmath>

namespace gdelay::sig {

std::vector<Edge> extract_edges(const Waveform& wf,
                                const EdgeExtractOptions& opt) {
  std::vector<Edge> edges;
  if (wf.size() < 2) return edges;

  const double th = opt.threshold_v;
  const double hy = std::max(opt.hysteresis_v, 0.0) / 2.0;

  // State: +1 after the signal has been above th+hy, -1 after below th-hy,
  // 0 before the first excursion.
  int state = 0;
  if (wf[0] > th + hy) state = 1;
  else if (wf[0] < th - hy) state = -1;

  for (std::size_t i = 1; i < wf.size(); ++i) {
    const double prev = wf[i - 1];
    const double cur = wf[i];
    int new_state = state;
    if (cur > th + hy) new_state = 1;
    else if (cur < th - hy) new_state = -1;
    if (new_state == state || new_state == 0) {
      state = new_state;
      continue;
    }
    const bool rising = new_state > 0;
    if (state == 0) {
      // First excursion establishes polarity without reporting an edge.
      state = new_state;
      continue;
    }
    // Locate the actual threshold crossing by scanning back for the sample
    // pair straddling the threshold in this direction.
    std::size_t j = i;
    while (j > 1) {
      const double a = wf[j - 1], b = wf[j];
      if ((rising && a <= th && b > th) || (!rising && a >= th && b < th)) break;
      --j;
    }
    const double a = wf[j - 1], b = wf[j];
    double t;
    if (b == a) {
      t = wf.time_at(j);
    } else {
      const double frac = (th - a) / (b - a);
      t = wf.time_at(j - 1) + frac * wf.dt_ps();
    }
    if (t >= opt.t_min_ps && t <= opt.t_max_ps) edges.push_back({t, rising});
    state = new_state;
    (void)prev;
  }
  return edges;
}

std::vector<double> edge_times(const std::vector<Edge>& edges) {
  std::vector<double> t;
  t.reserve(edges.size());
  for (const auto& e : edges) t.push_back(e.t_ps);
  return t;
}

std::vector<double> rising_times(const std::vector<Edge>& edges) {
  std::vector<double> t;
  for (const auto& e : edges)
    if (e.rising) t.push_back(e.t_ps);
  return t;
}

std::vector<double> falling_times(const std::vector<Edge>& edges) {
  std::vector<double> t;
  for (const auto& e : edges)
    if (!e.rising) t.push_back(e.t_ps);
  return t;
}

}  // namespace gdelay::sig
