// Waveform synthesis: the "pattern generator" instrument.
//
// Replaces the paper's bench sources (a 7 Gb/s NRZ pattern generator and a
// 6.8 GHz RZ clock source). Produces differential waveforms with
// - tanh-shaped transitions of programmable 20-80 % rise time,
// - per-edge Gaussian random jitter (RJ),
// - optional sinusoidal deterministic jitter (DJ),
// so a reference trace with any of the paper's quoted input TJ values can
// be synthesized and fed through the circuit models.
#pragma once

#include <vector>

#include "signal/pattern.h"
#include "signal/waveform.h"
#include "util/rng.h"

namespace gdelay::sig {

struct SynthConfig {
  double rate_gbps = 6.4;     ///< NRZ bit rate.
  double amplitude_v = 0.4;   ///< Differential levels are +/- amplitude_v.
  double rise_time_ps = 30.0; ///< 20-80 % rise/fall time.
  double dt_ps = 0.25;        ///< Sample spacing.
  double lead_in_ps = 300.0;  ///< Settled time before the first bit edge.
  double tail_ps = 300.0;     ///< Settled time after the last bit.
  double rj_sigma_ps = 0.0;   ///< Gaussian per-edge random jitter (sigma).
  double dj_pp_ps = 0.0;      ///< Sinusoidal deterministic jitter, pk-pk.
  double dj_freq_ghz = 0.0137;///< DJ modulation frequency.

  double unit_interval_ps() const { return 1000.0 / rate_gbps; }
};

struct SynthResult {
  Waveform wf;
  /// Nominal (jitter-free) transition instants, one per bit transition.
  std::vector<double> ideal_edges_ps;
  /// Actual (jittered) transition instants used during synthesis.
  std::vector<double> actual_edges_ps;
  double unit_interval_ps = 0.0;
};

/// One smooth level change: the signal moves by `delta_v` (signed) through
/// a tanh step centered at `t_ps`.
struct Transition {
  double t_ps = 0.0;
  double delta_v = 0.0;
};

/// A fully laid-out synthesis job: sampling grid, initial level, and the
/// time-sorted transition list. All the randomness (RJ draws, DJ phase) is
/// baked in at planning time, so a plan is O(transitions) in memory and
/// rendering it — all at once or chunk by chunk — is deterministic. This
/// split is what lets the streaming executor emit multi-million-sample
/// waveforms without ever materializing them.
struct SynthPlan {
  double t0_ps = 0.0;
  double dt_ps = 1.0;
  std::size_t n = 0;         ///< Total samples the plan renders.
  double level0_v = 0.0;     ///< Level before the first transition.
  double tau_ps = 1.0;       ///< Tanh time constant of every transition.
  std::vector<Transition> transitions;  ///< Sorted by t_ps.
  /// Edge bookkeeping, exactly as in SynthResult.
  std::vector<double> ideal_edges_ps;
  std::vector<double> actual_edges_ps;
  double unit_interval_ps = 0.0;
};

/// Planning counterparts of the synthesize_* functions below: identical
/// configuration, RNG draw order and edge lists, but no waveform yet.
SynthPlan plan_nrz(const BitPattern& bits, const SynthConfig& cfg,
                   util::Rng* rng = nullptr);
SynthPlan plan_rz(const BitPattern& bits, const SynthConfig& cfg,
                  double duty = 0.5, util::Rng* rng = nullptr);
SynthPlan plan_clock(double f_ghz, std::size_t n_cycles,
                     const SynthConfig& cfg, util::Rng* rng = nullptr);

/// Renders the whole plan into a waveform (the materializing path).
Waveform render(const SynthPlan& plan);

/// Resumable renderer over a SynthPlan. Renders consecutive sample spans
/// on demand; the two-pointer sweep state (first in-window transition,
/// accumulated base level) carries across calls, so the emitted samples
/// are byte-identical to render() at any chunking. The plan must outlive
/// the renderer.
class TransitionRenderer {
 public:
  explicit TransitionRenderer(const SynthPlan& plan) : plan_(&plan) {
    rewind();
  }

  /// Restarts from sample 0.
  void rewind();
  /// Global index of the next sample render() will emit.
  std::size_t next_index() const { return i_; }
  /// Renders min(max_n, remaining) samples into dst; returns the count
  /// (0 once the plan is exhausted).
  std::size_t render(double* dst, std::size_t max_n);

 private:
  const SynthPlan* plan_;
  std::size_t i_ = 0;   ///< Next sample index.
  std::size_t lo_ = 0;  ///< First transition not yet fully in the past.
  double base_ = 0.0;   ///< Sum of levels of fully past transitions.
};

/// NRZ waveform for a bit pattern. `rng` may be null when rj_sigma_ps == 0.
SynthResult synthesize_nrz(const BitPattern& bits, const SynthConfig& cfg,
                           util::Rng* rng = nullptr);

/// Return-to-zero waveform: each 1 bit is a pulse `duty` of a UI wide.
SynthResult synthesize_rz(const BitPattern& bits, const SynthConfig& cfg,
                          double duty = 0.5, util::Rng* rng = nullptr);

/// Square-wave clock at `f_ghz` for `n_cycles` cycles. Equivalent to NRZ
/// alternating data at 2*f_ghz Gbps — the paper's "RZ clock" stimulus used
/// to probe the circuit beyond the NRZ generator's rate limit.
SynthResult synthesize_clock(double f_ghz, std::size_t n_cycles,
                             const SynthConfig& cfg, util::Rng* rng = nullptr);

/// RJ sigma that yields approximately the requested peak-to-peak total
/// jitter when observed over `n_edges` edges (Gaussian order statistics:
/// pp ~= 2 sigma sqrt(2 ln n)).
double rj_sigma_for_tj_pp(double tj_pp_ps, std::size_t n_edges);

}  // namespace gdelay::sig
