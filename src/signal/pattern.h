// Digital bit-pattern generators.
//
// PRBS polynomials are the standard fibonacci LFSRs used by BERT pattern
// generators (PRBS7 = x^7+x^6+1, PRBS15 = x^15+x^14+1,
// PRBS31 = x^31+x^28+1). These are the stimuli the paper's prototype was
// evaluated with ("7 Gb/s NRZ data", eye diagrams of random data).
#pragma once

#include <cstdint>
#include <vector>

namespace gdelay::sig {

using BitPattern = std::vector<int>;  // each element 0 or 1

/// Fibonacci LFSR PRBS generator.
class PrbsGenerator {
 public:
  /// `order` must be one of 7, 15, 23, 31. `seed` must be nonzero in its
  /// low `order` bits (an all-zero LFSR state is absorbing); a zero seed is
  /// replaced by the all-ones state.
  explicit PrbsGenerator(int order, std::uint32_t seed = 0);

  int order() const { return order_; }

  /// Sequence period: 2^order - 1.
  std::uint64_t period() const { return (1ULL << order_) - 1; }

  /// Next bit (0/1).
  int next();

  /// Next `n` bits.
  BitPattern take(std::size_t n);

 private:
  int order_;
  int tap_;  // second feedback tap position
  std::uint32_t state_;
};

/// n bits of PRBS of the given order.
BitPattern prbs(int order, std::size_t n, std::uint32_t seed = 0);

/// 0,1,0,1,... ("clock-like" NRZ data, one transition per bit).
BitPattern alternating(std::size_t n, int first = 0);

/// All-same bits.
BitPattern constant(std::size_t n, int value);

/// Number of 1 bits.
std::size_t popcount(const BitPattern& bits);

/// Length of the longest run of identical bits.
std::size_t longest_run(const BitPattern& bits);

/// Number of bit transitions (positions i where bits[i] != bits[i-1]).
std::size_t transition_count(const BitPattern& bits);

/// Repeated K28.5 comma characters (8b/10b: 0011111010 / 1100000101,
/// alternating disparity) — the classic SerDes alignment/stress pattern,
/// mixing the fastest toggle with a 5-bit run.
BitPattern k285(std::size_t n_codewords);

/// Run-length stress: alternating segments of a long run (`run` identical
/// bits) and fast 0101 toggles of the same length — exercises both the
/// ISI extremes the eye diagrams fold together.
BitPattern run_length_stress(std::size_t n_bits, std::size_t run = 8);

}  // namespace gdelay::sig
