#include "signal/synth.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.h"
#include "util/fastmath.h"

namespace gdelay::sig {
namespace {

// 20-80 % rise time of A*tanh(t/tau) is 2*atanh(0.6)*tau ~= 1.3863*tau.
constexpr double kTanh2080 = 1.3862943611198906;

// Smooth unit step implemented with tanh; 0 below -W*tau, 1 above +W*tau.
constexpr double kStepWindow = 7.0;

double dj_offset(const SynthConfig& cfg, double t_ps) {
  if (cfg.dj_pp_ps <= 0.0) return 0.0;
  return 0.5 * cfg.dj_pp_ps *
         util::det_sin2pi(cfg.dj_freq_ghz * 1e-3 * t_ps);
}

double jittered(const SynthConfig& cfg, double t_ideal, double ui,
                util::Rng* rng) {
  double t = t_ideal + dj_offset(cfg, t_ideal);
  if (cfg.rj_sigma_ps > 0.0) {
    if (rng == nullptr)
      throw std::invalid_argument("synthesize: rj_sigma_ps > 0 needs an Rng");
    // Clamp so pathological draws cannot reorder adjacent edges.
    const double j = rng->gaussian(0.0, cfg.rj_sigma_ps);
    t += std::clamp(j, -0.4 * ui, 0.4 * ui);
  }
  return t;
}

void validate(const SynthConfig& cfg) {
  if (cfg.rate_gbps <= 0.0) throw std::invalid_argument("synth: rate must be > 0");
  if (cfg.dt_ps <= 0.0) throw std::invalid_argument("synth: dt must be > 0");
  if (cfg.rise_time_ps <= 0.0)
    throw std::invalid_argument("synth: rise time must be > 0");
  if (cfg.amplitude_v <= 0.0)
    throw std::invalid_argument("synth: amplitude must be > 0");
}

// Shared epilogue: grid size plus the sorted-transition invariant.
void seal_plan(SynthPlan& plan, const SynthConfig& cfg, std::size_t n_bits) {
  const double total = cfg.lead_in_ps +
                       static_cast<double>(n_bits) * plan.unit_interval_ps +
                       cfg.tail_ps;
  plan.t0_ps = 0.0;
  plan.dt_ps = cfg.dt_ps;
  plan.n = static_cast<std::size_t>(std::ceil(total / cfg.dt_ps)) + 1;
  std::sort(plan.transitions.begin(), plan.transitions.end(),
            [](const Transition& a, const Transition& b) {
              return a.t_ps < b.t_ps;
            });
}

}  // namespace

SynthPlan plan_nrz(const BitPattern& bits, const SynthConfig& cfg,
                   util::Rng* rng) {
  validate(cfg);
  if (bits.empty()) throw std::invalid_argument("synthesize_nrz: empty pattern");
  const double ui = cfg.unit_interval_ps();
  const double a = cfg.amplitude_v;

  SynthPlan plan;
  plan.unit_interval_ps = ui;
  plan.tau_ps = cfg.rise_time_ps / kTanh2080;
  plan.level0_v = bits.front() ? a : -a;
  const double first_edge = cfg.lead_in_ps;
  for (std::size_t i = 1; i < bits.size(); ++i) {
    if (bits[i] == bits[i - 1]) continue;
    const double t_ideal = first_edge + static_cast<double>(i - 1) * ui + ui;
    const double t = jittered(cfg, t_ideal, ui, rng);
    plan.ideal_edges_ps.push_back(t_ideal);
    plan.actual_edges_ps.push_back(t);
    plan.transitions.push_back({t, (bits[i] ? 2.0 : -2.0) * a});
  }
  seal_plan(plan, cfg, bits.size());
  return plan;
}

SynthPlan plan_rz(const BitPattern& bits, const SynthConfig& cfg, double duty,
                  util::Rng* rng) {
  validate(cfg);
  if (bits.empty()) throw std::invalid_argument("synthesize_rz: empty pattern");
  if (duty <= 0.0 || duty >= 1.0)
    throw std::invalid_argument("synthesize_rz: duty must be in (0,1)");
  const double ui = cfg.unit_interval_ps();
  const double a = cfg.amplitude_v;

  SynthPlan plan;
  plan.unit_interval_ps = ui;
  plan.tau_ps = cfg.rise_time_ps / kTanh2080;
  plan.level0_v = -a;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (!bits[i]) continue;
    const double rise_ideal = cfg.lead_in_ps + static_cast<double>(i) * ui;
    const double fall_ideal = rise_ideal + duty * ui;
    const double tr = jittered(cfg, rise_ideal, ui, rng);
    const double tf = jittered(cfg, fall_ideal, ui, rng);
    plan.ideal_edges_ps.push_back(rise_ideal);
    plan.ideal_edges_ps.push_back(fall_ideal);
    plan.actual_edges_ps.push_back(tr);
    plan.actual_edges_ps.push_back(tf);
    plan.transitions.push_back({tr, 2.0 * a});
    plan.transitions.push_back({tf, -2.0 * a});
  }
  seal_plan(plan, cfg, bits.size());
  return plan;
}

SynthPlan plan_clock(double f_ghz, std::size_t n_cycles,
                     const SynthConfig& cfg, util::Rng* rng) {
  if (f_ghz <= 0.0) throw std::invalid_argument("synthesize_clock: f must be > 0");
  SynthConfig c = cfg;
  c.rate_gbps = 2.0 * f_ghz;  // one half-period per "bit"
  return plan_nrz(alternating(2 * n_cycles, 0), c, rng);
}

void TransitionRenderer::rewind() {
  i_ = 0;
  lo_ = 0;
  base_ = plan_->level0_v;
}

std::size_t TransitionRenderer::render(double* dst, std::size_t max_n) {
  const SynthPlan& p = *plan_;
  const auto& trs = p.transitions;
  const double w = kStepWindow * p.tau_ps;
  const std::size_t count = std::min(max_n, p.n - std::min(i_, p.n));
  for (std::size_t out = 0; out < count; ++out, ++i_) {
    const double t = p.t0_ps + p.dt_ps * static_cast<double>(i_);
    while (lo_ < trs.size() && trs[lo_].t_ps < t - w) {
      base_ += trs[lo_].delta_v;
      ++lo_;
    }
    double v = base_;
    for (std::size_t k = lo_; k < trs.size() && trs[k].t_ps <= t + w; ++k) {
      const double x = (t - trs[k].t_ps) / p.tau_ps;
      v += trs[k].delta_v * 0.5 * (1.0 + util::det_tanh(x));
    }
    dst[out] = v;
  }
  return count;
}

Waveform render(const SynthPlan& plan) {
  Waveform wf(plan.t0_ps, plan.dt_ps, plan.n);
  TransitionRenderer ren(plan);
  ren.render(wf.samples().data(), plan.n);
  return wf;
}

namespace {

// Materializing wrapper shared by the synthesize_* entry points.
SynthResult materialize(SynthPlan plan) {
  SynthResult res;
  res.unit_interval_ps = plan.unit_interval_ps;
  res.wf = render(plan);
  res.ideal_edges_ps = std::move(plan.ideal_edges_ps);
  res.actual_edges_ps = std::move(plan.actual_edges_ps);
  return res;
}

}  // namespace

SynthResult synthesize_nrz(const BitPattern& bits, const SynthConfig& cfg,
                           util::Rng* rng) {
  return materialize(plan_nrz(bits, cfg, rng));
}

SynthResult synthesize_rz(const BitPattern& bits, const SynthConfig& cfg,
                          double duty, util::Rng* rng) {
  return materialize(plan_rz(bits, cfg, duty, rng));
}

SynthResult synthesize_clock(double f_ghz, std::size_t n_cycles,
                             const SynthConfig& cfg, util::Rng* rng) {
  return materialize(plan_clock(f_ghz, n_cycles, cfg, rng));
}

double rj_sigma_for_tj_pp(double tj_pp_ps, std::size_t n_edges) {
  if (tj_pp_ps <= 0.0) return 0.0;
  const double n = std::max<std::size_t>(n_edges, 8);
  return tj_pp_ps / (2.0 * std::sqrt(2.0 * util::det_log(static_cast<double>(n))));
}

}  // namespace gdelay::sig
