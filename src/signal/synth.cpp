#include "signal/synth.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.h"
#include "util/fastmath.h"

namespace gdelay::sig {
namespace {

// 20-80 % rise time of A*tanh(t/tau) is 2*atanh(0.6)*tau ~= 1.3863*tau.
constexpr double kTanh2080 = 1.3862943611198906;

// Smooth unit step implemented with tanh; 0 below -W*tau, 1 above +W*tau.
constexpr double kStepWindow = 7.0;

struct Transition {
  double t_ps;
  double delta_v;  // level change across the transition (signed)
};

// Renders a waveform from an initial level plus a list of smooth steps.
// Two-pointer sweep: transitions fully in the past contribute their full
// delta to a running base level; only transitions inside the +/-W*tau
// window are evaluated per sample.
Waveform render(double t0, double dt, std::size_t n, double level0,
                std::vector<Transition> trs, double tau) {
  std::sort(trs.begin(), trs.end(),
            [](const Transition& a, const Transition& b) { return a.t_ps < b.t_ps; });
  Waveform wf(t0, dt, n);
  const double w = kStepWindow * tau;
  std::size_t lo = 0;  // first transition not yet fully in the past
  double base = level0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = wf.time_at(i);
    while (lo < trs.size() && trs[lo].t_ps < t - w) {
      base += trs[lo].delta_v;
      ++lo;
    }
    double v = base;
    for (std::size_t k = lo; k < trs.size() && trs[k].t_ps <= t + w; ++k) {
      const double x = (t - trs[k].t_ps) / tau;
      v += trs[k].delta_v * 0.5 * (1.0 + util::det_tanh(x));
    }
    wf[i] = v;
  }
  return wf;
}

double dj_offset(const SynthConfig& cfg, double t_ps) {
  if (cfg.dj_pp_ps <= 0.0) return 0.0;
  return 0.5 * cfg.dj_pp_ps *
         util::det_sin2pi(cfg.dj_freq_ghz * 1e-3 * t_ps);
}

double jittered(const SynthConfig& cfg, double t_ideal, double ui,
                util::Rng* rng) {
  double t = t_ideal + dj_offset(cfg, t_ideal);
  if (cfg.rj_sigma_ps > 0.0) {
    if (rng == nullptr)
      throw std::invalid_argument("synthesize: rj_sigma_ps > 0 needs an Rng");
    // Clamp so pathological draws cannot reorder adjacent edges.
    const double j = rng->gaussian(0.0, cfg.rj_sigma_ps);
    t += std::clamp(j, -0.4 * ui, 0.4 * ui);
  }
  return t;
}

void validate(const SynthConfig& cfg) {
  if (cfg.rate_gbps <= 0.0) throw std::invalid_argument("synth: rate must be > 0");
  if (cfg.dt_ps <= 0.0) throw std::invalid_argument("synth: dt must be > 0");
  if (cfg.rise_time_ps <= 0.0)
    throw std::invalid_argument("synth: rise time must be > 0");
  if (cfg.amplitude_v <= 0.0)
    throw std::invalid_argument("synth: amplitude must be > 0");
}

}  // namespace

SynthResult synthesize_nrz(const BitPattern& bits, const SynthConfig& cfg,
                           util::Rng* rng) {
  validate(cfg);
  if (bits.empty()) throw std::invalid_argument("synthesize_nrz: empty pattern");
  const double ui = cfg.unit_interval_ps();
  const double tau = cfg.rise_time_ps / kTanh2080;
  const double a = cfg.amplitude_v;

  SynthResult res;
  res.unit_interval_ps = ui;
  std::vector<Transition> trs;
  const double first_edge = cfg.lead_in_ps;
  for (std::size_t i = 1; i < bits.size(); ++i) {
    if (bits[i] == bits[i - 1]) continue;
    const double t_ideal = first_edge + static_cast<double>(i - 1) * ui + ui;
    const double t = jittered(cfg, t_ideal, ui, rng);
    res.ideal_edges_ps.push_back(t_ideal);
    res.actual_edges_ps.push_back(t);
    trs.push_back({t, (bits[i] ? 2.0 : -2.0) * a});
  }

  const double total =
      cfg.lead_in_ps + static_cast<double>(bits.size()) * ui + cfg.tail_ps;
  const auto n = static_cast<std::size_t>(std::ceil(total / cfg.dt_ps)) + 1;
  const double level0 = bits.front() ? a : -a;
  res.wf = render(0.0, cfg.dt_ps, n, level0, std::move(trs), tau);
  return res;
}

SynthResult synthesize_rz(const BitPattern& bits, const SynthConfig& cfg,
                          double duty, util::Rng* rng) {
  validate(cfg);
  if (bits.empty()) throw std::invalid_argument("synthesize_rz: empty pattern");
  if (duty <= 0.0 || duty >= 1.0)
    throw std::invalid_argument("synthesize_rz: duty must be in (0,1)");
  const double ui = cfg.unit_interval_ps();
  const double tau = cfg.rise_time_ps / kTanh2080;
  const double a = cfg.amplitude_v;

  SynthResult res;
  res.unit_interval_ps = ui;
  std::vector<Transition> trs;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (!bits[i]) continue;
    const double rise_ideal = cfg.lead_in_ps + static_cast<double>(i) * ui;
    const double fall_ideal = rise_ideal + duty * ui;
    const double tr = jittered(cfg, rise_ideal, ui, rng);
    const double tf = jittered(cfg, fall_ideal, ui, rng);
    res.ideal_edges_ps.push_back(rise_ideal);
    res.ideal_edges_ps.push_back(fall_ideal);
    res.actual_edges_ps.push_back(tr);
    res.actual_edges_ps.push_back(tf);
    trs.push_back({tr, 2.0 * a});
    trs.push_back({tf, -2.0 * a});
  }

  const double total =
      cfg.lead_in_ps + static_cast<double>(bits.size()) * ui + cfg.tail_ps;
  const auto n = static_cast<std::size_t>(std::ceil(total / cfg.dt_ps)) + 1;
  res.wf = render(0.0, cfg.dt_ps, n, -a, std::move(trs), tau);
  return res;
}

SynthResult synthesize_clock(double f_ghz, std::size_t n_cycles,
                             const SynthConfig& cfg, util::Rng* rng) {
  if (f_ghz <= 0.0) throw std::invalid_argument("synthesize_clock: f must be > 0");
  SynthConfig c = cfg;
  c.rate_gbps = 2.0 * f_ghz;  // one half-period per "bit"
  return synthesize_nrz(alternating(2 * n_cycles, 0), c, rng);
}

double rj_sigma_for_tj_pp(double tj_pp_ps, std::size_t n_edges) {
  if (tj_pp_ps <= 0.0) return 0.0;
  const double n = std::max<std::size_t>(n_edges, 8);
  return tj_pp_ps / (2.0 * std::sqrt(2.0 * util::det_log(static_cast<double>(n))));
}

}  // namespace gdelay::sig
