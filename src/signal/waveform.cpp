#include "signal/waveform.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gdelay::sig {

Waveform::Waveform(double t0_ps, double dt_ps, std::size_t n)
    : t0_(t0_ps), dt_(dt_ps), v_(n, 0.0) {
  if (dt_ps <= 0.0) throw std::invalid_argument("Waveform: dt must be > 0");
}

Waveform::Waveform(double t0_ps, double dt_ps, std::vector<double> samples)
    : t0_(t0_ps), dt_(dt_ps), v_(std::move(samples)) {
  if (dt_ps <= 0.0) throw std::invalid_argument("Waveform: dt must be > 0");
}

Waveform Waveform::from_function(double t0_ps, double dt_ps, std::size_t n,
                                 const std::function<double(double)>& f) {
  Waveform w(t0_ps, dt_ps, n);
  for (std::size_t i = 0; i < n; ++i) w.v_[i] = f(w.time_at(i));
  return w;
}

double Waveform::value_at(double t_ps) const {
  if (empty()) return 0.0;
  const double x = (t_ps - t0_) / dt_;
  if (x <= 0.0) return v_.front();
  const double last = static_cast<double>(size() - 1);
  if (x >= last) return v_.back();
  const auto i = static_cast<std::size_t>(x);
  const double frac = x - static_cast<double>(i);
  return v_[i] + (v_[i + 1] - v_[i]) * frac;
}

double Waveform::min_value() const {
  if (empty()) return 0.0;
  return *std::min_element(v_.begin(), v_.end());
}

double Waveform::max_value() const {
  if (empty()) return 0.0;
  return *std::max_element(v_.begin(), v_.end());
}

double Waveform::peak_to_peak() const { return max_value() - min_value(); }

Waveform& Waveform::scale(double gain, double offset) {
  for (auto& s : v_) s = s * gain + offset;
  return *this;
}

Waveform Waveform::shifted(double shift_ps) const {
  Waveform w = *this;
  w.t0_ += shift_ps;
  return w;
}

Waveform Waveform::slice(double t_from_ps, double t_to_ps) const {
  if (empty() || t_to_ps < t_from_ps) return Waveform(t_from_ps, dt_, 0);
  const double lo = std::max(t_from_ps, t0_);
  const double hi = std::min(t_to_ps, t_end_ps());
  const auto i0 = static_cast<std::size_t>(std::ceil((lo - t0_) / dt_ - 1e-9));
  const auto i1 = static_cast<std::size_t>(std::floor((hi - t0_) / dt_ + 1e-9));
  if (i1 < i0 || i0 >= size()) return Waveform(lo, dt_, 0);
  const std::size_t end = std::min(i1 + 1, size());
  return Waveform(time_at(i0), dt_,
                  std::vector<double>(v_.begin() + static_cast<std::ptrdiff_t>(i0),
                                      v_.begin() + static_cast<std::ptrdiff_t>(end)));
}

bool Waveform::same_grid(const Waveform& other) const {
  return size() == other.size() && std::abs(t0_ - other.t0_) < 1e-9 &&
         std::abs(dt_ - other.dt_) < 1e-12;
}

Waveform Waveform::add(const Waveform& a, const Waveform& b) {
  if (!a.same_grid(b)) throw std::invalid_argument("Waveform::add: grid mismatch");
  Waveform out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out.v_[i] += b.v_[i];
  return out;
}

Waveform Waveform::resampled(double new_dt_ps) const {
  if (new_dt_ps <= 0.0)
    throw std::invalid_argument("Waveform::resampled: dt must be > 0");
  if (empty()) return Waveform(t0_, new_dt_ps, 0);
  const auto n = static_cast<std::size_t>(
                     std::floor(duration_ps() / new_dt_ps + 1e-9)) +
                 1;
  Waveform out(t0_, new_dt_ps, n);
  for (std::size_t i = 0; i < n; ++i) out[i] = value_at(out.time_at(i));
  return out;
}

Waveform Waveform::subtract(const Waveform& a, const Waveform& b) {
  if (!a.same_grid(b))
    throw std::invalid_argument("Waveform::subtract: grid mismatch");
  Waveform out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out.v_[i] -= b.v_[i];
  return out;
}

}  // namespace gdelay::sig
