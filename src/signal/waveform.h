// Dense, uniformly sampled differential waveform.
//
// This is the common currency of the library: pattern generators produce
// waveforms, analog elements transform them, instruments measure them.
// Samples are differential voltages (V); the time axis is picoseconds.
// Value semantics throughout — a Waveform is just (t0, dt, samples).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace gdelay::sig {

class Waveform {
 public:
  Waveform() = default;

  /// Uninitialized-to-zero waveform of `n` samples.
  Waveform(double t0_ps, double dt_ps, std::size_t n);

  /// Waveform from existing samples.
  Waveform(double t0_ps, double dt_ps, std::vector<double> samples);

  /// Waveform sampled from a function of time.
  static Waveform from_function(double t0_ps, double dt_ps, std::size_t n,
                                const std::function<double(double)>& f);

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  double t0_ps() const { return t0_; }
  double dt_ps() const { return dt_; }
  /// Time of sample i.
  double time_at(std::size_t i) const { return t0_ + dt_ * static_cast<double>(i); }
  /// Time of the last sample.
  double t_end_ps() const { return empty() ? t0_ : time_at(size() - 1); }
  /// Total spanned time.
  double duration_ps() const { return empty() ? 0.0 : dt_ * static_cast<double>(size() - 1); }

  double operator[](std::size_t i) const { return v_[i]; }
  double& operator[](std::size_t i) { return v_[i]; }
  const std::vector<double>& samples() const { return v_; }
  std::vector<double>& samples() { return v_; }

  /// Linear interpolation at an arbitrary time; clamps outside the span.
  double value_at(double t_ps) const;

  /// Min / max / peak-to-peak sample values.
  double min_value() const;
  double max_value() const;
  double peak_to_peak() const;

  /// In-place scale and offset: v <- v * gain + offset.
  Waveform& scale(double gain, double offset = 0.0);

  /// In-place per-sample transform: v[i] <- f(v[i]). Returns *this for
  /// chaining; replaces the copy-out/transform/copy-back pattern.
  template <typename F>
  Waveform& map_samples(F&& f) {
    for (double& x : v_) x = f(x);
    return *this;
  }

  /// Returns a copy shifted in time by `shift_ps` (pure relabeling of the
  /// time axis; samples are untouched).
  Waveform shifted(double shift_ps) const;

  /// In-place time shift: relabels the time axis without copying samples.
  Waveform& shift(double shift_ps) {
    t0_ += shift_ps;
    return *this;
  }

  /// Returns the sub-waveform covering [t_from, t_to] (clamped).
  Waveform slice(double t_from_ps, double t_to_ps) const;

  /// Sample-wise combination of two waveforms that must share t0/dt/size.
  /// Throws std::invalid_argument on grid mismatch.
  static Waveform add(const Waveform& a, const Waveform& b);
  static Waveform subtract(const Waveform& a, const Waveform& b);

  /// True if `other` shares this waveform's sampling grid exactly.
  bool same_grid(const Waveform& other) const;

  /// Returns this waveform resampled onto a new step (linear
  /// interpolation; same t0 and span). Throws on new_dt <= 0.
  Waveform resampled(double new_dt_ps) const;

 private:
  double t0_ = 0.0;
  double dt_ = 1.0;
  std::vector<double> v_;
};

}  // namespace gdelay::sig
