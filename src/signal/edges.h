// Threshold-crossing extraction.
//
// Instruments (delay meter, jitter analyzer, eye diagram) reduce waveforms
// to lists of 50 %-threshold crossing instants. Crossing times are located
// by linear interpolation between the two straddling samples, which gives
// far-sub-sample (<< 0.1 ps) accuracy on the smooth edges our synthesis
// and circuit models produce.
#pragma once

#include <vector>

#include "signal/waveform.h"

namespace gdelay::util {
class ByteWriter;
class ByteReader;
}  // namespace gdelay::util

namespace gdelay::sig {

struct Edge {
  double t_ps = 0.0;
  bool rising = false;
};

struct EdgeExtractOptions {
  double threshold_v = 0.0;   ///< Differential decision threshold.
  double hysteresis_v = 0.0;  ///< Re-arm band around the threshold.
  /// Ignore crossings before this time (lets callers skip lead-in settling).
  double t_min_ps = -1e18;
  double t_max_ps = 1e18;
};

/// All threshold crossings of `wf`, in time order. With hysteresis > 0 a
/// crossing is only reported after the signal has moved at least
/// hysteresis/2 past the threshold, suppressing chatter on noisy traces.
std::vector<Edge> extract_edges(const Waveform& wf,
                                const EdgeExtractOptions& opt = {});

/// Incremental threshold-crossing extraction over a sample stream.
///
/// Feeding the same samples in any chunking — one call or sample by
/// sample — yields exactly the edges extract_edges() reports for the
/// materialized waveform; extract_edges() is in fact implemented on top
/// of this class, so the identity holds by construction. The crossing
/// locator scans backwards from the hysteresis-qualified flip to the
/// straddling sample pair, so a short history window is retained across
/// chunk seams. History is pruned whenever the signal sits on the
/// current state's side of the threshold (or polarity is still
/// unestablished): past that point no future backscan can reach, because
/// the next flip must cross the threshold strictly later. The window is
/// therefore O(transition length), not O(stream length).
class StreamingEdgeExtractor {
 public:
  StreamingEdgeExtractor(double t0_ps, double dt_ps,
                         const EdgeExtractOptions& opt = {});

  /// Appends `n` samples to the stream, emitting any completed edges.
  void consume(const double* samples, std::size_t n);

  /// Samples consumed so far.
  std::size_t samples_seen() const { return n_seen_; }
  /// Edges emitted so far, in time order.
  const std::vector<Edge>& edges() const { return edges_; }
  /// Moves the edge list out (the extractor keeps its scan state).
  std::vector<Edge> take_edges() { return std::move(edges_); }

  /// Byte-exact checkpoint of the full scan state (grid, thresholds,
  /// polarity, retained history window, emitted edges). load() overwrites
  /// this extractor, so resuming a stream from the restored state yields
  /// exactly the edges of the uninterrupted run.
  void save(util::ByteWriter& w) const;
  void load(util::ByteReader& r);

  /// Appends already-extracted edges (a merged shard's output). The scan
  /// state is untouched; only the emitted-edge list grows.
  void append_edges(const std::vector<Edge>& more);

 private:
  double t0_;
  double dt_;
  double th_;
  double hy_;
  double t_min_;
  double t_max_;
  int state_ = 0;           ///< +1 above, -1 below, 0 before first excursion.
  std::size_t n_seen_ = 0;  ///< Global index of the next sample.
  std::vector<double> hist_;  ///< Retained samples; hist_[0] is index base_.
  std::size_t base_ = 0;      ///< Global index of hist_.front().
  std::vector<Edge> edges_;
};

/// Convenience filters.
std::vector<double> edge_times(const std::vector<Edge>& edges);
std::vector<double> rising_times(const std::vector<Edge>& edges);
std::vector<double> falling_times(const std::vector<Edge>& edges);

}  // namespace gdelay::sig
