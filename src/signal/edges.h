// Threshold-crossing extraction.
//
// Instruments (delay meter, jitter analyzer, eye diagram) reduce waveforms
// to lists of 50 %-threshold crossing instants. Crossing times are located
// by linear interpolation between the two straddling samples, which gives
// far-sub-sample (<< 0.1 ps) accuracy on the smooth edges our synthesis
// and circuit models produce.
#pragma once

#include <vector>

#include "signal/waveform.h"

namespace gdelay::sig {

struct Edge {
  double t_ps = 0.0;
  bool rising = false;
};

struct EdgeExtractOptions {
  double threshold_v = 0.0;   ///< Differential decision threshold.
  double hysteresis_v = 0.0;  ///< Re-arm band around the threshold.
  /// Ignore crossings before this time (lets callers skip lead-in settling).
  double t_min_ps = -1e18;
  double t_max_ps = 1e18;
};

/// All threshold crossings of `wf`, in time order. With hysteresis > 0 a
/// crossing is only reported after the signal has moved at least
/// hysteresis/2 past the threshold, suppressing chatter on noisy traces.
std::vector<Edge> extract_edges(const Waveform& wf,
                                const EdgeExtractOptions& opt = {});

/// Convenience filters.
std::vector<double> edge_times(const std::vector<Edge>& edges);
std::vector<double> rising_times(const std::vector<Edge>& edges);
std::vector<double> falling_times(const std::vector<Edge>& edges);

}  // namespace gdelay::sig
