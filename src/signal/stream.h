// Streaming sample sources: the producer half of the fused executor.
//
// A SampleSource emits a waveform chunk by chunk instead of materializing
// it. Sources are pull-driven — the pipeline asks for the next span of
// samples into a caller-owned buffer — and rewindable, so the same source
// can feed several passes (e.g. a reference trace consumed once per vctrl
// setting). Every source is required to be byte-identical to its
// materializing counterpart at any chunk size.
#pragma once

#include <cstddef>

#include "signal/synth.h"
#include "signal/waveform.h"

namespace gdelay::sig {

/// Pull-based producer of waveform samples on a uniform time grid.
class SampleSource {
 public:
  virtual ~SampleSource() = default;

  /// Time of sample 0.
  virtual double t0_ps() const = 0;
  /// Sample spacing.
  virtual double dt_ps() const = 0;
  /// Total number of samples the source emits per pass.
  virtual std::size_t size() const = 0;
  /// Restarts the source at sample 0.
  virtual void rewind() = 0;
  /// Copies min(max_n, remaining) samples into dst and advances; returns
  /// the count (0 once exhausted).
  virtual std::size_t read(double* dst, std::size_t max_n) = 0;
};

/// Replays an existing materialized waveform. The waveform is not owned
/// and must outlive the source.
class WaveformSource final : public SampleSource {
 public:
  explicit WaveformSource(const Waveform& wf) : wf_(&wf) {}

  double t0_ps() const override { return wf_->t0_ps(); }
  double dt_ps() const override { return wf_->dt_ps(); }
  std::size_t size() const override { return wf_->size(); }
  void rewind() override { pos_ = 0; }
  std::size_t read(double* dst, std::size_t max_n) override;

 private:
  const Waveform* wf_;
  std::size_t pos_ = 0;
};

/// Renders a SynthPlan chunk by chunk; the streaming counterpart of
/// synthesize_nrz/rz/clock. Owns its plan (all RNG draws happened at
/// planning time), so emitting samples is deterministic and the full
/// waveform never exists in memory.
class SynthSource final : public SampleSource {
 public:
  explicit SynthSource(SynthPlan plan)
      : plan_(std::move(plan)), renderer_(plan_) {}

  SynthSource(const SynthSource&) = delete;
  SynthSource& operator=(const SynthSource&) = delete;

  double t0_ps() const override { return plan_.t0_ps; }
  double dt_ps() const override { return plan_.dt_ps; }
  std::size_t size() const override { return plan_.n; }
  void rewind() override { renderer_.rewind(); }
  std::size_t read(double* dst, std::size_t max_n) override {
    return renderer_.render(dst, max_n);
  }

  const SynthPlan& plan() const { return plan_; }
  double unit_interval_ps() const { return plan_.unit_interval_ps; }

 private:
  SynthPlan plan_;
  TransitionRenderer renderer_;
};

}  // namespace gdelay::sig
