#include "signal/pattern.h"

#include <algorithm>
#include <stdexcept>

namespace gdelay::sig {

namespace {
int second_tap_for(int order) {
  switch (order) {
    case 7: return 6;    // x^7 + x^6 + 1
    case 15: return 14;  // x^15 + x^14 + 1
    case 23: return 18;  // x^23 + x^18 + 1
    case 31: return 28;  // x^31 + x^28 + 1
    default:
      throw std::invalid_argument("PrbsGenerator: order must be 7/15/23/31");
  }
}
}  // namespace

PrbsGenerator::PrbsGenerator(int order, std::uint32_t seed)
    : order_(order), tap_(second_tap_for(order)), state_(seed) {
  const std::uint32_t mask =
      order_ == 31 ? 0x7fffffffu : ((1u << order_) - 1u);
  state_ &= mask;
  if (state_ == 0) state_ = mask;  // avoid the absorbing all-zero state
}

int PrbsGenerator::next() {
  // Left-shift Fibonacci form: feedback = x^order XOR x^tap, new bit
  // enters at the LSB and is also the output (the standard BERT pattern).
  const std::uint32_t fb =
      ((state_ >> (order_ - 1)) ^ (state_ >> (tap_ - 1))) & 1u;
  const std::uint32_t mask =
      order_ == 31 ? 0x7fffffffu : ((1u << order_) - 1u);
  state_ = ((state_ << 1) | fb) & mask;
  return static_cast<int>(fb);
}

BitPattern PrbsGenerator::take(std::size_t n) {
  BitPattern out(n);
  for (auto& b : out) b = next();
  return out;
}

BitPattern prbs(int order, std::size_t n, std::uint32_t seed) {
  return PrbsGenerator(order, seed).take(n);
}

BitPattern alternating(std::size_t n, int first) {
  BitPattern out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<int>((i + static_cast<std::size_t>(first)) & 1u);
  return out;
}

BitPattern constant(std::size_t n, int value) {
  return BitPattern(n, value ? 1 : 0);
}

std::size_t popcount(const BitPattern& bits) {
  return static_cast<std::size_t>(std::count(bits.begin(), bits.end(), 1));
}

std::size_t longest_run(const BitPattern& bits) {
  std::size_t best = 0, cur = 0;
  int prev = -1;
  for (int b : bits) {
    cur = (b == prev) ? cur + 1 : 1;
    prev = b;
    best = std::max(best, cur);
  }
  return best;
}

std::size_t transition_count(const BitPattern& bits) {
  std::size_t n = 0;
  for (std::size_t i = 1; i < bits.size(); ++i)
    if (bits[i] != bits[i - 1]) ++n;
  return n;
}

BitPattern k285(std::size_t n_codewords) {
  static const int plus[10] = {0, 0, 1, 1, 1, 1, 1, 0, 1, 0};
  static const int minus[10] = {1, 1, 0, 0, 0, 0, 0, 1, 0, 1};
  BitPattern out;
  out.reserve(n_codewords * 10);
  for (std::size_t k = 0; k < n_codewords; ++k) {
    const int* cw = (k & 1) ? minus : plus;
    out.insert(out.end(), cw, cw + 10);
  }
  return out;
}

BitPattern run_length_stress(std::size_t n_bits, std::size_t run) {
  if (run == 0) run = 1;
  BitPattern out;
  out.reserve(n_bits);
  bool long_segment = true;
  while (out.size() < n_bits) {
    // Each segment starts with the complement of the last emitted bit so
    // runs never merge across the segment boundary.
    const int start = out.empty() ? 1 : 1 - out.back();
    if (long_segment) {
      for (std::size_t i = 0; i < run && out.size() < n_bits; ++i)
        out.push_back(start);
    } else {
      for (std::size_t i = 0; i < run && out.size() < n_bits; ++i)
        out.push_back(static_cast<int>(i & 1u) == 0 ? start : 1 - start);
    }
    long_segment = !long_segment;
  }
  return out;
}

}  // namespace gdelay::sig
