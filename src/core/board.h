// The multi-channel deskew board.
//
// The paper demonstrates a 2-channel prototype (Fig. 11) and reports a
// 4-channel version "for deskewing parallel data buses from an ATE"; the
// end application needs 8 differential channels under the DIB. DelayBoard
// bundles N VariableDelayChannels built from one nominal design with
// per-instance process variation, plus board-level calibration (one
// stimulus pass per channel) and group programming.
#pragma once

#include <optional>
#include <vector>

#include "core/calibration.h"
#include "core/channel.h"
#include "core/variation.h"
#include "signal/waveform.h"
#include "util/rng.h"

namespace gdelay::core {

struct DelayBoardConfig {
  int n_channels = 4;
  ChannelConfig nominal = ChannelConfig::prototype();
  /// Per-instance scatter applied to every channel (disable by zeroing).
  ProcessVariation variation{};
};

class DelayBoard {
 public:
  DelayBoard(const DelayBoardConfig& cfg, util::Rng rng);

  int n_channels() const { return static_cast<int>(channels_.size()); }
  VariableDelayChannel& channel(int i) {
    return channels_.at(static_cast<std::size_t>(i));
  }
  const VariableDelayChannel& channel(int i) const {
    return channels_.at(static_cast<std::size_t>(i));
  }

  /// Calibrates every channel against the same stimulus; results are
  /// retained for programming. Returns the calibrations.
  const std::vector<ChannelCalibration>& calibrate(
      const sig::Waveform& stimulus, const DelayCalibrator::Options& opt);
  const std::vector<ChannelCalibration>& calibrate(
      const sig::Waveform& stimulus) {
    return calibrate(stimulus, DelayCalibrator::Options{});
  }

  bool is_calibrated() const { return !calibrations_.empty(); }
  const std::vector<ChannelCalibration>& calibrations() const;

  /// Programs one channel to a delay relative to its own minimum.
  /// Requires calibrate() to have run. Returns the realized setting.
  DelaySetting program(int channel, double relative_delay_ps);

  /// Programs every channel to the same relative delay (group move).
  std::vector<DelaySetting> program_all(double relative_delay_ps);

  /// The largest delay programmable on EVERY channel (min over channels
  /// of the per-channel total range) — the board's usable group range.
  double common_range_ps() const;

 private:
  std::vector<VariableDelayChannel> channels_;
  std::vector<ChannelCalibration> calibrations_;
};

}  // namespace gdelay::core
