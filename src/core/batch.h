// Lane-batched multi-stream executor.
//
// The serial-by-contract recursions (slew limiting, the VGA droop tail)
// capped PR 5's whole-channel AVX2 speedup at ~1.7x: a single stream
// cannot vectorize a loop-carried nonlinear dependence. But the repo's
// dominant workloads — Monte-Carlo matching trials, calibration Vctrl
// sweeps, board channels — are embarrassingly parallel across STREAMS.
// BatchRunner exploits that: it takes N independent cloned element
// chains (decorrelated via fork_noise(), programmed with per-stream taps
// and Vctrl), transposes each chunk into an interleaved time-major
// layout buf[i*w + s], and drives the chains' exact pass sequences
// through the lane-batched backend kernels (tanh_stage_batch /
// one_pole_batch / slew_batch / vga_tail_batch), which advance 4 streams
// per AVX2 iteration — serial in time, parallel across streams.
//
// Determinism contract (enforced by tests/test_batch_equivalence.cpp):
// every stream's output is bit-identical to its solo run
// (stream.process(stimulus)) on the same backend, for ANY batch width
// and ANY stream-to-lane assignment. Each stream draws from its own RNG
// in the solo order, so fork_noise() decorrelation is preserved exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "backend/backend.h"
#include "core/channel.h"
#include "measure/sinks.h"
#include "signal/waveform.h"

namespace gdelay::core {

class BatchRunner {
 public:
  BatchRunner() = default;

  /// Adds a stream (borrowed; must outlive the runner). All streams in
  /// one runner must be the same kind — whole channels or bare fine
  /// lines — with the same stage count; per-stream tap selection, Vctrl
  /// and RNG streams may differ freely.
  void add(VariableDelayChannel& ch);
  void add(FineDelayLine& line);

  std::size_t width() const {
    return channels_.empty() ? fines_.size() : channels_.size();
  }

  /// Resets every stream, then runs the shared stimulus through all of
  /// them in lockstep chunks. outs[s] is bit-identical to
  /// streams[s].process(stimulus) on the active backend.
  std::vector<sig::Waveform> run(const sig::Waveform& stimulus);

  /// Reuse variant: `outs` is resized/regridded as needed, so repeated
  /// runs allocate nothing after the first.
  void run(const sig::Waveform& stimulus, std::vector<sig::Waveform>& outs);

  /// Streaming variant: feeds each stream's output column into its sink
  /// (begin/consume/finish), chunked exactly like the solo Pipeline
  /// path, so incremental measurements match their solo-run results.
  void run(const sig::Waveform& stimulus,
           const std::vector<meas::ISampleSink*>& sinks);

 private:
  enum class Lim { kFanout, kMux, kFineOut };

  FineDelayLine& fine_of(std::size_t s) {
    return channels_.empty() ? *fines_[s] : channels_[s]->fine();
  }
  analog::VariableGainBuffer& vga_of(std::size_t s, int stage) {
    return fine_of(s).stage(stage);
  }
  analog::LimitingBuffer& lim_of(std::size_t s, Lim which);

  void reset_streams();
  void ensure_scratch(std::size_t n);
  /// One interleaved chunk through the full chain, in place.
  void process_chunk(double* buf, std::size_t n, double dt_ps);
  void limiting_pass(Lim which, double* buf, std::size_t n, double dt_ps);
  void vga_pass(int stage, double* buf, std::size_t n, double dt_ps);
  void tline_pass(int tap, const double* in, double* out, std::size_t n,
                  double dt_ps);
  void noise_pass(double* noise, std::size_t n, double dt_ps);

  std::vector<VariableDelayChannel*> channels_;
  std::vector<FineDelayLine*> fines_;

  // Chunk scratch (interleaved, kBlockSamples * width) and per-stream
  // marshalling arrays, sized once per run and reused across chunks.
  std::vector<double> ilv_, noise_, lim_, fan_, tap_, col_;
  std::vector<double> p0_, p1_, p2_;
  std::vector<analog::NoiseSource*> nsrc_;
  std::vector<backend::OnePoleState*> poles_;
  std::vector<const backend::SlewCoeffs*> slewc_;
  std::vector<backend::SlewState*> slews_;
  std::vector<backend::VgaTailCoeffs> tailc_;
  std::vector<const backend::VgaTailCoeffs*> tailcp_;
  std::vector<backend::VgaTailState*> tails_;
};

}  // namespace gdelay::core
