#include "core/jitter_injector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.h"
#include "util/fastmath.h"

namespace gdelay::core {

JitterInjector::JitterInjector(const JitterInjectorConfig& cfg, util::Rng rng)
    : cfg_(cfg),
      vctrl_dc_(cfg.vctrl_dc_v >= 0.0 ? cfg.vctrl_dc_v
                                      : cfg.line.stage.vctrl_max_v / 2.0),
      noise_pp_(cfg.noise_pp_v),
      sj_pp_(cfg.sj_pp_v),
      sj_freq_(cfg.sj_freq_ghz),
      line_(cfg.line, rng.fork(1)),
      noise_(1.0 /* unit sigma, scaled in step() */, cfg.noise_bandwidth_ghz,
             rng.fork(2)),
      coupler_(cfg.coupling_hp_ghz) {
  if (cfg.noise_pp_v < 0.0)
    throw std::invalid_argument("JitterInjector: noise_pp must be >= 0");
}

void JitterInjector::set_noise_pp(double pp_v) {
  if (pp_v < 0.0)
    throw std::invalid_argument("JitterInjector: noise_pp must be >= 0");
  noise_pp_ = pp_v;
}

void JitterInjector::set_sj(double pp_v, double freq_ghz) {
  if (pp_v < 0.0 || freq_ghz <= 0.0)
    throw std::invalid_argument("JitterInjector: bad SJ parameters");
  sj_pp_ = pp_v;
  sj_freq_ = freq_ghz;
}

void JitterInjector::reset() {
  line_.reset();
  noise_.reset();
  coupler_.reset();
  sj_t_ps_ = 0.0;
}

double JitterInjector::step(double vin, double dt_ps) {
  const double sigma = util::gaussian_pp_to_sigma(noise_pp_);
  double raw = noise_.step(dt_ps) * sigma;
  if (sj_pp_ > 0.0)
    raw += 0.5 * sj_pp_ *
           util::det_sin2pi(sj_freq_ * 1e-3 * sj_t_ps_);
  sj_t_ps_ += dt_ps;
  const double coupled = coupler_.step(raw, dt_ps);
  const double vctrl = std::clamp(vctrl_dc_ + coupled, 0.0,
                                  cfg_.line.stage.vctrl_max_v);
  return line_.step_with_vctrl(vin, vctrl, dt_ps);
}

void JitterInjector::process_block(const double* in, double* out,
                                   std::size_t n, double dt_ps) {
  for (std::size_t i = 0; i < n; ++i) out[i] = step(in[i], dt_ps);
}

sig::Waveform JitterInjector::process(const sig::Waveform& in) {
  reset();
  sig::Waveform out(in.t0_ps(), in.dt_ps(), in.size());
  process_block(in.samples().data(), out.samples().data(), in.size(),
                in.dt_ps());
  return out;
}

}  // namespace gdelay::core
