#include "core/batch.h"

#include <algorithm>
#include <stdexcept>

#include "analog/element.h"

namespace gdelay::core {

namespace {
constexpr std::size_t kChunk = analog::kBlockSamples;
}  // namespace

void BatchRunner::add(VariableDelayChannel& ch) {
  if (!fines_.empty())
    throw std::logic_error(
        "BatchRunner: cannot mix whole channels and bare fine lines");
  if (!channels_.empty() &&
      ch.fine().n_stages() != channels_.front()->fine().n_stages())
    throw std::logic_error("BatchRunner: fine stage-count mismatch");
  channels_.push_back(&ch);
}

void BatchRunner::add(FineDelayLine& line) {
  if (!channels_.empty())
    throw std::logic_error(
        "BatchRunner: cannot mix whole channels and bare fine lines");
  if (!fines_.empty() && line.n_stages() != fines_.front()->n_stages())
    throw std::logic_error("BatchRunner: fine stage-count mismatch");
  fines_.push_back(&line);
}

analog::LimitingBuffer& BatchRunner::lim_of(std::size_t s, Lim which) {
  switch (which) {
    case Lim::kFanout:
      return channels_[s]->coarse().fanout();
    case Lim::kMux:
      return channels_[s]->coarse().mux();
    default:
      return fine_of(s).output_stage();
  }
}

void BatchRunner::reset_streams() {
  for (auto* ch : channels_) ch->reset();
  for (auto* f : fines_) f->reset();
}

void BatchRunner::ensure_scratch(std::size_t n) {
  const std::size_t w = width();
  ilv_.resize(n * w);
  noise_.resize(n * w);
  lim_.resize(n * w);
  col_.resize(n);
  if (!channels_.empty()) {
    fan_.resize(n * w);
    tap_.resize(n * w);
  }
  p0_.resize(w);
  p1_.resize(w);
  p2_.resize(w);
  nsrc_.resize(w);
  poles_.resize(w);
  slewc_.resize(w);
  slews_.resize(w);
  tailc_.resize(w);
  tailcp_.resize(w);
  tails_.resize(w);
}

// Band-limited Gaussian noise for all streams at once, interleaved into
// `noise`. Each stream draws from its OWN RNG in the solo order
// (fill_gaussian is chunk-invariant by the Rng contract), so the output
// column equals that stream's solo NoiseSource::process_block — including
// the sigma == 0 short-circuit, which advances neither RNG nor filter.
// Callers load nsrc_ with the streams' sources first.
void BatchRunner::noise_pass(double* noise, std::size_t n, double dt_ps) {
  const std::size_t w = width();
  const backend::Kernels& k = backend::active();
  bool any = false, all = true;
  for (std::size_t s = 0; s < w; ++s) {
    const bool on = nsrc_[s]->sigma_v() != 0.0;
    any = any || on;
    all = all && on;
  }
  if (!any) {
    std::fill(noise, noise + n * w, 0.0);
    return;
  }
  if (all) {
    for (std::size_t s = 0; s < w; ++s) {
      analog::NoiseSource& src = *nsrc_[s];
      src.prime(dt_ps);
      src.rng().fill_gaussian(col_.data(), n, 0.0, src.primed_sigma_x());
      for (std::size_t i = 0; i < n; ++i) noise[i * w + s] = col_[i];
      p0_[s] = src.primed_alpha();
      poles_[s] = &src.pole_state();
    }
    k.one_pole_batch(noise, noise, n, w, p0_.data(), poles_.data());
  } else {
    // Mixed on/off across streams (unusual configs): per-stream solo path.
    for (std::size_t s = 0; s < w; ++s) {
      nsrc_[s]->process_block(col_.data(), n, dt_ps);
      for (std::size_t i = 0; i < n; ++i) noise[i * w + s] = col_[i];
    }
  }
}

// One LimitingBuffer::process_block across all streams, in place on the
// interleaved buffer: input tanh pair, bandwidth pole, band-limited noise
// folded into the limiting output stage, output slew.
void BatchRunner::limiting_pass(Lim which, double* buf, std::size_t n,
                                double dt_ps) {
  const std::size_t w = width();
  const backend::Kernels& k = backend::active();
  for (std::size_t s = 0; s < w; ++s) {
    const analog::LimitingBufferConfig& cfg = lim_of(s, which).config();
    p0_[s] = cfg.input_gain;
    p1_[s] = cfg.input_sat_v;
    p2_[s] = cfg.input_sat_v;
  }
  k.tanh_stage_batch(buf, nullptr, buf, n, w, p0_.data(), p1_.data(),
                     p2_.data());
  for (std::size_t s = 0; s < w; ++s) {
    analog::SinglePoleFilter& f = lim_of(s, which).lpf();
    p0_[s] = f.prime(dt_ps);
    poles_[s] = &f.pole_state();
  }
  k.one_pole_batch(buf, buf, n, w, p0_.data(), poles_.data());
  for (std::size_t s = 0; s < w; ++s) nsrc_[s] = &lim_of(s, which).noise();
  noise_pass(noise_.data(), n, dt_ps);
  for (std::size_t s = 0; s < w; ++s) {
    const analog::LimitingBufferConfig& cfg = lim_of(s, which).config();
    p0_[s] = cfg.output_gain;
    p1_[s] = cfg.output_ref_v;
    p2_[s] = cfg.out_swing_v;
  }
  k.tanh_stage_batch(buf, noise_.data(), buf, n, w, p0_.data(), p1_.data(),
                     p2_.data());
  for (std::size_t s = 0; s < w; ++s) {
    analog::SlewRateLimiter& sl = lim_of(s, which).slew_limiter();
    sl.prime(dt_ps);
    slewc_[s] = &sl.primed_coeffs();
    slews_[s] = &sl.state();
  }
  k.slew_batch(buf, buf, n, w, slewc_.data(), slews_.data());
}

// One VariableGainBuffer::process_block across all streams: input tanh
// pair, bandwidth pole, noise into the amplitude-programmed limiting
// stage, the fused droop/slew tail, and the output-network pole.
void BatchRunner::vga_pass(int stage, double* buf, std::size_t n,
                           double dt_ps) {
  const std::size_t w = width();
  const backend::Kernels& k = backend::active();
  for (std::size_t s = 0; s < w; ++s) {
    const analog::VgaBufferConfig& cfg = vga_of(s, stage).config();
    p0_[s] = cfg.input_gain;
    p1_[s] = cfg.input_sat_v;
    p2_[s] = cfg.input_sat_v;
  }
  k.tanh_stage_batch(buf, nullptr, buf, n, w, p0_.data(), p1_.data(),
                     p2_.data());
  for (std::size_t s = 0; s < w; ++s) {
    analog::SinglePoleFilter& f = vga_of(s, stage).lpf();
    p0_[s] = f.prime(dt_ps);
    poles_[s] = &f.pole_state();
  }
  k.one_pole_batch(buf, buf, n, w, p0_.data(), poles_.data());
  for (std::size_t s = 0; s < w; ++s) nsrc_[s] = &vga_of(s, stage).noise();
  noise_pass(noise_.data(), n, dt_ps);
  for (std::size_t s = 0; s < w; ++s) {
    const analog::VgaBufferConfig& cfg = vga_of(s, stage).config();
    p0_[s] = cfg.output_gain;
    p1_[s] = cfg.output_ref_v;
    p2_[s] = 1.0;
  }
  k.tanh_stage_batch(buf, noise_.data(), lim_.data(), n, w, p0_.data(),
                     p1_.data(), p2_.data());
  for (std::size_t s = 0; s < w; ++s) {
    analog::VariableGainBuffer& b = vga_of(s, stage);
    tailc_[s] = b.tail_coeffs(dt_ps);  // also primes the slew limiter
    tailcp_[s] = &tailc_[s];
    slews_[s] = &b.slew_limiter().state();
    tails_[s] = &b.tail_state();
  }
  k.vga_tail_batch(lim_.data(), buf, n, w, tailcp_.data(), slews_.data(),
                   tails_.data());
  for (std::size_t s = 0; s < w; ++s) {
    analog::SinglePoleFilter& f = vga_of(s, stage).out_pole();
    p0_[s] = f.prime(dt_ps);
    poles_[s] = &f.pole_state();
  }
  k.one_pole_batch(buf, buf, n, w, p0_.data(), poles_.data());
}

// One TransmissionLine::process_block per stream on tap `tap`. The
// fractional-delay ring walk is inherently per-stream (gather/scatter on a
// column); the dispersion pole re-joins the batched kernel when every
// stream has one.
void BatchRunner::tline_pass(int tap, const double* in, double* out,
                             std::size_t n, double dt_ps) {
  const std::size_t w = width();
  const backend::Kernels& k = backend::active();
  bool all_pole = true;
  bool any_pole = false;
  for (std::size_t s = 0; s < w; ++s) {
    const bool has = channels_[s]->coarse().tap(tap).has_pole();
    all_pole = all_pole && has;
    any_pole = any_pole || has;
  }
  for (std::size_t s = 0; s < w; ++s) {
    analog::TransmissionLine& t = channels_[s]->coarse().tap(tap);
    for (std::size_t i = 0; i < n; ++i) col_[i] = in[i * w + s];
    t.frac_delay().process_block(col_.data(), col_.data(), n, dt_ps);
    const double lf = t.loss_factor();
    for (std::size_t i = 0; i < n; ++i) out[i * w + s] = col_[i] * lf;
  }
  if (all_pole) {
    for (std::size_t s = 0; s < w; ++s) {
      analog::SinglePoleFilter& p = channels_[s]->coarse().tap(tap).pole();
      p0_[s] = p.prime(dt_ps);
      poles_[s] = &p.pole_state();
    }
    k.one_pole_batch(out, out, n, w, p0_.data(), poles_.data());
  } else if (any_pole) {
    for (std::size_t s = 0; s < w; ++s) {
      analog::TransmissionLine& t = channels_[s]->coarse().tap(tap);
      if (!t.has_pole()) continue;
      for (std::size_t i = 0; i < n; ++i) col_[i] = out[i * w + s];
      t.pole().process_block(col_.data(), col_.data(), n, dt_ps);
      for (std::size_t i = 0; i < n; ++i) out[i * w + s] = col_[i];
    }
  }
}

void BatchRunner::process_chunk(double* buf, std::size_t n, double dt_ps) {
  const std::size_t w = width();
  if (!channels_.empty()) {
    limiting_pass(Lim::kFanout, buf, n, dt_ps);
    std::copy(buf, buf + n * w, fan_.data());
    for (int t = 0; t < CoarseDelayBlock::kTaps; ++t) {
      // Every tap advances every sample — their state must track the
      // fanout signal for mid-run reselection, exactly like the solo
      // block — but only the selected tap's column feeds the mux.
      tline_pass(t, fan_.data(), tap_.data(), n, dt_ps);
      for (std::size_t s = 0; s < w; ++s) {
        if (channels_[s]->selected_tap() != t) continue;
        for (std::size_t i = 0; i < n; ++i) buf[i * w + s] = tap_[i * w + s];
      }
    }
    limiting_pass(Lim::kMux, buf, n, dt_ps);
  }
  const int n_stages = fine_of(0).n_stages();
  for (int st = 0; st < n_stages; ++st) vga_pass(st, buf, n, dt_ps);
  limiting_pass(Lim::kFineOut, buf, n, dt_ps);
}

std::vector<sig::Waveform> BatchRunner::run(const sig::Waveform& stimulus) {
  std::vector<sig::Waveform> outs;
  run(stimulus, outs);
  return outs;
}

void BatchRunner::run(const sig::Waveform& stimulus,
                      std::vector<sig::Waveform>& outs) {
  const std::size_t w = width();
  if (w == 0) throw std::logic_error("BatchRunner: no streams added");
  if (outs.size() != w) outs.resize(w);
  for (auto& o : outs)
    if (!o.same_grid(stimulus))
      o = sig::Waveform(stimulus.t0_ps(), stimulus.dt_ps(), stimulus.size());
  reset_streams();
  ensure_scratch(kChunk);
  const double dt = stimulus.dt_ps();
  const std::size_t total = stimulus.size();
  const double* src = stimulus.samples().data();
  for (std::size_t o = 0; o < total; o += kChunk) {
    const std::size_t n = std::min(kChunk, total - o);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = src[o + i];
      for (std::size_t s = 0; s < w; ++s) ilv_[i * w + s] = x;
    }
    process_chunk(ilv_.data(), n, dt);
    for (std::size_t s = 0; s < w; ++s) {
      double* dst = outs[s].samples().data() + o;
      for (std::size_t i = 0; i < n; ++i) dst[i] = ilv_[i * w + s];
    }
  }
}

void BatchRunner::run(const sig::Waveform& stimulus,
                      const std::vector<meas::ISampleSink*>& sinks) {
  const std::size_t w = width();
  if (w == 0) throw std::logic_error("BatchRunner: no streams added");
  if (sinks.size() != w)
    throw std::invalid_argument("BatchRunner: one sink per stream required");
  reset_streams();
  ensure_scratch(kChunk);
  const double dt = stimulus.dt_ps();
  const std::size_t total = stimulus.size();
  const double* src = stimulus.samples().data();
  for (auto* sink : sinks) sink->begin(stimulus.t0_ps(), dt, total);
  for (std::size_t o = 0; o < total; o += kChunk) {
    const std::size_t n = std::min(kChunk, total - o);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = src[o + i];
      for (std::size_t s = 0; s < w; ++s) ilv_[i * w + s] = x;
    }
    process_chunk(ilv_.data(), n, dt);
    for (std::size_t s = 0; s < w; ++s) {
      for (std::size_t i = 0; i < n; ++i) col_[i] = ilv_[i * w + s];
      sinks[s]->consume(col_.data(), n);
    }
  }
  for (auto* sink : sinks) sink->finish();
}

}  // namespace gdelay::core
