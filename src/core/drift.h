// Thermal drift: why ATE calibration has a shelf life.
//
// The delay circuit lives under the Device Interface Board where the
// thermal environment moves with DUT power. Buffer slew rates and bias
// points drift with temperature, dragging the delay-vs-Vctrl curve and
// the tap latencies along — so a deskew done cold degrades as the board
// heats. ThermalDrift perturbs a ChannelConfig for a temperature offset;
// bench_drift_recal quantifies the resulting skew error and shows the
// recalibration loop absorbing it.
#pragma once

#include "core/channel.h"

namespace gdelay::core {

struct ThermalDrift {
  /// Fractional slew-rate change per degree C (slower when hot).
  double slew_tc_frac = -0.0030;
  /// Fractional amplitude-endpoint change per degree C.
  double amp_tc_frac = -0.0012;
  /// Fractional stage-bandwidth change per degree C.
  double bw_tc_frac = -0.0020;
  /// Absolute trace-delay drift per tap, ps per degree C (dielectric).
  double tap_tc_ps = 0.012;

  /// Applies the drift for a temperature offset `delta_c` (degrees above
  /// the calibration temperature).
  ChannelConfig apply(const ChannelConfig& nominal, double delta_c) const;
};

}  // namespace gdelay::core
