// Calibration persistence.
//
// Production ATE flows calibrate once (per board, per lot, per thermal
// state) and store the tables; test programs reload them at load-board
// time. This is a small, dependency-free text format: one `key value`
// pair per line, curve points as `point <vctrl> <delay>` rows.
#pragma once

#include <iosfwd>
#include <string>

#include "core/calibration.h"

namespace gdelay::core {

/// Serializes a calibration (round-trips exactly through parse).
std::string calibration_to_text(const ChannelCalibration& cal);

/// Parses the text format. Throws std::runtime_error on malformed input
/// (unknown keys, missing fields, non-monotonic x, bad counts).
ChannelCalibration calibration_from_text(const std::string& text);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_calibration(const std::string& path,
                      const ChannelCalibration& cal);
ChannelCalibration load_calibration(const std::string& path);

}  // namespace gdelay::core
