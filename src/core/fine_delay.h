// The fine-adjustment delay line of Fig. 6: N cascaded variable-gain
// buffers sharing one control voltage, followed by a limiting output
// stage that recovers full logic swing.
//
// Each stage contributes ~10 ps of amplitude-dependent delay; the paper's
// prototype uses N = 4 for a measured range of ~50-56 ps (Fig. 7) and
// compares against an earlier N = 2 build (Fig. 15). `common_vctrl`
// reflects the paper's simplification of driving all stages from one DAC;
// per-stage control is available for the ablation study.
#pragma once

#include <vector>

#include "analog/buffer.h"
#include "signal/waveform.h"
#include "util/rng.h"

namespace gdelay::core {

struct FineDelayConfig {
  int n_stages = 4;
  analog::VgaBufferConfig stage{};
  analog::LimitingBufferConfig output_stage{};

  /// Convenience: the paper's early 2-stage build.
  static FineDelayConfig two_stage() {
    FineDelayConfig c;
    c.n_stages = 2;
    return c;
  }
};

class FineDelayLine {
 public:
  FineDelayLine(const FineDelayConfig& cfg, util::Rng rng);

  int n_stages() const { return static_cast<int>(stages_.size()); }
  const FineDelayConfig& config() const { return cfg_; }
  double vctrl_max() const { return cfg_.stage.vctrl_max_v; }

  /// Programs all stages (the paper's common-Vctrl arrangement).
  void set_vctrl(double v);
  double vctrl() const { return vctrl_; }

  /// Per-stage override for the separate-control ablation.
  void set_stage_vctrl(int stage, double v);
  double stage_vctrl(int stage) const;

  /// Switches every stage (and the output buffer) to an independent
  /// deterministic noise stream — used to decorrelate clones in the
  /// parallel calibration sweeps (one stream per sweep point).
  void fork_noise(std::uint64_t stream);

  void reset();
  double step(double vin, double dt_ps);

  /// One sample with the common control voltage updated first — the
  /// primitive behind jitter injection (Vctrl varies during the run).
  double step_with_vctrl(double vin, double vctrl, double dt_ps);

  /// Advances `n` samples stage-major (whole block through each stage in
  /// turn) — byte-identical to `n` step() calls. Fixed Vctrl only; the
  /// injection path stays on step_with_vctrl().
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps);

  /// Runs a waveform through a freshly reset line (block path).
  sig::Waveform process(const sig::Waveform& in);

  /// Batch-executor part accessors (core::BatchRunner drives the stages'
  /// exact pass sequences through the lane-batched backend kernels).
  analog::VariableGainBuffer& stage(int i) { return stages_[i]; }
  analog::LimitingBuffer& output_stage() { return out_; }

 private:
  FineDelayConfig cfg_;
  double vctrl_;
  std::vector<analog::VariableGainBuffer> stages_;
  analog::LimitingBuffer out_;
};

}  // namespace gdelay::core
