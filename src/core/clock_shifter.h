// The conventional baseline from the paper's introduction (Fig. 1):
// adjusting a constant-frequency CLOCK's phase instead of delaying the
// wide-bandwidth DATA. "Many VCO and PLL or DLL techniques are widely
// used for this purpose" — easy for a narrow-band clock, and the point
// of comparison for why the paper's data-path delay is needed at all.
//
// ClockPhaseShifter models an ideal DLL-style phase interpolator: a
// programmable transport delay wrapped to the clock period, with a small
// amount of interpolator phase noise. It works beautifully for clocks —
// and bench_baseline_clock shows exactly where it stops helping: a
// parallel-synchronous bus has ONE clock but N skewed data lanes, so no
// clock phase can align the lanes to each other.
#pragma once

#include "analog/primitives.h"
#include "signal/waveform.h"
#include "util/rng.h"

namespace gdelay::core {

struct ClockPhaseShifterConfig {
  double period_ps = 156.25;     ///< Clock period the DLL locks to.
  int phase_steps = 128;         ///< Interpolator resolution (per period).
  double phase_noise_rms_ps = 0.4;  ///< Interpolator jitter.
};

class ClockPhaseShifter {
 public:
  ClockPhaseShifter(const ClockPhaseShifterConfig& cfg, util::Rng rng);

  const ClockPhaseShifterConfig& config() const { return cfg_; }

  /// Programs the phase; wrapped into [0, period). Quantized to the
  /// interpolator step.
  void set_phase_ps(double phase_ps);
  double phase_ps() const { return phase_; }
  double step_ps() const;

  /// Independent deterministic phase-noise stream for a cloned shifter
  /// (see NoiseSource::fork_noise for the sweep discipline).
  void fork_noise(std::uint64_t stream) { rng_ = rng_.fork(stream); }

  /// Shifts a clock waveform by the programmed phase (plus phase noise).
  sig::Waveform process(const sig::Waveform& clock);

 private:
  ClockPhaseShifterConfig cfg_;
  double phase_ = 0.0;
  util::Rng rng_;
};

}  // namespace gdelay::core
