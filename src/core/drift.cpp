#include "core/drift.h"

namespace gdelay::core {

ChannelConfig ThermalDrift::apply(const ChannelConfig& nominal,
                                  double delta_c) const {
  ChannelConfig c = nominal;
  const double slew_k = 1.0 + slew_tc_frac * delta_c;
  const double amp_k = 1.0 + amp_tc_frac * delta_c;
  const double bw_k = 1.0 + bw_tc_frac * delta_c;

  c.fine.stage.slew_v_per_ps *= slew_k;
  c.fine.stage.amp_min_v *= amp_k;
  c.fine.stage.amp_max_v *= amp_k;
  c.fine.stage.f3db_ghz *= bw_k;
  c.fine.output_stage.slew_v_per_ps *= slew_k;
  c.fine.output_stage.f3db_ghz *= bw_k;
  c.coarse.fanout.slew_v_per_ps *= slew_k;
  c.coarse.mux.slew_v_per_ps *= slew_k;
  // Trace electrical length stretches with temperature; longer taps
  // stretch more (error scales with nominal length).
  for (std::size_t i = 0; i < c.coarse.tap_error_ps.size(); ++i)
    c.coarse.tap_error_ps[i] +=
        tap_tc_ps * delta_c * c.coarse.tap_delay_ps[i] / 100.0;
  return c;
}

}  // namespace gdelay::core
