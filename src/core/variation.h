// Process variation: no two builds of the prototype are identical.
//
// The paper's 2-channel board (Fig. 11) and the later 4-channel version
// must meet the < 5 ps *channel-to-channel* accuracy even though every
// buffer, trace and DAC carries manufacturing scatter. ProcessVariation
// draws a perturbed ChannelConfig from a nominal one so boards can be
// Monte-Carlo'd; the per-channel calibration flow is what absorbs the
// scatter (that is the point of calibrating at all).
#pragma once

#include "core/channel.h"
#include "util/rng.h"

namespace gdelay::core {

struct ProcessVariation {
  /// Fractional 1-sigma scatter on buffer small-signal parameters
  /// (gains, bandwidths, slew rate, reference levels).
  double buffer_sigma_frac = 0.04;
  /// Fractional scatter on the programmed amplitude endpoints (the
  /// gain-control characteristic differs part to part).
  double amplitude_sigma_frac = 0.03;
  /// Absolute scatter on each coarse tap's electrical length, ps —
  /// the Fig. 9 style trace-trim error.
  double tap_length_sigma_ps = 2.5;
  /// Scatter on per-stage noise level.
  double noise_sigma_frac = 0.10;

  /// Draws one perturbed instance. Deterministic given the Rng state.
  ChannelConfig apply(const ChannelConfig& nominal, util::Rng& rng) const;

  /// A wafer-spread corner: everything shifted k sigma in the direction
  /// that hurts range (slow slew, weak amplitude span).
  static ChannelConfig slow_corner(const ChannelConfig& nominal, double k);
};

}  // namespace gdelay::core
