// The combined prototype of Fig. 10: coarse delay section (1:4 fanout,
// four taps, 4:1 mux) followed by the 4-stage fine-adjustment line and
// its amplitude-recovery output stage — 7 active components end to end,
// total range ~140 ps against the application requirement of 120 ps.
#pragma once

#include "core/coarse_delay.h"
#include "core/fine_delay.h"
#include "signal/waveform.h"
#include "util/rng.h"

namespace gdelay::core {

struct ChannelConfig {
  CoarseDelayConfig coarse{};
  FineDelayConfig fine{};

  /// The as-built 2-channel prototype (Fig. 11): measured coarse taps
  /// of Fig. 9, 4 fine stages.
  static ChannelConfig prototype() {
    ChannelConfig c;
    c.coarse = CoarseDelayConfig::prototype();
    return c;
  }
};

class VariableDelayChannel {
 public:
  VariableDelayChannel(const ChannelConfig& cfg, util::Rng rng);

  const ChannelConfig& config() const { return cfg_; }

  CoarseDelayBlock& coarse() { return coarse_; }
  const CoarseDelayBlock& coarse() const { return coarse_; }
  FineDelayLine& fine() { return fine_; }
  const FineDelayLine& fine() const { return fine_; }

  /// Programming interface: coarse select lines + fine control voltage.
  void select_tap(int tap) { coarse_.select(tap); }
  int selected_tap() const { return coarse_.selected(); }
  void set_vctrl(double v) { fine_.set_vctrl(v); }
  double vctrl() const { return fine_.vctrl(); }
  double vctrl_max() const { return fine_.vctrl_max(); }

  /// Independent deterministic noise stream for a cloned channel (one
  /// stream per sweep point in the parallel calibration sweeps).
  void fork_noise(std::uint64_t stream) {
    coarse_.fork_noise(stream);
    fine_.fork_noise(stream);
  }

  void reset();
  double step(double vin, double dt_ps);
  /// Stage-major block path — byte-identical to `n` step() calls.
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps);
  sig::Waveform process(const sig::Waveform& in);

 private:
  ChannelConfig cfg_;
  CoarseDelayBlock coarse_;
  FineDelayLine fine_;
};

}  // namespace gdelay::core
