#include "core/variation.h"

#include <algorithm>

namespace gdelay::core {
namespace {

double scatter(util::Rng& rng, double nominal, double sigma_frac) {
  // Clamp at +/-3 sigma so a pathological draw cannot flip a sign or
  // zero a parameter.
  const double g = std::clamp(rng.gaussian(), -3.0, 3.0);
  return nominal * (1.0 + sigma_frac * g);
}

void vary_vga(analog::VgaBufferConfig& c, util::Rng& rng,
              const ProcessVariation& v) {
  c.input_gain = scatter(rng, c.input_gain, v.buffer_sigma_frac);
  c.input_sat_v = scatter(rng, c.input_sat_v, v.buffer_sigma_frac);
  c.f3db_ghz = scatter(rng, c.f3db_ghz, v.buffer_sigma_frac);
  c.output_gain = scatter(rng, c.output_gain, v.buffer_sigma_frac);
  c.output_ref_v = scatter(rng, c.output_ref_v, v.buffer_sigma_frac);
  c.slew_v_per_ps = scatter(rng, c.slew_v_per_ps, v.buffer_sigma_frac);
  c.amp_min_v = scatter(rng, c.amp_min_v, v.amplitude_sigma_frac);
  c.amp_max_v = scatter(rng, c.amp_max_v, v.amplitude_sigma_frac);
  if (c.amp_max_v <= c.amp_min_v + 0.01)
    c.amp_max_v = c.amp_min_v + 0.01;  // keep a usable span
  c.noise_sigma_v = scatter(rng, c.noise_sigma_v, v.noise_sigma_frac);
  c.output_pole_f3db_ghz =
      scatter(rng, c.output_pole_f3db_ghz, v.buffer_sigma_frac);
}

void vary_limiter(analog::LimitingBufferConfig& c, util::Rng& rng,
                  const ProcessVariation& v) {
  c.input_gain = scatter(rng, c.input_gain, v.buffer_sigma_frac);
  c.f3db_ghz = scatter(rng, c.f3db_ghz, v.buffer_sigma_frac);
  c.output_gain = scatter(rng, c.output_gain, v.buffer_sigma_frac);
  c.slew_v_per_ps = scatter(rng, c.slew_v_per_ps, v.buffer_sigma_frac);
  c.noise_sigma_v = scatter(rng, c.noise_sigma_v, v.noise_sigma_frac);
}

}  // namespace

ChannelConfig ProcessVariation::apply(const ChannelConfig& nominal,
                                      util::Rng& rng) const {
  ChannelConfig c = nominal;
  vary_vga(c.fine.stage, rng, *this);
  vary_limiter(c.fine.output_stage, rng, *this);
  vary_limiter(c.coarse.fanout, rng, *this);
  vary_limiter(c.coarse.mux, rng, *this);
  for (auto& e : c.coarse.tap_error_ps)
    e += rng.gaussian(0.0, tap_length_sigma_ps);
  // Tap 0 defines the reference plane; fold its error into the others so
  // lengths stay non-negative.
  const double e0 = c.coarse.tap_error_ps[0];
  for (auto& e : c.coarse.tap_error_ps) e -= e0;
  for (std::size_t i = 0; i < c.coarse.tap_error_ps.size(); ++i) {
    const double len =
        c.coarse.tap_delay_ps[i] + c.coarse.tap_error_ps[i];
    if (len < 0.0) c.coarse.tap_error_ps[i] = -c.coarse.tap_delay_ps[i];
  }
  return c;
}

ChannelConfig ProcessVariation::slow_corner(const ChannelConfig& nominal,
                                            double k) {
  ProcessVariation v;
  ChannelConfig c = nominal;
  c.fine.stage.slew_v_per_ps *= 1.0 - k * v.buffer_sigma_frac;
  c.fine.stage.f3db_ghz *= 1.0 - k * v.buffer_sigma_frac;
  c.fine.stage.amp_max_v *= 1.0 - k * v.amplitude_sigma_frac;
  c.fine.stage.amp_min_v *= 1.0 + k * v.amplitude_sigma_frac;
  return c;
}

}  // namespace gdelay::core
