#include "core/channel.h"

namespace gdelay::core {

VariableDelayChannel::VariableDelayChannel(const ChannelConfig& cfg,
                                           util::Rng rng)
    : cfg_(cfg), coarse_(cfg.coarse, rng.fork(10)), fine_(cfg.fine, rng.fork(20)) {}

void VariableDelayChannel::reset() {
  coarse_.reset();
  fine_.reset();
}

double VariableDelayChannel::step(double vin, double dt_ps) {
  return fine_.step(coarse_.step(vin, dt_ps), dt_ps);
}

void VariableDelayChannel::process_block(const double* in, double* out,
                                         std::size_t n, double dt_ps) {
  coarse_.process_block(in, out, n, dt_ps);
  fine_.process_block(out, out, n, dt_ps);
}

sig::Waveform VariableDelayChannel::process(const sig::Waveform& in) {
  reset();
  return analog::run_blocked(in, [this](const double* src, double* dst,
                                        std::size_t n, double dt_ps) {
    process_block(src, dst, n, dt_ps);
  });
}

}  // namespace gdelay::core
