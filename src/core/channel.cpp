#include "core/channel.h"

namespace gdelay::core {

VariableDelayChannel::VariableDelayChannel(const ChannelConfig& cfg,
                                           util::Rng rng)
    : cfg_(cfg), coarse_(cfg.coarse, rng.fork(10)), fine_(cfg.fine, rng.fork(20)) {}

void VariableDelayChannel::reset() {
  coarse_.reset();
  fine_.reset();
}

double VariableDelayChannel::step(double vin, double dt_ps) {
  return fine_.step(coarse_.step(vin, dt_ps), dt_ps);
}

sig::Waveform VariableDelayChannel::process(const sig::Waveform& in) {
  reset();
  sig::Waveform out(in.t0_ps(), in.dt_ps(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i)
    out[i] = step(in[i], in.dt_ps());
  return out;
}

}  // namespace gdelay::core
