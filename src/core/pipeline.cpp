#include "core/pipeline.h"

#include <stdexcept>

#include "util/scratch.h"

namespace gdelay::core {

Pipeline::Pipeline(std::size_t chunk_samples) : chunk_(chunk_samples) {
  if (chunk_samples == 0)
    throw std::invalid_argument("Pipeline: chunk_samples must be > 0");
}

void Pipeline::run(sig::SampleSource& source,
                   std::initializer_list<meas::ISampleSink*> sinks) {
  source.rewind();
  for (auto& st : stages_) st->reset();

  const double t0 = source.t0_ps();
  const double dt = source.dt_ps();
  const std::size_t total = source.size();
  for (auto* s : sinks) s->begin(t0, dt, total);

  // Two chunk-sized leases, ping-ponged between stages: handing the
  // kernels distinct in/out pointers keeps their vectorized paths live
  // (with in == out the runtime overlap checks would drop every stage to
  // its scalar fallback). Still O(chunk) memory, still allocation-free
  // after warm-up.
  util::ScratchBuffer a(chunk_), b(chunk_);
  double* cur = a.data();
  double* nxt = b.data();
  std::size_t n;
  while ((n = source.read(cur, chunk_)) > 0) {
    for (auto& st : stages_) {
      st->process_block(cur, nxt, n, dt);
      std::swap(cur, nxt);
    }
    for (auto* s : sinks) s->consume(cur, n);
  }
  for (auto* s : sinks) s->finish();
}

void Pipeline::run(sig::SampleSource& source, meas::ISampleSink& sink) {
  run(source, {&sink});
}

}  // namespace gdelay::core
