// The control DAC: "Vctrl will be provided using a 12-bit DAC, so
// sub-picosecond resolution will be achievable" (Section 2).
#pragma once

#include <cstdint>

namespace gdelay::core {

class Dac {
 public:
  /// The paper's part: 12 bits over the 1.5 V Vctrl range.
  Dac() : Dac(12, 1.5) {}
  /// `bits` in [4, 20]; `vref` is the full-scale output (code 2^bits - 1).
  Dac(int bits, double vref);

  int bits() const { return bits_; }
  double vref() const { return vref_; }
  std::uint32_t max_code() const { return max_code_; }
  /// Output step per code.
  double lsb_v() const;

  /// Ideal output voltage for a code (clamped to the code range).
  double voltage(std::uint32_t code) const;

  /// Nearest code producing the requested voltage (clamped into range).
  std::uint32_t code_for(double v) const;

  /// Voltage after round-tripping through the quantizer.
  double quantize(double v) const { return voltage(code_for(v)); }

 private:
  int bits_;
  double vref_;
  std::uint32_t max_code_;
};

}  // namespace gdelay::core
