// Jitter injection (Section 5): AC-couple a Gaussian voltage-noise source
// onto the fine-delay control voltage. Because Vctrl sets delay, voltage
// noise converts directly to timing jitter on the transmitted signal —
// the paper demonstrates turning a 900 mVpp noise source into ~41 ps of
// added jitter on a 3.2 Gbps stream (Figs. 16, 17).
#pragma once

#include "analog/coupling.h"
#include "core/fine_delay.h"
#include "signal/waveform.h"
#include "util/rng.h"

namespace gdelay::core {

struct JitterInjectorConfig {
  FineDelayConfig line{};
  /// DC operating point of Vctrl; defaults (<0) to mid-range, where the
  /// Fig. 7 characteristic is steepest and most linear.
  double vctrl_dc_v = -1.0;
  /// External noise generator amplitude, quoted peak-to-peak (pp ~ 6 sigma).
  double noise_pp_v = 0.9;
  /// Noise generator bandwidth. Kept well below 1/latency of the
  /// delay line so all four stages see the same instantaneous Vctrl
  /// (full voltage-to-time conversion).
  double noise_bandwidth_ghz = 0.08;
  /// AC-coupling high-pass corner between generator and Vctrl node.
  double coupling_hp_ghz = 0.005;
  /// Sinusoidal (periodic) jitter injection: amplitude of the sine fed
  /// into Vctrl (pk-pk volts) and its frequency. The classic SJ stimulus
  /// for jitter-tolerance templates (cf. the paper's reference [1],
  /// Shimanouchi ITC'03); combine freely with the Gaussian source.
  double sj_pp_v = 0.0;
  double sj_freq_ghz = 0.01;
};

class JitterInjector {
 public:
  JitterInjector(const JitterInjectorConfig& cfg, util::Rng rng);

  const JitterInjectorConfig& config() const { return cfg_; }
  FineDelayLine& line() { return line_; }

  /// Changes the generator amplitude (pp); 0 disables injection.
  void set_noise_pp(double pp_v);
  double noise_pp() const { return noise_pp_; }

  /// Changes the sinusoidal (SJ) source.
  void set_sj(double pp_v, double freq_ghz);
  double sj_pp() const { return sj_pp_; }
  double sj_freq_ghz() const { return sj_freq_; }

  /// Independent deterministic noise streams (generator + line) for a
  /// cloned injector; one stream id forks both children, whose parent
  /// states already differ (see NoiseSource::fork_noise).
  void fork_noise(std::uint64_t stream) {
    line_.fork_noise(stream);
    noise_.fork_noise(stream);
  }

  void reset();
  /// One sample: draws noise, couples it onto Vctrl, steps the line.
  double step(double vin, double dt_ps);
  /// `n` step() calls; byte-identical at any chunking. Vctrl varies per
  /// sample, so there is no wide kernel — this exists so the injector can
  /// serve as a streaming Pipeline stage. In-place (in == out) allowed.
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps);
  sig::Waveform process(const sig::Waveform& in);

 private:
  JitterInjectorConfig cfg_;
  double vctrl_dc_;
  double noise_pp_;
  double sj_pp_;
  double sj_freq_;
  double sj_t_ps_ = 0.0;
  FineDelayLine line_;
  analog::NoiseSource noise_;
  analog::AcCoupler coupler_;
};

}  // namespace gdelay::core
