// The target-application requirements stated in Sections 1-2 of the paper
// (ATE deskew of parallel 6.4 Gbps buses on a Teradyne UltraFlex with
// SB6G sources). bench_req_compliance checks the simulated prototype
// against these numbers.
#pragma once

namespace gdelay::core {

struct Requirements {
  /// Fine-delay programming resolution ("~1 ps (or better)").
  static constexpr double kResolutionPs = 1.0;
  /// Channel-to-channel skew accuracy after deskew ("<5 ps").
  static constexpr double kChannelSkewPs = 5.0;
  /// Added jitter budget ("minimal added jitter (<5 ps)"); the built
  /// prototype measured ~7 ps below 6 Gbps — the paper reports exceeding
  /// this goal slightly, and so do we.
  static constexpr double kAddedJitterGoalPs = 5.0;
  /// Total delay range needed by the application ("requires 120 ps").
  static constexpr double kTotalRangePs = 120.0;
  /// Operating data-rate span ("from <1 to 6.4 Gbps").
  static constexpr double kMinRateGbps = 1.0;
  static constexpr double kMaxRateGbps = 6.4;
  /// Bit period at the maximum rate ("bit-period of only 156 ps").
  static constexpr double kBitPeriodAtMaxPs = 156.25;
  /// The ATE's native deskew resolution that is being improved upon
  /// ("on the order of 100 ps").
  static constexpr double kAteResolutionPs = 100.0;
  /// Coarse tap pitch chosen by the paper.
  static constexpr double kCoarseStepPs = 33.0;
  /// Fine range needed to cover one coarse step with margin
  /// ("we need about 33 ps of range to cover the coarse delay steps").
  static constexpr double kFineRangeNeededPs = 33.0;
};

}  // namespace gdelay::core
