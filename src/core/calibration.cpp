#include "core/calibration.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "measure/delay_meter.h"

namespace gdelay::core {
namespace {

meas::DelayMeterOptions meter_options(double settle_ps) {
  meas::DelayMeterOptions o;
  o.settle_ps = settle_ps;
  return o;
}

}  // namespace

double ChannelCalibration::resolution_ps() const {
  // The delay step produced by one DAC LSB is slope * LSB; take the worst
  // (largest) slope over the measured curve segments.
  const auto& xs = fine_curve.xs();
  const auto& ys = fine_curve.ys();
  double worst = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double slope = std::abs((ys[i] - ys[i - 1]) / (xs[i] - xs[i - 1]));
    worst = std::max(worst, slope);
  }
  return worst * dac.lsb_v();
}

double ChannelCalibration::predicted_delay_ps(int tap, double vctrl) const {
  if (tap < 0 || tap >= 4)
    throw std::invalid_argument("ChannelCalibration: tap out of range");
  return tap_offset_ps[static_cast<std::size_t>(tap)] + fine_curve(vctrl);
}

double ChannelCalibration::predicted_latency_ps(int tap, double vctrl) const {
  return base_latency_ps + predicted_delay_ps(tap, vctrl);
}

DelaySetting ChannelCalibration::plan(double relative_delay_ps) const {
  const double fine_lo = fine_curve.y_min();
  const double fine_hi = fine_curve.y_max();
  const double target =
      std::clamp(relative_delay_ps, 0.0, total_range_ps());

  // Choose the tap whose required fine contribution sits closest to the
  // middle of the fine range (maximum headroom for later retrim).
  int best_tap = 0;
  double best_badness = std::numeric_limits<double>::infinity();
  for (int tap = 0; tap < 4; ++tap) {
    const double need =
        target - tap_offset_ps[static_cast<std::size_t>(tap)];
    if (need < fine_lo - 1e-9 || need > fine_hi + 1e-9) continue;
    const double badness = std::abs(need - (fine_lo + fine_hi) / 2.0);
    if (badness < best_badness) {
      best_badness = badness;
      best_tap = tap;
    }
  }
  if (!std::isfinite(best_badness)) {
    // No tap covers the target exactly (possible at the extreme ends with
    // tap errors); fall back to the tap minimizing the clamped error.
    double best_err = std::numeric_limits<double>::infinity();
    for (int tap = 0; tap < 4; ++tap) {
      const double need =
          target - tap_offset_ps[static_cast<std::size_t>(tap)];
      const double clamped = std::clamp(need, fine_lo, fine_hi);
      const double err = std::abs(need - clamped);
      if (err < best_err) {
        best_err = err;
        best_tap = tap;
      }
    }
  }

  DelaySetting s;
  s.tap = best_tap;
  const double need =
      std::clamp(target - tap_offset_ps[static_cast<std::size_t>(best_tap)],
                 fine_lo, fine_hi);
  const double vctrl_ideal = fine_curve.invert(need);
  s.dac_code = dac.code_for(vctrl_ideal);
  s.vctrl_v = dac.voltage(s.dac_code);
  s.predicted_delay_ps = predicted_delay_ps(best_tap, s.vctrl_v);
  return s;
}

util::Curve DelayCalibrator::measure_fine_curve(
    FineDelayLine& line, const sig::Waveform& stimulus) const {
  if (opt_.n_vctrl_points < 3)
    throw std::invalid_argument("DelayCalibrator: need >= 3 sweep points");
  const double saved = line.vctrl();
  const double vmax = line.vctrl_max();

  // Baseline at Vctrl = 0.
  line.set_vctrl(0.0);
  const auto base = line.process(stimulus);
  const double d0 =
      meas::measure_delay(stimulus, base, meter_options(opt_.settle_ps))
          .mean_ps;

  std::vector<double> xs, ys;
  xs.reserve(static_cast<std::size_t>(opt_.n_vctrl_points));
  ys.reserve(static_cast<std::size_t>(opt_.n_vctrl_points));
  for (int i = 0; i < opt_.n_vctrl_points; ++i) {
    const double v = vmax * static_cast<double>(i) /
                     static_cast<double>(opt_.n_vctrl_points - 1);
    line.set_vctrl(v);
    const auto out = line.process(stimulus);
    const double d =
        meas::measure_delay(stimulus, out, meter_options(opt_.settle_ps))
            .mean_ps;
    xs.push_back(v);
    ys.push_back(d - d0);
  }
  line.set_vctrl(saved);
  // The physical characteristic is monotone; clean residual measurement
  // noise off the flat ends before the curve is used for inversion.
  return util::Curve(std::move(xs), std::move(ys)).monotonicized();
}

util::Curve DelayCalibrator::measure_fine_curve(
    VariableDelayChannel& ch, const sig::Waveform& stimulus) const {
  if (opt_.n_vctrl_points < 3)
    throw std::invalid_argument("DelayCalibrator: need >= 3 sweep points");
  const double saved = ch.vctrl();
  const double vmax = ch.vctrl_max();

  ch.set_vctrl(0.0);
  const auto base = ch.process(stimulus);
  const double d0 =
      meas::measure_delay(stimulus, base, meter_options(opt_.settle_ps))
          .mean_ps;

  std::vector<double> xs, ys;
  for (int i = 0; i < opt_.n_vctrl_points; ++i) {
    const double v = vmax * static_cast<double>(i) /
                     static_cast<double>(opt_.n_vctrl_points - 1);
    ch.set_vctrl(v);
    const auto out = ch.process(stimulus);
    const double d =
        meas::measure_delay(stimulus, out, meter_options(opt_.settle_ps))
            .mean_ps;
    xs.push_back(v);
    ys.push_back(d - d0);
  }
  ch.set_vctrl(saved);
  return util::Curve(std::move(xs), std::move(ys)).monotonicized();
}

ChannelCalibration DelayCalibrator::calibrate(
    VariableDelayChannel& ch, const sig::Waveform& stimulus) const {
  const int saved_tap = ch.selected_tap();
  const double saved_vctrl = ch.vctrl();

  ChannelCalibration cal;
  cal.dac = opt_.dac;

  // Fine sweep on tap 0.
  ch.select_tap(0);
  cal.fine_curve = measure_fine_curve(ch, stimulus);

  // Absolute latency per tap at Vctrl = 0.
  ch.set_vctrl(0.0);
  std::array<double, 4> latency{};
  for (int tap = 0; tap < 4; ++tap) {
    ch.select_tap(tap);
    const auto out = ch.process(stimulus);
    latency[static_cast<std::size_t>(tap)] =
        meas::measure_delay(stimulus, out, meter_options(opt_.settle_ps))
            .mean_ps;
  }
  cal.base_latency_ps = latency[0];
  for (int tap = 0; tap < 4; ++tap)
    cal.tap_offset_ps[static_cast<std::size_t>(tap)] =
        latency[static_cast<std::size_t>(tap)] - latency[0];

  ch.select_tap(saved_tap);
  ch.set_vctrl(saved_vctrl);
  return cal;
}

double DelayCalibrator::measure_fine_range(
    FineDelayLine& line, const sig::Waveform& stimulus) const {
  const double saved = line.vctrl();
  line.set_vctrl(0.0);
  const auto lo = line.process(stimulus);
  line.set_vctrl(line.vctrl_max());
  const auto hi = line.process(stimulus);
  line.set_vctrl(saved);
  const auto opts = meter_options(opt_.settle_ps);
  return meas::measure_delay(stimulus, hi, opts).mean_ps -
         meas::measure_delay(stimulus, lo, opts).mean_ps;
}

double DelayCalibrator::measure_fine_range_periodic(
    FineDelayLine& line, const sig::Waveform& stimulus, double ui_ps,
    int n_steps) const {
  if (n_steps < 1)
    throw std::invalid_argument("measure_fine_range_periodic: n_steps >= 1");
  const double saved = line.vctrl();
  const auto opts = meter_options(opt_.settle_ps);

  line.set_vctrl(0.0);
  auto prev = line.process(stimulus);
  double prev_phase = meas::measure_phase_delay(stimulus, prev, ui_ps, opts);
  double total = 0.0;
  for (int i = 1; i <= n_steps; ++i) {
    const double v = line.vctrl_max() * static_cast<double>(i) /
                     static_cast<double>(n_steps);
    line.set_vctrl(v);
    auto cur = line.process(stimulus);
    const double phase =
        meas::measure_phase_delay(stimulus, cur, ui_ps, opts);
    total += meas::wrap_delay(phase - prev_phase, ui_ps);
    prev_phase = phase;
  }
  line.set_vctrl(saved);
  return total;
}

}  // namespace gdelay::core
