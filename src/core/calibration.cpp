#include "core/calibration.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/batch.h"
#include "measure/delay_meter.h"
#include "util/thread_pool.h"

namespace gdelay::core {
namespace {

meas::DelayMeterOptions meter_options(double settle_ps) {
  meas::DelayMeterOptions o;
  o.settle_ps = settle_ps;
  return o;
}

// Shared engine behind every clone-based measurement: runs `count`
// programmed clones of `dev` through the lane-batched executor
// (core/batch.h) in groups of four — one AVX2 lane group — with one
// thread-pool task per group, and reduces each output waveform with
// `measure`. `program(clone, i)` applies the per-point programming
// (fork_noise(i), Vctrl, tap). Each clone's waveform is bit-identical to
// its solo clone.process(stimulus) by the batch contract, and the
// group decomposition is a pure function of the index, so results stay
// bit-identical for any thread count — and to the pre-batching code.
template <typename Device, typename Program, typename Measure>
std::vector<double> measure_clones(const Device& dev,
                                   const sig::Waveform& stimulus,
                                   std::size_t count, Program program,
                                   Measure measure) {
  constexpr std::size_t kGroup = 4;
  const std::size_t n_groups = (count + kGroup - 1) / kGroup;
  const auto groups =
      util::parallel_map(n_groups, [&](std::size_t g) {
        const std::size_t lo = g * kGroup;
        const std::size_t hi = std::min(lo + kGroup, count);
        std::vector<Device> clones;
        clones.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          clones.push_back(dev);
          program(clones.back(), i);
        }
        BatchRunner runner;
        for (Device& c : clones) runner.add(c);
        const std::vector<sig::Waveform> outs = runner.run(stimulus);
        std::vector<double> vals(outs.size());
        for (std::size_t j = 0; j < outs.size(); ++j)
          vals[j] = measure(outs[j]);
        return vals;
      });
  std::vector<double> flat;
  flat.reserve(count);
  for (const auto& v : groups) flat.insert(flat.end(), v.begin(), v.end());
  return flat;
}

// Shared sweep engine behind both measure_fine_curve overloads. Each
// sweep point gets its own CLONE of the device (FineDelayLine and
// VariableDelayChannel are value types), programmed to its Vctrl; the
// points run four to a lane group through the batched executor. Point 0
// sits at Vctrl = 0 and doubles as the baseline the curve is referenced
// to. Forking by sweep index keeps the per-point noise realizations
// statistically independent while remaining a pure function of the
// index — the source of the bit-identical-at-any-thread-count guarantee.
template <typename Device>
util::Curve sweep_fine_curve(const Device& dev, const sig::Waveform& stimulus,
                             int n_points, double settle_ps) {
  if (n_points < 3)
    throw std::invalid_argument("DelayCalibrator: need >= 3 sweep points");
  const double vmax = dev.vctrl_max();
  const auto opts = meter_options(settle_ps);

  std::vector<double> xs(static_cast<std::size_t>(n_points));
  for (int i = 0; i < n_points; ++i)
    xs[static_cast<std::size_t>(i)] =
        vmax * static_cast<double>(i) / static_cast<double>(n_points - 1);

  std::vector<double> ys = measure_clones(
      dev, stimulus, xs.size(),
      [&](Device& clone, std::size_t i) {
        clone.fork_noise(i);
        clone.set_vctrl(xs[i]);
      },
      [&](const sig::Waveform& out) {
        return meas::measure_delay(stimulus, out, opts).mean_ps;
      });

  const double d0 = ys.front();  // baseline: the Vctrl = 0 point
  for (double& y : ys) y -= d0;
  // The physical characteristic is monotone; clean residual measurement
  // noise off the flat ends before the curve is used for inversion.
  return util::Curve(std::move(xs), std::move(ys)).monotonicized();
}

}  // namespace

double ChannelCalibration::resolution_ps() const {
  // The delay step produced by one DAC LSB is slope * LSB; take the worst
  // (largest) slope over the measured curve segments.
  const auto& xs = fine_curve.xs();
  const auto& ys = fine_curve.ys();
  double worst = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double slope = std::abs((ys[i] - ys[i - 1]) / (xs[i] - xs[i - 1]));
    worst = std::max(worst, slope);
  }
  return worst * dac.lsb_v();
}

double ChannelCalibration::predicted_delay_ps(int tap, double vctrl) const {
  if (tap < 0 || tap >= 4)
    throw std::invalid_argument("ChannelCalibration: tap out of range");
  return tap_offset_ps[static_cast<std::size_t>(tap)] + fine_curve(vctrl);
}

double ChannelCalibration::predicted_latency_ps(int tap, double vctrl) const {
  return base_latency_ps + predicted_delay_ps(tap, vctrl);
}

DelaySetting ChannelCalibration::plan(double relative_delay_ps) const {
  const double fine_lo = fine_curve.y_min();
  const double fine_hi = fine_curve.y_max();
  const double target =
      std::clamp(relative_delay_ps, 0.0, total_range_ps());

  // Choose the tap whose required fine contribution sits closest to the
  // middle of the fine range (maximum headroom for later retrim).
  int best_tap = 0;
  double best_badness = std::numeric_limits<double>::infinity();
  for (int tap = 0; tap < 4; ++tap) {
    const double need =
        target - tap_offset_ps[static_cast<std::size_t>(tap)];
    if (need < fine_lo - 1e-9 || need > fine_hi + 1e-9) continue;
    const double badness = std::abs(need - (fine_lo + fine_hi) / 2.0);
    if (badness < best_badness) {
      best_badness = badness;
      best_tap = tap;
    }
  }
  if (!std::isfinite(best_badness)) {
    // No tap covers the target exactly (possible at the extreme ends with
    // tap errors); fall back to the tap minimizing the clamped error.
    double best_err = std::numeric_limits<double>::infinity();
    for (int tap = 0; tap < 4; ++tap) {
      const double need =
          target - tap_offset_ps[static_cast<std::size_t>(tap)];
      const double clamped = std::clamp(need, fine_lo, fine_hi);
      const double err = std::abs(need - clamped);
      if (err < best_err) {
        best_err = err;
        best_tap = tap;
      }
    }
  }

  DelaySetting s;
  s.tap = best_tap;
  const double need =
      std::clamp(target - tap_offset_ps[static_cast<std::size_t>(best_tap)],
                 fine_lo, fine_hi);
  const double vctrl_ideal = fine_curve.invert(need);
  s.dac_code = dac.code_for(vctrl_ideal);
  s.vctrl_v = dac.voltage(s.dac_code);
  s.predicted_delay_ps = predicted_delay_ps(best_tap, s.vctrl_v);
  return s;
}

util::Curve DelayCalibrator::measure_fine_curve(
    const FineDelayLine& line, const sig::Waveform& stimulus) const {
  return sweep_fine_curve(line, stimulus, opt_.n_vctrl_points,
                          opt_.settle_ps);
}

util::Curve DelayCalibrator::measure_fine_curve(
    const VariableDelayChannel& ch, const sig::Waveform& stimulus) const {
  return sweep_fine_curve(ch, stimulus, opt_.n_vctrl_points, opt_.settle_ps);
}

ChannelCalibration DelayCalibrator::calibrate(
    const VariableDelayChannel& ch, const sig::Waveform& stimulus) const {
  ChannelCalibration cal;
  cal.dac = opt_.dac;

  // Fine sweep on tap 0.
  VariableDelayChannel tap0 = ch;
  tap0.select_tap(0);
  cal.fine_curve = measure_fine_curve(tap0, stimulus);

  // Absolute latency per tap at Vctrl = 0: four clones, one lane group.
  const auto opts = meter_options(opt_.settle_ps);
  const std::vector<double> latency = measure_clones(
      ch, stimulus, std::size_t{4},
      [&](VariableDelayChannel& clone, std::size_t tap) {
        clone.fork_noise(100 + tap);  // distinct from the sweep streams
        clone.select_tap(static_cast<int>(tap));
        clone.set_vctrl(0.0);
      },
      [&](const sig::Waveform& out) {
        return meas::measure_delay(stimulus, out, opts).mean_ps;
      });
  cal.base_latency_ps = latency[0];
  for (std::size_t tap = 0; tap < 4; ++tap)
    cal.tap_offset_ps[tap] = latency[tap] - latency[0];
  return cal;
}

double DelayCalibrator::measure_fine_range(
    const FineDelayLine& line, const sig::Waveform& stimulus) const {
  const auto opts = meter_options(opt_.settle_ps);
  const std::vector<double> ends = measure_clones(
      line, stimulus, std::size_t{2},
      [&](FineDelayLine& clone, std::size_t i) {
        clone.fork_noise(i);
        clone.set_vctrl(i == 0 ? 0.0 : line.vctrl_max());
      },
      [&](const sig::Waveform& out) {
        return meas::measure_delay(stimulus, out, opts).mean_ps;
      });
  return ends[1] - ends[0];
}

double DelayCalibrator::measure_fine_range_periodic(
    const FineDelayLine& line, const sig::Waveform& stimulus, double ui_ps,
    int n_steps) const {
  if (n_steps < 1)
    throw std::invalid_argument("measure_fine_range_periodic: n_steps >= 1");
  const auto opts = meter_options(opt_.settle_ps);

  // Phase at every sweep point is an independent measurement; only the
  // wrap-and-accumulate of adjacent deltas is inherently sequential.
  const std::vector<double> phase = measure_clones(
      line, stimulus, static_cast<std::size_t>(n_steps) + 1,
      [&](FineDelayLine& clone, std::size_t i) {
        clone.fork_noise(i);
        clone.set_vctrl(line.vctrl_max() * static_cast<double>(i) /
                        static_cast<double>(n_steps));
      },
      [&](const sig::Waveform& out) {
        return meas::measure_phase_delay(stimulus, out, ui_ps, opts);
      });

  double total = 0.0;
  for (int i = 1; i <= n_steps; ++i)
    total += meas::wrap_delay(
        phase[static_cast<std::size_t>(i)] -
            phase[static_cast<std::size_t>(i) - 1],
        ui_ps);
  return total;
}

}  // namespace gdelay::core
