#include "core/board.h"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.h"

namespace gdelay::core {

DelayBoard::DelayBoard(const DelayBoardConfig& cfg, util::Rng rng) {
  if (cfg.n_channels < 1)
    throw std::invalid_argument("DelayBoard: need >= 1 channel");
  channels_.reserve(static_cast<std::size_t>(cfg.n_channels));
  for (int i = 0; i < cfg.n_channels; ++i) {
    util::Rng draw = rng.fork(static_cast<std::uint64_t>(i));
    const ChannelConfig inst = cfg.variation.apply(cfg.nominal, draw);
    channels_.emplace_back(inst, rng.fork(1000 + static_cast<std::uint64_t>(i)));
  }
}

const std::vector<ChannelCalibration>& DelayBoard::calibrate(
    const sig::Waveform& stimulus, const DelayCalibrator::Options& opt) {
  const DelayCalibrator calibrator(opt);
  // Channels calibrate independently (the calibrator only reads them, and
  // sweep points run on per-point clones), so the board fans out channels
  // x sweep points across the pool; the nested parallel_for calls inside
  // calibrate() are safe because submitters participate in their batches.
  calibrations_ = util::parallel_map(
      channels_.size(), [&](std::size_t i) {
        return calibrator.calibrate(channels_[i], stimulus);
      });
  return calibrations_;
}

const std::vector<ChannelCalibration>& DelayBoard::calibrations() const {
  if (calibrations_.empty())
    throw std::logic_error("DelayBoard: not calibrated yet");
  return calibrations_;
}

DelaySetting DelayBoard::program(int channel, double relative_delay_ps) {
  const auto& cal =
      calibrations().at(static_cast<std::size_t>(channel));
  const DelaySetting s = cal.plan(relative_delay_ps);
  auto& ch = channels_.at(static_cast<std::size_t>(channel));
  ch.select_tap(s.tap);
  ch.set_vctrl(s.vctrl_v);
  return s;
}

std::vector<DelaySetting> DelayBoard::program_all(double relative_delay_ps) {
  std::vector<DelaySetting> out;
  out.reserve(channels_.size());
  for (int i = 0; i < n_channels(); ++i)
    out.push_back(program(i, relative_delay_ps));
  return out;
}

double DelayBoard::common_range_ps() const {
  const auto& cals = calibrations();
  double range = cals.front().total_range_ps();
  for (const auto& c : cals)
    range = std::min(range, c.total_range_ps());
  return range;
}

}  // namespace gdelay::core
