#include "core/clock_shifter.h"

#include <cmath>
#include <stdexcept>

namespace gdelay::core {

ClockPhaseShifter::ClockPhaseShifter(const ClockPhaseShifterConfig& cfg,
                                     util::Rng rng)
    : cfg_(cfg), rng_(rng) {
  if (cfg.period_ps <= 0.0)
    throw std::invalid_argument("ClockPhaseShifter: period must be > 0");
  if (cfg.phase_steps < 2)
    throw std::invalid_argument("ClockPhaseShifter: need >= 2 phase steps");
}

double ClockPhaseShifter::step_ps() const {
  return cfg_.period_ps / static_cast<double>(cfg_.phase_steps);
}

void ClockPhaseShifter::set_phase_ps(double phase_ps) {
  double p = std::fmod(phase_ps, cfg_.period_ps);
  if (p < 0.0) p += cfg_.period_ps;
  phase_ = std::round(p / step_ps()) * step_ps();
  if (phase_ >= cfg_.period_ps) phase_ -= cfg_.period_ps;
}

sig::Waveform ClockPhaseShifter::process(const sig::Waveform& clock) {
  // Ideal interpolator: a transport delay of the programmed phase, plus
  // slowly-varying phase noise (modelled as a per-run random offset plus
  // per-sample dither well below the edge rate).
  const double noise =
      cfg_.phase_noise_rms_ps > 0.0
          ? rng_.gaussian(0.0, cfg_.phase_noise_rms_ps)
          : 0.0;
  analog::FractionalDelay line(phase_ + noise + cfg_.period_ps);
  // The extra full period keeps the delay positive for any phase; on a
  // periodic clock it is invisible.
  sig::Waveform out(clock.t0_ps(), clock.dt_ps(), clock.size());
  line.reset();
  if (clock.size() > 0)
    line.process_block(clock.samples().data(), out.samples().data(),
                       clock.size(), clock.dt_ps());
  return out;
}

}  // namespace gdelay::core
