#include "core/fine_delay.h"

#include <stdexcept>

namespace gdelay::core {

FineDelayLine::FineDelayLine(const FineDelayConfig& cfg, util::Rng rng)
    : cfg_(cfg),
      vctrl_(cfg.stage.vctrl_max_v / 2.0),
      out_(cfg.output_stage, rng.fork(999)) {
  if (cfg.n_stages < 1)
    throw std::invalid_argument("FineDelayLine: need >= 1 stage");
  stages_.reserve(static_cast<std::size_t>(cfg.n_stages));
  for (int i = 0; i < cfg.n_stages; ++i)
    stages_.emplace_back(cfg.stage,
                         rng.fork(static_cast<std::uint64_t>(i)));
  set_vctrl(vctrl_);
}

void FineDelayLine::set_vctrl(double v) {
  vctrl_ = v;
  for (auto& s : stages_) s.set_vctrl(v);
}

void FineDelayLine::set_stage_vctrl(int stage, double v) {
  stages_.at(static_cast<std::size_t>(stage)).set_vctrl(v);
}

double FineDelayLine::stage_vctrl(int stage) const {
  return stages_.at(static_cast<std::size_t>(stage)).vctrl();
}

void FineDelayLine::fork_noise(std::uint64_t stream) {
  for (auto& s : stages_) s.fork_noise(stream);
  out_.fork_noise(stream);
}

void FineDelayLine::reset() {
  for (auto& s : stages_) s.reset();
  out_.reset();
}

double FineDelayLine::step(double vin, double dt_ps) {
  double v = vin;
  for (auto& s : stages_) v = s.step(v, dt_ps);
  return out_.step(v, dt_ps);
}

double FineDelayLine::step_with_vctrl(double vin, double vctrl,
                                      double dt_ps) {
  set_vctrl(vctrl);
  return step(vin, dt_ps);
}

void FineDelayLine::process_block(const double* in, double* out,
                                  std::size_t n, double dt_ps) {
  stages_.front().process_block(in, out, n, dt_ps);
  for (std::size_t s = 1; s < stages_.size(); ++s)
    stages_[s].process_block(out, out, n, dt_ps);
  out_.process_block(out, out, n, dt_ps);
}

sig::Waveform FineDelayLine::process(const sig::Waveform& in) {
  reset();
  return analog::run_blocked(in, [this](const double* src, double* dst,
                                        std::size_t n, double dt_ps) {
    process_block(src, dst, n, dt_ps);
  });
}

}  // namespace gdelay::core
