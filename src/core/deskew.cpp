#include "core/deskew.h"

#include <algorithm>
#include <stdexcept>

namespace gdelay::core {

DeskewPlan DeskewEngine::plan(const std::vector<double>& arrival_ps,
                              const std::vector<ChannelCalibration>& cals) {
  if (arrival_ps.empty())
    throw std::invalid_argument("DeskewEngine: no channels");
  if (arrival_ps.size() != cals.size())
    throw std::invalid_argument("DeskewEngine: arrival/calibration mismatch");

  // Channel i can realize any arrival in
  //   [arrival_i + fine_min, arrival_i + total_range_i]
  // (fine_min is ~0 by construction). The feasible common window is the
  // intersection; aim for its middle, but never earlier than the latest
  // minimum arrival.
  double window_lo = -1e300, window_hi = 1e300;
  for (std::size_t i = 0; i < arrival_ps.size(); ++i) {
    window_lo = std::max(window_lo, arrival_ps[i]);
    window_hi = std::min(window_hi, arrival_ps[i] + cals[i].total_range_ps());
  }

  DeskewPlan plan;
  plan.feasible = window_hi >= window_lo;
  plan.target_arrival_ps =
      plan.feasible ? 0.5 * (window_lo + window_hi) : window_lo;

  plan.settings.reserve(arrival_ps.size());
  plan.residual_ps.reserve(arrival_ps.size());
  double rmin = 1e300, rmax = -1e300;
  for (std::size_t i = 0; i < arrival_ps.size(); ++i) {
    const double need = plan.target_arrival_ps - arrival_ps[i];
    const DelaySetting s = cals[i].plan(need);
    const double residual = s.predicted_delay_ps - need;
    plan.settings.push_back(s);
    plan.residual_ps.push_back(residual);
    rmin = std::min(rmin, residual);
    rmax = std::max(rmax, residual);
  }
  plan.residual_span_ps = rmax - rmin;
  return plan;
}

}  // namespace gdelay::core
