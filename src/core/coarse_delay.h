// The coarse delay section of Fig. 8: a 1:4 fanout buffer drives four
// controlled-length differential transmission lines (nominally 0, 33, 66,
// 99 ps), and a 4:1 multiplexer selects one of them under two digital
// select lines. Only two levels of active logic touch the signal, which is
// why the paper chose this over cascading a second fine-delay line (noise
// and jitter accumulate per active stage).
#pragma once

#include <array>
#include <vector>

#include "analog/buffer.h"
#include "analog/tline.h"
#include "signal/waveform.h"
#include "util/rng.h"

namespace gdelay::core {

struct CoarseDelayConfig {
  /// Nominal electrical lengths of the four taps.
  std::array<double, 4> tap_delay_ps{0.0, 33.0, 66.0, 99.0};
  /// Per-tap manufacturing error added to the nominal length. The paper's
  /// prototype measured 0/33/70/95 ps (Fig. 9) — a few ps of deviation.
  std::array<double, 4> tap_error_ps{0.0, 0.0, 0.0, 0.0};
  /// Trace loss per 100 ps of electrical length.
  double loss_db_per_100ps = 1.2;
  /// Skin-effect/dielectric roll-off of the traces (0 disables).
  double dispersion_f3db_ghz = 28.0;
  analog::LimitingBufferConfig fanout{};
  analog::LimitingBufferConfig mux{};

  /// Tap errors reproducing the as-built prototype of Fig. 9
  /// (measured 0 / 33 / 70 / 95 ps).
  static CoarseDelayConfig prototype() {
    CoarseDelayConfig c;
    c.tap_error_ps = {0.0, 0.0, 4.0, -4.0};
    return c;
  }
};

class CoarseDelayBlock {
 public:
  static constexpr int kTaps = 4;

  CoarseDelayBlock(const CoarseDelayConfig& cfg, util::Rng rng);

  const CoarseDelayConfig& config() const { return cfg_; }

  /// Programs the two select lines (tap in [0, 3]).
  void select(int tap);
  int selected() const { return selected_; }

  /// Nominal + error length of a tap.
  double tap_delay_ps(int tap) const;

  /// Independent deterministic noise streams for the active buffers of a
  /// cloned block (the passive taps carry no noise).
  void fork_noise(std::uint64_t stream);

  void reset();
  /// All four taps are simulated every sample so the selection may change
  /// mid-run, exactly like flipping the real select lines.
  double step(double vin, double dt_ps);
  /// Stage-major block path — byte-identical to `n` step() calls. Every
  /// tap is still advanced (their state must track the fanout signal for
  /// mid-run reselection), but each as one whole-block pass.
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps);
  sig::Waveform process(const sig::Waveform& in);

  /// Batch-executor part accessors.
  analog::LimitingBuffer& fanout() { return fanout_; }
  analog::TransmissionLine& tap(int i) { return taps_[i]; }
  analog::LimitingBuffer& mux() { return mux_; }

 private:
  CoarseDelayConfig cfg_;
  int selected_ = 0;
  analog::LimitingBuffer fanout_;
  // Held by value so the block (and the channel around it) is copyable:
  // the parallel calibration sweeps clone one programmed channel per
  // sweep point.
  std::vector<analog::TransmissionLine> taps_;
  analog::LimitingBuffer mux_;
};

}  // namespace gdelay::core
