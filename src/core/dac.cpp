#include "core/dac.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gdelay::core {

Dac::Dac(int bits, double vref) : bits_(bits), vref_(vref) {
  if (bits < 4 || bits > 20)
    throw std::invalid_argument("Dac: bits must be in [4, 20]");
  if (vref <= 0.0) throw std::invalid_argument("Dac: vref must be > 0");
  max_code_ = (1u << bits_) - 1u;
}

double Dac::lsb_v() const { return vref_ / static_cast<double>(max_code_); }

double Dac::voltage(std::uint32_t code) const {
  code = std::min(code, max_code_);
  return static_cast<double>(code) * lsb_v();
}

std::uint32_t Dac::code_for(double v) const {
  const double clamped = std::clamp(v, 0.0, vref_);
  const double code = std::round(clamped / lsb_v());
  return std::min(static_cast<std::uint32_t>(code), max_code_);
}

}  // namespace gdelay::core
