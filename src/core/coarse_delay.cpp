#include "core/coarse_delay.h"

#include <stdexcept>

#include "util/scratch.h"

namespace gdelay::core {

CoarseDelayBlock::CoarseDelayBlock(const CoarseDelayConfig& cfg,
                                   util::Rng rng)
    : cfg_(cfg), fanout_(cfg.fanout, rng.fork(1)), mux_(cfg.mux, rng.fork(2)) {
  taps_.reserve(kTaps);
  for (int i = 0; i < kTaps; ++i) {
    const double len = cfg.tap_delay_ps[static_cast<std::size_t>(i)] +
                       cfg.tap_error_ps[static_cast<std::size_t>(i)];
    if (len < 0.0)
      throw std::invalid_argument("CoarseDelayBlock: negative tap length");
    analog::TransmissionLineConfig tl;
    tl.delay_ps = len;
    tl.loss_db = analog::trace_loss_db(len, cfg.loss_db_per_100ps);
    tl.dispersion_f3db_ghz = cfg.dispersion_f3db_ghz;
    taps_.emplace_back(tl);
  }
}

void CoarseDelayBlock::select(int tap) {
  if (tap < 0 || tap >= kTaps)
    throw std::invalid_argument("CoarseDelayBlock: tap out of range");
  selected_ = tap;
}

double CoarseDelayBlock::tap_delay_ps(int tap) const {
  if (tap < 0 || tap >= kTaps)
    throw std::invalid_argument("CoarseDelayBlock: tap out of range");
  return cfg_.tap_delay_ps[static_cast<std::size_t>(tap)] +
         cfg_.tap_error_ps[static_cast<std::size_t>(tap)];
}

void CoarseDelayBlock::fork_noise(std::uint64_t stream) {
  fanout_.fork_noise(stream);
  mux_.fork_noise(stream);
}

void CoarseDelayBlock::reset() {
  fanout_.reset();
  for (auto& t : taps_) t.reset();
  mux_.reset();
}

double CoarseDelayBlock::step(double vin, double dt_ps) {
  const double fan = fanout_.step(vin, dt_ps);
  double sel = 0.0;
  for (int i = 0; i < kTaps; ++i) {
    const double v = taps_[static_cast<std::size_t>(i)].step(fan, dt_ps);
    if (i == selected_) sel = v;
  }
  return mux_.step(sel, dt_ps);
}

void CoarseDelayBlock::process_block(const double* in, double* out,
                                     std::size_t n, double dt_ps) {
  util::ScratchBuffer fan(n), tmp(n);
  fanout_.process_block(in, fan.data(), n, dt_ps);
  for (int i = 0; i < kTaps; ++i) {
    double* dst = (i == selected_) ? out : tmp.data();
    taps_[static_cast<std::size_t>(i)].process_block(fan.data(), dst, n,
                                                     dt_ps);
  }
  mux_.process_block(out, out, n, dt_ps);
}

sig::Waveform CoarseDelayBlock::process(const sig::Waveform& in) {
  reset();
  return analog::run_blocked(in, [this](const double* src, double* dst,
                                        std::size_t n, double dt_ps) {
    process_block(src, dst, n, dt_ps);
  });
}

}  // namespace gdelay::core
