// Multi-channel deskew planning (the Fig. 2 application).
//
// Given the measured arrival time of each bus channel at its minimum
// delay setting and each channel's calibration, pick one common target
// arrival time and a per-channel (tap, DAC code) that aligns everybody
// to it. This is the computation the ATE controller runs after the
// skew-measurement pass; ate::DeskewController drives it end-to-end.
#pragma once

#include <vector>

#include "core/calibration.h"

namespace gdelay::core {

struct DeskewPlan {
  /// Arrival time every channel is steered to.
  double target_arrival_ps = 0.0;
  std::vector<DelaySetting> settings;      ///< One per channel.
  std::vector<double> residual_ps;         ///< Predicted arrival - target.
  /// Predicted worst channel-to-channel skew after programming
  /// (max residual - min residual).
  double residual_span_ps = 0.0;
  bool feasible = true;  ///< False if some channel ran out of range.
};

class DeskewEngine {
 public:
  /// `arrival_ps[i]`: measured arrival of channel i with tap 0 and
  /// Vctrl = 0 (i.e. channel skew + minimum latency). Sizes must match.
  /// The target is placed mid-way through the feasible window so every
  /// channel keeps headroom in both directions.
  static DeskewPlan plan(const std::vector<double>& arrival_ps,
                         const std::vector<ChannelCalibration>& cals);
};

}  // namespace gdelay::core
