// Streaming fused-pipeline executor.
//
// Chains a SampleSource, a sequence of processing stages and a set of
// measurement sinks into a single pass over cache-sized chunks: each
// chunk is rendered, pushed through every stage in place, and folded
// into every sink before the next chunk is touched. Peak memory is
// O(chunk), not O(stages x waveform), and the hot samples stay L1/L2
// resident — the software analogue of clocking samples through a
// hardware delay line without staging buffers.
//
// Identity guarantee: because every stage's process_block() is
// contractually byte-identical to per-sample step() calls at any
// chunking (the PR 2 block-kernel contract), and every sink carries its
// seam state explicitly, a Pipeline run produces bit-for-bit the same
// doubles as materializing each intermediate waveform — at ANY
// chunk_samples. Stages draw from their own RNG streams in sample
// order, so the draw order also matches the materializing path.
//
// Stages are borrowed, not owned: benches and calibration code keep
// configuring the very objects (channel, injector) they stream through.
// All referenced stages, the source and the sinks must outlive run().
//
// Batch-of-pipelines façade: when the SAME stimulus must be run through
// N independent channel/fine-line chains (Monte-Carlo trials, sweep
// points, board channels), core::BatchRunner (core/batch.h) is the
// lane-batched counterpart of N Pipeline runs — it chunks identically
// (kBlockSamples), drives each stream's exact pass sequence through the
// batched backend kernels, and feeds one ISampleSink per stream, with
// each stream's samples bit-identical to its solo Pipeline run.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <vector>

#include "analog/element.h"
#include "measure/sinks.h"
#include "signal/stream.h"

namespace gdelay::core {

class Pipeline {
 public:
  /// `chunk_samples` is the span processed per pass; the default matches
  /// the block kernels' cache-sized unit. Results are chunk-invariant —
  /// the knob trades loop overhead against cache footprint only.
  explicit Pipeline(std::size_t chunk_samples = analog::kBlockSamples);

  /// Appends a borrowed processing stage. Any type with
  /// `reset()` and `process_block(const double*, double*, std::size_t,
  /// double)` qualifies — AnalogElement, VariableDelayChannel,
  /// JitterInjector, FineDelayLine...
  template <typename T>
  Pipeline& add_stage(T& stage) {
    stages_.push_back(std::make_unique<StageModel<T>>(stage));
    return *this;
  }

  std::size_t chunk_samples() const { return chunk_; }
  std::size_t n_stages() const { return stages_.size(); }

  /// Pulls the entire source through the stage chain, feeding every
  /// processed chunk to each sink in order. Rewinds the source and
  /// resets every stage first (mirroring the whole-waveform process()
  /// contract: fresh signal state, continuing noise streams), brackets
  /// the sinks with begin()/finish(). May be called repeatedly.
  void run(sig::SampleSource& source,
           std::initializer_list<meas::ISampleSink*> sinks);
  void run(sig::SampleSource& source, meas::ISampleSink& sink);

 private:
  struct IStage {
    virtual ~IStage() = default;
    virtual void reset() = 0;
    virtual void process_block(const double* in, double* out, std::size_t n,
                               double dt_ps) = 0;
  };

  template <typename T>
  struct StageModel final : IStage {
    explicit StageModel(T& s) : stage(&s) {}
    void reset() override { stage->reset(); }
    void process_block(const double* in, double* out, std::size_t n,
                       double dt_ps) override {
      stage->process_block(in, out, n, dt_ps);
    }
    T* stage;
  };

  std::size_t chunk_;
  std::vector<std::unique_ptr<IStage>> stages_;
};

}  // namespace gdelay::core
