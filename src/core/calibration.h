// Delay calibration: turns the physical channel into a programmable
// "give me X picoseconds" instrument.
//
// The calibrator plays a reference stimulus through the channel while
// sweeping Vctrl (reproducing the Fig. 7 measurement) and while stepping
// the coarse taps (Fig. 9), then builds an invertible model:
//
//   delay(tap, vctrl) = base_latency + tap_offset[tap] + fine_curve(vctrl)
//
// `ChannelCalibration::plan()` solves that model for a requested delay,
// picks the tap, inverts the fine curve and quantizes Vctrl through the
// 12-bit DAC — the paper's programming flow.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/channel.h"
#include "core/dac.h"
#include "core/fine_delay.h"
#include "signal/waveform.h"
#include "util/curve.h"

namespace gdelay::core {

struct DelaySetting {
  int tap = 0;
  std::uint32_t dac_code = 0;
  double vctrl_v = 0.0;             ///< DAC output actually applied.
  double predicted_delay_ps = 0.0;  ///< Relative to the channel minimum.
};

struct ChannelCalibration {
  /// Fine delay relative to Vctrl = 0, measured over the control range.
  util::Curve fine_curve;
  /// Extra latency of each tap relative to tap 0 (at fixed Vctrl).
  std::array<double, 4> tap_offset_ps{};
  /// Absolute latency at tap 0, Vctrl = 0 (includes all 7 stages).
  double base_latency_ps = 0.0;
  Dac dac{12, 1.5};

  double fine_range_ps() const { return fine_curve.y_span(); }
  double total_range_ps() const {
    return tap_offset_ps.back() + fine_range_ps();
  }
  /// Worst-case delay step between adjacent DAC codes over the curve.
  double resolution_ps() const;

  /// Delay (relative to the channel minimum) predicted for a setting.
  double predicted_delay_ps(int tap, double vctrl) const;
  /// Absolute latency predicted for a setting.
  double predicted_latency_ps(int tap, double vctrl) const;

  /// Setting realizing `relative_delay_ps` in [0, total_range]; clamps
  /// outside. Picks the coarse tap that centers the fine adjustment.
  DelaySetting plan(double relative_delay_ps) const;
};

class DelayCalibrator {
 public:
  struct Options {
    int n_vctrl_points = 17;  ///< Sweep points across [0, vctrl_max].
    /// Edges before this are ignored. Must exceed the stages' bias-
    /// droop settling (a few droop_tau) or the transient leaks into
    /// the delay statistics.
    double settle_ps = 3000.0;
    Dac dac{12, 1.5};
  };

  DelayCalibrator() = default;
  explicit DelayCalibrator(const Options& opt) : opt_(opt) {}

  // All measurements are clone-based: each sweep point runs on its own
  // copy of the device (they are value types), so the device under test
  // is never mutated, the points execute in parallel on the global
  // thread pool (see util/thread_pool.h), and results are bit-identical
  // for any `GDELAY_THREADS` setting.

  /// Fig. 7 measurement: fine delay vs Vctrl (relative to Vctrl = 0).
  util::Curve measure_fine_curve(const FineDelayLine& line,
                                 const sig::Waveform& stimulus) const;

  /// Same sweep on a complete channel at its currently selected tap.
  util::Curve measure_fine_curve(const VariableDelayChannel& ch,
                                 const sig::Waveform& stimulus) const;

  /// Full channel calibration: fine sweep on tap 0 + one run per tap.
  /// The channel's own tap/Vctrl programming is left untouched.
  ChannelCalibration calibrate(const VariableDelayChannel& ch,
                               const sig::Waveform& stimulus) const;

  /// Convenience for the range studies (Figs. 12, 14, 15): delay swing
  /// between Vctrl = 0 and Vctrl = max for the given stimulus.
  double measure_fine_range(const FineDelayLine& line,
                            const sig::Waveform& stimulus) const;

  /// Range measurement for PERIODIC stimuli (the RZ-clock sweeps of
  /// Figs. 14/15), where edge-order pairing is ambiguous. Sweeps Vctrl in
  /// `n_steps` increments and accumulates phase deltas wrapped into half a
  /// UI — exact as long as each increment moves the delay by < ui/2.
  double measure_fine_range_periodic(const FineDelayLine& line,
                                     const sig::Waveform& stimulus,
                                     double ui_ps, int n_steps = 8) const;

 private:
  Options opt_{};
};

}  // namespace gdelay::core
