#include "core/cal_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace gdelay::core {

std::string calibration_to_text(const ChannelCalibration& cal) {
  std::ostringstream os;
  os.precision(17);
  os << "gdelay_calibration 1\n";
  os << "base_latency_ps " << cal.base_latency_ps << "\n";
  os << "tap_offsets_ps " << cal.tap_offset_ps[0] << " "
     << cal.tap_offset_ps[1] << " " << cal.tap_offset_ps[2] << " "
     << cal.tap_offset_ps[3] << "\n";
  os << "dac_bits " << cal.dac.bits() << "\n";
  os << "dac_vref " << cal.dac.vref() << "\n";
  os << "curve_points " << cal.fine_curve.size() << "\n";
  for (std::size_t i = 0; i < cal.fine_curve.size(); ++i)
    os << "point " << cal.fine_curve.xs()[i] << " "
       << cal.fine_curve.ys()[i] << "\n";
  return os.str();
}

ChannelCalibration calibration_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string key;
  if (!(is >> key) || key != "gdelay_calibration")
    throw std::runtime_error("calibration_from_text: bad magic");
  int version = 0;
  if (!(is >> version) || version != 1)
    throw std::runtime_error("calibration_from_text: unsupported version");

  ChannelCalibration cal;
  bool have_latency = false, have_taps = false;
  int dac_bits = 12;
  double dac_vref = 1.5;
  std::size_t n_points = 0;
  std::vector<double> xs, ys;

  while (is >> key) {
    if (key == "base_latency_ps") {
      if (!(is >> cal.base_latency_ps))
        throw std::runtime_error("calibration_from_text: bad latency");
      have_latency = true;
    } else if (key == "tap_offsets_ps") {
      for (auto& t : cal.tap_offset_ps)
        if (!(is >> t))
          throw std::runtime_error("calibration_from_text: bad taps");
      have_taps = true;
    } else if (key == "dac_bits") {
      if (!(is >> dac_bits))
        throw std::runtime_error("calibration_from_text: bad dac_bits");
    } else if (key == "dac_vref") {
      if (!(is >> dac_vref))
        throw std::runtime_error("calibration_from_text: bad dac_vref");
    } else if (key == "curve_points") {
      if (!(is >> n_points) || n_points < 2)
        throw std::runtime_error("calibration_from_text: bad point count");
      xs.reserve(n_points);
      ys.reserve(n_points);
    } else if (key == "point") {
      double x = 0.0, y = 0.0;
      if (!(is >> x >> y))
        throw std::runtime_error("calibration_from_text: bad point");
      xs.push_back(x);
      ys.push_back(y);
    } else {
      throw std::runtime_error("calibration_from_text: unknown key '" +
                               key + "'");
    }
  }
  if (!have_latency || !have_taps)
    throw std::runtime_error("calibration_from_text: missing fields");
  if (xs.size() != n_points)
    throw std::runtime_error("calibration_from_text: point count mismatch");
  cal.dac = Dac(dac_bits, dac_vref);
  try {
    cal.fine_curve = util::Curve(std::move(xs), std::move(ys));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("calibration_from_text: ") +
                             e.what());
  }
  return cal;
}

void save_calibration(const std::string& path,
                      const ChannelCalibration& cal) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_calibration: cannot open " + path);
  f << calibration_to_text(cal);
  if (!f) throw std::runtime_error("save_calibration: write failed");
}

ChannelCalibration load_calibration(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_calibration: cannot open " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return calibration_from_text(os.str());
}

}  // namespace gdelay::core
