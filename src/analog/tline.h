// Controlled-length differential transmission line.
//
// Models the coarse-delay taps of Fig. 8: an ideal transport delay
// (trace length), a frequency-flat loss factor, and an optional
// single-pole "dispersion" roll-off standing in for skin-effect and
// dielectric loss. Longer taps get proportionally more loss, which is
// why the paper's measured taps (0/33/70/95 ps) deviate a few ps from
// the ideal 0/33/66/99 — our per-tap length error models the same
// manufacturing tolerance.
#pragma once

#include "analog/element.h"
#include "analog/primitives.h"

namespace gdelay::analog {

struct TransmissionLineConfig {
  double delay_ps = 0.0;            ///< Electrical length.
  double loss_db = 0.0;             ///< Flat amplitude loss (positive = loss).
  double dispersion_f3db_ghz = 0.0; ///< 0 disables the dispersion pole.
};

class TransmissionLine final : public AnalogElement {
 public:
  explicit TransmissionLine(const TransmissionLineConfig& cfg);

  const TransmissionLineConfig& config() const { return cfg_; }
  double delay_ps() const { return cfg_.delay_ps; }

  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<TransmissionLine>(*this);
  }
  void reset() override;
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;

  /// Batch-executor part accessors.
  FractionalDelay& frac_delay() { return delay_; }
  double loss_factor() const { return loss_factor_; }
  bool has_pole() const { return has_pole_; }
  SinglePoleFilter& pole() { return pole_; }

 private:
  TransmissionLineConfig cfg_;
  FractionalDelay delay_;
  double loss_factor_;
  // Dispersion pole allocated lazily only if enabled.
  bool has_pole_;
  SinglePoleFilter pole_;
};

/// Loss (dB) of a trace of electrical length `delay_ps` given a loss rate
/// in dB per 100 ps of length — convenient for deriving tap losses.
double trace_loss_db(double delay_ps, double db_per_100ps);

}  // namespace gdelay::analog
