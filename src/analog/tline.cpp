#include "analog/tline.h"

#include "util/units.h"

namespace gdelay::analog {

TransmissionLine::TransmissionLine(const TransmissionLineConfig& cfg)
    : cfg_(cfg),
      delay_(cfg.delay_ps),
      loss_factor_(util::db_loss_to_factor(cfg.loss_db)),
      has_pole_(cfg.dispersion_f3db_ghz > 0.0),
      pole_(has_pole_ ? cfg.dispersion_f3db_ghz : 1.0) {}

void TransmissionLine::reset() {
  delay_.reset();
  pole_.reset();
}

double TransmissionLine::step(double vin, double dt_ps) {
  double v = delay_.step(vin, dt_ps);
  v *= loss_factor_;
  if (has_pole_) v = pole_.step(v, dt_ps);
  return v;
}

double trace_loss_db(double delay_ps, double db_per_100ps) {
  return delay_ps / 100.0 * db_per_100ps;
}

}  // namespace gdelay::analog
