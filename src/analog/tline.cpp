#include "analog/tline.h"

#include "util/units.h"

namespace gdelay::analog {

TransmissionLine::TransmissionLine(const TransmissionLineConfig& cfg)
    : cfg_(cfg),
      delay_(cfg.delay_ps),
      loss_factor_(util::db_loss_to_factor(cfg.loss_db)),
      has_pole_(cfg.dispersion_f3db_ghz > 0.0),
      pole_(has_pole_ ? cfg.dispersion_f3db_ghz : 1.0) {}

void TransmissionLine::reset() {
  delay_.reset();
  pole_.reset();
}

double TransmissionLine::step(double vin, double dt_ps) {
  double v = delay_.step(vin, dt_ps);
  v *= loss_factor_;
  if (has_pole_) v = pole_.step(v, dt_ps);
  return v;
}

void TransmissionLine::process_block(const double* in, double* out,
                                     std::size_t n, double dt_ps) {
  delay_.process_block(in, out, n, dt_ps);
  for (std::size_t i = 0; i < n; ++i) out[i] *= loss_factor_;
  if (has_pole_) pole_.process_block(out, out, n, dt_ps);
}

double trace_loss_db(double delay_ps, double db_per_100ps) {
  return delay_ps / 100.0 * db_per_100ps;
}

}  // namespace gdelay::analog
