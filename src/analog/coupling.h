// AC coupling, attenuation and bench noise sources.
//
// `NoiseSource` + `AcCoupler` together model the paper's jitter-injection
// hookup (Section 5): an external Gaussian voltage-noise generator
// AC-coupled onto the fine-delay control voltage Vctrl.
#pragma once

#include "analog/element.h"
#include "analog/primitives.h"
#include "backend/backend.h"
#include "signal/waveform.h"
#include "util/rng.h"

namespace gdelay::analog {

/// First-order high-pass (series capacitor + termination).
class AcCoupler final : public AnalogElement {
 public:
  /// `f_hp_ghz`: -3 dB high-pass corner (e.g. 0.01 = 10 MHz).
  explicit AcCoupler(double f_hp_ghz);
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<AcCoupler>(*this);
  }
  void reset() override;
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;

 private:
  double f_hp_;
  double x_prev_ = 0.0;
  double y_ = 0.0;
  bool first_ = true;
  double blk_dt_ = 0.0;
  double blk_a_ = 0.0;
};

/// Flat attenuation (e.g. the series measurement resistors the paper notes
/// in Fig. 13: "amplitude attenuation is due to series resistors added for
/// measurement convenience").
class Attenuator final : public AnalogElement {
 public:
  explicit Attenuator(double loss_db);
  void reset() override {}
  double step(double vin, double /*dt_ps*/) override { return vin * factor_; }
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<Attenuator>(*this);
  }
  double factor() const { return factor_; }

 private:
  double factor_;
};

/// Band-limited Gaussian voltage noise generator (no signal input).
/// The output standard deviation equals `sigma_v` regardless of dt or
/// bandwidth — the internal white noise is re-scaled to compensate for
/// the power removed by the band-limiting filter.
class NoiseSource {
 public:
  NoiseSource(double sigma_v, double bandwidth_ghz, util::Rng rng);

  double sigma_v() const { return sigma_; }

  /// Deterministically switches to an independent noise stream derived
  /// from the current one. Cloned elements share their parent's RNG
  /// state; forking each clone with a distinct `stream` restores
  /// statistically independent noise per clone while staying exactly
  /// reproducible (the parallel sweeps fork by sweep-point index).
  void fork_noise(std::uint64_t stream) { rng_ = rng_.fork(stream); }

  void reset();
  /// Next noise sample, advancing dt picoseconds.
  double step(double dt_ps);

  /// `n` noise samples at once — byte-identical to `n` step(dt_ps) calls,
  /// with the filter coefficients hoisted and the Gaussian draws batched.
  void process_block(double* out, std::size_t n, double dt_ps);

  /// Renders `n` samples as a waveform on the given grid.
  sig::Waveform waveform(double t0_ps, double dt_ps, std::size_t n);

  /// (Re)derives the dt-dependent filter coefficients. Public so the
  /// batch executor can prime a stream before reading the accessors
  /// below; process_block() primes itself, so solo callers never need it.
  void prime(double dt_ps);

  /// Batch-executor hooks: the primed coefficients, the RNG (same
  /// per-stream draw order as the solo path — fill_gaussian is
  /// chunk-invariant by the Rng contract) and the recursion state.
  double primed_alpha() const { return blk_alpha_; }
  double primed_sigma_x() const { return blk_sx_; }
  util::Rng& rng() { return rng_; }
  backend::OnePoleState& pole_state() { return st_; }

 private:
  double sigma_;
  double bw_;
  util::Rng rng_;
  backend::OnePoleState st_;
  double blk_dt_ = 0.0;
  double blk_alpha_ = 0.0;
  double blk_sx_ = 0.0;
};

}  // namespace gdelay::analog
