// Differential-pair imperfections.
//
// The library's waveforms carry the *differential* voltage, which is
// exact while the P and N legs are perfectly matched. Real boards are
// not: the two traces of each "controlled length differential pair"
// (Fig. 8) can differ in length (leg skew) and the two legs of a buffer
// in gain. DifferentialImbalance reconstructs the legs, applies the
// mismatch, and recombines:
//
//   out(t) = [gP * v(t - skew/2) + gN * v(t + skew/2)] / 2 + 2*offset_cm*cmrr
//
// Leg skew softens edges (the legs cross at different times) and
// stretches the crossing; gain mismatch plus any common-mode offset
// shifts the zero crossing, which the downstream limiter turns into
// duty-cycle distortion — both classic differential-layout defects.
#pragma once

#include "analog/element.h"
#include "analog/primitives.h"

namespace gdelay::analog {

struct DifferentialImbalanceConfig {
  /// P leg longer than N by this much (total leg-to-leg skew).
  double leg_skew_ps = 0.0;
  /// Fractional gain mismatch m: gP = 1 + m/2, gN = 1 - m/2.
  double gain_mismatch_frac = 0.0;
  /// Differential offset produced by common-mode imbalance (V).
  double offset_v = 0.0;
};

class DifferentialImbalance final : public AnalogElement {
 public:
  explicit DifferentialImbalance(const DifferentialImbalanceConfig& cfg);

  const DifferentialImbalanceConfig& config() const { return cfg_; }

  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<DifferentialImbalance>(*this);
  }
  void reset() override;
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;

 private:
  DifferentialImbalanceConfig cfg_;
  FractionalDelay p_leg_;
  FractionalDelay n_leg_;
};

}  // namespace gdelay::analog
