#include "analog/primitives.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace gdelay::analog {

SinglePoleFilter::SinglePoleFilter(double f3db_ghz) : f3db_(f3db_ghz) {
  if (f3db_ghz <= 0.0)
    throw std::invalid_argument("SinglePoleFilter: f3dB must be > 0");
}

double SinglePoleFilter::tau_ps() const {
  return 1000.0 / (2.0 * util::kPi * f3db_);
}

double SinglePoleFilter::step(double vin, double dt_ps) {
  // Exact discretization of the first-order ODE over one step.
  const double alpha = 1.0 - std::exp(-dt_ps / tau_ps());
  y_ += alpha * (vin - y_);
  return y_;
}

SlewRateLimiter::SlewRateLimiter(double slew_v_per_ps, double tau_lin_ps,
                                 double leak_tau_ps)
    : slew_(slew_v_per_ps), tau_lin_(tau_lin_ps), leak_tau_(leak_tau_ps) {
  if (slew_v_per_ps <= 0.0)
    throw std::invalid_argument("SlewRateLimiter: slew must be > 0");
  if (tau_lin_ps < 0.0)
    throw std::invalid_argument("SlewRateLimiter: tau_lin must be >= 0");
  if (leak_tau_ps < 0.0)
    throw std::invalid_argument("SlewRateLimiter: leak_tau must be >= 0");
}

double SlewRateLimiter::step(double vin, double dt_ps) {
  if (first_) {
    y_ = vin;
    first_ = false;
    return y_;
  }
  const double max_step = slew_ * dt_ps;
  const double err = vin - y_;
  double want = err;
  if (tau_lin_ > 0.0)
    want *= 1.0 - std::exp(-dt_ps / tau_lin_);  // linear settling region
  double dy = std::clamp(want, -max_step, max_step);
  if (leak_tau_ > 0.0)
    dy += err * (1.0 - std::exp(-dt_ps / leak_tau_));  // output conductance
  y_ += dy;
  return y_;
}

TanhLimiter::TanhLimiter(double gain, double vsat_v)
    : gain_(gain), vsat_(vsat_v) {
  if (gain <= 0.0 || vsat_v <= 0.0)
    throw std::invalid_argument("TanhLimiter: gain and vsat must be > 0");
}

double TanhLimiter::step(double vin, double /*dt_ps*/) {
  return vsat_ * std::tanh(gain_ * vin / vsat_);
}

NoiseAdder::NoiseAdder(double density_v_sqrtps, util::Rng rng)
    : density_(density_v_sqrtps), rng_(rng) {
  if (density_v_sqrtps < 0.0)
    throw std::invalid_argument("NoiseAdder: density must be >= 0");
}

double NoiseAdder::step(double vin, double dt_ps) {
  if (density_ == 0.0) return vin;
  return vin + rng_.gaussian(0.0, density_ / std::sqrt(dt_ps));
}

FractionalDelay::FractionalDelay(double delay_ps) : delay_(delay_ps) {
  if (delay_ps < 0.0)
    throw std::invalid_argument("FractionalDelay: delay must be >= 0");
}

void FractionalDelay::reset() {
  hist_.clear();
  head_ = 0;
  filled_ = 0;
  dt_cached_ = 0.0;
}

double FractionalDelay::step(double vin, double dt_ps) {
  if (dt_ps <= 0.0)
    throw std::invalid_argument("FractionalDelay: dt must be > 0");
  if (hist_.empty() || dt_ps != dt_cached_) {
    // (Re)size for this sample rate; the line starts "charged" with the
    // first input so there is no artificial startup step.
    dt_cached_ = dt_ps;
    const auto n =
        static_cast<std::size_t>(std::ceil(delay_ / dt_ps)) + 2;
    hist_.assign(n, vin);
    head_ = 0;
    filled_ = 0;
  }
  hist_[head_] = vin;
  const double offset = delay_ / dt_cached_;  // samples into the past
  const auto k = static_cast<std::size_t>(offset);
  const double frac = offset - static_cast<double>(k);
  const std::size_t n = hist_.size();
  const std::size_t i0 = (head_ + n - (k % n)) % n;
  const std::size_t i1 = (i0 + n - 1) % n;
  const double v0 = hist_[i0];
  const double v1 = hist_[i1];
  head_ = (head_ + 1) % n;
  if (filled_ < n) ++filled_;
  return v0 + (v1 - v0) * frac;
}

}  // namespace gdelay::analog
