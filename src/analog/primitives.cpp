#include "analog/primitives.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "backend/backend.h"
#include "util/fastmath.h"
#include "util/scratch.h"
#include "util/units.h"

namespace gdelay::analog {

SinglePoleFilter::SinglePoleFilter(double f3db_ghz) : f3db_(f3db_ghz) {
  if (f3db_ghz <= 0.0)
    throw std::invalid_argument("SinglePoleFilter: f3dB must be > 0");
}

double SinglePoleFilter::tau_ps() const {
  return 1000.0 / (2.0 * util::kPi * f3db_);
}

double SinglePoleFilter::step(double vin, double dt_ps) {
  // Exact discretization of the first-order ODE over one step, routed
  // through the backend as an n == 1 kernel call: under the scalar
  // oracle this is exactly `y += alpha * (vin - y)`, and under the AVX2
  // scan it advances the same group state a block call would, so
  // step-vs-block identity holds per backend, not just for scalar.
  double out;
  backend::active().one_pole(&vin, &out, 1, alpha_for(dt_ps), st_);
  return out;
}

double SinglePoleFilter::alpha_for(double dt_ps) {
  if (dt_ps != blk_dt_) {
    blk_dt_ = dt_ps;
    blk_alpha_ = 1.0 - util::det_exp(-dt_ps / tau_ps());
  }
  return blk_alpha_;
}

void SinglePoleFilter::process_block(const double* in, double* out,
                                     std::size_t n, double dt_ps) {
  backend::active().one_pole(in, out, n, alpha_for(dt_ps), st_);
}

SlewRateLimiter::SlewRateLimiter(double slew_v_per_ps, double tau_lin_ps,
                                 double leak_tau_ps)
    : slew_(slew_v_per_ps), tau_lin_(tau_lin_ps), leak_tau_(leak_tau_ps) {
  if (slew_v_per_ps <= 0.0)
    throw std::invalid_argument("SlewRateLimiter: slew must be > 0");
  if (tau_lin_ps < 0.0)
    throw std::invalid_argument("SlewRateLimiter: tau_lin must be >= 0");
  if (leak_tau_ps < 0.0)
    throw std::invalid_argument("SlewRateLimiter: leak_tau must be >= 0");
}

double SlewRateLimiter::step(double vin, double dt_ps) {
  // Same coefficient derivations as always (slew*dt, the det_exp
  // settling/leak factors), hoisted through prime()'s dt-keyed cache and
  // applied by the shared backend reference step — byte-identical to the
  // historical inline arithmetic, term for term.
  prime(dt_ps);
  return backend::slew_step(blk_, st_, vin);
}

void SlewRateLimiter::prime(double dt_ps) {
  if (dt_ps == blk_dt_) return;
  blk_dt_ = dt_ps;
  blk_.max_step = slew_ * dt_ps;
  blk_.has_lin = tau_lin_ > 0.0;
  blk_.has_leak = leak_tau_ > 0.0;
  blk_.lin = blk_.has_lin ? 1.0 - util::det_exp(-dt_ps / tau_lin_) : 1.0;
  blk_.leak = blk_.has_leak ? 1.0 - util::det_exp(-dt_ps / leak_tau_) : 0.0;
}

void SlewRateLimiter::process_block(const double* in, double* out,
                                    std::size_t n, double dt_ps) {
  prime(dt_ps);
  backend::active().slew(in, out, n, blk_, st_);
}

TanhLimiter::TanhLimiter(double gain, double vsat_v)
    : gain_(gain), vsat_(vsat_v) {
  if (gain <= 0.0 || vsat_v <= 0.0)
    throw std::invalid_argument("TanhLimiter: gain and vsat must be > 0");
}

double TanhLimiter::step(double vin, double /*dt_ps*/) {
  return vsat_ * util::det_tanh(gain_ * vin / vsat_);
}

void TanhLimiter::process_block(const double* in, double* out, std::size_t n,
                                double /*dt_ps*/) {
  // Stateless; the backend tanh_stage kernel is elementwise and (on
  // every backend) bit-exact against the step() expression.
  backend::active().tanh_stage(in, nullptr, out, n, gain_, vsat_, vsat_);
}

void GainStage::process_block(const double* in, double* out, std::size_t n,
                              double /*dt_ps*/) {
  backend::active().scale(in, out, n, gain_);
}

NoiseAdder::NoiseAdder(double density_v_sqrtps, util::Rng rng)
    : density_(density_v_sqrtps), rng_(rng) {
  if (density_v_sqrtps < 0.0)
    throw std::invalid_argument("NoiseAdder: density must be >= 0");
}

double NoiseAdder::step(double vin, double dt_ps) {
  if (density_ == 0.0) return vin;
  return vin + rng_.gaussian(0.0, density_ / std::sqrt(dt_ps));
}

void NoiseAdder::process_block(const double* in, double* out, std::size_t n,
                               double dt_ps) {
  if (density_ == 0.0) {
    if (out != in) std::copy(in, in + n, out);
    return;
  }
  const double sigma = density_ / std::sqrt(dt_ps);
  util::ScratchBuffer noise(n);
  rng_.fill_gaussian(noise.data(), n, 0.0, sigma);
  for (std::size_t i = 0; i < n; ++i) out[i] = in[i] + noise[i];
}

FractionalDelay::FractionalDelay(double delay_ps) : delay_(delay_ps) {
  if (delay_ps < 0.0)
    throw std::invalid_argument("FractionalDelay: delay must be >= 0");
}

void FractionalDelay::reset() {
  hist_.clear();
  head_ = 0;
  filled_ = 0;
  dt_cached_ = 0.0;
}

void FractionalDelay::ensure_grid(double dt_ps, double vin) {
  if (!hist_.empty() && dt_ps == dt_cached_) return;
  const auto n = static_cast<std::size_t>(std::ceil(delay_ / dt_ps)) + 2;
  if (hist_.empty()) {
    // First use: the line starts "charged" with the first input so there
    // is no artificial startup step.
    hist_.assign(n, vin);
    head_ = 0;
    filled_ = 0;
  } else {
    // Mid-run sample-rate change: resample the stored waveform onto the
    // new grid so the line's charge survives the switch. (Flushing the
    // ring — the old behaviour — teleported the delayed signal to the
    // current input, a delay_ps-long artificial flat segment.)
    const std::size_t n_old = hist_.size();
    const double max_past =
        static_cast<double>(n_old - 1) * dt_cached_;  // deepest stored time
    std::vector<double> next(n);
    // Slot (n - k) holds the sample k new-steps into the past of the
    // *upcoming* write (matching the ring reader below, with head_ = 0).
    // The newest stored sample sits one new-step back; beyond the stored
    // depth we clamp to the oldest value.
    for (std::size_t k = 1; k < n; ++k) {
      const double t_past = std::min(
          static_cast<double>(k - 1) * dt_ps, max_past);
      const double pos = t_past / dt_cached_;
      const auto j = static_cast<std::size_t>(pos);
      const double frac = pos - static_cast<double>(j);
      const std::size_t j1 = std::min(j + 1, n_old - 1);
      const double v0 = hist_[(head_ + n_old - 1 - j) % n_old];
      const double v1 = hist_[(head_ + n_old - 1 - j1) % n_old];
      next[n - k] = v0 + (v1 - v0) * frac;
    }
    next[0] = hist_[(head_ + n_old - 1) % n_old];  // overwritten next write
    hist_ = std::move(next);
    head_ = 0;
    filled_ = n;
  }
  dt_cached_ = dt_ps;
}

double FractionalDelay::step(double vin, double dt_ps) {
  if (dt_ps <= 0.0)
    throw std::invalid_argument("FractionalDelay: dt must be > 0");
  ensure_grid(dt_ps, vin);
  hist_[head_] = vin;
  const double offset = delay_ / dt_cached_;  // samples into the past
  const auto k = static_cast<std::size_t>(offset);
  const double frac = offset - static_cast<double>(k);
  const std::size_t n = hist_.size();
  const std::size_t i0 = (head_ + n - (k % n)) % n;
  const std::size_t i1 = (i0 + n - 1) % n;
  const double v0 = hist_[i0];
  const double v1 = hist_[i1];
  head_ = (head_ + 1) % n;
  if (filled_ < n) ++filled_;
  return v0 + (v1 - v0) * frac;
}

void FractionalDelay::process_block(const double* in, double* out,
                                    std::size_t count, double dt_ps) {
  if (count == 0) return;
  if (dt_ps <= 0.0)
    throw std::invalid_argument("FractionalDelay: dt must be > 0");
  ensure_grid(dt_ps, in[0]);
  // Same math as step() with the dt-derived offset hoisted and the ring
  // indices advanced incrementally (one wraparound test instead of three
  // modulos per sample).
  const double offset = delay_ / dt_cached_;
  const auto k = static_cast<std::size_t>(offset);
  const double frac = offset - static_cast<double>(k);
  const std::size_t n = hist_.size();
  std::size_t head = head_;
  std::size_t i0 = (head + n - (k % n)) % n;
  for (std::size_t i = 0; i < count; ++i) {
    hist_[head] = in[i];
    const std::size_t i1 = i0 == 0 ? n - 1 : i0 - 1;
    const double v0 = hist_[i0];
    const double v1 = hist_[i1];
    out[i] = v0 + (v1 - v0) * frac;
    if (++head == n) head = 0;
    if (++i0 == n) i0 = 0;
  }
  head_ = head;
  filled_ = std::min(n, filled_ + count);
}

}  // namespace gdelay::analog
