// Buffer models: the variable-gain (variable-amplitude) buffer at the core
// of the paper's fine-delay technique, and the limiting buffer used for
// amplitude recovery, fanout and muxing.
//
// The VariableGainBuffer signal path is
//
//   vin -> [tanh input pair] -> [single-pole bandwidth] -> [+noise]
//       -> [limiting output stage scaled to A(Vctrl)] -> [slew limiter]
//
// Because the output stage slews at a fixed rate S from rail -A toward
// +A, the 50 % (zero) crossing lands A/S after the internal switching
// instant: programmed amplitude directly sets propagation delay. This is
// the timing/amplitude dependency the paper observed (~10 ps per stage
// over the 100-750 mV amplitude range) and then exploited. Nothing in
// this model stores a delay value — the effect is emergent.
#pragma once

#include "analog/coupling.h"
#include "analog/element.h"
#include "analog/primitives.h"
#include "util/rng.h"

namespace gdelay::analog {

struct VgaBufferConfig {
  double input_gain = 2.5;       ///< Small-signal gain of the input pair.
  double input_sat_v = 0.5;      ///< Input-pair saturation (half-swing, V).
  double f3db_ghz = 9.0;         ///< Stage bandwidth ("12 Gb/s-class" part).
  double output_gain = 2.0;      ///< Limiting sharpness of the output stage.
  double output_ref_v = 0.2;     ///< Internal level treated as "full drive".
  double slew_v_per_ps = 0.005;  ///< Output slew rate S (V/ps, differential).
  /// Small-signal settling time constant of the output stage; errors
  /// below slew * tau_lin settle linearly instead of slewing.
  double slew_tau_lin_ps = 20.0;
  /// Output-conductance leak toward the target (acts during slewing);
  /// bounds the duty-cycle wander of a compressed stage.
  double slew_leak_tau_ps = 300.0;
  /// Bias droop: the output stage's tail current sags in proportion to
  /// the fraction of time it spends slew-limited (switching activity),
  /// shrinking the realized amplitude. Self-regulating: a setting too
  /// large to complete within the signal period droops until it fits, so
  /// the output stays clean while the control authority -- the amplitude
  /// span and with it the delay range -- compresses at high rates. This
  /// is the Fig. 15 roll-off mechanism.
  double droop_frac = 0.4;
  double droop_tau_ps = 4000.0;
  double amp_min_v = 0.260;      ///< Output half-swing at Vctrl = 0.
  double amp_max_v = 0.375;      ///< Output half-swing at Vctrl = max (750 mVpp).
  double vctrl_max_v = 1.5;      ///< Control-voltage range.
  /// Gain-control soft-saturation shape factor; larger = sharper ends.
  /// Produces the slope flattening near the Vctrl extremes seen in Fig. 7.
  double ctrl_shape = 2.2;
  /// Output-network pole (package + load). Its exponential settling
  /// tail is what erodes the usable amplitude swing — and with it the
  /// delay range — as the signal rate rises (the Fig. 15 roll-off).
  double output_pole_f3db_ghz = 8.0;
  /// Band-limited additive voltage noise at the internal node (sigma) —
  /// the physical source of the circuit's added random jitter. Band
  /// limiting keeps the noise correlated across one edge, so it converts
  /// to timing jitter via the local edge slope like real amplifier noise.
  double noise_sigma_v = 0.012;
  double noise_bandwidth_ghz = 7.5;
};

class VariableGainBuffer final : public AnalogElement {
 public:
  VariableGainBuffer(const VgaBufferConfig& cfg, util::Rng rng);

  /// Programmed control voltage (clamped to [0, vctrl_max] inside
  /// amplitude()). May be changed between — or during — runs.
  void set_vctrl(double v) { vctrl_ = v; }
  double vctrl() const { return vctrl_; }

  /// Output half-swing A(Vctrl) currently in effect (before droop).
  double amplitude() const;
  /// Current droop state in [0, 1]: fraction of recent time spent
  /// slew-limited (diagnostic).
  double droop() const { return tail_.droop; }
  /// A(v) for an arbitrary control voltage (pure function of the config).
  double amplitude_for(double vctrl) const;

  const VgaBufferConfig& config() const { return cfg_; }

  /// Independent deterministic noise stream for a cloned stage (see
  /// NoiseSource::fork_noise).
  void fork_noise(std::uint64_t stream) { noise_.fork_noise(stream); }

  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<VariableGainBuffer>(*this);
  }
  void reset() override;
  double step(double vin, double dt_ps) override;
  /// Stage-major block path: tanh pair, bandwidth pole and batched noise
  /// run as whole-block passes; the droop/slew/output recursion — whose
  /// state feeds back sample-to-sample — runs as one fused scalar loop
  /// with every dt-dependent coefficient hoisted. Byte-identical to
  /// step(); Vctrl modulation (jitter injection) stays on the step path.
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;

  /// Hoists the droop/slew-tail coefficients for (vctrl_, dt_ps) — every
  /// value a pure function of the config, bit-equal between paths.
  /// Public (with the part accessors below) so the batch executor can
  /// run this stage's exact pass sequence through the batched kernels.
  backend::VgaTailCoeffs tail_coeffs(double dt_ps);
  SinglePoleFilter& lpf() { return lpf_; }
  NoiseSource& noise() { return noise_; }
  SlewRateLimiter& slew_limiter() { return slew_; }
  SinglePoleFilter& out_pole() { return out_pole_; }
  backend::VgaTailState& tail_state() { return tail_; }

 private:
  VgaBufferConfig cfg_;
  double vctrl_;
  TanhLimiter input_;
  SinglePoleFilter lpf_;
  NoiseSource noise_;
  SlewRateLimiter slew_;
  SinglePoleFilter out_pole_;
  backend::VgaTailState tail_;
};

struct LimitingBufferConfig {
  double input_gain = 4.0;
  double input_sat_v = 0.5;
  double f3db_ghz = 9.0;
  double output_gain = 8.0;
  double output_ref_v = 0.2;
  double out_swing_v = 0.4;     ///< Fixed output half-swing (full logic level).
  double slew_v_per_ps = 0.08;  ///< Fast output stage.
  double noise_sigma_v = 0.012;
  double noise_bandwidth_ghz = 9.0;
};

/// Fixed-amplitude regenerating buffer: recovers full logic swing while
/// preserving input edge timing. Also models one branch of the 1:4 fanout
/// chip and the output stage of the 4:1 mux.
class LimitingBuffer final : public AnalogElement {
 public:
  LimitingBuffer(const LimitingBufferConfig& cfg, util::Rng rng);

  const LimitingBufferConfig& config() const { return cfg_; }

  /// Independent deterministic noise stream for a cloned buffer.
  void fork_noise(std::uint64_t stream) { noise_.fork_noise(stream); }

  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<LimitingBuffer>(*this);
  }
  void reset() override;
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;

  /// Batch-executor part accessors (the tanh stages are parameterized by
  /// config() alone, so only the stateful parts need exposing).
  SinglePoleFilter& lpf() { return lpf_; }
  NoiseSource& noise() { return noise_; }
  SlewRateLimiter& slew_limiter() { return slew_; }

 private:
  LimitingBufferConfig cfg_;
  TanhLimiter input_;
  SinglePoleFilter lpf_;
  NoiseSource noise_;
  SlewRateLimiter slew_;
};

}  // namespace gdelay::analog
