#include "analog/coupling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "backend/backend.h"
#include "util/units.h"
#include "util/fastmath.h"

namespace gdelay::analog {

AcCoupler::AcCoupler(double f_hp_ghz) : f_hp_(f_hp_ghz) {
  if (f_hp_ghz <= 0.0) throw std::invalid_argument("AcCoupler: f_hp must be > 0");
}

void AcCoupler::reset() {
  x_prev_ = 0.0;
  y_ = 0.0;
  first_ = true;
}

double AcCoupler::step(double vin, double dt_ps) {
  const double tau = 1000.0 / (2.0 * util::kPi * f_hp_);
  const double a = tau / (tau + dt_ps);
  if (first_) {
    // Start settled: a DC input produces zero output immediately.
    x_prev_ = vin;
    y_ = 0.0;
    first_ = false;
    return 0.0;
  }
  y_ = a * (y_ + vin - x_prev_);
  x_prev_ = vin;
  return y_;
}

void AcCoupler::process_block(const double* in, double* out, std::size_t n,
                              double dt_ps) {
  if (dt_ps != blk_dt_) {
    blk_dt_ = dt_ps;
    const double tau = 1000.0 / (2.0 * util::kPi * f_hp_);
    blk_a_ = tau / (tau + dt_ps);
  }
  const double a = blk_a_;
  std::size_t i = 0;
  if (first_ && n > 0) {
    x_prev_ = in[0];
    y_ = 0.0;
    first_ = false;
    out[i++] = 0.0;
  }
  double y = y_, x_prev = x_prev_;
  for (; i < n; ++i) {
    y = a * (y + in[i] - x_prev);
    x_prev = in[i];
    out[i] = y;
  }
  y_ = y;
  x_prev_ = x_prev;
}

void Attenuator::process_block(const double* in, double* out, std::size_t n,
                               double /*dt_ps*/) {
  backend::active().scale(in, out, n, factor_);
}

Attenuator::Attenuator(double loss_db)
    : factor_(util::db_loss_to_factor(loss_db)) {
  if (loss_db < 0.0) throw std::invalid_argument("Attenuator: loss must be >= 0");
}

NoiseSource::NoiseSource(double sigma_v, double bandwidth_ghz, util::Rng rng)
    : sigma_(sigma_v), bw_(bandwidth_ghz), rng_(rng) {
  if (sigma_v < 0.0) throw std::invalid_argument("NoiseSource: sigma must be >= 0");
  if (bandwidth_ghz <= 0.0)
    throw std::invalid_argument("NoiseSource: bandwidth must be > 0");
}

void NoiseSource::reset() { st_ = {}; }

double NoiseSource::step(double dt_ps) {
  if (sigma_ == 0.0) return 0.0;
  prime(dt_ps);
  // Var(y) = Var(x) * alpha / (2 - alpha) for a one-pole filter driven by
  // white noise; scale the white input so Var(y) == sigma^2. The pole is
  // an n == 1 backend kernel call so step-vs-block identity holds per
  // backend (the AVX2 scan carries its group phase in st_).
  const double x = rng_.gaussian(0.0, blk_sx_);
  double out;
  backend::active().one_pole(&x, &out, 1, blk_alpha_, st_);
  return out;
}

void NoiseSource::prime(double dt_ps) {
  if (dt_ps == blk_dt_) return;
  blk_dt_ = dt_ps;
  const double tau = 1000.0 / (2.0 * util::kPi * bw_);
  blk_alpha_ = 1.0 - util::det_exp(-dt_ps / tau);
  blk_sx_ = sigma_ * std::sqrt((2.0 - blk_alpha_) / blk_alpha_);
}

void NoiseSource::process_block(double* out, std::size_t n, double dt_ps) {
  if (sigma_ == 0.0) {
    std::fill(out, out + n, 0.0);
    return;
  }
  prime(dt_ps);
  rng_.fill_gaussian(out, n, 0.0, blk_sx_);
  backend::active().one_pole(out, out, n, blk_alpha_, st_);
}

sig::Waveform NoiseSource::waveform(double t0_ps, double dt_ps,
                                    std::size_t n) {
  sig::Waveform wf(t0_ps, dt_ps, n);
  for (std::size_t o = 0; o < n; o += kBlockSamples)
    process_block(wf.samples().data() + o, std::min(kBlockSamples, n - o),
                  dt_ps);
  return wf;
}

}  // namespace gdelay::analog
