#include "analog/buffer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "backend/backend.h"
#include "util/fastmath.h"
#include "util/scratch.h"

namespace gdelay::analog {

VariableGainBuffer::VariableGainBuffer(const VgaBufferConfig& cfg,
                                       util::Rng rng)
    : cfg_(cfg),
      vctrl_(cfg.vctrl_max_v),
      input_(cfg.input_gain, cfg.input_sat_v),
      lpf_(cfg.f3db_ghz),
      noise_(cfg.noise_sigma_v, cfg.noise_bandwidth_ghz, rng),
      slew_(cfg.slew_v_per_ps, cfg.slew_tau_lin_ps, cfg.slew_leak_tau_ps),
      out_pole_(cfg.output_pole_f3db_ghz) {
  if (cfg.amp_min_v <= 0.0 || cfg.amp_max_v <= cfg.amp_min_v)
    throw std::invalid_argument("VgaBufferConfig: need 0 < amp_min < amp_max");
  if (cfg.vctrl_max_v <= 0.0)
    throw std::invalid_argument("VgaBufferConfig: vctrl_max must be > 0");
}

double VariableGainBuffer::amplitude_for(double vctrl) const {
  // Normalized control in [0, 1] with gentle tanh-shaped saturation at the
  // ends: the commercial part's gain-control pin responds ~linearly over
  // the middle of its range and compresses near the rails.
  const double u = std::clamp(vctrl / cfg_.vctrl_max_v, 0.0, 1.0);
  const double k = cfg_.ctrl_shape;
  const double f =
      (util::det_tanh(k * (u - 0.5)) / util::det_tanh(k * 0.5) + 1.0) / 2.0;
  return cfg_.amp_min_v + (cfg_.amp_max_v - cfg_.amp_min_v) * f;
}

double VariableGainBuffer::amplitude() const { return amplitude_for(vctrl_); }

void VariableGainBuffer::reset() {
  input_.reset();
  lpf_.reset();
  noise_.reset();
  slew_.reset();
  out_pole_.reset();
  tail_ = {};
}

backend::VgaTailCoeffs VariableGainBuffer::tail_coeffs(double dt_ps) {
  // Every value is a pure function of (config, vctrl_, dt) and is formed
  // by the same expressions the historical inline step() used, so both
  // paths and all backends agree bitwise. amp_frac is hoisted as
  // amp - (amp*frac)*droop rather than amp*(1 - frac*droop): one fewer
  // multiply on the serially-dependent droop chain.
  backend::VgaTailCoeffs c;
  c.amp = amplitude();
  c.amp_frac = c.amp * cfg_.droop_frac;
  c.max_step = cfg_.slew_v_per_ps * dt_ps;
  // Multiplying by the reciprocal (instead of dividing) keeps the
  // expensive divide off the per-sample droop recursion.
  c.inv_max_step = c.max_step > 0.0 ? 1.0 / c.max_step : 0.0;
  c.alpha = 1.0 - util::det_exp(-dt_ps / cfg_.droop_tau_ps);
  slew_.prime(dt_ps);
  c.slew = slew_.primed_coeffs();
  return c;
}

double VariableGainBuffer::step(double vin, double dt_ps) {
  double x = input_.step(vin, dt_ps);
  x = lpf_.step(x, dt_ps);
  x += noise_.step(dt_ps);
  // Unit-amplitude limiting output stage; the (droop-sagged) half-swing
  // is applied inside the tail step — bias droop models the output
  // stage's tail current sagging with recent switching activity
  // (fraction of time spent slew-limited), the paper's Fig. 15 roll-off
  // mechanism. vga_tail_step is the shared backend reference step, so
  // this path and the block kernel agree byte for byte.
  const double lim =
      util::det_tanh(cfg_.output_gain * x / cfg_.output_ref_v);
  const backend::VgaTailCoeffs c = tail_coeffs(dt_ps);
  const double slewed =
      backend::vga_tail_step(c, slew_.state(), tail_, lim);
  return out_pole_.step(slewed, dt_ps);
}

void VariableGainBuffer::process_block(const double* in, double* out,
                                       std::size_t n, double dt_ps) {
  util::ScratchBuffer noise(n);
  util::ScratchBuffer lim(n);
  const backend::Kernels& k = backend::active();
  input_.process_block(in, out, n, dt_ps);
  lpf_.process_block(out, out, n, dt_ps);
  noise_.process_block(noise.data(), n, dt_ps);
  // The limiter argument is feedforward — it depends only on the
  // filtered input plus noise, not on the droop/slew recursion — so the
  // tanh pass is hoisted out of the recursion into the elementwise
  // tanh_stage kernel (the AVX2 backend's biggest win in this element).
  // step() forms the same doubles in the same order, so the split
  // changes nothing bitwise.
  k.tanh_stage(out, noise.data(), lim.data(), n, cfg_.output_gain,
               cfg_.output_ref_v, 1.0);
  // The droop/slew recursion feeds back sample-to-sample through a
  // clamp, so it stays a serial kernel on every backend (the AVX2 table
  // points at the shared scalar definition).
  const backend::VgaTailCoeffs c = tail_coeffs(dt_ps);
  k.vga_tail(lim.data(), out, n, c, slew_.state(), tail_);
  out_pole_.process_block(out, out, n, dt_ps);
}

LimitingBuffer::LimitingBuffer(const LimitingBufferConfig& cfg, util::Rng rng)
    : cfg_(cfg),
      input_(cfg.input_gain, cfg.input_sat_v),
      lpf_(cfg.f3db_ghz),
      noise_(cfg.noise_sigma_v, cfg.noise_bandwidth_ghz, rng),
      slew_(cfg.slew_v_per_ps) {
  if (cfg.out_swing_v <= 0.0)
    throw std::invalid_argument("LimitingBufferConfig: out_swing must be > 0");
}

void LimitingBuffer::reset() {
  input_.reset();
  lpf_.reset();
  noise_.reset();
  slew_.reset();
}

double LimitingBuffer::step(double vin, double dt_ps) {
  double x = input_.step(vin, dt_ps);
  x = lpf_.step(x, dt_ps);
  x += noise_.step(dt_ps);
  const double target =
      cfg_.out_swing_v *
      util::det_tanh(cfg_.output_gain * x / cfg_.output_ref_v);
  return slew_.step(target, dt_ps);
}

void LimitingBuffer::process_block(const double* in, double* out,
                                   std::size_t n, double dt_ps) {
  util::ScratchBuffer noise(n);
  input_.process_block(in, out, n, dt_ps);
  lpf_.process_block(out, out, n, dt_ps);
  noise_.process_block(noise.data(), n, dt_ps);
  // Elementwise limiting stage through the backend tanh_stage kernel —
  // bit-exact against step()'s inline expression on every backend.
  backend::active().tanh_stage(out, noise.data(), out, n, cfg_.output_gain,
                               cfg_.output_ref_v, cfg_.out_swing_v);
  slew_.process_block(out, out, n, dt_ps);
}

}  // namespace gdelay::analog
