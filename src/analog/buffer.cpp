#include "analog/buffer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/fastmath.h"
#include "util/scratch.h"

namespace gdelay::analog {

VariableGainBuffer::VariableGainBuffer(const VgaBufferConfig& cfg,
                                       util::Rng rng)
    : cfg_(cfg),
      vctrl_(cfg.vctrl_max_v),
      input_(cfg.input_gain, cfg.input_sat_v),
      lpf_(cfg.f3db_ghz),
      noise_(cfg.noise_sigma_v, cfg.noise_bandwidth_ghz, rng),
      slew_(cfg.slew_v_per_ps, cfg.slew_tau_lin_ps, cfg.slew_leak_tau_ps),
      out_pole_(cfg.output_pole_f3db_ghz) {
  if (cfg.amp_min_v <= 0.0 || cfg.amp_max_v <= cfg.amp_min_v)
    throw std::invalid_argument("VgaBufferConfig: need 0 < amp_min < amp_max");
  if (cfg.vctrl_max_v <= 0.0)
    throw std::invalid_argument("VgaBufferConfig: vctrl_max must be > 0");
}

double VariableGainBuffer::amplitude_for(double vctrl) const {
  // Normalized control in [0, 1] with gentle tanh-shaped saturation at the
  // ends: the commercial part's gain-control pin responds ~linearly over
  // the middle of its range and compresses near the rails.
  const double u = std::clamp(vctrl / cfg_.vctrl_max_v, 0.0, 1.0);
  const double k = cfg_.ctrl_shape;
  const double f =
      (util::det_tanh(k * (u - 0.5)) / util::det_tanh(k * 0.5) + 1.0) / 2.0;
  return cfg_.amp_min_v + (cfg_.amp_max_v - cfg_.amp_min_v) * f;
}

double VariableGainBuffer::amplitude() const { return amplitude_for(vctrl_); }

void VariableGainBuffer::reset() {
  input_.reset();
  lpf_.reset();
  noise_.reset();
  slew_.reset();
  out_pole_.reset();
  droop_state_ = 0.0;
  prev_out_ = 0.0;
  first_sample_ = true;
}

double VariableGainBuffer::step(double vin, double dt_ps) {
  double x = input_.step(vin, dt_ps);
  x = lpf_.step(x, dt_ps);
  x += noise_.step(dt_ps);
  // Bias droop: the realized amplitude sags with recent switching
  // activity (fraction of time the output stage was slew-limited).
  // Written as amp - (amp*frac)*droop rather than amp*(1 - frac*droop):
  // amp*frac is a pure function of Vctrl, so the block path hoists it
  // and its fused loop carries one fewer multiply on the serial droop
  // chain. Both paths share the expression shape, so they agree bitwise.
  const double amp = amplitude();
  const double a = amp - (amp * cfg_.droop_frac) * droop_state_;
  // Limiting output stage: saturates at the (drooped) half-swing.
  const double target =
      a * util::det_tanh(cfg_.output_gain * x / cfg_.output_ref_v);
  const double slewed = slew_.step(target, dt_ps);
  const double max_step = cfg_.slew_v_per_ps * dt_ps;
  // Continuous switching-activity measure: |dV| relative to the slew
  // limit, averaged over droop_tau. Smooth (not binary) so the droop
  // feedback settles instead of hunting. Multiplying by the reciprocal
  // (instead of dividing) keeps the expensive divide off the
  // serially-dependent droop chain in the block path's fused loop —
  // both paths use the same expression so they stay byte-identical.
  const double inv_max_step = max_step > 0.0 ? 1.0 / max_step : 0.0;
  double activity = 0.0;
  if (!first_sample_ && max_step > 0.0)
    activity = std::min(1.0, std::abs(slewed - prev_out_) * inv_max_step);
  first_sample_ = false;
  prev_out_ = slewed;
  const double alpha = 1.0 - util::det_exp(-dt_ps / cfg_.droop_tau_ps);
  droop_state_ += alpha * (activity - droop_state_);
  return out_pole_.step(slewed, dt_ps);
}

void VariableGainBuffer::process_block(const double* in, double* out,
                                       std::size_t n, double dt_ps) {
  util::ScratchBuffer noise(n);
  util::ScratchBuffer lim(n);
  input_.process_block(in, out, n, dt_ps);
  lpf_.process_block(out, out, n, dt_ps);
  noise_.process_block(noise.data(), n, dt_ps);
  // The limiter argument is feedforward — it depends only on the
  // filtered input plus noise, not on the droop/slew recursion — so the
  // tanh pass is hoisted out of the recursion into an elementwise loop
  // that auto-vectorizes. step() forms `a * det_tanh(arg)` from the same
  // doubles in the same order, so the split changes nothing bitwise.
  for (std::size_t i = 0; i < n; ++i) {
    const double x = out[i] + noise[i];
    lim[i] = util::det_tanh(cfg_.output_gain * x / cfg_.output_ref_v);
  }
  // Hoisted invariants of the fused droop/slew recursion. amplitude() is
  // a pure function of the fixed Vctrl, and every exp() argument depends
  // only on dt — the values below are bit-equal to what step() derives
  // per sample.
  const double amp = amplitude();
  const double amp_frac = amp * cfg_.droop_frac;
  const double max_step = cfg_.slew_v_per_ps * dt_ps;
  const double inv_max_step = max_step > 0.0 ? 1.0 / max_step : 0.0;
  const double alpha = 1.0 - util::det_exp(-dt_ps / cfg_.droop_tau_ps);
  slew_.prime(dt_ps);
  // The recursion state is copied into locals for the loop (and written
  // back after) for the same reason SlewRateLimiter::Primed exists: the
  // out[i] stores are doubles, so member state touched inside the loop
  // would be assumed aliased and reloaded every iteration.
  SlewRateLimiter::Primed sp = slew_.primed();
  double droop = droop_state_;
  double prev = prev_out_;
  bool first = first_sample_;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = amp - amp_frac * droop;
    const double target = a * lim[i];
    const double slewed = SlewRateLimiter::step_primed(sp, target);
    double activity = 0.0;
    if (!first && max_step > 0.0)
      activity = std::min(1.0, std::abs(slewed - prev) * inv_max_step);
    first = false;
    prev = slewed;
    droop += alpha * (activity - droop);
    out[i] = slewed;
  }
  slew_.commit(sp);
  droop_state_ = droop;
  prev_out_ = prev;
  first_sample_ = first;
  out_pole_.process_block(out, out, n, dt_ps);
}

LimitingBuffer::LimitingBuffer(const LimitingBufferConfig& cfg, util::Rng rng)
    : cfg_(cfg),
      input_(cfg.input_gain, cfg.input_sat_v),
      lpf_(cfg.f3db_ghz),
      noise_(cfg.noise_sigma_v, cfg.noise_bandwidth_ghz, rng),
      slew_(cfg.slew_v_per_ps) {
  if (cfg.out_swing_v <= 0.0)
    throw std::invalid_argument("LimitingBufferConfig: out_swing must be > 0");
}

void LimitingBuffer::reset() {
  input_.reset();
  lpf_.reset();
  noise_.reset();
  slew_.reset();
}

double LimitingBuffer::step(double vin, double dt_ps) {
  double x = input_.step(vin, dt_ps);
  x = lpf_.step(x, dt_ps);
  x += noise_.step(dt_ps);
  const double target =
      cfg_.out_swing_v *
      util::det_tanh(cfg_.output_gain * x / cfg_.output_ref_v);
  return slew_.step(target, dt_ps);
}

void LimitingBuffer::process_block(const double* in, double* out,
                                   std::size_t n, double dt_ps) {
  util::ScratchBuffer noise(n);
  input_.process_block(in, out, n, dt_ps);
  lpf_.process_block(out, out, n, dt_ps);
  noise_.process_block(noise.data(), n, dt_ps);
  // Elementwise and branch-free (det_tanh): auto-vectorizes on SSE2.
  for (std::size_t i = 0; i < n; ++i) {
    const double x = out[i] + noise[i];
    out[i] = cfg_.out_swing_v *
             util::det_tanh(cfg_.output_gain * x / cfg_.output_ref_v);
  }
  slew_.process_block(out, out, n, dt_ps);
}

}  // namespace gdelay::analog
