#include "analog/buffer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gdelay::analog {

VariableGainBuffer::VariableGainBuffer(const VgaBufferConfig& cfg,
                                       util::Rng rng)
    : cfg_(cfg),
      vctrl_(cfg.vctrl_max_v),
      input_(cfg.input_gain, cfg.input_sat_v),
      lpf_(cfg.f3db_ghz),
      noise_(cfg.noise_sigma_v, cfg.noise_bandwidth_ghz, rng),
      slew_(cfg.slew_v_per_ps, cfg.slew_tau_lin_ps, cfg.slew_leak_tau_ps),
      out_pole_(cfg.output_pole_f3db_ghz) {
  if (cfg.amp_min_v <= 0.0 || cfg.amp_max_v <= cfg.amp_min_v)
    throw std::invalid_argument("VgaBufferConfig: need 0 < amp_min < amp_max");
  if (cfg.vctrl_max_v <= 0.0)
    throw std::invalid_argument("VgaBufferConfig: vctrl_max must be > 0");
}

double VariableGainBuffer::amplitude_for(double vctrl) const {
  // Normalized control in [0, 1] with gentle tanh-shaped saturation at the
  // ends: the commercial part's gain-control pin responds ~linearly over
  // the middle of its range and compresses near the rails.
  const double u = std::clamp(vctrl / cfg_.vctrl_max_v, 0.0, 1.0);
  const double k = cfg_.ctrl_shape;
  const double f =
      (std::tanh(k * (u - 0.5)) / std::tanh(k * 0.5) + 1.0) / 2.0;
  return cfg_.amp_min_v + (cfg_.amp_max_v - cfg_.amp_min_v) * f;
}

double VariableGainBuffer::amplitude() const { return amplitude_for(vctrl_); }

void VariableGainBuffer::reset() {
  input_.reset();
  lpf_.reset();
  noise_.reset();
  slew_.reset();
  out_pole_.reset();
  droop_state_ = 0.0;
  prev_out_ = 0.0;
  first_sample_ = true;
}

double VariableGainBuffer::step(double vin, double dt_ps) {
  double x = input_.step(vin, dt_ps);
  x = lpf_.step(x, dt_ps);
  x += noise_.step(dt_ps);
  // Bias droop: the realized amplitude sags with recent switching
  // activity (fraction of time the output stage was slew-limited).
  const double a = amplitude() * (1.0 - cfg_.droop_frac * droop_state_);
  // Limiting output stage: saturates at the (drooped) half-swing.
  const double target =
      a * std::tanh(cfg_.output_gain * x / cfg_.output_ref_v);
  const double slewed = slew_.step(target, dt_ps);
  const double max_step = cfg_.slew_v_per_ps * dt_ps;
  // Continuous switching-activity measure: |dV| relative to the slew
  // limit, averaged over droop_tau. Smooth (not binary) so the droop
  // feedback settles instead of hunting.
  double activity = 0.0;
  if (!first_sample_ && max_step > 0.0)
    activity = std::min(1.0, std::abs(slewed - prev_out_) / max_step);
  first_sample_ = false;
  prev_out_ = slewed;
  const double alpha = 1.0 - std::exp(-dt_ps / cfg_.droop_tau_ps);
  droop_state_ += alpha * (activity - droop_state_);
  return out_pole_.step(slewed, dt_ps);
}

LimitingBuffer::LimitingBuffer(const LimitingBufferConfig& cfg, util::Rng rng)
    : cfg_(cfg),
      input_(cfg.input_gain, cfg.input_sat_v),
      lpf_(cfg.f3db_ghz),
      noise_(cfg.noise_sigma_v, cfg.noise_bandwidth_ghz, rng),
      slew_(cfg.slew_v_per_ps) {
  if (cfg.out_swing_v <= 0.0)
    throw std::invalid_argument("LimitingBufferConfig: out_swing must be > 0");
}

void LimitingBuffer::reset() {
  input_.reset();
  lpf_.reset();
  noise_.reset();
  slew_.reset();
}

double LimitingBuffer::step(double vin, double dt_ps) {
  double x = input_.step(vin, dt_ps);
  x = lpf_.step(x, dt_ps);
  x += noise_.step(dt_ps);
  const double target =
      cfg_.out_swing_v * std::tanh(cfg_.output_gain * x / cfg_.output_ref_v);
  return slew_.step(target, dt_ps);
}

}  // namespace gdelay::analog
