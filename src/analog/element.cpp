#include "analog/element.h"

namespace gdelay::analog {

void AnalogElement::process_block(const double* in, double* out,
                                  std::size_t n, double dt_ps) {
  for (std::size_t i = 0; i < n; ++i) out[i] = step(in[i], dt_ps);
}

sig::Waveform AnalogElement::process(const sig::Waveform& in) {
  reset();
  return run_blocked(in, [this](const double* src, double* dst,
                                std::size_t n, double dt_ps) {
    process_block(src, dst, n, dt_ps);
  });
}

sig::Waveform AnalogElement::process(sig::Waveform&& in) {
  reset();
  double* p = in.samples().data();
  const std::size_t total = in.size();
  for (std::size_t o = 0; o < total; o += kBlockSamples)
    process_block(p + o, p + o, std::min(kBlockSamples, total - o),
                  in.dt_ps());
  return std::move(in);
}

std::unique_ptr<AnalogElement> Cascade::clone() const {
  auto copy = std::make_unique<Cascade>();
  copy->stages_.reserve(stages_.size());
  for (const auto& s : stages_) copy->stages_.push_back(s->clone());
  return copy;
}

void Cascade::add(std::unique_ptr<AnalogElement> el) {
  stages_.push_back(std::move(el));
}

void Cascade::reset() {
  for (auto& s : stages_) s->reset();
}

double Cascade::step(double vin, double dt_ps) {
  double v = vin;
  for (auto& s : stages_) v = s->step(v, dt_ps);
  return v;
}

void Cascade::process_block(const double* in, double* out, std::size_t n,
                            double dt_ps) {
  if (stages_.empty()) {
    if (out != in) std::copy(in, in + n, out);
    return;
  }
  stages_.front()->process_block(in, out, n, dt_ps);
  for (std::size_t s = 1; s < stages_.size(); ++s)
    stages_[s]->process_block(out, out, n, dt_ps);
}

}  // namespace gdelay::analog
