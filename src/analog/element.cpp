#include "analog/element.h"

namespace gdelay::analog {

sig::Waveform AnalogElement::process(const sig::Waveform& in) {
  reset();
  sig::Waveform out(in.t0_ps(), in.dt_ps(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i)
    out[i] = step(in[i], in.dt_ps());
  return out;
}

void Cascade::add(std::unique_ptr<AnalogElement> el) {
  stages_.push_back(std::move(el));
}

void Cascade::reset() {
  for (auto& s : stages_) s->reset();
}

double Cascade::step(double vin, double dt_ps) {
  double v = vin;
  for (auto& s : stages_) v = s->step(v, dt_ps);
  return v;
}

}  // namespace gdelay::analog
