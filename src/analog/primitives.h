// Primitive behavioral elements: filters, limiters, gain, noise, delay.
//
// These are the building blocks the buffer models (buffer.h) are composed
// from. Each one models a single first-order physical mechanism:
//
//   SinglePoleFilter  finite bandwidth of an amplifier stage
//   SlewRateLimiter   finite output-stage slew rate — THE mechanism behind
//                     the paper's amplitude-dependent delay (Fig. 4/5)
//   TanhLimiter       differential-pair soft saturation
//   GainStage         ideal linear gain
//   NoiseAdder        white (optionally band-limited) voltage noise with a
//                     dt-independent spectral density
//   FractionalDelay   ideal transport delay (transmission-line core)
#pragma once

#include <algorithm>
#include <vector>

#include "analog/element.h"
#include "util/rng.h"

namespace gdelay::analog {

/// First-order low-pass, y' = 2*pi*f3dB (x - y).
class SinglePoleFilter final : public AnalogElement {
 public:
  explicit SinglePoleFilter(double f3db_ghz);
  void reset() override { y_ = 0.0; }
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<SinglePoleFilter>(*this);
  }
  double f3db_ghz() const { return f3db_; }
  /// Time constant tau = 1/(2*pi*f3dB) in ps.
  double tau_ps() const;

 private:
  double alpha_for(double dt_ps);

  double f3db_;
  double y_ = 0.0;
  // dt-keyed coefficient cache for the block path; re-derived whenever a
  // block arrives with a different dt, so mixed-dt use stays correct.
  double blk_dt_ = 0.0;
  double blk_alpha_ = 0.0;
};

/// Output may move at most `slew_v_per_ps` volts per picosecond. With a
/// nonzero `tau_lin_ps` the element behaves like a real output stage:
/// linear first-order settling (time constant tau_lin) for small errors,
/// slew-limited only once the error exceeds S * tau_lin. The linear
/// region provides the restoring force that keeps a heavily compressed
/// stage centred (without it, duty-cycle noise makes the output random-
/// walk into a rail and drop transitions).
/// `leak_tau_ps` adds the stage's finite output conductance: a linear
/// pull toward the target that acts even while slew-limited. Without it a
/// stage that never completes its excursion (deep compression at high
/// rates) integrates noise into an unbounded duty-cycle random walk.
class SlewRateLimiter final : public AnalogElement {
 public:
  explicit SlewRateLimiter(double slew_v_per_ps, double tau_lin_ps = 0.0,
                           double leak_tau_ps = 0.0);
  void reset() override { y_ = 0.0; first_ = true; }
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<SlewRateLimiter>(*this);
  }
  double slew() const { return slew_; }
  double tau_lin_ps() const { return tau_lin_; }
  double leak_tau_ps() const { return leak_tau_; }

  /// (Re)derives the dt-dependent coefficients for the block path.
  void prime(double dt_ps);

  /// Snapshot of the primed coefficients plus the recursion state, held
  /// by value. Block loops run the recursion on a local Primed and
  /// commit() it back once at the end: the stores to the caller's
  /// `out` array are doubles too, so if the loop touched members
  /// directly the compiler would have to assume every out[i] store
  /// might alias them and reload y_/coefficients each iteration.
  /// Through a by-value snapshot everything lives in registers.
  struct Primed {
    double max_step;
    double lin;
    double leak;
    double y;
    bool first;
    bool has_lin;
    bool has_leak;
  };
  Primed primed() const {
    return {blk_max_step_, blk_lin_, blk_leak_,
            y_,            first_,   tau_lin_ > 0.0, leak_tau_ > 0.0};
  }
  void commit(const Primed& p) {
    y_ = p.y;
    first_ = p.first;
  }
  /// One step using the primed coefficients — byte-identical to
  /// step(vin, primed dt). Static on a Primed snapshot so
  /// VariableGainBuffer's fused block loop (slew output feeds the droop
  /// state) shares this exact code while keeping the state enregistered.
  static double step_primed(Primed& p, double vin) {
    if (p.first) {
      p.y = vin;
      p.first = false;
      return p.y;
    }
    const double err = vin - p.y;
    double want = err;
    if (p.has_lin) want *= p.lin;
    double dy = std::clamp(want, -p.max_step, p.max_step);
    if (p.has_leak) dy += err * p.leak;
    p.y += dy;
    return p.y;
  }

 private:
  double slew_;
  double tau_lin_;
  double leak_tau_;
  double y_ = 0.0;
  bool first_ = true;  // first sample snaps to the input (no startup ramp)
  double blk_dt_ = 0.0;
  double blk_max_step_ = 0.0;
  double blk_lin_ = 1.0;
  double blk_leak_ = 0.0;
};

/// y = vsat * tanh(gain * x / vsat): linear gain for small signals,
/// saturating at +/- vsat.
class TanhLimiter final : public AnalogElement {
 public:
  TanhLimiter(double gain, double vsat_v);
  void reset() override {}
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<TanhLimiter>(*this);
  }
  double gain() const { return gain_; }
  double vsat() const { return vsat_; }

 private:
  double gain_;
  double vsat_;
};

/// y = g * x.
class GainStage final : public AnalogElement {
 public:
  explicit GainStage(double gain) : gain_(gain) {}
  void reset() override {}
  double step(double vin, double /*dt_ps*/) override { return gain_ * vin; }
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<GainStage>(*this);
  }
  double gain() const { return gain_; }
  void set_gain(double g) { gain_ = g; }

 private:
  double gain_;
};

/// Adds Gaussian voltage noise of constant one-sided spectral density.
/// Per-sample sigma is density / sqrt(dt) so the band-integrated power —
/// and hence the jitter it induces downstream — does not depend on the
/// simulation step size.
class NoiseAdder final : public AnalogElement {
 public:
  /// density: V*sqrt(ps), e.g. 0.02 => sigma = 40 mV at dt = 0.25 ps.
  NoiseAdder(double density_v_sqrtps, util::Rng rng);
  void reset() override {}
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<NoiseAdder>(*this);
  }
  double density() const { return density_; }
  /// Independent deterministic noise stream for a cloned adder (see
  /// NoiseSource::fork_noise).
  void fork_noise(std::uint64_t stream) { rng_ = rng_.fork(stream); }

 private:
  double density_;
  util::Rng rng_;
};

/// Ideal transport delay with sub-sample (linear interpolation) precision.
/// Models the lossless core of a controlled-length PCB trace. A mid-run
/// sample-rate change re-derives the ring buffer by resampling the stored
/// history onto the new grid, so the line's charge survives the switch.
class FractionalDelay final : public AnalogElement {
 public:
  explicit FractionalDelay(double delay_ps);
  void reset() override;
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<FractionalDelay>(*this);
  }
  double delay_ps() const { return delay_; }

 private:
  /// (Re)builds the ring for `dt_ps` — charged with `vin` on first use,
  /// resampled from the existing history on a dt change.
  void ensure_grid(double dt_ps, double vin);

  double delay_;
  std::vector<double> hist_;  // ring buffer
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  double dt_cached_ = 0.0;
};

}  // namespace gdelay::analog
