// Primitive behavioral elements: filters, limiters, gain, noise, delay.
//
// These are the building blocks the buffer models (buffer.h) are composed
// from. Each one models a single first-order physical mechanism:
//
//   SinglePoleFilter  finite bandwidth of an amplifier stage
//   SlewRateLimiter   finite output-stage slew rate — THE mechanism behind
//                     the paper's amplitude-dependent delay (Fig. 4/5)
//   TanhLimiter       differential-pair soft saturation
//   GainStage         ideal linear gain
//   NoiseAdder        white (optionally band-limited) voltage noise with a
//                     dt-independent spectral density
//   FractionalDelay   ideal transport delay (transmission-line core)
#pragma once

#include <algorithm>
#include <vector>

#include "analog/element.h"
#include "backend/backend.h"
#include "util/rng.h"

namespace gdelay::analog {

/// First-order low-pass, y' = 2*pi*f3dB (x - y).
///
/// Both paths run through the active compute backend's one_pole kernel
/// (step() as an n == 1 call), so step-vs-block byte identity holds under
/// every backend — including the AVX2 scan, whose group phase lives in
/// the backend state POD and is carried across calls.
class SinglePoleFilter final : public AnalogElement {
 public:
  explicit SinglePoleFilter(double f3db_ghz);
  void reset() override { st_ = {}; }
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<SinglePoleFilter>(*this);
  }
  double f3db_ghz() const { return f3db_; }
  /// Time constant tau = 1/(2*pi*f3dB) in ps.
  double tau_ps() const;

  /// (Re)derives the dt-keyed coefficient and returns it, exposing the
  /// recursion state below — the hooks the batch executor uses to drive
  /// this filter through one_pole_batch with the exact coefficient and
  /// state the solo block path would use.
  double prime(double dt_ps) { return alpha_for(dt_ps); }
  backend::OnePoleState& pole_state() { return st_; }

 private:
  double alpha_for(double dt_ps);

  double f3db_;
  backend::OnePoleState st_;
  // dt-keyed coefficient cache for the block path; re-derived whenever a
  // block arrives with a different dt, so mixed-dt use stays correct.
  double blk_dt_ = 0.0;
  double blk_alpha_ = 0.0;
};

/// Output may move at most `slew_v_per_ps` volts per picosecond. With a
/// nonzero `tau_lin_ps` the element behaves like a real output stage:
/// linear first-order settling (time constant tau_lin) for small errors,
/// slew-limited only once the error exceeds S * tau_lin. The linear
/// region provides the restoring force that keeps a heavily compressed
/// stage centred (without it, duty-cycle noise makes the output random-
/// walk into a rail and drop transitions).
/// `leak_tau_ps` adds the stage's finite output conductance: a linear
/// pull toward the target that acts even while slew-limited. Without it a
/// stage that never completes its excursion (deep compression at high
/// rates) integrates noise into an unbounded duty-cycle random walk.
class SlewRateLimiter final : public AnalogElement {
 public:
  explicit SlewRateLimiter(double slew_v_per_ps, double tau_lin_ps = 0.0,
                           double leak_tau_ps = 0.0);
  void reset() override { st_ = {}; }
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<SlewRateLimiter>(*this);
  }
  double slew() const { return slew_; }
  double tau_lin_ps() const { return tau_lin_; }
  double leak_tau_ps() const { return leak_tau_; }

  /// (Re)derives the dt-dependent coefficients for the block path. The
  /// coefficient and state PODs are the backend kernel types, so
  /// composite elements (VariableGainBuffer's fused droop/slew tail) can
  /// hand this limiter's recursion to a backend kernel directly.
  void prime(double dt_ps);
  const backend::SlewCoeffs& primed_coeffs() const { return blk_; }
  backend::SlewState& state() { return st_; }

 private:
  double slew_;
  double tau_lin_;
  double leak_tau_;
  backend::SlewState st_;
  double blk_dt_ = 0.0;
  backend::SlewCoeffs blk_;
};

/// y = vsat * tanh(gain * x / vsat): linear gain for small signals,
/// saturating at +/- vsat.
class TanhLimiter final : public AnalogElement {
 public:
  TanhLimiter(double gain, double vsat_v);
  void reset() override {}
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<TanhLimiter>(*this);
  }
  double gain() const { return gain_; }
  double vsat() const { return vsat_; }

 private:
  double gain_;
  double vsat_;
};

/// y = g * x.
class GainStage final : public AnalogElement {
 public:
  explicit GainStage(double gain) : gain_(gain) {}
  void reset() override {}
  double step(double vin, double /*dt_ps*/) override { return gain_ * vin; }
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<GainStage>(*this);
  }
  double gain() const { return gain_; }
  void set_gain(double g) { gain_ = g; }

 private:
  double gain_;
};

/// Adds Gaussian voltage noise of constant one-sided spectral density.
/// Per-sample sigma is density / sqrt(dt) so the band-integrated power —
/// and hence the jitter it induces downstream — does not depend on the
/// simulation step size.
class NoiseAdder final : public AnalogElement {
 public:
  /// density: V*sqrt(ps), e.g. 0.02 => sigma = 40 mV at dt = 0.25 ps.
  NoiseAdder(double density_v_sqrtps, util::Rng rng);
  void reset() override {}
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<NoiseAdder>(*this);
  }
  double density() const { return density_; }
  /// Independent deterministic noise stream for a cloned adder (see
  /// NoiseSource::fork_noise).
  void fork_noise(std::uint64_t stream) { rng_ = rng_.fork(stream); }

 private:
  double density_;
  util::Rng rng_;
};

/// Ideal transport delay with sub-sample (linear interpolation) precision.
/// Models the lossless core of a controlled-length PCB trace. A mid-run
/// sample-rate change re-derives the ring buffer by resampling the stored
/// history onto the new grid, so the line's charge survives the switch.
class FractionalDelay final : public AnalogElement {
 public:
  explicit FractionalDelay(double delay_ps);
  void reset() override;
  double step(double vin, double dt_ps) override;
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  std::unique_ptr<AnalogElement> clone() const override {
    return std::make_unique<FractionalDelay>(*this);
  }
  double delay_ps() const { return delay_; }

 private:
  /// (Re)builds the ring for `dt_ps` — charged with `vin` on first use,
  /// resampled from the existing history on a dt change.
  void ensure_grid(double dt_ps, double vin);

  double delay_;
  std::vector<double> hist_;  // ring buffer
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  double dt_cached_ = 0.0;
};

}  // namespace gdelay::analog
