#include "analog/differential.h"

#include <algorithm>
#include <stdexcept>

#include "util/scratch.h"

namespace gdelay::analog {

DifferentialImbalance::DifferentialImbalance(
    const DifferentialImbalanceConfig& cfg)
    : cfg_(cfg),
      // Keep both delays non-negative: common base + half the skew on P.
      p_leg_(std::max(cfg.leg_skew_ps, 0.0)),
      n_leg_(std::max(-cfg.leg_skew_ps, 0.0)) {
  if (std::abs(cfg.gain_mismatch_frac) >= 2.0)
    throw std::invalid_argument(
        "DifferentialImbalance: |gain mismatch| must be < 2");
}

void DifferentialImbalance::reset() {
  p_leg_.reset();
  n_leg_.reset();
}

double DifferentialImbalance::step(double vin, double dt_ps) {
  // Legs: P = +v/2, N = -v/2 (common mode drops out of the difference
  // except through the modeled offset).
  const double p = p_leg_.step(vin / 2.0, dt_ps);
  const double n = n_leg_.step(-vin / 2.0, dt_ps);
  const double gp = 1.0 + cfg_.gain_mismatch_frac / 2.0;
  const double gn = 1.0 - cfg_.gain_mismatch_frac / 2.0;
  return gp * p - gn * n + cfg_.offset_v;
}

void DifferentialImbalance::process_block(const double* in, double* out,
                                          std::size_t n, double dt_ps) {
  util::ScratchBuffer p(n), m(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = in[i] / 2.0;
  for (std::size_t i = 0; i < n; ++i) m[i] = -in[i] / 2.0;
  p_leg_.process_block(p.data(), p.data(), n, dt_ps);
  n_leg_.process_block(m.data(), m.data(), n, dt_ps);
  const double gp = 1.0 + cfg_.gain_mismatch_frac / 2.0;
  const double gn = 1.0 - cfg_.gain_mismatch_frac / 2.0;
  for (std::size_t i = 0; i < n; ++i)
    out[i] = gp * p[i] - gn * m[i] + cfg_.offset_v;
}

}  // namespace gdelay::analog
