#include "analog/differential.h"

#include <algorithm>
#include <stdexcept>

namespace gdelay::analog {

DifferentialImbalance::DifferentialImbalance(
    const DifferentialImbalanceConfig& cfg)
    : cfg_(cfg),
      // Keep both delays non-negative: common base + half the skew on P.
      p_leg_(std::max(cfg.leg_skew_ps, 0.0)),
      n_leg_(std::max(-cfg.leg_skew_ps, 0.0)) {
  if (std::abs(cfg.gain_mismatch_frac) >= 2.0)
    throw std::invalid_argument(
        "DifferentialImbalance: |gain mismatch| must be < 2");
}

void DifferentialImbalance::reset() {
  p_leg_.reset();
  n_leg_.reset();
}

double DifferentialImbalance::step(double vin, double dt_ps) {
  // Legs: P = +v/2, N = -v/2 (common mode drops out of the difference
  // except through the modeled offset).
  const double p = p_leg_.step(vin / 2.0, dt_ps);
  const double n = n_leg_.step(-vin / 2.0, dt_ps);
  const double gp = 1.0 + cfg_.gain_mismatch_frac / 2.0;
  const double gn = 1.0 - cfg_.gain_mismatch_frac / 2.0;
  return gp * p - gn * n + cfg_.offset_v;
}

}  // namespace gdelay::analog
