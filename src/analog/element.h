// Base interface for behavioral analog elements.
//
// Every element is a causal, stateful, sample-in/sample-out process:
// `step(vin, dt)` advances internal state by one sample period and returns
// the output voltage. Elements compose by nesting calls (or `Cascade`),
// and `process()` runs a whole waveform through. Per-sample stepping (as
// opposed to whole-waveform transforms) is what lets a control port such
// as the delay line's Vctrl vary *during* a run — the mechanism behind the
// paper's jitter-injection mode.
//
// `process_block()` is the performance path: it advances `n` sample
// periods at once, contractually byte-identical to `n` step() calls (the
// equivalence is enforced by tests/test_block_kernels.cpp). Overrides
// hoist dt-dependent coefficients out of the sample loop and batch the
// noise draws; they are an optimization, never a semantic fork — anything
// that must vary per sample (Vctrl modulation) stays on the step path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "signal/waveform.h"

namespace gdelay::analog {

/// Samples per chunk in the blocked waveform paths: big enough to
/// amortize coefficient derivation and virtual dispatch, small enough
/// that a handful of stage-major scratch buffers stay cache-resident.
inline constexpr std::size_t kBlockSamples = 1024;

class AnalogElement {
 public:
  virtual ~AnalogElement() = default;

  /// Clears all internal state (filter memories, delay lines, ...).
  virtual void reset() = 0;

  /// Advances one sample period of `dt_ps` with input `vin`; returns the
  /// output sample.
  virtual double step(double vin, double dt_ps) = 0;

  /// Deep copy carrying the complete internal state (filter memories,
  /// ring buffers, RNG streams). Clones drive the parallel calibration
  /// sweeps: each sweep point runs on its own clone, then fork_noise()
  /// decorrelates the copies deterministically. Every override must copy
  /// *all* state — a clone that diverges from its source under identical
  /// inputs breaks sweep determinism (rule R3 of gdelay-audit enforces
  /// that every element declares this).
  virtual std::unique_ptr<AnalogElement> clone() const = 0;

  /// Advances `n` sample periods: out[i] = step(in[i], dt_ps), with
  /// byte-identical results. `in == out` (in-place) is allowed; other
  /// overlap is not. `dt_ps` may differ between calls (coefficient caches
  /// re-derive on change); within one call it is constant by signature.
  virtual void process_block(const double* in, double* out, std::size_t n,
                             double dt_ps);

  /// Runs a whole waveform through a freshly reset element (block path).
  sig::Waveform process(const sig::Waveform& in);

  /// Rvalue overload: transforms the argument's samples in place and
  /// returns the same storage — chained stages (`b.process(a.process(
  /// std::move(wf)))`) allocate nothing after the first waveform.
  sig::Waveform process(sig::Waveform&& in);
};

/// Runs `block(in_ptr, out_ptr, n, dt)` over `in` in kBlockSamples chunks
/// and returns the output waveform — the shared driver behind every
/// whole-waveform process() implementation.
template <typename BlockFn>
sig::Waveform run_blocked(const sig::Waveform& in, BlockFn&& block) {
  sig::Waveform out(in.t0_ps(), in.dt_ps(), in.size());
  const double* src = in.samples().data();
  double* dst = out.samples().data();
  const std::size_t total = in.size();
  for (std::size_t o = 0; o < total; o += kBlockSamples)
    block(src + o, dst + o, std::min(kBlockSamples, total - o), in.dt_ps());
  return out;
}

/// Serial composition of elements (owned).
class Cascade final : public AnalogElement {
 public:
  Cascade() = default;

  /// Appends an element; returns a reference for further configuration.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto el = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *el;
    stages_.push_back(std::move(el));
    return ref;
  }

  void add(std::unique_ptr<AnalogElement> el);

  std::size_t size() const { return stages_.size(); }
  AnalogElement& stage(std::size_t i) { return *stages_.at(i); }

  void reset() override;
  double step(double vin, double dt_ps) override;
  /// Stage-major: the whole block runs through stage k before stage k+1
  /// touches it. Mathematically identical for this feedforward chain, and
  /// it turns N virtual calls per sample into N per block.
  void process_block(const double* in, double* out, std::size_t n,
                     double dt_ps) override;
  /// Deep copy: each stage is cloned in order (unique_ptr stages make the
  /// compiler-generated copy unavailable).
  std::unique_ptr<AnalogElement> clone() const override;

 private:
  std::vector<std::unique_ptr<AnalogElement>> stages_;
};

}  // namespace gdelay::analog
