// Base interface for behavioral analog elements.
//
// Every element is a causal, stateful, sample-in/sample-out process:
// `step(vin, dt)` advances internal state by one sample period and returns
// the output voltage. Elements compose by nesting calls (or `Cascade`),
// and `process()` runs a whole waveform through. Per-sample stepping (as
// opposed to whole-waveform transforms) is what lets a control port such
// as the delay line's Vctrl vary *during* a run — the mechanism behind the
// paper's jitter-injection mode.
#pragma once

#include <memory>
#include <vector>

#include "signal/waveform.h"

namespace gdelay::analog {

class AnalogElement {
 public:
  virtual ~AnalogElement() = default;

  /// Clears all internal state (filter memories, delay lines, ...).
  virtual void reset() = 0;

  /// Advances one sample period of `dt_ps` with input `vin`; returns the
  /// output sample.
  virtual double step(double vin, double dt_ps) = 0;

  /// Runs a whole waveform through a freshly reset element.
  sig::Waveform process(const sig::Waveform& in);
};

/// Serial composition of elements (owned).
class Cascade final : public AnalogElement {
 public:
  Cascade() = default;

  /// Appends an element; returns a reference for further configuration.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto el = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *el;
    stages_.push_back(std::move(el));
    return ref;
  }

  void add(std::unique_ptr<AnalogElement> el);

  std::size_t size() const { return stages_.size(); }
  AnalogElement& stage(std::size_t i) { return *stages_.at(i); }

  void reset() override;
  double step(double vin, double dt_ps) override;

 private:
  std::vector<std::unique_ptr<AnalogElement>> stages_;
};

}  // namespace gdelay::analog
