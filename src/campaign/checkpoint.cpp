#include "campaign/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "util/serde.h"

namespace gdelay::campaign {

std::string frame(std::uint32_t kind, const std::string& payload) {
  util::ByteWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u32(kind);
  w.u64(payload.size());
  w.raw(payload.data(), payload.size());
  w.u64(util::fnv1a64(payload.data(), payload.size()));
  return w.take();
}

std::string unframe(const std::string& bytes, std::uint32_t expect_kind) {
  util::ByteReader r(bytes);
  if (r.remaining() < 4 + 4 + 4 + 8)
    throw std::runtime_error("checkpoint: truncated frame header");
  if (r.u32() != kCheckpointMagic)
    throw std::runtime_error("checkpoint: bad magic (not a GDCK frame)");
  const std::uint32_t version = r.u32();
  if (version != kCheckpointVersion)
    throw std::runtime_error("checkpoint: unsupported frame version " +
                             std::to_string(version));
  const std::uint32_t kind = r.u32();
  if (kind != expect_kind)
    throw std::runtime_error("checkpoint: frame kind mismatch");
  const std::uint64_t size = r.u64();
  if (r.remaining() < size + 8)
    throw std::runtime_error("checkpoint: truncated payload");
  std::string payload(static_cast<std::size_t>(size), '\0');
  r.raw(payload.data(), payload.size());
  const std::uint64_t sum = r.u64();
  if (sum != util::fnv1a64(payload.data(), payload.size()))
    throw std::runtime_error("checkpoint: payload checksum mismatch");
  if (!r.at_end())
    throw std::runtime_error("checkpoint: trailing bytes after frame");
  return payload;
}

void write_file_atomic(const std::string& path, const std::string& bytes) {
  // Checkpoint directories are part of the spec, not pre-existing state.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw std::runtime_error("checkpoint: cannot open " + tmp);
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (n != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot rename into " + path);
  }
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool remove_file(const std::string& path) {
  return std::remove(path.c_str()) == 0;
}

}  // namespace gdelay::campaign
