#include "campaign/config.h"

#include <cstdlib>
#include <stdexcept>

namespace gdelay::campaign {

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kSerial:
      return "serial";
    case Mode::kThread:
      return "thread";
    case Mode::kFork:
      return "fork";
  }
  return "?";
}

Mode parse_mode(const std::string& s) {
  if (s == "serial") return Mode::kSerial;
  if (s == "thread") return Mode::kThread;
  if (s == "fork") return Mode::kFork;
  throw std::invalid_argument("campaign: unknown mode '" + s +
                              "' (serial|thread|fork)");
}

bool fork_available() {
#if defined(__unix__) || defined(__APPLE__)
  return true;
#else
  return false;
#endif
}

// The env reads below are covered by the scoped R2 allowlist entry for
// campaign/config: both knobs are performance-only, and test_campaign
// pins that merged results are bit-identical at any setting.

Mode default_mode() {
  if (const char* env = std::getenv("GDELAY_CAMPAIGN_MODE"))
    return parse_mode(env);
  return fork_available() ? Mode::kFork : Mode::kThread;
}

std::size_t default_shards() {
  if (const char* env = std::getenv("GDELAY_CAMPAIGN_SHARDS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<std::size_t>(n);
  }
  return 4;
}

}  // namespace gdelay::campaign
